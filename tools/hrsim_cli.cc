/**
 * @file
 * Command-line driver: run any single simulation the library can
 * express and print the full metric set, optionally as CSV.
 *
 * Examples:
 *   hrsim_cli --ring 3:3:6 --line 64 --r 0.3 --t 4
 *   hrsim_cli --mesh 8 --line 128 --buffers 1 --c 0.08 --csv
 *   hrsim_cli --ring 5:3:6 --speed 2 --slotted --seed 7
 *   hrsim_cli --sweep both --line 64 --jobs 4
 *   hrsim_cli --sweep ring --line 32 --list-sweep
 *   hrsim_cli --ring 3:3:12 --metrics-out run.json --metrics-every 2000
 *   hrsim_cli --sweep ring --jobs 4 --metrics-out sweep.json
 *   hrsim_cli --mesh 4 --trace-flits flits.log --batches 1
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/codec.hh"
#include "common/log.hh"
#include "core/analysis.hh"
#include "core/sweep.hh"
#include "core/tick_pool.hh"
#include "core/system.hh"
#include "obs/flit_trace.hh"
#include "obs/manifest.hh"
#include "obs/metric_sink.hh"
#include "sim/columns.hh"
#include "sim/fastpath.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s (--ring A:B:C | --mesh WIDTH) [options]\n"
        "\n"
        "network:\n"
        "  --ring TOPO       hierarchical ring, e.g. 2:3:4\n"
        "  --mesh W          square W x W mesh\n"
        "  --line BYTES      cache line size: 16|32|64|128 (32)\n"
        "  --buffers FLITS   mesh buffers: 1|4|0=cl-sized (4)\n"
        "  --speed N         global ring clock multiplier (1)\n"
        "  --slotted         slotted instead of wormhole switching\n"
        "  --no-bypass       disable the ring NIC bypass path\n"
        "\n"
        "workload:\n"
        "  --r R             locality region parameter (1.0)\n"
        "  --c C             cache miss rate per cycle (0.04)\n"
        "  --t T             outstanding transactions (4)\n"
        "  --mem CYCLES      memory service time (20)\n"
        "  --pipelined-mem   pipelined instead of serialized memory\n"
        "\n"
        "measurement:\n"
        "  --warmup CYCLES   discarded first batch (4000)\n"
        "  --batch CYCLES    measured batch length (4000)\n"
        "  --batches N       number of measured batches (5)\n"
        "  --seed N          master RNG seed\n"
        "  --csv             one machine-readable CSV line\n"
        "\n"
        "fault injection (deterministic; see DESIGN.md section 13):\n"
        "  --fault SPEC      schedule one fault window, e.g.\n"
        "                    mesh.r3.east:down@20000..40000 or\n"
        "                    ring.nic2:stall@1000..; repeatable,\n"
        "                    specs apply in order\n"
        "  --fault-plan FILE load a fault schedule file: one spec\n"
        "                    per line, optional 'timeout N' and\n"
        "                    'retries N' directives, '#' comments\n"
        "  --fault-timeout N cycles before an unanswered request is\n"
        "                    reissued (4096)\n"
        "  --fault-retries N reissues before a transaction is\n"
        "                    abandoned (3)\n"
        "\n"
        "adaptive run control (default: fixed-length, bit-identical\n"
        "to the flags above; see DESIGN.md section 11):\n"
        "  --stop-rel-hw X   stop once the 95%% relative confidence\n"
        "                    half-width of latency drops to X (e.g.\n"
        "                    0.05); enables MSER warmup detection,\n"
        "                    the sequential stopping rule and the\n"
        "                    saturation detector\n"
        "  --stop-batch N    adaptive batch/checkpoint length in\n"
        "                    cycles (default: --batch value / 4)\n"
        "  --max-cycles N    adaptive hard bound (default: 8x the\n"
        "                    fixed-length horizon)\n"
        "  --stop-min-batches N  retained batches required before\n"
        "                    convergence may be declared (8)\n"
        "\n"
        "sweep mode (instead of a single point):\n"
        "  --sweep KIND      run the standard figure sweep, KIND =\n"
        "                    ring (Table 2 ladder) | mesh (square\n"
        "                    widths) | both; prints one CSV row per\n"
        "                    point, in a fixed order\n"
        "  --jobs N          sweep worker threads (default 1; 1 runs\n"
        "                    the points serially, exactly as repeated\n"
        "                    single-point invocations; any N yields\n"
        "                    bit-identical output; only meaningful\n"
        "                    with --sweep)\n"
        "  --list-sweep      print the sweep's points and exit\n"
        "\n"
        "intra-run parallelism (see DESIGN.md section 15):\n"
        "  --tick-threads N  shard the network tick across N worker\n"
        "                    threads (default 1 = serial; any N is\n"
        "                    bit-identical to 1; also settable via\n"
        "                    the HRSIM_TICK_THREADS environment\n"
        "                    variable, the flag winning; composes\n"
        "                    with --jobs: jobs x tick-threads is\n"
        "                    capped at the machine's core count)\n"
        "\n"
        "checkpoint/restore (see DESIGN.md section 16):\n"
        "  --save-to FILE    write deterministic snapshots of the\n"
        "                    complete simulator state to FILE (needs\n"
        "                    --save-at and/or --save-every)\n"
        "  --save-at N       snapshot once at the start of cycle N\n"
        "  --save-every N    snapshot at every multiple of N cycles\n"
        "  --save-stop       end the run right after the --save-at\n"
        "                    snapshot (warm-start donor runs)\n"
        "  --restore FILE    resume from a snapshot; the run must use\n"
        "                    the exact config that produced it, and\n"
        "                    continues bit-identically to the\n"
        "                    uninterrupted run\n"
        "  --fork-seed N     warm-start fork: restore FILE but reseed\n"
        "                    every generator from seed N, sharing the\n"
        "                    donor's warmed-up state while drawing a\n"
        "                    fresh measurement stream\n"
        "  --sweep-dir DIR   journal each sweep point's result (and,\n"
        "                    with --save-every, periodic in-progress\n"
        "                    snapshots) to DIR; needs --sweep\n"
        "  --sweep-resume    resume a killed journaled sweep: skip\n"
        "                    points with journaled results, restore\n"
        "                    in-progress ones; artifacts are\n"
        "                    byte-identical to the uninterrupted\n"
        "                    sweep's\n"
        "\n"
        "observability (see DESIGN.md section 9):\n"
        "  --metrics-out FILE    write every registered metric plus a\n"
        "                        run manifest to FILE (- = stdout)\n"
        "  --metrics-format FMT  metrics serialization: json (default)\n"
        "                        or csv\n"
        "  --metrics-every N     also record a metric snapshot every N\n"
        "                        cycles (0 = off; needs --metrics-out)\n"
        "  --trace-flits FILE    log every flit inject/hop/eject event\n"
        "                        to FILE (single runs only; results\n"
        "                        are unchanged by tracing)\n",
        argv0);
}

double
argDouble(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        hrsim::fatal(std::string("missing value for ") + argv[i]);
    return std::atof(argv[++i]);
}

long
argLong(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        hrsim::fatal(std::string("missing value for ") + argv[i]);
    return std::atol(argv[++i]);
}

const char *
argString(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        hrsim::fatal(std::string("missing value for ") + argv[i]);
    return argv[++i];
}

void
printCsvHeader(bool adaptive)
{
    std::printf("label,processors,line,R,C,T,latency,ci95,"
                "p50,p95,p99,util,samples,throughput_per_pm");
    // Extra columns only in adaptive mode: fixed-length output stays
    // byte-identical to earlier releases.
    if (adaptive)
        std::printf(",stop_reason,cycles_simulated,rel_hw");
    std::printf("\n");
}

void
printCsvRow(const std::string &label, const hrsim::SystemConfig &cfg,
            const hrsim::RunResult &result)
{
    std::printf("%s,%d,%u,%.3f,%.4f,%d,%.2f,%.2f,%.2f,%.2f,"
                "%.2f,%.4f,%llu,%.6f",
                label.c_str(), cfg.numProcessors(),
                cfg.cacheLineBytes, cfg.workload.localityR,
                cfg.workload.missRateC, cfg.workload.outstandingT,
                result.avgLatency, result.latencyCI95,
                result.latencyP50, result.latencyP95,
                result.latencyP99, result.networkUtilization,
                static_cast<unsigned long long>(result.samples),
                result.throughputPerPm);
    if (cfg.sim.stop.enabled()) {
        std::printf(",%s,%llu,%.4f", hrsim::toString(result.stopReason),
                    static_cast<unsigned long long>(result.cycles),
                    result.relHalfWidth);
    }
    std::printf("\n");
}

/**
 * The standard figure sweep: the Table 2 ring ladder and/or the
 * square-mesh widths, every point inheriting the workload and
 * measurement settings of @a base.
 */
void
buildSweep(const hrsim::SystemConfig &base, const std::string &kind,
           std::vector<hrsim::SystemConfig> &points,
           std::vector<std::string> &labels)
{
    using namespace hrsim;
    if (kind != "ring" && kind != "mesh" && kind != "both")
        fatal("--sweep expects ring, mesh or both, got: " + kind);
    if (kind == "ring" || kind == "both") {
        for (const std::string &topo : standardRingLadder(
                 static_cast<int>(base.cacheLineBytes))) {
            SystemConfig cfg = base;
            cfg.kind = NetworkKind::HierarchicalRing;
            cfg.ringTopo = RingTopology::parse(topo);
            points.push_back(cfg);
            labels.push_back("ring " + topo);
        }
    }
    if (kind == "mesh" || kind == "both") {
        for (const int width : standardMeshWidths()) {
            SystemConfig cfg = base;
            cfg.kind = NetworkKind::Mesh;
            cfg.meshWidth = width;
            points.push_back(cfg);
            labels.push_back("mesh " + std::to_string(width) + "x" +
                             std::to_string(width));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hrsim;

    SystemConfig cfg;
    bool have_network = false;
    bool csv = false;
    std::string label;
    std::string sweep_kind;
    bool list_sweep = false;
    unsigned jobs = 1;
    bool jobs_given = false;
    int tick_threads = 1;
    bool tick_threads_given = false;
    std::string metrics_out;
    std::string metrics_format = "json";
    bool metrics_format_given = false;
    bool stop_knob_given = false;
    std::string trace_path;
    std::string fault_plan_path;
    std::vector<std::string> fault_specs;
    long fault_timeout = -1;
    long fault_retries = -1;
    bool warmup_given = false;
    bool seed_given = false;
    bool save_stop = false;
    bool fork_seed_given = false;
    std::string sweep_dir;
    bool sweep_resume = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (!std::strcmp(arg, "--ring")) {
                if (i + 1 >= argc)
                    fatal("missing topology for --ring");
                label = std::string("ring ") + argv[i + 1];
                cfg.kind = NetworkKind::HierarchicalRing;
                cfg.ringTopo = RingTopology::parse(argv[++i]);
                have_network = true;
            } else if (!std::strcmp(arg, "--mesh")) {
                const long w = argLong(argc, argv, i);
                label = "mesh " + std::to_string(w) + "x" +
                        std::to_string(w);
                cfg.kind = NetworkKind::Mesh;
                cfg.meshWidth = static_cast<int>(w);
                have_network = true;
            } else if (!std::strcmp(arg, "--line")) {
                cfg.cacheLineBytes = static_cast<std::uint32_t>(
                    argLong(argc, argv, i));
            } else if (!std::strcmp(arg, "--buffers")) {
                cfg.meshBufferFlits = static_cast<std::uint32_t>(
                    argLong(argc, argv, i));
            } else if (!std::strcmp(arg, "--speed")) {
                cfg.globalRingSpeed = static_cast<std::uint32_t>(
                    argLong(argc, argv, i));
            } else if (!std::strcmp(arg, "--slotted")) {
                cfg.ringSlotted = true;
            } else if (!std::strcmp(arg, "--no-bypass")) {
                cfg.ringBypass = false;
            } else if (!std::strcmp(arg, "--r")) {
                cfg.workload.localityR = argDouble(argc, argv, i);
            } else if (!std::strcmp(arg, "--c")) {
                cfg.workload.missRateC = argDouble(argc, argv, i);
            } else if (!std::strcmp(arg, "--t")) {
                cfg.workload.outstandingT =
                    static_cast<int>(argLong(argc, argv, i));
            } else if (!std::strcmp(arg, "--mem")) {
                cfg.workload.memoryLatency =
                    static_cast<std::uint32_t>(argLong(argc, argv, i));
            } else if (!std::strcmp(arg, "--pipelined-mem")) {
                cfg.workload.memorySerialized = false;
            } else if (!std::strcmp(arg, "--warmup")) {
                cfg.sim.warmupCycles = static_cast<Cycle>(
                    argLong(argc, argv, i));
                warmup_given = true;
            } else if (!std::strcmp(arg, "--batch")) {
                cfg.sim.batchCycles = static_cast<Cycle>(
                    argLong(argc, argv, i));
            } else if (!std::strcmp(arg, "--batches")) {
                cfg.sim.numBatches = static_cast<std::uint32_t>(
                    argLong(argc, argv, i));
            } else if (!std::strcmp(arg, "--seed")) {
                cfg.sim.seed = static_cast<std::uint64_t>(
                    argLong(argc, argv, i));
                seed_given = true;
            } else if (!std::strcmp(arg, "--stop-rel-hw")) {
                cfg.sim.stop.relHw = argDouble(argc, argv, i);
                if (cfg.sim.stop.relHw <= 0.0 ||
                    cfg.sim.stop.relHw >= 1.0)
                    fatal("--stop-rel-hw needs a target in (0, 1)");
            } else if (!std::strcmp(arg, "--stop-batch")) {
                cfg.sim.stop.batchCycles = static_cast<Cycle>(
                    argLong(argc, argv, i));
                stop_knob_given = true;
            } else if (!std::strcmp(arg, "--max-cycles")) {
                cfg.sim.stop.maxCycles = static_cast<Cycle>(
                    argLong(argc, argv, i));
                stop_knob_given = true;
            } else if (!std::strcmp(arg, "--stop-min-batches")) {
                const long n = argLong(argc, argv, i);
                if (n < 2)
                    fatal("--stop-min-batches needs at least 2");
                cfg.sim.stop.minBatches =
                    static_cast<std::uint32_t>(n);
                stop_knob_given = true;
            } else if (!std::strcmp(arg, "--csv")) {
                csv = true;
            } else if (!std::strcmp(arg, "--sweep")) {
                sweep_kind = argString(argc, argv, i);
            } else if (!std::strcmp(arg, "--list-sweep")) {
                list_sweep = true;
            } else if (!std::strcmp(arg, "--metrics-out")) {
                metrics_out = argString(argc, argv, i);
            } else if (!std::strcmp(arg, "--metrics-format")) {
                metrics_format = argString(argc, argv, i);
                metrics_format_given = true;
            } else if (!std::strcmp(arg, "--metrics-every")) {
                cfg.sim.metricsEvery = static_cast<Cycle>(
                    argLong(argc, argv, i));
            } else if (!std::strcmp(arg, "--fault")) {
                fault_specs.push_back(argString(argc, argv, i));
            } else if (!std::strcmp(arg, "--fault-plan")) {
                fault_plan_path = argString(argc, argv, i);
            } else if (!std::strcmp(arg, "--fault-timeout")) {
                fault_timeout = argLong(argc, argv, i);
                if (fault_timeout <= 0)
                    fatal("--fault-timeout needs a positive cycle "
                          "count");
            } else if (!std::strcmp(arg, "--fault-retries")) {
                fault_retries = argLong(argc, argv, i);
                if (fault_retries < 0)
                    fatal("--fault-retries needs a non-negative "
                          "count");
            } else if (!std::strcmp(arg, "--save-to")) {
                cfg.ckpt.savePath = argString(argc, argv, i);
            } else if (!std::strcmp(arg, "--save-at")) {
                const long n = argLong(argc, argv, i);
                if (n < 1)
                    fatal("--save-at needs a cycle >= 1");
                cfg.ckpt.saveAt = static_cast<Cycle>(n);
            } else if (!std::strcmp(arg, "--save-every")) {
                const long n = argLong(argc, argv, i);
                if (n < 1)
                    fatal("--save-every needs a period >= 1");
                cfg.ckpt.saveEvery = static_cast<Cycle>(n);
            } else if (!std::strcmp(arg, "--save-stop")) {
                save_stop = true;
            } else if (!std::strcmp(arg, "--restore")) {
                cfg.ckpt.restorePath = argString(argc, argv, i);
            } else if (!std::strcmp(arg, "--fork-seed")) {
                const long n = argLong(argc, argv, i);
                if (n < 1)
                    fatal("--fork-seed needs a nonzero seed (0 means "
                          "exact resume; just drop the flag)");
                cfg.ckpt.forkSeed = static_cast<std::uint64_t>(n);
                fork_seed_given = true;
            } else if (!std::strcmp(arg, "--sweep-dir")) {
                sweep_dir = argString(argc, argv, i);
            } else if (!std::strcmp(arg, "--sweep-resume")) {
                sweep_resume = true;
            } else if (!std::strcmp(arg, "--trace-flits")) {
                trace_path = argString(argc, argv, i);
            } else if (!std::strcmp(arg, "--jobs")) {
                const long n = argLong(argc, argv, i);
                if (n < 1)
                    fatal("--jobs needs a worker count >= 1");
                jobs = static_cast<unsigned>(n);
                jobs_given = true;
            } else if (!std::strcmp(arg, "--tick-threads")) {
                const long n = argLong(argc, argv, i);
                if (n < 1) {
                    std::fprintf(stderr,
                                 "warning: --tick-threads needs a "
                                 "thread count >= 1; using the "
                                 "serial tick\n");
                    tick_threads = 1;
                } else {
                    tick_threads = static_cast<int>(n);
                }
                tick_threads_given = true;
            } else if (!std::strcmp(arg, "--help") ||
                       !std::strcmp(arg, "-h")) {
                usage(argv[0]);
                return 0;
            } else {
                fatal(std::string("unknown option: ") + arg);
            }
        }
        // Assemble the fault plan: the plan file first (it may set
        // the retry directives), then --fault specs in command-line
        // order, then explicit --fault-timeout/--fault-retries
        // overriding both.
        if (!fault_plan_path.empty()) {
            std::string err;
            if (!loadFaultPlanFile(fault_plan_path, cfg.faultPlan,
                                   err))
                fatal(err);
        }
        for (const std::string &spec : fault_specs) {
            FaultEvent event;
            std::string err;
            if (!parseFaultSpec(spec, event, err))
                fatal("--fault " + spec + ": " + err);
            cfg.faultPlan.events.push_back(event);
        }
        if (fault_timeout > 0) {
            cfg.faultPlan.retry.timeoutCycles =
                static_cast<Cycle>(fault_timeout);
        }
        if (fault_retries >= 0) {
            cfg.faultPlan.retry.maxRetries =
                static_cast<std::uint32_t>(fault_retries);
        }
        if ((fault_timeout > 0 || fault_retries >= 0) &&
            cfg.faultPlan.empty()) {
            std::fprintf(stderr,
                         "warning: --fault-timeout/--fault-retries "
                         "have no effect without --fault or "
                         "--fault-plan\n");
        }
        if (!cfg.faultPlan.empty() && cfg.ringSlotted) {
            fatal("fault injection is not supported with --slotted; "
                  "use the wormhole ring or the mesh");
        }
        if (!cfg.faultPlan.empty() && cfg.sim.stop.enabled()) {
            // Legitimate but easy to misread: the stopping rule
            // converges on the latency of the transactions that DID
            // complete, so an outage mostly shows up in drop.*/retry.*
            // and the delivery rate, not in the latency target.
            std::fprintf(stderr,
                         "warning: --stop-rel-hw with a fault plan "
                         "converges on survivors' latency only; "
                         "compare drop.* / retry.* metrics, not just "
                         "the latency column\n");
        }
        if (metrics_format != "json" && metrics_format != "csv") {
            fatal("--metrics-format expects json or csv, got: " +
                  metrics_format);
        }
        if (cfg.sim.metricsEvery != 0 && metrics_out.empty()) {
            std::fprintf(stderr,
                         "warning: --metrics-every has no effect "
                         "without --metrics-out\n");
        }
        if (metrics_format_given && metrics_out.empty()) {
            std::fprintf(stderr,
                         "warning: --metrics-format has no effect "
                         "without --metrics-out\n");
        }
        if (stop_knob_given && !cfg.sim.stop.enabled()) {
            std::fprintf(stderr,
                         "warning: --stop-batch/--max-cycles/"
                         "--stop-min-batches have no effect without "
                         "--stop-rel-hw\n");
        }
        if (!metrics_out.empty() && !fastPathEnabled()) {
            // Results are bit-identical either way, but the legacy
            // loops are the slow debugging oracle — flag artifacts
            // produced under it (the manifest also records
            // fast_path so the file says it itself).
            std::fprintf(stderr,
                         "warning: HRSIM_NO_FASTPATH is set; this "
                         "run uses the legacy (oracle) tick loops "
                         "and the manifest will record "
                         "fast_path=false\n");
        }
        if (!metrics_out.empty() && !columnarEnabled()) {
            // Same oracle caveat for the layout axis: the per-node
            // legacy layout is bit-identical but slow.
            std::fprintf(stderr,
                         "warning: HRSIM_NO_COLUMNAR is set; this "
                         "run uses the legacy per-node hot-state "
                         "layout and the manifest will record "
                         "columnar=false\n");
        }
        // Parallel-tick width: the flag wins over the
        // HRSIM_TICK_THREADS environment variable; malformed or
        // non-positive env values fall back to the serial tick with
        // a warning (never a fatal — the env may be set globally).
        if (!tick_threads_given) {
            const char *env = std::getenv("HRSIM_TICK_THREADS");
            if (env != nullptr && env[0] != '\0') {
                char *end = nullptr;
                const long n = std::strtol(env, &end, 10);
                if (end == env || *end != '\0' || n < 1) {
                    std::fprintf(stderr,
                                 "warning: ignoring malformed "
                                 "HRSIM_TICK_THREADS value \"%s\"; "
                                 "using the serial tick\n",
                                 env);
                } else {
                    tick_threads = static_cast<int>(n);
                }
            }
        }
        const unsigned hw = std::thread::hardware_concurrency();
        if (hw != 0 && tick_threads > static_cast<long>(hw)) {
            std::fprintf(stderr,
                         "warning: --tick-threads %d exceeds this "
                         "machine's %u hardware threads; capping\n",
                         tick_threads, hw);
        }
        if (tick_threads > 1 && cfg.ringSlotted) {
            std::fprintf(stderr,
                         "warning: the slotted ring has no parallel "
                         "tick engine; --tick-threads is ignored\n");
        }
        const char *force_scan = std::getenv("HRSIM_FORCE_FULL_SCAN");
        const bool full_scan = force_scan != nullptr &&
                               force_scan[0] != '\0' &&
                               !(force_scan[0] == '0' &&
                                 force_scan[1] == '\0');
        if (tick_threads > 1 && (!columnarEnabled() || full_scan)) {
            std::fprintf(stderr,
                         "warning: an oracle mode (HRSIM_NO_COLUMNAR "
                         "/ HRSIM_FORCE_FULL_SCAN) forces the serial "
                         "tick; --tick-threads is ignored\n");
        }
        if (!sweep_kind.empty() || list_sweep) {
            if (sweep_kind.empty())
                sweep_kind = "both";
            if (sweep_resume && sweep_dir.empty())
                fatal("--sweep-resume needs --sweep-dir");
            if (cfg.ckpt.saveEvery != 0 && sweep_dir.empty()) {
                std::fprintf(stderr,
                             "warning: in sweep mode --save-every "
                             "only journals in-progress snapshots "
                             "under --sweep-dir; ignoring it\n");
            }
            if (!cfg.ckpt.savePath.empty() ||
                !cfg.ckpt.restorePath.empty() ||
                cfg.ckpt.saveAt != 0 || save_stop) {
                std::fprintf(stderr,
                             "warning: --save-to/--save-at/"
                             "--save-stop/--restore apply to "
                             "single-point runs; in sweep mode use "
                             "--sweep-dir (plus --save-every for "
                             "periodic in-progress snapshots)\n");
            }
            // Points inherit the base config; the single-run
            // checkpoint flags must not ride along into every point
            // (the journal's own scratch snapshots are wired per
            // point by the runner).
            const Cycle journal_every = cfg.ckpt.saveEvery;
            cfg.ckpt = {};
            // Sweep workers and tick pools draw on one core budget:
            // cap the per-run width so jobs x tick-threads never
            // oversubscribes the machine.
            cfg.sim.tickThreads =
                TickPool::resolveTickThreads(tick_threads, jobs);
            if (cfg.sim.tickThreads < tick_threads) {
                std::fprintf(stderr,
                             "note: capping --tick-threads to %d so "
                             "%u sweep jobs x tick threads fit the "
                             "machine\n",
                             cfg.sim.tickThreads, jobs);
            }
            std::vector<SystemConfig> points;
            std::vector<std::string> labels;
            buildSweep(cfg, sweep_kind, points, labels);
            if (list_sweep) {
                std::printf("label,processors\n");
                for (std::size_t p = 0; p < points.size(); ++p) {
                    std::printf("%s,%d\n", labels[p].c_str(),
                                points[p].numProcessors());
                }
                return 0;
            }
            if (!trace_path.empty()) {
                std::fprintf(stderr,
                             "warning: --trace-flits applies to "
                             "single-point runs; ignoring it in "
                             "sweep mode\n");
            }
            SweepOptions opts;
            opts.jobs = jobs;
            if (!sweep_dir.empty()) {
                std::error_code dir_err;
                std::filesystem::create_directories(sweep_dir,
                                                    dir_err);
                if (dir_err) {
                    fatal("cannot create --sweep-dir " + sweep_dir +
                          ": " + dir_err.message());
                }
                opts.journalDir = sweep_dir;
                opts.resume = sweep_resume;
                opts.checkpointEvery = journal_every;
            }
            SweepRunner runner(opts);
            const auto wall_start = std::chrono::steady_clock::now();
            const std::vector<RunResult> results = runner.run(points);
            const double wall_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            printCsvHeader(cfg.sim.stop.enabled());
            for (std::size_t p = 0; p < points.size(); ++p)
                printCsvRow(labels[p], points[p], results[p]);
            if (!metrics_out.empty()) {
                // The manifest's config key renders the sweep's base
                // config: the workload/measurement settings every
                // point inherits.
                double node_cycles = 0.0;
                std::vector<MetricPoint> mpoints;
                mpoints.reserve(points.size());
                for (std::size_t p = 0; p < points.size(); ++p) {
                    mpoints.push_back(
                        metricPoint(labels[p], results[p]));
                    node_cycles +=
                        static_cast<double>(results[p].cycles) *
                        points[p].numProcessors();
                }
                writeMetricsFile(metrics_out, metrics_format,
                                 makeManifest(cfg, jobs, wall_seconds,
                                              node_cycles),
                                 mpoints);
            }
            return 0;
        }
        if (!have_network)
            fatal("one of --ring or --mesh is required");
        // Checkpoint flag hygiene for single-point runs. The hard
        // config-key check lives in System::restoreCheckpoint (it
        // refuses a mismatched snapshot naming both keys); here we
        // catch combinations that are about to trip it or that
        // silently do nothing.
        if (sweep_dir.empty() && sweep_resume)
            fatal("--sweep-resume needs --sweep-dir");
        if (!sweep_dir.empty()) {
            std::fprintf(stderr,
                         "warning: --sweep-dir/--sweep-resume only "
                         "apply to --sweep mode; ignoring them\n");
        }
        if ((cfg.ckpt.saveAt != 0 || cfg.ckpt.saveEvery != 0 ||
             save_stop) &&
            cfg.ckpt.savePath.empty()) {
            std::fprintf(stderr,
                         "warning: --save-at/--save-every/--save-stop "
                         "have no effect without --save-to\n");
        }
        if (!cfg.ckpt.savePath.empty() && cfg.ckpt.saveAt == 0 &&
            cfg.ckpt.saveEvery == 0) {
            std::fprintf(stderr,
                         "warning: --save-to never fires without "
                         "--save-at or --save-every\n");
        }
        if (save_stop && cfg.ckpt.saveAt == 0) {
            std::fprintf(stderr,
                         "warning: --save-stop only applies to the "
                         "--save-at snapshot\n");
        }
        cfg.ckpt.stopAfterSave = save_stop;
        if (fork_seed_given && cfg.ckpt.restorePath.empty()) {
            std::fprintf(stderr,
                         "warning: --fork-seed has no effect without "
                         "--restore\n");
            cfg.ckpt.forkSeed = 0;
        }
        if (!cfg.ckpt.restorePath.empty()) {
            if (warmup_given) {
                std::fprintf(stderr,
                             "warning: --restore overrides --warmup: "
                             "the measurement schedule is part of the "
                             "snapshot's config key, and a mismatch "
                             "is refused\n");
            }
            if (seed_given && !fork_seed_given) {
                std::fprintf(stderr,
                             "warning: --restore with --seed: an "
                             "exact resume must replay the snapshot's "
                             "seed, and a different one is refused; "
                             "use --fork-seed to draw a fresh stream "
                             "from the warmed-up state\n");
            }
            if (seed_given && fork_seed_given) {
                std::fprintf(stderr,
                             "warning: --fork-seed supersedes --seed "
                             "for a warm-start fork\n");
            }
            // A fork's identity is its fork seed: run the replica
            // under it so the artifact's config key (and manifest)
            // names the stream actually drawn.
            if (fork_seed_given)
                cfg.sim.seed = cfg.ckpt.forkSeed;
        }
        if (jobs_given) {
            std::fprintf(stderr,
                         "warning: --jobs only applies to --sweep "
                         "mode; running the single point serially\n");
        }
        // Single point: the whole machine is this run's budget.
        cfg.sim.tickThreads =
            TickPool::resolveTickThreads(tick_threads, 1);

        System system(cfg);
        std::ofstream trace_stream;
        std::unique_ptr<FlitTracer> tracer;
        if (!trace_path.empty()) {
            if (!FlitTracer::compiledIn()) {
                std::fprintf(stderr,
                             "warning: flit-trace hooks compiled out "
                             "(HRSIM_TRACE_FLITS=0); the trace will "
                             "be empty\n");
            }
            trace_stream.open(trace_path);
            if (!trace_stream)
                fatal("cannot open trace file: " + trace_path);
            tracer = std::make_unique<FlitTracer>(trace_stream);
            system.setTracer(tracer.get());
        }
        const auto wall_start = std::chrono::steady_clock::now();
        const RunResult result = system.run();
        const double wall_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        if (!metrics_out.empty()) {
            const double node_cycles =
                static_cast<double>(result.cycles) *
                cfg.numProcessors();
            writeMetricsFile(metrics_out, metrics_format,
                             makeManifest(cfg, 1, wall_seconds,
                                          node_cycles),
                             {metricPoint(label, result)});
        }

        if (csv) {
            printCsvHeader(cfg.sim.stop.enabled());
            printCsvRow(label, cfg, result);
            return 0;
        }

        std::printf("%s, %d PMs, %uB lines, R=%.2f C=%.3f T=%d\n",
                    label.c_str(), cfg.numProcessors(),
                    cfg.cacheLineBytes, cfg.workload.localityR,
                    cfg.workload.missRateC, cfg.workload.outstandingT);
        std::printf("  latency  : %.1f cycles (+/- %.1f at 95%%)\n",
                    result.avgLatency, result.latencyCI95);
        std::printf("  p50/p95/p99: %.0f / %.0f / %.0f cycles\n",
                    result.latencyP50, result.latencyP95,
                    result.latencyP99);
        std::printf("  samples  : %llu remote round trips\n",
                    static_cast<unsigned long long>(result.samples));
        std::printf("  net util : %.1f%%\n",
                    100.0 * result.networkUtilization);
        for (std::size_t level = 0;
             level < result.ringLevelUtilization.size(); ++level) {
            std::printf("  ring L%zu  : %.1f%%%s\n", level,
                        100.0 * result.ringLevelUtilization[level],
                        level == 0 ? " (global)" : "");
        }
        std::printf("  thpt/PM  : %.4f transactions/cycle\n",
                    result.throughputPerPm);
        if (cfg.sim.stop.enabled()) {
            std::printf(
                "  run      : %s after %llu cycles (rel hw %.3f, "
                "MSER warmup %llu)\n",
                toString(result.stopReason),
                static_cast<unsigned long long>(result.cycles),
                result.relHalfWidth,
                static_cast<unsigned long long>(result.warmupCycles));
        }
        return 0;
    } catch (const ConfigError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        usage(argv[0]);
        return 1;
    } catch (const StallError &err) {
        std::fprintf(stderr, "simulation stalled: %s\n", err.what());
        return 2;
    } catch (const CheckpointError &err) {
        std::fprintf(stderr, "checkpoint error: %s\n", err.what());
        return 3;
    }
}
