/**
 * @file
 * JSON-schema validator for hrsim metrics artifacts.
 *
 * Usage: metrics_check SCHEMA DOCUMENT
 *
 * Validates DOCUMENT (an hrsim_cli --metrics-out / HRSIM_METRICS_OUT
 * JSON file) against SCHEMA (scripts/metrics_schema.json) and exits
 * non-zero with a path-qualified diagnostic on the first violation.
 *
 * The validator implements the JSON-Schema subset the checked-in
 * schema uses — "type" (object, array, string, number, integer,
 * boolean), "required", "properties", "additionalProperties"
 * (schema form), "items" and "const" — with no external
 * dependencies, so CI can gate every emitted artifact without a
 * network or a Python environment.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.hh"
#include "obs/json.hh"

namespace
{

using hrsim::JsonValue;

/** Thrown with the offending document path and reason. */
struct ValidationError
{
    std::string path;
    std::string reason;
};

std::string
loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        hrsim::fatal("cannot open: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
matchesType(const JsonValue &value, const std::string &type)
{
    if (type == "object")
        return value.isObject();
    if (type == "array")
        return value.isArray();
    if (type == "string")
        return value.isString();
    if (type == "number")
        return value.isNumber();
    if (type == "integer")
        return value.isNumber() && value.isInteger();
    if (type == "boolean")
        return value.kind == JsonValue::Kind::Bool;
    if (type == "null")
        return value.kind == JsonValue::Kind::Null;
    hrsim::fatal("schema: unsupported type: " + type);
}

/** Structural equality for "const" (sufficient for scalars). */
bool
sameValue(const JsonValue &a, const JsonValue &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case JsonValue::Kind::Null:
        return true;
      case JsonValue::Kind::Bool:
        return a.boolean == b.boolean;
      case JsonValue::Kind::Number:
        return a.number == b.number;
      case JsonValue::Kind::String:
        return a.str == b.str;
      default:
        hrsim::fatal("schema: const only supports scalar values");
    }
}

void
validate(const JsonValue &value, const JsonValue &schema,
         const std::string &path)
{
    if (!schema.isObject())
        hrsim::fatal("schema: every schema node must be an object");

    if (const JsonValue *expect = schema.find("const")) {
        if (!sameValue(value, *expect)) {
            throw ValidationError{
                path, "does not match the required constant"};
        }
    }

    if (const JsonValue *type = schema.find("type")) {
        if (!type->isString())
            hrsim::fatal("schema: \"type\" must be a string");
        if (!matchesType(value, type->str)) {
            throw ValidationError{
                path, "expected " + type->str + ", got " +
                          JsonValue::kindName(value.kind)};
        }
    }

    if (const JsonValue *required = schema.find("required")) {
        if (!required->isArray())
            hrsim::fatal("schema: \"required\" must be an array");
        for (const JsonValue &key : required->items) {
            if (!key.isString())
                hrsim::fatal("schema: \"required\" entries must be "
                             "strings");
            if (!value.isObject() || !value.find(key.str)) {
                throw ValidationError{
                    path, "missing required member \"" + key.str +
                              "\""};
            }
        }
    }

    const JsonValue *properties = schema.find("properties");
    const JsonValue *additional = schema.find("additionalProperties");
    if ((properties || additional) && value.isObject()) {
        for (const auto &[key, member] : value.members) {
            const JsonValue *sub =
                properties ? properties->find(key) : nullptr;
            if (!sub)
                sub = additional;
            if (sub)
                validate(member, *sub, path + "." + key);
        }
    }

    if (const JsonValue *items = schema.find("items")) {
        if (value.isArray()) {
            for (std::size_t i = 0; i < value.items.size(); ++i) {
                validate(value.items[i], *items,
                         path + "[" + std::to_string(i) + "]");
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr, "usage: %s SCHEMA DOCUMENT\n", argv[0]);
        return 2;
    }
    try {
        const JsonValue schema = JsonValue::parse(loadFile(argv[1]));
        const JsonValue doc = JsonValue::parse(loadFile(argv[2]));
        validate(doc, schema, "$");
    } catch (const ValidationError &err) {
        std::fprintf(stderr, "%s: invalid: %s: %s\n", argv[2],
                     err.path.c_str(), err.reason.c_str());
        return 1;
    } catch (const hrsim::ConfigError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    std::printf("%s: valid (hrsim metrics schema)\n", argv[2]);
    return 0;
}
