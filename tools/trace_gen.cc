/**
 * @file
 * Trace generator: writes a synthetic uniform reference trace in the
 * hrsim text format to stdout, for use with SystemConfig::trace or
 * external tooling.
 *
 * Usage: trace_gen PROCESSORS CYCLES [miss_rate=0.04]
 *                  [read_fraction=0.7] [seed=1]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/log.hh"
#include "workload/trace.hh"

int
main(int argc, char **argv)
{
    using namespace hrsim;

    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s PROCESSORS CYCLES [miss_rate=0.04] "
                     "[read_fraction=0.7] [seed=1]\n",
                     argv[0]);
        return 1;
    }
    try {
        const int pms = std::atoi(argv[1]);
        const auto cycles =
            static_cast<Cycle>(std::atoll(argv[2]));
        const double miss = argc > 3 ? std::atof(argv[3]) : 0.04;
        const double reads = argc > 4 ? std::atof(argv[4]) : 0.7;
        const auto seed = static_cast<std::uint64_t>(
            argc > 5 ? std::atoll(argv[5]) : 1);

        const Trace trace =
            Trace::synthesizeUniform(pms, cycles, miss, reads, seed);
        trace.save(std::cout);
        std::fprintf(stderr, "%zu references for %d PMs over %llu "
                             "cycles\n",
                     trace.size(), pms,
                     static_cast<unsigned long long>(cycles));
        return 0;
    } catch (const ConfigError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
