#include "ckpt/codec.hh"

#include <cstdio>
#include <fstream>

namespace hrsim
{

namespace
{

/** Eight bytes of magic: "hrsimck" + a format byte. */
constexpr char ckptMagic[8] = {'h', 'r', 's', 'i', 'm', 'c', 'k', '1'};

void
writeHeaderFields(CkptWriter &w, const CheckpointHeader &header)
{
    w.u32(header.version);
    w.str(header.configKey);
    w.boolean(header.columnar);
    w.boolean(header.fastPath);
    w.boolean(header.activeSched);
    w.u64(header.cycle);
}

CheckpointHeader
readHeaderFields(CkptReader &r)
{
    CheckpointHeader header;
    header.version = r.u32();
    header.configKey = r.str();
    header.columnar = r.boolean();
    header.fastPath = r.boolean();
    header.activeSched = r.boolean();
    header.cycle = r.u64();
    return header;
}

std::vector<std::uint8_t>
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw CheckpointError("checkpoint: cannot open file: " +
                              path);
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        throw CheckpointError("checkpoint: read error on file: " +
                              path);
    }
    return bytes;
}

CheckpointHeader
parseContainer(const std::string &path,
               std::vector<std::uint8_t> bytes,
               std::vector<std::uint8_t> *payload_out)
{
    if (bytes.size() < sizeof(ckptMagic) ||
        std::memcmp(bytes.data(), ckptMagic, sizeof(ckptMagic)) !=
            0) {
        throw CheckpointError(
            "checkpoint: not a hrsim checkpoint file: " + path);
    }
    bytes.erase(bytes.begin(), bytes.begin() + sizeof(ckptMagic));
    CkptReader r(std::move(bytes));

    CheckpointHeader header = readHeaderFields(r);
    if (header.version != ckptSchemaVersion) {
        throw CheckpointError(
            "checkpoint: schema version " +
            std::to_string(header.version) + " in " + path +
            " does not match this build's version " +
            std::to_string(ckptSchemaVersion));
    }

    const std::uint64_t payload_size = r.u64();
    if (payload_size > r.remaining()) {
        throw CheckpointError("checkpoint: truncated payload in " +
                              path);
    }
    std::vector<std::uint8_t> payload(payload_size);
    for (std::uint64_t i = 0; i < payload_size; ++i)
        payload[i] = r.u8();

    const std::uint64_t stored_hash = r.u64();
    const std::uint64_t hash =
        ckptFnv1a(payload.data(), payload.size());
    if (stored_hash != hash) {
        throw CheckpointError(
            "checkpoint: payload hash mismatch in " + path +
            " (file is corrupt or was not fully written)");
    }
    if (!r.atEnd()) {
        throw CheckpointError(
            "checkpoint: trailing bytes after payload in " + path);
    }
    if (payload_out != nullptr)
        *payload_out = std::move(payload);
    return header;
}

} // namespace

std::uint64_t
ckptFnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

void
writeCheckpointFile(const std::string &path,
                    const CheckpointHeader &header,
                    const CkptWriter &payload)
{
    CkptWriter container;
    writeHeaderFields(container, header);
    container.u64(payload.size());

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw CheckpointError(
                "checkpoint: cannot open file for writing: " + tmp);
        }
        out.write(ckptMagic, sizeof(ckptMagic));
        out.write(reinterpret_cast<const char *>(
                      container.data().data()),
                  static_cast<std::streamsize>(container.size()));
        out.write(reinterpret_cast<const char *>(
                      payload.data().data()),
                  static_cast<std::streamsize>(payload.size()));
        CkptWriter trailer;
        trailer.u64(ckptFnv1a(payload.data().data(), payload.size()));
        out.write(reinterpret_cast<const char *>(
                      trailer.data().data()),
                  static_cast<std::streamsize>(trailer.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw CheckpointError("checkpoint: write failed: " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("checkpoint: cannot rename " + tmp +
                              " to " + path);
    }
}

CheckpointHeader
openCheckpointFile(const std::string &path,
                   std::vector<std::uint8_t> &payload)
{
    return parseContainer(path, readWholeFile(path), &payload);
}

CheckpointHeader
peekCheckpointHeader(const std::string &path)
{
    return parseContainer(path, readWholeFile(path), nullptr);
}

} // namespace hrsim
