/**
 * @file
 * RunResult serialization for crash-safe sweep journals.
 *
 * A journaled sweep (SweepOptions::journalDir) persists every
 * completed point's RunResult to its own file so a killed sweep can
 * be resumed without recomputing finished points. The container
 * mirrors the checkpoint one — magic, schema version, the producing
 * point's config key, an FNV-1a payload hash, temporary-file +
 * rename atomicity — and the payload uses the same explicit
 * little-endian codec, so f64 fields (latencies, utilizations)
 * round-trip bit-exactly and a resumed sweep's artifacts are
 * byte-identical to an uninterrupted run's.
 *
 * The metric sample/snapshot encoders live here because both the
 * result payload and the System checkpoint payload carry them; they
 * must stay byte-compatible with ckptSchemaVersion.
 */

#ifndef HRSIM_CKPT_RESULT_IO_HH
#define HRSIM_CKPT_RESULT_IO_HH

#include <string>
#include <vector>

#include "ckpt/codec.hh"
#include "core/system.hh"

namespace hrsim
{

/** Encode a sorted registry materialization (count + samples). */
void saveMetricSamples(CkptWriter &w,
                       const std::vector<MetricSample> &samples);
void loadMetricSamples(CkptReader &r,
                       std::vector<MetricSample> &samples);

/** Encode mid-run snapshots (count + {cycle, samples}). */
void saveMetricSnapshots(CkptWriter &w,
                         const std::vector<MetricSnapshot> &snapshots);
void loadMetricSnapshots(CkptReader &r,
                         std::vector<MetricSnapshot> &snapshots);

/** Encode every RunResult field in a fixed documented order. */
void saveRunResult(CkptWriter &w, const RunResult &result);
RunResult loadRunResult(CkptReader &r);

/**
 * Atomically persist @a result to @a path, stamped with the
 * producing point's @a configKey. Throws CheckpointError on I/O
 * failure.
 */
void writeResultFile(const std::string &path,
                     const std::string &configKey,
                     const RunResult &result);

/**
 * Probe a journaled result. Returns false when @a path does not
 * exist (the point has not completed); throws CheckpointError when
 * the file is corrupt or was produced by a different config — the
 * message names both keys, because silently recomputing would mask a
 * resumed sweep whose point list changed underneath the journal.
 */
bool tryReadResultFile(const std::string &path,
                       const std::string &configKey, RunResult &out);

} // namespace hrsim

#endif // HRSIM_CKPT_RESULT_IO_HH
