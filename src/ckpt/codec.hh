/**
 * @file
 * Checkpoint codec: explicit little-endian field encoding.
 *
 * Every checkpointable component serializes through exactly one pair
 * of classes, CkptWriter and CkptReader, so the on-disk byte layout
 * is defined in a single place and is independent of host endianness,
 * struct padding, and standard-library container internals. Fields
 * are written in a fixed documented order (DESIGN.md section 16);
 * there is no per-field tagging — the schema version in the file
 * header is the only format escape hatch.
 *
 * Scalar encodings:
 *  - u8/u16/u32/u64: unsigned little-endian, the stated width.
 *  - i32/i64: two's complement cast through the unsigned encoding.
 *  - boolean: one byte, 0 or 1.
 *  - f64: IEEE-754 bit pattern via the u64 encoding (bit-exact
 *    round-trip, which plain decimal printing cannot guarantee).
 *  - string: u32 byte length + raw bytes (no terminator).
 *
 * The file container (writeCheckpointFile / openCheckpointFile) adds
 * a magic, a schema version, the producing run's config key and
 * build-flag plane, the save cycle, and an FNV-1a hash over the
 * payload, and refuses files whose header does not match the
 * restoring run. Writes go through a temporary file plus rename so a
 * crash mid-save never leaves a truncated checkpoint at the target
 * path.
 */

#ifndef HRSIM_CKPT_CODEC_HH
#define HRSIM_CKPT_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace hrsim
{

/**
 * Recoverable checkpoint failure: unreadable file, bad magic or
 * hash, or a config-key / build-plane mismatch. The CLI catches it
 * and reports the message; callers that must not die (sweep resume
 * probing) catch it and fall back to a fresh run.
 */
class CheckpointError : public std::runtime_error
{
  public:
    explicit CheckpointError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** FNV-1a 64-bit over a byte range (matches obs/manifest.hh). */
std::uint64_t ckptFnv1a(const std::uint8_t *data, std::size_t size);

class CkptWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u16(std::uint16_t v)
    {
        buf_.push_back(static_cast<std::uint8_t>(v));
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void u32(std::uint32_t v)
    {
        for (int shift = 0; shift < 32; shift += 8)
            buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }

    void u64(std::uint64_t v)
    {
        for (int shift = 0; shift < 64; shift += 8)
            buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    void f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

class CkptReader
{
  public:
    explicit CkptReader(std::vector<std::uint8_t> data)
        : buf_(std::move(data))
    {
    }

    std::uint8_t u8()
    {
        need(1);
        return buf_[pos_++];
    }

    std::uint16_t u16()
    {
        need(2);
        std::uint16_t v = 0;
        for (int shift = 0; shift < 16; shift += 8) {
            v = static_cast<std::uint16_t>(
                v | static_cast<std::uint16_t>(buf_[pos_++]) << shift);
        }
        return v;
    }

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int shift = 0; shift < 32; shift += 8)
            v |= static_cast<std::uint32_t>(buf_[pos_++]) << shift;
        return v;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 8)
            v |= static_cast<std::uint64_t>(buf_[pos_++]) << shift;
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    bool boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw CheckpointError(
                "checkpoint: corrupt boolean field");
        return v != 0;
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string str()
    {
        const std::uint32_t size = u32();
        need(size);
        std::string s(reinterpret_cast<const char *>(&buf_[pos_]),
                      size);
        pos_ += size;
        return s;
    }

    bool atEnd() const { return pos_ == buf_.size(); }
    std::size_t remaining() const { return buf_.size() - pos_; }

  private:
    void need(std::size_t bytes) const
    {
        if (buf_.size() - pos_ < bytes) {
            throw CheckpointError(
                "checkpoint: payload truncated (schema mismatch or "
                "corrupt file)");
        }
    }

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
};

/**
 * Everything the container header records about the producing run.
 * The config key is obs/manifest.hh's configKey(cfg) string; the
 * plane flags capture the oracle switches that change which derived
 * structures exist (and therefore which metric namespaces a restored
 * run must reproduce).
 */
struct CheckpointHeader
{
    std::uint32_t version = 0;
    std::string configKey;
    bool columnar = false;
    bool fastPath = false;
    bool activeSched = false;
    std::uint64_t cycle = 0;
};

/** Current on-disk schema version. Bump on any layout change. */
constexpr std::uint32_t ckptSchemaVersion = 1;

/**
 * Atomically write @a header + @a payload to @a path (temporary file
 * + rename). Throws CheckpointError on I/O failure.
 */
void writeCheckpointFile(const std::string &path,
                         const CheckpointHeader &header,
                         const CkptWriter &payload);

/**
 * Read and validate a checkpoint container: magic, schema version,
 * and payload hash. Returns the header and fills @a payload with the
 * verified payload bytes. Header/config compatibility is the
 * caller's job (System::restoreCheckpoint), because only the caller
 * knows its own config key and plane.
 */
CheckpointHeader
openCheckpointFile(const std::string &path,
                   std::vector<std::uint8_t> &payload);

/** Header-only probe (for error messages and tooling). */
CheckpointHeader peekCheckpointHeader(const std::string &path);

} // namespace hrsim

#endif // HRSIM_CKPT_CODEC_HH
