/**
 * @file
 * Shared field-level encoders for the checkpoint subsystem.
 *
 * Components serialize protocol objects (packets, flits), RNG
 * streams, and the staged-FIFO containers through these helpers so
 * every use site encodes identical byte layouts. FIFO snapshots are
 * canonical re-packs: the save walks the visible region in FIFO order
 * and the load re-inserts from a cleared queue, so physical
 * head/tail positions — unobservable by the simulation — never reach
 * the file, and two runs whose queues hold the same elements produce
 * the same bytes regardless of wrap history.
 *
 * Tick-boundary precondition: all FIFO helpers assume staged == 0 and
 * poppedThisCycle == 0 (between commit and the next evaluate), which
 * System::saveCheckpoint guarantees.
 */

#ifndef HRSIM_CKPT_STATE_IO_HH
#define HRSIM_CKPT_STATE_IO_HH

#include "ckpt/codec.hh"
#include "common/rng.hh"
#include "proto/packet.hh"

namespace hrsim
{

inline void
savePacket(CkptWriter &w, const Packet &pkt)
{
    w.u64(pkt.id);
    w.u8(static_cast<std::uint8_t>(pkt.type));
    w.i32(pkt.src);
    w.i32(pkt.dst);
    w.u32(pkt.sizeFlits);
    w.u64(pkt.issueCycle);
    w.u64(pkt.reqId);
}

inline Packet
loadPacket(CkptReader &r)
{
    Packet pkt;
    pkt.id = r.u64();
    pkt.type = static_cast<PacketType>(r.u8());
    pkt.src = r.i32();
    pkt.dst = r.i32();
    pkt.sizeFlits = r.u32();
    pkt.issueCycle = r.u64();
    pkt.reqId = r.u64();
    return pkt;
}

inline void
saveFlit(CkptWriter &w, const Flit &flit)
{
    w.u64(flit.packet);
    w.u32(flit.index);
    w.u32(flit.sizeFlits);
    w.i32(flit.dst);
    w.i32(flit.src);
    w.u8(static_cast<std::uint8_t>(flit.type));
    w.u64(flit.issueCycle);
    w.u64(flit.reqId);
    w.u16(flit.ttl);
    w.boolean(flit.poisoned);
}

inline Flit
loadFlit(CkptReader &r)
{
    Flit flit;
    flit.packet = r.u64();
    flit.index = r.u32();
    flit.sizeFlits = r.u32();
    flit.dst = r.i32();
    flit.src = r.i32();
    flit.type = static_cast<PacketType>(r.u8());
    flit.issueCycle = r.u64();
    flit.reqId = r.u64();
    flit.ttl = r.u16();
    flit.poisoned = r.boolean();
    return flit;
}

inline void
saveRng(CkptWriter &w, const Rng &rng)
{
    for (const std::uint64_t word : rng.state())
        w.u64(word);
}

inline void
loadRng(CkptReader &r, Rng &rng)
{
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t &word : s)
        word = r.u64();
    rng.setState(s);
}

/**
 * Canonical FIFO save: visible count + elements in FIFO order.
 * Works for StagedFifo, ColumnFifo, and RingDeque (size()/at()).
 */
template <typename Fifo, typename SaveElem>
void
saveFifo(CkptWriter &w, const Fifo &fifo, SaveElem save_elem)
{
    const std::uint32_t count =
        static_cast<std::uint32_t>(fifo.size());
    w.u32(count);
    for (std::uint32_t i = 0; i < count; ++i)
        save_elem(w, fifo.at(i));
}

/**
 * Canonical re-pack load for staged FIFOs: clear, stage every
 * element, then commit so the contents are consumer-visible — the
 * state a tick-boundary save observed.
 */
template <typename Fifo, typename LoadElem>
void
loadStagedFifo(CkptReader &r, Fifo &fifo, LoadElem load_elem)
{
    fifo.clear();
    const std::uint32_t count = r.u32();
    if (count > fifo.capacity()) {
        throw CheckpointError(
            "checkpoint: FIFO snapshot deeper than the restoring "
            "queue's capacity (config mismatch)");
    }
    for (std::uint32_t i = 0; i < count; ++i)
        fifo.push(load_elem(r));
    fifo.commit();
}

inline void
saveFlitFifoElem(CkptWriter &w, const Flit &flit)
{
    saveFlit(w, flit);
}

template <typename Fifo>
void
saveFlitFifo(CkptWriter &w, const Fifo &fifo)
{
    saveFifo(w, fifo,
             [](CkptWriter &out, const Flit &f) { saveFlit(out, f); });
}

template <typename Fifo>
void
loadFlitFifo(CkptReader &r, Fifo &fifo)
{
    loadStagedFifo(r, fifo,
                   [](CkptReader &in) { return loadFlit(in); });
}

} // namespace hrsim

#endif // HRSIM_CKPT_STATE_IO_HH
