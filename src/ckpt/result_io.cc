#include "ckpt/result_io.hh"

#include <cstdio>
#include <fstream>

namespace hrsim
{

namespace
{

/** Eight bytes of magic: "hrsimrs" + a format byte. */
constexpr char resultMagic[8] = {'h', 'r', 's', 'i',
                                 'm', 'r', 's', '1'};

} // namespace

void
saveMetricSamples(CkptWriter &w,
                  const std::vector<MetricSample> &samples)
{
    w.u32(static_cast<std::uint32_t>(samples.size()));
    for (const MetricSample &sample : samples) {
        w.str(sample.name);
        w.u8(static_cast<std::uint8_t>(sample.kind));
        w.f64(sample.value);
        w.u64(sample.count);
    }
}

void
loadMetricSamples(CkptReader &r, std::vector<MetricSample> &samples)
{
    samples.clear();
    const std::uint32_t count = r.u32();
    samples.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        MetricSample sample;
        sample.name = r.str();
        sample.kind = static_cast<MetricKind>(r.u8());
        sample.value = r.f64();
        sample.count = r.u64();
        samples.push_back(std::move(sample));
    }
}

void
saveMetricSnapshots(CkptWriter &w,
                    const std::vector<MetricSnapshot> &snapshots)
{
    w.u32(static_cast<std::uint32_t>(snapshots.size()));
    for (const MetricSnapshot &snap : snapshots) {
        w.u64(snap.cycle);
        saveMetricSamples(w, snap.metrics);
    }
}

void
loadMetricSnapshots(CkptReader &r,
                    std::vector<MetricSnapshot> &snapshots)
{
    snapshots.clear();
    const std::uint32_t count = r.u32();
    snapshots.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        MetricSnapshot snap;
        snap.cycle = r.u64();
        loadMetricSamples(r, snap.metrics);
        snapshots.push_back(std::move(snap));
    }
}

void
saveRunResult(CkptWriter &w, const RunResult &result)
{
    w.f64(result.avgLatency);
    w.f64(result.latencyCI95);
    w.u64(result.samples);
    w.f64(result.latencyP50);
    w.f64(result.latencyP95);
    w.f64(result.latencyP99);
    w.f64(result.networkUtilization);
    w.u32(static_cast<std::uint32_t>(
        result.ringLevelUtilization.size()));
    for (const double util : result.ringLevelUtilization)
        w.f64(util);
    w.u64(result.counters.missesGenerated);
    w.u64(result.counters.remoteIssued);
    w.u64(result.counters.remoteCompleted);
    w.u64(result.counters.localIssued);
    w.u64(result.counters.localCompleted);
    w.u64(result.counters.blockedCycles);
    w.u64(result.cycles);
    w.f64(result.throughputPerPm);
    w.u8(static_cast<std::uint8_t>(result.stopReason));
    w.f64(result.relHalfWidth);
    w.u64(result.warmupCycles);
    saveMetricSamples(w, result.metrics);
    saveMetricSnapshots(w, result.snapshots);
}

RunResult
loadRunResult(CkptReader &r)
{
    RunResult result;
    result.avgLatency = r.f64();
    result.latencyCI95 = r.f64();
    result.samples = r.u64();
    result.latencyP50 = r.f64();
    result.latencyP95 = r.f64();
    result.latencyP99 = r.f64();
    result.networkUtilization = r.f64();
    const std::uint32_t levels = r.u32();
    result.ringLevelUtilization.reserve(levels);
    for (std::uint32_t i = 0; i < levels; ++i)
        result.ringLevelUtilization.push_back(r.f64());
    result.counters.missesGenerated = r.u64();
    result.counters.remoteIssued = r.u64();
    result.counters.remoteCompleted = r.u64();
    result.counters.localIssued = r.u64();
    result.counters.localCompleted = r.u64();
    result.counters.blockedCycles = r.u64();
    result.cycles = r.u64();
    result.throughputPerPm = r.f64();
    result.stopReason = static_cast<StopReason>(r.u8());
    result.relHalfWidth = r.f64();
    result.warmupCycles = r.u64();
    loadMetricSamples(r, result.metrics);
    loadMetricSnapshots(r, result.snapshots);
    return result;
}

void
writeResultFile(const std::string &path,
                const std::string &configKey,
                const RunResult &result)
{
    CkptWriter payload;
    saveRunResult(payload, result);

    CkptWriter container;
    container.u32(ckptSchemaVersion);
    container.str(configKey);
    container.u64(payload.size());

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw CheckpointError(
                "sweep journal: cannot open file for writing: " +
                tmp);
        }
        out.write(resultMagic, sizeof(resultMagic));
        out.write(reinterpret_cast<const char *>(
                      container.data().data()),
                  static_cast<std::streamsize>(container.size()));
        out.write(reinterpret_cast<const char *>(
                      payload.data().data()),
                  static_cast<std::streamsize>(payload.size()));
        CkptWriter trailer;
        trailer.u64(
            ckptFnv1a(payload.data().data(), payload.size()));
        out.write(reinterpret_cast<const char *>(
                      trailer.data().data()),
                  static_cast<std::streamsize>(trailer.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw CheckpointError("sweep journal: write failed: " +
                                  tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("sweep journal: cannot rename " + tmp +
                              " to " + path);
    }
}

bool
tryReadResultFile(const std::string &path,
                  const std::string &configKey, RunResult &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false; // the point has not completed
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        throw CheckpointError("sweep journal: read error on file: " +
                              path);
    }

    if (bytes.size() < sizeof(resultMagic) ||
        std::memcmp(bytes.data(), resultMagic,
                    sizeof(resultMagic)) != 0) {
        throw CheckpointError(
            "sweep journal: not a hrsim result file: " + path);
    }
    bytes.erase(bytes.begin(), bytes.begin() + sizeof(resultMagic));
    CkptReader r(std::move(bytes));

    const std::uint32_t version = r.u32();
    if (version != ckptSchemaVersion) {
        throw CheckpointError(
            "sweep journal: schema version " +
            std::to_string(version) + " in " + path +
            " does not match this build's version " +
            std::to_string(ckptSchemaVersion));
    }
    const std::string stored_key = r.str();
    if (stored_key != configKey) {
        throw CheckpointError(
            "sweep journal: config mismatch for " + path +
            "\n  journal: " + stored_key + "\n  run:     " +
            configKey);
    }

    const std::uint64_t payload_size = r.u64();
    if (payload_size > r.remaining()) {
        throw CheckpointError("sweep journal: truncated payload in " +
                              path);
    }
    std::vector<std::uint8_t> payload(payload_size);
    for (std::uint64_t i = 0; i < payload_size; ++i)
        payload[i] = r.u8();

    const std::uint64_t stored_hash = r.u64();
    if (stored_hash != ckptFnv1a(payload.data(), payload.size())) {
        throw CheckpointError(
            "sweep journal: payload hash mismatch in " + path +
            " (file is corrupt or was not fully written)");
    }
    if (!r.atEnd()) {
        throw CheckpointError(
            "sweep journal: trailing bytes after payload in " +
            path);
    }

    CkptReader pr(std::move(payload));
    out = loadRunResult(pr);
    if (!pr.atEnd()) {
        throw CheckpointError(
            "sweep journal: trailing bytes after result in " + path);
    }
    return true;
}

} // namespace hrsim
