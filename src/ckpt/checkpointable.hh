/**
 * @file
 * The component-side checkpoint contract.
 *
 * A Checkpointable component can serialize its complete authoritative
 * state into a CkptWriter and later reconstruct it from a CkptReader
 * positioned at the matching offset. The contract (DESIGN.md section
 * 16):
 *
 *  - Save happens only at a tick boundary (between commit and the
 *    next evaluate), where staged FIFO slots are empty and per-cycle
 *    scratch flags are dead. Components therefore serialize visible
 *    state only.
 *  - Authoritative state only. Anything rebuilt by an existing
 *    configuration path — columnar column bindings, cached FIFO
 *    views, utilization counter pointers, route LUTs — is derived
 *    and is reconstructed after load via those same paths
 *    (bindColumns / refreshViews / setActiveScheduling), never
 *    serialized.
 *  - saveState() is const and must not perturb the run: a run that
 *    saves a checkpoint stays bit-identical to one that does not.
 *  - Field order is fixed and symmetric: loadState() reads exactly
 *    the fields saveState() wrote, in order. There is no tagging —
 *    the container's schema version gates incompatible layouts.
 */

#ifndef HRSIM_CKPT_CHECKPOINTABLE_HH
#define HRSIM_CKPT_CHECKPOINTABLE_HH

namespace hrsim
{

class CkptWriter;
class CkptReader;

class Checkpointable
{
  public:
    virtual ~Checkpointable() = default;

    /** Append this component's authoritative state to @a w. */
    virtual void saveState(CkptWriter &w) const = 0;

    /**
     * Restore state previously written by saveState(). The reader is
     * positioned at this component's first field; implementations
     * must consume exactly what saveState() wrote.
     */
    virtual void loadState(CkptReader &r) = 0;
};

} // namespace hrsim

#endif // HRSIM_CKPT_CHECKPOINTABLE_HH
