/**
 * @file
 * Dense active-set used by the network schedulers.
 *
 * An ActiveSet tracks which component indices of a network are awake
 * (hold at least one flit, staged or visible). It is a dense index
 * vector plus a membership bitmap: add() is O(1) amortized and
 * idempotent, retain() is an order-preserving linear sweep, and
 * ordered() yields the members in ascending index order — the same
 * order the full-scan tick loops use — so arbitration, occupancy
 * updates and RNG draws are bit-identical between the active-set and
 * tick-everything schedulers (see DESIGN.md section 10).
 *
 * The set keeps itself sorted lazily: appends that arrive in
 * ascending order (the common case — wakes happen while iterating the
 * already-sorted set) keep the sorted_ flag, anything else marks the
 * set dirty and the next ordered() call re-sorts.
 */

#ifndef HRSIM_SIM_ACTIVE_SET_HH
#define HRSIM_SIM_ACTIVE_SET_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace hrsim
{

/**
 * Port-granular activity mask: the node-granular ActiveSet below says
 * *which* components tick, a PortMask says which of a component's few
 * ports have work, so its evaluate touches only those. One bit per
 * port in a uint8 (no component has more than 8), iterated lowest bit
 * first with ctz — ascending port order, which is exactly the order
 * the straight-line loops visit ports in, so a mask-driven loop is
 * bit-identical to the full port scan by construction:
 *
 *     for (PortMask m = mask; m != 0; m = dropLowestPort(m))
 *         visit(lowestSetPort(m));
 */
using PortMask = std::uint8_t;

/** Index of the lowest set bit (mask must be nonzero). */
inline int
lowestSetPort(PortMask mask)
{
    return std::countr_zero(mask);
}

/** Clear the lowest set bit. */
inline PortMask
dropLowestPort(PortMask mask)
{
    return static_cast<PortMask>(mask & (mask - 1));
}

class ActiveSet
{
  public:
    /** Reset to an empty set over indices [0, n). */
    void
    reset(std::size_t n)
    {
        members_.clear();
        members_.reserve(n);
        in_.assign(n, 0);
        sorted_ = true;
    }

    /** Wake @a id. Idempotent; O(1) unless already present. */
    void
    add(std::uint32_t id)
    {
        HRSIM_ASSERT(id < in_.size());
        if (in_[id])
            return;
        in_[id] = 1;
        if (!members_.empty() && members_.back() > id)
            sorted_ = false;
        members_.push_back(id);
    }

    bool
    contains(std::uint32_t id) const
    {
        HRSIM_ASSERT(id < in_.size());
        return in_[id] != 0;
    }

    bool empty() const { return members_.empty(); }
    std::size_t size() const { return members_.size(); }

    /** Members in ascending index order (sorts lazily if dirty). */
    const std::vector<std::uint32_t> &
    ordered()
    {
        if (!sorted_) {
            std::sort(members_.begin(), members_.end());
            sorted_ = true;
        }
        return members_;
    }

    /**
     * Sort (lazily) and return the current member count as a stable
     * iteration bound: adds during iteration only append, so indices
     * [0, orderedPrefix()) keep their values and order — no snapshot
     * copy needed. Read them with at().
     */
    std::size_t
    orderedPrefix()
    {
        ordered();
        return members_.size();
    }

    /** Member at position @a i (see orderedPrefix() / raw()). */
    std::uint32_t at(std::size_t i) const { return members_[i]; }

    /**
     * Members in wake order, without sorting. Deterministic (a pure
     * function of the simulation history) but NOT ascending — use
     * only where iteration order is immaterial, e.g. end-of-cycle
     * commits, which touch one component each.
     */
    const std::vector<std::uint32_t> &raw() const { return members_; }

    /**
     * Keep only members for which @a pred returns true; removed
     * members go to sleep (their bitmap bit clears). Preserves the
     * relative order of survivors.
     */
    template <typename Pred>
    void
    retain(Pred &&pred)
    {
        std::size_t out = 0;
        for (std::size_t i = 0; i < members_.size(); ++i) {
            const std::uint32_t id = members_[i];
            if (pred(id)) {
                members_[out++] = id;
            } else {
                in_[id] = 0;
            }
        }
        members_.resize(out);
    }

  private:
    std::vector<std::uint32_t> members_;
    std::vector<std::uint8_t> in_; //!< membership bitmap
    bool sorted_ = true;
};

} // namespace hrsim

#endif // HRSIM_SIM_ACTIVE_SET_HH
