/**
 * @file
 * Runtime oracle switch for the worm-streaming fast paths.
 *
 * The tick hot paths have two implementations: the streaming fast
 * path (default) and the straight-line legacy code it was derived
 * from. Setting HRSIM_NO_FASTPATH (any value but "" or "0") selects
 * the legacy code everywhere, exactly like HRSIM_FORCE_FULL_SCAN does
 * for the active-set scheduler, so the two can be regression-checked
 * against each other — the bit-identity grids in test_active_set.cc
 * (fault-free configs) and test_fault.cc (scheduled fault plans) run
 * every config under both settings and require byte-identical
 * results (see DESIGN.md sections 12 and 13 for the invariants).
 *
 * The flag is read at System/network construction, never on the hot
 * path; a run is entirely fast-path or entirely legacy.
 */

#ifndef HRSIM_SIM_FASTPATH_HH
#define HRSIM_SIM_FASTPATH_HH

#include <cstdlib>

namespace hrsim
{

/** Streaming fast paths enabled? (HRSIM_NO_FASTPATH unset/empty/"0") */
inline bool
fastPathEnabled()
{
    const char *no = std::getenv("HRSIM_NO_FASTPATH");
    const bool disabled = no != nullptr && no[0] != '\0' &&
                          !(no[0] == '0' && no[1] == '\0');
    return !disabled;
}

} // namespace hrsim

#endif // HRSIM_SIM_FASTPATH_HH
