/**
 * @file
 * Abstract interconnection-network interface.
 *
 * Both the hierarchical ring network and the 2D mesh implement this
 * interface. A network is ticked once per system clock cycle with a
 * two-phase (evaluate, then commit) discipline internally, accepts
 * packet injections from processing modules, and delivers packets to
 * the registered handler when the tail flit reaches its destination.
 *
 * Observability: a network publishes its component counters and
 * gauges into a MetricRegistry (registerMetrics()) and accepts an
 * optional FlitTracer that logs inject/hop/eject events; both are
 * pull-model/opt-in, so the tick hot path is unaffected when unused.
 */

#ifndef HRSIM_SIM_NETWORK_HH
#define HRSIM_SIM_NETWORK_HH

#include <functional>

#include "ckpt/checkpointable.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "obs/flit_trace.hh"
#include "proto/packet.hh"
#include "sim/parallel.hh"
#include "stats/utilization.hh"

namespace hrsim
{

class MetricRegistry;
class TickPool;
struct FaultAccounting;
struct FaultEvent;
struct FaultTarget;

/** Progress counters of the parallel tick engine (zero when the
 *  network ticks serially; see registerSystemMetrics gating). */
struct TickParallelStats
{
    /** Ticks that actually dispatched shards to the pool. */
    std::uint64_t parallelTicks = 0;
    /** Total shard evaluate callbacks executed across those ticks. */
    std::uint64_t shardEvals = 0;
};

class Network : public Checkpointable
{
  public:
    /** Callback invoked when a packet fully arrives at its target. */
    using DeliveryHandler = std::function<void(const Packet &, Cycle)>;

    virtual ~Network() = default;

    /** Number of processing modules attached. */
    virtual int numProcessors() const = 0;

    /**
     * May PM @a pm inject @a pkt this cycle? True when the NIC output
     * queue for the packet's class has room for every flit.
     */
    virtual bool canInject(NodeId pm, const Packet &pkt) const = 0;

    /** Inject @a pkt at PM @a pm; caller must check canInject(). */
    virtual void inject(NodeId pm, const Packet &pkt) = 0;

    /** Advance the network by one system clock cycle. */
    virtual void tick(Cycle now) = 0;

    /** Register the delivery callback (one handler per network). */
    void setDeliveryHandler(DeliveryHandler handler)
    {
        deliver_ = std::move(handler);
    }

    /** Link-utilization accounting for this network. */
    virtual UtilizationTracker &utilization() = 0;
    virtual const UtilizationTracker &utilization() const = 0;

    /** Total flits currently buffered inside the network. */
    virtual std::uint64_t flitsInFlight() const = 0;

    /**
     * Switch between the active-set scheduler (true) and the legacy
     * scan-everything tick loop (false, the default). Results are
     * bit-identical either way (see DESIGN.md section 10); networks
     * without an active-set implementation ignore the call.
     */
    virtual void setActiveScheduling(bool enabled) { (void)enabled; }

    /**
     * Switch between the worm-streaming fast path (true) and the
     * legacy straight-line tick code it was derived from (false, the
     * default — and the HRSIM_NO_FASTPATH oracle). Results are
     * bit-identical either way (see DESIGN.md section 12); networks
     * without a fast path ignore the call.
     */
    virtual void setFastPath(bool enabled) { (void)enabled; }

    /**
     * Switch between the columnar tick engine (true) — hot per-cycle
     * state hoisted into flat struct-of-arrays columns and the active
     * set held as a two-level bitmap — and the legacy in-object
     * layout (false, the HRSIM_NO_COLUMNAR oracle). Results are
     * bit-identical either way (see DESIGN.md section 14); networks
     * without a columnar engine ignore the call. Must be called
     * before setActiveScheduling() so wake seeding lands in the
     * right scheduler structure.
     */
    virtual void setColumnar(bool enabled) { (void)enabled; }

    /**
     * True when no component holds any flit, i.e. a tick would move
     * nothing. O(1) for networks with an active-set scheduler.
     */
    virtual bool isIdle() const { return flitsInFlight() == 0; }

    /** Components currently awake (0 when not active-scheduling). */
    virtual std::size_t activeNodeCount() const { return 0; }

    /**
     * Register this network's counters and gauges under stable
     * hierarchical names (e.g. "ring.l1.iri3.wait_cycles"). Samplers
     * capture `this`; the network must outlive registry snapshots.
     * The default registers nothing (for minimal test networks).
     */
    virtual void
    registerMetrics(MetricRegistry &registry) const
    {
        (void)registry;
    }

    /**
     * Does this network have the component @a target names? Used to
     * validate a fault plan against the topology at System build
     * time. The default (no fault support) rejects every target —
     * plans against such a network fail fast instead of silently
     * doing nothing.
     */
    virtual bool
    faultTargetValid(const FaultTarget &target) const
    {
        (void)target;
        return false;
    }

    /**
     * Apply (@a active) or lift one scheduled fault. Called by the
     * FaultController at the event's start and end cycles, before
     * the cycle is evaluated. Overlapping windows on one target
     * nest: implementations count applications per target rather
     * than setting booleans. Only reachable after faultTargetValid()
     * accepted the target, so the default is unreachable.
     */
    virtual void
    applyFault(const FaultEvent &event, bool active)
    {
        (void)event;
        (void)active;
        HRSIM_PANIC("network has no fault support");
    }

    /**
     * Share the conservation ledger (injected/delivered/dropped
     * flits). Non-null only when a fault plan is active; networks
     * skip all fault accounting when unset, keeping fault-free runs
     * byte-identical to a tree without the subsystem.
     */
    virtual void setFaultAccounting(FaultAccounting *acct)
    {
        (void)acct;
    }

    /**
     * Attach the shared shard-parallel tick pool. Networks that
     * implement a parallel columnar tick (ring, mesh) partition
     * themselves into structural shards and dispatch their evaluate
     * phases through @a pool; everyone else ignores the call and
     * keeps ticking serially. Results are bit-identical at any pool
     * width (DESIGN.md section 15). Must be called after
     * setColumnar()/setActiveScheduling() — the shard decomposition
     * is built over the columnar structures. Passing nullptr (or a
     * one-participant pool) restores the serial tick.
     */
    virtual void setTickParallel(TickPool *pool) { (void)pool; }

    /** Parallel-tick progress counters (all-zero for serial ticks). */
    virtual TickParallelStats tickParallelStats() const { return {}; }

    /** Attach (or detach, with nullptr) the flit event tracer. */
    void setTracer(FlitTracer *tracer) { tracer_ = tracer; }
    FlitTracer *tracer() const { return tracer_; }

    /**
     * True when this network implements the Checkpointable hooks.
     * The slotted ring does not (no worm-drain story — the same
     * reason it rejects fault plans); System::saveCheckpoint refuses
     * up front instead of dying inside saveState().
     */
    virtual bool checkpointSupported() const { return false; }

    /**
     * Checkpointable defaults for networks without support; concrete
     * networks with checkpointSupported() == true override both.
     * Unreachable through System, which gates on the flag above.
     */
    void saveState(CkptWriter &w) const override
    {
        (void)w;
        fatal("this network does not support checkpointing");
    }

    void loadState(CkptReader &r) override
    {
        (void)r;
        fatal("this network does not support checkpointing");
    }

  protected:
    /** Deliver @a pkt to the attached PM at cycle @a now. During a
     *  parallel evaluate phase the delivery is deferred into the
     *  executing shard's sink and replayed here, in the serial
     *  engine's delivery order, at the phase barrier. */
    void
    delivered(const Packet &pkt, Cycle now) const
    {
        if (ShardSink *sink = tlsShardSink) {
            sink->deliveries.push_back(DeferredDelivery{pkt, now});
            return;
        }
        if (deliver_)
            deliver_(pkt, now);
        HRSIM_TRACE_FLIT(tracer_, FlitEvent::Eject, pkt.id, pkt.dst,
                         0);
    }

    /**
     * The attached tracer (nullptr when tracing is off). Concrete
     * networks hand &tracer_ to their link drivers so hop hooks see
     * tracer attachment without per-link re-wiring.
     */
    FlitTracer *tracer_ = nullptr;

  private:
    DeliveryHandler deliver_;
};

} // namespace hrsim

#endif // HRSIM_SIM_NETWORK_HH
