/**
 * @file
 * Columnar tick-engine primitives: the HRSIM_NO_COLUMNAR oracle
 * switch and the two-level bitmap active mask.
 *
 * The columnar engine hoists the hot per-cycle state out of the node
 * objects into flat struct-of-arrays owned by the network — ring
 * input latches and acceptance flags (ring_node.hh points RingSide at
 * them), mesh FIFO cursor blocks (FifoState columns bound through
 * StagedFifoView) and the mesh routers' changed/poked flags — so the
 * evaluate/commit phases become linear sweeps over contiguous arrays
 * instead of walks over ~0.5 KB node objects. Node classes keep their
 * cold state and logic and read/write the hot state through the same
 * handles in both modes; only where the bytes live differs.
 *
 * Setting HRSIM_NO_COLUMNAR (any value but "" or "0") keeps the
 * legacy in-object layout and the legacy ActiveSet tick loops alive
 * as a bit-identity oracle, exactly like HRSIM_NO_FASTPATH and
 * HRSIM_FORCE_FULL_SCAN do for their axes; the bit-identity grid in
 * test_active_set.cc crosses all three. The flag is read once at
 * System construction, never on the hot path.
 */

#ifndef HRSIM_SIM_COLUMNS_HH
#define HRSIM_SIM_COLUMNS_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/log.hh"

namespace hrsim
{

/** Columnar layout enabled? (HRSIM_NO_COLUMNAR unset/empty/"0") */
inline bool
columnarEnabled()
{
    const char *no = std::getenv("HRSIM_NO_COLUMNAR");
    const bool disabled = no != nullptr && no[0] != '\0' &&
                          !(no[0] == '0' && no[1] == '\0');
    return !disabled;
}

/**
 * Two-level 64-bit bitmap over component ids: one leaf bit per id
 * plus one summary bit per leaf word, so membership scans cost
 * O(set bits) in both the sparse regime (ctz hops from summary bit
 * to summary bit) and the dense one (long runs collapse into full
 * leaf words) — no per-id branch and no member vector to sort.
 *
 * Replaces ActiveSet in the columnar tick loops. The determinism
 * contract differs from ActiveSet's in one deliberate way: there is
 * no wake-order view (raw()) and no start-of-phase prefix — every
 * scan visits the *live* set in ascending id order. That is sound
 * for exactly the places the columnar ticks use it (see DESIGN.md
 * section 14): a component woken mid-phase was asleep, i.e. empty
 * (ring) or provably no-op (mesh), and staged flits stay invisible
 * until commit, so visiting it early is indistinguishable from not
 * visiting it; end-of-cycle commits and sleep sweeps touch one
 * component each, so ascending order replaces wake order freely.
 *
 * forEach() snapshots the summary word per 4096-id block and each
 * 64-id leaf word as it reaches it: bits added into the word being
 * scanned — or into a previously-empty word whose summary bit missed
 * the snapshot — are picked up next cycle (matching
 * ActiveSet::orderedPrefix), while bits added into a still-ahead live
 * word or a later summary block are visited this pass (matching the
 * full scan — a no-op visit).
 */
class ActiveMask
{
  public:
    /** Reset to an empty mask over ids [0, n). */
    void
    reset(std::size_t n)
    {
        const std::size_t words = (n + 63) / 64;
        words_.assign(words, 0);
        summary_.assign((words + 63) / 64, 0);
        count_ = 0;
    }

    /** Wake @a id. Idempotent; O(1). */
    void
    add(std::uint32_t id)
    {
        const std::size_t w = id / 64;
        HRSIM_ASSERT(w < words_.size());
        const std::uint64_t bit = std::uint64_t{1} << (id % 64);
        if (words_[w] & bit)
            return;
        words_[w] |= bit;
        summary_[w / 64] |= std::uint64_t{1} << (w % 64);
        ++count_;
    }

    bool
    contains(std::uint32_t id) const
    {
        const std::size_t w = id / 64;
        HRSIM_ASSERT(w < words_.size());
        return (words_[w] >> (id % 64)) & 1u;
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Leaf words backing the mask (shard ranges partition these). */
    std::size_t wordCount() const { return words_.size(); }

    /**
     * Visit every member in ascending id order. Members added during
     * the scan are visited iff their leaf word lies beyond the scan
     * position (see the class comment for why either is sound).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t s = 0; s < summary_.size(); ++s) {
            std::uint64_t sum = summary_[s];
            while (sum != 0) {
                const std::size_t w =
                    s * 64 +
                    static_cast<std::size_t>(std::countr_zero(sum));
                sum &= sum - 1;
                std::uint64_t word = words_[w];
                while (word != 0) {
                    const auto id = static_cast<std::uint32_t>(
                        w * 64 + static_cast<std::size_t>(
                                     std::countr_zero(word)));
                    word &= word - 1;
                    fn(id);
                }
            }
        }
    }

    /**
     * Keep only members for which @a pred returns true (ascending id
     * order; removed members' bits clear). @a pred must not add()
     * — the sleep sweeps never wake anything.
     */
    template <typename Pred>
    void
    retain(Pred &&pred)
    {
        for (std::size_t s = 0; s < summary_.size(); ++s) {
            std::uint64_t sum = summary_[s];
            while (sum != 0) {
                const std::size_t w =
                    s * 64 +
                    static_cast<std::size_t>(std::countr_zero(sum));
                sum &= sum - 1;
                std::uint64_t word = words_[w];
                while (word != 0) {
                    const std::uint64_t bit = word & (~word + 1);
                    const auto id = static_cast<std::uint32_t>(
                        w * 64 + static_cast<std::size_t>(
                                     std::countr_zero(word)));
                    word &= word - 1;
                    if (!pred(id)) {
                        words_[w] &= ~bit;
                        --count_;
                    }
                }
                if (words_[w] == 0) {
                    summary_[s] &=
                        ~(std::uint64_t{1} << (w % 64));
                }
            }
        }
    }

    /**
     * Visit every member with id in [idLo, idHi) in ascending order.
     * Safe to run concurrently with other read-only range scans over
     * any id ranges: the scan reads words_ only (no summary hop — the
     * ranges the parallel tick uses are short), so it requires that
     * no add()/retain() runs concurrently. The parallel evaluate
     * phases guarantee exactly that by deferring every wake
     * (sim/parallel.hh), which freezes the mask for the whole phase.
     */
    template <typename Fn>
    void
    forEachInRange(std::uint32_t idLo, std::uint32_t idHi,
                   Fn &&fn) const
    {
        if (idLo >= idHi)
            return;
        const std::size_t wLo = idLo / 64;
        const std::size_t wHi = (idHi - 1) / 64;
        HRSIM_ASSERT(wHi < words_.size());
        for (std::size_t w = wLo; w <= wHi; ++w) {
            std::uint64_t word = words_[w];
            if (w == wLo && idLo % 64 != 0)
                word &= ~std::uint64_t{0} << (idLo % 64);
            if (w == wHi && idHi % 64 != 0) {
                word &= ~std::uint64_t{0} >>
                        (64 - idHi % 64);
            }
            while (word != 0) {
                const auto id = static_cast<std::uint32_t>(
                    w * 64 +
                    static_cast<std::size_t>(std::countr_zero(word)));
                word &= word - 1;
                fn(id);
            }
        }
    }

    /**
     * retain() restricted to the leaf words [wordLo, wordHi), for the
     * shard-parallel sleep sweeps: clears leaf bits only and touches
     * neither summary_ nor count_ (both are shared across ranges), so
     * disjoint word ranges may run concurrently. The caller must run
     * rebuildAggregates() once after every range completed; until
     * then forEach()/size()/empty() are unreliable. @a pred must not
     * add().
     */
    template <typename Pred>
    void
    retainWordRange(std::size_t wordLo, std::size_t wordHi,
                    Pred &&pred)
    {
        HRSIM_ASSERT(wordHi <= words_.size());
        for (std::size_t w = wordLo; w < wordHi; ++w) {
            std::uint64_t word = words_[w];
            while (word != 0) {
                const std::uint64_t bit = word & (~word + 1);
                const auto id = static_cast<std::uint32_t>(
                    w * 64 +
                    static_cast<std::size_t>(std::countr_zero(word)));
                word &= word - 1;
                if (!pred(id))
                    words_[w] &= ~bit;
            }
        }
    }

    /**
     * Recompute summary_ and count_ from words_ after a round of
     * retainWordRange() calls. O(words); the masks this engine uses
     * span at most a few thousand ids, so the rebuild is a handful of
     * popcounts per tick.
     */
    void
    rebuildAggregates()
    {
        count_ = 0;
        for (std::size_t s = 0; s < summary_.size(); ++s) {
            std::uint64_t sum = 0;
            const std::size_t base = s * 64;
            const std::size_t lim =
                std::min(words_.size() - base, std::size_t{64});
            for (std::size_t i = 0; i < lim; ++i) {
                if (words_[base + i] != 0) {
                    sum |= std::uint64_t{1} << i;
                    count_ += static_cast<std::size_t>(
                        std::popcount(words_[base + i]));
                }
            }
            summary_[s] = sum;
        }
    }

  private:
    std::vector<std::uint64_t> words_;   //!< one bit per id
    std::vector<std::uint64_t> summary_; //!< one bit per leaf word
    std::size_t count_ = 0;
};

/**
 * Hot per-router flag pair, hoisted into a network column in
 * columnar mode so the end-of-cycle sleep sweep reads a contiguous
 * array instead of touching every router object (mesh_router.hh
 * holds a pointer defaulting to in-object storage).
 */
struct RouterFlags
{
    /** This cycle's evaluate granted a port or moved a flit. */
    bool changed = false;
    /** External wake event since the last sleep sweep. */
    bool poked = false;
};

} // namespace hrsim

#endif // HRSIM_SIM_COLUMNS_HH
