/**
 * @file
 * Thread-local deferral sinks for the intra-run parallel tick
 * (DESIGN.md section 15).
 *
 * During a shard-parallel evaluate phase, the only mutations that
 * would cross shard boundaries are (a) waking a component that lives
 * in another shard's mask range (the ActiveMask summary word and
 * population count are shared across all ranges, so even a same-shard
 * wake is unsafe mid-phase) and (b) delivering a packet to the
 * System's handler, which mutates simulator-global state and, for the
 * mesh, feeds order-sensitive floating-point accumulators. Both are
 * therefore *deferred*: the component records the intent into its
 * shard's sink and the network drains the sinks on the calling thread
 * at the phase barrier — wakes merged before the commit phase (a
 * mid-tick-woken component must still commit this cycle), deliveries
 * drained in ascending shard order, which the networks arrange to
 * equal the serial engine's ascending-node-id delivery order, so the
 * delivered sequence is bit-identical to the single-threaded tick.
 *
 * The sink pointer is thread-local and null outside a parallel
 * evaluate phase, so every serial path (default single-threaded runs,
 * the legacy/full-scan oracles, commit phases, the global-ring fast
 * domain) takes the direct branch; the cost on those paths is one TLS
 * load and a predictable branch per wake/delivery.
 */

#ifndef HRSIM_SIM_PARALLEL_HH
#define HRSIM_SIM_PARALLEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "proto/packet.hh"

namespace hrsim
{

class ActiveMask;

/** A wake recorded during a parallel evaluate phase. Duplicates are
 *  allowed (ActiveMask::add is idempotent); the merge happens on the
 *  caller thread between the evaluate barrier and the commit phase. */
struct DeferredWake
{
    ActiveMask *mask;
    std::uint32_t id;
};

/** A delivery recorded during a parallel evaluate phase, replayed
 *  through Network::delivered() at the barrier. */
struct DeferredDelivery
{
    Packet pkt;
    Cycle when;
};

/**
 * Per-shard deferral buffers. The vectors are cleared (capacity
 * retained) each tick, so steady state allocates nothing.
 */
struct ShardSink
{
    std::vector<DeferredWake> wakes;
    std::vector<DeferredDelivery> deliveries;

    void
    clear()
    {
        wakes.clear();
        deliveries.clear();
    }
};

/**
 * The executing shard's sink; set by the network's shard callback for
 * the duration of one shard's evaluate work, null everywhere else.
 */
inline thread_local ShardSink *tlsShardSink = nullptr;

} // namespace hrsim

#endif // HRSIM_SIM_PARALLEL_HH
