#include "mesh/mesh_network.hh"

#include "common/log.hh"
#include "obs/metric_registry.hh"

namespace hrsim
{

MeshNetwork::MeshNetwork(const Params &params)
    : params_(params),
      clFlits_(ChannelSpec::mesh().cacheLineFlits(params.cacheLineBytes)),
      bufferFlits_(params.bufferFlits == 0 ? clFlits_
                                           : params.bufferFlits)
{
    if (params_.width < 1)
        fatal("MeshNetwork: width must be >= 1");

    const int num_pms = params_.width * params_.width;
    routers_.reserve(static_cast<std::size_t>(num_pms));
    for (NodeId id = 0; id < num_pms; ++id) {
        routers_.push_back(std::make_unique<MeshRouter>(
            id, params_.width, bufferFlits_, clFlits_,
            params_.roundRobinArbitration));
        routers_.back()->setDeliver(
            [this](const Packet &pkt, Cycle when) {
                delivered(pkt, when);
            });
        routers_.back()->setTracerSlot(&tracer_);
    }
    active_.reset(routers_.size());
    for (auto &router : routers_)
        router->setWakeSet(&active_);

    meshGroup_ = util_.group("mesh");
    const int w = params_.width;
    for (int y = 0; y < w; ++y) {
        for (int x = 0; x < w; ++x) {
            MeshRouter *self = routers_[
                static_cast<std::size_t>(y * w + x)].get();
            const auto wire = [&](MeshPort port, int nx, int ny) {
                MeshRouter *peer = routers_[
                    static_cast<std::size_t>(ny * w + nx)].get();
                self->connect(port, peer, &util_,
                              util_.addLink(meshGroup_));
            };
            if (x + 1 < w)
                wire(PortEast, x + 1, y);
            if (x > 0)
                wire(PortWest, x - 1, y);
            if (y + 1 < w)
                wire(PortSouth, x, y + 1);
            if (y > 0)
                wire(PortNorth, x, y - 1);
        }
    }
}

int
MeshNetwork::numProcessors() const
{
    return params_.width * params_.width;
}

bool
MeshNetwork::canInject(NodeId pm, const Packet &pkt) const
{
    HRSIM_ASSERT(pm >= 0 && pm < numProcessors());
    return routers_[static_cast<std::size_t>(pm)]->canInject(pkt);
}

void
MeshNetwork::inject(NodeId pm, const Packet &pkt)
{
    HRSIM_ASSERT(pm >= 0 && pm < numProcessors());
    HRSIM_ASSERT(pkt.src == pm);
    if (pkt.dst == broadcastNode)
        fatal("MeshNetwork: meshes have no broadcast; send unicasts");
    routers_[static_cast<std::size_t>(pm)]->inject(pkt);
    active_.add(static_cast<std::uint32_t>(pm));
    HRSIM_TRACE_FLIT(tracer_, FlitEvent::Inject, pkt.id, pm,
                     routers_[static_cast<std::size_t>(pm)]->flitCount());
}

void
MeshNetwork::tick(Cycle now)
{
    // Two-phase semantics live inside the staged FIFOs, so the
    // evaluation order of routers is immaterial.
    if (!activeSched_) {
        for (auto &router : routers_)
            router->evaluate(now);
        for (auto &router : routers_)
            router->commit();
        return;
    }

    // Active path: evaluate the start-of-cycle sorted prefix (a
    // router woken mid-tick was quiescent, so its skipped evaluate is
    // a no-op; wakes only append, so prefix indices stay stable),
    // commit the raw list so mid-tick arrivals get published (commits
    // are per-router bookkeeping — order-free), then put drained
    // routers to sleep.
    const std::size_t n = active_.orderedPrefix();
    for (std::size_t i = 0; i < n; ++i)
        routers_[active_.at(i)]->evaluate(now);
    for (const std::uint32_t id : active_.raw())
        routers_[id]->commit();
    // Post-commit, staged counts are published, so quiescent() (all
    // FIFOs visibly empty, short-circuiting) is exactly
    // flitCount() == 0 — and far cheaper for saturated routers.
    active_.retain([this](std::uint32_t id) {
        return !routers_[id]->quiescent();
    });
}

void
MeshNetwork::setActiveScheduling(bool enabled)
{
    activeSched_ = enabled;
    if (!enabled)
        return;
    for (std::size_t id = 0; id < routers_.size(); ++id) {
        if (routers_[id]->flitCount() != 0)
            active_.add(static_cast<std::uint32_t>(id));
    }
}

bool
MeshNetwork::isIdle() const
{
    if (activeSched_)
        return active_.empty();
    return flitsInFlight() == 0;
}

std::size_t
MeshNetwork::activeNodeCount() const
{
    return active_.size();
}

std::uint64_t
MeshNetwork::flitsInFlight() const
{
    std::uint64_t count = 0;
    for (const auto &router : routers_)
        count += router->flitCount();
    return count;
}

double
MeshNetwork::networkUtilization() const
{
    return util_.groupUtilization(meshGroup_);
}

void
MeshNetwork::registerMetrics(MetricRegistry &registry) const
{
    registry.addGauge("mesh.util",
                      [this]() { return networkUtilization(); });
    for (std::size_t id = 0; id < routers_.size(); ++id) {
        const MeshRouter *router = routers_[id].get();
        registry.addGauge("mesh.r" + std::to_string(id) + ".flits",
                          [router]() {
                              return static_cast<double>(
                                  router->flitCount());
                          });
    }
}

MeshRouter &
MeshNetwork::router(NodeId id)
{
    HRSIM_ASSERT(id >= 0 && id < numProcessors());
    return *routers_[static_cast<std::size_t>(id)];
}

} // namespace hrsim
