#include "mesh/mesh_network.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/tick_pool.hh"
#include "obs/metric_registry.hh"

namespace hrsim
{

MeshNetwork::MeshNetwork(const Params &params)
    : params_(params),
      clFlits_(ChannelSpec::mesh().cacheLineFlits(params.cacheLineBytes)),
      bufferFlits_(params.bufferFlits == 0 ? clFlits_
                                           : params.bufferFlits)
{
    if (params_.width < 1)
        fatal("MeshNetwork: width must be >= 1");

    const int num_pms = params_.width * params_.width;
    // Segment one arena so each router's buffered flits occupy
    // adjacent cache lines (the routers themselves store only the
    // queue bookkeeping; see MeshRouter's storage parameter).
    const std::size_t arena_per =
        MeshRouter::arenaFlits(bufferFlits_, clFlits_);
    flitArena_.resize(static_cast<std::size_t>(num_pms) * arena_per);
    routers_.reserve(static_cast<std::size_t>(num_pms));
    for (NodeId id = 0; id < num_pms; ++id) {
        MeshRouter &router = routers_.emplace_back(
            id, params_.width, bufferFlits_, clFlits_,
            params_.roundRobinArbitration,
            flitArena_.data() +
                static_cast<std::size_t>(id) * arena_per);
        router.setDeliver([this](const Packet &pkt, Cycle when) {
            delivered(pkt, when);
        });
        router.setTracerSlot(&tracer_);
    }
    active_.reset(routers_.size());
    for (auto &router : routers_)
        router.setWakeSet(&active_);

    // e-cube routing LUT: one row per router, one byte per
    // destination. Built from the coordinate computation it replaces
    // (test_mesh_network.cc checks the two agree exhaustively).
    const std::size_t p = static_cast<std::size_t>(num_pms);
    routeLut_.resize(p * p);
    for (std::size_t r = 0; r < p; ++r) {
        for (std::size_t dst = 0; dst < p; ++dst) {
            routeLut_[r * p + dst] =
                static_cast<std::uint8_t>(routers_[r].routeOfCoordinate(
                    static_cast<NodeId>(dst)));
        }
        routers_[r].setRouteRow(&routeLut_[r * p]);
    }

    meshGroup_ = util_.group("mesh");
    const int w = params_.width;
    for (int y = 0; y < w; ++y) {
        for (int x = 0; x < w; ++x) {
            MeshRouter &self =
                routers_[static_cast<std::size_t>(y * w + x)];
            const auto wire = [&](MeshPort port, int nx, int ny) {
                MeshRouter &peer =
                    routers_[static_cast<std::size_t>(ny * w + nx)];
                self.connect(port, &peer, &util_,
                             util_.addLink(meshGroup_));
            };
            if (x + 1 < w)
                wire(PortEast, x + 1, y);
            if (x > 0)
                wire(PortWest, x - 1, y);
            if (y + 1 < w)
                wire(PortSouth, x, y + 1);
            if (y > 0)
                wire(PortNorth, x, y - 1);
        }
    }
    // Every group and link is registered now, so the tracker's
    // counter pointers are stable — cache them (and the peer views)
    // in each output port for the per-hop fast path.
    for (auto &router : routers_)
        router.refreshViews();
}

int
MeshNetwork::numProcessors() const
{
    return params_.width * params_.width;
}

bool
MeshNetwork::canInject(NodeId pm, const Packet &pkt) const
{
    HRSIM_ASSERT(pm >= 0 && pm < numProcessors());
    return routers_[static_cast<std::size_t>(pm)].canInject(pkt);
}

void
MeshNetwork::inject(NodeId pm, const Packet &pkt)
{
    HRSIM_ASSERT(pm >= 0 && pm < numProcessors());
    HRSIM_ASSERT(pkt.src == pm);
    if (pkt.dst == broadcastNode)
        fatal("MeshNetwork: meshes have no broadcast; send unicasts");
    routers_[static_cast<std::size_t>(pm)].inject(pkt);
    routers_[static_cast<std::size_t>(pm)].poke();
    wakeRouter(static_cast<std::uint32_t>(pm));
    if (acct_)
        acct_->injectedFlits += pkt.sizeFlits;
    HRSIM_TRACE_FLIT(tracer_, FlitEvent::Inject, pkt.id, pm,
                     routers_[static_cast<std::size_t>(pm)].flitCount());
}

void
MeshNetwork::tick(Cycle now)
{
    // Two-phase semantics live inside the staged FIFOs, so the
    // evaluation order of routers is immaterial.
    if (!activeSched_) {
        for (auto &router : routers_)
            router.evaluate(now);
        if (columnar_) {
            // Router commits are exactly six FIFO-state commits each
            // (flags carry no commit step), so with every cursor
            // hoisted into fifoCol_ the per-router commit loop
            // collapses into one linear sweep over the column.
            for (FifoState &state : fifoCol_)
                state.commit();
        } else {
            for (auto &router : routers_)
                router.commit();
        }
        return;
    }

    if (columnar_) {
        // A live tracer wants the serial hop-event order, so the
        // parallel engine stands down while one is attached.
        if (pool_ != nullptr && tracer_ == nullptr)
            tickColumnarParallel(now);
        else
            tickColumnar(now);
        return;
    }

    // Active path: evaluate the start-of-cycle sorted prefix. A
    // router woken mid-tick was asleep, i.e. its last evaluate
    // changed nothing, so the skipped evaluate this cycle is still a
    // no-op: the event that woke it (arrival, credit) only becomes
    // actionable after the commits below. Wakes only append, so
    // prefix indices stay stable.
    //
    // Saturation hybrid: when most routers are awake the indexed
    // prefix walk loses to a plain linear sweep (sequential stride,
    // no sort, no index indirection), and evaluating the few asleep
    // routers too is harmless — an asleep router's evaluate is a
    // provable no-op (see MeshRouter::sweepKeep). Both walks visit
    // routers in ascending id order, so they are bit-identical.
    if (active_.size() * 4 >= routers_.size() * 3) {
        for (MeshRouter &router : routers_)
            router.evaluate(now);
        // At saturation the sleep sweep rarely retires anyone, so
        // amortize it: most ticks commit everything linearly (a
        // never-woken router's commit is a no-op) and keep the set
        // as-is — retaining an idle router is always sound, only
        // *removal* needs the no-op proof. Every 16th saturated tick
        // runs the real sweep so the set can decay once load drops.
        if (++satTicks_ % 16 != 0) {
            for (MeshRouter &router : routers_)
                router.commit();
            return;
        }
    } else {
        const std::size_t n = active_.orderedPrefix();
        for (std::size_t i = 0; i < n; ++i)
            routers_[active_.at(i)].evaluate(now);
    }
    // Commit fused into the retain sweep (commits are per-router
    // bookkeeping, order-free). The sleep decision is sweepKeep():
    // a router whose evaluate changed nothing sleeps even while it
    // still buffers flits — a back-pressured worm burns no cycles
    // waiting — and is re-woken by the arrival, injection or
    // downstream-credit poke that could let it move again.
    active_.retain([this](std::uint32_t id) {
        MeshRouter &router = routers_[id];
        router.commit();
        return router.sweepKeep();
    });
    // Sleep soundness check: e-cube is deadlock-free and ejection
    // always sinks, so flits in flight imply some router just moved
    // one (and stayed awake). An empty set must mean an empty mesh.
    if (active_.empty())
        HRSIM_ASSERT(flitsInFlight() == 0);
}

void
MeshNetwork::tickColumnar(Cycle now)
{
    // Same scheduler as tickActive above, restated over the bitmap
    // mask and flat FIFO columns. Bit-identity with the legacy path
    // (DESIGN.md section 14): the mask's forEach visits live ids in
    // ascending order; a router woken mid-pass and visited in the
    // same pass was asleep, so its evaluate provably changes nothing
    // (neighbor occupancy is invariant until the commits below), and
    // visiting it now instead of next cycle is a no-op either way.
    if (activeMask_.size() * 4 >= routers_.size() * 3) {
        for (MeshRouter &router : routers_)
            router.evaluate(now);
        // Amortized sleep sweep, as in tick(): most saturated ticks
        // commit everything via a linear cursor sweep (a clean FIFO's
        // commit is a no-op) and skip the retain.
        if (++satTicks_ % 16 != 0) {
            for (FifoState &state : fifoCol_)
                state.commit();
            return;
        }
    } else {
        activeMask_.forEach([this, now](std::uint32_t id) {
            routers_[id].evaluate(now);
        });
    }
    activeMask_.retain([this](std::uint32_t id) {
        FifoState *states = &fifoCol_[static_cast<std::size_t>(id) * 6];
        for (int q = 0; q < 6; ++q)
            states[q].commit();
        return routers_[id].sweepKeep();
    });
    if (activeMask_.empty())
        HRSIM_ASSERT(flitsInFlight() == 0);
}

void
MeshNetwork::setActiveScheduling(bool enabled)
{
    activeSched_ = enabled;
    if (!enabled)
        return;
    for (std::size_t id = 0; id < routers_.size(); ++id) {
        if (routers_[id].flitCount() != 0) {
            routers_[id].poke();
            wakeRouter(static_cast<std::uint32_t>(id));
        }
    }
}

void
MeshNetwork::setColumnar(bool enabled)
{
    columnar_ = enabled;
    if (!enabled)
        return;
    // Hoist the hot per-cycle state into flat columns: six FIFO
    // cursor blocks per router (inputs N/E/S/W, then outResp, then
    // outReq) plus one changed/poked flag pair, both indexed by
    // router id, and the two-level bitmap that replaces the
    // ActiveSet. Binding copies current values before repointing, so
    // the call is sound at any time (System makes it before any
    // traffic and before setActiveScheduling seeds wakes).
    fifoCol_.resize(routers_.size() * 6);
    flagsCol_.resize(routers_.size());
    activeMask_.reset(routers_.size());
    for (std::size_t id = 0; id < routers_.size(); ++id) {
        routers_[id].bindColumns(&fifoCol_[id * 6], &flagsCol_[id]);
        routers_[id].setWakeMask(&activeMask_);
    }
    // Second pass: peer-buffer views cached at connect() point at
    // the abandoned oracle cursor blocks now — re-cache them against
    // the column.
    for (auto &router : routers_)
        router.refreshViews();
}

void
MeshNetwork::setFastPath(bool enabled)
{
    fastPath_ = enabled;
    for (auto &router : routers_)
        router.setFastPath(enabled);
}

bool
MeshNetwork::isIdle() const
{
    if (!activeSched_)
        return flitsInFlight() == 0;
    return columnar_ ? activeMask_.empty() : active_.empty();
}

std::size_t
MeshNetwork::activeNodeCount() const
{
    return columnar_ ? activeMask_.size() : active_.size();
}

std::uint64_t
MeshNetwork::flitsInFlight() const
{
    std::uint64_t count = 0;
    for (const auto &router : routers_)
        count += router.flitCount();
    return count;
}

double
MeshNetwork::networkUtilization() const
{
    return util_.groupUtilization(meshGroup_);
}

void
MeshNetwork::registerMetrics(MetricRegistry &registry) const
{
    registry.addGauge("mesh.util",
                      [this]() { return networkUtilization(); });
    if (fastPath_) {
        // Registered only when the fast path is on (the PR 3 sched.*
        // convention), so metric artifacts stay byte-identical under
        // HRSIM_NO_FASTPATH — the count itself is mode-independent.
        registry.addGauge("router.streamed_flits", [this]() {
            std::uint64_t total = 0;
            for (const auto &router : routers_)
                total += router.streamedFlits();
            return static_cast<double>(total);
        });
    }
    for (std::size_t id = 0; id < routers_.size(); ++id) {
        const MeshRouter *router = &routers_[id];
        registry.addGauge("mesh.r" + std::to_string(id) + ".flits",
                          [router]() {
                              return static_cast<double>(
                                  router->flitCount());
                          });
    }
}

bool
MeshNetwork::faultTargetValid(const FaultTarget &target) const
{
    if (target.kind != FaultTargetKind::MeshRouter &&
        target.kind != FaultTargetKind::MeshPort) {
        return false;
    }
    if (target.id < 0 || target.id >= numProcessors())
        return false;
    if (target.kind == FaultTargetKind::MeshPort) {
        // The named output must actually be wired: edge routers have
        // no east link on the last column, etc.
        const int x = target.id % params_.width;
        const int y = target.id / params_.width;
        switch (target.port) {
          case PortEast:
            return x + 1 < params_.width;
          case PortWest:
            return x > 0;
          case PortSouth:
            return y + 1 < params_.width;
          case PortNorth:
            return y > 0;
          default:
            return false;
        }
    }
    return true;
}

void
MeshNetwork::applyFault(const FaultEvent &event, bool active)
{
    HRSIM_ASSERT(!faultState_.empty());
    const auto id = static_cast<std::size_t>(event.target.id);
    MeshRouterFaults &faults = faultState_[id];
    const auto port = static_cast<std::size_t>(event.target.port);
    const std::int8_t delta = active ? 1 : -1;
    switch (event.action) {
      case FaultAction::LinkDown:
        HRSIM_ASSERT(active || faults.portDown[port] > 0);
        faults.portDown[port] =
            static_cast<std::uint8_t>(faults.portDown[port] + delta);
        break;
      case FaultAction::Stall:
        HRSIM_ASSERT(active || faults.stalled > 0);
        faults.stalled =
            static_cast<std::uint8_t>(faults.stalled + delta);
        break;
      case FaultAction::Corrupt:
        HRSIM_ASSERT(active || faults.portCorrupt[port] > 0);
        faults.portCorrupt[port] = static_cast<std::uint8_t>(
            faults.portCorrupt[port] + delta);
        break;
    }
    // Both edges wake the router: activation so a dead output starts
    // draining (and a stalled router pins itself awake via
    // sweepKeep), deactivation so frozen traffic moves again.
    routers_[id].poke();
    wakeRouter(static_cast<std::uint32_t>(id));
}

void
MeshNetwork::setFaultAccounting(FaultAccounting *acct)
{
    acct_ = acct;
    faultState_.assign(routers_.size(), MeshRouterFaults{});
    for (std::size_t id = 0; id < routers_.size(); ++id)
        routers_[id].setFaultState(acct ? &faultState_[id] : nullptr,
                                   acct);
    // setFaultState re-aimed every router at the master ledger;
    // restore the shard ledgers if the parallel engine is live, so
    // setFaultAccounting and setTickParallel compose in either order.
    applyParallelAcct();
}

void
MeshNetwork::setTickParallel(TickPool *pool)
{
    // The engine only replaces the columnar active-scheduled tick
    // (the production path); the oracle modes stay serial, as does a
    // one-participant pool. The system calls this after setColumnar /
    // setActiveScheduling, so both flags are settled here.
    pool_ = (pool != nullptr && pool->threads() > 1 && columnar_ &&
             activeSched_)
                ? pool
                : nullptr;
    shards_.clear();
    sinks_.clear();
    util_.setShardPlanes(0);
    if (pool_ == nullptr) {
        // Drop any earlier shard repointing (the planes are gone).
        for (auto &router : routers_)
            router.refreshViews();
        return;
    }

    // Whole-mask-word shard ranges, balanced across the pool: the
    // evaluate and sweep phases then partition on the same 64-router
    // boundaries, and shard order is ascending id order.
    const std::size_t words = activeMask_.wordCount();
    const auto parts = std::min<std::size_t>(
        static_cast<std::size_t>(pool_->threads()), words);
    for (std::size_t i = 0; i < parts; ++i) {
        MeshShard sh;
        sh.wordLo = static_cast<std::uint32_t>(words * i / parts);
        sh.wordHi = static_cast<std::uint32_t>(words * (i + 1) / parts);
        sh.idLo = sh.wordLo * 64;
        sh.idHi = std::min<std::uint32_t>(
            sh.wordHi * 64,
            static_cast<std::uint32_t>(routers_.size()));
        shards_.push_back(sh);
    }
    sinks_.resize(shards_.size());

    // Per-shard utilization planes: a hop recorded inside shard s
    // counts into s's plane; reads sum master + planes (integer
    // order-free, so figures stay bit-identical).
    util_.setShardPlanes(static_cast<int>(shards_.size()));
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        for (std::uint32_t id = shards_[s].idLo;
             id < shards_[s].idHi; ++id) {
            routers_[id].repointUtilCounters(&util_,
                                             static_cast<int>(s));
        }
    }

    applyParallelAcct();
}

void
MeshNetwork::applyParallelAcct()
{
    if (acct_ == nullptr || pool_ == nullptr)
        return;
    for (MeshShard &sh : shards_) {
        for (std::uint32_t id = sh.idLo; id < sh.idHi; ++id)
            routers_[id].repointAcct(&sh.acct);
    }
}

void
MeshNetwork::foldShardAcct()
{
    if (acct_ == nullptr)
        return;
    // Fold the shard fault ledgers into the master so every reader
    // outside the network tick (the fault engine's conservation
    // check, metrics) sees serial-identical totals.
    for (MeshShard &sh : shards_) {
        acct_->injectedFlits += sh.acct.injectedFlits;
        acct_->deliveredFlits += sh.acct.deliveredFlits;
        acct_->droppedFlits += sh.acct.droppedFlits;
        acct_->droppedWorms += sh.acct.droppedWorms;
        acct_->poisonedWorms += sh.acct.poisonedWorms;
        sh.acct = FaultAccounting{};
    }
}

void
MeshNetwork::tickColumnarParallel(Cycle now)
{
    // Same scheduler decisions as tickColumnar(), with the router
    // sweeps dispatched across shard ranges. The saturation decision
    // reads the mask size on this thread, before anything moves.
    const bool saturated =
        activeMask_.size() * 4 >= routers_.size() * 3;

    // Evaluate dispatch. Router evaluation order is immaterial
    // (two-phase FIFOs); within a shard ids ascend, matching the
    // serial scan. The mask is frozen for the whole dispatch (every
    // wake is deferred), so forEachInRange() reads start-of-tick
    // membership — where the serial live scan would visit a
    // mid-tick-woken router instead, that visit is a provable no-op.
    auto eval = [this, now, saturated](int shard) {
        const MeshShard &sh =
            shards_[static_cast<std::size_t>(shard)];
        tlsShardSink = &sinks_[static_cast<std::size_t>(shard)];
        if (saturated) {
            for (std::uint32_t id = sh.idLo; id < sh.idHi; ++id)
                routers_[id].evaluate(now);
        } else {
            activeMask_.forEachInRange(
                sh.idLo, sh.idHi,
                [this, now](std::uint32_t id) {
                    routers_[id].evaluate(now);
                });
        }
        tlsShardSink = nullptr;
    };
    pool_->run(static_cast<int>(shards_.size()), eval);
    parStats_.parallelTicks += 1;
    parStats_.shardEvals += shards_.size();

    // Replay deferred wakes — both halves, poke and mask bit —
    // before the sleep sweep below reads either. Idempotent, so
    // cross-shard duplicates are harmless.
    for (const ShardSink &sink : sinks_) {
        for (const DeferredWake &w : sink.wakes) {
            routers_[w.id].poke();
            w.mask->add(w.id);
        }
    }
    // Drain deliveries in shard order = ascending router id = the
    // serial delivery order (each router ejects at most one packet
    // per cycle). tlsShardSink is null here, so delivered() runs the
    // real handler.
    for (ShardSink &sink : sinks_) {
        for (const DeferredDelivery &d : sink.deliveries)
            delivered(d.pkt, d.when);
        sink.clear();
    }

    if (saturated && ++satTicks_ % 16 != 0) {
        // Amortized saturated tick: commit every cursor block
        // linearly (a clean FIFO's commit is a no-op), skip the
        // sweep — exactly as in tickColumnar(). fifoCol_ holds six
        // contiguous states per router, so shard ranges scale by 6.
        auto commit = [this](int shard) {
            const MeshShard &sh =
                shards_[static_cast<std::size_t>(shard)];
            const std::size_t lo =
                static_cast<std::size_t>(sh.idLo) * 6;
            const std::size_t hi =
                static_cast<std::size_t>(sh.idHi) * 6;
            for (std::size_t i = lo; i < hi; ++i)
                fifoCol_[i].commit();
        };
        pool_->run(static_cast<int>(shards_.size()), commit);
        foldShardAcct();
        return;
    }

    // Commit + sleep sweep over the shard word ranges; the summary
    // and population count rebuild once after the barrier.
    auto sweep = [this](int shard) {
        const MeshShard &sh = shards_[static_cast<std::size_t>(shard)];
        activeMask_.retainWordRange(
            sh.wordLo, sh.wordHi, [this](std::uint32_t id) {
                FifoState *states =
                    &fifoCol_[static_cast<std::size_t>(id) * 6];
                for (int q = 0; q < 6; ++q)
                    states[q].commit();
                return routers_[id].sweepKeep();
            });
    };
    pool_->run(static_cast<int>(shards_.size()), sweep);
    activeMask_.rebuildAggregates();
    if (activeMask_.empty())
        HRSIM_ASSERT(flitsInFlight() == 0);
    foldShardAcct();
}

void
MeshNetwork::saveState(CkptWriter &w) const
{
    w.u32(satTicks_);
    for (const MeshRouter &router : routers_)
        router.saveState(w);
    // Fault planes exist only while a plan is live; the flag guards
    // against restoring a faulted snapshot into a fault-free config.
    w.boolean(!faultState_.empty());
    for (const MeshRouterFaults &faults : faultState_)
        saveMeshRouterFaults(w, faults);
    w.u64(parStats_.parallelTicks);
    w.u64(parStats_.shardEvals);
    // Explicit scheduler membership, from whichever structure wakes
    // target (the plane header pins columnar on both sides). The
    // ActiveSet list is saved in wake order so the re-add replays its
    // exact internal state; the bitmap has no order to preserve.
    if (columnar_) {
        w.u32(static_cast<std::uint32_t>(activeMask_.size()));
        activeMask_.forEach([&w](std::uint32_t id) { w.u32(id); });
    } else {
        w.u32(static_cast<std::uint32_t>(active_.raw().size()));
        for (const std::uint32_t id : active_.raw())
            w.u32(id);
    }
}

void
MeshNetwork::loadState(CkptReader &r)
{
    satTicks_ = r.u32();
    for (MeshRouter &router : routers_)
        router.loadState(r);
    const bool has_faults = r.boolean();
    if (has_faults != !faultState_.empty()) {
        throw CheckpointError(
            "checkpoint: fault-plane mismatch (snapshot and config "
            "disagree on an active fault plan)");
    }
    for (MeshRouterFaults &faults : faultState_)
        loadMeshRouterFaults(r, faults);
    parStats_.parallelTicks = r.u64();
    parStats_.shardEvals = r.u64();
    const std::uint32_t members = r.u32();
    if (columnar_)
        activeMask_.reset(routers_.size());
    else
        active_.reset(routers_.size());
    for (std::uint32_t i = 0; i < members; ++i) {
        const std::uint32_t id = r.u32();
        if (id >= routers_.size()) {
            throw CheckpointError(
                "checkpoint: active-set member out of range "
                "(topology mismatch)");
        }
        if (columnar_)
            activeMask_.add(id);
        else
            active_.add(id);
    }
}

MeshRouter &
MeshNetwork::router(NodeId id)
{
    HRSIM_ASSERT(id >= 0 && id < numProcessors());
    return routers_[static_cast<std::size_t>(id)];
}

} // namespace hrsim
