#include "mesh/mesh_router.hh"

#include "common/log.hh"

namespace hrsim
{

MeshPort
oppositePort(MeshPort port)
{
    switch (port) {
      case PortEast:
        return PortWest;
      case PortWest:
        return PortEast;
      case PortSouth:
        return PortNorth;
      case PortNorth:
        return PortSouth;
      default:
        HRSIM_PANIC("local port has no opposite");
    }
}

MeshRouter::MeshRouter(NodeId id, int width, std::uint32_t buffer_flits,
                       std::uint32_t queue_flits, bool round_robin)
    : id_(id), width_(width), x_(id % width), y_(id / width),
      roundRobin_(round_robin)
{
    HRSIM_ASSERT(buffer_flits >= 1);
    for (auto &buf : inBuf_)
        buf.setCapacity(buffer_flits);
    outResp_.setCapacity(queue_flits);
    outReq_.setCapacity(queue_flits);
    inputBound_.fill(-1);
}

void
MeshRouter::connect(MeshPort out, MeshRouter *neighbor,
                    UtilizationTracker *util,
                    UtilizationTracker::LinkId link)
{
    HRSIM_ASSERT(out != PortLocal);
    out_[static_cast<std::size_t>(out)].neighbor = neighbor;
    out_[static_cast<std::size_t>(out)].util = util;
    out_[static_cast<std::size_t>(out)].link = link;
}

MeshPort
MeshRouter::routeOf(NodeId dst) const
{
    const int dst_x = dst % width_;
    const int dst_y = dst / width_;
    if (dst_x > x_)
        return PortEast;
    if (dst_x < x_)
        return PortWest;
    if (dst_y > y_)
        return PortSouth;
    if (dst_y < y_)
        return PortNorth;
    return PortLocal;
}

const Flit *
MeshRouter::peekInput(int in) const
{
    if (in != PortLocal) {
        const auto &buf = inBuf_[static_cast<std::size_t>(in)];
        return buf.empty() ? nullptr : &buf.front();
    }
    // Local port: continue the bound queue's worm, else responses
    // have priority over requests at packet boundaries.
    switch (localSrc_) {
      case LocalSrc::Resp:
        return outResp_.empty() ? nullptr : &outResp_.front();
      case LocalSrc::Req:
        return outReq_.empty() ? nullptr : &outReq_.front();
      case LocalSrc::None:
        if (!outResp_.empty())
            return &outResp_.front();
        if (!outReq_.empty())
            return &outReq_.front();
        return nullptr;
    }
    return nullptr;
}

Flit
MeshRouter::popInput(int in)
{
    if (in != PortLocal)
        return inBuf_[static_cast<std::size_t>(in)].pop();
    switch (localSrc_) {
      case LocalSrc::Resp:
        return outResp_.pop();
      case LocalSrc::Req:
        return outReq_.pop();
      case LocalSrc::None:
        // First flit of a new local worm: bind the winning queue.
        if (!outResp_.empty()) {
            localSrc_ = LocalSrc::Resp;
            return outResp_.pop();
        }
        localSrc_ = LocalSrc::Req;
        return outReq_.pop();
    }
    HRSIM_PANIC("popInput: no flit available");
}

bool
MeshRouter::downstreamAccepts(int out) const
{
    if (out == PortLocal)
        return true; // ejection: the PM always sinks
    const Output &port = out_[static_cast<std::size_t>(out)];
    HRSIM_ASSERT(port.neighbor != nullptr);
    const MeshPort facing = oppositePort(static_cast<MeshPort>(out));
    return port.neighbor->inBuf_[static_cast<std::size_t>(facing)]
        .canPush();
}

void
MeshRouter::pushDownstream(int out, const Flit &flit, Cycle now)
{
    if (out == PortLocal) {
        if (flit.isTail() && deliver_)
            deliver_(packetFromFlit(flit), now);
        return;
    }
    Output &port = out_[static_cast<std::size_t>(out)];
    const MeshPort facing = oppositePort(static_cast<MeshPort>(out));
    port.neighbor->inBuf_[static_cast<std::size_t>(facing)].push(flit);
    if (wakeSet_) // wake a sleeping neighbor
        wakeSet_->add(static_cast<std::uint32_t>(port.neighbor->id_));
    if (port.util)
        port.util->recordTransfer(port.link);
    HRSIM_TRACE_FLIT(
        tracerSlot_ ? *tracerSlot_ : nullptr, FlitEvent::Hop,
        flit.packet, id_,
        port.neighbor->inBuf_[static_cast<std::size_t>(facing)]
            .totalSize());
}

bool
MeshRouter::quiescent() const
{
    // Nothing visible to arbitrate or forward this cycle. Staged
    // flits pushed by neighbors only become visible at commit(), and
    // an owned-but-starved output port does no work either, so
    // evaluate() is a provable no-op in this state.
    for (const auto &buf : inBuf_) {
        if (!buf.empty())
            return false;
    }
    return outResp_.empty() && outReq_.empty();
}

void
MeshRouter::evaluate(Cycle now)
{
    if (quiescent())
        return;

    // 1. Collect output requests from unbound inputs with a routable
    //    head flit at their front.
    std::array<std::uint8_t, NumMeshPorts> requests{};
    for (int in = 0; in < NumMeshPorts; ++in) {
        if (inputBound_[static_cast<std::size_t>(in)] != -1)
            continue;
        const Flit *head = peekInput(in);
        if (!head)
            continue;
        HRSIM_ASSERT(head->isHead());
        const MeshPort out = routeOf(head->dst);
        requests[static_cast<std::size_t>(out)] |=
            static_cast<std::uint8_t>(1u << in);
    }

    // 2. Round-robin arbitration for each free output port.
    for (int out = 0; out < NumMeshPorts; ++out) {
        Output &port = out_[static_cast<std::size_t>(out)];
        if (port.owner != -1 ||
            requests[static_cast<std::size_t>(out)] == 0) {
            continue;
        }
        const int base = roundRobin_ ? port.rrPtr : 0;
        for (int step = 0; step < NumMeshPorts; ++step) {
            const int in = (base + step) % NumMeshPorts;
            if (!(requests[static_cast<std::size_t>(out)] &
                  (1u << in))) {
                continue;
            }
            const Flit *head = peekInput(in);
            HRSIM_ASSERT(head != nullptr);
            port.owner = in;
            port.wormPkt = head->packet;
            inputBound_[static_cast<std::size_t>(in)] = out;
            port.rrPtr = (in + 1) % NumMeshPorts;
            if (in == PortLocal && localSrc_ == LocalSrc::None) {
                // Bind the queue now: a packet arriving in the other
                // queue before the first flit crosses must not steal
                // the port (responses only outrank requests at packet
                // boundaries).
                localSrc_ = outResp_.empty() ? LocalSrc::Req
                                             : LocalSrc::Resp;
            }
            break;
        }
    }

    // 3. Switch traversal: one flit per owned output, flow-control
    //    permitting.
    for (int out = 0; out < NumMeshPorts; ++out) {
        Output &port = out_[static_cast<std::size_t>(out)];
        if (port.owner == -1)
            continue;
        const Flit *next = peekInput(port.owner);
        if (!next)
            continue; // worm starved: hold the port
        HRSIM_ASSERT(next->packet == port.wormPkt);
        if (!downstreamAccepts(out))
            continue; // blocked: flits wait in the input buffer
        const Flit flit = popInput(port.owner);
        pushDownstream(out, flit, now);
        if (flit.isTail()) {
            inputBound_[static_cast<std::size_t>(port.owner)] = -1;
            if (port.owner == PortLocal)
                localSrc_ = LocalSrc::None;
            port.owner = -1;
            port.wormPkt = 0;
        }
    }
}

void
MeshRouter::commit()
{
    for (auto &buf : inBuf_)
        buf.commit();
    outResp_.commit();
    outReq_.commit();
}

bool
MeshRouter::canInject(const Packet &pkt) const
{
    const MeshFifo &queue =
        isRequest(pkt.type) ? outReq_ : outResp_;
    return queue.producerSpace() >= pkt.sizeFlits;
}

void
MeshRouter::inject(const Packet &pkt)
{
    HRSIM_ASSERT(canInject(pkt));
    MeshFifo &queue = isRequest(pkt.type) ? outReq_ : outResp_;
    for (std::uint32_t i = 0; i < pkt.sizeFlits; ++i)
        queue.push(makeFlit(pkt, i));
}

const MeshFifo &
MeshRouter::inputBuffer(MeshPort port) const
{
    HRSIM_ASSERT(port != PortLocal);
    return inBuf_[static_cast<std::size_t>(port)];
}

std::uint64_t
MeshRouter::flitCount() const
{
    std::uint64_t count = outResp_.totalSize() + outReq_.totalSize();
    for (const auto &buf : inBuf_)
        count += buf.totalSize();
    return count;
}

} // namespace hrsim
