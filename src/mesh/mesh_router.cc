#include "mesh/mesh_router.hh"

#include "common/log.hh"

namespace hrsim
{

MeshPort
oppositePort(MeshPort port)
{
    switch (port) {
      case PortEast:
        return PortWest;
      case PortWest:
        return PortEast;
      case PortSouth:
        return PortNorth;
      case PortNorth:
        return PortSouth;
      default:
        HRSIM_PANIC("local port has no opposite");
    }
}

MeshRouter::MeshRouter(NodeId id, int width, std::uint32_t buffer_flits,
                       std::uint32_t queue_flits, bool round_robin,
                       Flit *storage)
    : id_(id), width_(width), x_(id % width), y_(id / width),
      roundRobin_(round_robin)
{
    HRSIM_ASSERT(buffer_flits >= 1);
    if (storage) {
        for (auto &buf : inBuf_) {
            buf.setCapacity(buffer_flits, storage);
            storage += buffer_flits;
        }
        outResp_.setCapacity(queue_flits, storage);
        storage += queue_flits;
        outReq_.setCapacity(queue_flits, storage);
    } else {
        for (auto &buf : inBuf_)
            buf.setCapacity(buffer_flits);
        outResp_.setCapacity(queue_flits);
        outReq_.setCapacity(queue_flits);
    }
    inputBound_.fill(-1);
}

void
MeshRouter::connect(MeshPort out, MeshRouter *neighbor,
                    UtilizationTracker *util,
                    UtilizationTracker::LinkId link)
{
    HRSIM_ASSERT(out != PortLocal);
    Output &port = out_[static_cast<std::size_t>(out)];
    port.neighbor = neighbor;
    port.peerBuf =
        &neighbor->inBuf_[static_cast<std::size_t>(oppositePort(out))];
    port.peer = port.peerBuf->view();
    port.util = util;
    port.link = link;
    // The facing input on the neighbor is fed by this router: popping
    // it frees a slot this router may be blocked on (credit wake).
    neighbor->upstream_[static_cast<std::size_t>(oppositePort(out))] =
        this;
}

MeshPort
MeshRouter::routeOf(NodeId dst) const
{
    if (routeRow_)
        return static_cast<MeshPort>(routeRow_[dst]);
    return routeOfCoordinate(dst);
}

MeshPort
MeshRouter::routeOfCoordinate(NodeId dst) const
{
    const int dst_x = dst % width_;
    const int dst_y = dst / width_;
    if (dst_x > x_)
        return PortEast;
    if (dst_x < x_)
        return PortWest;
    if (dst_y > y_)
        return PortSouth;
    if (dst_y < y_)
        return PortNorth;
    return PortLocal;
}

const Flit *
MeshRouter::peekInput(int in) const
{
    if (in != PortLocal) {
        const auto &buf = inBuf_[static_cast<std::size_t>(in)];
        return buf.empty() ? nullptr : &buf.front();
    }
    // Local port: continue the bound queue's worm, else responses
    // have priority over requests at packet boundaries.
    switch (localSrc_) {
      case LocalSrc::Resp:
        return outResp_.empty() ? nullptr : &outResp_.front();
      case LocalSrc::Req:
        return outReq_.empty() ? nullptr : &outReq_.front();
      case LocalSrc::None:
        if (!outResp_.empty())
            return &outResp_.front();
        if (!outReq_.empty())
            return &outReq_.front();
        return nullptr;
    }
    return nullptr;
}

bool
MeshRouter::quiescent() const
{
    // Nothing visible to arbitrate or forward this cycle. Staged
    // flits pushed by neighbors only become visible at commit(), and
    // an owned-but-starved output port does no work either, so
    // evaluate() is a provable no-op in this state.
    for (const auto &buf : inBuf_) {
        if (!buf.empty())
            return false;
    }
    return outResp_.empty() && outReq_.empty();
}

void
MeshRouter::evaluateLegacy(Cycle now)
{
    if (quiescent())
        return;

    // 1. Collect output requests from unbound inputs with a routable
    //    head flit at their front.
    std::array<std::uint8_t, NumMeshPorts> requests{};
    for (int in = 0; in < NumMeshPorts; ++in) {
        if (inputBound_[static_cast<std::size_t>(in)] != -1)
            continue;
        const Flit *head = peekInput(in);
        if (!head)
            continue;
        HRSIM_ASSERT(head->isHead());
        const MeshPort out = routeOfCoordinate(head->dst);
        requests[static_cast<std::size_t>(out)] |=
            static_cast<std::uint8_t>(1u << in);
    }

    // 2. Round-robin arbitration for each free output port.
    for (int out = 0; out < NumMeshPorts; ++out) {
        Output &port = out_[static_cast<std::size_t>(out)];
        if (port.owner != -1 ||
            requests[static_cast<std::size_t>(out)] == 0) {
            continue;
        }
        const int base = roundRobin_ ? port.rrPtr : 0;
        for (int step = 0; step < NumMeshPorts; ++step) {
            const int in = (base + step) % NumMeshPorts;
            if (!(requests[static_cast<std::size_t>(out)] &
                  (1u << in))) {
                continue;
            }
            grantOutput(out, in);
            break;
        }
    }

    // 3. Switch traversal: one flit per owned output, flow-control
    //    permitting.
    for (int out = 0; out < NumMeshPorts; ++out) {
        if (out_[static_cast<std::size_t>(out)].owner == -1)
            continue;
        traverseOutput(out, now);
    }
}

void
MeshRouter::evaluateFast(Cycle now)
{
    // Port activity mask: one bit per input with a visible flit
    // (staged pushes only become visible at commit, so this cannot
    // race with neighbors). If nothing is visible the cycle is a
    // no-op, even when an output is still owned: an owned-but-starved
    // port just holds its binding, exactly as the legacy traversal
    // loop would.
    PortMask vis = 0;
    if (col_ != nullptr) {
        // Columnar layout: the six cursor blocks are contiguous, so
        // the whole visibility scan reads one or two cache lines off
        // a single base pointer.
        for (int in = 0; in < PortLocal; ++in) {
            if (col_[in].visible != 0)
                vis |= static_cast<PortMask>(1u << in);
        }
        const bool local_vis =
            localSrc_ == LocalSrc::Resp   ? col_[4].visible != 0
            : localSrc_ == LocalSrc::Req ? col_[5].visible != 0
                                         : (col_[4].visible |
                                            col_[5].visible) != 0;
        if (local_vis)
            vis |= static_cast<PortMask>(1u << PortLocal);
    } else {
        for (int in = 0; in < PortLocal; ++in) {
            if (!inBuf_[static_cast<std::size_t>(in)].empty())
                vis |= static_cast<PortMask>(1u << in);
        }
        if (peekInput(PortLocal) != nullptr)
            vis |= static_cast<PortMask>(1u << PortLocal);
    }
    if (vis == 0)
        return;

    // 1+2. Routing and arbitration only run for visible *unbound*
    //      inputs — every flit at the front of an unbound input is a
    //      head (worms unbind exactly when their tail pops). Bound
    //      inputs stream below without touching routeOf() or the
    //      round-robin state.
    const PortMask unbound = vis & static_cast<PortMask>(~boundMask_);
    if (unbound != 0) {
        std::array<std::uint8_t, NumMeshPorts> requests{};
        for (PortMask m = unbound; m != 0; m = dropLowestPort(m)) {
            const int in = lowestSetPort(m);
            const Flit *head = peekInput(in);
            HRSIM_ASSERT(head != nullptr && head->isHead());
            requests[static_cast<std::size_t>(routeOf(head->dst))] |=
                static_cast<std::uint8_t>(1u << in);
        }
        for (int out = 0; out < NumMeshPorts; ++out) {
            Output &port = out_[static_cast<std::size_t>(out)];
            if (port.owner != -1 ||
                requests[static_cast<std::size_t>(out)] == 0) {
                continue;
            }
            const int base = roundRobin_ ? port.rrPtr : 0;
            for (int step = 0; step < NumMeshPorts; ++step) {
                const int in = (base + step) % NumMeshPorts;
                if (!(requests[static_cast<std::size_t>(out)] &
                      (1u << in))) {
                    continue;
                }
                grantOutput(out, in);
                break;
            }
        }
    }

    // 3. Worm streaming: owned outputs in ascending port order (the
    //    same order the legacy full scan visits them; see the
    //    PortMask contract in active_set.hh).
    for (PortMask m = ownedMask_; m != 0; m = dropLowestPort(m))
        traverseOutput(lowestSetPort(m), now);
}

void
MeshRouter::grantOutput(int out, int in)
{
    Output &port = out_[static_cast<std::size_t>(out)];
    const Flit *head = peekInput(in);
    HRSIM_ASSERT(head != nullptr);
    port.owner = in;
    port.wormPkt = head->packet;
    inputBound_[static_cast<std::size_t>(in)] = out;
    boundMask_ |= static_cast<PortMask>(1u << in);
    ownedMask_ |= static_cast<PortMask>(1u << out);
    port.rrPtr = (in + 1) % NumMeshPorts;
    hot_->changed = true;
    if (in == PortLocal) {
        if (localSrc_ == LocalSrc::None) {
            // Bind the queue now: a packet arriving in the other
            // queue before the first flit crosses must not steal the
            // port (responses only outrank requests at packet
            // boundaries).
            localSrc_ =
                outResp_.empty() ? LocalSrc::Req : LocalSrc::Resp;
        }
        port.src = (localSrc_ == LocalSrc::Resp ? outResp_ : outReq_)
                       .view();
        port.srcUpstream = nullptr;
    } else {
        port.src = inBuf_[static_cast<std::size_t>(in)].view();
        port.srcUpstream = upstream_[static_cast<std::size_t>(in)];
        HRSIM_ASSERT(port.srcUpstream != nullptr);
    }
}

void
MeshRouter::traverseOutput(int out, Cycle now)
{
    Output &port = out_[static_cast<std::size_t>(out)];
    if (faults_ && out != PortLocal &&
        (faults_->out[static_cast<std::size_t>(out)].killing ||
         faults_->portDown[static_cast<std::size_t>(out)] != 0)) {
        killOutput(out);
        return;
    }
    const FifoView<Flit> src = port.src;
    if (src.empty())
        return; // worm starved: hold the port
    const Flit *next = &src.front();
    HRSIM_ASSERT(next->packet == port.wormPkt);
    bool tail;
    if (out == PortLocal) {
        // Ejection: the PM always sinks. Copy the flit out first —
        // the delivery callback runs after the pop (it may re-enter
        // this router through a synchronous response injection).
        const Flit flit = *next;
        src.dropFront();
        if (port.srcUpstream)
            wakeNeighbor(port.srcUpstream);
        hot_->changed = true;
        streamedFlits_ += static_cast<std::uint64_t>(!flit.isHead());
        tail = flit.isTail();
        if (acct_) {
            if (flit.poisoned)
                ++acct_->droppedFlits;
            else
                ++acct_->deliveredFlits;
        }
        // Poisoned worms (corrupted headers, or the kill token of a
        // truncated worm) drain out here but are never delivered.
        if (tail && deliver_ && !flit.poisoned)
            deliver_(packetFromFlit(flit), now);
    } else {
        HRSIM_ASSERT(port.peerBuf != nullptr);
        if (!port.peer.canPush())
            return; // blocked: flits wait in the input buffer
        bool poison = false;
        if (faults_) {
            auto &kill = faults_->out[static_cast<std::size_t>(out)];
            if (next->isHead() &&
                faults_->portCorrupt[static_cast<std::size_t>(out)] !=
                    0) {
                // Corrupt fault: the header crossing the bad link
                // poisons the whole worm (sticky past the window and
                // past any nested window boundary — the header is
                // what's broken).
                kill.poisoning = true;
                if (acct_)
                    ++acct_->poisonedWorms;
            }
            poison = kill.poisoning;
            if (poison && next->isTail())
                kill.poisoning = false;
        }
        // Stream the flit straight from the input front into the
        // downstream buffer: one element copy, no pop-into-temporary.
        if (poison) {
            Flit copy = *next;
            copy.poisoned = true;
            port.peer.pushFrom(copy);
        } else {
            port.peer.pushFrom(*next);
        }
        hot_->changed = true;
        wakeNeighbor(port.neighbor);
        if (port.utilCounter != nullptr && *port.utilMeasuring)
            ++*port.utilCounter;
        HRSIM_TRACE_FLIT(tracerSlot_ ? *tracerSlot_ : nullptr,
                         FlitEvent::Hop, next->packet, id_,
                         port.peer.totalSize());
        streamedFlits_ +=
            static_cast<std::uint64_t>(!next->isHead());
        tail = next->isTail();
        src.dropFront();
        if (port.srcUpstream)
            wakeNeighbor(port.srcUpstream);
    }
    if (tail) {
        inputBound_[static_cast<std::size_t>(port.owner)] = -1;
        boundMask_ &= static_cast<PortMask>(~(1u << port.owner));
        ownedMask_ &= static_cast<PortMask>(~(1u << out));
        if (port.owner == PortLocal)
            localSrc_ = LocalSrc::None;
        port.owner = -1;
        port.wormPkt = 0;
        port.src = {};
        port.srcUpstream = nullptr;
    }
}

void
MeshRouter::killOutput(int out)
{
    Output &port = out_[static_cast<std::size_t>(out)];
    if (port.owner == -1)
        return; // nothing bound to the dead link yet
    const FifoView<Flit> src = port.src;
    if (src.empty())
        return; // starved: the rest of the worm is still upstream
    const Flit *next = &src.front();
    HRSIM_ASSERT(next->packet == port.wormPkt);
    auto &kill = faults_->out[static_cast<std::size_t>(out)];
    if (!kill.killing) {
        kill.killing = true;
        kill.decided = false;
    }
    if (!kill.decided) {
        // First flit of the condemned worm tells us whether its head
        // already crossed: flits cross in order, so a front index
        // above zero means the worm's leading flits are downstream
        // and the kill must send them a terminator.
        kill.decided = true;
        kill.terminator = next->index > 0;
        if (acct_)
            ++acct_->droppedWorms;
    }
    if (kill.terminator) {
        // Terminate the downstream fragment: hand it one poisoned
        // tail flit (the link-level error token of the dead link) so
        // every router ahead unbinds normally and the fragment drains
        // to its ejection port, where the poison suppresses delivery.
        HRSIM_ASSERT(port.peerBuf != nullptr);
        if (!port.peer.canPush())
            return; // wait for space; credit wake re-runs this
        Flit token = *next;
        token.index = token.sizeFlits - 1;
        token.poisoned = true;
        port.peer.pushFrom(token);
        wakeNeighbor(port.neighbor);
        kill.terminator = false;
    } else if (acct_) {
        ++acct_->droppedFlits;
    }
    // Drain one flit per cycle, exactly the rate of a live link;
    // the drop frees the upstream slot, so credits flow and the
    // fabric behind the fault never wedges.
    const bool tail = next->isTail();
    src.dropFront();
    if (port.srcUpstream)
        wakeNeighbor(port.srcUpstream);
    hot_->changed = true;
    if (tail) {
        inputBound_[static_cast<std::size_t>(port.owner)] = -1;
        boundMask_ &= static_cast<PortMask>(~(1u << port.owner));
        ownedMask_ &= static_cast<PortMask>(~(1u << out));
        if (port.owner == PortLocal)
            localSrc_ = LocalSrc::None;
        port.owner = -1;
        port.wormPkt = 0;
        port.src = {};
        port.srcUpstream = nullptr;
        kill.killing = false;
        kill.decided = false;
    }
}

void
MeshRouter::commit()
{
    for (auto &buf : inBuf_)
        buf.commit();
    outResp_.commit();
    outReq_.commit();
}

bool
MeshRouter::canInject(const Packet &pkt) const
{
    const MeshFifo &queue =
        isRequest(pkt.type) ? outReq_ : outResp_;
    return queue.producerSpace() >= pkt.sizeFlits;
}

void
MeshRouter::inject(const Packet &pkt)
{
    HRSIM_ASSERT(canInject(pkt));
    MeshFifo &queue = isRequest(pkt.type) ? outReq_ : outResp_;
    for (std::uint32_t i = 0; i < pkt.sizeFlits; ++i)
        queue.push(makeFlit(pkt, i));
}

const MeshFifo &
MeshRouter::inputBuffer(MeshPort port) const
{
    HRSIM_ASSERT(port != PortLocal);
    return inBuf_[static_cast<std::size_t>(port)];
}

std::uint64_t
MeshRouter::flitCount() const
{
    std::uint64_t count = outResp_.totalSize() + outReq_.totalSize();
    for (const auto &buf : inBuf_)
        count += buf.totalSize();
    return count;
}

void
MeshRouter::saveState(CkptWriter &w) const
{
    for (const auto &buf : inBuf_)
        saveFlitFifo(w, buf);
    saveFlitFifo(w, outResp_);
    saveFlitFifo(w, outReq_);
    w.u8(static_cast<std::uint8_t>(localSrc_));
    for (const int bound : inputBound_)
        w.i32(bound);
    for (const Output &port : out_) {
        w.i32(port.owner);
        w.u64(port.wormPkt);
        w.i32(port.rrPtr);
    }
    w.u8(boundMask_);
    w.u8(ownedMask_);
    w.u64(streamedFlits_);
    w.boolean(hot_->changed);
    w.boolean(hot_->poked);
}

void
MeshRouter::loadState(CkptReader &r)
{
    for (auto &buf : inBuf_)
        loadFlitFifo(r, buf);
    loadFlitFifo(r, outResp_);
    loadFlitFifo(r, outReq_);
    localSrc_ = static_cast<LocalSrc>(r.u8());
    for (int &bound : inputBound_)
        bound = r.i32();
    for (Output &port : out_) {
        port.owner = r.i32();
        port.wormPkt = r.u64();
        port.rrPtr = r.i32();
    }
    boundMask_ = r.u8();
    ownedMask_ = r.u8();
    streamedFlits_ = r.u64();
    hot_->changed = r.boolean();
    hot_->poked = r.boolean();
    // Rebuild the derived per-grant caches (grantOutput()'s recipe):
    // the source view and credit-wake target are fixed for the worm's
    // lifetime, so they follow directly from the owner input.
    for (std::size_t out = 0; out < NumMeshPorts; ++out) {
        Output &port = out_[out];
        if (port.owner == -1) {
            port.src = {};
            port.srcUpstream = nullptr;
        } else if (port.owner == PortLocal) {
            HRSIM_ASSERT(localSrc_ != LocalSrc::None);
            port.src =
                (localSrc_ == LocalSrc::Resp ? outResp_ : outReq_)
                    .view();
            port.srcUpstream = nullptr;
        } else {
            port.src =
                inBuf_[static_cast<std::size_t>(port.owner)].view();
            port.srcUpstream =
                upstream_[static_cast<std::size_t>(port.owner)];
            HRSIM_ASSERT(port.srcUpstream != nullptr);
        }
    }
}

} // namespace hrsim
