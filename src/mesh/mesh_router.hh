/**
 * @file
 * Bi-directional 2D-mesh router (Figure 5 of the paper).
 *
 * The mesh NIC is a 5x5 crossbar: four links to the direct neighbors
 * plus the local PM port. Each directional input has a FIFO buffer of
 * 1, 4 or cl flits; the local injection port is backed by the PM's
 * split request/response output queues (responses have priority at
 * packet boundaries). Routing is deterministic e-cube (X then Y),
 * which is deadlock-free on a mesh without end-around connections and
 * needs no virtual channels. Output-port arbitration among competing
 * inputs is round-robin; a granted connection persists until the tail
 * flit of the packet has crossed, and the whole crossbar can move one
 * flit on every port within a single clock cycle.
 */

#ifndef HRSIM_MESH_MESH_ROUTER_HH
#define HRSIM_MESH_MESH_ROUTER_HH

#include <array>
#include <functional>

#include "ckpt/state_io.hh"
#include "common/staged_fifo.hh"
#include "common/types.hh"
#include "fault/fault_plan.hh"
#include "obs/flit_trace.hh"
#include "proto/packet.hh"
#include "sim/active_set.hh"
#include "sim/columns.hh"
#include "sim/parallel.hh"
#include "stats/utilization.hh"

namespace hrsim
{

/** Crossbar port indices. */
enum MeshPort : int
{
    PortEast = 0,
    PortWest = 1,
    PortSouth = 2,
    PortNorth = 3,
    PortLocal = 4,
    NumMeshPorts = 5,
};

/** The port on the neighbor that faces back at @a port. */
MeshPort oppositePort(MeshPort port);

/**
 * Router queues skip any inline small-buffer: six queues per router
 * would grow MeshRouter ~3x, and the per-cycle sweep over all
 * routers is cache-footprint-bound (measured slower inline, both
 * with heap-allocated routers and with the contiguous pool layout).
 * ColumnFifo additionally lets the network hoist the six cursor
 * blocks into a contiguous FifoState column (bindColumns), so the
 * end-of-cycle commit sweep and the neighbors' canPush() probes read
 * hot columns instead of router objects; unbound (the
 * HRSIM_NO_COLUMNAR oracle) it is cursor-in-object like the old
 * StagedFifo<Flit, 0> was.
 */
using MeshFifo = ColumnFifo<Flit>;

/**
 * Per-router fault state, allocated by MeshNetwork only while a
 * fault plan is active (routers hold a null pointer otherwise, so
 * fault-free runs pay nothing). Windows may overlap, so the per-port
 * and stall flags are nesting depth counters, not booleans.
 */
struct MeshRouterFaults
{
    std::array<std::uint8_t, 4> portDown{};    //!< LinkDown depth
    std::array<std::uint8_t, 4> portCorrupt{}; //!< Corrupt depth
    std::uint8_t stalled = 0;                  //!< Stall depth

    /**
     * Worm-kill state machine of one output port. A kill outlives
     * the window that started it: once a worm starts draining into a
     * dead link it must drain to its tail even if the link comes
     * back, because its leading flits are already gone.
     */
    struct OutKill
    {
        bool killing = false;    //!< draining the bound worm
        bool decided = false;    //!< first flit inspected?
        bool terminator = false; //!< owe downstream a poisoned tail
        bool poisoning = false;  //!< Corrupt: stamping this worm
    };
    std::array<OutKill, 4> out{};
};

/** Checkpoint one router's fault state. The nesting depths are
 *  redundant with the FaultController's applied-event replay but the
 *  kill/poison drain machines are not — a worm half-drained into a
 *  dead link must resume draining after restore. */
inline void
saveMeshRouterFaults(CkptWriter &w, const MeshRouterFaults &f)
{
    for (std::size_t p = 0; p < 4; ++p) {
        w.u8(f.portDown[p]);
        w.u8(f.portCorrupt[p]);
    }
    w.u8(f.stalled);
    for (const MeshRouterFaults::OutKill &kill : f.out) {
        w.boolean(kill.killing);
        w.boolean(kill.decided);
        w.boolean(kill.terminator);
        w.boolean(kill.poisoning);
    }
}

inline void
loadMeshRouterFaults(CkptReader &r, MeshRouterFaults &f)
{
    for (std::size_t p = 0; p < 4; ++p) {
        f.portDown[p] = r.u8();
        f.portCorrupt[p] = r.u8();
    }
    f.stalled = r.u8();
    for (MeshRouterFaults::OutKill &kill : f.out) {
        kill.killing = r.boolean();
        kill.decided = r.boolean();
        kill.terminator = r.boolean();
        kill.poisoning = r.boolean();
    }
}

class MeshRouter
{
  public:
    using DeliverFn = std::function<void(const Packet &, Cycle)>;

    /** Flit slots one router's six queues need in an arena. */
    static std::size_t
    arenaFlits(std::uint32_t buffer_flits, std::uint32_t queue_flits)
    {
        return 4 * static_cast<std::size_t>(buffer_flits) +
               2 * static_cast<std::size_t>(queue_flits);
    }

    /**
     * @param id PM id (also the router's position in the mesh).
     * @param width Mesh edge length.
     * @param buffer_flits Directional input buffer depth.
     * @param queue_flits PM output queue depth (>= largest packet).
     * @param round_robin Rotate output arbitration (paper default);
     *        false selects fixed-priority (ablation only).
     * @param storage Optional external flit storage for all six
     *        queues, arenaFlits() elements (the network passes one
     *        arena segment per router so a router's buffered flits
     *        sit on adjacent cache lines); nullptr lets each queue
     *        heap-allocate its own buffer.
     */
    MeshRouter(NodeId id, int width, std::uint32_t buffer_flits,
               std::uint32_t queue_flits, bool round_robin = true,
               Flit *storage = nullptr);

    MeshRouter(const MeshRouter &) = delete;
    MeshRouter &operator=(const MeshRouter &) = delete;
    MeshRouter(MeshRouter &&) = delete;
    MeshRouter &operator=(MeshRouter &&) = delete;

    /** Wire a directional output to the neighbor's facing input. */
    void connect(MeshPort out, MeshRouter *neighbor,
                 UtilizationTracker *util,
                 UtilizationTracker::LinkId link);

    /** Route, arbitrate and traverse one cycle. Inline so the
     * scheduler's per-router call jumps straight into the selected
     * engine instead of through an extra dispatch frame. */
    void
    evaluate(Cycle now)
    {
        hot_->changed = false;
        // Stall fault: the crossbar core is frozen — no arbitration,
        // no traversal. Input latches still accept arrivals (staged
        // pushes commit as usual), so traffic backs up behind the
        // router and resumes untouched when the window closes.
        if (faults_ && faults_->stalled)
            return;
        if (fastPath_)
            evaluateFast(now);
        else
            evaluateLegacy(now);
    }

    /**
     * Select the worm-streaming fast path (default off = the legacy
     * straight-line loops, which double as the bit-identity oracle).
     * Set once after construction; results are identical either way.
     */
    void setFastPath(bool enabled) { fastPath_ = enabled; }

    /**
     * Attach this router's row of the network's e-cube routing LUT
     * (indexed by destination NodeId). The fast path routes heads
     * with one load from it instead of the div/mod coordinate math.
     */
    void setRouteRow(const std::uint8_t *row) { routeRow_ = row; }

    /** No visible flit anywhere: evaluate() would be a no-op. */
    bool quiescent() const;

    /**
     * End-of-cycle sleep decision for the active-set scheduler: keep
     * the router awake iff this cycle's evaluate changed any state
     * (granted an output or moved a flit) or an external event poked
     * it (flit arrival, local injection, or a downstream credit).
     * Consumes the poke.
     *
     * Why this is sound: evaluate() is deterministic in the router's
     * committed state plus its neighbors' buffer occupancy, pops do
     * not free downstream space until the neighbor's commit, and
     * arrivals stage invisibly until the local commit. So an evaluate
     * that changed nothing will keep changing nothing until one of
     * the poke events fires — each of which re-wakes the router.
     */
    bool sweepKeep()
    {
        // A stalled router is pinned awake: it holds flits that move
        // again the cycle its window closes, and keeping it in the
        // active set also keeps the network non-idle so the system
        // never fast-forwards across a stall.
        RouterFlags &hot = *hot_;
        const bool keep =
            hot.changed || hot.poked || (faults_ && faults_->stalled);
        hot.poked = false;
        return keep;
    }

    /** External event: ensure the next retain keeps this router. */
    void poke() { hot_->poked = true; }

    /** End-of-cycle commit of all router FIFOs. */
    void commit();

    bool canInject(const Packet &pkt) const;
    void inject(const Packet &pkt);
    void setDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /**
     * Point at the owning network's tracer pointer so hop events
     * follow --trace-flits attachment after construction.
     */
    void setTracerSlot(FlitTracer *const *slot) { tracerSlot_ = slot; }

    /**
     * The network's router ActiveSet: pushing a flit into a
     * neighbor's input buffer wakes the neighbor (by its PM id).
     */
    void setWakeSet(ActiveSet *set) { wakeSet_ = set; }

    /** Route wakes into the columnar bitmap (wins over wakeSet_). */
    void setWakeMask(ActiveMask *mask) { wakeMask_ = mask; }

    /**
     * Columnar rebinding (see sim/columns.hh): hoist the six queue
     * cursor blocks into @a states (inBuf_[0..3], outResp_, outReq_
     * in that order) and the changed/poked flag pair into @a flags —
     * all network-column slots. Current values move over; call once
     * at setup, before the first tick.
     */
    void
    bindColumns(FifoState *states, RouterFlags *flags)
    {
        for (std::size_t p = 0; p < 4; ++p)
            inBuf_[p].bindState(&states[p]);
        outResp_.bindState(&states[4]);
        outReq_.bindState(&states[5]);
        col_ = states;
        *flags = *hot_;
        hot_ = flags;
    }

    /**
     * Re-cache the flat peer-buffer views after every router's
     * bindColumns() moved the cursor blocks (the network calls this
     * in a second pass — a view cached before the *neighbor's*
     * binding would point at its abandoned oracle block).
     */
    void
    refreshViews()
    {
        for (auto &port : out_) {
            if (port.peerBuf != nullptr)
                port.peer = port.peerBuf->view();
            if (port.util != nullptr) {
                port.utilMeasuring = port.util->measuringFlag();
                port.utilCounter =
                    port.util->transferCounter(port.link);
            }
        }
    }

    /**
     * Attach this router's fault state and the network's shared
     * conservation ledger (both owned elsewhere; null = fault-free).
     */
    void
    setFaultState(MeshRouterFaults *faults, FaultAccounting *acct)
    {
        faults_ = faults;
        acct_ = acct;
    }

    /**
     * Shard-parallel tick support: aim every wired output port's
     * cached utilization counter at @a shard's plane of @a util
     * (refreshViews() restores the master counters).
     */
    void
    repointUtilCounters(UtilizationTracker *util, int shard)
    {
        for (auto &port : out_) {
            if (port.util != nullptr) {
                port.utilCounter =
                    util->shardTransferCounter(shard, port.link);
            }
        }
    }

    /**
     * Shard-parallel tick support: redirect the fault ledger (a pure
     * counter redirection; the end-of-tick fold restores the master
     * totals).
     */
    void repointAcct(FaultAccounting *acct) { acct_ = acct; }

    NodeId id() const { return id_; }

    /** Directional input buffer (for tests). */
    const MeshFifo &inputBuffer(MeshPort port) const;

    /** Flits currently buffered in this router. */
    std::uint64_t flitCount() const;

    /**
     * e-cube output port for a packet headed to @a dst: the routing
     * LUT row when one is attached, else the coordinate computation.
     */
    MeshPort routeOf(NodeId dst) const;

    /**
     * e-cube output port computed from coordinates (X then Y). The
     * LUT is built from this; the exhaustive equivalence test in
     * test_mesh_network.cc compares the two for every (router, dst).
     */
    MeshPort routeOfCoordinate(NodeId dst) const;

    /**
     * Flits forwarded on an already-owned output port, i.e. moved
     * without re-running routing or arbitration (every non-head flit
     * of every worm). A pure function of the simulation history —
     * identical under fast path and legacy loops.
     */
    std::uint64_t streamedFlits() const { return streamedFlits_; }

    /**
     * Checkpoint hooks (tick boundary): the six queues, the crossbar
     * binding state, and the changed/poked flags (live state — an
     * unconsumed poke is what re-wakes a back-pressured worm). The
     * cached source views and upstream pointers of granted ports are
     * derived; loadState() rebuilds them with grantOutput()'s recipe.
     */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    /** Legacy straight-line evaluate (the bit-identity oracle). */
    void evaluateLegacy(Cycle now);

    /** Mask-driven evaluate: LUT routing, ctz port iteration. */
    void evaluateFast(Cycle now);

    /** Bind output @a out to the worm whose head waits on @a in. */
    void grantOutput(int out, int in);

    /** Move one flit across owned output @a out if flow control allows. */
    void traverseOutput(int out, Cycle now);

    /**
     * Drain-and-drop one flit of the worm bound to dead output
     * @a out (see MeshRouterFaults::OutKill). Cold path, fault runs
     * only.
     */
    void killOutput(int out);

    /** Next flit availabe on input @a in (nullptr if none). */
    const Flit *peekInput(int in) const;

    /** Poke + wake @a neighbor (flit arrival or credit event). */
    void
    wakeNeighbor(MeshRouter *neighbor)
    {
        // Shard-parallel evaluate (DESIGN.md section 15): the
        // neighbor may belong to another shard, so neither its poked
        // byte nor the shared mask may be touched here — both halves
        // of the wake are deferred into the shard sink and replayed
        // (poke + add) at the barrier, before the sleep sweep reads
        // either. Wakes are idempotent, so duplicates merge freely.
        if (ShardSink *sink = tlsShardSink) {
            sink->wakes.push_back(DeferredWake{
                wakeMask_,
                static_cast<std::uint32_t>(neighbor->id_)});
            return;
        }
        // Test-before-set: at saturation almost every neighbor is
        // already poked, and skipping the redundant store keeps its
        // flag line clean in this core's cache.
        RouterFlags &hot = *neighbor->hot_;
        if (!hot.poked)    // stay up next cycle
            hot.poked = true;
        if (wakeMask_)     // and wake if sleeping
            wakeMask_->add(static_cast<std::uint32_t>(neighbor->id_));
        else if (wakeSet_)
            wakeSet_->add(static_cast<std::uint32_t>(neighbor->id_));
    }

    NodeId id_;
    int width_;
    int x_;
    int y_;
    bool roundRobin_;

    std::array<MeshFifo, 4> inBuf_;
    MeshFifo outResp_;
    MeshFifo outReq_;

    /** Which queue the local input's current worm drains from. */
    enum class LocalSrc : std::uint8_t { None, Resp, Req };
    LocalSrc localSrc_ = LocalSrc::None;

    /** Output the input's current worm is bound to (-1 if none). */
    std::array<int, NumMeshPorts> inputBound_;

    struct Output
    {
        int owner = -1; //!< input currently holding this port
        PacketId wormPkt = 0;
        int rrPtr = 0;  //!< round-robin arbitration pointer
        /** The owner worm's source queue, cached at grant so each
         * streamed flit skips the peekInput() owner/localSrc
         * dispatch (the queue is fixed for the worm's lifetime). */
        FifoView<Flit> src{};
        /** Credit-wake target for pops from src: the upstream
         * feeder for directional inputs, null for the local port. */
        MeshRouter *srcUpstream = nullptr;
        MeshRouter *neighbor = nullptr;
        /** The neighbor's facing input buffer (cached at connect,
         * re-cached by refreshViews() after column binding). */
        MeshFifo *peerBuf = nullptr;
        /** Flat handle onto peerBuf (same re-cache discipline). */
        FifoView<Flit> peer{};
        UtilizationTracker *util = nullptr;
        UtilizationTracker::LinkId link = 0;
        /** Cached tracker internals (refreshViews): one flag load
         * and one increment per hop instead of two vector walks. */
        const bool *utilMeasuring = nullptr;
        std::uint64_t *utilCounter = nullptr;
    };
    std::array<Output, NumMeshPorts> out_;

    bool fastPath_ = false;
    /** changed/poked flag pair behind a rebindable handle: the sleep
     * sweep reads and cross-router wakes write through hot_, which
     * the columnar engine repoints at a network column slot
     * (in-object by default — the HRSIM_NO_COLUMNAR layout). */
    RouterFlags hotLocal_;
    RouterFlags *hot_ = &hotLocal_;
    /** This router's row of the network's e-cube LUT (may be null). */
    const std::uint8_t *routeRow_ = nullptr;
    /** The six contiguous column cursor blocks once bound (null in
     * the HRSIM_NO_COLUMNAR layout): the fast-path visibility scan
     * reads them with one base pointer instead of six st_ hops. */
    const FifoState *col_ = nullptr;
    /** Port activity: inputs bound to an output worm. */
    PortMask boundMask_ = 0;
    /** Port activity: outputs owned by an input worm. */
    PortMask ownedMask_ = 0;
    std::uint64_t streamedFlits_ = 0;
    /** Router feeding each directional input (credit wake target). */
    std::array<MeshRouter *, 4> upstream_{};

    DeliverFn deliver_;
    FlitTracer *const *tracerSlot_ = nullptr;
    ActiveSet *wakeSet_ = nullptr;
    /** Columnar wake target; when set it wins over wakeSet_. */
    ActiveMask *wakeMask_ = nullptr;
    /** Fault state + ledger; null (the fast case) without a plan. */
    MeshRouterFaults *faults_ = nullptr;
    FaultAccounting *acct_ = nullptr;
};

} // namespace hrsim

#endif // HRSIM_MESH_MESH_ROUTER_HH
