/**
 * @file
 * Bi-directional 2D-mesh router (Figure 5 of the paper).
 *
 * The mesh NIC is a 5x5 crossbar: four links to the direct neighbors
 * plus the local PM port. Each directional input has a FIFO buffer of
 * 1, 4 or cl flits; the local injection port is backed by the PM's
 * split request/response output queues (responses have priority at
 * packet boundaries). Routing is deterministic e-cube (X then Y),
 * which is deadlock-free on a mesh without end-around connections and
 * needs no virtual channels. Output-port arbitration among competing
 * inputs is round-robin; a granted connection persists until the tail
 * flit of the packet has crossed, and the whole crossbar can move one
 * flit on every port within a single clock cycle.
 */

#ifndef HRSIM_MESH_MESH_ROUTER_HH
#define HRSIM_MESH_MESH_ROUTER_HH

#include <array>
#include <functional>

#include "common/staged_fifo.hh"
#include "common/types.hh"
#include "obs/flit_trace.hh"
#include "proto/packet.hh"
#include "sim/active_set.hh"
#include "stats/utilization.hh"

namespace hrsim
{

/** Crossbar port indices. */
enum MeshPort : int
{
    PortEast = 0,
    PortWest = 1,
    PortSouth = 2,
    PortNorth = 3,
    PortLocal = 4,
    NumMeshPorts = 5,
};

/** The port on the neighbor that faces back at @a port. */
MeshPort oppositePort(MeshPort port);

/**
 * Router queues skip the StagedFifo small-buffer: six queues per
 * router would grow MeshRouter ~3x, and the per-cycle sweep over all
 * routers is cache-footprint-bound (measured slower inline).
 */
using MeshFifo = StagedFifo<Flit, 0>;

class MeshRouter
{
  public:
    using DeliverFn = std::function<void(const Packet &, Cycle)>;

    /**
     * @param id PM id (also the router's position in the mesh).
     * @param width Mesh edge length.
     * @param buffer_flits Directional input buffer depth.
     * @param queue_flits PM output queue depth (>= largest packet).
     * @param round_robin Rotate output arbitration (paper default);
     *        false selects fixed-priority (ablation only).
     */
    MeshRouter(NodeId id, int width, std::uint32_t buffer_flits,
               std::uint32_t queue_flits, bool round_robin = true);

    MeshRouter(const MeshRouter &) = delete;
    MeshRouter &operator=(const MeshRouter &) = delete;
    MeshRouter(MeshRouter &&) = delete;
    MeshRouter &operator=(MeshRouter &&) = delete;

    /** Wire a directional output to the neighbor's facing input. */
    void connect(MeshPort out, MeshRouter *neighbor,
                 UtilizationTracker *util,
                 UtilizationTracker::LinkId link);

    /** Route, arbitrate and traverse one cycle. */
    void evaluate(Cycle now);

    /** No visible flit anywhere: evaluate() would be a no-op. */
    bool quiescent() const;

    /** End-of-cycle commit of all router FIFOs. */
    void commit();

    bool canInject(const Packet &pkt) const;
    void inject(const Packet &pkt);
    void setDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /**
     * Point at the owning network's tracer pointer so hop events
     * follow --trace-flits attachment after construction.
     */
    void setTracerSlot(FlitTracer *const *slot) { tracerSlot_ = slot; }

    /**
     * The network's router ActiveSet: pushing a flit into a
     * neighbor's input buffer wakes the neighbor (by its PM id).
     */
    void setWakeSet(ActiveSet *set) { wakeSet_ = set; }

    NodeId id() const { return id_; }

    /** Directional input buffer (for tests). */
    const MeshFifo &inputBuffer(MeshPort port) const;

    /** Flits currently buffered in this router. */
    std::uint64_t flitCount() const;

    /** e-cube output port for a packet headed to @a dst. */
    MeshPort routeOf(NodeId dst) const;

  private:
    /** Next flit availabe on input @a in (nullptr if none). */
    const Flit *peekInput(int in) const;

    /** Pop the peeked flit from input @a in. */
    Flit popInput(int in);

    /** May output @a out push one flit downstream this cycle? */
    bool downstreamAccepts(int out) const;

    /** Push @a flit downstream from output @a out. */
    void pushDownstream(int out, const Flit &flit, Cycle now);

    NodeId id_;
    int width_;
    int x_;
    int y_;
    bool roundRobin_;

    std::array<MeshFifo, 4> inBuf_;
    MeshFifo outResp_;
    MeshFifo outReq_;

    /** Which queue the local input's current worm drains from. */
    enum class LocalSrc : std::uint8_t { None, Resp, Req };
    LocalSrc localSrc_ = LocalSrc::None;

    /** Output the input's current worm is bound to (-1 if none). */
    std::array<int, NumMeshPorts> inputBound_;

    struct Output
    {
        int owner = -1; //!< input currently holding this port
        PacketId wormPkt = 0;
        int rrPtr = 0;  //!< round-robin arbitration pointer
        MeshRouter *neighbor = nullptr;
        UtilizationTracker *util = nullptr;
        UtilizationTracker::LinkId link = 0;
    };
    std::array<Output, NumMeshPorts> out_;

    DeliverFn deliver_;
    FlitTracer *const *tracerSlot_ = nullptr;
    ActiveSet *wakeSet_ = nullptr;
};

} // namespace hrsim

#endif // HRSIM_MESH_MESH_ROUTER_HH
