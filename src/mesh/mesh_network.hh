/**
 * @file
 * Square bi-directional 2D-mesh interconnect (Figure 2 of the paper).
 *
 * width x width wormhole-routed mesh with no end-around connections.
 * Each adjacent pair of routers is joined by two uni-directional
 * 32-bit links. Directional router buffers hold 1, 4 or cl flits
 * (Section 2.2); network utilization counts router-to-router links
 * only, matching the paper's metric.
 */

#ifndef HRSIM_MESH_MESH_NETWORK_HH
#define HRSIM_MESH_MESH_NETWORK_HH

#include <cstdint>
#include <vector>

#include "common/stable_pool.hh"
#include "common/types.hh"
#include "mesh/mesh_router.hh"
#include "sim/network.hh"

namespace hrsim
{

class MeshNetwork : public Network
{
  public:
    struct Params
    {
        int width = 2; //!< edge length; P = width * width
        std::uint32_t cacheLineBytes = 32;
        /** Router input-buffer depth in flits; 0 selects cl-sized. */
        std::uint32_t bufferFlits = 4;
        /** Round-robin output arbitration (paper default); false
         * selects fixed-priority (ablation only). */
        bool roundRobinArbitration = true;
    };

    explicit MeshNetwork(const Params &params);

    // Network interface
    int numProcessors() const override;
    bool canInject(NodeId pm, const Packet &pkt) const override;
    void inject(NodeId pm, const Packet &pkt) override;
    void tick(Cycle now) override;
    UtilizationTracker &utilization() override { return util_; }
    const UtilizationTracker &utilization() const override
    {
        return util_;
    }
    std::uint64_t flitsInFlight() const override;
    void registerMetrics(MetricRegistry &registry) const override;
    void setActiveScheduling(bool enabled) override;
    void setFastPath(bool enabled) override;
    void setColumnar(bool enabled) override;
    bool isIdle() const override;
    std::size_t activeNodeCount() const override;
    bool faultTargetValid(const FaultTarget &target) const override;
    void applyFault(const FaultEvent &event, bool active) override;
    void setFaultAccounting(FaultAccounting *acct) override;
    void setTickParallel(TickPool *pool) override;
    TickParallelStats
    tickParallelStats() const override
    {
        return parStats_;
    }

    /**
     * Checkpoint hooks (tick boundary). Unlike the ring's, mesh
     * scheduler membership is NOT derivable from buffer contents: a
     * back-pressured router sleeps while holding flits (sweepKeep),
     * an empty one can sit awake under the amortized saturation
     * sweep, and both depend on poke/changed history — so the
     * snapshot carries the explicit member list, the per-router flag
     * pairs, and the sweep phase counter.
     */
    bool checkpointSupported() const override { return true; }
    void saveState(CkptWriter &w) const override;
    void loadState(CkptReader &r) override;

    /** Mesh-link utilization in [0, 1] (the paper's Figure 13). */
    double networkUtilization() const;

    int width() const { return params_.width; }
    const Params &params() const { return params_; }

    /** Resolved router buffer depth in flits. */
    std::uint32_t bufferFlits() const { return bufferFlits_; }

    /** Flits in a cache-line packet on this network. */
    std::uint32_t clFlits() const { return clFlits_; }

    MeshRouter &router(NodeId id);

  private:
    Params params_;
    std::uint32_t clFlits_;
    std::uint32_t bufferFlits_;
    /** One flit-storage arena for every router queue, segmented per
     * router (declared before routers_, which point into it). */
    std::vector<Flit> flitArena_;
    /** Routers live contiguously so the tick sweep strides linearly
     * instead of chasing one heap pointer per router per phase. */
    StablePool<MeshRouter> routers_;
    /** e-cube routing LUT, P*P entries: row r holds router r's output
     * port for every destination. Built from routeOfCoordinate(). */
    std::vector<std::uint8_t> routeLut_;
    UtilizationTracker util_;
    UtilizationTracker::GroupId meshGroup_;
    bool fastPath_ = false;

    // Active-set scheduler state (setActiveScheduling). Router
    // evaluation order is immaterial (two-phase FIFOs), but the set
    // still iterates in id order so behaviour is easy to reason about
    // and identical to the full scan by construction.
    bool activeSched_ = false;
    ActiveSet active_;
    /** Saturated ticks since the last amortized sleep sweep. */
    std::uint32_t satTicks_ = 0;

    // Columnar engine state (setColumnar; see sim/columns.hh): six
    // FifoState cursor blocks per router at [id * 6] and one
    // changed/poked flag pair per router, both contiguous, plus the
    // bitmap active mask replacing active_.
    bool columnar_ = false;
    std::vector<FifoState> fifoCol_;
    std::vector<RouterFlags> flagsCol_;
    ActiveMask activeMask_;

    /** Active-scheduled tick over the columnar layout. */
    void tickColumnar(Cycle now);

    /** Wake a router in whichever scheduler structure is live. */
    void
    wakeRouter(std::uint32_t id)
    {
        if (columnar_)
            activeMask_.add(id);
        else
            active_.add(id);
    }

    /** Per-router fault state; allocated by setFaultAccounting()
     * (i.e. only when a fault plan is active). */
    std::vector<MeshRouterFaults> faultState_;
    FaultAccounting *acct_ = nullptr;

    // ---- Parallel tick engine state (setTickParallel) ----

    /**
     * One evaluate shard = one 64-aligned contiguous router-id range
     * (whole mask words, so the sleep sweep can partition on the
     * same boundaries). Router evaluation order is immaterial on the
     * mesh (two-phase FIFOs), and every cross-router effect is
     * either SPSC-safe under the frozen FIFO counters or deferred
     * through the shard sink; see DESIGN.md section 15.
     */
    struct MeshShard
    {
        std::uint32_t wordLo = 0; //!< first mask word
        std::uint32_t wordHi = 0; //!< one past the last mask word
        std::uint32_t idLo = 0;   //!< wordLo * 64
        std::uint32_t idHi = 0;   //!< min(wordHi * 64, P)
        /** Shard fault ledger, folded into acct_ at end of tick. */
        FaultAccounting acct{};
    };

    /** Shard-parallel columnar tick, bit-identical to tickColumnar()
     *  at any pool width (DESIGN.md section 15). */
    void tickColumnarParallel(Cycle now);

    /** Point every router's fault-ledger pointer at its shard's
     *  ledger (no-op without an active ledger). */
    void applyParallelAcct();

    /** Fold the shard fault ledgers into the master ledger. */
    void foldShardAcct();

    TickPool *pool_ = nullptr;
    /** Ascending id ranges, so draining the sinks in shard order
     *  reproduces the serial ascending-router-id delivery order. */
    std::vector<MeshShard> shards_;
    std::vector<ShardSink> sinks_; //!< one per shard
    TickParallelStats parStats_;
};

} // namespace hrsim

#endif // HRSIM_MESH_MESH_NETWORK_HH
