#include "fault/fault_controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/metric_registry.hh"
#include "sim/network.hh"

namespace hrsim
{

FaultController::FaultController(const FaultPlan &plan, Network &net)
    : plan_(plan), net_(net)
{
    for (const FaultEvent &event : plan_.events) {
        if (!net_.faultTargetValid(event.target)) {
            fatal("fault plan names '" + event.target.canonical() +
                  "', which this network does not have");
        }
    }
    edges_.reserve(plan_.events.size() * 2);
    for (std::uint32_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent &event = plan_.events[i];
        edges_.push_back({event.start, i, true});
        if (event.end != FaultEvent::foreverCycle)
            edges_.push_back({event.end, i, false});
    }
    // Deactivations before activations at the same cycle (windows
    // are [start, end)), plan order within each group; stable_sort
    // keeps the replay a pure function of the plan.
    std::stable_sort(edges_.begin(), edges_.end(),
                     [](const Edge &a, const Edge &b) {
                         if (a.cycle != b.cycle)
                             return a.cycle < b.cycle;
                         return !a.activate && b.activate;
                     });
    net_.setFaultAccounting(&acct_);
}

void
FaultController::fire(const Edge &edge)
{
    net_.applyFault(plan_.events[edge.event], edge.activate);
    ++applied_;
    if (edge.activate)
        ++active_;
    else
        --active_;
}

void
FaultController::registerMetrics(MetricRegistry &registry) const
{
    registry.addGauge("fault.events", [this]() {
        return static_cast<double>(plan_.events.size());
    });
    registry.addGauge("fault.active", [this]() {
        return static_cast<double>(active_);
    });
    registry.addCounter("fault.edges_applied", &applied_);
    registry.addCounter("fault.injected_flits", &acct_.injectedFlits);
    registry.addCounter("fault.delivered_flits",
                        &acct_.deliveredFlits);
    registry.addCounter("drop.flits", &acct_.droppedFlits);
    registry.addCounter("drop.worms", &acct_.droppedWorms);
    registry.addCounter("drop.poisoned_worms", &acct_.poisonedWorms);
}

} // namespace hrsim
