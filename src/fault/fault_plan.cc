#include "fault/fault_plan.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hrsim
{

const char *
toString(FaultAction action)
{
    switch (action) {
      case FaultAction::LinkDown:
        return "down";
      case FaultAction::Stall:
        return "stall";
      case FaultAction::Corrupt:
        return "corrupt";
    }
    return "unknown";
}

namespace
{

const char *meshPortNames[4] = {"east", "west", "south", "north"};

/** Consume a literal prefix; false leaves @a text untouched. */
bool
eat(std::string_view &text, std::string_view prefix)
{
    if (text.substr(0, prefix.size()) != prefix)
        return false;
    text.remove_prefix(prefix.size());
    return true;
}

/** Consume a non-negative decimal integer. */
bool
eatNumber(std::string_view &text, std::uint64_t &out)
{
    std::size_t used = 0;
    std::uint64_t value = 0;
    while (used < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[used]))) {
        value = value * 10 + static_cast<std::uint64_t>(text[used] - '0');
        ++used;
    }
    if (used == 0)
        return false;
    text.remove_prefix(used);
    out = value;
    return true;
}

bool
parseTarget(std::string_view &text, FaultTarget &out, std::string &err)
{
    std::uint64_t num = 0;
    if (eat(text, "mesh.r")) {
        if (!eatNumber(text, num)) {
            err = "expected router id after 'mesh.r'";
            return false;
        }
        out.id = static_cast<std::int32_t>(num);
        out.kind = FaultTargetKind::MeshRouter;
        if (!eat(text, "."))
            return true;
        for (int p = 0; p < 4; ++p) {
            if (eat(text, meshPortNames[p])) {
                out.kind = FaultTargetKind::MeshPort;
                out.port = p;
                return true;
            }
        }
        err = "expected east|west|south|north after 'mesh.r" +
              std::to_string(out.id) + ".'";
        return false;
    }
    if (eat(text, "ring.nic")) {
        if (!eatNumber(text, num)) {
            err = "expected PM number after 'ring.nic'";
            return false;
        }
        out.kind = FaultTargetKind::RingNic;
        out.id = static_cast<std::int32_t>(num);
        return true;
    }
    if (eat(text, "ring.l")) {
        if (!eatNumber(text, num)) {
            err = "expected level after 'ring.l'";
            return false;
        }
        out.level = static_cast<std::int32_t>(num);
        if (!eat(text, ".iri")) {
            err = "expected '.iri<I>' after 'ring.l" +
                  std::to_string(out.level) + "'";
            return false;
        }
        if (!eatNumber(text, num)) {
            err = "expected IRI index after 'iri'";
            return false;
        }
        out.kind = FaultTargetKind::RingIri;
        out.id = static_cast<std::int32_t>(num);
        if (eat(text, ".lower")) {
            out.upper = false;
            return true;
        }
        if (eat(text, ".upper")) {
            out.upper = true;
            return true;
        }
        err = "expected '.lower' or '.upper' after IRI target";
        return false;
    }
    err = "unknown fault target (want mesh.r<N>[.<port>], "
          "ring.nic<P> or ring.l<L>.iri<I>.<side>)";
    return false;
}

} // namespace

std::string
FaultTarget::canonical() const
{
    std::string text;
    switch (kind) {
      case FaultTargetKind::MeshRouter:
        text = "mesh.r" + std::to_string(id);
        break;
      case FaultTargetKind::MeshPort:
        text = "mesh.r" + std::to_string(id) + "." +
               meshPortNames[port];
        break;
      case FaultTargetKind::RingNic:
        text = "ring.nic" + std::to_string(id);
        break;
      case FaultTargetKind::RingIri:
        text = "ring.l" + std::to_string(level) + ".iri" +
               std::to_string(id) + (upper ? ".upper" : ".lower");
        break;
    }
    return text;
}

std::string
FaultEvent::canonical() const
{
    std::string text = target.canonical();
    text += ':';
    text += toString(action);
    text += '@';
    text += std::to_string(start);
    text += "..";
    if (end != foreverCycle)
        text += std::to_string(end);
    return text;
}

std::string
FaultPlan::canonical() const
{
    std::string text;
    for (const FaultEvent &event : events) {
        if (!text.empty())
            text += ';';
        text += event.canonical();
    }
    text += "|timeout=" + std::to_string(retry.timeoutCycles);
    text += "|retries=" + std::to_string(retry.maxRetries);
    return text;
}

bool
parseFaultSpec(std::string_view spec, FaultEvent &out, std::string &err)
{
    std::string_view text = spec;
    FaultEvent event;
    if (!parseTarget(text, event.target, err))
        return false;
    if (!eat(text, ":")) {
        err = "expected ':<action>' after fault target";
        return false;
    }
    if (eat(text, "down")) {
        event.action = FaultAction::LinkDown;
    } else if (eat(text, "stall")) {
        event.action = FaultAction::Stall;
    } else if (eat(text, "corrupt")) {
        event.action = FaultAction::Corrupt;
    } else {
        err = "unknown fault action (want down|stall|corrupt)";
        return false;
    }
    if (event.action != FaultAction::Stall &&
        event.target.kind == FaultTargetKind::MeshRouter) {
        err = "action '" + std::string(toString(event.action)) +
              "' needs a link target; name an output port "
              "(mesh.r<N>.east|west|south|north)";
        return false;
    }
    if (event.action == FaultAction::Stall &&
        event.target.kind == FaultTargetKind::MeshPort) {
        err = "'stall' freezes a whole router; drop the port "
              "(mesh.r<N>)";
        return false;
    }
    if (!eat(text, "@")) {
        err = "expected '@<start>..<end>' after fault action";
        return false;
    }
    std::uint64_t start = 0;
    if (!eatNumber(text, start)) {
        err = "expected start cycle after '@'";
        return false;
    }
    if (!eat(text, "..")) {
        err = "expected '..' after start cycle";
        return false;
    }
    event.start = start;
    std::uint64_t end = 0;
    if (text.empty()) {
        event.end = FaultEvent::foreverCycle;
    } else if (eatNumber(text, end) && text.empty()) {
        event.end = end;
    } else {
        err = "trailing garbage after fault window";
        return false;
    }
    if (event.end <= event.start) {
        err = "empty fault window (end must exceed start)";
        return false;
    }
    out = event;
    return true;
}

bool
parseFaultPlanText(std::string_view text, FaultPlan &out,
                   std::string &err)
{
    FaultPlan plan;
    std::size_t lineNo = 0;
    while (!text.empty()) {
        ++lineNo;
        const std::size_t eol = text.find('\n');
        std::string_view line = text.substr(0, eol);
        text.remove_prefix(eol == std::string_view::npos ? text.size()
                                                         : eol + 1);
        const std::size_t hash = line.find('#');
        if (hash != std::string_view::npos)
            line = line.substr(0, hash);
        while (!line.empty() &&
               std::isspace(static_cast<unsigned char>(line.front())))
            line.remove_prefix(1);
        while (!line.empty() &&
               std::isspace(static_cast<unsigned char>(line.back())))
            line.remove_suffix(1);
        if (line.empty())
            continue;

        std::uint64_t value = 0;
        std::string_view rest = line;
        if (eat(rest, "timeout ")) {
            if (!eatNumber(rest, value) || !rest.empty() || value == 0) {
                err = "line " + std::to_string(lineNo) +
                      ": 'timeout' wants one positive cycle count";
                return false;
            }
            plan.retry.timeoutCycles = value;
            continue;
        }
        if (eat(rest, "retries ")) {
            if (!eatNumber(rest, value) || !rest.empty()) {
                err = "line " + std::to_string(lineNo) +
                      ": 'retries' wants one non-negative count";
                return false;
            }
            plan.retry.maxRetries =
                static_cast<std::uint32_t>(value);
            continue;
        }
        FaultEvent event;
        std::string specErr;
        if (!parseFaultSpec(line, event, specErr)) {
            err = "line " + std::to_string(lineNo) + ": " + specErr;
            return false;
        }
        plan.events.push_back(event);
    }
    out = std::move(plan);
    return true;
}

bool
loadFaultPlanFile(const std::string &path, FaultPlan &out,
                  std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open fault plan '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseFaultPlanText(text.str(), out, err);
}

} // namespace hrsim
