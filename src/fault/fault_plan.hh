/**
 * @file
 * Deterministic fault schedules: what breaks, when, and for how long.
 *
 * A FaultPlan is a list of FaultEvents, each naming one physical
 * target (a mesh router output port, a ring NIC, or one side of an
 * inter-ring interface), one action, and an absolute cycle window
 * [start, end). The plan is data, not behaviour: it is parsed up
 * front from `--fault` specs or a `--fault-plan` file, validated
 * against the network topology at System construction, and applied
 * edge-by-edge by the FaultController as simulated time passes.
 * Nothing about a fault is random — the same plan and seed replay
 * the same run bit for bit, serially or under a parallel sweep.
 *
 * Spec grammar (one fault per spec):
 *
 *     <target>:<action>@<start>..<end>
 *     <target>:<action>@<start>..          (until the end of the run)
 *
 *   target  := mesh.r<N>                     router (stall only)
 *            | mesh.r<N>.<east|west|south|north>   output link
 *            | ring.nic<P>                   NIC of PM P
 *            | ring.l<L>.iri<I>.<lower|upper>      one IRI side
 *   action  := down | stall | corrupt
 *
 * `down` and `corrupt` act on the target's ring/mesh output link
 * (for a NIC, its ring output); `stall` freezes the whole component.
 * A plan file holds one spec per line, plus optional `timeout N` and
 * `retries N` directives setting the processors' RetryPolicy; `#`
 * starts a comment.
 */

#ifndef HRSIM_FAULT_FAULT_PLAN_HH
#define HRSIM_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace hrsim
{

/** What a fault does to its target during the active window. */
enum class FaultAction : std::uint8_t
{
    /** Output link dead: the sender drains worms into the fault and
     *  drops them (one flit per cycle), reclaiming credits so the
     *  fabric never wedges. Nothing crosses the link. */
    LinkDown = 0,
    /** Component frozen: it neither evaluates nor accepts; traffic
     *  backs up behind it and resumes when the window closes. */
    Stall = 1,
    /** Header corruption: worms whose head crosses the target link
     *  during the window are poisoned and dropped at ejection. */
    Corrupt = 2,
};

const char *toString(FaultAction action);

/** Which physical component a fault names. */
enum class FaultTargetKind : std::uint8_t
{
    MeshRouter = 0, //!< whole router (stall only)
    MeshPort = 1,   //!< one router output port (down/corrupt)
    RingNic = 2,    //!< NIC of one PM (any action)
    RingIri = 3,    //!< one side of an inter-ring interface
};

struct FaultTarget
{
    FaultTargetKind kind = FaultTargetKind::MeshRouter;
    std::int32_t id = 0;    //!< router id / NIC pm / IRI index in level
    std::int32_t port = 0;  //!< mesh output port (MeshPort only)
    std::int32_t level = 0; //!< parent-ring level (RingIri only)
    bool upper = false;     //!< IRI upper side (RingIri only)

    /** Canonical spec-grammar rendering ("mesh.r3.east"). */
    std::string canonical() const;
};

/** One scheduled fault: target + action over [start, end). */
struct FaultEvent
{
    FaultTarget target;
    FaultAction action = FaultAction::LinkDown;
    Cycle start = 0;
    /** First cycle the fault is no longer active (foreverCycle =
     *  never lifted). */
    Cycle end = 0;

    static constexpr Cycle foreverCycle = ~Cycle{0};

    /** Canonical spec rendering, parseable by parseFaultSpec(). */
    std::string canonical() const;
};

/**
 * How processors respond to transactions the fabric lost. Active
 * only when a fault plan is present; without one the issue path is
 * byte-identical to a build without the fault subsystem.
 */
struct RetryPolicy
{
    /** Cycles a request may stay unanswered before it is reissued.
     *  Must comfortably exceed the fault-free round trip. */
    Cycle timeoutCycles = 4096;

    /** Reissues allowed per transaction before it is abandoned. */
    std::uint32_t maxRetries = 3;
};

/** A full fault schedule plus the retry policy that rides with it. */
struct FaultPlan
{
    std::vector<FaultEvent> events;
    RetryPolicy retry;

    bool empty() const { return events.empty(); }

    /** Canonical one-line rendering (configKey() material): specs in
     *  plan order joined by ';', then the retry policy. */
    std::string canonical() const;
};

/**
 * Parse one spec-grammar fault ("mesh.r3.east:down@1000..2000").
 * On success appends to @a out and returns true; on failure leaves
 * @a out untouched, puts a one-line diagnostic in @a err and returns
 * false.
 */
bool parseFaultSpec(std::string_view spec, FaultEvent &out,
                    std::string &err);

/**
 * Parse a whole plan text (the `--fault-plan` file format): one spec
 * per line, `timeout N` / `retries N` directives, `#` comments.
 * Events keep file order. Returns false with a line-numbered
 * diagnostic in @a err on the first malformed line.
 */
bool parseFaultPlanText(std::string_view text, FaultPlan &out,
                        std::string &err);

/** parseFaultPlanText() on a file's contents; I/O errors go to
 *  @a err too. */
bool loadFaultPlanFile(const std::string &path, FaultPlan &out,
                       std::string &err);

/**
 * Shared retry-engine event counts, summed across all PMs (like
 * WorkloadCounters). Registered as the retry.* metrics; exists only
 * while a fault plan is active.
 */
struct RetryCounters
{
    std::uint64_t reissued = 0;  //!< requests resent after a timeout
    std::uint64_t stale = 0;     //!< responses to a dead transaction
    std::uint64_t abandoned = 0; //!< transactions given up on
};

/**
 * Flit- and worm-level conservation ledger. Allocated only when a
 * fault plan is active and shared by the network and its components;
 * the conservation invariant
 *
 *     injectedFlits == deliveredFlits + droppedFlits + in-flight
 *
 * holds at every cycle boundary and is asserted in tests.
 */
struct FaultAccounting
{
    std::uint64_t injectedFlits = 0;  //!< entered the fabric
    std::uint64_t deliveredFlits = 0; //!< ejected to a live receiver
    std::uint64_t droppedFlits = 0;   //!< drained into a fault
    std::uint64_t droppedWorms = 0;   //!< worms that lost their tail
    std::uint64_t poisonedWorms = 0;  //!< worms corrupted in flight
};

} // namespace hrsim

#endif // HRSIM_FAULT_FAULT_PLAN_HH
