/**
 * @file
 * Applies a FaultPlan to a live network, edge by edge.
 *
 * The controller flattens the plan's [start, end) windows into a
 * single edge list sorted by cycle (deactivations before activations
 * at the same cycle, plan order within each group) and replays it
 * lazily: System::tickOnce() calls advanceTo(now) before evaluating
 * the cycle, which applies every edge with cycle <= now that has not
 * fired yet. Laziness makes the controller jump-safe under
 * fastForwardQuiescent(): a fault edge inside a globally idle gap
 * changes no observable state (there is no traffic for it to act
 * on), so applying it on the first busy cycle after the jump is
 * equivalent to applying it on time — and the edge sequence itself
 * is a pure function of the plan, never of wall time or scheduling,
 * keeping faulted runs bit-identical across reruns, --jobs counts
 * and the fast-path/full-scan oracles.
 *
 * Overlapping windows on one target compose by counting: networks
 * hold per-target depth counters, not booleans, so a link is down
 * while at least one LinkDown window covers it.
 *
 * The controller also owns the FaultAccounting ledger shared with
 * the network (drop/injection/delivery conservation) and registers
 * the `fault.*` and `drop.*` metrics. Both exist only when a plan is
 * present, so fault-free runs stay byte-identical to a tree without
 * the subsystem.
 */

#ifndef HRSIM_FAULT_FAULT_CONTROLLER_HH
#define HRSIM_FAULT_FAULT_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "ckpt/codec.hh"
#include "common/types.hh"
#include "fault/fault_plan.hh"

namespace hrsim
{

class Network;
class MetricRegistry;

class FaultController
{
  public:
    /**
     * Validate @a plan against @a net (every target must exist —
     * unknown routers/NICs/IRIs are fatal, not ignored) and share
     * the accounting ledger with the network. @a net must outlive
     * the controller.
     */
    FaultController(const FaultPlan &plan, Network &net);

    /** Apply every not-yet-fired edge with cycle <= @a now. */
    void
    advanceTo(Cycle now)
    {
        while (next_ < edges_.size() && edges_[next_].cycle <= now)
            fire(edges_[next_++]);
    }

    /** Faults active after the last advanceTo(). */
    std::uint32_t activeFaults() const { return active_; }

    /** Edges (activations + deactivations) fired so far. */
    std::uint64_t edgesApplied() const { return applied_; }

    const FaultPlan &plan() const { return plan_; }
    const FaultAccounting &accounting() const { return acct_; }

    /** Register fault.* / drop.* under the shared naming scheme. */
    void registerMetrics(MetricRegistry &registry) const;

    /**
     * Checkpoint hooks: the edge cursor, active/applied counters, and
     * the conservation ledger. The edge list itself is rebuilt from
     * the plan at construction (a pure function of it); the networks'
     * per-target depth counters travel in the network snapshot, so no
     * edge replay happens on restore.
     */
    void
    saveState(CkptWriter &w) const
    {
        w.u64(static_cast<std::uint64_t>(next_));
        w.u32(active_);
        w.u64(applied_);
        w.u64(acct_.injectedFlits);
        w.u64(acct_.deliveredFlits);
        w.u64(acct_.droppedFlits);
        w.u64(acct_.droppedWorms);
        w.u64(acct_.poisonedWorms);
    }

    void
    loadState(CkptReader &r)
    {
        const std::uint64_t next = r.u64();
        if (next > edges_.size()) {
            throw CheckpointError(
                "checkpoint: fault edge cursor past the configured "
                "plan (fault plan mismatch)");
        }
        next_ = static_cast<std::size_t>(next);
        active_ = r.u32();
        applied_ = r.u64();
        acct_.injectedFlits = r.u64();
        acct_.deliveredFlits = r.u64();
        acct_.droppedFlits = r.u64();
        acct_.droppedWorms = r.u64();
        acct_.poisonedWorms = r.u64();
    }

  private:
    struct Edge
    {
        Cycle cycle;
        std::uint32_t event; //!< index into plan_.events
        bool activate;
    };

    void fire(const Edge &edge);

    FaultPlan plan_;
    Network &net_;
    std::vector<Edge> edges_;
    std::size_t next_ = 0;
    std::uint32_t active_ = 0;
    std::uint64_t applied_ = 0;
    FaultAccounting acct_;
};

} // namespace hrsim

#endif // HRSIM_FAULT_FAULT_CONTROLLER_HH
