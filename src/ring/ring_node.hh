/**
 * @file
 * Building blocks shared by ring NICs and inter-ring interfaces.
 *
 * A ring attachment point ("side") owns:
 *  - an input latch: the single flit arriving from the upstream ring
 *    neighbor, registered at the previous clock edge;
 *  - a transit ring buffer (packet-sized) absorbing flits that must
 *    continue on the ring while the output link is busy;
 *  - an output port driving the downstream neighbor's latch, with
 *    wormhole state (a link, once granted to a packet, is held until
 *    its tail flit passes).
 *
 * Flow control follows the paper's back-propagated stop signal: at
 * the start of every cycle each side publishes whether it can accept
 * one more flit (its latch is empty, or the latch flit is guaranteed
 * disposable this cycle — it sinks, or its staging buffer has room).
 * Upstream outputs only transmit when the flag is set, so a latch can
 * never be overwritten. Because the flag only reads start-of-cycle
 * state, evaluation order between nodes is immaterial and a closed
 * ring needs no combinational loop.
 */

#ifndef HRSIM_RING_RING_NODE_HH
#define HRSIM_RING_RING_NODE_HH

#include "ckpt/state_io.hh"
#include "common/log.hh"
#include "common/staged_fifo.hh"
#include "fault/fault_plan.hh"
#include "obs/flit_trace.hh"
#include "proto/packet.hh"
#include "sim/active_set.hh"
#include "sim/columns.hh"
#include "sim/parallel.hh"
#include "stats/utilization.hh"

namespace hrsim
{

/**
 * Occupancy bookkeeping for one ring (bubble flow control).
 *
 * A worm may enter a ring from a PM output queue or an inter-ring
 * queue only if the ring keeps at least @ref slack flit slots free
 * afterwards (one maximum-size packet). The free "bubble" guarantees
 * that some latch on the ring is always acceptable, so a ring can
 * never wedge at 100% occupancy even when every worm on it is
 * recirculating — the standard escape used by real ring and torus
 * networks. The whole packet is reserved when its head enters;
 * slots are released as flits leave the ring (sink or divert).
 *
 * Admission is phase-based (the classic up-then-down tree argument).
 * A worm on ring R is "down-phase" when its destination lies inside
 * R's subtree: it only ever moves down the hierarchy from here and
 * finally sinks at a NIC that always accepts, so down-phase traffic
 * is self-draining by induction (on the global ring every worm is
 * down-phase — the induction's base). Down-phase worms therefore
 * only need the bubble; up-phase worms (heading toward the parent
 * ring) must additionally leave a reserved max-packet share that
 * ascending traffic can never consume, so descents always find room
 * and the hierarchy is livelock-free end to end.
 */
struct RingOccupancy
{
    std::int64_t occupied = 0;
    std::int64_t capacity = 0;
    std::int64_t bubble = 0;      //!< free slots kept for rotation
    std::int64_t reserveDown = 0; //!< share reserved for descents

    /** Admit a worm whose destination is inside this subtree. */
    bool
    canAdmitDown(std::uint32_t flits) const
    {
        return occupied + static_cast<std::int64_t>(flits) + bubble <=
               capacity;
    }

    /** Admit a worm that must ascend past this ring. */
    bool
    canAdmitUp(std::uint32_t flits) const
    {
        return occupied + static_cast<std::int64_t>(flits) + bubble +
                   reserveDown <=
               capacity;
    }

    void
    add(std::int64_t n)
    {
        occupied += n;
        HRSIM_ASSERT(occupied >= 0);
    }
};

/**
 * A maybe-occupied flit slot: std::optional<Flit> flattened into a
 * plain value plus a tag byte. Identical interface for the subset the
 * ring code uses, but assignment/reset never run optional's
 * construct/destroy machinery — a latch copy is a fixed-size copy,
 * which the tick hot path does once per flit hop.
 */
struct FlitSlot
{
    Flit flit{};
    bool full = false;

    explicit operator bool() const { return full; }
    bool has_value() const { return full; }

    const Flit &operator*() const { return flit; }
    Flit &operator*() { return flit; }
    const Flit *operator->() const { return &flit; }
    Flit *operator->() { return &flit; }

    FlitSlot &
    operator=(const Flit &value)
    {
        flit = value;
        full = true;
        return *this;
    }

    void reset() { full = false; }
};

/** Checkpoint a maybe-occupied slot: tag byte + flit when full. */
inline void
saveFlitSlot(CkptWriter &w, const FlitSlot &slot)
{
    w.boolean(slot.full);
    if (slot.full)
        saveFlit(w, slot.flit);
}

inline void
loadFlitSlot(CkptReader &r, FlitSlot &slot)
{
    slot.full = r.boolean();
    slot.flit = slot.full ? loadFlit(r) : Flit{};
}

/** Single-flit input register with two-phase commit. */
struct RingLatch
{
    FlitSlot cur;
    FlitSlot staged;

    void
    commit()
    {
        if (staged.full) {
            HRSIM_ASSERT(!cur.full);
            cur = staged;
            staged.reset();
        }
    }
};

/** Where the flit currently occupying an output link came from. */
enum class RingSource : std::uint8_t
{
    None,
    RingTransit, //!< same-ring traffic (buffer or latch bypass)
    QueueA,      //!< first PM/inter-ring queue (responses)
    QueueB,      //!< second PM/inter-ring queue (requests)
};

/**
 * Fault state of one ring attachment point (a NIC side or one IRI
 * side), allocated by RingNetwork only while a fault plan is active
 * (components hold a null pointer otherwise, so fault-free runs pay
 * nothing). Windows may overlap, so the action flags are nesting
 * depth counters, not booleans. Kill state outlives the window that
 * started it: once a worm starts draining into a dead link it must
 * drain to its tail even if the link comes back, because its leading
 * flits are already gone.
 *
 * Occupancy conservation under truncation (see DESIGN.md section
 * 13): bubble flow control reserves a whole packet at ring admission
 * and releases one slot per flit leaving the ring, so a truncated
 * worm would leak the slots of the flits that died. The terminator
 * token therefore carries the debt in its ttl field (unused outside
 * slotted mode, which rejects fault plans): every leave-ring site
 * releases 1 + ttl, and drops behind a token release nothing. A worm
 * killed whole at a worm boundary sends no token, so those drops
 * release 1 + ttl themselves.
 */
struct RingSideFaults
{
    std::uint8_t stalled = 0; //!< Stall depth (whole component)
    std::uint8_t down = 0;    //!< LinkDown depth (this side's output)
    std::uint8_t corrupt = 0; //!< Corrupt depth (this side's output)

    bool killing = false;   //!< draining a worm into the dead link
    bool tokenSent = false; //!< terminator already pushed downstream
    /** Boundary kill (head never crossed): no token, so each dropped
     *  flit releases its own occupancy share. */
    bool releaseOnDrop = false;
    RingSource victim = RingSource::None; //!< source being drained
    bool poisoning = false; //!< Corrupt: stamping the current worm
};

/** Checkpoint one attachment point's fault state. The nesting depths
 *  are redundant with the FaultController's applied-event replay but
 *  the kill/poison drain state is not — a worm half-drained into a
 *  dead link must resume draining after restore. */
inline void
saveRingSideFaults(CkptWriter &w, const RingSideFaults &f)
{
    w.u8(f.stalled);
    w.u8(f.down);
    w.u8(f.corrupt);
    w.boolean(f.killing);
    w.boolean(f.tokenSent);
    w.boolean(f.releaseOnDrop);
    w.u8(static_cast<std::uint8_t>(f.victim));
    w.boolean(f.poisoning);
}

inline void
loadRingSideFaults(CkptReader &r, RingSideFaults &f)
{
    f.stalled = r.u8();
    f.down = r.u8();
    f.corrupt = r.u8();
    f.killing = r.boolean();
    f.tokenSent = r.boolean();
    f.releaseOnDrop = r.boolean();
    f.victim = static_cast<RingSource>(r.u8());
    f.poisoning = r.boolean();
}

/**
 * An abstract supplier of the next flit for an output port. The
 * wormhole arbiter peeks sources in priority order and consumes from
 * the winner.
 */
class FlitSource
{
  public:
    virtual ~FlitSource() = default;
    /** Next available flit, or nullptr if none this cycle. */
    virtual const Flit *peek() const = 0;
    /** Remove and return the peeked flit. */
    virtual Flit consume() = 0;
};

/** FlitSource view over a staged FIFO (PM queues, up/down queues). */
class QueueSource final : public FlitSource
{
  public:
    explicit QueueSource(StagedFifo<Flit> &queue) : queue_(queue) {}

    const Flit *
    peek() const override
    {
        return queue_.empty() ? nullptr : &queue_.front();
    }

    Flit consume() override { return queue_.pop(); }

  private:
    StagedFifo<Flit> &queue_;
};

/**
 * Output side of a ring link: wormhole state plus the wiring to the
 * downstream latch and its acceptance flag.
 */
class RingOutput
{
  public:
    /**
     * Wire to the downstream neighbor (done once at build time).
     * @a tracer_slot points at the owning network's tracer pointer
     * (may be null when tracing is unused) and @a trace_node names
     * this link's driver in trace events: the PM id for NIC outputs,
     * -(2*iri+1) / -(2*iri+2) for IRI lower/upper sides.
     * @a wake_set / @a wake_id name the downstream component in its
     * network's active set, so staging a flit into a sleeping
     * neighbor's latch wakes it (nullptr when the owning network has
     * no active-set scheduler).
     */
    void
    connect(RingLatch *latch, const bool *accept_flag,
            UtilizationTracker *util, UtilizationTracker::LinkId link,
            RingOccupancy *occupancy, NodeId subtree_lo,
            NodeId subtree_hi, std::uint32_t starvation_limit,
            FlitTracer *const *tracer_slot = nullptr,
            NodeId trace_node = invalidNode,
            ActiveSet *wake_set = nullptr, std::uint32_t wake_id = 0)
    {
        downstream_ = latch;
        acceptFlag_ = accept_flag;
        util_ = util;
        link_ = link;
        // Cache the flag/counter pair so the per-flit hot path is one
        // load + one indexed increment (all utilization groups exist
        // before wiring, so the counter pointer is stable).
        utilMeasuring_ = util->measuringFlag();
        utilCounter_ = util->transferCounter(link);
        occupancy_ = occupancy;
        subtreeLo_ = subtree_lo;
        subtreeHi_ = subtree_hi;
        starvationLimit_ = starvation_limit;
        tracerSlot_ = tracer_slot;
        traceNode_ = trace_node;
        wakeSet_ = wake_set;
        wakeId_ = wake_id;
    }

    /**
     * Columnar rebinding (see sim/columns.hh): re-target the
     * downstream latch/acceptance pair after the network hoisted
     * them into its columns. Called once at setup, before the first
     * tick, together with the downstream side's bindColumns().
     */
    void
    repoint(RingLatch *latch, const bool *accept_flag)
    {
        downstream_ = latch;
        acceptFlag_ = accept_flag;
    }

    /** Route wakes into the columnar bitmap (wins over wakeSet_). */
    void setWakeMask(ActiveMask *mask) { wakeMask_ = mask; }

    /**
     * Shard-parallel tick support: re-target the cached utilization
     * counter (at a per-shard plane, or back at the master counter)
     * and this output's side of the fault ledger. Both are pure
     * counter redirections — the totals the read side reports are
     * identical (see UtilizationTracker::setShardPlanes and the
     * ledger fold in RingNetwork::tickColumnarParallel).
     */
    void repointUtilCounter(std::uint64_t *counter)
    {
        utilCounter_ = counter;
    }
    UtilizationTracker::LinkId link() const { return link_; }
    void repointAcct(FaultAccounting *acct) { acct_ = acct; }

    /**
     * Attach this output's fault state and the network's shared
     * conservation ledger (both owned by the network; null = the
     * fault-free fast case).
     */
    void
    setFaultState(RingSideFaults *faults, FaultAccounting *acct)
    {
        faults_ = faults;
        acct_ = acct;
    }

    bool downstreamAccepts() const { return *acceptFlag_; }
    bool inWorm() const { return inWorm_; }
    PacketId wormPacket() const { return wormPkt_; }
    RingSource wormSource() const { return wormSrc_; }

    /**
     * Flits sent while the link was already held by a worm, i.e.
     * moved without arbitrating the sources (every non-head flit).
     * A pure function of the simulation history — identical under
     * transmit() and transmitFast().
     */
    std::uint64_t streamedFlits() const { return streamedFlits_; }

    /**
     * Checkpoint the authoritative wormhole state. Wiring (downstream
     * latch, counters, wake targets) is rebuilt from the topology at
     * construction and never serialized.
     */
    void
    saveState(CkptWriter &w) const
    {
        w.u32(starve_);
        w.u64(streamedFlits_);
        w.boolean(inWorm_);
        w.u8(static_cast<std::uint8_t>(wormSrc_));
        w.u64(wormPkt_);
    }

    void
    loadState(CkptReader &r)
    {
        starve_ = r.u32();
        streamedFlits_ = r.u64();
        inWorm_ = r.boolean();
        wormSrc_ = static_cast<RingSource>(r.u8());
        wormPkt_ = r.u64();
    }

    /**
     * Run one cycle of wormhole transmission. Sources are given in
     * strict priority order (index 0 wins); a new worm may only start
     * with a head flit, and an in-progress worm only consumes from
     * the source that started it.
     *
     * @return true if a flit was transmitted.
     */
    bool
    transmit(FlitSource *ring, FlitSource *queue_a, FlitSource *queue_b)
    {
        if (faults_ && (faults_->down != 0 || faults_->killing)) {
            faultCycle(ring, queue_a, queue_b);
            return false;
        }
        // A worm from a PM or inter-ring queue enters the ring here.
        // Bubble flow control keeps one free max-packet slot so the
        // ring always rotates; the phase gate additionally reserves a
        // share for down-phase (self-draining) traffic.
        const auto admissible = [this](const FlitSource *src) {
            const Flit *head = src ? src->peek() : nullptr;
            if (!head || !head->isHead())
                return false;
            const bool down_phase =
                head->dst >= subtreeLo_ && head->dst < subtreeHi_;
            return down_phase
                       ? occupancy_->canAdmitDown(head->sizeFlits)
                       : occupancy_->canAdmitUp(head->sizeFlits);
        };
        const bool queue_ready =
            admissible(queue_a) || admissible(queue_b);

        FlitSource *source = nullptr;
        RingSource kind = RingSource::None;
        if (inWorm_) {
            if (wormSrc_ == RingSource::RingTransit && queue_ready)
                ++starve_;
            kind = wormSrc_;
            source = sourceFor(kind, ring, queue_a, queue_b);
            const Flit *next = source->peek();
            if (!next)
                return false; // worm starved: link held, idle cycle
            HRSIM_ASSERT(next->packet == wormPkt_);
        } else {
            // Same-ring traffic has priority (the paper's rule), but
            // a queue blocked by an unbroken transit stream for too
            // long wins the next worm boundary. Without this escape
            // valve, worms recirculating on a saturated ring starve
            // the inter-ring queues forever and the hierarchy
            // livelocks; with it, starvation is bounded and strict
            // priority still holds at every normal operating point.
            const bool starved =
                starvationLimit_ > 0 && starve_ >= starvationLimit_;
            if (ring && ring->peek() && !(starved && queue_ready)) {
                if (queue_ready)
                    ++starve_;
                source = ring;
                kind = RingSource::RingTransit;
            } else if (admissible(queue_a)) {
                source = queue_a;
                kind = RingSource::QueueA;
                starve_ = 0;
            } else if (admissible(queue_b)) {
                source = queue_b;
                kind = RingSource::QueueB;
                starve_ = 0;
            } else {
                return false;
            }
            HRSIM_ASSERT(source->peek()->isHead());
        }
        if (!downstreamAccepts())
            return false;
        HRSIM_ASSERT(!downstream_->staged);
        if (!inWorm_ && kind != RingSource::RingTransit) {
            // Reserve the whole packet's slots up front; they are
            // released one by one as its flits leave the ring.
            occupancy_->add(source->peek()->sizeFlits);
        }
        Flit flit = source->consume();
        if (faults_)
            stampPoison(flit);
        downstream_->staged = flit;
        wake(); // wake a sleeping neighbor
        if (*utilMeasuring_)
            ++*utilCounter_;
        HRSIM_TRACE_FLIT(
            tracerSlot_ ? *tracerSlot_ : nullptr, FlitEvent::Hop,
            flit.packet, traceNode_,
            static_cast<std::uint64_t>(occupancy_->occupied));
        streamedFlits_ += static_cast<std::uint64_t>(!flit.isHead());
        if (flit.isTail()) {
            inWorm_ = false;
            wormSrc_ = RingSource::None;
        } else {
            inWorm_ = true;
            wormSrc_ = kind;
            wormPkt_ = flit.packet;
        }
        return true;
    }

    /**
     * transmit() specialized on the concrete source types so the
     * peeks inline, with the queue admission probes evaluated only
     * when they can influence the outcome. Same results by
     * construction (DESIGN.md section 12):
     *  - while a worm holds the link, queue admissibility feeds only
     *    the starvation counter, which is itself unobservable when
     *    starvationLimit_ == 0 (every NIC output);
     *  - at a worm boundary with starvationLimit_ == 0, the valve
     *    can never fire, so nonempty ring transit wins outright and
     *    the probes are again skipped.
     * Outputs with a nonzero limit (IRIs) keep the legacy probe
     * order bit for bit, including the starve_ updates.
     */
    template <typename RingSrc, typename QA, typename QB>
    bool
    transmitFast(RingSrc *ring, QA *queue_a, QB *queue_b)
    {
        if (faults_ && (faults_->down != 0 || faults_->killing)) {
            // Cold path, shared with transmit(): fast and legacy
            // transmits stay bit-identical under faults for free.
            faultCycle(ring, queue_a, queue_b);
            return false;
        }
        const auto admissible = [this](const auto *src) {
            const Flit *head = src->peek();
            if (!head || !head->isHead())
                return false;
            const bool down_phase =
                head->dst >= subtreeLo_ && head->dst < subtreeHi_;
            return down_phase
                       ? occupancy_->canAdmitDown(head->sizeFlits)
                       : occupancy_->canAdmitUp(head->sizeFlits);
        };

        if (inWorm_) {
            if (wormSrc_ == RingSource::RingTransit) {
                // Legacy increments starve_ here whenever a queue is
                // ready; with limit == 0 the counter is dead state,
                // so the probes are skipped and starve_ may lag —
                // never read, never traced (see DESIGN.md 12).
                if (starvationLimit_ > 0 &&
                    (admissible(queue_a) || admissible(queue_b)))
                    ++starve_;
                const Flit *next = ring->peek();
                if (!next)
                    return false; // starved: link held, idle cycle
                HRSIM_ASSERT(next->packet == wormPkt_);
                return sendFrom(ring, RingSource::RingTransit, false);
            }
            if (wormSrc_ == RingSource::QueueA) {
                if (!queue_a->peek())
                    return false;
                HRSIM_ASSERT(queue_a->peek()->packet == wormPkt_);
                return sendFrom(queue_a, RingSource::QueueA, false);
            }
            HRSIM_ASSERT(wormSrc_ == RingSource::QueueB);
            if (!queue_b->peek())
                return false;
            HRSIM_ASSERT(queue_b->peek()->packet == wormPkt_);
            return sendFrom(queue_b, RingSource::QueueB, false);
        }

        // Worm boundary. With no starvation valve, transit strictly
        // wins and the admission probes only run once the ring side
        // is known to be empty.
        if (starvationLimit_ == 0) {
            if (ring->peek() != nullptr) {
                HRSIM_ASSERT(ring->peek()->isHead());
                return sendFrom(ring, RingSource::RingTransit, false);
            }
        } else {
            const bool queue_ready =
                admissible(queue_a) || admissible(queue_b);
            const bool starved = starve_ >= starvationLimit_;
            if (ring->peek() && !(starved && queue_ready)) {
                if (queue_ready)
                    ++starve_;
                HRSIM_ASSERT(ring->peek()->isHead());
                return sendFrom(ring, RingSource::RingTransit, false);
            }
        }
        if (admissible(queue_a)) {
            starve_ = 0;
            HRSIM_ASSERT(queue_a->peek()->isHead());
            return sendFrom(queue_a, RingSource::QueueA, true);
        }
        if (admissible(queue_b)) {
            starve_ = 0;
            HRSIM_ASSERT(queue_b->peek()->isHead());
            return sendFrom(queue_b, RingSource::QueueB, true);
        }
        return false;
    }

  private:
    /**
     * Common transmit tail: flow-control check, occupancy
     * reservation for a worm entering the ring, the flit copy into
     * the downstream latch, and worm-state upkeep. Mirrors the tail
     * of transmit() exactly.
     */
    template <typename Src>
    bool
    sendFrom(Src *source, RingSource kind, bool reserve)
    {
        if (!downstreamAccepts())
            return false;
        HRSIM_ASSERT(!downstream_->staged);
        if (reserve) {
            // Reserve the whole packet's slots up front; they are
            // released one by one as its flits leave the ring.
            occupancy_->add(source->peek()->sizeFlits);
        }
        Flit flit = source->consume();
        if (faults_)
            stampPoison(flit);
        downstream_->staged = flit;
        wake(); // wake a sleeping neighbor
        if (*utilMeasuring_)
            ++*utilCounter_;
        HRSIM_TRACE_FLIT(
            tracerSlot_ ? *tracerSlot_ : nullptr, FlitEvent::Hop,
            flit.packet, traceNode_,
            static_cast<std::uint64_t>(occupancy_->occupied));
        streamedFlits_ += static_cast<std::uint64_t>(!flit.isHead());
        if (flit.isTail()) {
            inWorm_ = false;
            wormSrc_ = RingSource::None;
        } else {
            inWorm_ = true;
            wormSrc_ = kind;
            wormPkt_ = flit.packet;
        }
        return true;
    }
    /**
     * One cycle of a dead output link (cold path, fault runs only).
     * Starts a kill when a worm is caught by the fault — mid-flight
     * (its head is downstream, so the fragment must be terminated)
     * or whole at a worm boundary (ring transit cannot route around
     * a dead ring link, so the worm drains into it) — and advances
     * an in-progress drain by one flit. Queue worms waiting to enter
     * the ring are simply not admitted while the link is down.
     */
    void
    faultCycle(FlitSource *ring, FlitSource *queue_a,
               FlitSource *queue_b)
    {
        RingSideFaults &f = *faults_;
        if (!f.killing) {
            if (f.down == 0)
                return; // kill finished, link back up: normal next cycle
            if (inWorm_) {
                // Mid-worm: leading flits are already downstream, so
                // the drain owes them a terminator token.
                f.killing = true;
                f.tokenSent = false;
                f.releaseOnDrop = false;
                f.victim = wormSrc_;
                if (acct_)
                    ++acct_->droppedWorms;
            } else if (ring && ring->peek()) {
                // Worm boundary: the transit worm dies whole. No
                // token (nothing crossed), so its drops release
                // their own occupancy shares.
                HRSIM_ASSERT(ring->peek()->isHead());
                f.killing = true;
                f.tokenSent = false;
                f.releaseOnDrop = true;
                f.victim = RingSource::RingTransit;
                if (acct_)
                    ++acct_->droppedWorms;
            } else {
                return; // dead link, nothing to drain
            }
        }
        killStep(sourceFor(f.victim, ring, queue_a, queue_b));
    }

    /**
     * Drain one flit of the condemned worm per cycle — exactly the
     * rate of a live link — so upstream credits keep flowing and the
     * ring behind the fault never wedges.
     */
    void
    killStep(FlitSource *source)
    {
        RingSideFaults &f = *faults_;
        const Flit *next = source->peek();
        if (!next)
            return; // starved: the rest of the worm is still upstream
        if (inWorm_)
            HRSIM_ASSERT(next->packet == wormPkt_);
        if (!f.releaseOnDrop && !f.tokenSent) {
            // Terminate the downstream fragment: hand it one
            // poisoned tail flit (the link-level error token of the
            // dead link) so every node ahead unbinds normally and
            // the fragment drains to its destination NIC, where the
            // poison suppresses delivery. The token carries the
            // occupancy debt of the flits that died (ttl), released
            // wherever it leaves a ring.
            if (!downstreamAccepts())
                return; // wait for latch space; flits queue behind
            HRSIM_ASSERT(!downstream_->staged);
            const bool was_tail = next->isTail();
            Flit token = *next;
            token.ttl = static_cast<std::uint16_t>(
                token.sizeFlits - 1 - token.index + token.ttl);
            token.index = token.sizeFlits - 1;
            token.poisoned = true;
            source->consume();
            downstream_->staged = token;
            wake();
            f.tokenSent = true;
            if (was_tail)
                finishKill();
            return;
        }
        const Flit flit = source->consume();
        if (acct_)
            ++acct_->droppedFlits;
        if (f.releaseOnDrop) {
            // The flit leaves the ring into the fault; 1 + ttl in
            // case the victim is itself a truncated fragment whose
            // token carries debt.
            occupancy_->add(-1 - static_cast<std::int64_t>(flit.ttl));
        }
        if (flit.isTail())
            finishKill();
    }

    void
    finishKill()
    {
        faults_->killing = false;
        faults_->tokenSent = false;
        faults_->releaseOnDrop = false;
        faults_->victim = RingSource::None;
        // A half-stamped corrupt worm died; don't poison the next one.
        faults_->poisoning = false;
        inWorm_ = false;
        wormSrc_ = RingSource::None;
        wormPkt_ = 0;
    }

    /**
     * Corrupt fault: a header crossing the bad link poisons its
     * whole worm (sticky past the window and past any nested window
     * boundary — the header is what's broken). Poisoned worms travel
     * normally and are dropped, not delivered, at their destination.
     */
    void
    stampPoison(Flit &flit)
    {
        RingSideFaults &f = *faults_;
        if (flit.isHead() && f.corrupt != 0) {
            f.poisoning = true;
            if (acct_)
                ++acct_->poisonedWorms;
        }
        if (f.poisoning) {
            flit.poisoned = true;
            if (flit.isTail())
                f.poisoning = false;
        }
    }

    /** Wake the downstream component in its network's scheduler.
     *  Inside a parallel evaluate phase the wake is deferred — the
     *  mask's summary word and count are shared across shards — and
     *  merged at the barrier (sim/parallel.hh). */
    void
    wake() const
    {
        if (wakeMask_) {
            if (ShardSink *sink = tlsShardSink) {
                sink->wakes.push_back(
                    DeferredWake{wakeMask_, wakeId_});
            } else {
                wakeMask_->add(wakeId_); // columnar bitmap engine
            }
        } else if (wakeSet_) {
            wakeSet_->add(wakeId_); // legacy ActiveSet engine
        }
    }

    FlitSource *
    sourceFor(RingSource kind, FlitSource *ring, FlitSource *queue_a,
              FlitSource *queue_b) const
    {
        switch (kind) {
          case RingSource::RingTransit:
            return ring;
          case RingSource::QueueA:
            return queue_a;
          case RingSource::QueueB:
            return queue_b;
          default:
            HRSIM_PANIC("output worm with no source");
        }
    }

    RingLatch *downstream_ = nullptr;
    const bool *acceptFlag_ = nullptr;
    UtilizationTracker *util_ = nullptr;
    UtilizationTracker::LinkId link_ = 0;
    const bool *utilMeasuring_ = nullptr;
    std::uint64_t *utilCounter_ = nullptr;
    RingOccupancy *occupancy_ = nullptr;
    NodeId subtreeLo_ = 0;
    NodeId subtreeHi_ = 0;
    FlitTracer *const *tracerSlot_ = nullptr;
    NodeId traceNode_ = invalidNode;
    ActiveSet *wakeSet_ = nullptr; //!< downstream's active set
    /** Columnar wake target; when set it wins over wakeSet_. */
    ActiveMask *wakeMask_ = nullptr;
    std::uint32_t wakeId_ = 0;     //!< downstream's index therein
    std::uint32_t starvationLimit_ = 0;
    std::uint32_t starve_ = 0; //!< cycles a ready queue was passed over
    std::uint64_t streamedFlits_ = 0;

    bool inWorm_ = false;
    RingSource wormSrc_ = RingSource::None;
    PacketId wormPkt_ = 0;

    /** Fault state + ledger; null (the fast case) without a plan. */
    RingSideFaults *faults_ = nullptr;
    FaultAccounting *acct_ = nullptr;
};

/**
 * One attachment point of a node on a ring.
 *
 * The input latch and phase-A acceptance flag are the side's *hot*
 * state: the upstream neighbor's output writes/reads them every
 * cycle. Both are accessed through rebindable handles so the
 * columnar engine (sim/columns.hh) can hoist them into a
 * network-owned column — in()/accept() behave identically in both
 * layouts, only the storage address differs. Default-bound to
 * in-object storage (the HRSIM_NO_COLUMNAR oracle layout).
 */
struct RingSide
{
    StagedFifo<Flit> transitBuf;
    RingOutput out;
    /** Occupancy of the ring this side sits on (shared). */
    RingOccupancy *occupancy = nullptr;

    /** Input latch from the upstream ring neighbor. */
    RingLatch &in() { return *in_; }
    const RingLatch &in() const { return *in_; }

    /** Phase-A acceptance flag published for the upstream output. */
    bool &accept() { return *accept_; }
    bool accept() const { return *accept_; }

    /**
     * Hoist the hot pair into @a latch / @a accept_flag (a network
     * column slot): the current values move over, then every read
     * and write goes through the new storage. The caller must also
     * repoint() the upstream RingOutput at the same slot.
     */
    void
    bindColumns(RingLatch *latch, bool *accept_flag)
    {
        *latch = *in_;
        *accept_flag = *accept_;
        in_ = latch;
        accept_ = accept_flag;
    }

    /**
     * Checkpoint the side's flit contents and output worm state.
     * Tick-boundary precondition: the latch's staged slot is empty
     * (commit ran) and the acceptance flag is derived — the network's
     * post-load scheduling sweep recomputes it. The handles make this
     * layout-transparent: columnar and in-object storage serialize
     * identical bytes.
     */
    void
    saveState(CkptWriter &w) const
    {
        HRSIM_ASSERT(!in().staged.full);
        saveFlitSlot(w, in().cur);
        saveFlitFifo(w, transitBuf);
        out.saveState(w);
    }

    void
    loadState(CkptReader &r)
    {
        loadFlitSlot(r, in().cur);
        in().staged.reset();
        loadFlitFifo(r, transitBuf);
        out.loadState(r);
    }

  private:
    RingLatch inLocal_;
    bool acceptLocal_ = false;
    RingLatch *in_ = &inLocal_;
    bool *accept_ = &acceptLocal_;
};

/**
 * FlitSource for the same-ring transit stream: the ring buffer
 * drains first (FIFO order), then the latch flit may bypass the
 * buffer entirely when the buffer is empty. The latch is read
 * through the owning side's handle, so column rebinding after
 * construction is transparent.
 */
class RingStreamSource final : public FlitSource
{
  public:
    explicit RingStreamSource(RingSide &side) : side_(side) {}

    /** Enable/disable the latch bypass (kept on in the paper). */
    void setBypass(bool enabled) { bypass_ = enabled; }

    /** Tell the source whether the latch flit is ring transit. */
    void setLatchIsTransit(bool transit) { latchIsTransit_ = transit; }

    const Flit *
    peek() const override
    {
        if (!side_.transitBuf.empty())
            return &side_.transitBuf.front();
        if (bypass_ && latchIsTransit_ && side_.in().cur)
            return &*side_.in().cur;
        return nullptr;
    }

    Flit
    consume() override
    {
        if (!side_.transitBuf.empty())
            return side_.transitBuf.pop();
        HRSIM_ASSERT(bypass_ && latchIsTransit_ && side_.in().cur);
        Flit flit = *side_.in().cur;
        side_.in().cur.reset();
        latchIsTransit_ = false;
        return flit;
    }

  private:
    RingSide &side_;
    bool bypass_ = true;
    bool latchIsTransit_ = false;
};

} // namespace hrsim

#endif // HRSIM_RING_RING_NODE_HH
