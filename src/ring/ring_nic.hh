/**
 * @file
 * Ring Network Interface Controller (Figure 3 of the paper).
 *
 * The NIC connects a processing module to its local ring. It
 *  1. sinks arriving flits destined for the local PM into the input
 *     queues (delivering the packet on its tail flit),
 *  2. forwards continuing flits to the output link, bypassing the
 *     ring buffer when it is empty, or absorbing them into the
 *     (packet-sized) ring buffer while the output transmits a local
 *     packet,
 *  3. injects PM packets from the split request/response output
 *     queues when no ring traffic wants the link, responses first.
 *
 * Ring transit traffic has absolute priority for the output link, as
 * in the paper; worms are never interleaved.
 */

#ifndef HRSIM_RING_RING_NIC_HH
#define HRSIM_RING_RING_NIC_HH

#include <functional>
#include <iosfwd>

#include "common/types.hh"
#include "proto/packet.hh"
#include "ring/ring_node.hh"

namespace hrsim
{

class RingNic
{
  public:
    using DeliverFn = std::function<void(const Packet &, Cycle)>;

    /**
     * @param pm PM id this NIC serves.
     * @param cl_flits Flits in a cache-line packet (buffer depth).
     * @param bypass Enable the ring-buffer bypass path.
     */
    RingNic(NodeId pm, std::uint32_t cl_flits, bool bypass);

    RingNic(const RingNic &) = delete;
    RingNic &operator=(const RingNic &) = delete;
    RingNic(RingNic &&) = delete;
    RingNic &operator=(RingNic &&) = delete;

    /** Phase A: publish whether upstream may send this cycle. */
    void computeAcceptance();

    /** Phase B: sink, forward, and inject. */
    void evaluate(Cycle now);

    /** May the PM inject @a pkt this cycle? */
    bool canInject(const Packet &pkt) const;

    /** Serialize @a pkt into the proper output queue. */
    void inject(const Packet &pkt);

    void setDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    NodeId pm() const { return pm_; }
    RingSide &side() { return side_; }
    const RingSide &side() const { return side_; }

    /** End-of-cycle commit of all NIC state. */
    void commit();

    /**
     * Select the devirtualized transmit with lazy admission probes
     * (default off = the legacy virtual-source arbitration, the
     * bit-identity oracle; see DESIGN.md section 12).
     */
    void setFastPath(bool enabled) { fastPath_ = enabled; }

    /** Non-head flits this NIC's output streamed (both paths). */
    std::uint64_t streamedFlits() const
    {
        return side_.out.streamedFlits();
    }

    /**
     * Checkpoint hooks (tick boundary): the ring side plus the PM
     * output queues. The bypass source's latch-is-transit flag is
     * scratch — set and consumed inside evaluate() — so it has no
     * boundary state to save.
     */
    void
    saveState(CkptWriter &w) const
    {
        side_.saveState(w);
        saveFlitFifo(w, outResp_);
        saveFlitFifo(w, outReq_);
    }

    void
    loadState(CkptReader &r)
    {
        side_.loadState(r);
        loadFlitFifo(r, outResp_);
        loadFlitFifo(r, outReq_);
    }

    /** Flits currently buffered in this NIC. */
    std::uint64_t flitCount() const;

    /**
     * flitCount() == 0, but short-circuiting: the end-of-tick sleep
     * sweep polls every awake component each cycle, and at
     * saturation the first load answers the question.
     */
    bool
    empty() const
    {
        return !side_.in().cur && !side_.in().staged &&
               side_.transitBuf.totalSize() == 0 &&
               outResp_.totalSize() == 0 && outReq_.totalSize() == 0;
    }

    /**
     * Put the (empty) NIC into its sleeping rest state: the same
     * state a full computeAcceptance/evaluate scan would leave an
     * empty NIC in every cycle, so skipping its ticks while asleep is
     * invisible. Called by the network's end-of-tick sleep sweep and
     * when active scheduling is switched on.
     */
    void
    prepareSleep()
    {
        // An empty latch always computes accept = true.
        side_.accept() = true;
    }

    /**
     * Attach this NIC's fault state and the network's shared
     * conservation ledger (both owned by the network; null = the
     * fault-free fast case). Also wires the ring output.
     */
    void
    setFaultState(RingSideFaults *faults, FaultAccounting *acct)
    {
        faults_ = faults;
        acct_ = acct;
        side_.out.setFaultState(faults, acct);
    }

    /**
     * Shard-parallel tick support: redirect the sink path's and the
     * output's side of the fault ledger (a pure counter redirection;
     * the fold at the end of each parallel tick restores the master
     * totals).
     */
    void
    repointAcct(FaultAccounting *acct)
    {
        acct_ = acct;
        side_.out.repointAcct(acct);
    }

    /**
     * Must this NIC stay in the active set even while empty? A
     * stalled component pins itself awake so its acceptance flag is
     * recomputed (a sleeping NIC rests at accept = true, the
     * opposite of what a stall advertises) and the network never
     * fast-forwards across the stall window.
     */
    bool faultPinned() const { return faults_ && faults_->stalled; }

    /** One-line buffer state (stall diagnostics). */
    void debugDump(std::ostream &out) const;

  private:
    /** Is @a flit ring transit (not destined for this PM)? */
    bool isTransit(const Flit &flit) const { return flit.dst != pm_; }

    NodeId pm_;
    bool bypass_;
    bool fastPath_ = false;
    RingSide side_;

    StagedFifo<Flit> outResp_;
    StagedFifo<Flit> outReq_;

    RingStreamSource ringSource_;
    QueueSource respSource_;
    QueueSource reqSource_;

    DeliverFn deliver_;
    /** Fault state + ledger; null (the fast case) without a plan. */
    const RingSideFaults *faults_ = nullptr;
    FaultAccounting *acct_ = nullptr;
};

} // namespace hrsim

#endif // HRSIM_RING_RING_NIC_HH
