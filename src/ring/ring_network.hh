/**
 * @file
 * Hierarchical ring interconnect (Figures 1, 3, 4 of the paper).
 *
 * Instantiates the NICs, IRIs and unidirectional links described by a
 * RingStructure and ticks them with the two-phase discipline. The
 * global (root) ring may be clocked at an integer multiple of the
 * system clock (Section 6 of the paper studies 2x): the upper sides
 * of the IRIs sitting on the global ring are then evaluated and
 * committed once per sub-cycle, with their up/down queues acting as
 * the clock-domain crossing.
 *
 * With setActiveScheduling(true) the network ticks only awake
 * components (those holding at least one flit) from two ActiveSets —
 * one for NICs, one for IRIs — iterated in node-id order so the
 * per-category evaluation order of the full scan is preserved
 * exactly. Handing a flit to a sleeping neighbor wakes it (wired via
 * RingOutput::connect); a component goes back to sleep in the
 * end-of-tick sweep once it drains. Results are bit-identical to the
 * full scan — see DESIGN.md section 10 for the invariants.
 */

#ifndef HRSIM_RING_RING_NETWORK_HH
#define HRSIM_RING_RING_NETWORK_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/stable_pool.hh"
#include "common/types.hh"
#include "ring/ring_iri.hh"
#include "ring/ring_nic.hh"
#include "ring/topology.hh"
#include "sim/network.hh"

namespace hrsim
{

class RingNetwork : public Network
{
  public:
    struct Params
    {
        RingTopology topo;
        std::uint32_t cacheLineBytes = 32;
        /** Global-ring clock multiplier (1 = paper default, 2 = §6). */
        std::uint32_t globalRingSpeed = 1;
        /** Ring-buffer bypass path (ablation switch; paper: on). */
        bool nicBypass = true;
        /**
         * Cycles a ring-changing worm blocks at an IRI with a full
         * transfer queue before escaping with a recirculation lap;
         * 0 selects the default of 32 * cl flits.
         */
        std::uint32_t iriWaitLimit = 0;
        /**
         * Capacity of each IRI up/down queue in cache-line packets
         * (paper: 1). Larger values are a buffer-sizing ablation.
         */
        std::uint32_t iriQueuePackets = 1;
    };

    explicit RingNetwork(const Params &params);

    // Network interface
    int numProcessors() const override;
    bool canInject(NodeId pm, const Packet &pkt) const override;
    void inject(NodeId pm, const Packet &pkt) override;
    void tick(Cycle now) override;
    UtilizationTracker &utilization() override { return util_; }
    const UtilizationTracker &utilization() const override
    {
        return util_;
    }
    std::uint64_t flitsInFlight() const override;
    void registerMetrics(MetricRegistry &registry) const override;
    void setActiveScheduling(bool enabled) override;
    void setFastPath(bool enabled) override;
    void setColumnar(bool enabled) override;
    bool isIdle() const override;
    std::size_t activeNodeCount() const override;
    bool faultTargetValid(const FaultTarget &target) const override;
    void applyFault(const FaultEvent &event, bool active) override;
    void setFaultAccounting(FaultAccounting *acct) override;
    void setTickParallel(TickPool *pool) override;
    TickParallelStats
    tickParallelStats() const override
    {
        return parStats_;
    }

    /**
     * Checkpoint hooks (tick boundary). The snapshot carries only
     * authoritative content — ring occupancies, every component's
     * flit buffers and worm state, the fault planes when a plan is
     * live; active-set/mask membership is derived (asleep <=> empty,
     * + fault pins), so the load ends with the same scheduling sweep
     * setActiveScheduling() runs, which also reseeds NIC acceptance
     * and rest state exactly as an uninterrupted run would hold them.
     */
    bool checkpointSupported() const override { return true; }
    void saveState(CkptWriter &w) const override;
    void loadState(CkptReader &r) override;

    /** Utilization of the rings at a hierarchy level (0 = global). */
    double levelUtilization(int level) const;

    /** Number of hierarchy levels. */
    int numLevels() const { return structure_.numLevels; }

    const RingStructure &structure() const { return structure_; }
    const Params &params() const { return params_; }

    /** Flits in a cache-line packet on this network. */
    std::uint32_t clFlits() const { return clFlits_; }

    /** Bubble-flow-control occupancy of a ring (for tests). */
    const RingOccupancy &ringOccupancy(int ring) const;

    /** Dump every node's buffer state (stall diagnostics). */
    void debugDump(std::ostream &out) const;

    /** Total cycles worms spent blocked on full IRI queues. */
    std::uint64_t totalWaitCycles() const;

    /** Total recirculation-escape laps taken by blocked worms. */
    std::uint64_t totalEscapes() const;

  private:
    /** The side occupying a slot of a ring. */
    RingSide &sideAt(const RingSlotDesc &slot);

    /** Full-scan tick (legacy path, also the bit-identity oracle). */
    void tickFullScan(Cycle now);

    /** Active-set tick: only awake components are visited. */
    void tickActive(Cycle now);

    /** Columnar tick: bitmap masks over hoisted hot columns. */
    void tickColumnar(Cycle now);

    /**
     * Shard-parallel columnar tick (DESIGN.md section 15): one shard
     * per ring, evaluate dispatched through the TickPool, cross-shard
     * effects deferred and drained at the barrier, commits and sleep
     * sweeps partitioned over mask word ranges. Bit-identical to
     * tickColumnar() at any pool width.
     */
    void tickColumnarParallel(Cycle now);

    /** Fused phase A + phase B of one ring's components. */
    void evaluateShard(Cycle now, int shard);

    /** One commit-phase partition (NIC ranges first, then IRI). */
    void commitShard(int shard);

    /** Wake a component in whichever scheduler structure is live. */
    void
    wakeNic(std::uint32_t id)
    {
        if (columnar_)
            nicMask_.add(id);
        else
            activeNics_.add(id);
    }

    void
    wakeIri(std::uint32_t id)
    {
        if (columnar_)
            iriMask_.add(id);
        else
            activeIris_.add(id);
    }

    Params params_;
    RingStructure structure_;
    std::uint32_t clFlits_;

    // Contiguous value storage: the per-cycle sweeps stride through
    // the components linearly instead of chasing one heap pointer
    // per component per phase (see common/stable_pool.hh).
    StablePool<RingNic> nics_;
    StablePool<RingIri> iris_;
    /** One occupancy record per ring (bubble flow control). */
    std::vector<RingOccupancy> occupancy_;

    UtilizationTracker util_;
    std::vector<UtilizationTracker::GroupId> levelGroups_;

    /** IRIs whose upper side belongs to the fast (global) domain. */
    std::vector<RingIri *> fastIris_;
    /** IRIs whose upper side runs at the system clock. */
    std::vector<RingIri *> slowUpperIris_;

    bool fastPath_ = false;

    // Active-set scheduler state (setActiveScheduling).
    bool activeSched_ = false;
    ActiveSet activeNics_;
    ActiveSet activeIris_;

    // Columnar engine state (setColumnar; see sim/columns.hh). The
    // hot column holds every ring attachment point's input latch +
    // acceptance flag in one contiguous array — the whole inter-node
    // communication fabric of the network — indexed like
    // sideFaults_: NIC pm at [pm], IRI i's lower/upper sides at
    // [P + 2i] / [P + 2i + 1].
    struct RingHot
    {
        RingLatch in;
        bool accept = false;
    };
    bool columnar_ = false;
    std::vector<RingHot> hotCol_;
    ActiveMask nicMask_;
    ActiveMask iriMask_;
    /** Per-IRI flag: upper side in the fast (global) domain. */
    std::vector<std::uint8_t> iriFastUpper_;

    /** Per-attachment-point fault state, allocated only while a
     * fault plan is active: NIC pm at [pm], IRI i's lower/upper
     * sides at [P + 2i] / [P + 2i + 1]. */
    std::vector<RingSideFaults> sideFaults_;
    FaultAccounting *acct_ = nullptr;

    // ---- Parallel tick engine state (setTickParallel) ----

    /**
     * One evaluate shard = one ring: every phase-B interaction that
     * is not deferred (occupancy gates, latch staging, acceptance
     * flags) stays inside a single ring, so rings evaluate
     * independently; within a ring the serial engine's per-category
     * ascending-id order is preserved exactly.
     */
    struct RingShard
    {
        std::uint32_t ring = 0;
        /** Contiguous NIC id range on this ring (empty unless leaf). */
        std::uint32_t nicLo = 0;
        std::uint32_t nicHi = 0;
        /** IRIs whose lower side sits on this ring (ascending). */
        std::vector<std::uint32_t> lowerIris;
        /** IRIs whose slow upper side sits on this ring (ascending). */
        std::vector<std::uint32_t> upperIris;
        /** Shard fault ledger, folded into acct_ at end of tick. */
        FaultAccounting acct{};
    };

    /** Balanced word range of a mask, one commit-phase partition. */
    struct WordRange
    {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;
    };

    /** Point every component's fault-ledger pointer at its shard's
     *  ledger (no-op without an active ledger). */
    void applyParallelAcct();

    /** Fold the shard fault ledgers into the master ledger. */
    void foldShardAcct();

    TickPool *pool_ = nullptr;
    /** Shards ordered by subtree start, so draining deliveries in
     *  shard order reproduces the serial ascending-NIC-id delivery
     *  sequence. */
    std::vector<RingShard> shards_;
    std::vector<ShardSink> sinks_; //!< one per shard
    std::vector<WordRange> nicCommitRanges_;
    std::vector<WordRange> iriCommitRanges_;
    TickParallelStats parStats_;
};

} // namespace hrsim

#endif // HRSIM_RING_RING_NETWORK_HH
