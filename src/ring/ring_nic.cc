#include "ring/ring_nic.hh"
#include <ostream>

#include "common/log.hh"

namespace hrsim
{

RingNic::RingNic(NodeId pm, std::uint32_t cl_flits, bool bypass)
    : pm_(pm), bypass_(bypass), ringSource_(side_),
      respSource_(outResp_), reqSource_(outReq_)
{
    side_.transitBuf.setCapacity(cl_flits);
    outResp_.setCapacity(cl_flits);
    outReq_.setCapacity(cl_flits);
    ringSource_.setBypass(bypass);
}

void
RingNic::computeAcceptance()
{
    // A stalled NIC is frozen: it cannot dispose of a latch flit, so
    // it must not advertise acceptance.
    if (faults_ && faults_->stalled != 0) {
        side_.accept() = false;
        return;
    }
    // Upstream may transmit iff the latch is free, or its occupant is
    // guaranteed disposable this cycle: it sinks into the PM (input
    // queues always drain in our model) or the ring buffer has room.
    side_.accept() = !side_.in().cur ||
                   !isTransit(*side_.in().cur) ||
                   side_.transitBuf.canPush();
}

void
RingNic::evaluate(Cycle now)
{
    // A stalled NIC does nothing: no sink, no forward, no inject.
    // Traffic waits in place and resumes when the window closes.
    if (faults_ && faults_->stalled != 0)
        return;
    // Quiescent fast path: no latch flit and nothing visible in any
    // queue means there is nothing to sink, forward or inject. (A
    // worm holding the output link but starved of flits also does no
    // work, and staged arrivals only become visible at commit.)
    if (!side_.in().cur && side_.transitBuf.empty() &&
        outResp_.empty() && outReq_.empty()) {
        return;
    }
    // 1. Sink a latch flit destined for this PM.
    if (side_.in().cur && !isTransit(*side_.in().cur)) {
        const Flit flit = *side_.in().cur;
        side_.in().cur.reset();
        // The flit leaves the ring; 1 + ttl because a kill token
        // carries the occupancy debt of its worm's dead flits (ttl
        // is always 0 in fault-free runs — see RingSideFaults).
        side_.occupancy->add(-1 - static_cast<std::int64_t>(flit.ttl));
        if (acct_) {
            if (flit.poisoned)
                ++acct_->droppedFlits;
            else
                ++acct_->deliveredFlits;
        }
        // Poisoned worms (corrupted headers, or the kill token of a
        // truncated worm) drain out here but are never delivered.
        if (flit.isTail() && deliver_ && !flit.poisoned)
            deliver_(packetFromFlit(flit), now);
    }

    // 2. Drive the output link: ring transit first, then responses,
    //    then requests.
    ringSource_.setLatchIsTransit(side_.in().cur.has_value() &&
                                  isTransit(*side_.in().cur));
    if (fastPath_) {
        side_.out.transmitFast(&ringSource_, &respSource_,
                               &reqSource_);
    } else {
        side_.out.transmit(&ringSource_, &respSource_, &reqSource_);
    }

    // 3. Absorb a still-latched transit flit into the ring buffer so
    //    the latch honours the acceptance we advertised.
    if (side_.in().cur && isTransit(*side_.in().cur) &&
        side_.transitBuf.canPush()) {
        side_.transitBuf.push(*side_.in().cur);
        side_.in().cur.reset();
    }
}

bool
RingNic::canInject(const Packet &pkt) const
{
    const StagedFifo<Flit> &queue =
        isRequest(pkt.type) ? outReq_ : outResp_;
    return queue.producerSpace() >= pkt.sizeFlits;
}

void
RingNic::inject(const Packet &pkt)
{
    HRSIM_ASSERT(canInject(pkt));
    StagedFifo<Flit> &queue = isRequest(pkt.type) ? outReq_ : outResp_;
    for (std::uint32_t i = 0; i < pkt.sizeFlits; ++i)
        queue.push(makeFlit(pkt, i));
}

void
RingNic::commit()
{
    side_.in().commit();
    side_.transitBuf.commit();
    outResp_.commit();
    outReq_.commit();
}

std::uint64_t
RingNic::flitCount() const
{
    std::uint64_t count = side_.transitBuf.totalSize() +
                          outResp_.totalSize() + outReq_.totalSize();
    if (side_.in().cur)
        ++count;
    if (side_.in().staged)
        ++count;
    return count;
}

} // namespace hrsim

namespace hrsim
{

void
RingNic::debugDump(std::ostream &out) const
{
    out << "NIC pm=" << pm_ << " latch=";
    if (side_.in().cur) {
        out << side_.in().cur->packet << ":" << side_.in().cur->index
            << "->" << side_.in().cur->dst;
    } else {
        out << "-";
    }
    out << " buf=" << side_.transitBuf.size()
        << " outResp=" << outResp_.size()
        << " outReq=" << outReq_.size()
        << " worm=" << (side_.out.inWorm() ? 1 : 0);
    if (side_.out.inWorm())
        out << " wormPkt=" << side_.out.wormPacket();
    out << " accept=" << side_.accept() << "\n";
}

} // namespace hrsim
