#include "ring/ring_network.hh"
#include <algorithm>
#include <ostream>

#include "common/log.hh"
#include "core/tick_pool.hh"
#include "obs/metric_registry.hh"
#include "proto/packet.hh"

namespace hrsim
{

RingNetwork::RingNetwork(const Params &params)
    : params_(params), structure_(RingStructure::build(params.topo)),
      clFlits_(ChannelSpec::ring().cacheLineFlits(params.cacheLineBytes))
{
    if (params_.globalRingSpeed < 1)
        fatal("RingNetwork: global ring speed must be >= 1");

    const int num_pms = structure_.numProcessors();
    nics_.reserve(static_cast<std::size_t>(num_pms));
    for (NodeId pm = 0; pm < num_pms; ++pm)
        nics_.emplace_back(pm, clFlits_, params_.nicBypass);
    // Long enough that the escape never fires at the paper's
    // operating points (queueing waits there are tens of cycles) yet
    // finite, so no blocking cycle can persist.
    const std::uint32_t wait_limit = params_.iriWaitLimit != 0
                                         ? params_.iriWaitLimit
                                         : 32 * clFlits_;
    if (params_.iriQueuePackets < 1)
        fatal("RingNetwork: IRI queues need >= 1 packet");
    iris_.reserve(structure_.iris.size());
    for (const IriDesc &desc : structure_.iris) {
        iris_.emplace_back(desc.subtreeLo, desc.subtreeHi, clFlits_,
                           wait_limit, params_.iriQueuePackets);
    }

    // Partition IRI upper sides into clock domains: only the upper
    // sides sitting on the root (global) ring may run fast.
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        const bool on_root =
            structure_.iris[i].parentRing == structure_.rootRing;
        if (on_root && params_.globalRingSpeed > 1)
            fastIris_.push_back(&iris_[i]);
        else
            slowUpperIris_.push_back(&iris_[i]);
    }

    // Utilization groups, one per hierarchy level.
    levelGroups_.resize(static_cast<std::size_t>(structure_.numLevels));
    for (int level = 0; level < structure_.numLevels; ++level) {
        levelGroups_[static_cast<std::size_t>(level)] =
            util_.group("ring level " + std::to_string(level));
    }

    // NIC deliveries funnel into the network's registered handler
    // (which the system installs after construction).
    for (RingNic &nic : nics_) {
        nic.setDeliver([this](const Packet &pkt, Cycle when) {
            delivered(pkt, when);
        });
    }

    // Per-ring occupancy records for bubble flow control and the
    // phase-based admission gate. A single ring (no inter-ring
    // interfaces) cannot host recirculating worms, so it needs no
    // gating and runs unrestricted as in the paper's base model.
    occupancy_.resize(structure_.rings.size());
    for (std::size_t r = 0; r < structure_.rings.size(); ++r) {
        const auto slots = static_cast<std::int64_t>(
            structure_.rings[r].slots.size());
        occupancy_[r].capacity = slots * (1 + clFlits_);
        if (structure_.numLevels > 1) {
            // One free slot keeps the ring rotating (whole packets
            // are reserved at admission, so occupancy can never hit
            // capacity); one max-packet share is reserved for
            // self-draining down-phase traffic.
            occupancy_[r].bubble = 1;
            occupancy_[r].reserveDown = clFlits_;
        }
    }

    // Active-set bookkeeping (used when setActiveScheduling(true);
    // the wake wiring below is installed unconditionally and is
    // idempotent-cheap in full-scan mode).
    activeNics_.reset(nics_.size());
    activeIris_.reset(iris_.size());
    iriFastUpper_.assign(iris_.size(), 0);
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        const bool on_root =
            structure_.iris[i].parentRing == structure_.rootRing;
        if (on_root && params_.globalRingSpeed > 1)
            iriFastUpper_[i] = 1;
    }

    // Wire each ring: slot i's output feeds slot i+1's latch.
    for (std::size_t r = 0; r < structure_.rings.size(); ++r) {
        const RingDesc &ring = structure_.rings[r];
        const std::size_t n = ring.slots.size();
        HRSIM_ASSERT(n >= 1);
        const bool is_root_ring = ring.level == 0;
        const std::uint32_t speed =
            is_root_ring ? params_.globalRingSpeed : 1;
        for (std::size_t i = 0; i < n; ++i) {
            RingSide &from = sideAt(ring.slots[i]);
            const RingSlotDesc &to_slot = ring.slots[(i + 1) % n];
            RingSide &to = sideAt(to_slot);
            // Staging into the downstream latch must wake its owner.
            ActiveSet *wake_set =
                to_slot.kind == RingSlotDesc::Kind::Nic
                    ? &activeNics_
                    : &activeIris_;
            const auto wake_id =
                static_cast<std::uint32_t>(to_slot.index);
            const auto link = util_.addLink(
                levelGroups_[static_cast<std::size_t>(ring.level)],
                speed);
            // The anti-starvation valve only serves the inter-ring
            // queues: PM injection starving behind transit traffic
            // is the paper's own self-throttling behaviour and must
            // be preserved.
            const std::uint32_t starvation_limit =
                ring.slots[i].kind == RingSlotDesc::Kind::Nic
                    ? 0
                    : 8 * clFlits_;
            // Trace-event driver id: PM id for NICs, negative
            // odd/even pairs for IRI lower/upper sides.
            NodeId trace_node = ring.slots[i].index;
            if (ring.slots[i].kind == RingSlotDesc::Kind::IriLower)
                trace_node = -(2 * ring.slots[i].index + 1);
            else if (ring.slots[i].kind == RingSlotDesc::Kind::IriUpper)
                trace_node = -(2 * ring.slots[i].index + 2);
            from.occupancy = &occupancy_[r];
            from.out.connect(&to.in(), &to.accept(), &util_, link,
                             &occupancy_[r], ring.subtreeLo,
                             ring.subtreeHi, starvation_limit,
                             &tracer_, trace_node, wake_set, wake_id);
        }
    }
}

std::uint64_t
RingNetwork::totalWaitCycles() const
{
    std::uint64_t total = 0;
    for (const RingIri &iri : iris_)
        total += iri.waitCycles();
    return total;
}

std::uint64_t
RingNetwork::totalEscapes() const
{
    std::uint64_t total = 0;
    for (const RingIri &iri : iris_)
        total += iri.escapes();
    return total;
}

const RingOccupancy &
RingNetwork::ringOccupancy(int ring) const
{
    HRSIM_ASSERT(ring >= 0 &&
                 ring < static_cast<int>(occupancy_.size()));
    return occupancy_[static_cast<std::size_t>(ring)];
}

RingSide &
RingNetwork::sideAt(const RingSlotDesc &slot)
{
    switch (slot.kind) {
      case RingSlotDesc::Kind::Nic:
        return nics_[static_cast<std::size_t>(slot.index)].side();
      case RingSlotDesc::Kind::IriLower:
        return iris_[static_cast<std::size_t>(slot.index)].lower();
      case RingSlotDesc::Kind::IriUpper:
        return iris_[static_cast<std::size_t>(slot.index)].upper();
    }
    HRSIM_PANIC("unknown ring slot kind");
}

int
RingNetwork::numProcessors() const
{
    return structure_.numProcessors();
}

bool
RingNetwork::canInject(NodeId pm, const Packet &pkt) const
{
    HRSIM_ASSERT(pm >= 0 && pm < numProcessors());
    return nics_[static_cast<std::size_t>(pm)].canInject(pkt);
}

void
RingNetwork::inject(NodeId pm, const Packet &pkt)
{
    HRSIM_ASSERT(pm >= 0 && pm < numProcessors());
    HRSIM_ASSERT(pkt.src == pm);
    if (pkt.dst == broadcastNode)
        fatal("RingNetwork: broadcast requires slotted switching");
    nics_[static_cast<std::size_t>(pm)].inject(pkt);
    wakeNic(static_cast<std::uint32_t>(pm));
    if (acct_)
        acct_->injectedFlits += pkt.sizeFlits;
    HRSIM_TRACE_FLIT(tracer_, FlitEvent::Inject, pkt.id, pm,
                     nics_[static_cast<std::size_t>(pm)].flitCount());
}

void
RingNetwork::tick(Cycle now)
{
    if (!activeSched_) {
        tickFullScan(now);
    } else if (columnar_) {
        // A live tracer wants the serial hop-event order, so the
        // parallel engine stands down while one is attached.
        if (pool_ != nullptr && tracer_ == nullptr)
            tickColumnarParallel(now);
        else
            tickColumnar(now);
    } else {
        tickActive(now);
    }
}

void
RingNetwork::tickFullScan(Cycle now)
{
    // Phase A: acceptance flags from start-of-cycle state.
    for (RingNic &nic : nics_)
        nic.computeAcceptance();
    for (RingIri &iri : iris_)
        iri.computeAcceptanceLower();
    for (RingIri *iri : slowUpperIris_)
        iri->computeAcceptanceUpper();

    // Phase B: system-clock domain.
    for (RingNic &nic : nics_)
        nic.evaluate(now);
    for (RingIri &iri : iris_)
        iri.evaluateLower();
    for (RingIri *iri : slowUpperIris_)
        iri->evaluateUpper();

    // Commit the system-clock domain.
    for (RingNic &nic : nics_)
        nic.commit();
    for (RingIri &iri : iris_)
        iri.commitLower();
    for (RingIri *iri : slowUpperIris_)
        iri->commitUpper();

    // Fast domain: the global ring runs globalRingSpeed sub-cycles.
    for (std::uint32_t sub = 0; sub < params_.globalRingSpeed; ++sub) {
        if (fastIris_.empty())
            break;
        for (RingIri *iri : fastIris_)
            iri->computeAcceptanceUpper();
        for (RingIri *iri : fastIris_)
            iri->evaluateUpper();
        for (RingIri *iri : fastIris_)
            iri->commitUpper();
    }
}

void
RingNetwork::tickActive(Cycle now)
{
    // Iteration discipline: a component woken mid-tick (a flit
    // staged into its latch) was empty at the start of the cycle, so
    // the phase A/B calls the full scan would have made on it are
    // provably no-ops — only its end-of-cycle commit matters. Phases
    // A and B therefore iterate a sorted prefix fixed at tick start
    // (mid-tick wakes only append, so indices stay stable — no
    // snapshot copy), in ascending node-id order, reproducing the
    // full scan's per-category order exactly (occupancy updates and
    // admission checks interleave identically). Commits touch one
    // component each with no cross-component reads, so they iterate
    // the raw wake-order list — covering mid-tick wakes — without
    // re-sorting.
    const std::size_t nic_n = activeNics_.orderedPrefix();
    const std::size_t iri_n = activeIris_.orderedPrefix();

    // Phase A: acceptance flags from start-of-cycle state. NIC
    // acceptance was already computed at the end of the previous
    // tick (fused into the commit sweep below): it is a pure
    // function of latch + transit-buffer state, which cannot change
    // between the post-commit sweep and this point — injections only
    // touch the PM output queues, and an asleep NIC rests at
    // accept = true, exactly what an empty latch computes. IRI
    // acceptance advances the blocked-worm wait counters, so it must
    // keep running here, once per cycle.
    for (std::size_t i = 0; i < iri_n; ++i)
        iris_[activeIris_.at(i)].computeAcceptanceLower();
    for (std::size_t i = 0; i < iri_n; ++i) {
        const std::uint32_t id = activeIris_.at(i);
        if (!iriFastUpper_[id])
            iris_[id].computeAcceptanceUpper();
    }

    // Phase B: system-clock domain.
    for (std::size_t i = 0; i < nic_n; ++i)
        nics_[activeNics_.at(i)].evaluate(now);
    for (std::size_t i = 0; i < iri_n; ++i)
        iris_[activeIris_.at(i)].evaluateLower();
    for (std::size_t i = 0; i < iri_n; ++i) {
        const std::uint32_t id = activeIris_.at(i);
        if (!iriFastUpper_[id])
            iris_[id].evaluateUpper();
    }

    // NIC commit + sleep sweep, fused into one pass over the raw
    // wake-order list (covering mid-tick wakes). The sweep can run
    // here, before the fast domain, because nothing later in the
    // tick can change a NIC's state: the fast domain only touches
    // IRI upper sides (the root ring carries no NIC slots), and
    // injections happen outside the network tick.
    activeNics_.retain([this](std::uint32_t id) {
        RingNic &nic = nics_[id];
        nic.commit();
        if (!nic.empty() || nic.faultPinned()) {
            // Next tick's phase A, while the NIC is cache-hot.
            nic.computeAcceptance();
            return true;
        }
        nic.prepareSleep();
        return false;
    });

    // Commit the IRIs' system-clock domain, including mid-tick
    // wakes. Their sleep sweep must wait for the fast domain below.
    for (const std::uint32_t id : activeIris_.raw()) {
        iris_[id].commitLower();
        if (!iriFastUpper_[id])
            iris_[id].commitUpper();
    }

    // Fast domain: the global ring runs globalRingSpeed sub-cycles.
    // Wakes can also happen between sub-cycles (an upper-side
    // transmit stages into the next IRI's upper latch), so the awake
    // fast prefix is re-established per sub-cycle and the commit pass
    // again reads the raw list.
    if (!fastIris_.empty()) {
        for (std::uint32_t sub = 0; sub < params_.globalRingSpeed;
             ++sub) {
            const std::size_t fast_n = activeIris_.orderedPrefix();
            for (std::size_t i = 0; i < fast_n; ++i) {
                const std::uint32_t id = activeIris_.at(i);
                if (iriFastUpper_[id])
                    iris_[id].computeAcceptanceUpper();
            }
            for (std::size_t i = 0; i < fast_n; ++i) {
                const std::uint32_t id = activeIris_.at(i);
                if (iriFastUpper_[id])
                    iris_[id].evaluateUpper();
            }
            for (const std::uint32_t id : activeIris_.raw()) {
                if (iriFastUpper_[id])
                    iris_[id].commitUpper();
            }
        }
    }

    // IRI sleep sweep: drained IRIs leave the set until a flit wakes
    // them again (the NIC sweep already ran, fused with commit).
    activeIris_.retain([this](std::uint32_t id) {
        if (!iris_[id].empty() || iris_[id].faultPinned())
            return true;
        iris_[id].prepareSleep();
        return false;
    });
}

void
RingNetwork::tickColumnar(Cycle now)
{
    // The columnar engine replaces the ActiveSet prefix/raw walks of
    // tickActive() with live ascending-id scans of two-level bitmap
    // masks (sim/columns.hh). Soundness relies on the same facts the
    // ActiveSet argument uses — a component woken mid-tick was empty
    // (asleep <=> empty) and staged flits stay invisible until
    // commit, so an extra visit of a woken component is a no-op (its
    // quiescent early-out fires), while a skipped visit matches the
    // orderedPrefix behaviour. Either way the scan is byte-identical
    // to the full scan; see DESIGN.md section 14.

    // Phase A: acceptance flags from start-of-cycle state. No wakes
    // happen here (no flits move), so the live scan equals the
    // start-of-phase membership. NIC acceptance is fused into the
    // commit sweep below, exactly as in tickActive().
    iriMask_.forEach([this](std::uint32_t id) {
        iris_[id].computeAcceptanceLower();
    });
    iriMask_.forEach([this](std::uint32_t id) {
        if (!iriFastUpper_[id])
            iris_[id].computeAcceptanceUpper();
    });

    // Phase B: system-clock domain. Transmits wake downstream
    // components mid-scan; visited-or-not both reproduce the oracle
    // (see above).
    nicMask_.forEach(
        [this, now](std::uint32_t id) { nics_[id].evaluate(now); });
    iriMask_.forEach(
        [this](std::uint32_t id) { iris_[id].evaluateLower(); });
    iriMask_.forEach([this](std::uint32_t id) {
        if (!iriFastUpper_[id])
            iris_[id].evaluateUpper();
    });

    // NIC commit + sleep sweep, fused as in tickActive(). The live
    // scan covers mid-tick wakes (their bits are already set).
    nicMask_.retain([this](std::uint32_t id) {
        RingNic &nic = nics_[id];
        nic.commit();
        if (!nic.empty() || nic.faultPinned()) {
            // Next tick's phase A, while the NIC is cache-hot.
            nic.computeAcceptance();
            return true;
        }
        nic.prepareSleep();
        return false;
    });

    // Commit the IRIs' system-clock domain (commits touch one
    // component each, so ascending id order replaces wake order).
    iriMask_.forEach([this](std::uint32_t id) {
        iris_[id].commitLower();
        if (!iriFastUpper_[id])
            iris_[id].commitUpper();
    });

    // Fast domain: the global ring runs globalRingSpeed sub-cycles;
    // each pass is a fresh live scan, covering inter-sub-cycle wakes.
    if (!fastIris_.empty()) {
        for (std::uint32_t sub = 0; sub < params_.globalRingSpeed;
             ++sub) {
            iriMask_.forEach([this](std::uint32_t id) {
                if (iriFastUpper_[id])
                    iris_[id].computeAcceptanceUpper();
            });
            iriMask_.forEach([this](std::uint32_t id) {
                if (iriFastUpper_[id])
                    iris_[id].evaluateUpper();
            });
            iriMask_.forEach([this](std::uint32_t id) {
                if (iriFastUpper_[id])
                    iris_[id].commitUpper();
            });
        }
    }

    // IRI sleep sweep (the NIC sweep already ran, fused with commit).
    iriMask_.retain([this](std::uint32_t id) {
        if (!iris_[id].empty() || iris_[id].faultPinned())
            return true;
        iris_[id].prepareSleep();
        return false;
    });
}

void
RingNetwork::setColumnar(bool enabled)
{
    columnar_ = enabled;
    if (!enabled)
        return; // HRSIM_NO_COLUMNAR oracle: in-object layout + sets
    const std::size_t num_pms = nics_.size();
    hotCol_.resize(num_pms + 2 * iris_.size());
    nicMask_.reset(nics_.size());
    iriMask_.reset(iris_.size());
    // Hoist every side's latch + acceptance flag into the column
    // (slot layout matches sideFaults_), then re-aim each upstream
    // output at the hoisted pair and route its wakes into the masks.
    for (std::size_t pm = 0; pm < num_pms; ++pm)
        nics_[pm].side().bindColumns(&hotCol_[pm].in,
                                     &hotCol_[pm].accept);
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        RingHot *base = &hotCol_[num_pms + 2 * i];
        iris_[i].lower().bindColumns(&base[0].in, &base[0].accept);
        iris_[i].upper().bindColumns(&base[1].in, &base[1].accept);
    }
    for (const RingDesc &ring : structure_.rings) {
        const std::size_t n = ring.slots.size();
        for (std::size_t i = 0; i < n; ++i) {
            RingSide &from = sideAt(ring.slots[i]);
            const RingSlotDesc &to_slot = ring.slots[(i + 1) % n];
            RingSide &to = sideAt(to_slot);
            from.out.repoint(&to.in(), &to.accept());
            from.out.setWakeMask(
                to_slot.kind == RingSlotDesc::Kind::Nic ? &nicMask_
                                                        : &iriMask_);
        }
    }
}

void
RingNetwork::setActiveScheduling(bool enabled)
{
    activeSched_ = enabled;
    if (!enabled)
        return;
    // Establish the invariant "asleep <=> empty": wake everything
    // holding flits, put everything else into its rest state.
    for (std::size_t i = 0; i < nics_.size(); ++i) {
        if (nics_[i].flitCount() != 0 || nics_[i].faultPinned()) {
            wakeNic(static_cast<std::uint32_t>(i));
            // The active tick expects NIC acceptance one tick ahead
            // (fused into the commit sweep); seed it here.
            nics_[i].computeAcceptance();
        } else {
            nics_[i].prepareSleep();
        }
    }
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        if (iris_[i].flitCount() != 0 || iris_[i].faultPinned())
            wakeIri(static_cast<std::uint32_t>(i));
        else
            iris_[i].prepareSleep();
    }
}

void
RingNetwork::setFastPath(bool enabled)
{
    fastPath_ = enabled;
    for (RingNic &nic : nics_)
        nic.setFastPath(enabled);
    for (RingIri &iri : iris_)
        iri.setFastPath(enabled);
}

bool
RingNetwork::isIdle() const
{
    if (!activeSched_)
        return flitsInFlight() == 0;
    if (columnar_)
        return nicMask_.empty() && iriMask_.empty();
    return activeNics_.empty() && activeIris_.empty();
}

std::size_t
RingNetwork::activeNodeCount() const
{
    if (columnar_)
        return nicMask_.size() + iriMask_.size();
    return activeNics_.size() + activeIris_.size();
}

std::uint64_t
RingNetwork::flitsInFlight() const
{
    std::uint64_t count = 0;
    for (const RingNic &nic : nics_)
        count += nic.flitCount();
    for (const RingIri &iri : iris_)
        count += iri.flitCount();
    return count;
}

double
RingNetwork::levelUtilization(int level) const
{
    HRSIM_ASSERT(level >= 0 && level < structure_.numLevels);
    return util_.groupUtilization(
        levelGroups_[static_cast<std::size_t>(level)]);
}

void
RingNetwork::registerMetrics(MetricRegistry &registry) const
{
    for (int level = 0; level < structure_.numLevels; ++level) {
        registry.addGauge(
            "ring.l" + std::to_string(level) + ".util",
            [this, level]() { return levelUtilization(level); });
    }
    if (fastPath_) {
        // Registered only when the fast path is on (the PR 3 sched.*
        // convention), so metric artifacts stay byte-identical under
        // HRSIM_NO_FASTPATH — the counts are mode-independent.
        registry.addGauge("nic.streamed_flits", [this]() {
            std::uint64_t total = 0;
            for (const RingNic &nic : nics_)
                total += nic.streamedFlits();
            return static_cast<double>(total);
        });
        registry.addGauge("iri.streamed_flits", [this]() {
            std::uint64_t total = 0;
            for (const RingIri &iri : iris_)
                total += iri.streamedFlits();
            return static_cast<double>(total);
        });
    }
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        // An IRI is named by the hierarchy level of its parent ring
        // (the ring its upper side sits on): the IRIs hanging off the
        // global ring are ring.l0.iri*, and so on down.
        const int level =
            structure_
                .rings[static_cast<std::size_t>(
                    structure_.iris[i].parentRing)]
                .level;
        const std::string prefix = "ring.l" + std::to_string(level) +
                                   ".iri" + std::to_string(i);
        const RingIri *iri = &iris_[i];
        registry.addCounter(prefix + ".wait_cycles",
                            [iri]() { return iri->waitCycles(); });
        registry.addCounter(prefix + ".escapes",
                            [iri]() { return iri->escapes(); });
        registry.addGauge(prefix + ".flits", [iri]() {
            return static_cast<double>(iri->flitCount());
        });
    }
    for (std::size_t pm = 0; pm < nics_.size(); ++pm) {
        const RingNic *nic = &nics_[pm];
        registry.addGauge("ring.nic" + std::to_string(pm) + ".flits",
                          [nic]() {
                              return static_cast<double>(
                                  nic->flitCount());
                          });
    }
    registry.addCounter("ring.wait_cycles",
                        [this]() { return totalWaitCycles(); });
    registry.addCounter("ring.escapes",
                        [this]() { return totalEscapes(); });
}

void
RingNetwork::saveState(CkptWriter &w) const
{
    // Only the occupied count is simulation state; capacity, bubble,
    // and the down-phase reserve are derived from the topology.
    w.u32(static_cast<std::uint32_t>(occupancy_.size()));
    for (const RingOccupancy &occ : occupancy_)
        w.i64(occ.occupied);
    for (const RingNic &nic : nics_)
        nic.saveState(w);
    for (const RingIri &iri : iris_)
        iri.saveState(w);
    // Fault planes exist only while a plan is live; the flag guards
    // against restoring a faulted snapshot into a fault-free config.
    w.boolean(!sideFaults_.empty());
    for (const RingSideFaults &faults : sideFaults_)
        saveRingSideFaults(w, faults);
    w.u64(parStats_.parallelTicks);
    w.u64(parStats_.shardEvals);
}

void
RingNetwork::loadState(CkptReader &r)
{
    const std::uint32_t rings = r.u32();
    if (rings != occupancy_.size()) {
        throw CheckpointError(
            "checkpoint: ring count mismatch (topology differs)");
    }
    for (RingOccupancy &occ : occupancy_)
        occ.occupied = r.i64();
    for (RingNic &nic : nics_)
        nic.loadState(r);
    for (RingIri &iri : iris_)
        iri.loadState(r);
    const bool has_faults = r.boolean();
    if (has_faults != !sideFaults_.empty()) {
        throw CheckpointError(
            "checkpoint: fault-plane mismatch (snapshot and config "
            "disagree on an active fault plan)");
    }
    for (RingSideFaults &faults : sideFaults_)
        loadRingSideFaults(r, faults);
    parStats_.parallelTicks = r.u64();
    parStats_.shardEvals = r.u64();
    // Membership is derived: wake everything holding flits (or
    // fault-pinned), rest everything else — the same invariant the
    // scheduling switch establishes, and a no-op in full-scan mode.
    setActiveScheduling(activeSched_);
}

bool
RingNetwork::faultTargetValid(const FaultTarget &target) const
{
    if (target.kind == FaultTargetKind::RingNic)
        return target.id >= 0 && target.id < numProcessors();
    if (target.kind != FaultTargetKind::RingIri)
        return false;
    if (target.id < 0 ||
        target.id >= static_cast<std::int32_t>(iris_.size())) {
        return false;
    }
    // IRI naming matches the metric names: an IRI belongs to the
    // hierarchy level of its parent ring (the ring its upper side
    // sits on), so ring.l0.iri* hang off the global ring.
    const int level =
        structure_
            .rings[static_cast<std::size_t>(
                structure_.iris[static_cast<std::size_t>(target.id)]
                    .parentRing)]
            .level;
    return level == static_cast<int>(target.level);
}

void
RingNetwork::applyFault(const FaultEvent &event, bool active)
{
    HRSIM_ASSERT(!sideFaults_.empty());
    const FaultTarget &target = event.target;
    std::size_t slot;
    if (target.kind == FaultTargetKind::RingNic) {
        slot = static_cast<std::size_t>(target.id);
    } else {
        slot = nics_.size() +
               2 * static_cast<std::size_t>(target.id) +
               (target.upper ? 1 : 0);
    }
    RingSideFaults &faults = sideFaults_[slot];
    const std::int8_t delta = active ? 1 : -1;
    switch (event.action) {
      case FaultAction::LinkDown:
        HRSIM_ASSERT(active || faults.down > 0);
        faults.down = static_cast<std::uint8_t>(faults.down + delta);
        break;
      case FaultAction::Stall:
        HRSIM_ASSERT(active || faults.stalled > 0);
        faults.stalled =
            static_cast<std::uint8_t>(faults.stalled + delta);
        break;
      case FaultAction::Corrupt:
        HRSIM_ASSERT(active || faults.corrupt > 0);
        faults.corrupt =
            static_cast<std::uint8_t>(faults.corrupt + delta);
        break;
    }
    // Both edges wake the component: activation so a stalled side
    // pins itself awake (and advertises accept = false) and a dead
    // output starts draining, deactivation so frozen traffic moves
    // again.
    if (target.kind == FaultTargetKind::RingNic) {
        wakeNic(static_cast<std::uint32_t>(target.id));
        // The active tick computes NIC acceptance at the end of the
        // previous cycle (fused into the commit sweep), before this
        // edge existed; recompute so the flag matches what the full
        // scan's phase A would publish this cycle. (IRI acceptance
        // runs every tick for awake IRIs, so waking is enough.)
        nics_[static_cast<std::size_t>(target.id)].computeAcceptance();
    } else {
        wakeIri(static_cast<std::uint32_t>(target.id));
    }
}

void
RingNetwork::setFaultAccounting(FaultAccounting *acct)
{
    acct_ = acct;
    sideFaults_.assign(nics_.size() + 2 * iris_.size(),
                       RingSideFaults{});
    for (std::size_t pm = 0; pm < nics_.size(); ++pm) {
        nics_[pm].setFaultState(acct ? &sideFaults_[pm] : nullptr,
                                acct);
    }
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        const std::size_t base = nics_.size() + 2 * i;
        iris_[i].setFaultState(acct ? &sideFaults_[base] : nullptr,
                               acct ? &sideFaults_[base + 1] : nullptr,
                               acct);
    }
    // setFaultState re-aimed every component at the master ledger;
    // restore the shard ledgers if the parallel engine is live, so
    // setFaultAccounting and setTickParallel compose in either order.
    applyParallelAcct();
}

void
RingNetwork::setTickParallel(TickPool *pool)
{
    // The engine only replaces the columnar active-scheduled tick
    // (the production path); the oracle modes stay serial, as does a
    // one-participant pool. The system calls this after setColumnar /
    // setActiveScheduling, so both flags are settled here.
    pool_ = (pool != nullptr && pool->threads() > 1 && columnar_ &&
             activeSched_)
                ? pool
                : nullptr;
    shards_.clear();
    sinks_.clear();
    nicCommitRanges_.clear();
    iriCommitRanges_.clear();
    util_.setShardPlanes(0);
    if (pool_ == nullptr) {
        // Drop any earlier shard repointing (the planes are gone).
        for (const RingDesc &ring : structure_.rings) {
            for (const RingSlotDesc &slot : ring.slots) {
                RingOutput &out = sideAt(slot).out;
                out.repointUtilCounter(
                    util_.transferCounter(out.link()));
            }
        }
        return;
    }

    // One evaluate shard per ring. A double-clocked root ring
    // carries only fast upper sides — no slow-domain work — and gets
    // no shard: the fast domain runs serially on the main thread and
    // its outputs keep the master util counters and ledger.
    for (std::size_t r = 0; r < structure_.rings.size(); ++r) {
        const RingDesc &ring = structure_.rings[r];
        RingShard sh;
        sh.ring = static_cast<std::uint32_t>(r);
        std::uint32_t nic_count = 0;
        bool has_nics = false;
        for (const RingSlotDesc &slot : ring.slots) {
            const auto id = static_cast<std::uint32_t>(slot.index);
            switch (slot.kind) {
              case RingSlotDesc::Kind::Nic:
                if (!has_nics) {
                    sh.nicLo = id;
                    sh.nicHi = id + 1;
                    has_nics = true;
                } else {
                    sh.nicLo = std::min(sh.nicLo, id);
                    sh.nicHi = std::max(sh.nicHi, id + 1);
                }
                ++nic_count;
                break;
              case RingSlotDesc::Kind::IriLower:
                sh.lowerIris.push_back(id);
                break;
              case RingSlotDesc::Kind::IriUpper:
                if (!iriFastUpper_[id])
                    sh.upperIris.push_back(id);
                break;
            }
        }
        // Leaf rings hold one contiguous PM range (the delivery-order
        // argument leans on this).
        HRSIM_ASSERT(sh.nicHi - sh.nicLo == nic_count);
        std::sort(sh.lowerIris.begin(), sh.lowerIris.end());
        std::sort(sh.upperIris.begin(), sh.upperIris.end());
        if (!has_nics && sh.lowerIris.empty() && sh.upperIris.empty())
            continue;
        shards_.push_back(std::move(sh));
    }

    // Drain order: ascending subtree start. Only leaf shards produce
    // deliveries and leaf subtrees are disjoint, so draining sinks in
    // shard order reproduces the serial ascending-NIC-id delivery
    // sequence exactly.
    std::sort(shards_.begin(), shards_.end(),
              [this](const RingShard &a, const RingShard &b) {
                  return structure_.rings[a.ring].subtreeLo <
                         structure_.rings[b.ring].subtreeLo;
              });
    sinks_.resize(shards_.size());

    // Per-shard utilization planes: every output evaluated inside
    // shard s counts into s's plane; reads sum master + planes
    // (integer order-free, so figures stay bit-identical).
    util_.setShardPlanes(static_cast<int>(shards_.size()));
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const RingDesc &ring = structure_.rings[shards_[s].ring];
        for (const RingSlotDesc &slot : ring.slots) {
            RingOutput &out = sideAt(slot).out;
            out.repointUtilCounter(util_.shardTransferCounter(
                static_cast<int>(s), out.link()));
        }
    }

    // Commit/sweep phases touch one component each, so any partition
    // is bit-identical: balanced mask word ranges, at most one per
    // pool participant.
    const auto parts = static_cast<std::size_t>(pool_->threads());
    const auto split = [parts](std::size_t words,
                               std::vector<WordRange> &out) {
        const std::size_t n = std::min(parts, words);
        for (std::size_t i = 0; i < n; ++i) {
            WordRange r;
            r.lo = static_cast<std::uint32_t>(words * i / n);
            r.hi = static_cast<std::uint32_t>(words * (i + 1) / n);
            out.push_back(r);
        }
    };
    split(nicMask_.wordCount(), nicCommitRanges_);
    split(iriMask_.wordCount(), iriCommitRanges_);

    applyParallelAcct();
}

void
RingNetwork::applyParallelAcct()
{
    if (acct_ == nullptr || pool_ == nullptr)
        return;
    // Each component's ledger pointer goes to its shard's ledger,
    // per *side* for IRIs — the two sides of an IRI tick in the
    // shards of the two rings they sit on. Fast upper sides (no
    // shard) keep the master ledger; they run serially.
    for (RingShard &sh : shards_) {
        const RingDesc &ring = structure_.rings[sh.ring];
        for (const RingSlotDesc &slot : ring.slots) {
            const auto i = static_cast<std::size_t>(slot.index);
            switch (slot.kind) {
              case RingSlotDesc::Kind::Nic:
                nics_[i].repointAcct(&sh.acct);
                break;
              case RingSlotDesc::Kind::IriLower:
                iris_[i].lower().out.repointAcct(&sh.acct);
                break;
              case RingSlotDesc::Kind::IriUpper:
                iris_[i].upper().out.repointAcct(&sh.acct);
                break;
            }
        }
    }
}

void
RingNetwork::evaluateShard(Cycle now, int shard)
{
    // Route every cross-shard effect (wakes, deliveries) into this
    // shard's sink; see sim/parallel.hh. The mask is frozen for the
    // whole dispatch, so contains()/forEachInRange() read the
    // start-of-tick membership — where the serial live scan would
    // visit a mid-tick-woken component instead, that visit is a
    // provable no-op (woken <=> was empty; staged flits invisible
    // until commit), so both engines compute the same bytes.
    RingShard &sh = shards_[static_cast<std::size_t>(shard)];
    tlsShardSink = &sinks_[static_cast<std::size_t>(shard)];

    // Phase A: acceptance flags from start-of-cycle state. An accept
    // flag is only read by the upstream output on the same ring, so
    // no barrier is needed between this shard's phase A and another
    // shard's phase B — the phases fuse per shard.
    for (const std::uint32_t id : sh.lowerIris) {
        if (iriMask_.contains(id))
            iris_[id].computeAcceptanceLower();
    }
    for (const std::uint32_t id : sh.upperIris) {
        if (iriMask_.contains(id))
            iris_[id].computeAcceptanceUpper();
    }

    // Phase B: this ring's slice of the system-clock domain, in the
    // serial engine's per-category ascending-id order (NICs, lower
    // sides, slow upper sides). All non-deferred interactions —
    // occupancy gates, latch staging, acceptance flags — stay inside
    // this ring; inter-ring queues are SPSC under the frozen-counter
    // FIFO contract (common/staged_fifo.hh).
    nicMask_.forEachInRange(sh.nicLo, sh.nicHi, [this, now](
                                                    std::uint32_t id) {
        nics_[id].evaluate(now);
    });
    for (const std::uint32_t id : sh.lowerIris) {
        if (iriMask_.contains(id))
            iris_[id].evaluateLower();
    }
    for (const std::uint32_t id : sh.upperIris) {
        if (iriMask_.contains(id))
            iris_[id].evaluateUpper();
    }

    tlsShardSink = nullptr;
}

void
RingNetwork::commitShard(int shard)
{
    // Partition index space: NIC word ranges first, then IRI ranges.
    const auto nic_parts = nicCommitRanges_.size();
    if (static_cast<std::size_t>(shard) < nic_parts) {
        const WordRange &r =
            nicCommitRanges_[static_cast<std::size_t>(shard)];
        // Fused commit + sleep sweep, exactly as in tickColumnar();
        // summary/count rebuild happens once after the barrier.
        nicMask_.retainWordRange(r.lo, r.hi, [this](std::uint32_t id) {
            RingNic &nic = nics_[id];
            nic.commit();
            if (!nic.empty() || nic.faultPinned()) {
                // Next tick's phase A, while the NIC is cache-hot.
                nic.computeAcceptance();
                return true;
            }
            nic.prepareSleep();
            return false;
        });
        return;
    }
    const WordRange &r =
        iriCommitRanges_[static_cast<std::size_t>(shard) - nic_parts];
    if (fastIris_.empty()) {
        // No fast domain runs later, so the IRI sleep sweep fuses
        // into the commit the same way the NIC sweep does.
        iriMask_.retainWordRange(r.lo, r.hi, [this](std::uint32_t id) {
            RingIri &iri = iris_[id];
            iri.commitLower();
            iri.commitUpper();
            if (!iri.empty() || iri.faultPinned())
                return true;
            iri.prepareSleep();
            return false;
        });
    } else {
        // Fast upper sides still tick after this commit, so only
        // commit here (both sides of an IRI fused — commitUpper
        // commits the shared inter-ring queues, so the two sides
        // must not commit in different partitions).
        const std::uint32_t id_lo = r.lo * 64;
        const std::uint32_t id_hi =
            std::min<std::uint32_t>(r.hi * 64,
                                    static_cast<std::uint32_t>(
                                        iris_.size()));
        iriMask_.forEachInRange(id_lo, id_hi, [this](std::uint32_t id) {
            iris_[id].commitLower();
            if (!iriFastUpper_[id])
                iris_[id].commitUpper();
        });
    }
}

void
RingNetwork::tickColumnarParallel(Cycle now)
{
    // Evaluate dispatch: one shard per ring, phases A + B fused.
    auto eval = [this, now](int shard) { evaluateShard(now, shard); };
    pool_->run(static_cast<int>(shards_.size()), eval);
    parStats_.parallelTicks += 1;
    parStats_.shardEvals += shards_.size();

    // Merge deferred wakes before any commit: a component woken
    // mid-tick holds a staged flit that must commit this cycle.
    // add() is idempotent, so cross-shard duplicates are harmless.
    for (const ShardSink &sink : sinks_) {
        for (const DeferredWake &w : sink.wakes)
            w.mask->add(w.id);
    }
    // Drain deliveries in shard order = ascending NIC id = the
    // serial delivery order (each NIC delivers at most one packet
    // per cycle). tlsShardSink is null here, so delivered() runs the
    // real handler.
    for (ShardSink &sink : sinks_) {
        for (const DeferredDelivery &d : sink.deliveries)
            delivered(d.pkt, d.when);
        sink.clear();
    }

    // Commit dispatch over mask word ranges (NIC partitions first).
    const int commit_parts = static_cast<int>(nicCommitRanges_.size() +
                                              iriCommitRanges_.size());
    auto commit = [this](int part) { commitShard(part); };
    pool_->run(commit_parts, commit);
    nicMask_.rebuildAggregates();

    if (fastIris_.empty()) {
        // The IRI sweep was fused into the commit partitions.
        iriMask_.rebuildAggregates();
        foldShardAcct();
        return;
    }

    // Fast domain: serial on this thread (all fast upper sides share
    // the root ring, so there is nothing to shard), identical to the
    // tickColumnar() loop. tlsShardSink is null: wakes go straight
    // into the masks. iriMask_'s aggregates are still intact — the
    // fast-path commit partitions above cleared no bits.
    for (std::uint32_t sub = 0; sub < params_.globalRingSpeed; ++sub) {
        iriMask_.forEach([this](std::uint32_t id) {
            if (iriFastUpper_[id])
                iris_[id].computeAcceptanceUpper();
        });
        iriMask_.forEach([this](std::uint32_t id) {
            if (iriFastUpper_[id])
                iris_[id].evaluateUpper();
        });
        iriMask_.forEach([this](std::uint32_t id) {
            if (iriFastUpper_[id])
                iris_[id].commitUpper();
        });
    }

    // IRI sleep sweep, partitioned like the commit.
    auto sweep = [this](int part) {
        const WordRange &r =
            iriCommitRanges_[static_cast<std::size_t>(part)];
        iriMask_.retainWordRange(r.lo, r.hi, [this](std::uint32_t id) {
            if (!iris_[id].empty() || iris_[id].faultPinned())
                return true;
            iris_[id].prepareSleep();
            return false;
        });
    };
    pool_->run(static_cast<int>(iriCommitRanges_.size()), sweep);
    iriMask_.rebuildAggregates();
    foldShardAcct();
}

void
RingNetwork::foldShardAcct()
{
    if (acct_ == nullptr)
        return;
    // Fold the shard fault ledgers into the master so every reader
    // outside the network tick (the fault engine's conservation
    // check, metrics) sees serial-identical totals.
    for (RingShard &sh : shards_) {
        acct_->injectedFlits += sh.acct.injectedFlits;
        acct_->deliveredFlits += sh.acct.deliveredFlits;
        acct_->droppedFlits += sh.acct.droppedFlits;
        acct_->droppedWorms += sh.acct.droppedWorms;
        acct_->poisonedWorms += sh.acct.poisonedWorms;
        sh.acct = FaultAccounting{};
    }
}

} // namespace hrsim

namespace hrsim
{

void
RingNetwork::debugDump(std::ostream &out) const
{
    for (std::size_t r = 0; r < structure_.rings.size(); ++r) {
        const RingDesc &ring = structure_.rings[r];
        out << "ring " << r << " level=" << ring.level
            << " occ=" << occupancy_[r].occupied << "/"
            << occupancy_[r].capacity
            << " bubble=" << occupancy_[r].bubble
            << " rsvDown=" << occupancy_[r].reserveDown << "\n";
        for (const RingSlotDesc &slot : ring.slots) {
            out << "  ";
            switch (slot.kind) {
              case RingSlotDesc::Kind::Nic:
                nics_[static_cast<std::size_t>(slot.index)].debugDump(
                    out);
                break;
              default:
                iris_[static_cast<std::size_t>(slot.index)].debugDump(
                    out);
                break;
            }
        }
    }
}

} // namespace hrsim
