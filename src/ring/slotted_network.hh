/**
 * @file
 * Slotted (register-insertion cell) switching for hierarchical rings.
 *
 * The paper's base simulator modelled the slotted rings of the Hector
 * prototype and was then extended with wormhole switching; the
 * authors note that "slotted rings tend to perform somewhat better"
 * (Section 5, citing their companion study). This module implements
 * that alternative switching technique on the same topologies so the
 * two can be compared directly.
 *
 * Model: each ring is a circular pipeline of one-flit slots (one per
 * attachment point) that rotates unconditionally every cycle — a slot
 * always moves to the next node, so the ring can never block or
 * deadlock. Packets travel as independent cells (every flit carries
 * its own routing tag, as in the wormhole model's Flit) and are
 * reassembled at the destination by counting. A node may fill an
 * empty slot passing by (responses before requests); a cell that
 * needs to change rings is pulled into the IRI's transfer queue when
 * there is room, and otherwise simply takes another lap — Hector's
 * retry behaviour. There is no back-pressure anywhere.
 */

#ifndef HRSIM_RING_SLOTTED_NETWORK_HH
#define HRSIM_RING_SLOTTED_NETWORK_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stable_pool.hh"
#include "common/staged_fifo.hh"
#include "common/types.hh"
#include "proto/packet.hh"
#include "ring/ring_node.hh"
#include "ring/topology.hh"
#include "sim/active_set.hh"
#include "sim/network.hh"

namespace hrsim
{

/** One attachment point of a node on a slotted ring. */
struct SlotPort
{
    std::optional<Flit> slot;   //!< cell occupying this slot
    std::optional<Flit> staged; //!< committed at end of cycle

    void
    commit()
    {
        slot = staged;
        staged.reset();
    }
};

class SlottedNic
{
  public:
    using DeliverFn = std::function<void(const Packet &, Cycle)>;

    /**
     * @param ring_lo / @param ring_hi PM range of this NIC's ring,
     *        classifying injected cells as staying (down-phase) or
     *        ascending (up-phase, which must leave the reserved
     *        slot free).
     */
    SlottedNic(NodeId pm, std::uint32_t cl_flits, NodeId ring_lo,
               NodeId ring_hi, std::uint32_t ring_slots);

    SlottedNic(const SlottedNic &) = delete;
    SlottedNic &operator=(const SlottedNic &) = delete;

    /** Forward / sink / inject for one cycle. */
    void evaluate(Cycle now, UtilizationTracker &util,
                  UtilizationTracker::LinkId link);

    void commit();

    bool canInject(const Packet &pkt) const;
    void inject(const Packet &pkt);
    void setDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    SlotPort &port() { return port_; }
    SlotPort *downstream = nullptr;
    RingOccupancy *occupancy = nullptr;
    /** Wake wiring: staging downstream wakes that component. */
    ActiveSet *wakeSet = nullptr;
    std::uint32_t downstreamComp = 0;

    std::uint64_t flitCount() const;

  private:
    NodeId pm_;
    NodeId ringLo_;
    NodeId ringHi_;
    std::uint32_t ringSlots_;
    SlotPort port_;
    StagedFifo<Flit> outResp_;
    StagedFifo<Flit> outReq_;
    /** Cells received per in-flight packet (reassembly by count). */
    std::unordered_map<PacketId, std::uint32_t> assembly_;
    DeliverFn deliver_;
};

class SlottedIri
{
  public:
    /**
     * @param parent_lo / @param parent_hi PM range of the parent
     *        ring, classifying cells ascending onto it.
     */
    SlottedIri(NodeId subtree_lo, NodeId subtree_hi,
               std::uint32_t cl_flits, NodeId parent_lo,
               NodeId parent_hi, std::uint32_t lower_slots,
               std::uint32_t upper_slots);

    SlottedIri(const SlottedIri &) = delete;
    SlottedIri &operator=(const SlottedIri &) = delete;

    /** Lower-ring side: pass / pull up / refill from down queue. */
    void evaluateLower(UtilizationTracker &util,
                       UtilizationTracker::LinkId link);

    /** Upper-ring side: pass / pull down / refill from up queue. */
    void evaluateUpper(UtilizationTracker &util,
                       UtilizationTracker::LinkId link);

    void commitLower();
    void commitUpper();

    SlotPort &lower() { return lower_; }
    SlotPort &upper() { return upper_; }
    SlotPort *lowerDownstream = nullptr;
    SlotPort *upperDownstream = nullptr;
    RingOccupancy *lowerOccupancy = nullptr;
    RingOccupancy *upperOccupancy = nullptr;
    /** Wake wiring: staging downstream wakes that component. */
    ActiveSet *wakeSet = nullptr;
    std::uint32_t lowerDownstreamComp = 0;
    std::uint32_t upperDownstreamComp = 0;

    bool
    inSubtree(NodeId pm) const
    {
        return pm >= subtreeLo_ && pm < subtreeHi_;
    }

    std::uint64_t flitCount() const;

    /** Cells that had to take another lap (full transfer queue). */
    std::uint64_t retries() const { return retries_; }

  private:
    StagedFifo<Flit> &upQueue(PacketType type);
    StagedFifo<Flit> &downQueue(PacketType type);

    NodeId subtreeLo_;
    NodeId subtreeHi_;
    NodeId parentLo_;
    NodeId parentHi_;
    std::uint32_t lowerSlots_;
    std::uint32_t upperSlots_;

    SlotPort lower_;
    SlotPort upper_;

    StagedFifo<Flit> upResp_;
    StagedFifo<Flit> upReq_;
    StagedFifo<Flit> downResp_;
    StagedFifo<Flit> downReq_;

    std::uint64_t retries_ = 0;
};

/**
 * Hierarchical ring interconnect with slotted switching. Shares the
 * topology machinery (and the Network interface) with the wormhole
 * RingNetwork; the global ring may be double-clocked exactly as
 * there.
 */
class SlottedRingNetwork : public Network
{
  public:
    struct Params
    {
        RingTopology topo;
        std::uint32_t cacheLineBytes = 32;
        std::uint32_t globalRingSpeed = 1;
    };

    explicit SlottedRingNetwork(const Params &params);

    int numProcessors() const override;
    bool canInject(NodeId pm, const Packet &pkt) const override;
    void inject(NodeId pm, const Packet &pkt) override;
    void tick(Cycle now) override;
    UtilizationTracker &utilization() override { return util_; }
    const UtilizationTracker &utilization() const override
    {
        return util_;
    }
    std::uint64_t flitsInFlight() const override;
    void registerMetrics(MetricRegistry &registry) const override;
    void setActiveScheduling(bool enabled) override;
    bool isIdle() const override;
    std::size_t activeNodeCount() const override;

    double levelUtilization(int level) const;
    int numLevels() const { return structure_.numLevels; }

    /** Total another-lap retries across all IRIs. */
    std::uint64_t totalRetries() const;

  private:
    struct Hop
    {
        enum class Kind { Nic, IriLower, IriUpper } kind;
        int index;
        UtilizationTracker::LinkId link;
    };

    SlotPort &portAt(const RingSlotDesc &slot);

    /**
     * Combined component index for the ActiveSet: NICs are [0, P),
     * IRI i is P + i.
     */
    std::uint32_t compOf(const Hop &hop) const;

    Params params_;
    RingStructure structure_;
    std::uint32_t clFlits_;

    // Contiguous value storage (see common/stable_pool.hh): the hop
    // schedule strides through components without a pointer chase.
    StablePool<SlottedNic> nics_;
    StablePool<SlottedIri> iris_;
    /** One occupancy record per ring (one slot reserved for
     * down-phase cells on multi-level systems). */
    std::vector<RingOccupancy> occupancy_;

    UtilizationTracker util_;
    std::vector<UtilizationTracker::GroupId> levelGroups_;

    /** Evaluation schedule: slow hops, then fast (global) hops. */
    std::vector<Hop> slowHops_;
    std::vector<Hop> fastHops_;

    // Active-set scheduler state (setActiveScheduling). One combined
    // set over NICs and IRIs; hops of sleeping components are skipped
    // (their evaluate is a no-op on empty state) while the hop order
    // itself — and therefore slot rotation — is untouched.
    bool activeSched_ = false;
    ActiveSet active_;
    /** Per-IRI flag: upper side in the fast (global) domain. */
    std::vector<std::uint8_t> iriFast_;
};

} // namespace hrsim

#endif // HRSIM_RING_SLOTTED_NETWORK_HH
