/**
 * @file
 * Inter-Ring Interface (Figure 4 of the paper).
 *
 * An IRI joins a child ("lower") ring to its parent ("upper") ring
 * and is modelled, as in the paper, as a 2x2 crossbar with:
 *  - a packet-sized transit (ring) buffer per ring, absorbing flits
 *    that continue on the same ring while its output is busy;
 *  - up and down buffers, each split into request and response
 *    queues, carrying ring-changing packets; they also serve as the
 *    clock-domain crossing when the global ring is double-clocked.
 *
 * Routing needs only the IRI's subtree: a packet on the lower ring
 * goes up iff its destination lies outside the subtree; a packet on
 * the upper ring comes down iff its destination lies inside.
 * Switching happens independently on the two sides, and packets that
 * stay on their ring have priority over ring-changing ones.
 *
 * A ring-changing worm is diverted into its up/down queue only when
 * the whole packet fits, so a diverting worm never stalls the ring
 * mid-transfer; when the queue is full the worm waits in place
 * (back-pressuring its ring, exactly as the paper's flow control
 * does) and retries every cycle. A worm that has waited longer than
 * the wait limit takes one lap around its current ring instead and
 * retries on return: an indefinitely blocked latch would stop the
 * ring rotating and let head-of-line jams close into cross-level
 * deadlock cycles at extreme oversaturation. The decision is made
 * once per worm, at its head flit, so worms are never split.
 * Deadlock freedom also relies on the network's phase-based
 * ring-admission gates and the anti-starvation valve on IRI outputs
 * (see RingOccupancy).
 */

#ifndef HRSIM_RING_RING_IRI_HH
#define HRSIM_RING_RING_IRI_HH

#include <iosfwd>

#include "common/types.hh"
#include "proto/packet.hh"
#include "ring/ring_node.hh"

namespace hrsim
{

class RingIri
{
  public:
    /**
     * @param subtree_lo First PM id below this IRI.
     * @param subtree_hi One past the last PM id below this IRI.
     * @param cl_flits Flits in a cache-line packet (buffer depth).
     * @param wait_limit Cycles a blocked worm holds its latch before
     *        escaping with a recirculation lap (0 = escape at once).
     * @param queue_packets Up/down queue depth in packets (paper: 1).
     */
    RingIri(NodeId subtree_lo, NodeId subtree_hi,
            std::uint32_t cl_flits, std::uint32_t wait_limit,
            std::uint32_t queue_packets = 1);

    RingIri(const RingIri &) = delete;
    RingIri &operator=(const RingIri &) = delete;
    RingIri(RingIri &&) = delete;
    RingIri &operator=(RingIri &&) = delete;

    /** Phase A flags, one per side. */
    void computeAcceptanceLower();
    void computeAcceptanceUpper();

    /** Phase B: switch the lower-ring side. */
    void evaluateLower();

    /** Phase B: switch the upper-ring side. */
    void evaluateUpper();

    /** Commit state owned by the lower (system-clock) domain. */
    void commitLower();

    /** Commit state owned by the upper ring's clock domain. */
    void commitUpper();

    /**
     * Select the devirtualized transmit on both sides (default off =
     * the legacy virtual-source arbitration, the bit-identity
     * oracle; see DESIGN.md section 12).
     */
    void setFastPath(bool enabled) { fastPath_ = enabled; }

    /** Non-head flits both outputs streamed (both paths). */
    std::uint64_t streamedFlits() const
    {
        return lower_.out.streamedFlits() +
               upper_.out.streamedFlits();
    }

    /**
     * Checkpoint hooks (tick boundary): both sides, the four transfer
     * queues, and the per-side routing memos / wait / escape state —
     * a worm mid-divert or mid-escape must resume its decision, not
     * re-route.
     */
    void
    saveState(CkptWriter &w) const
    {
        const auto save_memo = [&w](const RouteMemo &memo) {
            w.u64(memo.packet);
            w.boolean(memo.valid);
            w.u8(static_cast<std::uint8_t>(memo.route));
        };
        const auto save_wait = [&w](const WaitState &wait) {
            w.u64(wait.packet);
            w.u32(wait.cycles);
        };
        save_memo(lowerMemo_);
        save_memo(upperMemo_);
        save_wait(lowerWait_);
        save_wait(upperWait_);
        w.u64(lowerEscaped_);
        w.u64(upperEscaped_);
        w.u64(waitCyclesLower_);
        w.u64(waitCyclesUpper_);
        w.u64(escapesLower_);
        w.u64(escapesUpper_);
        lower_.saveState(w);
        upper_.saveState(w);
        saveFlitFifo(w, upResp_);
        saveFlitFifo(w, upReq_);
        saveFlitFifo(w, downResp_);
        saveFlitFifo(w, downReq_);
    }

    void
    loadState(CkptReader &r)
    {
        const auto load_memo = [&r](RouteMemo &memo) {
            memo.packet = r.u64();
            memo.valid = r.boolean();
            memo.route = static_cast<WormRoute>(r.u8());
        };
        const auto load_wait = [&r](WaitState &wait) {
            wait.packet = r.u64();
            wait.cycles = r.u32();
        };
        load_memo(lowerMemo_);
        load_memo(upperMemo_);
        load_wait(lowerWait_);
        load_wait(upperWait_);
        lowerEscaped_ = r.u64();
        upperEscaped_ = r.u64();
        waitCyclesLower_ = r.u64();
        waitCyclesUpper_ = r.u64();
        escapesLower_ = r.u64();
        escapesUpper_ = r.u64();
        lower_.loadState(r);
        upper_.loadState(r);
        loadFlitFifo(r, upResp_);
        loadFlitFifo(r, upReq_);
        loadFlitFifo(r, downResp_);
        loadFlitFifo(r, downReq_);
    }

    RingSide &lower() { return lower_; }
    RingSide &upper() { return upper_; }
    const RingSide &lower() const { return lower_; }
    const RingSide &upper() const { return upper_; }

    bool
    inSubtree(NodeId pm) const
    {
        return pm >= subtreeLo_ && pm < subtreeHi_;
    }

    NodeId subtreeLo() const { return subtreeLo_; }
    NodeId subtreeHi() const { return subtreeHi_; }

    /** Flits currently buffered in this IRI. */
    std::uint64_t flitCount() const;

    /**
     * flitCount() == 0, but short-circuiting: the end-of-tick sleep
     * sweep polls every awake component each cycle, and at
     * saturation the first load answers the question.
     */
    bool
    empty() const
    {
        return !lower_.in().cur && !lower_.in().staged &&
               !upper_.in().cur && !upper_.in().staged &&
               lower_.transitBuf.totalSize() == 0 &&
               upper_.transitBuf.totalSize() == 0 &&
               upResp_.totalSize() == 0 && upReq_.totalSize() == 0 &&
               downResp_.totalSize() == 0 && downReq_.totalSize() == 0;
    }

    /**
     * Put the (empty) IRI into its sleeping rest state: both sides
     * accept (an empty latch always computes accept = true) and no
     * escape lap is armed (the quiescent evaluate paths clear the
     * escape markers every cycle; an empty IRI has no worm to
     * escape). Skipping an asleep IRI's ticks is then invisible.
     */
    void
    prepareSleep()
    {
        lower_.accept() = true;
        upper_.accept() = true;
        lowerEscaped_ = 0;
        upperEscaped_ = 0;
    }

    /**
     * Attach per-side fault state and the network's shared
     * conservation ledger (all owned by the network; null = the
     * fault-free fast case). Also wires both ring outputs.
     */
    void
    setFaultState(RingSideFaults *lower, RingSideFaults *upper,
                  FaultAccounting *acct)
    {
        lowerFaults_ = lower;
        upperFaults_ = upper;
        lower_.out.setFaultState(lower, acct);
        upper_.out.setFaultState(upper, acct);
    }

    /**
     * Must this IRI stay in the active set even while empty? A
     * stalled side pins the IRI awake so its acceptance flag is
     * recomputed (sleeping rests at accept = true, the opposite of
     * what a stall advertises) and the network never fast-forwards
     * across the stall window.
     */
    bool
    faultPinned() const
    {
        return (lowerFaults_ && lowerFaults_->stalled) ||
               (upperFaults_ && upperFaults_->stalled);
    }

    /** One-line buffer state (stall diagnostics). */
    void debugDump(std::ostream &out) const;

    /** Cumulative cycles worms spent blocked on full queues. */
    std::uint64_t
    waitCycles() const
    {
        return waitCyclesLower_ + waitCyclesUpper_;
    }

    /** Recirculation-escape laps taken. */
    std::uint64_t
    escapes() const
    {
        return escapesLower_ + escapesUpper_;
    }

    /** Route chosen for the worm currently arriving on a side. */
    enum class WormRoute : std::uint8_t
    {
        Continue,   //!< stay on the current ring
        ChangeRing, //!< divert into the up/down queue
        Wait,       //!< queue full: hold the latch and retry
    };

  private:
    StagedFifo<Flit> &upQueue(PacketType type);
    StagedFifo<Flit> &downQueue(PacketType type);

    /** Per-side memo of the incoming worm's routing decision. */
    struct RouteMemo
    {
        PacketId packet = 0;
        bool valid = false;
        WormRoute route = WormRoute::Continue;
    };

    /** Cycles a blocked head has been holding a latch. */
    struct WaitState
    {
        PacketId packet = 0;
        std::uint32_t cycles = 0;
    };

    /**
     * Route of the latch flit on the lower side, deciding once per
     * worm: ring-changing packets divert when the whole packet fits
     * in the queue, wait (holding the latch) while it does not, and
     * recirculate once the wait limit is exceeded.
     *
     * @param count_wait Advance the wait counter (set only by the
     *        once-per-cycle acceptance computation).
     */
    WormRoute routeLower(const Flit &flit, bool count_wait = false);

    /** Same for the upper side. */
    WormRoute routeUpper(const Flit &flit, bool count_wait = false);

    NodeId subtreeLo_;
    NodeId subtreeHi_;
    std::uint32_t waitLimit_;
    bool fastPath_ = false;

    RouteMemo lowerMemo_;
    RouteMemo upperMemo_;
    WaitState lowerWait_;
    WaitState upperWait_;
    /** Head currently committed to an escape lap (0 = none). */
    PacketId lowerEscaped_ = 0;
    PacketId upperEscaped_ = 0;

    // Wait/escape counters are split per side: the two sides of an
    // IRI sit on different rings, i.e. in different tick shards, and
    // the per-cycle acceptance passes of both may advance their
    // side's counter concurrently (DESIGN.md section 15). The
    // accessors report the sum, identical to the old single counter.
    std::uint64_t waitCyclesLower_ = 0;
    std::uint64_t waitCyclesUpper_ = 0;
    std::uint64_t escapesLower_ = 0;
    std::uint64_t escapesUpper_ = 0;

    RingSide lower_;
    RingSide upper_;

    StagedFifo<Flit> upResp_;
    StagedFifo<Flit> upReq_;
    StagedFifo<Flit> downResp_;
    StagedFifo<Flit> downReq_;

    /** Per-side fault state; null (the fast case) without a plan. */
    const RingSideFaults *lowerFaults_ = nullptr;
    const RingSideFaults *upperFaults_ = nullptr;

    RingStreamSource lowerRingSource_;
    RingStreamSource upperRingSource_;
    QueueSource upRespSource_;
    QueueSource upReqSource_;
    QueueSource downRespSource_;
    QueueSource downReqSource_;
};

} // namespace hrsim

#endif // HRSIM_RING_RING_IRI_HH
