#include "ring/topology.hh"

#include <sstream>

#include "common/log.hh"

namespace hrsim
{

RingTopology
RingTopology::parse(const std::string &text)
{
    RingTopology topo;
    std::stringstream in(text);
    std::string part;
    while (std::getline(in, part, ':')) {
        if (part.empty())
            fatal("RingTopology: empty level in '" + text + "'");
        try {
            topo.levels.push_back(std::stoi(part));
        } catch (const std::exception &) {
            fatal("RingTopology: bad level '" + part + "' in '" +
                  text + "'");
        }
    }
    topo.validate();
    return topo;
}

std::string
RingTopology::toString() const
{
    std::string out;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (i)
            out += ':';
        out += std::to_string(levels[i]);
    }
    return out;
}

long
RingTopology::numProcessors() const
{
    long total = 1;
    for (const int n : levels)
        total *= n;
    return total;
}

void
RingTopology::validate() const
{
    if (levels.empty())
        fatal("RingTopology: at least one level required");
    for (const int n : levels) {
        if (n < 1)
            fatal("RingTopology: every level needs >= 1 children");
    }
    if (numProcessors() < 1)
        fatal("RingTopology: no processors");
}

namespace
{

/**
 * Recursive builder. Returns the index of the ring created for the
 * subtree rooted at @a level covering PM ids starting at @a next_pm.
 */
int
buildRing(const RingTopology &topo, RingStructure &rs, int level,
          NodeId &next_pm)
{
    const int ring_index = static_cast<int>(rs.rings.size());
    rs.rings.push_back(RingDesc{level, {}, next_pm, next_pm});

    const int fanout = topo.levels[static_cast<std::size_t>(level)];
    if (level == topo.numLevels() - 1) {
        // Leaf ring: one NIC slot per PM.
        for (int child = 0; child < fanout; ++child) {
            const NodeId pm = next_pm++;
            rs.rings[ring_index].slots.push_back(
                RingSlotDesc{RingSlotDesc::Kind::Nic, pm});
            rs.nicRing.push_back(ring_index);
        }
    } else {
        for (int child = 0; child < fanout; ++child) {
            const NodeId lo = next_pm;
            const int child_ring =
                buildRing(topo, rs, level + 1, next_pm);
            const NodeId hi = next_pm;
            const int iri = static_cast<int>(rs.iris.size());
            rs.iris.push_back(IriDesc{child_ring, ring_index, lo, hi});
            // The IRI's upper side sits on this ring ...
            rs.rings[ring_index].slots.push_back(
                RingSlotDesc{RingSlotDesc::Kind::IriUpper, iri});
            // ... and its lower side closes the child ring.
            rs.rings[child_ring].slots.push_back(
                RingSlotDesc{RingSlotDesc::Kind::IriLower, iri});
        }
    }
    rs.rings[ring_index].subtreeHi = next_pm;
    return ring_index;
}

} // namespace

RingStructure
RingStructure::build(const RingTopology &topo)
{
    topo.validate();
    RingStructure rs;
    rs.numLevels = topo.numLevels();
    NodeId next_pm = 0;
    rs.rootRing = buildRing(topo, rs, 0, next_pm);
    HRSIM_ASSERT(next_pm == topo.numProcessors());
    return rs;
}

std::vector<int>
RingStructure::ringsAtLevel(int level) const
{
    std::vector<int> out;
    for (int r = 0; r < static_cast<int>(rings.size()); ++r) {
        if (rings[static_cast<std::size_t>(r)].level == level)
            out.push_back(r);
    }
    return out;
}

} // namespace hrsim
