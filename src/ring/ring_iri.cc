#include "ring/ring_iri.hh"
#include <ostream>

#include "common/log.hh"

namespace hrsim
{

RingIri::RingIri(NodeId subtree_lo, NodeId subtree_hi,
                 std::uint32_t cl_flits, std::uint32_t wait_limit,
                 std::uint32_t queue_packets)
    : subtreeLo_(subtree_lo), subtreeHi_(subtree_hi),
      waitLimit_(wait_limit),
      lowerRingSource_(lower_), upperRingSource_(upper_),
      upRespSource_(upResp_), upReqSource_(upReq_),
      downRespSource_(downResp_), downReqSource_(downReq_)
{
    HRSIM_ASSERT(subtree_lo < subtree_hi);
    lower_.transitBuf.setCapacity(cl_flits);
    upper_.transitBuf.setCapacity(cl_flits);
    const std::size_t queue_flits =
        static_cast<std::size_t>(cl_flits) * queue_packets;
    upResp_.setCapacity(queue_flits);
    upReq_.setCapacity(queue_flits);
    downResp_.setCapacity(queue_flits);
    downReq_.setCapacity(queue_flits);
}

StagedFifo<Flit> &
RingIri::upQueue(PacketType type)
{
    return isRequest(type) ? upReq_ : upResp_;
}

StagedFifo<Flit> &
RingIri::downQueue(PacketType type)
{
    return isRequest(type) ? downReq_ : downResp_;
}

RingIri::WormRoute
RingIri::routeLower(const Flit &flit, bool count_wait)
{
    if (!flit.isHead()) {
        // Body flits always follow their head's decision.
        HRSIM_ASSERT(lowerMemo_.valid &&
                     lowerMemo_.packet == flit.packet);
        return lowerMemo_.route;
    }
    if (inSubtree(flit.dst)) {
        lowerMemo_ = RouteMemo{flit.packet, true, WormRoute::Continue};
        return WormRoute::Continue;
    }
    if (lowerEscaped_ == flit.packet) {
        // Already committed to an escape lap; stay on the ring.
        lowerMemo_ = RouteMemo{flit.packet, true, WormRoute::Continue};
        return WormRoute::Continue;
    }
    // Ring-changing: divert only when the whole packet fits, so the
    // worm never stalls mid-transfer; otherwise hold the latch
    // (back-pressure) and re-check next cycle, escaping with a lap
    // around the ring once the wait limit is exceeded.
    if (upQueue(flit.type).producerSpace() >= flit.sizeFlits) {
        lowerMemo_ =
            RouteMemo{flit.packet, true, WormRoute::ChangeRing};
        lowerWait_ = WaitState{};
        return WormRoute::ChangeRing;
    }
    if (lowerWait_.packet != flit.packet)
        lowerWait_ = WaitState{flit.packet, 0};
    if (count_wait) {
        ++lowerWait_.cycles;
        ++waitCyclesLower_;
    }
    if (lowerWait_.cycles > waitLimit_) {
        lowerMemo_ = RouteMemo{flit.packet, true, WormRoute::Continue};
        lowerWait_ = WaitState{};
        lowerEscaped_ = flit.packet;
        ++escapesLower_;
        return WormRoute::Continue;
    }
    return WormRoute::Wait;
}

RingIri::WormRoute
RingIri::routeUpper(const Flit &flit, bool count_wait)
{
    if (!flit.isHead()) {
        HRSIM_ASSERT(upperMemo_.valid &&
                     upperMemo_.packet == flit.packet);
        return upperMemo_.route;
    }
    if (!inSubtree(flit.dst)) {
        upperMemo_ = RouteMemo{flit.packet, true, WormRoute::Continue};
        return WormRoute::Continue;
    }
    if (upperEscaped_ == flit.packet) {
        upperMemo_ = RouteMemo{flit.packet, true, WormRoute::Continue};
        return WormRoute::Continue;
    }
    if (downQueue(flit.type).producerSpace() >= flit.sizeFlits) {
        upperMemo_ =
            RouteMemo{flit.packet, true, WormRoute::ChangeRing};
        upperWait_ = WaitState{};
        return WormRoute::ChangeRing;
    }
    if (upperWait_.packet != flit.packet)
        upperWait_ = WaitState{flit.packet, 0};
    if (count_wait) {
        ++upperWait_.cycles;
        ++waitCyclesUpper_;
    }
    if (upperWait_.cycles > waitLimit_) {
        upperMemo_ = RouteMemo{flit.packet, true, WormRoute::Continue};
        upperWait_ = WaitState{};
        upperEscaped_ = flit.packet;
        ++escapesUpper_;
        return WormRoute::Continue;
    }
    return WormRoute::Wait;
}

void
RingIri::computeAcceptanceLower()
{
    // A stalled side is frozen and must not advertise acceptance
    // (the blocked-worm wait counters freeze with it).
    if (lowerFaults_ && lowerFaults_->stalled != 0) {
        lower_.accept() = false;
        return;
    }
    if (!lower_.in().cur) {
        lower_.accept() = true;
        return;
    }
    const Flit &flit = *lower_.in().cur;
    switch (routeLower(flit, /*count_wait=*/true)) {
      case WormRoute::ChangeRing:
        // Whole-packet room in the up queue was reserved at the
        // head, so the flit is guaranteed disposable.
        lower_.accept() = true;
        break;
      case WormRoute::Continue:
        lower_.accept() = lower_.transitBuf.canPush();
        break;
      case WormRoute::Wait:
        lower_.accept() = false; // latch held: back-pressure the ring
        break;
    }
}

void
RingIri::computeAcceptanceUpper()
{
    if (upperFaults_ && upperFaults_->stalled != 0) {
        upper_.accept() = false;
        return;
    }
    if (!upper_.in().cur) {
        upper_.accept() = true;
        return;
    }
    const Flit &flit = *upper_.in().cur;
    switch (routeUpper(flit, /*count_wait=*/true)) {
      case WormRoute::ChangeRing:
        upper_.accept() = true;
        break;
      case WormRoute::Continue:
        upper_.accept() = upper_.transitBuf.canPush();
        break;
      case WormRoute::Wait:
        upper_.accept() = false; // latch held: back-pressure the ring
        break;
    }
}

void
RingIri::evaluateLower()
{
    // A stalled side does nothing; traffic waits in place.
    if (lowerFaults_ && lowerFaults_->stalled != 0)
        return;
    // Quiescent fast path: nothing latched, buffered or descending
    // means there is nothing to divert, forward or inject this cycle.
    if (!lower_.in().cur && lower_.transitBuf.empty() &&
        downResp_.empty() && downReq_.empty()) {
        lowerEscaped_ = 0; // an escaped head that moved on re-decides
        return;
    }

    // 1. Divert a ring-changing worm's flit into its up queue.
    if (lower_.in().cur &&
        routeLower(*lower_.in().cur) == WormRoute::ChangeRing) {
        StagedFifo<Flit> &queue = upQueue(lower_.in().cur->type);
        HRSIM_ASSERT(queue.canPush());
        queue.push(*lower_.in().cur);
        // The flit leaves the lower ring; 1 + ttl because a kill
        // token carries its dead worm's occupancy debt (ttl is
        // always 0 in fault-free runs — see RingSideFaults).
        lower_.occupancy->add(
            -1 - static_cast<std::int64_t>(lower_.in().cur->ttl));
        lower_.in().cur.reset();
    }

    // 2. Drive the lower-ring output: same-ring transit (including
    //    recirculating worms) first, then descending responses, then
    //    descending requests.
    lowerRingSource_.setLatchIsTransit(
        lower_.in().cur.has_value() &&
        routeLower(*lower_.in().cur) == WormRoute::Continue);
    if (fastPath_) {
        lower_.out.transmitFast(&lowerRingSource_, &downRespSource_,
                                &downReqSource_);
    } else {
        lower_.out.transmit(&lowerRingSource_, &downRespSource_,
                            &downReqSource_);
    }

    // 3. Absorb a continuing latch flit into the lower ring buffer.
    if (lower_.in().cur &&
        routeLower(*lower_.in().cur) == WormRoute::Continue &&
        lower_.transitBuf.canPush()) {
        lower_.transitBuf.push(*lower_.in().cur);
        lower_.in().cur.reset();
    }

    // An escaped head that moved on re-decides on its next lap.
    if (lowerEscaped_ != 0 &&
        (!lower_.in().cur || lower_.in().cur->packet != lowerEscaped_)) {
        lowerEscaped_ = 0;
    }
}

void
RingIri::evaluateUpper()
{
    // A stalled side does nothing; traffic waits in place.
    if (upperFaults_ && upperFaults_->stalled != 0)
        return;
    // Quiescent fast path, mirroring evaluateLower().
    if (!upper_.in().cur && upper_.transitBuf.empty() &&
        upResp_.empty() && upReq_.empty()) {
        upperEscaped_ = 0;
        return;
    }

    // 1. Divert a ring-changing worm's flit into its down queue.
    if (upper_.in().cur &&
        routeUpper(*upper_.in().cur) == WormRoute::ChangeRing) {
        StagedFifo<Flit> &queue = downQueue(upper_.in().cur->type);
        HRSIM_ASSERT(queue.canPush());
        queue.push(*upper_.in().cur);
        // The flit leaves the upper ring (1 + ttl: kill-token debt).
        upper_.occupancy->add(
            -1 - static_cast<std::int64_t>(upper_.in().cur->ttl));
        upper_.in().cur.reset();
    }

    // 2. Drive the upper-ring output: same-ring transit first, then
    //    ascending responses, then ascending requests.
    upperRingSource_.setLatchIsTransit(
        upper_.in().cur.has_value() &&
        routeUpper(*upper_.in().cur) == WormRoute::Continue);
    if (fastPath_) {
        upper_.out.transmitFast(&upperRingSource_, &upRespSource_,
                                &upReqSource_);
    } else {
        upper_.out.transmit(&upperRingSource_, &upRespSource_,
                            &upReqSource_);
    }

    // 3. Absorb a continuing latch flit into the upper ring buffer.
    if (upper_.in().cur &&
        routeUpper(*upper_.in().cur) == WormRoute::Continue &&
        upper_.transitBuf.canPush()) {
        upper_.transitBuf.push(*upper_.in().cur);
        upper_.in().cur.reset();
    }

    // An escaped head that moved on re-decides on its next lap.
    if (upperEscaped_ != 0 &&
        (!upper_.in().cur || upper_.in().cur->packet != upperEscaped_)) {
        upperEscaped_ = 0;
    }
}

void
RingIri::commitLower()
{
    lower_.in().commit();
    lower_.transitBuf.commit();
}

void
RingIri::commitUpper()
{
    upper_.in().commit();
    upper_.transitBuf.commit();
    upResp_.commit();
    upReq_.commit();
    downResp_.commit();
    downReq_.commit();
}

std::uint64_t
RingIri::flitCount() const
{
    std::uint64_t count =
        lower_.transitBuf.totalSize() + upper_.transitBuf.totalSize() +
        upResp_.totalSize() + upReq_.totalSize() +
        downResp_.totalSize() + downReq_.totalSize();
    if (lower_.in().cur)
        ++count;
    if (lower_.in().staged)
        ++count;
    if (upper_.in().cur)
        ++count;
    if (upper_.in().staged)
        ++count;
    return count;
}

} // namespace hrsim

namespace hrsim
{

void
RingIri::debugDump(std::ostream &out) const
{
    const auto side_info = [&](const char *tag, const RingSide &side) {
        out << " " << tag << "[latch=";
        if (side.in().cur) {
            out << side.in().cur->packet << ":" << side.in().cur->index
                << "->" << side.in().cur->dst;
        } else {
            out << "-";
        }
        out << " buf=" << side.transitBuf.size();
        if (!side.transitBuf.empty()) {
            out << "(hd " << side.transitBuf.front().packet << ":"
                << side.transitBuf.front().index << ")";
        }
        out << " worm=" << (side.out.inWorm() ? 1 : 0);
        if (side.out.inWorm()) {
            out << "(pkt " << side.out.wormPacket() << " src "
                << static_cast<int>(side.out.wormSource()) << ")";
        }
        out << " accept=" << side.accept() << "]";
    };
    out << "IRI [" << subtreeLo_ << "," << subtreeHi_ << ")";
    side_info("lo", lower_);
    side_info("up", upper_);
    out << " upQ=" << upResp_.size() << "/" << upReq_.size()
        << " downQ=" << downResp_.size() << "/" << downReq_.size()
        << "\n";
}

} // namespace hrsim
