/**
 * @file
 * Hierarchical ring topology description.
 *
 * The paper writes topologies top-down, e.g. "2:3:4" for one global
 * ring connecting 2 intermediate rings, each connecting 3 local
 * rings, each with 4 processing modules. A single ring of P nodes is
 * simply "P".
 *
 * RingStructure expands a topology into the concrete set of rings,
 * NIC and IRI instances, and their slot positions, which the network
 * model instantiates one-to-one:
 *
 *  - A leaf (local) ring has its PMs' NICs followed by the lower side
 *    of the IRI that links it to its parent ring.
 *  - An interior ring has the upper side of each child IRI followed
 *    by the lower side of its own parent IRI (absent for the root).
 *  - Each IRI covers a contiguous range of PM ids (its subtree),
 *    which is all the routing information the hierarchy needs.
 */

#ifndef HRSIM_RING_TOPOLOGY_HH
#define HRSIM_RING_TOPOLOGY_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace hrsim
{

struct RingTopology
{
    /** Children per ring, top-down; back() is PMs per local ring. */
    std::vector<int> levels;

    /** Parse the paper's "a:b:c" notation. */
    static RingTopology parse(const std::string &text);

    /** Render in the paper's notation. */
    std::string toString() const;

    int numLevels() const { return static_cast<int>(levels.size()); }

    /** Total number of processing modules. */
    long numProcessors() const;

    /** Throws ConfigError unless every level has >= 1 children and
     * rings with fewer than 2 nodes are avoided where meaningful. */
    void validate() const;
};

/** One slot position on a ring. */
struct RingSlotDesc
{
    enum class Kind
    {
        Nic,      //!< a PM's network interface controller
        IriLower, //!< lower side of an IRI (link to parent ring)
        IriUpper, //!< upper side of an IRI (link to a child ring)
    };

    Kind kind;
    int index; //!< PM id for Nic, IRI index otherwise
};

/** One ring instance. */
struct RingDesc
{
    int level; //!< 0 = global (root) ring
    std::vector<RingSlotDesc> slots;
    NodeId subtreeLo = 0; //!< first PM id reachable below this ring
    NodeId subtreeHi = 0; //!< one past the last such PM id
};

/** One inter-ring interface instance. */
struct IriDesc
{
    int childRing;  //!< ring below this IRI
    int parentRing; //!< ring above this IRI
    NodeId subtreeLo; //!< first PM id under this IRI
    NodeId subtreeHi; //!< one past the last PM id under this IRI
};

/** Fully expanded structural description of a hierarchy. */
struct RingStructure
{
    std::vector<RingDesc> rings;
    std::vector<IriDesc> iris;
    std::vector<int> nicRing; //!< pm -> containing ring index
    int rootRing = 0;
    int numLevels = 0;

    static RingStructure build(const RingTopology &topo);

    int numProcessors() const
    {
        return static_cast<int>(nicRing.size());
    }

    /** Ring indices at a hierarchy level (0 = root). */
    std::vector<int> ringsAtLevel(int level) const;
};

} // namespace hrsim

#endif // HRSIM_RING_TOPOLOGY_HH
