#include "ring/slotted_network.hh"

#include "common/log.hh"
#include "obs/metric_registry.hh"

namespace hrsim
{

// ------------------------------------------------------------------ //
// SlottedNic

SlottedNic::SlottedNic(NodeId pm, std::uint32_t cl_flits,
                       NodeId ring_lo, NodeId ring_hi,
                       std::uint32_t ring_slots)
    : pm_(pm), ringLo_(ring_lo), ringHi_(ring_hi),
      ringSlots_(ring_slots)
{
    outResp_.setCapacity(cl_flits);
    outReq_.setCapacity(cl_flits);
}

bool
SlottedNic::canInject(const Packet &pkt) const
{
    const StagedFifo<Flit> &queue =
        isRequest(pkt.type) ? outReq_ : outResp_;
    return queue.producerSpace() >= pkt.sizeFlits;
}

void
SlottedNic::inject(const Packet &pkt)
{
    HRSIM_ASSERT(canInject(pkt));
    StagedFifo<Flit> &queue = isRequest(pkt.type) ? outReq_ : outResp_;
    for (std::uint32_t i = 0; i < pkt.sizeFlits; ++i)
        queue.push(makeFlit(pkt, i));
}

void
SlottedNic::evaluate(Cycle now, UtilizationTracker &util,
                     UtilizationTracker::LinkId link)
{
    std::optional<Flit> outgoing;

    if (port_.slot) {
        if (port_.slot->isBroadcast()) {
            // Deliver a copy everywhere but the origin, and keep the
            // cell circulating until its lap completes.
            Flit cell = *port_.slot;
            if (cell.src != pm_ && deliver_) {
                // The delivered copy's dst names the receiving PM.
                Packet copy = packetFromFlit(cell);
                copy.dst = pm_;
                deliver_(copy, now);
            }
            if (cell.ttl > 1) {
                --cell.ttl;
                outgoing = cell;
            } else {
                occupancy->add(-1); // lap complete: cell retired
            }
        } else if (port_.slot->dst == pm_) {
            // Sink the cell; deliver when the whole packet arrived.
            const Flit &cell = *port_.slot;
            occupancy->add(-1);
            const std::uint32_t have = ++assembly_[cell.packet];
            if (have == cell.sizeFlits) {
                assembly_.erase(cell.packet);
                if (deliver_)
                    deliver_(packetFromFlit(cell), now);
            }
        } else {
            outgoing = port_.slot; // pass through
        }
        port_.slot.reset();
    }

    // Fill an empty slot from the PM, responses first. Cells bound
    // for another ring must leave the reserved down-phase slot free.
    if (!outgoing) {
        const auto admissible = [this](const StagedFifo<Flit> &q) {
            if (q.empty())
                return false;
            const Flit &cell = q.front();
            const bool stays =
                cell.dst >= ringLo_ && cell.dst < ringHi_;
            return stays ? occupancy->canAdmitDown(1)
                         : occupancy->canAdmitUp(1);
        };
        if (admissible(outResp_))
            outgoing = outResp_.pop();
        else if (admissible(outReq_))
            outgoing = outReq_.pop();
        if (outgoing) {
            occupancy->add(1);
            if (outgoing->isBroadcast())
                outgoing->ttl = static_cast<std::uint16_t>(ringSlots_);
        }
    }

    HRSIM_ASSERT(downstream != nullptr);
    HRSIM_ASSERT(!downstream->staged);
    if (outgoing) {
        downstream->staged = outgoing;
        if (wakeSet) // wake a sleeping neighbor
            wakeSet->add(downstreamComp);
        util.recordTransfer(link);
    }
}

void
SlottedNic::commit()
{
    port_.commit();
    outResp_.commit();
    outReq_.commit();
}

std::uint64_t
SlottedNic::flitCount() const
{
    std::uint64_t count = outResp_.totalSize() + outReq_.totalSize();
    if (port_.slot)
        ++count;
    if (port_.staged)
        ++count;
    return count;
}

// ------------------------------------------------------------------ //
// SlottedIri

SlottedIri::SlottedIri(NodeId subtree_lo, NodeId subtree_hi,
                       std::uint32_t cl_flits, NodeId parent_lo,
                       NodeId parent_hi, std::uint32_t lower_slots,
                       std::uint32_t upper_slots)
    : subtreeLo_(subtree_lo), subtreeHi_(subtree_hi),
      parentLo_(parent_lo), parentHi_(parent_hi),
      lowerSlots_(lower_slots), upperSlots_(upper_slots)
{
    HRSIM_ASSERT(subtree_lo < subtree_hi);
    upResp_.setCapacity(cl_flits);
    upReq_.setCapacity(cl_flits);
    downResp_.setCapacity(cl_flits);
    downReq_.setCapacity(cl_flits);
}

StagedFifo<Flit> &
SlottedIri::upQueue(PacketType type)
{
    return isRequest(type) ? upReq_ : upResp_;
}

StagedFifo<Flit> &
SlottedIri::downQueue(PacketType type)
{
    return isRequest(type) ? downReq_ : downResp_;
}

void
SlottedIri::evaluateLower(UtilizationTracker &util,
                          UtilizationTracker::LinkId link)
{
    std::optional<Flit> outgoing;

    if (lower_.slot && lower_.slot->isBroadcast()) {
        // Ascent: the home-path IRI copies the broadcast toward the
        // parent ring; everyone forwards until the lap completes. A
        // full up queue skips the copy without consuming the lap so
        // the cell retries next time around.
        Flit cell = *lower_.slot;
        lower_.slot.reset();
        const bool home = cell.src >= subtreeLo_ && cell.src < subtreeHi_;
        bool lap_consumed = true;
        if (home) {
            if (upReq_.canPush()) {
                Flit copy = cell;
                upReq_.push(copy);
            } else {
                lap_consumed = false;
            }
        }
        if (!lap_consumed) {
            outgoing = cell; // extra lap, ttl untouched
        } else if (cell.ttl > 1) {
            --cell.ttl;
            outgoing = cell;
        } else {
            lowerOccupancy->add(-1); // lap complete: cell retired
        }
    } else if (lower_.slot) {
        const Flit &cell = *lower_.slot;
        if (!inSubtree(cell.dst)) {
            StagedFifo<Flit> &queue = upQueue(cell.type);
            if (queue.canPush()) {
                queue.push(cell); // ascend
                lowerOccupancy->add(-1);
            } else {
                outgoing = cell; // full: take another lap
                ++retries_;
            }
        } else {
            outgoing = cell; // continue on the lower ring
        }
        lower_.slot.reset();
    }

    // Refill an empty slot with a descending cell, responses first.
    // Descents are down-phase on the lower ring by construction
    // (their destination is inside this subtree), so they are always
    // admissible into an empty slot.
    if (!outgoing) {
        if (!downResp_.empty())
            outgoing = downResp_.pop();
        else if (!downReq_.empty())
            outgoing = downReq_.pop();
        if (outgoing) {
            lowerOccupancy->add(1);
            if (outgoing->isBroadcast())
                outgoing->ttl =
                    static_cast<std::uint16_t>(lowerSlots_);
        }
    }

    HRSIM_ASSERT(lowerDownstream != nullptr);
    HRSIM_ASSERT(!lowerDownstream->staged);
    if (outgoing) {
        lowerDownstream->staged = outgoing;
        if (wakeSet) // wake a sleeping neighbor
            wakeSet->add(lowerDownstreamComp);
        util.recordTransfer(link);
    }
}

void
SlottedIri::evaluateUpper(UtilizationTracker &util,
                          UtilizationTracker::LinkId link)
{
    std::optional<Flit> outgoing;

    if (upper_.slot && upper_.slot->isBroadcast()) {
        // Descent: copy into every subtree except the one the
        // broadcast came from; forward until the lap completes.
        Flit cell = *upper_.slot;
        upper_.slot.reset();
        const bool from_here =
            cell.src >= subtreeLo_ && cell.src < subtreeHi_;
        bool lap_consumed = true;
        if (!from_here) {
            if (downReq_.canPush()) {
                Flit copy = cell;
                downReq_.push(copy);
            } else {
                lap_consumed = false;
            }
        }
        if (!lap_consumed) {
            outgoing = cell; // extra lap, ttl untouched
        } else if (cell.ttl > 1) {
            --cell.ttl;
            outgoing = cell;
        } else {
            upperOccupancy->add(-1); // lap complete: cell retired
        }
    } else if (upper_.slot) {
        const Flit &cell = *upper_.slot;
        if (inSubtree(cell.dst)) {
            StagedFifo<Flit> &queue = downQueue(cell.type);
            if (queue.canPush()) {
                queue.push(cell); // descend
                upperOccupancy->add(-1);
            } else {
                outgoing = cell; // full: take another lap
                ++retries_;
            }
        } else {
            outgoing = cell; // continue on the upper ring
        }
        upper_.slot.reset();
    }

    // Refill from the up queue. A cell whose destination lies inside
    // the parent ring's subtree is down-phase there (self-draining);
    // one that must ascend further leaves the reserved slot free.
    if (!outgoing) {
        const auto admissible = [this](const StagedFifo<Flit> &q) {
            if (q.empty())
                return false;
            const Flit &cell = q.front();
            const bool down_phase =
                cell.dst >= parentLo_ && cell.dst < parentHi_;
            return down_phase ? upperOccupancy->canAdmitDown(1)
                              : upperOccupancy->canAdmitUp(1);
        };
        if (admissible(upResp_))
            outgoing = upResp_.pop();
        else if (admissible(upReq_))
            outgoing = upReq_.pop();
        if (outgoing) {
            upperOccupancy->add(1);
            if (outgoing->isBroadcast())
                outgoing->ttl =
                    static_cast<std::uint16_t>(upperSlots_);
        }
    }

    HRSIM_ASSERT(upperDownstream != nullptr);
    HRSIM_ASSERT(!upperDownstream->staged);
    if (outgoing) {
        upperDownstream->staged = outgoing;
        if (wakeSet) // wake a sleeping neighbor
            wakeSet->add(upperDownstreamComp);
        util.recordTransfer(link);
    }
}

void
SlottedIri::commitLower()
{
    lower_.commit();
}

void
SlottedIri::commitUpper()
{
    upper_.commit();
    upResp_.commit();
    upReq_.commit();
    downResp_.commit();
    downReq_.commit();
}

std::uint64_t
SlottedIri::flitCount() const
{
    std::uint64_t count = upResp_.totalSize() + upReq_.totalSize() +
                          downResp_.totalSize() + downReq_.totalSize();
    if (lower_.slot)
        ++count;
    if (lower_.staged)
        ++count;
    if (upper_.slot)
        ++count;
    if (upper_.staged)
        ++count;
    return count;
}

// ------------------------------------------------------------------ //
// SlottedRingNetwork

SlottedRingNetwork::SlottedRingNetwork(const Params &params)
    : params_(params), structure_(RingStructure::build(params.topo)),
      clFlits_(ChannelSpec::ring().cacheLineFlits(params.cacheLineBytes))
{
    if (params_.globalRingSpeed < 1)
        fatal("SlottedRingNetwork: global ring speed must be >= 1");

    // Per-ring slot occupancy. One slot is reserved for down-phase
    // cells on multi-level systems so queue transfers always drain
    // (the cell-granular analogue of the wormhole network's
    // phase-based admission gates).
    occupancy_.resize(structure_.rings.size());
    for (std::size_t r = 0; r < structure_.rings.size(); ++r) {
        occupancy_[r].capacity = static_cast<std::int64_t>(
            structure_.rings[r].slots.size());
        occupancy_[r].reserveDown =
            structure_.numLevels > 1 ? 1 : 0;
    }

    const int num_pms = structure_.numProcessors();
    nics_.reserve(static_cast<std::size_t>(num_pms));
    for (NodeId pm = 0; pm < num_pms; ++pm) {
        const auto ring = static_cast<std::size_t>(
            structure_.nicRing[static_cast<std::size_t>(pm)]);
        const RingDesc &desc = structure_.rings[ring];
        SlottedNic &nic = nics_.emplace_back(
            pm, clFlits_, desc.subtreeLo, desc.subtreeHi,
            static_cast<std::uint32_t>(desc.slots.size()));
        nic.occupancy = &occupancy_[ring];
        nic.setDeliver([this](const Packet &pkt, Cycle when) {
            delivered(pkt, when);
        });
    }
    iris_.reserve(structure_.iris.size());
    for (const IriDesc &desc : structure_.iris) {
        const RingDesc &parent = structure_.rings[
            static_cast<std::size_t>(desc.parentRing)];
        const RingDesc &child = structure_.rings[
            static_cast<std::size_t>(desc.childRing)];
        SlottedIri &iri = iris_.emplace_back(
            desc.subtreeLo, desc.subtreeHi, clFlits_,
            parent.subtreeLo, parent.subtreeHi,
            static_cast<std::uint32_t>(child.slots.size()),
            static_cast<std::uint32_t>(parent.slots.size()));
        iri.lowerOccupancy =
            &occupancy_[static_cast<std::size_t>(desc.childRing)];
        iri.upperOccupancy =
            &occupancy_[static_cast<std::size_t>(desc.parentRing)];
    }

    levelGroups_.resize(static_cast<std::size_t>(structure_.numLevels));
    for (int level = 0; level < structure_.numLevels; ++level) {
        levelGroups_[static_cast<std::size_t>(level)] =
            util_.group("ring level " + std::to_string(level));
    }

    // Active-set bookkeeping: one combined component index space,
    // NICs first, then IRIs. Wake wiring is installed unconditionally
    // (idempotent-cheap in full-scan mode).
    active_.reset(static_cast<std::size_t>(num_pms) + iris_.size());
    iriFast_.assign(iris_.size(), 0);
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        if (structure_.iris[i].parentRing == structure_.rootRing &&
            params_.globalRingSpeed > 1) {
            iriFast_[i] = 1;
        }
    }
    for (SlottedNic &nic : nics_)
        nic.wakeSet = &active_;
    for (SlottedIri &iri : iris_)
        iri.wakeSet = &active_;

    // Wire each ring and build the evaluation schedule.
    for (std::size_t r = 0; r < structure_.rings.size(); ++r) {
        const RingDesc &ring = structure_.rings[r];
        const std::size_t n = ring.slots.size();
        const bool is_root = ring.level == 0;
        const bool fast = is_root && params_.globalRingSpeed > 1;
        for (std::size_t i = 0; i < n; ++i) {
            const RingSlotDesc &slot = ring.slots[i];
            const RingSlotDesc &to_slot = ring.slots[(i + 1) % n];
            SlotPort &to = portAt(to_slot);
            const auto to_comp = static_cast<std::uint32_t>(
                to_slot.kind == RingSlotDesc::Kind::Nic
                    ? to_slot.index
                    : num_pms + to_slot.index);
            const auto link = util_.addLink(
                levelGroups_[static_cast<std::size_t>(ring.level)],
                is_root ? params_.globalRingSpeed : 1);

            Hop hop;
            hop.index = slot.index;
            hop.link = link;
            switch (slot.kind) {
              case RingSlotDesc::Kind::Nic: {
                hop.kind = Hop::Kind::Nic;
                SlottedNic &nic = nics_[static_cast<std::size_t>(slot.index)];
                nic.downstream = &to;
                nic.downstreamComp = to_comp;
                break;
              }
              case RingSlotDesc::Kind::IriLower: {
                hop.kind = Hop::Kind::IriLower;
                SlottedIri &iri = iris_[static_cast<std::size_t>(slot.index)];
                iri.lowerDownstream = &to;
                iri.lowerDownstreamComp = to_comp;
                break;
              }
              case RingSlotDesc::Kind::IriUpper: {
                hop.kind = Hop::Kind::IriUpper;
                SlottedIri &iri = iris_[static_cast<std::size_t>(slot.index)];
                iri.upperDownstream = &to;
                iri.upperDownstreamComp = to_comp;
                break;
              }
            }
            (fast ? fastHops_ : slowHops_).push_back(hop);
        }
    }
}

std::uint32_t
SlottedRingNetwork::compOf(const Hop &hop) const
{
    const auto pms =
        static_cast<std::uint32_t>(structure_.numProcessors());
    return hop.kind == Hop::Kind::Nic
               ? static_cast<std::uint32_t>(hop.index)
               : pms + static_cast<std::uint32_t>(hop.index);
}

SlotPort &
SlottedRingNetwork::portAt(const RingSlotDesc &slot)
{
    switch (slot.kind) {
      case RingSlotDesc::Kind::Nic:
        return nics_[static_cast<std::size_t>(slot.index)].port();
      case RingSlotDesc::Kind::IriLower:
        return iris_[static_cast<std::size_t>(slot.index)].lower();
      case RingSlotDesc::Kind::IriUpper:
        return iris_[static_cast<std::size_t>(slot.index)].upper();
    }
    HRSIM_PANIC("unknown ring slot kind");
}

int
SlottedRingNetwork::numProcessors() const
{
    return structure_.numProcessors();
}

bool
SlottedRingNetwork::canInject(NodeId pm, const Packet &pkt) const
{
    HRSIM_ASSERT(pm >= 0 && pm < numProcessors());
    return nics_[static_cast<std::size_t>(pm)].canInject(pkt);
}

void
SlottedRingNetwork::inject(NodeId pm, const Packet &pkt)
{
    HRSIM_ASSERT(pm >= 0 && pm < numProcessors());
    HRSIM_ASSERT(pkt.src == pm);
    nics_[static_cast<std::size_t>(pm)].inject(pkt);
    active_.add(static_cast<std::uint32_t>(pm));
    HRSIM_TRACE_FLIT(tracer_, FlitEvent::Inject, pkt.id, pm,
                     nics_[static_cast<std::size_t>(pm)].flitCount());
}

void
SlottedRingNetwork::tick(Cycle now)
{
    const auto run = [&](const Hop &hop) {
        switch (hop.kind) {
          case Hop::Kind::Nic:
            nics_[static_cast<std::size_t>(hop.index)].evaluate(
                now, util_, hop.link);
            break;
          case Hop::Kind::IriLower:
            iris_[static_cast<std::size_t>(hop.index)].evaluateLower(
                util_, hop.link);
            break;
          case Hop::Kind::IriUpper:
            iris_[static_cast<std::size_t>(hop.index)].evaluateUpper(
                util_, hop.link);
            break;
        }
    };

    if (!activeSched_) {
        for (const Hop &hop : slowHops_)
            run(hop);

        // Commit the system-clock domain.
        for (SlottedNic &nic : nics_)
            nic.commit();
        for (std::size_t i = 0; i < iris_.size(); ++i) {
            iris_[i].commitLower();
            const bool fast =
                structure_.iris[i].parentRing == structure_.rootRing &&
                params_.globalRingSpeed > 1;
            if (!fast)
                iris_[i].commitUpper();
        }

        // Fast domain: the global ring rotates speed times per cycle.
        if (!fastHops_.empty()) {
            for (std::uint32_t sub = 0;
                 sub < params_.globalRingSpeed; ++sub) {
                for (const Hop &hop : fastHops_)
                    run(hop);
                for (std::size_t i = 0; i < iris_.size(); ++i) {
                    if (structure_.iris[i].parentRing ==
                        structure_.rootRing) {
                        iris_[i].commitUpper();
                    }
                }
            }
        }
        return;
    }

    // Active path: run the hop schedule in its usual order but skip
    // components that are asleep (empty — their evaluate is a no-op
    // and they hold no slot cell that must rotate). A component woken
    // mid-schedule may see its own hop run later in this pass; the
    // full scan runs that hop too, on the same empty visible state,
    // so both paths agree. Commits dispatch over the live set so
    // mid-tick wakes publish their staged cells.
    const auto pms =
        static_cast<std::uint32_t>(structure_.numProcessors());
    for (const Hop &hop : slowHops_) {
        if (active_.contains(compOf(hop)))
            run(hop);
    }

    for (const std::uint32_t id : active_.raw()) {
        if (id < pms) {
            nics_[id].commit();
        } else {
            const std::uint32_t i = id - pms;
            iris_[i].commitLower();
            if (!iriFast_[i])
                iris_[i].commitUpper();
        }
    }

    if (!fastHops_.empty()) {
        for (std::uint32_t sub = 0; sub < params_.globalRingSpeed;
             ++sub) {
            for (const Hop &hop : fastHops_) {
                if (active_.contains(compOf(hop)))
                    run(hop);
            }
            for (const std::uint32_t id : active_.raw()) {
                if (id >= pms && iriFast_[id - pms])
                    iris_[id - pms].commitUpper();
            }
        }
    }

    // Sleep sweep: drained components leave the set until a cell or
    // an injection wakes them again.
    active_.retain([this, pms](std::uint32_t id) {
        return id < pms ? nics_[id].flitCount() != 0
                        : iris_[id - pms].flitCount() != 0;
    });
}

void
SlottedRingNetwork::setActiveScheduling(bool enabled)
{
    activeSched_ = enabled;
    if (!enabled)
        return;
    const auto pms =
        static_cast<std::uint32_t>(structure_.numProcessors());
    for (std::uint32_t id = 0; id < pms; ++id) {
        if (nics_[id].flitCount() != 0)
            active_.add(id);
    }
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        if (iris_[i].flitCount() != 0)
            active_.add(pms + static_cast<std::uint32_t>(i));
    }
}

bool
SlottedRingNetwork::isIdle() const
{
    if (activeSched_)
        return active_.empty();
    return flitsInFlight() == 0;
}

std::size_t
SlottedRingNetwork::activeNodeCount() const
{
    return active_.size();
}

std::uint64_t
SlottedRingNetwork::flitsInFlight() const
{
    std::uint64_t count = 0;
    for (const SlottedNic &nic : nics_)
        count += nic.flitCount();
    for (const SlottedIri &iri : iris_)
        count += iri.flitCount();
    return count;
}

double
SlottedRingNetwork::levelUtilization(int level) const
{
    HRSIM_ASSERT(level >= 0 && level < structure_.numLevels);
    return util_.groupUtilization(
        levelGroups_[static_cast<std::size_t>(level)]);
}

void
SlottedRingNetwork::registerMetrics(MetricRegistry &registry) const
{
    for (int level = 0; level < structure_.numLevels; ++level) {
        registry.addGauge(
            "ring.l" + std::to_string(level) + ".util",
            [this, level]() { return levelUtilization(level); });
    }
    for (std::size_t i = 0; i < iris_.size(); ++i) {
        const int level =
            structure_
                .rings[static_cast<std::size_t>(
                    structure_.iris[i].parentRing)]
                .level;
        const std::string prefix = "ring.l" + std::to_string(level) +
                                   ".iri" + std::to_string(i);
        const SlottedIri *iri = &iris_[i];
        registry.addCounter(prefix + ".retries",
                            [iri]() { return iri->retries(); });
        registry.addGauge(prefix + ".flits", [iri]() {
            return static_cast<double>(iri->flitCount());
        });
    }
    registry.addCounter("ring.retries",
                        [this]() { return totalRetries(); });
}

std::uint64_t
SlottedRingNetwork::totalRetries() const
{
    std::uint64_t total = 0;
    for (const SlottedIri &iri : iris_)
        total += iri.retries();
    return total;
}

} // namespace hrsim
