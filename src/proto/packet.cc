#include "proto/packet.hh"

#include "common/log.hh"

namespace hrsim
{

bool
isRequest(PacketType type)
{
    return type == PacketType::ReadRequest ||
           type == PacketType::WriteRequest;
}

bool
carriesData(PacketType type)
{
    // Read responses return the line; write requests deliver it.
    return type == PacketType::ReadResponse ||
           type == PacketType::WriteRequest;
}

PacketType
responseFor(PacketType request)
{
    switch (request) {
      case PacketType::ReadRequest:
        return PacketType::ReadResponse;
      case PacketType::WriteRequest:
        return PacketType::WriteResponse;
      default:
        HRSIM_PANIC("responseFor() called on a response type");
    }
}

std::string
toString(PacketType type)
{
    switch (type) {
      case PacketType::ReadRequest:
        return "ReadRequest";
      case PacketType::ReadResponse:
        return "ReadResponse";
      case PacketType::WriteRequest:
        return "WriteRequest";
      case PacketType::WriteResponse:
        return "WriteResponse";
    }
    return "Unknown";
}

std::uint32_t
ChannelSpec::cacheLineFlits(std::uint32_t cache_line_bytes) const
{
    HRSIM_ASSERT(flitBytes > 0);
    HRSIM_ASSERT(cache_line_bytes % flitBytes == 0);
    return headerFlits + cache_line_bytes / flitBytes;
}

std::uint32_t
ChannelSpec::packetFlits(PacketType type,
                         std::uint32_t cache_line_bytes) const
{
    return carriesData(type) ? cacheLineFlits(cache_line_bytes)
                             : headerFlits;
}

Flit
makeFlit(const Packet &packet, std::uint32_t index)
{
    HRSIM_ASSERT(index < packet.sizeFlits);
    Flit flit;
    flit.packet = packet.id;
    flit.index = index;
    flit.sizeFlits = packet.sizeFlits;
    flit.dst = packet.dst;
    flit.src = packet.src;
    flit.type = packet.type;
    flit.issueCycle = packet.issueCycle;
    flit.reqId = packet.reqId;
    return flit;
}

Packet
packetFromFlit(const Flit &flit)
{
    Packet packet;
    packet.id = flit.packet;
    packet.type = flit.type;
    packet.src = flit.src;
    packet.dst = flit.dst;
    packet.sizeFlits = flit.sizeFlits;
    packet.issueCycle = flit.issueCycle;
    packet.reqId = flit.reqId;
    return packet;
}

} // namespace hrsim
