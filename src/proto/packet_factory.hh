/**
 * @file
 * Constructs correctly-sized packets for a given network geometry.
 */

#ifndef HRSIM_PROTO_PACKET_FACTORY_HH
#define HRSIM_PROTO_PACKET_FACTORY_HH

#include "common/log.hh"
#include "common/types.hh"
#include "proto/packet.hh"

namespace hrsim
{

/**
 * Stamps out request and response packets with sizes determined by
 * the channel geometry and cache-line size, assigning fresh ids.
 */
class PacketFactory
{
  public:
    PacketFactory(ChannelSpec spec, std::uint32_t cache_line_bytes)
        : spec_(spec), cacheLineBytes_(cache_line_bytes)
    {
        HRSIM_ASSERT(cache_line_bytes > 0);
    }

    /** Create a read or write request from @a src to @a dst. */
    Packet
    makeRequest(NodeId src, NodeId dst, bool is_read, Cycle now)
    {
        Packet pkt;
        pkt.id = nextId_++;
        pkt.type = is_read ? PacketType::ReadRequest
                           : PacketType::WriteRequest;
        pkt.src = src;
        pkt.dst = dst;
        pkt.sizeFlits = spec_.packetFlits(pkt.type, cacheLineBytes_);
        pkt.issueCycle = now;
        return pkt;
    }

    /** Create the response matching @a request (latency is carried). */
    Packet
    makeResponse(const Packet &request)
    {
        Packet pkt;
        pkt.id = nextId_++;
        pkt.type = responseFor(request.type);
        pkt.src = request.dst;
        pkt.dst = request.src;
        pkt.sizeFlits = spec_.packetFlits(pkt.type, cacheLineBytes_);
        pkt.issueCycle = request.issueCycle;
        pkt.reqId = request.id;
        return pkt;
    }

    const ChannelSpec &spec() const { return spec_; }
    std::uint32_t cacheLineBytes() const { return cacheLineBytes_; }

    /** Flits in a cache-line packet (the paper's "cl"). */
    std::uint32_t
    cacheLineFlits() const
    {
        return spec_.cacheLineFlits(cacheLineBytes_);
    }

    /** Next id to be assigned, for checkpointing. */
    PacketId nextId() const { return nextId_; }

    /** Restore the id cursor captured by nextId(). */
    void setNextId(PacketId id) { nextId_ = id; }

  private:
    ChannelSpec spec_;
    std::uint32_t cacheLineBytes_;
    PacketId nextId_ = 1;
};

} // namespace hrsim

#endif // HRSIM_PROTO_PACKET_FACTORY_HH
