/**
 * @file
 * Packets and flits of the simulated memory-access protocol.
 *
 * Four packet types are simulated, as in the paper: read request,
 * read response, write request and write response. Packets are
 * variable-sized and travel as contiguous sequences of flits. Sizing
 * follows Section 2 of the paper exactly:
 *
 *  - Rings: 128-bit (16 B) channels, 1-flit headers. A packet that
 *    carries a cache line is 1 + line/16 flits (2/3/5/9 flits for
 *    16/32/64/128 B lines); header-only packets are 1 flit.
 *  - Meshes: 32-bit (4 B) channels, 4-flit headers. Cache-line
 *    packets are 4 + line/4 flits (8/12/20/36); header-only packets
 *    are 4 flits.
 *
 * No distinction is made between phits and flits.
 */

#ifndef HRSIM_PROTO_PACKET_HH
#define HRSIM_PROTO_PACKET_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace hrsim
{

/** The four simulated packet types. */
enum class PacketType : std::uint8_t
{
    ReadRequest,
    ReadResponse,
    WriteRequest,
    WriteResponse,
};

/** True for the two request types. */
bool isRequest(PacketType type);

/** True for packet types that carry a cache line of data. */
bool carriesData(PacketType type);

/** Response type matching a request type. */
PacketType responseFor(PacketType request);

/** Human-readable name, for traces and tests. */
std::string toString(PacketType type);

/** Channel geometry of a network, fixing flit and header sizes. */
struct ChannelSpec
{
    std::uint32_t flitBytes;   //!< channel (data path) width in bytes
    std::uint32_t headerFlits; //!< flits consumed by the packet header

    /** The ring spec from the paper: 128-bit channel, 1-flit header. */
    static ChannelSpec ring() { return {16, 1}; }

    /** The mesh spec from the paper: 32-bit channel, 4-flit header. */
    static ChannelSpec mesh() { return {4, 4}; }

    /** Flits in a packet of @a type for @a cache_line_bytes lines. */
    std::uint32_t packetFlits(PacketType type,
                              std::uint32_t cache_line_bytes) const;

    /** Flits in a packet carrying a cache line (the paper's "cl"). */
    std::uint32_t cacheLineFlits(std::uint32_t cache_line_bytes) const;
};

/**
 * Metadata of one in-flight packet. The simulator is flit-accurate
 * but data-free: packets carry no payload bytes, only sizes.
 */
struct Packet
{
    PacketId id = 0;
    PacketType type = PacketType::ReadRequest;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    std::uint32_t sizeFlits = 0;
    /** Cycle the original request was issued (for round-trip time). */
    Cycle issueCycle = 0;
    /**
     * Id of the request packet a response answers (0 for requests).
     * Lets a processor with a retry engine match a response to the
     * pending transaction even after the request was reissued under
     * a different packet id.
     */
    PacketId reqId = 0;
};

/**
 * One flit in flight. Every flit carries the metadata of its packet
 * (destination, source, type, size, issue time); only head flits
 * would in hardware, but replicating the fields keeps the simulator
 * simple and lets the receiver rebuild the Packet without a central
 * in-flight registry.
 */
struct Flit
{
    PacketId packet = 0;
    std::uint32_t index = 0;     //!< position within the packet
    std::uint32_t sizeFlits = 0; //!< total flits in the packet
    NodeId dst = invalidNode;
    NodeId src = invalidNode;
    PacketType type = PacketType::ReadRequest;
    Cycle issueCycle = 0;        //!< issue time of the original request
    PacketId reqId = 0;          //!< answered request id (responses)
    /** Remaining ring hops of a broadcast cell (slotted mode). */
    std::uint16_t ttl = 0;
    /**
     * Header corrupted by a fault window. The flag is sticky for the
     * whole worm (the head's poisoning spreads to every flit behind
     * it at the faulted link) and makes the receiver drop the packet
     * at ejection instead of delivering it.
     */
    bool poisoned = false;

    bool isHead() const { return index == 0; }
    bool isTail() const { return index + 1 == sizeFlits; }
    bool isBroadcast() const { return dst == broadcastNode; }
};

/** Rebuild packet metadata from any of its flits. */
Packet packetFromFlit(const Flit &flit);

/** Build the @a index-th flit of @a packet. */
Flit makeFlit(const Packet &packet, std::uint32_t index);

} // namespace hrsim

#endif // HRSIM_PROTO_PACKET_HH
