/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration); it throws a
 * ConfigError so that library embedders and tests can recover.
 * panic() is for internal invariant violations (simulator bugs); it
 * aborts after printing a diagnostic.
 */

#ifndef HRSIM_COMMON_LOG_HH
#define HRSIM_COMMON_LOG_HH

#include <stdexcept>
#include <string>

namespace hrsim
{

/** Exception thrown for invalid user-supplied configuration. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Report a user error. Throws ConfigError; never returns normally.
 *
 * @param msg Description of the configuration problem.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal simulator bug and abort.
 *
 * @param msg Description of the violated invariant.
 * @param file Source file of the failing check.
 * @param line Source line of the failing check.
 */
[[noreturn]] void panicImpl(const char *msg, const char *file, int line);

/** Print a warning to stderr and continue. */
void warn(const std::string &msg);

} // namespace hrsim

/** Abort with a diagnostic when an internal invariant is violated. */
#define HRSIM_PANIC(msg) ::hrsim::panicImpl((msg), __FILE__, __LINE__)

/** Check an internal invariant; panic with the stringified condition. */
#define HRSIM_ASSERT(cond)                                                  \
    do {                                                                    \
        if (!(cond))                                                        \
            ::hrsim::panicImpl("assertion failed: " #cond,                  \
                               __FILE__, __LINE__);                         \
    } while (0)

#endif // HRSIM_COMMON_LOG_HH
