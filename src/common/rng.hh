/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * The paper drove its simulator with the smpl library's generator; we
 * use xoshiro256** seeded through splitmix64, which is fast, has a
 * 2^256-1 period, and passes BigCrush. Every traffic source owns an
 * independent stream derived from (master seed, stream id), so runs
 * are reproducible and insensitive to the order in which components
 * draw numbers.
 */

#ifndef HRSIM_COMMON_RNG_HH
#define HRSIM_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace hrsim
{

/** splitmix64 step; used to expand seeds into full state. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** generator with convenience distributions.
 */
class Rng
{
  public:
    /** Seed a stream: same (seed, stream) always yields same draws. */
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial with probability p of true. */
    bool bernoulli(double p);

    /** Raw generator state, for checkpointing. */
    const std::array<std::uint64_t, 4> &state() const { return s_; }

    /** Restore a state captured by state(). */
    void setState(const std::array<std::uint64_t, 4> &s) { s_ = s; }

  private:
    std::array<std::uint64_t, 4> s_;
};

} // namespace hrsim

#endif // HRSIM_COMMON_RNG_HH
