/**
 * @file
 * Growable power-of-two ring buffer with deque front/back semantics.
 *
 * Replaces std::deque for the small FIFO queues on the simulation hot
 * path (processor local-hit completions, memory completion queues,
 * trace replay queues): a std::deque allocates its map and first
 * block lazily and chases a pointer per access, while a RingDeque is
 * one contiguous allocation indexed with a mask. Capacity grows by
 * doubling and never shrinks; typical queues are bounded by the
 * outstanding limit T, so after warm-up no allocation ever happens.
 */

#ifndef HRSIM_COMMON_RING_DEQUE_HH
#define HRSIM_COMMON_RING_DEQUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace hrsim
{

template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Ensure room for @a n elements without reallocation. */
    void
    reserve(std::size_t n)
    {
        if (n > store_.size())
            grow(n);
    }

    void
    push_back(T value)
    {
        if (size_ == store_.size())
            grow(size_ + 1);
        store_[(head_ + size_) & mask_] = std::move(value);
        ++size_;
    }

    T &
    front()
    {
        HRSIM_ASSERT(size_ > 0);
        return store_[head_];
    }

    const T &
    front() const
    {
        HRSIM_ASSERT(size_ > 0);
        return store_[head_];
    }

    void
    pop_front()
    {
        HRSIM_ASSERT(size_ > 0);
        store_[head_] = T{};
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /**
     * The @a i-th oldest element (0 = front()). Read-only peek for
     * checkpointing: saves walk in FIFO order and loads re-pack via
     * push_back(), so the physical layout never reaches a snapshot.
     */
    const T &
    at(std::size_t i) const
    {
        HRSIM_ASSERT(i < size_);
        return store_[(head_ + i) & mask_];
    }

    void
    clear()
    {
        store_.clear();
        head_ = 0;
        size_ = 0;
        mask_ = 0;
    }

  private:
    void
    grow(std::size_t min_capacity)
    {
        std::size_t cap = store_.empty() ? 8 : store_.size() * 2;
        while (cap < min_capacity)
            cap *= 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(store_[(head_ + i) & mask_]);
        store_ = std::move(next);
        head_ = 0;
        mask_ = cap - 1;
    }

    std::vector<T> store_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
};

} // namespace hrsim

#endif // HRSIM_COMMON_RING_DEQUE_HH
