/**
 * @file
 * Contiguous in-place storage for non-movable simulation components.
 *
 * The per-cycle tick loops sweep every network component (NICs, IRIs,
 * mesh routers) once or more per simulated cycle. Holding them as
 * std::vector<std::unique_ptr<T>> costs a pointer chase per component
 * per phase and scatters the objects across the heap; at saturation
 * the sweep is cache-footprint-bound, so adjacency matters as much as
 * the per-object work. The components themselves are deliberately
 * non-copyable and non-movable (they hold references into their own
 * members and raw pointers into siblings installed by post-construction
 * wiring), which rules out std::vector<T> — its emplace_back requires
 * movability for reallocation even when capacity is reserved.
 *
 * StablePool<T> is the minimal container that fits: one contiguous
 * allocation sized by reserve(), elements placement-new'ed in order by
 * emplace_back(), addresses stable for the container's lifetime, no
 * growth past the reservation (asserted). Iteration is over plain T*,
 * so the tick loops stride linearly through memory.
 */

#ifndef HRSIM_COMMON_STABLE_POOL_HH
#define HRSIM_COMMON_STABLE_POOL_HH

#include <cstddef>
#include <new>
#include <utility>

#include "common/log.hh"

namespace hrsim
{

template <typename T>
class StablePool
{
  public:
    StablePool() = default;

    StablePool(const StablePool &) = delete;
    StablePool &operator=(const StablePool &) = delete;
    StablePool(StablePool &&) = delete;
    StablePool &operator=(StablePool &&) = delete;

    ~StablePool()
    {
        clear();
        operator delete[](raw_, std::align_val_t{alignof(T)});
    }

    /**
     * Allocate storage for exactly @a n elements. Must be called
     * before the first emplace_back() and only on an empty pool.
     */
    void
    reserve(std::size_t n)
    {
        HRSIM_ASSERT(size_ == 0 && capacity_ == 0);
        if (n == 0)
            return;
        raw_ = static_cast<unsigned char *>(operator new[](
            n * sizeof(T), std::align_val_t{alignof(T)}));
        capacity_ = n;
    }

    /** Construct the next element in place; never reallocates. */
    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        HRSIM_ASSERT(size_ < capacity_);
        T *slot = new (raw_ + size_ * sizeof(T))
            T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    /** Destroy all elements (storage stays for the pool's lifetime). */
    void
    clear()
    {
        for (std::size_t i = size_; i > 0; --i)
            data()[i - 1].~T();
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T *data() { return std::launder(reinterpret_cast<T *>(raw_)); }
    const T *
    data() const
    {
        return std::launder(reinterpret_cast<const T *>(raw_));
    }

    T &
    operator[](std::size_t i)
    {
        HRSIM_ASSERT(i < size_);
        return data()[i];
    }

    const T &
    operator[](std::size_t i) const
    {
        HRSIM_ASSERT(i < size_);
        return data()[i];
    }

    T *begin() { return data(); }
    T *end() { return data() + size_; }
    const T *begin() const { return data(); }
    const T *end() const { return data() + size_; }

  private:
    unsigned char *raw_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace hrsim

#endif // HRSIM_COMMON_STABLE_POOL_HH
