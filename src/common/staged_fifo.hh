/**
 * @file
 * Bounded FIFO with two-phase (staged) cycle semantics.
 *
 * All hrsim network components exchange flits through StagedFifo
 * queues. The queue models a synchronous hardware FIFO evaluated with
 * a propose/commit discipline:
 *
 *  - push() stages an element; it becomes visible to the consumer only
 *    after the end-of-cycle commit().
 *  - pop() removes an element immediately for the consumer, but the
 *    slot it frees is not usable by producers until commit(). This is
 *    the registered-flow-control behaviour of a hardware FIFO whose
 *    "full" flag is sampled at the clock edge.
 *  - canPush() therefore answers "may a producer insert this cycle"
 *    against the start-of-cycle occupancy plus already-staged pushes.
 *
 * With these rules, the result of a simulated cycle is independent of
 * the order in which components are evaluated, provided each queue has
 * a single producer and a single consumer per cycle (asserted).
 *
 * Storage is a single ring buffer fixed at setCapacity(): these
 * queues sit on the simulator's per-cycle hot path (every flit of
 * every packet moves through several of them), so steady-state
 * operation performs no heap allocation at all. Queues up to
 * InlineCap elements live in an in-object small buffer — no heap
 * allocation even at construction, and the flits stay on the same
 * cache lines as the queue bookkeeping; deeper queues either make
 * one heap allocation or, via the setCapacity(capacity, T*)
 * overload, borrow caller-provided storage (the mesh network's
 * per-router arena). InlineCap is a per-use-site tuning knob: the
 * shallow ring-network queues (<= 5 flits at the benchmarked
 * cache-line sizes) benefit from the locality, while the mesh router
 * uses InlineCap = 0 with arena storage — six in-object buffers per
 * router would bloat the object past what its per-cycle sweep can
 * hold in cache (measured slower).
 * Visible and staged elements share the ring: staged pushes are
 * appended after the visible region and commit() simply extends the
 * visible count. The canPush() accounting (start-of-cycle visible +
 * staged < capacity) guarantees the writer can never overrun the
 * reader even though popped slots are reused physically before
 * commit().
 *
 * Counter ownership (the parallel-tick contract, DESIGN.md §15):
 * `visible` is *frozen* for the whole cycle — pops advance `head` and
 * bump `poppedThisCycle` instead of decrementing it, and commit()
 * folds both deltas back in. The consumer-side live size is
 * visible - poppedThisCycle (identical to the pre-freeze live count),
 * and the producer-side occupancy is visible + staged (identical to
 * the old visible + popped + staged sum). The point of the split:
 * during the evaluate phase every field a *producer* reads (capacity,
 * visible, tail, staged) is either frozen or written only by that
 * producer, and every field the *consumer* touches (head,
 * poppedThisCycle) is read only by the consumer — so a queue whose
 * producer and consumer sit in different tick shards needs no atomics
 * to stay race-free and bit-identical.
 */

#ifndef HRSIM_COMMON_STAGED_FIFO_HH
#define HRSIM_COMMON_STAGED_FIFO_HH

#include <array>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace hrsim
{

template <typename T, std::size_t InlineCap = 6>
class StagedFifo
{
  public:
    /** Queues at most this deep use the in-object small buffer. */
    static constexpr std::size_t inlineCapacity = InlineCap;

    /** Construct a FIFO holding at most @a capacity elements. */
    explicit StagedFifo(std::size_t capacity = 0)
    {
        setCapacity(capacity);
    }

    // Non-copyable/non-movable: ext_ may alias heap_'s buffer (or a
    // caller's arena), which a memberwise copy would leave dangling.
    // Every queue in the simulator is a pinned member of a pinned
    // component, so relocation is never needed.
    StagedFifo(const StagedFifo &) = delete;
    StagedFifo &operator=(const StagedFifo &) = delete;
    StagedFifo(StagedFifo &&) = delete;
    StagedFifo &operator=(StagedFifo &&) = delete;

    /** Change the capacity; only legal on an empty queue. */
    void
    setCapacity(std::size_t capacity)
    {
        HRSIM_ASSERT(visible_ == poppedThisCycle_ && staged_ == 0);
        capacity_ = static_cast<std::uint32_t>(capacity);
        heap_.clear();
        ext_ = nullptr;
        if (capacity_ > inlineCapacity) {
            heap_.resize(capacity_);
            ext_ = heap_.data();
        }
        head_ = 0;
        tail_ = 0;
        visible_ = 0;
        poppedThisCycle_ = 0;
    }

    /**
     * Like setCapacity(), but places element storage in
     * caller-provided memory holding at least @a capacity elements
     * (e.g. a network-wide arena that keeps one component's queues on
     * adjacent cache lines). The caller keeps ownership and must keep
     * the storage alive for the queue's lifetime. Only meaningful
     * beyond the inline capacity; at or below it the small buffer is
     * used as usual.
     */
    void
    setCapacity(std::size_t capacity, T *storage)
    {
        HRSIM_ASSERT(visible_ == poppedThisCycle_ && staged_ == 0);
        HRSIM_ASSERT(storage != nullptr);
        capacity_ = static_cast<std::uint32_t>(capacity);
        heap_.clear();
        ext_ = capacity_ > inlineCapacity ? storage : nullptr;
        head_ = 0;
        tail_ = 0;
        visible_ = 0;
        poppedThisCycle_ = 0;
    }

    std::size_t capacity() const { return capacity_; }

    /** Elements still visible to the consumer this cycle. */
    std::size_t size() const { return visible_ - poppedThisCycle_; }

    bool empty() const { return visible_ == poppedThisCycle_; }

    /**
     * Occupancy as seen by a producer: start-of-cycle visible
     * elements (pops free slots only at commit) plus staged pushes.
     */
    std::size_t
    producerOccupancy() const
    {
        return visible_ + staged_;
    }

    /** May a producer stage an element this cycle? */
    bool canPush() const { return producerOccupancy() < capacity_; }

    /** Free producer slots remaining this cycle. */
    std::size_t
    producerSpace() const
    {
        const std::size_t occ = producerOccupancy();
        return occ >= capacity_ ? 0 : capacity_ - occ;
    }

    /** Stage an element; visible to the consumer after commit(). */
    void
    push(T value)
    {
        HRSIM_ASSERT(canPush());
        data()[tail_] = std::move(value);
        tail_ = advance(tail_);
        ++staged_;
    }

    /**
     * Stage a copy of @a value. Same semantics as push(), but takes
     * the element by reference so forwarding a flit from one queue's
     * front into the next queue is a single element copy (push() by
     * value costs a copy into the parameter plus a move into the
     * slot, and T here is a plain struct whose move is a copy).
     */
    void
    pushFrom(const T &value)
    {
        HRSIM_ASSERT(canPush());
        data()[tail_] = value;
        tail_ = advance(tail_);
        ++staged_;
    }

    /** Oldest visible element. Queue must be non-empty. */
    const T &
    front() const
    {
        HRSIM_ASSERT(visible_ > poppedThisCycle_);
        return data()[head_];
    }

    /**
     * Remove the oldest visible element without returning it (the
     * copy-free half of pop() for callers that already read front()).
     */
    void
    dropFront()
    {
        HRSIM_ASSERT(visible_ > poppedThisCycle_);
        head_ = advance(head_);
        ++poppedThisCycle_;
    }

    /** Remove and return the oldest visible element. */
    T
    pop()
    {
        HRSIM_ASSERT(visible_ > poppedThisCycle_);
        T value = std::move(data()[head_]);
        head_ = advance(head_);
        ++poppedThisCycle_;
        return value;
    }

    /** End-of-cycle commit: publish pushes, recycle popped slots. */
    void
    commit()
    {
        // Early-out keeps the common idle commit read-only: the
        // per-cycle sweep commits every queue of every awake
        // component, and most saw no traffic this cycle.
        if ((staged_ | poppedThisCycle_) == 0)
            return;
        visible_ += staged_;
        visible_ -= poppedThisCycle_;
        staged_ = 0;
        poppedThisCycle_ = 0;
    }

    /** Discard all contents (visible and staged). */
    void
    clear()
    {
        head_ = 0;
        tail_ = 0;
        visible_ = 0;
        staged_ = 0;
        poppedThisCycle_ = 0;
    }

    /** Total elements in the queue including staged ones. */
    std::size_t
    totalSize() const
    {
        return visible_ - poppedThisCycle_ + staged_;
    }

    /**
     * The @a i-th oldest visible element (0 = front()). Read-only
     * peek for checkpointing: a tick-boundary save walks the visible
     * region in FIFO order and re-packs it on load, so the physical
     * head/tail positions never reach the snapshot.
     */
    const T &
    at(std::size_t i) const
    {
        HRSIM_ASSERT(i < size());
        std::uint32_t index =
            head_ + static_cast<std::uint32_t>(i);
        if (index >= capacity_)
            index -= capacity_;
        return data()[index];
    }

  private:
    std::uint32_t
    advance(std::uint32_t index) const
    {
        return index + 1 == capacity_ ? 0 : index + 1;
    }

    T *
    data()
    {
        return capacity_ <= inlineCapacity ? inline_.data() : ext_;
    }

    const T *
    data() const
    {
        return capacity_ <= inlineCapacity ? inline_.data() : ext_;
    }

    // Hot bookkeeping first: the six counters plus the storage
    // pointer fit in 32 bytes, so the per-cycle state of a queue
    // (and usually its siblings in the same component) lands on one
    // cache line instead of straddling several. uint32 indices are
    // ample — capacities are a few dozen flits.
    std::uint32_t capacity_ = 0;
    std::uint32_t head_ = 0; //!< oldest visible element
    std::uint32_t tail_ = 0; //!< next write position
    std::uint32_t visible_ = 0;
    std::uint32_t staged_ = 0;
    std::uint32_t poppedThisCycle_ = 0;
    T *ext_ = nullptr; //!< beyond-inline storage (heap_ or external)
    std::vector<T> heap_; //!< owned storage when none was provided
    std::array<T, inlineCapacity> inline_{};
};

/**
 * The hot cursor block of one ColumnFifo: the six per-cycle counters
 * of the staged-FIFO discipline, extracted into a 24-byte POD so a
 * network can hold all its queues' cursors in one contiguous column
 * (see sim/columns.hh). The end-of-cycle commit sweep then walks the
 * column linearly — e.g. a mesh router's six queues commit from
 * ~144 contiguous bytes instead of six spans of a ~600-byte object —
 * and a neighbor's canPush() probe reads the same hot lines.
 */
struct FifoState
{
    std::uint32_t capacity = 0;
    std::uint32_t head = 0; //!< oldest visible element
    std::uint32_t tail = 0; //!< next write position
    std::uint32_t visible = 0;
    std::uint32_t staged = 0;
    std::uint32_t poppedThisCycle = 0;

    /** End-of-cycle commit: publish pushes, recycle popped slots. */
    void
    commit()
    {
        // Same read-only early-out as StagedFifo::commit(): most
        // queues saw no traffic this cycle.
        if ((staged | poppedThisCycle) == 0)
            return;
        visible += staged;
        visible -= poppedThisCycle;
        staged = 0;
        poppedThisCycle = 0;
    }
};

/**
 * Flat two-pointer handle onto a ColumnFifo's cursor block and
 * element storage. The per-cycle streaming loops cache one of these
 * per crossbar output (source queue and peer buffer), so each
 * streamed flit costs two direct pointer loads instead of chasing
 * fifo-object -> cursor-block -> field chains. Semantics of every
 * operation match ColumnFifo exactly (same accounting, same
 * assertions) — a view is the same queue seen through fewer hops.
 * Views are invalidated by bindState()/setCapacity() on the
 * underlying queue; all callers re-cache after column binding.
 */
template <typename T>
struct FifoView
{
    FifoState *st = nullptr;
    T *ext = nullptr;

    bool valid() const { return st != nullptr; }
    bool empty() const { return st->visible == st->poppedThisCycle; }

    const T &
    front() const
    {
        HRSIM_ASSERT(st->visible > st->poppedThisCycle);
        return ext[st->head];
    }

    // dropFront()/pushFrom() are const: they mutate the pointed-to
    // queue, not the view, so a by-value view copy can stream.
    void
    dropFront() const
    {
        HRSIM_ASSERT(st->visible > st->poppedThisCycle);
        st->head = st->head + 1 == st->capacity ? 0 : st->head + 1;
        ++st->poppedThisCycle;
    }

    bool
    canPush() const
    {
        return st->visible + st->staged < st->capacity;
    }

    void
    pushFrom(const T &value) const
    {
        HRSIM_ASSERT(canPush());
        ext[st->tail] = value;
        st->tail = st->tail + 1 == st->capacity ? 0 : st->tail + 1;
        ++st->staged;
    }

    std::size_t
    totalSize() const
    {
        return st->visible - st->poppedThisCycle + st->staged;
    }
};

/**
 * StagedFifo variant whose cursor block can be hoisted into a
 * network-owned FifoState column. Semantics are identical to
 * StagedFifo (same propose/commit discipline, same accounting, same
 * assertions); the cursors default to a heap-allocated block (the
 * HRSIM_NO_COLUMNAR oracle layout) until bindState() repoints them.
 * Element storage is never inline: columnar users (the mesh router)
 * already place elements in a caller arena, and keeping the payload
 * out of the object is what lets the commit sweep touch columns only.
 * The shell itself is deliberately slim — two hot pointers plus two
 * cold owners, 32 bytes — so six of them don't spread a router's
 * other hot fields across extra cache lines the way an in-object
 * cursor block would (measured: that bloat cost more than the whole
 * columnar win on the saturated mesh).
 */
template <typename T>
class ColumnFifo
{
  public:
    explicit ColumnFifo(std::size_t capacity = 0)
        : ownSt_(new FifoState), st_(ownSt_.get())
    {
        setCapacity(capacity);
    }

    // Non-copyable/non-movable: ext_ may alias heap_'s buffer or a
    // caller arena, and st_ may point into a network column.
    ColumnFifo(const ColumnFifo &) = delete;
    ColumnFifo &operator=(const ColumnFifo &) = delete;
    ColumnFifo(ColumnFifo &&) = delete;
    ColumnFifo &operator=(ColumnFifo &&) = delete;

    /**
     * Hoist the cursor block into @a state (a network column slot):
     * current values move over, then every operation reads and
     * writes the new storage. Call once at setup, before traffic.
     */
    void
    bindState(FifoState *state)
    {
        *state = *st_;
        st_ = state;
        ownSt_.reset(); // cursors live in the column from here on
    }

    /** Change the capacity; only legal on an empty queue. */
    void
    setCapacity(std::size_t capacity)
    {
        HRSIM_ASSERT(st_->visible == st_->poppedThisCycle &&
                     st_->staged == 0);
        st_->capacity = static_cast<std::uint32_t>(capacity);
        ownBuf_.reset(capacity != 0 ? new T[capacity] : nullptr);
        ext_ = ownBuf_.get();
        st_->head = 0;
        st_->tail = 0;
        st_->visible = 0;
        st_->poppedThisCycle = 0;
    }

    /** Like setCapacity(), but with caller-provided element storage
     *  (see StagedFifo::setCapacity(capacity, T*)). */
    void
    setCapacity(std::size_t capacity, T *storage)
    {
        HRSIM_ASSERT(st_->visible == st_->poppedThisCycle &&
                     st_->staged == 0);
        HRSIM_ASSERT(storage != nullptr);
        st_->capacity = static_cast<std::uint32_t>(capacity);
        ownBuf_.reset();
        ext_ = storage;
        st_->head = 0;
        st_->tail = 0;
        st_->visible = 0;
        st_->poppedThisCycle = 0;
    }

    std::size_t capacity() const { return st_->capacity; }

    /** Elements still visible to the consumer this cycle. */
    std::size_t
    size() const
    {
        return st_->visible - st_->poppedThisCycle;
    }

    bool
    empty() const
    {
        return st_->visible == st_->poppedThisCycle;
    }

    /** Producer-visible occupancy (see StagedFifo). */
    std::size_t
    producerOccupancy() const
    {
        return st_->visible + st_->staged;
    }

    /** May a producer stage an element this cycle? */
    bool
    canPush() const
    {
        return producerOccupancy() < st_->capacity;
    }

    /** Free producer slots remaining this cycle. */
    std::size_t
    producerSpace() const
    {
        const std::size_t occ = producerOccupancy();
        return occ >= st_->capacity ? 0 : st_->capacity - occ;
    }

    /** Stage an element; visible to the consumer after commit(). */
    void
    push(T value)
    {
        HRSIM_ASSERT(canPush());
        ext_[st_->tail] = std::move(value);
        st_->tail = advance(st_->tail);
        ++st_->staged;
    }

    /** Stage a copy of @a value (see StagedFifo::pushFrom). */
    void
    pushFrom(const T &value)
    {
        HRSIM_ASSERT(canPush());
        ext_[st_->tail] = value;
        st_->tail = advance(st_->tail);
        ++st_->staged;
    }

    /** Oldest visible element. Queue must be non-empty. */
    const T &
    front() const
    {
        HRSIM_ASSERT(st_->visible > st_->poppedThisCycle);
        return ext_[st_->head];
    }

    /** Remove the oldest visible element without returning it. */
    void
    dropFront()
    {
        HRSIM_ASSERT(st_->visible > st_->poppedThisCycle);
        st_->head = advance(st_->head);
        ++st_->poppedThisCycle;
    }

    /** Remove and return the oldest visible element. */
    T
    pop()
    {
        HRSIM_ASSERT(st_->visible > st_->poppedThisCycle);
        T value = std::move(ext_[st_->head]);
        st_->head = advance(st_->head);
        ++st_->poppedThisCycle;
        return value;
    }

    /** End-of-cycle commit: publish pushes, recycle popped slots. */
    void commit() { st_->commit(); }

    /** Discard all contents (visible and staged). */
    void
    clear()
    {
        st_->head = 0;
        st_->tail = 0;
        st_->visible = 0;
        st_->staged = 0;
        st_->poppedThisCycle = 0;
    }

    /** Total elements in the queue including staged ones. */
    std::size_t
    totalSize() const
    {
        return st_->visible - st_->poppedThisCycle + st_->staged;
    }

    /** The @a i-th oldest visible element (see StagedFifo::at). */
    const T &
    at(std::size_t i) const
    {
        HRSIM_ASSERT(i < size());
        std::uint32_t index =
            st_->head + static_cast<std::uint32_t>(i);
        if (index >= st_->capacity)
            index -= st_->capacity;
        return ext_[index];
    }

    /** Flat handle onto this queue (see FifoView). Re-acquire after
     *  bindState() or setCapacity(). */
    FifoView<T> view() { return FifoView<T>{st_, ext_}; }

  private:
    std::uint32_t
    advance(std::uint32_t index) const
    {
        return index + 1 == st_->capacity ? 0 : index + 1;
    }

    std::unique_ptr<FifoState> ownSt_; //!< oracle cursor storage
    FifoState *st_;                    //!< live cursor block
    T *ext_ = nullptr;          //!< element storage (owned or arena)
    std::unique_ptr<T[]> ownBuf_; //!< owned storage when none given
};

} // namespace hrsim

#endif // HRSIM_COMMON_STAGED_FIFO_HH
