/**
 * @file
 * Bounded FIFO with two-phase (staged) cycle semantics.
 *
 * All hrsim network components exchange flits through StagedFifo
 * queues. The queue models a synchronous hardware FIFO evaluated with
 * a propose/commit discipline:
 *
 *  - push() stages an element; it becomes visible to the consumer only
 *    after the end-of-cycle commit().
 *  - pop() removes an element immediately for the consumer, but the
 *    slot it frees is not usable by producers until commit(). This is
 *    the registered-flow-control behaviour of a hardware FIFO whose
 *    "full" flag is sampled at the clock edge.
 *  - canPush() therefore answers "may a producer insert this cycle"
 *    against the start-of-cycle occupancy plus already-staged pushes.
 *
 * With these rules, the result of a simulated cycle is independent of
 * the order in which components are evaluated, provided each queue has
 * a single producer and a single consumer per cycle (asserted).
 *
 * Storage is a single ring buffer fixed at setCapacity(): these
 * queues sit on the simulator's per-cycle hot path (every flit of
 * every packet moves through several of them), so steady-state
 * operation performs no heap allocation at all. Queues up to
 * InlineCap elements live in an in-object small buffer — no heap
 * allocation even at construction, and the flits stay on the same
 * cache lines as the queue bookkeeping; deeper queues fall back to
 * one heap allocation. InlineCap is a per-use-site tuning knob: the
 * shallow ring-network queues (<= 5 flits at the benchmarked
 * cache-line sizes) benefit from the locality, while the mesh router
 * uses InlineCap = 0 — six queues per router would bloat the object
 * past what its per-cycle sweep can hold in cache (measured slower).
 * Visible and staged elements share the ring: staged pushes are
 * appended after the visible region and commit() simply extends the
 * visible count. The canPush() accounting (visible +
 * popped-this-cycle + staged < capacity) guarantees the writer can
 * never overrun the reader even though popped slots are reused
 * physically before commit().
 */

#ifndef HRSIM_COMMON_STAGED_FIFO_HH
#define HRSIM_COMMON_STAGED_FIFO_HH

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace hrsim
{

template <typename T, std::size_t InlineCap = 6>
class StagedFifo
{
  public:
    /** Queues at most this deep use the in-object small buffer. */
    static constexpr std::size_t inlineCapacity = InlineCap;

    /** Construct a FIFO holding at most @a capacity elements. */
    explicit StagedFifo(std::size_t capacity = 0)
    {
        setCapacity(capacity);
    }

    /** Change the capacity; only legal on an empty queue. */
    void
    setCapacity(std::size_t capacity)
    {
        HRSIM_ASSERT(visible_ == 0 && staged_ == 0);
        capacity_ = capacity;
        heap_.clear();
        if (capacity_ > inlineCapacity)
            heap_.resize(capacity_);
        head_ = 0;
        tail_ = 0;
        poppedThisCycle_ = 0;
    }

    std::size_t capacity() const { return capacity_; }

    /** Elements visible to the consumer this cycle. */
    std::size_t size() const { return visible_; }

    bool empty() const { return visible_ == 0; }

    /**
     * Occupancy as seen by a producer: visible elements, plus slots
     * freed by pops this cycle (not yet reusable), plus staged pushes.
     */
    std::size_t
    producerOccupancy() const
    {
        return visible_ + poppedThisCycle_ + staged_;
    }

    /** May a producer stage an element this cycle? */
    bool canPush() const { return producerOccupancy() < capacity_; }

    /** Free producer slots remaining this cycle. */
    std::size_t
    producerSpace() const
    {
        const std::size_t occ = producerOccupancy();
        return occ >= capacity_ ? 0 : capacity_ - occ;
    }

    /** Stage an element; visible to the consumer after commit(). */
    void
    push(T value)
    {
        HRSIM_ASSERT(canPush());
        data()[tail_] = std::move(value);
        tail_ = advance(tail_);
        ++staged_;
    }

    /** Oldest visible element. Queue must be non-empty. */
    const T &
    front() const
    {
        HRSIM_ASSERT(visible_ > 0);
        return data()[head_];
    }

    /** Remove and return the oldest visible element. */
    T
    pop()
    {
        HRSIM_ASSERT(visible_ > 0);
        T value = std::move(data()[head_]);
        head_ = advance(head_);
        --visible_;
        ++poppedThisCycle_;
        return value;
    }

    /** End-of-cycle commit: publish pushes, recycle popped slots. */
    void
    commit()
    {
        visible_ += staged_;
        staged_ = 0;
        poppedThisCycle_ = 0;
    }

    /** Discard all contents (visible and staged). */
    void
    clear()
    {
        head_ = 0;
        tail_ = 0;
        visible_ = 0;
        staged_ = 0;
        poppedThisCycle_ = 0;
    }

    /** Total elements in the queue including staged ones. */
    std::size_t
    totalSize() const
    {
        return visible_ + staged_;
    }

  private:
    std::size_t
    advance(std::size_t index) const
    {
        return index + 1 == capacity_ ? 0 : index + 1;
    }

    T *
    data()
    {
        return capacity_ <= inlineCapacity ? inline_.data()
                                           : heap_.data();
    }

    const T *
    data() const
    {
        return capacity_ <= inlineCapacity ? inline_.data()
                                           : heap_.data();
    }

    std::size_t capacity_ = 0;
    std::array<T, inlineCapacity> inline_{};
    std::vector<T> heap_; //!< used only when capacity_ > inline
    std::size_t head_ = 0; //!< oldest visible element
    std::size_t tail_ = 0; //!< next write position
    std::size_t visible_ = 0;
    std::size_t staged_ = 0;
    std::size_t poppedThisCycle_ = 0;
};

} // namespace hrsim

#endif // HRSIM_COMMON_STAGED_FIFO_HH
