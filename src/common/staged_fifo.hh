/**
 * @file
 * Bounded FIFO with two-phase (staged) cycle semantics.
 *
 * All hrsim network components exchange flits through StagedFifo
 * queues. The queue models a synchronous hardware FIFO evaluated with
 * a propose/commit discipline:
 *
 *  - push() stages an element; it becomes visible to the consumer only
 *    after the end-of-cycle commit().
 *  - pop() removes an element immediately for the consumer, but the
 *    slot it frees is not usable by producers until commit(). This is
 *    the registered-flow-control behaviour of a hardware FIFO whose
 *    "full" flag is sampled at the clock edge.
 *  - canPush() therefore answers "may a producer insert this cycle"
 *    against the start-of-cycle occupancy plus already-staged pushes.
 *
 * With these rules, the result of a simulated cycle is independent of
 * the order in which components are evaluated, provided each queue has
 * a single producer and a single consumer per cycle (asserted).
 */

#ifndef HRSIM_COMMON_STAGED_FIFO_HH
#define HRSIM_COMMON_STAGED_FIFO_HH

#include <cstddef>
#include <deque>

#include "common/log.hh"

namespace hrsim
{

template <typename T>
class StagedFifo
{
  public:
    /** Construct a FIFO holding at most @a capacity elements. */
    explicit StagedFifo(std::size_t capacity = 0)
        : capacity_(capacity)
    {}

    /** Change the capacity; only legal on an empty queue. */
    void
    setCapacity(std::size_t capacity)
    {
        HRSIM_ASSERT(empty() && staged_.empty());
        capacity_ = capacity;
    }

    std::size_t capacity() const { return capacity_; }

    /** Elements visible to the consumer this cycle. */
    std::size_t size() const { return items_.size(); }

    bool empty() const { return items_.empty(); }

    /**
     * Occupancy as seen by a producer: visible elements, plus slots
     * freed by pops this cycle (not yet reusable), plus staged pushes.
     */
    std::size_t
    producerOccupancy() const
    {
        return items_.size() + poppedThisCycle_ + staged_.size();
    }

    /** May a producer stage an element this cycle? */
    bool canPush() const { return producerOccupancy() < capacity_; }

    /** Free producer slots remaining this cycle. */
    std::size_t
    producerSpace() const
    {
        const std::size_t occ = producerOccupancy();
        return occ >= capacity_ ? 0 : capacity_ - occ;
    }

    /** Stage an element; visible to the consumer after commit(). */
    void
    push(T value)
    {
        HRSIM_ASSERT(canPush());
        staged_.push_back(std::move(value));
    }

    /** Oldest visible element. Queue must be non-empty. */
    const T &
    front() const
    {
        HRSIM_ASSERT(!items_.empty());
        return items_.front();
    }

    /** Remove and return the oldest visible element. */
    T
    pop()
    {
        HRSIM_ASSERT(!items_.empty());
        T value = std::move(items_.front());
        items_.pop_front();
        ++poppedThisCycle_;
        return value;
    }

    /** End-of-cycle commit: publish pushes, recycle popped slots. */
    void
    commit()
    {
        for (auto &value : staged_)
            items_.push_back(std::move(value));
        staged_.clear();
        poppedThisCycle_ = 0;
    }

    /** Discard all contents (visible and staged). */
    void
    clear()
    {
        items_.clear();
        staged_.clear();
        poppedThisCycle_ = 0;
    }

    /** Total elements in the queue including staged ones. */
    std::size_t
    totalSize() const
    {
        return items_.size() + staged_.size();
    }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
    std::deque<T> staged_;
    std::size_t poppedThisCycle_ = 0;
};

} // namespace hrsim

#endif // HRSIM_COMMON_STAGED_FIFO_HH
