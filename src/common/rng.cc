#include "common/rng.hh"

#include "common/log.hh"

namespace hrsim
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id into the seed so streams are decorrelated.
    std::uint64_t sm = seed ^ (0x6a09e667f3bcc909ULL * (stream + 1));
    for (auto &word : s_)
        word = splitmix64(sm);
    // xoshiro must not be seeded with the all-zero state.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    HRSIM_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace hrsim
