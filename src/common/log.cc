#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace hrsim
{

void
fatal(const std::string &msg)
{
    throw ConfigError(msg);
}

void
panicImpl(const char *msg, const char *file, int line)
{
    std::fprintf(stderr, "hrsim panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "hrsim warn: %s\n", msg.c_str());
}

} // namespace hrsim
