/**
 * @file
 * Fundamental scalar types shared by every hrsim module.
 */

#ifndef HRSIM_COMMON_TYPES_HH
#define HRSIM_COMMON_TYPES_HH

#include <cstdint>

namespace hrsim
{

/** Simulated time, in network clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of a processing module (PM), dense in [0, P). */
using NodeId = std::int32_t;

/** Sentinel for "no node". */
inline constexpr NodeId invalidNode = -1;

/**
 * Destination sentinel for a broadcast packet: delivered to every PM.
 * Hierarchical rings implement this natively in the slotted switching
 * mode (the paper's motivation (v)); meshes must send P-1 unicasts.
 */
inline constexpr NodeId broadcastNode = -2;

/** Unique identifier of an in-flight packet. */
using PacketId = std::uint64_t;

} // namespace hrsim

#endif // HRSIM_COMMON_TYPES_HH
