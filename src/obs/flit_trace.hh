/**
 * @file
 * Opt-in flit event tracer.
 *
 * When attached (System::setTracer), the tracer logs one line per
 * network event to its output stream:
 *
 *     <cycle> inject pkt=<id> node=<n> q=<occupancy>
 *     <cycle> hop    pkt=<id> node=<n> q=<occupancy>
 *     <cycle> eject  pkt=<id> node=<n> q=0
 *
 *  - inject: a packet entered its NIC/router from the PM; node is the
 *    PM id, q the flits buffered in that NIC/router after the inject.
 *  - hop: one flit crossed one link (wormhole networks only; slotted
 *    rings trace inject/eject). For ring links, node identifies the
 *    link driver: a PM id for NIC outputs, -(2*iri+1) for IRI lower
 *    sides, -(2*iri+2) for IRI upper sides; q is the occupied flit
 *    slots of the ring being driven. For mesh links, node is the
 *    driving router's PM id and q the downstream input buffer depth.
 *  - eject: a packet's tail flit reached its destination PM (node).
 *
 * Cost model: tracing is opt-in per run (a null tracer pointer is a
 * single predictable branch per event site) and the hooks compile to
 * nothing when the library is built with -DHRSIM_TRACE_FLITS=0, so a
 * metrics-only production build pays zero instructions for them.
 * The tracer is passive — attaching it cannot change simulation
 * results (asserted by tests/test_metrics.cc).
 */

#ifndef HRSIM_OBS_FLIT_TRACE_HH
#define HRSIM_OBS_FLIT_TRACE_HH

#include <cstdint>
#include <iosfwd>

#include "common/types.hh"

/** Compile-time switch for the trace hooks (CMake: HRSIM_TRACE_FLITS). */
#ifndef HRSIM_TRACE_FLITS
#define HRSIM_TRACE_FLITS 1
#endif

namespace hrsim
{

enum class FlitEvent : std::uint8_t
{
    Inject,
    Hop,
    Eject,
};

class FlitTracer
{
  public:
    /** Stream events to @a out (not owned; must outlive the tracer). */
    explicit FlitTracer(std::ostream &out) : out_(out) {}

    /** Stamp subsequent events with @a now (set once per cycle). */
    void setCycle(Cycle now) { now_ = now; }

    /** Log one event at the current cycle. */
    void record(FlitEvent event, PacketId packet, NodeId node,
                std::uint64_t queue);

    /** Events recorded so far. */
    std::uint64_t events() const { return events_; }

    /** True when the hooks were compiled into the library. */
    static constexpr bool
    compiledIn()
    {
        return HRSIM_TRACE_FLITS != 0;
    }

  private:
    std::ostream &out_;
    Cycle now_ = 0;
    std::uint64_t events_ = 0;
};

} // namespace hrsim

/**
 * Event hook used inside the network models. @a tracer is evaluated
 * once; the remaining arguments are only evaluated when a tracer is
 * attached. Compiles to nothing with HRSIM_TRACE_FLITS=0.
 */
#if HRSIM_TRACE_FLITS
#define HRSIM_TRACE_FLIT(tracer, event, packet, node, queue)            \
    do {                                                                \
        ::hrsim::FlitTracer *hrsimTracer_ = (tracer);                   \
        if (hrsimTracer_) {                                             \
            hrsimTracer_->record((event), (packet), (node),             \
                                 (queue));                              \
        }                                                               \
    } while (0)
#else
#define HRSIM_TRACE_FLIT(tracer, event, packet, node, queue) ((void)0)
#endif

#endif // HRSIM_OBS_FLIT_TRACE_HH
