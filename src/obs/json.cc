#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace hrsim
{

namespace
{

/** Recursive-descent parser over a complete JSON document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        skipWs();
        JsonValue value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal("JSON parse error at offset " + std::to_string(pos_) +
              ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
          case 'n':
            return parseLiteral();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseLiteral()
    {
        JsonValue value;
        if (consumeLiteral("true")) {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
        } else if (consumeLiteral("false")) {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = false;
        } else if (consumeLiteral("null")) {
            value.kind = JsonValue::Kind::Null;
        } else {
            fail("unknown literal");
        }
        return value;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        value.lexeme = text_.substr(start, pos_ - start);
        char *end = nullptr;
        value.number = std::strtod(value.lexeme.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number \"" + value.lexeme + "\"");
        return value;
    }

    JsonValue
    parseString()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::String;
        value.str = parseStringBody();
        return value;
    }

    std::string
    parseStringBody()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.push_back(esc);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                // Emitted files only \u-escape ASCII control chars.
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escapes are not supported");
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            skipWs();
            value.items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            skipWs();
            std::string key = parseStringBody();
            if (value.find(key) != nullptr)
                fail("duplicate object key \"" + key + "\"");
            skipWs();
            expect(':');
            skipWs();
            value.members.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

bool
JsonValue::isInteger() const
{
    if (kind != Kind::Number)
        return false;
    return lexeme.find('.') == std::string::npos &&
           lexeme.find('e') == std::string::npos &&
           lexeme.find('E') == std::string::npos;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return "boolean";
      case Kind::Number:
        return "number";
      case Kind::String:
        return "string";
      case Kind::Array:
        return "array";
      case Kind::Object:
        return "object";
    }
    return "unknown";
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value)) {
        // JSON has no inf/nan; observability values are clamped.
        return value > 0 ? "1e308" : (value < 0 ? "-1e308" : "0");
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace hrsim
