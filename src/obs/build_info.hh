/**
 * @file
 * Build provenance captured at compile time.
 *
 * The values are baked into obs/build_info.cc via compile definitions
 * set by CMake at configure time (HRSIM_GIT_DESCRIBE,
 * HRSIM_BUILD_TYPE, HRSIM_CXX_FLAGS), so every metrics artifact can
 * name the exact tree and build that produced it. When the source
 * tree is not a git checkout the describe string is "unknown".
 */

#ifndef HRSIM_OBS_BUILD_INFO_HH
#define HRSIM_OBS_BUILD_INFO_HH

namespace hrsim
{

/** `git describe --always --dirty` of the built tree. */
const char *buildGitDescribe();

/** CMAKE_BUILD_TYPE of this binary (e.g. "Release"). */
const char *buildType();

/** Extra compiler flags the build was configured with. */
const char *buildCxxFlags();

/** True when the flit-tracer hooks were compiled in. */
bool buildHasFlitTrace();

} // namespace hrsim

#endif // HRSIM_OBS_BUILD_INFO_HH
