#include "obs/manifest.hh"

#include <cstdio>

#include "obs/build_info.hh"
#include "sim/columns.hh"
#include "sim/fastpath.hh"

namespace hrsim
{

std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

namespace
{

std::string
fmt(const char *format, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

} // namespace

std::string
configKey(const SystemConfig &cfg)
{
    std::string key;
    if (cfg.kind == NetworkKind::HierarchicalRing) {
        key += "ring topo=" + cfg.ringTopo.toString();
        key += " speed=" + std::to_string(cfg.globalRingSpeed);
        key += cfg.ringSlotted ? " switch=slotted" : " switch=wormhole";
        key += cfg.ringBypass ? " bypass=1" : " bypass=0";
        key += cfg.ringWrapRegion ? " wrap=1" : " wrap=0";
        key += " iri_wait=" + std::to_string(cfg.ringIriWaitLimit);
        key += " iri_q=" + std::to_string(cfg.ringIriQueuePackets);
    } else {
        key += "mesh width=" + std::to_string(cfg.meshWidth);
        key += " buffers=" + std::to_string(cfg.meshBufferFlits);
        key += cfg.meshRoundRobin ? " arb=rr" : " arb=fixed";
    }
    key += " line=" + std::to_string(cfg.cacheLineBytes);
    key += " R=" + fmt("%.17g", cfg.workload.localityR);
    key += " C=" + fmt("%.17g", cfg.workload.missRateC);
    key += " T=" + std::to_string(cfg.workload.outstandingT);
    key += " read=" + fmt("%.17g", cfg.workload.readFraction);
    key += " mem=" + std::to_string(cfg.workload.memoryLatency);
    key += cfg.workload.memorySerialized ? " mem_serial=1"
                                         : " mem_serial=0";
    key += " warmup=" + std::to_string(cfg.sim.warmupCycles);
    key += " batch=" + std::to_string(cfg.sim.batchCycles);
    key += " batches=" + std::to_string(cfg.sim.numBatches);
    if (cfg.sim.stop.enabled()) {
        // Adaptive run control changes what a run simulates, so the
        // resolved policy is part of the result's identity. Appended
        // only when enabled: fixed-length keys (and their hashes)
        // stay stable across releases.
        const StopPolicy policy = resolveStopPolicy(cfg.sim);
        key += " stop_rel_hw=" + fmt("%.17g", policy.relHw);
        key += " stop_batch=" + std::to_string(policy.batchCycles);
        key += " stop_max=" + std::to_string(policy.maxCycles);
        key += " stop_min_batches=" +
               std::to_string(policy.minBatches);
        key += " stop_div_window=" +
               std::to_string(policy.divergenceWindow);
        key += " stop_div_occ=" +
               fmt("%.17g", policy.divergenceOccupancy);
        key += " stop_div_growth=" +
               fmt("%.17g", policy.divergenceGrowth);
    }
    key += " seed=" + std::to_string(cfg.sim.seed);
    if (cfg.trace != nullptr)
        key += " trace_records=" + std::to_string(cfg.trace->size());
    if (!cfg.faultPlan.empty()) {
        // A fault schedule changes what a run simulates, so it is
        // part of the result's identity. Appended only when present:
        // fault-free keys (and their hashes) stay stable.
        key += " faults=" + cfg.faultPlan.canonical();
    }
    return key;
}

RunManifest
makeManifest(const SystemConfig &cfg, unsigned jobs,
             double wall_seconds, double total_node_cycles)
{
    RunManifest manifest;
    manifest.gitDescribe = buildGitDescribe();
    manifest.buildType = buildType();
    manifest.buildFlags = buildCxxFlags();
    manifest.config = configKey(cfg);
    char hash[24];
    std::snprintf(hash, sizeof(hash), "0x%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(manifest.config)));
    manifest.configHash = hash;
    manifest.seed = cfg.sim.seed;
    manifest.jobs = jobs;
    manifest.tickThreads = cfg.sim.tickThreads;
    manifest.fastPath = fastPathEnabled();
    manifest.columnar = columnarEnabled();
    manifest.restoredFrom = cfg.ckpt.restorePath;
    manifest.wallSeconds = wall_seconds;
    manifest.nodeCyclesPerSec =
        wall_seconds > 0.0 ? total_node_cycles / wall_seconds : 0.0;
    return manifest;
}

} // namespace hrsim
