/**
 * @file
 * Metric registry: the naming and sampling substrate of the
 * observability layer.
 *
 * Every component of a System (processors, memories, ring NICs, IRIs,
 * mesh routers, the utilization tracker groups) registers named
 * counters and gauges under stable hierarchical dotted names, e.g.
 *
 *     workload.remote_issued        (counter)
 *     ring.l1.iri3.wait_cycles      (counter)
 *     mesh.util                     (gauge)
 *     latency.p99                   (gauge)
 *
 * Registration is pull-model: a metric is a sampler callback that
 * reads the component's own state, so the simulation hot path carries
 * zero extra cost — values are only materialized when snapshot() is
 * called (at end of run, or periodically for convergence watching).
 *
 * Names must match [a-z0-9_.-]+ and be unique; registering a
 * duplicate name throws ConfigError (via fatal()), so wiring bugs
 * surface at construction, not as silently shadowed series.
 * snapshot() returns samples sorted by name, which makes serialized
 * output canonical: two runs with identical state serialize to
 * byte-identical metric sections (the sweep determinism contract
 * extends through the registry).
 */

#ifndef HRSIM_OBS_METRIC_REGISTRY_HH
#define HRSIM_OBS_METRIC_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hrsim
{

class Histogram;

/** What a metric measures; fixes its serialized representation. */
enum class MetricKind : std::uint8_t
{
    Counter, //!< monotonic event count, serialized as an integer
    Gauge,   //!< instantaneous value, serialized as a double
};

/** One materialized metric value. */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Gauge;
    /** Gauge value (also set, as a double, for counters). */
    double value = 0.0;
    /** Exact counter value (0 for gauges). */
    std::uint64_t count = 0;

    bool
    operator==(const MetricSample &other) const
    {
        return name == other.name && kind == other.kind &&
               value == other.value && count == other.count;
    }
};

/** One point-in-time materialization of a whole registry. */
struct MetricSnapshot
{
    Cycle cycle = 0;
    std::vector<MetricSample> metrics;
};

class MetricRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;

    /** Register a counter sampled via @a fn. */
    void addCounter(const std::string &name, CounterFn fn);

    /** Register a counter that reads @a value (not owned). */
    void addCounter(const std::string &name,
                    const std::uint64_t *value);

    /** Register a gauge sampled via @a fn. */
    void addGauge(const std::string &name, GaugeFn fn);

    /**
     * Register a latency histogram (not owned) as the derived metrics
     * @a prefix.p50/.p95/.p99 (gauges) and @a prefix.count (counter).
     */
    void addHistogram(const std::string &prefix,
                      const Histogram *histogram);

    bool has(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** Materialize every metric, sorted by name. */
    std::vector<MetricSample> snapshot() const;

    /** Valid metric name: non-empty, chars in [a-z0-9_.-]. */
    static bool validName(const std::string &name);

  private:
    struct Entry
    {
        MetricKind kind;
        CounterFn counter;
        GaugeFn gauge;
    };

    void insert(const std::string &name, Entry entry);

    /** Ordered by name, so snapshots are canonical for free. */
    std::map<std::string, Entry> entries_;
};

} // namespace hrsim

#endif // HRSIM_OBS_METRIC_REGISTRY_HH
