#include "obs/flit_trace.hh"

#include <ostream>

namespace hrsim
{

void
FlitTracer::record(FlitEvent event, PacketId packet, NodeId node,
                   std::uint64_t queue)
{
    const char *name = "hop";
    switch (event) {
      case FlitEvent::Inject:
        name = "inject";
        break;
      case FlitEvent::Hop:
        name = "hop";
        break;
      case FlitEvent::Eject:
        name = "eject";
        break;
    }
    out_ << now_ << ' ' << name << " pkt=" << packet
         << " node=" << node << " q=" << queue << '\n';
    ++events_;
}

} // namespace hrsim
