/**
 * @file
 * Metric sinks: serialize finished runs (manifest + per-point metric
 * snapshots) to JSON or CSV.
 *
 * One schema everywhere: a single-point run is a one-element sweep,
 * a figure bench is a sweep with descriptive labels, so every
 * artifact — `hrsim_cli --metrics-out`, `HRSIM_METRICS_OUT` bench
 * dumps, test fixtures — has the same shape and one validator
 * (`tools/metrics_check` against `scripts/metrics_schema.json`)
 * covers them all.
 *
 * JSON ("hrsim-metrics-v1"):
 *
 *     {
 *       "schema": "hrsim-metrics-v1",
 *       "manifest": { "git": ..., "config": ..., "seed": ... },
 *       "points": [
 *         { "label": "ring 3:3:12",
 *           "metrics": { "latency.avg": 53.5, ... },
 *           "snapshots": [ { "cycle": 4000, "metrics": {...} } ] }
 *       ]
 *     }
 *
 * CSV: `# key=value` manifest comment lines, then the header
 * `label,cycle,metric,kind,value` and one row per sample; periodic
 * snapshot rows carry their snapshot cycle, final rows the run's end
 * cycle. Doubles are printed with %.17g (shortest exact round-trip),
 * counters as plain integers, so re-parsing reproduces the values
 * bit-for-bit — and two runs of the same config serialize their
 * metric sections byte-identically (only the manifest may differ).
 */

#ifndef HRSIM_OBS_METRIC_SINK_HH
#define HRSIM_OBS_METRIC_SINK_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/manifest.hh"
#include "obs/metric_registry.hh"

namespace hrsim
{

/** The serialized observability record of one simulated point. */
struct MetricPoint
{
    std::string label;
    /** Cycle the final metrics were taken at (the run's horizon, or
     *  the adaptive stop cycle). */
    Cycle endCycle = 0;
    /**
     * Stop reason of an adaptive run ("converged", "max_cycles",
     * "saturated"); empty for fixed-length runs, in which case the
     * field is omitted from the serialized point so fixed-length
     * artifacts stay byte-identical to earlier releases.
     */
    std::string stopReason;
    std::vector<MetricSample> metrics;
    /** Periodic snapshots (--metrics-every); empty when disabled. */
    std::vector<MetricSnapshot> snapshots;
};

/** Build the point record of a finished run. */
MetricPoint metricPoint(const std::string &label,
                        const RunResult &result);

void writeMetricsJson(std::ostream &out, const RunManifest &manifest,
                      const std::vector<MetricPoint> &points);

void writeMetricsCsv(std::ostream &out, const RunManifest &manifest,
                     const std::vector<MetricPoint> &points);

/**
 * Write @a points to @a path ("-" = stdout) as @a format ("json" or
 * "csv"); throws ConfigError on an unknown format or unwritable path.
 */
void writeMetricsFile(const std::string &path,
                      const std::string &format,
                      const RunManifest &manifest,
                      const std::vector<MetricPoint> &points);

} // namespace hrsim

#endif // HRSIM_OBS_METRIC_SINK_HH
