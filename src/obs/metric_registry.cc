#include "obs/metric_registry.hh"

#include "common/log.hh"
#include "stats/histogram.hh"

namespace hrsim
{

bool
MetricRegistry::validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == '.' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

void
MetricRegistry::insert(const std::string &name, Entry entry)
{
    if (!validName(name)) {
        fatal("MetricRegistry: invalid metric name \"" + name +
              "\" (want [a-z0-9_.-]+)");
    }
    if (!entries_.emplace(name, std::move(entry)).second)
        fatal("MetricRegistry: duplicate metric name \"" + name + "\"");
}

void
MetricRegistry::addCounter(const std::string &name, CounterFn fn)
{
    Entry entry;
    entry.kind = MetricKind::Counter;
    entry.counter = std::move(fn);
    insert(name, std::move(entry));
}

void
MetricRegistry::addCounter(const std::string &name,
                           const std::uint64_t *value)
{
    addCounter(name, [value]() { return *value; });
}

void
MetricRegistry::addGauge(const std::string &name, GaugeFn fn)
{
    Entry entry;
    entry.kind = MetricKind::Gauge;
    entry.gauge = std::move(fn);
    insert(name, std::move(entry));
}

void
MetricRegistry::addHistogram(const std::string &prefix,
                             const Histogram *histogram)
{
    addGauge(prefix + ".p50", [histogram]() { return histogram->p50(); });
    addGauge(prefix + ".p95", [histogram]() { return histogram->p95(); });
    addGauge(prefix + ".p99", [histogram]() { return histogram->p99(); });
    addCounter(prefix + ".count",
               [histogram]() { return histogram->count(); });
}

bool
MetricRegistry::has(const std::string &name) const
{
    return entries_.find(name) != entries_.end();
}

std::vector<MetricSample>
MetricRegistry::snapshot() const
{
    std::vector<MetricSample> samples;
    samples.reserve(entries_.size());
    for (const auto &[name, entry] : entries_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = entry.kind;
        if (entry.kind == MetricKind::Counter) {
            sample.count = entry.counter();
            sample.value = static_cast<double>(sample.count);
        } else {
            sample.value = entry.gauge();
        }
        samples.push_back(std::move(sample));
    }
    return samples;
}

} // namespace hrsim
