/**
 * @file
 * Minimal JSON document model: parse, navigate, escape.
 *
 * The observability layer emits JSON and the tooling (schema
 * validator, round-trip tests) must read it back without external
 * dependencies, so this header provides a small recursive-descent
 * parser over an ordered value tree. Numbers keep their source lexeme
 * alongside the parsed double, so integer metrics (counters, seeds)
 * can be compared exactly even past 2^53.
 *
 * Parsing accepts strict JSON (RFC 8259) minus \u escapes for code
 * points outside ASCII (emitted files never contain them: metric
 * names are [a-z0-9_.-] and all strings originate from configs).
 */

#ifndef HRSIM_OBS_JSON_HH
#define HRSIM_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hrsim
{

struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** Source text of a number (exact integer round-trips). */
    std::string lexeme;
    std::string str;
    std::vector<JsonValue> items;
    /** Object members in source order (duplicates rejected). */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Parse a complete document; throws ConfigError on bad input. */
    static JsonValue parse(const std::string &text);

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Number whose lexeme has no fraction or exponent. */
    bool isInteger() const;

    /** Member lookup on an object; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Human-readable kind name (diagnostics). */
    static const char *kindName(Kind kind);
};

/** Escape @a text for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/** Shortest-round-trip formatting of @a value (%.17g, canonical). */
std::string jsonNumber(double value);

} // namespace hrsim

#endif // HRSIM_OBS_JSON_HH
