#include "obs/metric_sink.hh"

#include <fstream>
#include <iostream>
#include <ostream>

#include "common/log.hh"
#include "obs/json.hh"

namespace hrsim
{

namespace
{

void
writeSampleJson(std::ostream &out, const MetricSample &sample)
{
    out << '"' << jsonEscape(sample.name) << "\": ";
    if (sample.kind == MetricKind::Counter)
        out << sample.count;
    else
        out << jsonNumber(sample.value);
}

void
writeMetricsObject(std::ostream &out, const char *indent,
                   const std::vector<MetricSample> &metrics)
{
    out << "{";
    bool first = true;
    for (const MetricSample &sample : metrics) {
        out << (first ? "\n" : ",\n") << indent << "  ";
        writeSampleJson(out, sample);
        first = false;
    }
    if (!first)
        out << "\n" << indent;
    out << "}";
}

void
writeManifestJson(std::ostream &out, const RunManifest &manifest)
{
    out << "  \"manifest\": {\n";
    out << "    \"git\": \"" << jsonEscape(manifest.gitDescribe)
        << "\",\n";
    out << "    \"build_type\": \"" << jsonEscape(manifest.buildType)
        << "\",\n";
    out << "    \"build_flags\": \"" << jsonEscape(manifest.buildFlags)
        << "\",\n";
    out << "    \"config\": \"" << jsonEscape(manifest.config)
        << "\",\n";
    out << "    \"config_hash\": \"" << manifest.configHash << "\",\n";
    out << "    \"seed\": " << manifest.seed << ",\n";
    out << "    \"jobs\": " << manifest.jobs << ",\n";
    out << "    \"tick_threads\": " << manifest.tickThreads << ",\n";
    out << "    \"fast_path\": "
        << (manifest.fastPath ? "true" : "false") << ",\n";
    out << "    \"columnar\": "
        << (manifest.columnar ? "true" : "false") << ",\n";
    if (!manifest.restoredFrom.empty()) {
        out << "    \"restored_from\": \""
            << jsonEscape(manifest.restoredFrom) << "\",\n";
    }
    out << "    \"wall_seconds\": " << jsonNumber(manifest.wallSeconds)
        << ",\n";
    out << "    \"node_cycles_per_sec\": "
        << jsonNumber(manifest.nodeCyclesPerSec) << "\n";
    out << "  }";
}

} // namespace

MetricPoint
metricPoint(const std::string &label, const RunResult &result)
{
    MetricPoint point;
    point.label = label;
    point.endCycle = result.cycles;
    if (result.stopReason != StopReason::FixedLength)
        point.stopReason = toString(result.stopReason);
    point.metrics = result.metrics;
    point.snapshots = result.snapshots;
    return point;
}

void
writeMetricsJson(std::ostream &out, const RunManifest &manifest,
                 const std::vector<MetricPoint> &points)
{
    out << "{\n";
    out << "  \"schema\": \"" << jsonEscape(manifest.schema)
        << "\",\n";
    writeManifestJson(out, manifest);
    out << ",\n  \"points\": [";
    for (std::size_t p = 0; p < points.size(); ++p) {
        const MetricPoint &point = points[p];
        out << (p == 0 ? "\n" : ",\n");
        out << "    {\n";
        out << "      \"label\": \"" << jsonEscape(point.label)
            << "\",\n";
        out << "      \"end_cycle\": " << point.endCycle << ",\n";
        if (!point.stopReason.empty()) {
            out << "      \"stop_reason\": \""
                << jsonEscape(point.stopReason) << "\",\n";
        }
        out << "      \"metrics\": ";
        writeMetricsObject(out, "      ", point.metrics);
        if (!point.snapshots.empty()) {
            out << ",\n      \"snapshots\": [";
            for (std::size_t s = 0; s < point.snapshots.size(); ++s) {
                const MetricSnapshot &snap = point.snapshots[s];
                out << (s == 0 ? "\n" : ",\n");
                out << "        { \"cycle\": " << snap.cycle
                    << ", \"metrics\": ";
                writeMetricsObject(out, "          ", snap.metrics);
                out << " }";
            }
            out << "\n      ]";
        }
        out << "\n    }";
    }
    if (!points.empty())
        out << "\n  ";
    out << "]\n}\n";
}

namespace
{

/** CSV-quote a field when it contains delimiters. */
std::string
csvField(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

void
writeCsvRows(std::ostream &out, const std::string &label, Cycle cycle,
             const std::vector<MetricSample> &metrics)
{
    for (const MetricSample &sample : metrics) {
        out << csvField(label) << ',' << cycle << ',' << sample.name
            << ',';
        if (sample.kind == MetricKind::Counter)
            out << "counter," << sample.count;
        else
            out << "gauge," << jsonNumber(sample.value);
        out << '\n';
    }
}

} // namespace

void
writeMetricsCsv(std::ostream &out, const RunManifest &manifest,
                const std::vector<MetricPoint> &points)
{
    out << "# schema=" << manifest.schema << '\n';
    out << "# git=" << manifest.gitDescribe << '\n';
    out << "# build_type=" << manifest.buildType << '\n';
    out << "# build_flags=" << manifest.buildFlags << '\n';
    out << "# config=" << manifest.config << '\n';
    out << "# config_hash=" << manifest.configHash << '\n';
    out << "# seed=" << manifest.seed << '\n';
    out << "# jobs=" << manifest.jobs << '\n';
    out << "# tick_threads=" << manifest.tickThreads << '\n';
    out << "# fast_path=" << (manifest.fastPath ? 1 : 0) << '\n';
    out << "# columnar=" << (manifest.columnar ? 1 : 0) << '\n';
    if (!manifest.restoredFrom.empty())
        out << "# restored_from=" << manifest.restoredFrom << '\n';
    out << "# wall_seconds=" << jsonNumber(manifest.wallSeconds)
        << '\n';
    out << "# node_cycles_per_sec="
        << jsonNumber(manifest.nodeCyclesPerSec) << '\n';
    out << "label,cycle,metric,kind,value\n";
    for (const MetricPoint &point : points) {
        for (const MetricSnapshot &snap : point.snapshots)
            writeCsvRows(out, point.label, snap.cycle, snap.metrics);
        writeCsvRows(out, point.label, point.endCycle, point.metrics);
    }
}

void
writeMetricsFile(const std::string &path, const std::string &format,
                 const RunManifest &manifest,
                 const std::vector<MetricPoint> &points)
{
    const bool json = format == "json";
    if (!json && format != "csv")
        fatal("metrics format must be json or csv, got: " + format);

    const auto write = [&](std::ostream &out) {
        if (json)
            writeMetricsJson(out, manifest, points);
        else
            writeMetricsCsv(out, manifest, points);
    };

    if (path == "-") {
        write(std::cout);
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics output file: " + path);
    write(out);
    if (!out)
        fatal("failed writing metrics output file: " + path);
}

} // namespace hrsim
