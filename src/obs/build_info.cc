#include "obs/build_info.hh"

#include "obs/flit_trace.hh"

#ifndef HRSIM_GIT_DESCRIBE
#define HRSIM_GIT_DESCRIBE "unknown"
#endif
#ifndef HRSIM_BUILD_TYPE
#define HRSIM_BUILD_TYPE "unknown"
#endif
#ifndef HRSIM_CXX_FLAGS
#define HRSIM_CXX_FLAGS ""
#endif

namespace hrsim
{

const char *
buildGitDescribe()
{
    return HRSIM_GIT_DESCRIBE;
}

const char *
buildType()
{
    return HRSIM_BUILD_TYPE;
}

const char *
buildCxxFlags()
{
    return HRSIM_CXX_FLAGS;
}

bool
buildHasFlitTrace()
{
    return HRSIM_TRACE_FLITS != 0;
}

} // namespace hrsim
