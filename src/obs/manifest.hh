/**
 * @file
 * Run manifest: self-describing provenance embedded in every metrics
 * artifact.
 *
 * A metrics file found on disk six months later must answer "what
 * produced this?" on its own: the manifest records the git describe
 * of the built tree, the build type and flags, a canonical one-line
 * rendering of the configuration with its 64-bit FNV-1a hash, the
 * master seed, and the run's wall time and simulation rate. Timing
 * fields live only in the manifest — never in per-point metrics — so
 * the metric sections of two runs of the same config are
 * byte-identical regardless of machine load or --jobs.
 */

#ifndef HRSIM_OBS_MANIFEST_HH
#define HRSIM_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "core/system.hh"

namespace hrsim
{

struct RunManifest
{
    /** Schema identifier of the containing artifact. */
    std::string schema = "hrsim-metrics-v1";

    std::string gitDescribe; //!< git describe --always --dirty
    std::string buildType;   //!< CMAKE_BUILD_TYPE
    std::string buildFlags;  //!< configured extra compiler flags

    /** Canonical one-line config rendering (see configKey()). */
    std::string config;
    /** FNV-1a 64-bit hash of @ref config, "0x%016llx". */
    std::string configHash;

    std::uint64_t seed = 0;
    unsigned jobs = 1; //!< sweep workers (1 for single-point runs)
    /**
     * Intra-run parallel-tick threads (SimConfig::tickThreads).
     * Provenance, not identity, exactly like jobs: any width
     * produces bit-identical metric sections, so the value lives
     * outside configKey() next to the other speed knobs.
     */
    int tickThreads = 1;

    /**
     * Worm-streaming fast path on for this run? Provenance, not
     * identity: both modes produce bit-identical results (the
     * bit-identity grid in tests/test_active_set.cc proves it), so
     * the flag lives next to jobs/wall time, outside configKey().
     */
    bool fastPath = true;

    /**
     * Columnar tick engine on for this run? Same provenance-not-
     * identity status as fastPath: HRSIM_NO_COLUMNAR=1 swaps in the
     * legacy per-node layout with bit-identical results.
     */
    bool columnar = true;

    /**
     * Checkpoint file the run was restored from (empty = cold
     * start). Schema-gated: the sinks emit a restored_from field
     * only when this is non-empty, so cold-start artifacts keep the
     * exact byte layout they had before checkpointing existed.
     * Provenance, not identity — a restored run's metric sections
     * are byte-identical to the uninterrupted run's.
     */
    std::string restoredFrom;

    double wallSeconds = 0.0;
    /** Simulated node-cycles per wall second over the whole run. */
    double nodeCyclesPerSec = 0.0;
};

/** FNV-1a 64-bit hash (stable across platforms and runs). */
std::uint64_t fnv1a64(std::string_view text);

/**
 * Canonical one-line rendering of every simulation-relevant field of
 * @a cfg. Two configs with equal keys produce identical runs; the
 * key (and its hash) therefore identifies a result, not a process.
 */
std::string configKey(const SystemConfig &cfg);

/**
 * Build a manifest for a finished run: provenance from build info,
 * config key/hash from @a cfg, throughput from @a total_node_cycles
 * (sum over points of cycles * PMs) and @a wall_seconds.
 */
RunManifest makeManifest(const SystemConfig &cfg, unsigned jobs,
                         double wall_seconds,
                         double total_node_cycles);

} // namespace hrsim

#endif // HRSIM_OBS_MANIFEST_HH
