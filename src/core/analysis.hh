/**
 * @file
 * Analyses over measured series: cross-over points and the paper's
 * ring topology ladder.
 */

#ifndef HRSIM_CORE_ANALYSIS_HH
#define HRSIM_CORE_ANALYSIS_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hrsim
{

/**
 * The system size at which series B first becomes cheaper than
 * series A (the paper's ring/mesh "cross-over point").
 *
 * Both series are (x, y) samples sorted by x; the cross-over is
 * linearly interpolated between the bracketing samples. Returns
 * nullopt if B never drops below A on the common range.
 */
std::optional<double>
crossoverPoint(const std::vector<std::pair<double, double>> &a,
               const std::vector<std::pair<double, double>> &b);

/**
 * The paper's Table 2: best hierarchical ring topology for a
 * processor count and cache-line size under the no-locality workload
 * (R=1.0, C=0.04, T=4). Returns the topology string ("3:3:12") or
 * nullopt if the paper's table has no entry for this pair.
 */
std::optional<std::string>
paperTable2Topology(int processors, int cache_line_bytes);

/** Processor counts present in the paper's Table 2. */
std::vector<int> paperTable2Sizes();

/**
 * The ladder of ring systems used on the x-axis of the comparison
 * figures for a cache-line size: every Table 2 topology, in
 * increasing processor count.
 */
std::vector<std::string> standardRingLadder(int cache_line_bytes);

/** Square mesh widths with width*width <= max_processors. */
std::vector<int> standardMeshWidths(int max_processors = 121);

} // namespace hrsim

#endif // HRSIM_CORE_ANALYSIS_HH
