#include "core/tick_pool.hh"

#include <algorithm>

#include "common/log.hh"

namespace hrsim
{
namespace
{

/**
 * Busy-wait tuning. A tick phase is a few microseconds, so a worker
 * that just finished one is overwhelmingly likely to see the next
 * epoch within the pure-spin window; the yield window covers a caller
 * delayed by its serial between-phase work; only a genuinely idle
 * simulator (quiescent fast-forward, end of run) pays the condvar.
 */
constexpr int kPureSpins = 1 << 12;
constexpr int kYieldSpins = 1 << 16;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

} // namespace

TickPool::TickPool(int threads)
    : threads_(std::max(threads, 1))
{
    const int workers = threads_ - 1;
    done_.reserve(static_cast<std::size_t>(workers));
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        done_.push_back(std::make_unique<Done>());
    for (int w = 0; w < workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w + 1); });
}

TickPool::~TickPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_.store(true, std::memory_order_seq_cst);
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
TickPool::run(int numShards, TickFn fn, void *ctx)
{
    HRSIM_ASSERT(fn != nullptr);
    if (threads_ == 1 || numShards <= 1) {
        for (int s = 0; s < numShards; ++s)
            fn(ctx, s);
        return;
    }

    fn_ = fn;
    ctx_ = ctx;
    numShards_ = numShards;
    // The RMW publishes fn_/ctx_/numShards_ to workers whose epoch
    // load acquires it. seq_cst also orders it against the sleeping_
    // load below — a worker that missed this epoch while deciding to
    // sleep is guaranteed visible in sleeping_ (see workerLoop).
    const std::uint64_t epoch =
        epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
    if (sleeping_.load(std::memory_order_seq_cst) > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        wake_.notify_all();
    }

    for (int s = 0; s < numShards; s += threads_)
        fn(ctx, s);

    // Barrier: every worker publishes the epoch it completed with a
    // release store; the acquire loads here make all shard writes
    // visible before run() returns.
    for (auto &done : done_) {
        int spins = 0;
        while (done->epoch.load(std::memory_order_acquire) < epoch) {
            if (++spins >= kPureSpins) {
                std::this_thread::yield();
            } else {
                cpuRelax();
            }
        }
    }
    fn_ = nullptr;
    ctx_ = nullptr;
    numShards_ = 0;
}

void
TickPool::workerLoop(int self)
{
    Done &done = *done_[static_cast<std::size_t>(self - 1)];
    std::uint64_t seen = 0;
    for (;;) {
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen &&
               !stop_.load(std::memory_order_acquire)) {
            ++spins;
            if (spins < kPureSpins) {
                cpuRelax();
            } else if (spins < kYieldSpins) {
                std::this_thread::yield();
            } else {
                // Advertise the sleep *before* re-checking the epoch:
                // if the check still sees the old epoch, that load
                // precedes the caller's epoch bump in the seq_cst
                // order, so the caller's sleeping_ load observes this
                // increment and takes the notify path.
                sleeping_.fetch_add(1, std::memory_order_seq_cst);
                {
                    std::unique_lock<std::mutex> lock(mu_);
                    wake_.wait(lock, [&] {
                        return epoch_.load(
                                   std::memory_order_acquire) !=
                                   seen ||
                               stop_.load(
                                   std::memory_order_acquire);
                    });
                }
                sleeping_.fetch_sub(1, std::memory_order_seq_cst);
                spins = 0;
            }
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = epoch_.load(std::memory_order_acquire);
        for (int s = self; s < numShards_; s += threads_)
            fn_(ctx_, s);
        done.epoch.store(seen, std::memory_order_release);
    }
}

int
TickPool::resolveTickThreads(int requested, unsigned sweepJobs)
{
    const int want = std::max(requested, 1);
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    const unsigned jobs = std::max(sweepJobs, 1u);
    const int budget = static_cast<int>(std::max(hw / jobs, 1u));
    return std::min(want, budget);
}

} // namespace hrsim
