/**
 * @file
 * Analytic NIC buffer-memory cost model (Table 1 of the paper).
 *
 * Ring NICs have one ring buffer sized to one cache-line packet of
 * 16-byte flits with a 1-flit header; mesh NICs have four directional
 * input buffers of 4-byte flits, each 1, 4 or cl flits deep (cl = a
 * cache-line packet with a 4-flit header). These formulas reproduce
 * the paper's Table 1 exactly (e.g. 144 B for a 128 B-line ring NIC,
 * 576/64/16 B for cl/4-flit/1-flit mesh NICs).
 */

#ifndef HRSIM_CORE_MEMORY_COST_HH
#define HRSIM_CORE_MEMORY_COST_HH

#include <cstdint>

namespace hrsim
{

/** Ring NIC transit-buffer bytes for a cache-line size. */
std::uint32_t ringNicBufferBytes(std::uint32_t cache_line_bytes);

/**
 * Mesh NIC input-buffer bytes for a cache-line size and per-input
 * buffer depth; @a buffer_flits == 0 selects cl-sized buffers.
 */
std::uint32_t meshNicBufferBytes(std::uint32_t cache_line_bytes,
                                 std::uint32_t buffer_flits);

} // namespace hrsim

#endif // HRSIM_CORE_MEMORY_COST_HH
