/**
 * @file
 * Parallel sweep engine.
 *
 * Every figure of the paper is a sweep: dozens of fully independent
 * runSystem(cfg) points. A SweepRunner owns a fixed pool of worker
 * threads and evaluates a vector of SystemConfig points concurrently,
 * returning RunResults in submission order.
 *
 * Determinism contract: a System is self-contained (its RNG streams
 * derive from cfg.sim.seed, and no simulator state is shared between
 * points), so the metrics of every point are a pure function of its
 * config. Serial (jobs = 1) and parallel (jobs = N) sweeps therefore
 * produce bit-identical RunResults in the same order, regardless of
 * scheduling. The optional reseedPoints mode derives per-point seeds
 * from (base seed, point index) — also independent of scheduling.
 *
 * The contract extends through the observability layer: each point's
 * RunResult carries the materialized MetricRegistry samples
 * (RunResult::metrics), which are part of the same pure function of
 * the config — wall-clock timing lives only in the run manifest, so
 * `--jobs 1` and `--jobs N` serialize byte-identical metric sections.
 *
 * It also extends through the active-set scheduler (src/sim/
 * active_set.hh): which components tick and which cycles fast-forward
 * is itself a pure function of the config, and skipped work is
 * provably side-effect-free, so scheduled and full-scan runs differ
 * only in the sched.* introspection metrics.
 *
 * Scheduling: workers claim points from a shared atomic cursor, so a
 * point that finishes early (an adaptive run that converged after a
 * fraction of its budget, see stats/run_controller.hh) immediately
 * frees its worker for the next point — no static partitioning to
 * rebalance. On top of that, parallel runs claim points in descending
 * estimated-cost order (horizon upper bound x processor count, see
 * estimatedCostWeight()), so a saturated 121-PM point cannot be
 * dealt last and straggle behind an otherwise-drained pool. Point
 * results are written by submission index, so claim order is
 * invisible in the output: serial and parallel sweeps stay
 * bit-identical.
 */

#ifndef HRSIM_CORE_SWEEP_HH
#define HRSIM_CORE_SWEEP_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/system.hh"

namespace hrsim
{

struct SweepOptions
{
    /** Worker threads; 0 selects hardware_concurrency(). */
    unsigned jobs = 0;

    /**
     * Give every point its own seed derived from (its configured
     * seed, its index) via pointSeed(). Off by default so a sweep of
     * explicit configs reproduces the exact serial runSystem() calls.
     */
    bool reseedPoints = false;

    /**
     * Crash-safe journaling: when non-empty, every completed point
     * writes its RunResult to <journalDir>/point_<idx>.result
     * (atomic, config-key stamped), and in-progress points
     * periodically checkpoint to <journalDir>/point_<idx>.ckpt when
     * checkpointEvery is set. The directory must already exist.
     */
    std::string journalDir;

    /**
     * Resume a journaled sweep: points whose .result file exists are
     * loaded instead of re-run (a config-key mismatch throws — the
     * journal belongs to a different sweep), and points with only a
     * .ckpt restore from it and continue. Because a restored run is
     * bit-identical to an uninterrupted one, the resumed sweep's
     * results and journal bytes match the never-killed sweep exactly.
     */
    bool resume = false;

    /** Periodic checkpoint interval for journaled in-progress points
     *  (cycles; 0 = journal completed results only). */
    Cycle checkpointEvery = 0;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run every point and return the results in submission order.
     * With jobs() == 1 the points run inline on the calling thread,
     * exactly like a hand-written serial loop. If any point throws
     * (e.g. StallError), the remaining points still run and the
     * lowest-index exception is rethrown afterwards.
     */
    std::vector<RunResult> run(const std::vector<SystemConfig> &points);

    /** Deterministic per-point seed stream (splitmix64-based). */
    static std::uint64_t pointSeed(std::uint64_t base,
                                   std::size_t index);

    /**
     * Upper-bound cost estimate of one point: horizon cycles (the
     * adaptive maxCycles bound, or the fixed-length end cycle) times
     * the processor count. Used to order parallel claims
     * longest-first; has no effect on any result.
     */
    static double estimatedCostWeight(const SystemConfig &cfg);

  private:
    struct Batch
    {
        const std::vector<SystemConfig> *points = nullptr;
        std::vector<RunResult> *results = nullptr;
        std::vector<std::exception_ptr> *errors = nullptr;
        /** Claim order: submission indices, costliest first. */
        const std::vector<std::size_t> *order = nullptr;
        std::atomic<std::size_t> next{0};
        std::size_t completed = 0; //!< guarded by mu_
        std::size_t attached = 0;  //!< workers inside drain(); mu_
    };

    void workerLoop();
    void runPoint(Batch &batch, std::size_t index) const;
    void drain(Batch &batch);

    SweepOptions opts_;
    unsigned jobs_ = 1;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Batch *batch_ = nullptr; //!< guarded by mu_
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Convenience one-shot sweep: evaluate @a points on @a jobs workers
 * (0 = hardware concurrency) and return results in order.
 */
std::vector<RunResult>
runSweep(const std::vector<SystemConfig> &points, unsigned jobs = 0);

/**
 * Warm-start a replica sweep: pay the donor's warmup exactly once
 * per config, then fork every measurement replica from the shared
 * snapshot with its own RNG stream.
 *
 * If @a checkpointPath does not already hold a snapshot produced by
 * @a base, the donor runs base to its warmup boundary
 * (save-at-warmup + stop-after-save) to create it. The returned
 * configs — one per entry of @a seeds — restore from that snapshot
 * and reseed via CheckpointOptions::forkSeed, so each replica's
 * measurement phase draws from its own stream while sharing the
 * donor's warmed-up queues and tables. With warmupCycles == 0 there
 * is nothing to share and the configs are returned as plain
 * reseeded runs.
 */
std::vector<SystemConfig>
warmStartReplicas(const SystemConfig &base,
                  const std::string &checkpointPath,
                  const std::vector<std::uint64_t> &seeds);

} // namespace hrsim

#endif // HRSIM_CORE_SWEEP_HH
