/**
 * @file
 * Parallel sweep engine.
 *
 * Every figure of the paper is a sweep: dozens of fully independent
 * runSystem(cfg) points. A SweepRunner owns a fixed pool of worker
 * threads and evaluates a vector of SystemConfig points concurrently,
 * returning RunResults in submission order.
 *
 * Determinism contract: a System is self-contained (its RNG streams
 * derive from cfg.sim.seed, and no simulator state is shared between
 * points), so the metrics of every point are a pure function of its
 * config. Serial (jobs = 1) and parallel (jobs = N) sweeps therefore
 * produce bit-identical RunResults in the same order, regardless of
 * scheduling. The optional reseedPoints mode derives per-point seeds
 * from (base seed, point index) — also independent of scheduling.
 *
 * The contract extends through the observability layer: each point's
 * RunResult carries the materialized MetricRegistry samples
 * (RunResult::metrics), which are part of the same pure function of
 * the config — wall-clock timing lives only in the run manifest, so
 * `--jobs 1` and `--jobs N` serialize byte-identical metric sections.
 *
 * It also extends through the active-set scheduler (src/sim/
 * active_set.hh): which components tick and which cycles fast-forward
 * is itself a pure function of the config, and skipped work is
 * provably side-effect-free, so scheduled and full-scan runs differ
 * only in the sched.* introspection metrics.
 *
 * Scheduling: workers claim points from a shared atomic cursor, so a
 * point that finishes early (an adaptive run that converged after a
 * fraction of its budget, see stats/run_controller.hh) immediately
 * frees its worker for the next point — no static partitioning to
 * rebalance. On top of that, parallel runs claim points in descending
 * estimated-cost order (horizon upper bound x processor count, see
 * estimatedCostWeight()), so a saturated 121-PM point cannot be
 * dealt last and straggle behind an otherwise-drained pool. Point
 * results are written by submission index, so claim order is
 * invisible in the output: serial and parallel sweeps stay
 * bit-identical.
 */

#ifndef HRSIM_CORE_SWEEP_HH
#define HRSIM_CORE_SWEEP_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/system.hh"

namespace hrsim
{

struct SweepOptions
{
    /** Worker threads; 0 selects hardware_concurrency(). */
    unsigned jobs = 0;

    /**
     * Give every point its own seed derived from (its configured
     * seed, its index) via pointSeed(). Off by default so a sweep of
     * explicit configs reproduces the exact serial runSystem() calls.
     */
    bool reseedPoints = false;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run every point and return the results in submission order.
     * With jobs() == 1 the points run inline on the calling thread,
     * exactly like a hand-written serial loop. If any point throws
     * (e.g. StallError), the remaining points still run and the
     * lowest-index exception is rethrown afterwards.
     */
    std::vector<RunResult> run(const std::vector<SystemConfig> &points);

    /** Deterministic per-point seed stream (splitmix64-based). */
    static std::uint64_t pointSeed(std::uint64_t base,
                                   std::size_t index);

    /**
     * Upper-bound cost estimate of one point: horizon cycles (the
     * adaptive maxCycles bound, or the fixed-length end cycle) times
     * the processor count. Used to order parallel claims
     * longest-first; has no effect on any result.
     */
    static double estimatedCostWeight(const SystemConfig &cfg);

  private:
    struct Batch
    {
        const std::vector<SystemConfig> *points = nullptr;
        std::vector<RunResult> *results = nullptr;
        std::vector<std::exception_ptr> *errors = nullptr;
        /** Claim order: submission indices, costliest first. */
        const std::vector<std::size_t> *order = nullptr;
        std::atomic<std::size_t> next{0};
        std::size_t completed = 0; //!< guarded by mu_
        std::size_t attached = 0;  //!< workers inside drain(); mu_
    };

    void workerLoop();
    void runPoint(Batch &batch, std::size_t index) const;
    void drain(Batch &batch);

    SweepOptions opts_;
    unsigned jobs_ = 1;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Batch *batch_ = nullptr; //!< guarded by mu_
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Convenience one-shot sweep: evaluate @a points on @a jobs workers
 * (0 = hardware concurrency) and return results in order.
 */
std::vector<RunResult>
runSweep(const std::vector<SystemConfig> &points, unsigned jobs = 0);

} // namespace hrsim

#endif // HRSIM_CORE_SWEEP_HH
