/**
 * @file
 * Persistent worker pool for the intra-run parallel tick engine.
 *
 * A TickPool executes one phase of one simulated cycle across a fixed
 * set of structural shards (one shard per ring, or one contiguous
 * router-row range of the mesh; see DESIGN.md section 15) and acts as
 * the phase barrier: run() returns only after every shard callback
 * has finished, with all its writes visible to the caller.
 *
 * This is a different animal from SweepRunner (core/sweep.hh), which
 * it generalizes: sweep points are coarse (whole runs, milliseconds
 * to minutes) and load-balanced through a shared claim cursor, while
 * tick phases are microsecond-grained and latency-bound, so TickPool
 *
 *  - pins shard s to participant (s mod threads) — the same worker
 *    re-touches the same shard's cache lines every cycle, and the
 *    assignment is static so no claim cursor sits on the hot path;
 *  - runs the calling thread as participant 0 (no handoff latency);
 *  - synchronizes through a spin-then-yield-then-sleep epoch counter
 *    rather than a mutex/condvar rendezvous: between back-to-back
 *    ticks the workers stay hot and the dispatch costs two atomic
 *    operations, while across idle gaps (fast-forwarded quiescent
 *    stretches, end of run) they fall back to a condition variable
 *    and cost nothing.
 *
 * Determinism: TickPool imposes no ordering between shards within a
 * phase — the networks' shard decomposition guarantees that shards
 * are write-disjoint during a phase (see DESIGN.md section 15), and
 * every cross-shard effect is deferred into per-shard buffers that
 * the caller drains in shard order after the barrier. The pool itself
 * only promises the barrier.
 */

#ifndef HRSIM_CORE_TICK_POOL_HH
#define HRSIM_CORE_TICK_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hrsim
{

class TickPool
{
  public:
    /** Shard callback: fn(ctx, shard). */
    using TickFn = void (*)(void *ctx, int shard);

    /**
     * Create a pool with @a threads participants total (values < 1
     * clamp to 1). threads - 1 workers are spawned; the caller of
     * run() is the remaining participant.
     */
    explicit TickPool(int threads);
    ~TickPool();

    TickPool(const TickPool &) = delete;
    TickPool &operator=(const TickPool &) = delete;

    /** Total participants including the calling thread (>= 1). */
    int threads() const { return threads_; }

    /**
     * Execute fn(ctx, s) for every shard s in [0, numShards), shard s
     * on participant (s mod threads()), and return after all shards
     * completed (full barrier; all shard writes are visible to the
     * caller). Runs inline when the pool has one participant or there
     * is at most one shard. Not reentrant: one run() at a time.
     */
    void run(int numShards, TickFn fn, void *ctx);

    /** Lambda convenience for run(); @a fn must outlive the call. */
    template <typename Fn>
    void
    run(int numShards, Fn &fn)
    {
        run(numShards,
            [](void *ctx, int shard) {
                (*static_cast<Fn *>(ctx))(shard);
            },
            &fn);
    }

    /**
     * Effective tick-thread count for one run: the request (values
     * < 1 clamp to 1) capped by this process's share of the machine
     * when @a sweepJobs runs execute concurrently — the sweep pool
     * and the tick pools draw on one core budget, so
     * jobs x tick-threads never oversubscribes hardware_concurrency.
     */
    static int resolveTickThreads(int requested, unsigned sweepJobs);

  private:
    /** Padded per-worker completion epoch (no false sharing). */
    struct alignas(64) Done
    {
        std::atomic<std::uint64_t> epoch{0};
    };

    void workerLoop(int self);

    int threads_ = 1;

    // Per-dispatch payload; written by run() before the epoch bump
    // publishes it (release/acquire through epoch_).
    TickFn fn_ = nullptr;
    void *ctx_ = nullptr;
    int numShards_ = 0;

    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> stop_{false};
    std::atomic<int> sleeping_{0};
    std::vector<std::unique_ptr<Done>> done_; //!< one per worker

    std::mutex mu_;              //!< cold path only (sleep/shutdown)
    std::condition_variable wake_;
    std::vector<std::thread> workers_;
};

} // namespace hrsim

#endif // HRSIM_CORE_TICK_POOL_HH
