/**
 * @file
 * Whole-system configuration and simulation driver.
 *
 * A System assembles an interconnect (hierarchical ring or 2D mesh),
 * one M-MRP processor and one memory module per PM, and the
 * measurement machinery, then runs the batch-means protocol and
 * returns the paper's metrics: average remote round-trip latency and
 * network / per-ring-level utilization.
 *
 * Every system also owns a MetricRegistry (src/obs/) into which it
 * and its network register named counters and gauges at
 * construction; run() materializes them into RunResult::metrics
 * (plus periodic RunResult::snapshots when SimConfig::metricsEvery
 * is set), and setTracer() attaches an opt-in flit-event tracer.
 */

#ifndef HRSIM_CORE_SYSTEM_HH
#define HRSIM_CORE_SYSTEM_HH

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault_controller.hh"
#include "fault/fault_plan.hh"
#include "obs/metric_registry.hh"
#include "proto/packet_factory.hh"
#include "ring/ring_network.hh"
#include "sim/network.hh"
#include "stats/batch_means.hh"
#include "stats/histogram.hh"
#include "stats/run_controller.hh"
#include "workload/memory.hh"
#include "workload/processor.hh"
#include "workload/trace.hh"
#include "workload/workload_config.hh"

namespace hrsim
{

class TickPool;

/** Thrown when the simulation makes no forward progress. */
class StallError : public std::runtime_error
{
  public:
    explicit StallError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

enum class NetworkKind
{
    HierarchicalRing,
    Mesh,
};

/** Measurement-protocol parameters. */
struct SimConfig
{
    Cycle warmupCycles = 5000; //!< discarded first batch
    Cycle batchCycles = 5000;
    std::uint32_t numBatches = 5;
    std::uint64_t seed = 0x9b1c6e7a2d4f5031ULL;
    /** Cycles without any delivery before declaring a stall. */
    Cycle watchdogCycles = 50000;
    /**
     * Skip ticking provably-idle components (saturated processors,
     * memories with empty completion queues). Metrics are identical
     * either way — the flag exists so the legacy every-cycle path can
     * be benchmarked and regression-checked against the fast one.
     */
    bool idleSkip = true;
    /**
     * Record a mid-run metric snapshot every N cycles (0 = none, the
     * default). Snapshots land in RunResult::snapshots; reading them
     * never perturbs the simulation, so results stay bit-identical
     * with snapshots on or off.
     */
    Cycle metricsEvery = 0;
    /**
     * Worker threads for the intra-run shard-parallel tick engine
     * (core/tick_pool.hh). 1 — the default — keeps the serial
     * columnar tick, byte-identical to earlier releases. N > 1
     * partitions the network into structural shards whose evaluate
     * phases run concurrently with a deterministic commit, still
     * bit-identical to the serial tick at any width (DESIGN.md
     * section 15). Only engaged under the columnar active-scheduled
     * engine; the oracle modes (HRSIM_NO_COLUMNAR,
     * HRSIM_FORCE_FULL_SCAN) force the serial tick regardless. When
     * composing with sweep workers, resolve the two budgets with
     * TickPool::resolveTickThreads().
     */
    int tickThreads = 1;
    /**
     * Adaptive run control (stats/run_controller.hh): stop.relHw > 0
     * replaces the fixed warmup + batch schedule above with MSER
     * warmup detection and a sequential stopping rule bounded by
     * stop.maxCycles. The default (relHw == 0) keeps the fixed-length
     * protocol bit-identical to earlier releases. Zero-valued
     * stop.batchCycles / stop.maxCycles are derived from the fixed
     * schedule; see resolveStopPolicy().
     */
    StopPolicy stop;
};

/**
 * Fill in the derived defaults of @a sim.stop: batchCycles == 0
 * becomes max(sim.batchCycles / 4, 1) (checkpoints fine enough to
 * stop well before the fixed horizon), maxCycles == 0 becomes 8x the
 * fixed-length horizon. Pure function of @a sim.
 */
StopPolicy resolveStopPolicy(const SimConfig &sim);

/**
 * Checkpoint/restore knobs (src/ckpt/; DESIGN.md section 16). All
 * fields are process mechanics, not simulation identity: they never
 * enter configKey(), and a run with any combination of them produces
 * (or resumes into) exactly the cycle sequence of a run without them.
 */
struct CheckpointOptions
{
    /** Write snapshots to this path; empty disables saving. */
    std::string savePath;
    /** Save once when the run reaches the start of this cycle
     *  (0 = never). The snapshot captures state *before* cycle
     *  saveAt evaluates. */
    Cycle saveAt = 0;
    /** Also save at every multiple of this cycle count (0 = never);
     *  each save atomically replaces savePath (crash-safe sweeps). */
    Cycle saveEvery = 0;
    /** End the run right after the saveAt snapshot (warm-start
     *  generation: pay for the warmup once, then stop). */
    bool stopAfterSave = false;

    /** Restore this snapshot before running; empty disables. */
    std::string restorePath;
    /**
     * Warm-start forking: after restoring, reseed every processor's
     * random stream from (forkSeed, pm) so replicas forked from one
     * warmup snapshot are statistically independent (0 = resume the
     * saved streams exactly). Also relaxes the config-key check to
     * ignore the seed field — a fork deliberately diverges there.
     */
    std::uint64_t forkSeed = 0;
};

struct SystemConfig
{
    NetworkKind kind = NetworkKind::HierarchicalRing;

    // Ring-specific knobs.
    RingTopology ringTopo{{4}};
    std::uint32_t globalRingSpeed = 1;
    bool ringBypass = true;
    bool ringWrapRegion = true;
    std::uint32_t ringIriWaitLimit = 0;    //!< 0 = default (32 * cl)
    std::uint32_t ringIriQueuePackets = 1; //!< paper: 1
    /** Slotted (Hector-style) switching instead of wormhole. */
    bool ringSlotted = false;

    // Mesh-specific knobs.
    int meshWidth = 2;
    std::uint32_t meshBufferFlits = 4; //!< 0 selects cl-sized buffers
    bool meshRoundRobin = true; //!< arbitration (ablation switch)

    std::uint32_t cacheLineBytes = 32;
    WorkloadConfig workload;
    SimConfig sim;
    CheckpointOptions ckpt;

    /**
     * Deterministic fault schedule (src/fault/). An empty plan — the
     * default — allocates no fault state anywhere and keeps every
     * artifact byte-identical to a fault-free build; a non-empty plan
     * arms the FaultController, the processors' retry engine and the
     * fault.* / drop.* / retry.* metrics. Not supported with
     * ringSlotted (the slotted data path has no worm-drain story).
     */
    FaultPlan faultPlan;

    /**
     * Replay this trace instead of the synthetic M-MRP generator.
     * The trace must reference only PM ids < numProcessors(); the
     * outstanding limit T and memory model still apply. Not owned;
     * must outlive the System.
     */
    const Trace *trace = nullptr;

    /** Number of PMs implied by the topology. */
    int numProcessors() const;

    /** Convenience constructor for a ring system. */
    static SystemConfig ring(const std::string &topo,
                             std::uint32_t cache_line_bytes);

    /** Convenience constructor for a square mesh system. */
    static SystemConfig mesh(int width, std::uint32_t cache_line_bytes,
                             std::uint32_t buffer_flits);
};

/** Metrics of one simulation run. */
struct RunResult
{
    double avgLatency = 0.0;   //!< remote round-trip, network cycles
    double latencyCI95 = 0.0;  //!< batch-means confidence half-width
    std::uint64_t samples = 0; //!< measured remote completions

    /** Latency distribution percentiles (network cycles). */
    double latencyP50 = 0.0;
    double latencyP95 = 0.0;
    double latencyP99 = 0.0;

    /** Mesh-link utilization, or all-ring utilization for rings. */
    double networkUtilization = 0.0;
    /** Per-hierarchy-level ring utilization; [0] is the global ring. */
    std::vector<double> ringLevelUtilization;

    WorkloadCounters counters;
    /** Cycles actually simulated (the adaptive stop cycle, or the
     *  fixed horizon). */
    Cycle cycles = 0;
    /** Remote completions per cycle per PM over the whole run. */
    double throughputPerPm = 0.0;

    /** Why the run ended; FixedLength for the classic protocol. */
    StopReason stopReason = StopReason::FixedLength;
    /** Final 95% relative half-width (adaptive runs; 0 otherwise). */
    double relHalfWidth = 0.0;
    /** MSER-detected warmup truncation in cycles (adaptive runs;
     *  the configured warmup for fixed-length runs). */
    Cycle warmupCycles = 0;

    /**
     * End-of-run materialization of the system's MetricRegistry,
     * sorted by name. Deterministic: a pure function of the config,
     * byte-identical between serial and parallel sweeps.
     */
    std::vector<MetricSample> metrics;
    /** Mid-run snapshots (SimConfig::metricsEvery; empty if 0). */
    std::vector<MetricSnapshot> snapshots;
};

class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run the full batch-means protocol and collect metrics. */
    RunResult run();

    /** Advance @a cycles cycles (white-box testing hook). */
    void step(Cycle cycles);

    Network &network() { return *network_; }
    const SystemConfig &config() const { return cfg_; }
    Cycle now() const { return now_; }

    /** Transactions currently outstanding across all PMs. */
    int totalOutstanding() const;

    /** Responses still waiting in memory completion queues. */
    std::size_t totalPendingResponses() const;

    const WorkloadCounters &counters() const { return counters_; }
    const BatchMeans &latency() const { return latency_; }
    const Histogram &latencyHistogram() const { return histogram_; }

    /** Every named metric of this system (see src/obs/). */
    const MetricRegistry &metrics() const { return metrics_; }

    /** The fault controller, or nullptr without a fault plan. */
    const FaultController *faults() const { return faults_.get(); }

    /** Retry-engine event counts (all zero without a fault plan). */
    const RetryCounters &retryCounters() const
    {
        return retryCounters_;
    }

    /**
     * Attach (or detach, with nullptr) a flit-event tracer. The
     * tracer observes inject/hop/eject events without touching any
     * simulation state, so results are identical with tracing on or
     * off. Not owned; must outlive the System or be detached first.
     */
    void setTracer(FlitTracer *tracer);

    /**
     * Snapshot the complete simulator state to @a path (atomic
     * temporary-file + rename write). Read-only: saving perturbs
     * nothing, so a run that saves is bit-identical to one that does
     * not. Must be called at a tick boundary (between tickOnce()
     * calls) — mid-cycle staged state has no on-disk representation.
     * Throws CheckpointError on I/O failure or an unsupported network
     * (the slotted ring).
     */
    void saveCheckpoint(const std::string &path) const;

    /**
     * Replace this freshly-constructed System's state with the
     * snapshot at @a path. The file's config key and build-flag plane
     * (columnar / fast-path / active-scheduling oracles) must match
     * this run's — mismatches throw CheckpointError naming both keys.
     * After restoring, run() continues the saved run: running to
     * cycle Y yields byte-identical metrics and flit events to an
     * uninterrupted run reaching Y. With CheckpointOptions::forkSeed,
     * processor streams are reseeded instead for warm-start replicas.
     */
    void restoreCheckpoint(const std::string &path);

    /** Did this System restore from a snapshot? (manifest field) */
    bool restored() const { return restored_; }

  private:
    void buildNetwork();
    void buildWorkload();
    void registerSystemMetrics();
    void tickOnce();

    /** The classic fixed-length batch-means protocol. */
    RunResult runFixed();

    /**
     * Adaptive protocol: run checkpoint to checkpoint under a
     * RunController until it declares the point converged, saturated
     * or out of budget. The decision sequence is a pure function of
     * checkpoint statistics (config + seed), so adaptive runs are
     * bit-identical across reruns and sweep parallelism.
     */
    RunResult runAdaptive();

    /** Fill the result fields shared by both protocols. */
    void finishResult(RunResult &result, Cycle end,
                      Cycle measured_cycles);

    /**
     * Save-point hook, called at the top of each run-loop iteration
     * (tick boundary): writes the snapshot when now_ hits saveAt or a
     * saveEvery multiple, and raises saveStopRequested_ when the
     * saveAt snapshot should also end the run. Returns true when a
     * snapshot was written — the run loop then retries its
     * fast-forward so a quiescent gap the boundary interrupted
     * resumes jumping instead of ticking, keeping skipped-cycle
     * totals identical to a run without saving.
     */
    bool maybeSaveCheckpoint();

    /** Outstanding transactions as a fraction of the T cap. */
    double outstandingOccupancy() const;

    /**
     * Cycle fast-forward: when the network is empty and every
     * component is asleep, jump now_ straight to the earliest future
     * event — the soonest processor wake, the soonest pending memory
     * completion — clamped so no protocol boundary (warmup start,
     * metrics snapshot, watchdog check) is stepped over. The skipped
     * cycles are provably no-ops, so results stay bit-identical; the
     * count lands in the sched.skipped_cycles metric. No-op unless
     * active scheduling is on (idleSkip and not forced off via the
     * HRSIM_FORCE_FULL_SCAN environment variable).
     */
    void fastForwardQuiescent(Cycle limit);

    SystemConfig cfg_;
    /** Resolved adaptive policy (enabled() == false for fixed). */
    StopPolicy stopPolicy_;
    std::unique_ptr<Network> network_;
    /** Shard-parallel tick pool; non-null only when
     *  cfg_.sim.tickThreads > 1 (core/tick_pool.hh). */
    std::unique_ptr<TickPool> tickPool_;
    /** Did the network actually engage the parallel tick engine?
     *  False when an oracle mode forces the serial tick even though
     *  tickPool_ exists; gates the tick.* metrics. */
    bool tickParallelEngaged_ = false;
    /** Non-null only when cfg_.faultPlan is non-empty. */
    std::unique_ptr<FaultController> faults_;
    RetryCounters retryCounters_;
    std::unique_ptr<PacketFactory> factory_;
    std::vector<std::unique_ptr<TrafficSource>> processors_;
    std::vector<std::unique_ptr<MemoryModule>> memories_;
    BatchMeans latency_;
    Histogram histogram_;
    WorkloadCounters counters_;
    MetricRegistry metrics_;
    FlitTracer *tracer_ = nullptr;

    Cycle now_ = 0;
    Cycle lastProgress_ = 0;
    std::uint64_t lastActivity_ = 0;

    /** Active-set scheduling + fast-forward enabled (see ctor). */
    bool activeSched_ = false;
    /** Quiescent cycles fast-forwarded over (sched.skipped_cycles). */
    std::uint64_t skippedCycles_ = 0;

    // Adaptive-run introspection (run.* gauges; see DESIGN.md s11).
    /** Stop reason code; FixedLength (0) while still running. */
    StopReason stopReason_ = StopReason::FixedLength;

    // Checkpoint/restore state (src/ckpt/; DESIGN.md section 16).
    /** Adaptive-run controller; a member (not a runAdaptive() local)
     *  so its decision history can travel in snapshots. Created by
     *  runAdaptive() on first use or by restoreCheckpoint(). */
    std::unique_ptr<RunController> controller_;
    /** Mid-run metric snapshots (SimConfig::metricsEvery); a member
     *  so a restored run's artifact reproduces the snapshots taken
     *  before the save. */
    std::vector<MetricSnapshot> snapshots_;
    /** Restored from a snapshot: runAdaptive() must not restart the
     *  utilization window the snapshot already carries. */
    bool restored_ = false;
    /** The saveAt + stopAfterSave snapshot fired: end the run. */
    bool saveStopRequested_ = false;
    /** The saveAt snapshot fired; releases its fast-forward clamp. */
    bool saveAtDone_ = false;
    /** Cycle of the last saveEvery snapshot (0 = none yet); a
     *  boundary's clamp releases once its save has fired. */
    Cycle lastEverySave_ = 0;

    // Skip-idle bookkeeping (used when cfg_.sim.idleSkip).
    /** Per-PM cycle of the next required processor tick. */
    std::vector<Cycle> procWake_;
    /** PMs whose memory has a non-empty completion queue. */
    std::vector<NodeId> activeMems_;
    /** Membership flags for activeMems_ (one per PM). */
    std::vector<std::uint8_t> memActive_;
};

/** Build a System from @a cfg, run it, and return the metrics. */
RunResult runSystem(const SystemConfig &cfg);

} // namespace hrsim

#endif // HRSIM_CORE_SYSTEM_HH
