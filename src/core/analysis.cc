#include "core/analysis.hh"

#include <algorithm>

#include "common/log.hh"

namespace hrsim
{

std::optional<double>
crossoverPoint(const std::vector<std::pair<double, double>> &a,
               const std::vector<std::pair<double, double>> &b)
{
    // Piecewise-linear interpolation of each series, evaluated on the
    // union of sample positions within the common x range.
    if (a.size() < 2 || b.size() < 2)
        return std::nullopt;

    const auto interp =
        [](const std::vector<std::pair<double, double>> &s,
           double x) -> std::optional<double> {
        if (x < s.front().first || x > s.back().first)
            return std::nullopt;
        for (std::size_t i = 1; i < s.size(); ++i) {
            if (x <= s[i].first) {
                const auto [x0, y0] = s[i - 1];
                const auto [x1, y1] = s[i];
                if (x1 == x0)
                    return y0;
                const double t = (x - x0) / (x1 - x0);
                return y0 + t * (y1 - y0);
            }
        }
        return s.back().second;
    };

    std::vector<double> xs;
    for (const auto &[x, y] : a)
        xs.push_back(x);
    for (const auto &[x, y] : b)
        xs.push_back(x);
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

    std::optional<double> prev_x;
    double prev_diff = 0.0;
    for (const double x : xs) {
        const auto ya = interp(a, x);
        const auto yb = interp(b, x);
        if (!ya || !yb)
            continue;
        const double diff = *yb - *ya; // B cheaper when negative
        if (prev_x) {
            if (prev_diff > 0.0 && diff <= 0.0) {
                // Linear root between prev_x and x.
                const double t = prev_diff / (prev_diff - diff);
                return *prev_x + t * (x - *prev_x);
            }
        } else if (diff <= 0.0) {
            return x; // B already cheaper at the first common point
        }
        prev_x = x;
        prev_diff = diff;
    }
    return std::nullopt;
}

namespace
{

struct Table2Entry
{
    int processors;
    int lineBytes;
    const char *topology;
};

// Table 2 of the paper: optimal topologies for R=1.0, C=0.04, T=4.
constexpr Table2Entry table2[] = {
    {4, 16, "4"},       {4, 32, "4"},       {4, 64, "4"},
    {4, 128, "4"},
    {6, 16, "6"},       {6, 32, "6"},       {6, 64, "6"},
    {6, 128, "2:3"},
    {8, 16, "8"},       {8, 32, "8"},       {8, 64, "2:4"},
    {8, 128, "2:4"},
    {12, 16, "12"},     {12, 32, "2:6"},    {12, 64, "2:6"},
    {12, 128, "3:4"},
    {18, 16, "2:9"},    {18, 32, "3:6"},    {18, 64, "3:6"},
    {18, 128, "3:2:3"},
    {24, 16, "2:12"},   {24, 32, "3:8"},    {24, 64, "2:2:6"},
    {24, 128, "2:3:4"},
    {36, 16, "3:12"},   {36, 32, "2:3:6"},  {36, 64, "2:3:6"},
    {36, 128, "3:3:4"},
    {54, 16, "2:3:9"},  {54, 32, "3:3:6"},  {54, 64, "3:3:6"},
    {54, 128, "3:3:2:3"},
    {72, 16, "2:3:12"}, {72, 32, "3:3:8"},  {72, 64, "2:2:3:6"},
    {72, 128, "2:3:3:4"},
    {108, 16, "3:3:12"}, {108, 32, "2:3:3:6"}, {108, 64, "2:3:3:6"},
    {108, 128, "3:3:3:4"},
};

} // namespace

std::optional<std::string>
paperTable2Topology(int processors, int cache_line_bytes)
{
    for (const auto &entry : table2) {
        if (entry.processors == processors &&
            entry.lineBytes == cache_line_bytes) {
            return std::string(entry.topology);
        }
    }
    return std::nullopt;
}

std::vector<int>
paperTable2Sizes()
{
    return {4, 6, 8, 12, 18, 24, 36, 54, 72, 108};
}

std::vector<std::string>
standardRingLadder(int cache_line_bytes)
{
    std::vector<std::string> ladder;
    for (const int p : paperTable2Sizes()) {
        const auto topo = paperTable2Topology(p, cache_line_bytes);
        HRSIM_ASSERT(topo.has_value());
        ladder.push_back(*topo);
    }
    return ladder;
}

std::vector<int>
standardMeshWidths(int max_processors)
{
    std::vector<int> widths;
    for (int w = 2; w * w <= max_processors; ++w)
        widths.push_back(w);
    return widths;
}

} // namespace hrsim
