#include "core/experiment.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <set>

namespace hrsim
{

Report::Report(std::string title, std::string x_label,
               std::string y_label)
    : title_(std::move(title)), xLabel_(std::move(x_label)),
      yLabel_(std::move(y_label))
{}

void
Report::add(const std::string &series, double x, double y)
{
    for (auto &data : series_) {
        if (data.name == series) {
            data.points.emplace_back(x, y);
            data.byX.emplace(x, y); // keep the first y, as value() did
            return;
        }
    }
    series_.push_back(SeriesData{series, {{x, y}}, {{x, y}}});
}

const Report::SeriesData *
Report::find(const std::string &series) const
{
    for (const auto &data : series_) {
        if (data.name == series)
            return &data;
    }
    return nullptr;
}

std::optional<double>
Report::value(const std::string &series, double x) const
{
    const SeriesData *data = find(series);
    if (!data)
        return std::nullopt;
    const auto it = data->byX.find(x);
    if (it == data->byX.end())
        return std::nullopt;
    return it->second;
}

std::vector<std::string>
Report::seriesNames() const
{
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto &data : series_)
        names.push_back(data.name);
    return names;
}

std::vector<std::pair<double, double>>
Report::seriesPoints(const std::string &series) const
{
    const SeriesData *data = find(series);
    return data ? data->points
                : std::vector<std::pair<double, double>>{};
}

void
Report::print(std::ostream &out) const
{
    out << "== " << title_ << " ==\n";
    if (series_.empty()) {
        out << "(no data)\n";
        return;
    }

    std::set<double> xs;
    for (const auto &data : series_) {
        for (const auto &[x, y] : data.points)
            xs.insert(x);
    }

    const int xw = static_cast<int>(
        std::max<std::size_t>(xLabel_.size() + 2, 10));
    out << std::left << std::setw(xw) << xLabel_;
    std::vector<int> widths;
    for (const auto &data : series_) {
        const int w = static_cast<int>(
            std::max<std::size_t>(data.name.size() + 2, 12));
        widths.push_back(w);
        out << std::setw(w) << data.name;
    }
    out << " (" << yLabel_ << ")\n";

    for (const double x : xs) {
        if (x == std::floor(x)) {
            out << std::left << std::setw(xw)
                << static_cast<long long>(x);
        } else {
            out << std::left << std::setw(xw) << x;
        }
        for (std::size_t s = 0; s < series_.size(); ++s) {
            const auto it = series_[s].byX.find(x);
            if (it != series_[s].byX.end()) {
                out << std::setw(widths[s]) << std::fixed
                    << std::setprecision(1) << it->second;
            } else {
                out << std::setw(widths[s]) << "-";
            }
        }
        out << "\n";
    }
    out.unsetf(std::ios::fixed);
}

void
Report::writeCsv(std::ostream &out) const
{
    out << std::setprecision(10);
    out << "title,series,x,y\n";
    for (const auto &data : series_) {
        for (const auto &[x, y] : data.points) {
            out << title_ << "," << data.name << "," << x << "," << y
                << "\n";
        }
    }
}

} // namespace hrsim
