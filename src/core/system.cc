#include "core/system.hh"

#include <algorithm>
#include <cstdlib>

#include "ckpt/codec.hh"
#include "ckpt/result_io.hh"
#include "common/log.hh"
#include "core/tick_pool.hh"
#include "mesh/mesh_network.hh"
#include "obs/manifest.hh"
#include "ring/slotted_network.hh"
#include "sim/columns.hh"
#include "sim/fastpath.hh"
#include "workload/region.hh"

namespace hrsim
{

int
SystemConfig::numProcessors() const
{
    if (kind == NetworkKind::HierarchicalRing)
        return static_cast<int>(ringTopo.numProcessors());
    return meshWidth * meshWidth;
}

SystemConfig
SystemConfig::ring(const std::string &topo,
                   std::uint32_t cache_line_bytes)
{
    SystemConfig cfg;
    cfg.kind = NetworkKind::HierarchicalRing;
    cfg.ringTopo = RingTopology::parse(topo);
    cfg.cacheLineBytes = cache_line_bytes;
    return cfg;
}

SystemConfig
SystemConfig::mesh(int width, std::uint32_t cache_line_bytes,
                   std::uint32_t buffer_flits)
{
    SystemConfig cfg;
    cfg.kind = NetworkKind::Mesh;
    cfg.meshWidth = width;
    cfg.meshBufferFlits = buffer_flits;
    cfg.cacheLineBytes = cache_line_bytes;
    return cfg;
}

StopPolicy
resolveStopPolicy(const SimConfig &sim)
{
    StopPolicy policy = sim.stop;
    if (!policy.enabled())
        return policy;
    if (policy.batchCycles == 0)
        policy.batchCycles = std::max<Cycle>(sim.batchCycles / 4, 1);
    if (policy.maxCycles == 0) {
        policy.maxCycles =
            8 * (sim.warmupCycles +
                 sim.batchCycles * static_cast<Cycle>(sim.numBatches));
    }
    return policy;
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), stopPolicy_(resolveStopPolicy(cfg.sim)),
      latency_(stopPolicy_.enabled()
                   ? BatchMeans::adaptive(stopPolicy_.batchCycles)
                   : BatchMeans(cfg.sim.warmupCycles,
                                cfg.sim.batchCycles,
                                cfg.sim.numBatches))
{
    buildNetwork();
    buildWorkload();

    if (!cfg_.faultPlan.empty()) {
        if (cfg_.kind == NetworkKind::HierarchicalRing &&
            cfg_.ringSlotted) {
            fatal("System: fault injection is not supported with the "
                  "slotted ring (no worm-drain path); use the "
                  "wormhole ring or the mesh");
        }
        // Validates every target against the topology and shares the
        // conservation ledger with the network.
        faults_ = std::make_unique<FaultController>(cfg_.faultPlan,
                                                    *network_);
        for (auto &processor : processors_) {
            processor->setRetryPolicy(&cfg_.faultPlan.retry,
                                      &retryCounters_);
        }
    }

    network_->setDeliveryHandler(
        [this](const Packet &pkt, Cycle when) {
            lastProgress_ = when;
            const auto dst = static_cast<std::size_t>(pkt.dst);
            HRSIM_ASSERT(dst < processors_.size());
            if (isRequest(pkt.type)) {
                memories_[dst]->onRequest(pkt, when);
                if (!memActive_[dst]) {
                    memActive_[dst] = 1;
                    activeMems_.push_back(pkt.dst);
                }
            } else {
                processors_[dst]->onResponse(pkt, when);
                // A sleeping processor gains a free slot: it must be
                // ticked again from the next cycle on.
                if (procWake_[dst] > when + 1)
                    procWake_[dst] = when + 1;
            }
        });

    const auto num_pms = processors_.size();
    procWake_.assign(num_pms, 0);
    memActive_.assign(num_pms, 0);
    activeMems_.reserve(num_pms);

    // Active-set scheduling rides on the idleSkip contract; the
    // HRSIM_FORCE_FULL_SCAN environment variable (any value but "" or
    // "0") forces the legacy full-scan path so the two can be
    // regression-checked against each other.
    const char *force = std::getenv("HRSIM_FORCE_FULL_SCAN");
    const bool full_scan =
        force != nullptr && force[0] != '\0' &&
        !(force[0] == '0' && force[1] == '\0');
    activeSched_ = cfg_.sim.idleSkip && !full_scan;

    // The columnar tick engine has its own oracle switch
    // (HRSIM_NO_COLUMNAR, read once here); see src/sim/columns.hh.
    // Must precede setActiveScheduling() so its wake seeding lands
    // in the columnar bitmap mask rather than the legacy ActiveSet.
    network_->setColumnar(columnarEnabled());

    network_->setActiveScheduling(activeSched_);

    // The worm-streaming fast path has its own oracle switch
    // (HRSIM_NO_FASTPATH, read once here); see src/sim/fastpath.hh.
    // Must precede registerSystemMetrics(): the streamed-flits
    // metrics register only when the fast path is on.
    network_->setFastPath(fastPathEnabled());

    // Shard-parallel tick engine (core/tick_pool.hh). The pool is
    // only built when asked for, and the network only engages it
    // under the columnar active-scheduled engine — the oracle modes
    // keep the serial tick, so a parallel run can always be diffed
    // against them. Must precede registerSystemMetrics(): the tick.*
    // counters register only when shards can actually run.
    if (cfg_.sim.tickThreads > 1) {
        tickPool_ = std::make_unique<TickPool>(
            static_cast<unsigned>(cfg_.sim.tickThreads));
        network_->setTickParallel(tickPool_.get());
        // Mirrors the networks' engagement rule; the slotted ring
        // has no parallel engine at all.
        tickParallelEngaged_ =
            activeSched_ && columnarEnabled() &&
            !(cfg_.kind == NetworkKind::HierarchicalRing &&
              cfg_.ringSlotted);
    }

    registerSystemMetrics();
}

System::~System() = default;

void
System::buildNetwork()
{
    if (cfg_.kind == NetworkKind::HierarchicalRing &&
        cfg_.ringSlotted) {
        SlottedRingNetwork::Params params;
        params.topo = cfg_.ringTopo;
        params.cacheLineBytes = cfg_.cacheLineBytes;
        params.globalRingSpeed = cfg_.globalRingSpeed;
        network_ = std::make_unique<SlottedRingNetwork>(params);
        factory_ = std::make_unique<PacketFactory>(
            ChannelSpec::ring(), cfg_.cacheLineBytes);
    } else if (cfg_.kind == NetworkKind::HierarchicalRing) {
        RingNetwork::Params params;
        params.topo = cfg_.ringTopo;
        params.cacheLineBytes = cfg_.cacheLineBytes;
        params.globalRingSpeed = cfg_.globalRingSpeed;
        params.nicBypass = cfg_.ringBypass;
        params.iriWaitLimit = cfg_.ringIriWaitLimit;
        params.iriQueuePackets = cfg_.ringIriQueuePackets;
        network_ = std::make_unique<RingNetwork>(params);
        factory_ = std::make_unique<PacketFactory>(
            ChannelSpec::ring(), cfg_.cacheLineBytes);
    } else {
        MeshNetwork::Params params;
        params.width = cfg_.meshWidth;
        params.cacheLineBytes = cfg_.cacheLineBytes;
        params.bufferFlits = cfg_.meshBufferFlits;
        params.roundRobinArbitration = cfg_.meshRoundRobin;
        network_ = std::make_unique<MeshNetwork>(params);
        factory_ = std::make_unique<PacketFactory>(
            ChannelSpec::mesh(), cfg_.cacheLineBytes);
    }
}

void
System::buildWorkload()
{
    const int num_pms = network_->numProcessors();
    if (cfg_.trace != nullptr && cfg_.trace->maxNode() >= num_pms) {
        fatal("System: trace references PM " +
              std::to_string(cfg_.trace->maxNode()) +
              " but the network has only " +
              std::to_string(num_pms) + " PMs");
    }
    processors_.reserve(static_cast<std::size_t>(num_pms));
    memories_.reserve(static_cast<std::size_t>(num_pms));
    for (NodeId pm = 0; pm < num_pms; ++pm) {
        if (cfg_.trace != nullptr) {
            processors_.push_back(std::make_unique<TraceProcessor>(
                pm, cfg_.trace->forPm(pm),
                cfg_.workload.outstandingT,
                cfg_.workload.memoryLatency, *factory_, *network_,
                latency_, counters_));
        } else {
            std::vector<NodeId> region;
            if (cfg_.kind == NetworkKind::HierarchicalRing) {
                region = ringRegion(pm, num_pms,
                                    cfg_.workload.localityR,
                                    cfg_.ringWrapRegion);
            } else {
                region = meshRegion(pm, cfg_.meshWidth,
                                    cfg_.workload.localityR);
            }
            processors_.push_back(std::make_unique<Processor>(
                pm, std::move(region), cfg_.workload, *factory_,
                *network_, latency_, counters_, cfg_.sim.seed));
        }
        processors_.back()->setHistogram(&histogram_);
        memories_.push_back(std::make_unique<MemoryModule>(
            pm, cfg_.workload.memoryLatency, *factory_, *network_,
            cfg_.workload.memorySerialized));
    }
}

void
System::registerSystemMetrics()
{
    metrics_.addCounter("workload.misses_generated",
                        &counters_.missesGenerated);
    metrics_.addCounter("workload.remote_issued",
                        &counters_.remoteIssued);
    metrics_.addCounter("workload.remote_completed",
                        &counters_.remoteCompleted);
    metrics_.addCounter("workload.local_issued",
                        &counters_.localIssued);
    metrics_.addCounter("workload.local_completed",
                        &counters_.localCompleted);
    metrics_.addCounter("workload.blocked_cycles",
                        &counters_.blockedCycles);

    metrics_.addGauge("latency.avg",
                      [this]() { return latency_.mean(); });
    metrics_.addGauge("latency.ci95",
                      [this]() { return latency_.halfWidth95(); });
    metrics_.addCounter("latency.samples",
                        [this]() { return latency_.sampleCount(); });
    metrics_.addHistogram("latency", &histogram_);

    metrics_.addGauge("sim.cycles", [this]() {
        return static_cast<double>(now_);
    });
    metrics_.addGauge("sim.outstanding", [this]() {
        return static_cast<double>(totalOutstanding());
    });
    metrics_.addGauge("sim.pending_responses", [this]() {
        return static_cast<double>(totalPendingResponses());
    });

    metrics_.addGauge("net.util", [this]() {
        return network_->utilization().totalUtilization();
    });
    metrics_.addGauge("throughput.per_pm", [this]() {
        double measured;
        if (stopPolicy_.enabled()) {
            // Adaptive: the measured window is everything after the
            // current MSER truncation. now_ can sit exactly on the
            // truncation boundary early in the run.
            const Cycle trunc =
                static_cast<Cycle>(latency_.truncationBatch()) *
                stopPolicy_.batchCycles;
            measured = now_ > trunc
                           ? static_cast<double>(now_ - trunc)
                           : 1.0;
        } else {
            measured = static_cast<double>(cfg_.sim.batchCycles) *
                       cfg_.sim.numBatches;
        }
        return static_cast<double>(latency_.sampleCount()) /
               (measured *
                static_cast<double>(network_->numProcessors()));
    });

    // Adaptive run control introspection. Registered only when the
    // sequential stopping rule is on, so fixed-length artifacts stay
    // byte-identical to earlier releases.
    if (stopPolicy_.enabled()) {
        metrics_.addGauge("run.stop_reason", [this]() {
            return static_cast<double>(stopReason_);
        });
        metrics_.addGauge("run.cycles_simulated", [this]() {
            return static_cast<double>(now_);
        });
        metrics_.addGauge("run.rel_hw", [this]() {
            const double mean = latency_.mean();
            return mean > 0.0 ? latency_.halfWidth95() / mean : 0.0;
        });
        metrics_.addGauge("run.warmup_cycles", [this]() {
            return static_cast<double>(
                static_cast<Cycle>(latency_.truncationBatch()) *
                stopPolicy_.batchCycles);
        });
    }

    // Scheduler introspection. Registered only when active
    // scheduling is on so full-scan runs stay comparable to
    // pre-scheduler artifacts (tests strip the sched.* namespace
    // before comparing the two modes).
    if (activeSched_) {
        metrics_.addCounter("sched.skipped_cycles", &skippedCycles_);
        metrics_.addGauge("sched.active_nodes", [this]() {
            return static_cast<double>(network_->activeNodeCount());
        });
    }

    // Parallel-tick introspection. Registered only when the shard
    // engine is engaged (tickThreads > 1 under the columnar active-
    // scheduled tick), so serial and oracle-mode artifacts stay
    // byte-identical — the same convention as sched.*.
    if (tickParallelEngaged_) {
        metrics_.addCounter("tick.parallel_ticks", [this]() {
            return network_->tickParallelStats().parallelTicks;
        });
        metrics_.addCounter("tick.shard_evals", [this]() {
            return network_->tickParallelStats().shardEvals;
        });
        metrics_.addGauge("tick.threads", [this]() {
            return static_cast<double>(cfg_.sim.tickThreads);
        });
    }

    // Fault-injection introspection. Registered only under a fault
    // plan (same convention as sched.*): fault-free artifacts never
    // mention the subsystem.
    if (faults_) {
        faults_->registerMetrics(metrics_);
        metrics_.addCounter("retry.reissued",
                            &retryCounters_.reissued);
        metrics_.addCounter("retry.stale_responses",
                            &retryCounters_.stale);
        metrics_.addCounter("retry.abandoned",
                            &retryCounters_.abandoned);
    }

    network_->registerMetrics(metrics_);
}

void
System::setTracer(FlitTracer *tracer)
{
    tracer_ = tracer;
    network_->setTracer(tracer);
}

void
System::tickOnce()
{
    if constexpr (FlitTracer::compiledIn()) {
        if (tracer_)
            tracer_->setCycle(now_);
    }
    // Fault edges fire before anything evaluates the cycle, so a
    // window [s, e) is in force for exactly the ticks it names (and
    // the lazy replay stays jump-safe; see fault_controller.hh).
    if (faults_)
        faults_->advanceTo(now_);
    if (cfg_.sim.idleSkip) {
        // Fast path: tick only components with work to do. The
        // nextWake()/syncSkipped() contract keeps every metric
        // bit-identical to the every-cycle path below.
        for (std::size_t i = 0; i < processors_.size(); ++i) {
            if (procWake_[i] > now_)
                continue;
            processors_[i]->tick(now_);
            procWake_[i] = processors_[i]->nextWake(now_);
        }
        for (std::size_t i = 0; i < activeMems_.size();) {
            const auto pm = static_cast<std::size_t>(activeMems_[i]);
            memories_[pm]->tick(now_);
            if (memories_[pm]->pendingResponses() == 0) {
                // Drained: drop from the active list (order within
                // the list is immaterial — memories only touch their
                // own NIC queue).
                memActive_[pm] = 0;
                activeMems_[i] = activeMems_.back();
                activeMems_.pop_back();
            } else {
                ++i;
            }
        }
    } else {
        for (auto &processor : processors_)
            processor->tick(now_);
        for (auto &memory : memories_)
            memory->tick(now_);
    }
    network_->tick(now_);

    // Issue/completion activity also counts as forward progress (a
    // low-rate workload can legitimately go long stretches without a
    // delivery in flight).
    const std::uint64_t activity =
        counters_.remoteIssued + counters_.localIssued +
        counters_.remoteCompleted + counters_.localCompleted;
    if (activity != lastActivity_) {
        lastActivity_ = activity;
        lastProgress_ = now_;
    }

    if (cfg_.sim.watchdogCycles > 0 &&
        now_ - lastProgress_ > cfg_.sim.watchdogCycles) {
        // Only an actual wedged transaction counts as a stall; an
        // idle system (nothing outstanding) is simply quiescent.
        if (totalOutstanding() > 0) {
            throw StallError(
                "no packet delivered for " +
                std::to_string(now_ - lastProgress_) +
                " cycles with " + std::to_string(totalOutstanding()) +
                " transactions outstanding at cycle " +
                std::to_string(now_));
        }
        lastProgress_ = now_;
    }
    ++now_;
}

void
System::fastForwardQuiescent(Cycle limit)
{
    if (!activeSched_ || !network_->isIdle())
        return;

    Cycle target = limit;
    // Land exactly on the warmup boundary so measurement starts on
    // schedule, and never jump past the next watchdog check or
    // metrics-snapshot tick. <= because run() calls this before its
    // warmup check: a jump attempted AT the boundary must stay put
    // (target <= now_ below) or startMeasurement() is skipped.
    if (now_ <= cfg_.sim.warmupCycles &&
        target > cfg_.sim.warmupCycles) {
        target = cfg_.sim.warmupCycles;
    }
    if (cfg_.sim.watchdogCycles > 0) {
        target = std::min(
            target, lastProgress_ + cfg_.sim.watchdogCycles + 1);
    }
    if (cfg_.sim.metricsEvery != 0) {
        // The tick at k*every - 1 publishes the snapshot for k*every.
        target = std::min(
            target, (now_ / cfg_.sim.metricsEvery + 1) *
                            cfg_.sim.metricsEvery -
                        1);
    }
    // Never jump over a pending save point: the snapshot must capture
    // the state at exactly the requested cycle. <= (a jump attempted
    // AT the boundary stays put), because the run loop saves after
    // this call — same reasoning as the warmup clamp above. Once a
    // boundary's save has fired the clamp releases, so the run loop's
    // retry resumes the jump and the no-op gap is merely split across
    // two jumps: skipped-cycle totals stay bit-identical with saving
    // on or off.
    if (!cfg_.ckpt.savePath.empty()) {
        if (cfg_.ckpt.saveAt != 0 && !saveAtDone_ &&
            now_ <= cfg_.ckpt.saveAt && target > cfg_.ckpt.saveAt) {
            target = cfg_.ckpt.saveAt;
        }
        if (cfg_.ckpt.saveEvery != 0) {
            const bool pending_here =
                now_ % cfg_.ckpt.saveEvery == 0 && now_ != 0 &&
                now_ != lastEverySave_;
            const Cycle boundary =
                pending_here ? now_
                             : (now_ / cfg_.ckpt.saveEvery + 1) *
                                   cfg_.ckpt.saveEvery;
            target = std::min(target, boundary);
        }
    }

    // Earliest future event: the soonest processor wake or pending
    // memory completion. (A ready-but-uninjected response implies a
    // non-idle network next tick, so activeMems_ deadlines are
    // always in the future here.)
    for (const Cycle wake : procWake_)
        target = std::min(target, wake);
    for (const NodeId pm : activeMems_) {
        target = std::min(
            target,
            memories_[static_cast<std::size_t>(pm)]->nextReady());
    }

    if (target <= now_)
        return;
    skippedCycles_ += target - now_;
    now_ = target;
}

void
System::step(Cycle cycles)
{
    const Cycle target = now_ + cycles;
    while (now_ < target) {
        fastForwardQuiescent(target);
        if (now_ >= target)
            break;
        tickOnce();
    }
}

int
System::totalOutstanding() const
{
    int total = 0;
    for (const auto &processor : processors_)
        total += processor->outstanding();
    return total;
}

std::size_t
System::totalPendingResponses() const
{
    std::size_t total = 0;
    for (const auto &memory : memories_)
        total += memory->pendingResponses();
    return total;
}

RunResult
System::run()
{
    if (!cfg_.ckpt.restorePath.empty() && !restored_)
        restoreCheckpoint(cfg_.ckpt.restorePath);
    return stopPolicy_.enabled() ? runAdaptive() : runFixed();
}

RunResult
System::runFixed()
{
    const Cycle end = latency_.endCycle();
    UtilizationTracker &util = network_->utilization();

    while (now_ < end) {
        fastForwardQuiescent(end);
        if (now_ >= end)
            break;
        // Save before the warmup check: a snapshot at the warmup
        // boundary captures the pre-measurement state, and the
        // restored run re-runs startMeasurement() exactly where the
        // uninterrupted one did. After a save, retry the fast-forward
        // first — if the boundary interrupted a quiescent gap, the
        // jump resumes instead of burning a tick the uninterrupted
        // run would have skipped.
        if (maybeSaveCheckpoint()) {
            if (saveStopRequested_)
                break;
            continue;
        }
        if (now_ == cfg_.sim.warmupCycles)
            util.startMeasurement(now_);
        tickOnce();
        if (cfg_.sim.metricsEvery != 0 && now_ < end &&
            now_ % cfg_.sim.metricsEvery == 0) {
            // Snapshots are read-only: markSnapshot() provisionally
            // times the utilization window and the registry samplers
            // only read component state.
            util.markSnapshot(now_);
            snapshots_.push_back({now_, metrics_.snapshot()});
        }
    }
    const Cycle stop = saveStopRequested_ ? now_ : end;
    // A stop-after-save at or before the warmup boundary never opened
    // the measurement window; there is nothing to close.
    if (*util.measuringFlag())
        util.stopMeasurement(stop);
    // Credit cycles skipped by sleeping processors at the horizon so
    // counters match the every-cycle path exactly.
    for (auto &processor : processors_)
        processor->syncSkipped(stop);

    RunResult result;
    result.stopReason = StopReason::FixedLength;
    result.warmupCycles = cfg_.sim.warmupCycles;
    result.snapshots = std::move(snapshots_);
    const Cycle measured =
        saveStopRequested_
            ? stop - std::min(stop, cfg_.sim.warmupCycles)
            : cfg_.sim.batchCycles *
                  static_cast<Cycle>(cfg_.sim.numBatches);
    finishResult(result, stop, measured);
    return result;
}

double
System::outstandingOccupancy() const
{
    const double cap =
        static_cast<double>(cfg_.workload.outstandingT) *
        static_cast<double>(network_->numProcessors());
    return cap > 0.0 ? static_cast<double>(totalOutstanding()) / cap
                     : 0.0;
}

RunResult
System::runAdaptive()
{
    UtilizationTracker &util = network_->utilization();
    // No a-priori warmup: the whole run is measured and the MSER
    // truncation corrects the latency estimate afterwards. Link
    // utilization keeps the full window — its transient bias decays
    // with run length and it is not the convergence target. A
    // restored run already carries the open window in its snapshot.
    if (!restored_)
        util.startMeasurement(now_);

    if (!controller_) {
        controller_ =
            std::make_unique<RunController>(stopPolicy_, latency_);
    }
    RunController::Decision decision;
    do {
        const Cycle checkpoint = controller_->nextCheckpoint();
        while (now_ < checkpoint) {
            fastForwardQuiescent(checkpoint);
            if (now_ >= checkpoint)
                break;
            if (maybeSaveCheckpoint()) {
                if (saveStopRequested_)
                    break;
                continue;
            }
            tickOnce();
            if (cfg_.sim.metricsEvery != 0 &&
                now_ % cfg_.sim.metricsEvery == 0) {
                util.markSnapshot(now_);
                snapshots_.push_back({now_, metrics_.snapshot()});
            }
        }
        if (saveStopRequested_)
            break;
        decision =
            controller_->onCheckpoint(now_, outstandingOccupancy());
    } while (!decision.stop);

    const Cycle end = now_;
    util.stopMeasurement(end);
    for (auto &processor : processors_)
        processor->syncSkipped(end);

    stopReason_ = decision.reason;

    RunResult result;
    result.stopReason = decision.reason;
    result.warmupCycles = controller_->warmupCycles();
    const double mean = latency_.mean();
    result.relHalfWidth =
        mean > 0.0 ? latency_.halfWidth95() / mean : 0.0;
    result.snapshots = std::move(snapshots_);
    finishResult(result, end, end - controller_->warmupCycles());
    return result;
}

void
System::finishResult(RunResult &result, Cycle end,
                     Cycle measured_cycles)
{
    UtilizationTracker &util = network_->utilization();
    result.avgLatency = latency_.mean();
    result.latencyCI95 = latency_.halfWidth95();
    result.samples = latency_.sampleCount();
    result.latencyP50 = histogram_.p50();
    result.latencyP95 = histogram_.p95();
    result.latencyP99 = histogram_.p99();
    result.counters = counters_;
    result.cycles = end;
    result.networkUtilization = util.totalUtilization();
    if (cfg_.kind == NetworkKind::HierarchicalRing &&
        cfg_.ringSlotted) {
        auto &ring = static_cast<SlottedRingNetwork &>(*network_);
        for (int level = 0; level < ring.numLevels(); ++level)
            result.ringLevelUtilization.push_back(
                ring.levelUtilization(level));
    } else if (cfg_.kind == NetworkKind::HierarchicalRing) {
        auto &ring = static_cast<RingNetwork &>(*network_);
        for (int level = 0; level < ring.numLevels(); ++level)
            result.ringLevelUtilization.push_back(
                ring.levelUtilization(level));
    }
    result.throughputPerPm =
        static_cast<double>(result.samples) /
        (static_cast<double>(std::max<Cycle>(measured_cycles, 1)) *
         static_cast<double>(network_->numProcessors()));
    result.metrics = metrics_.snapshot();
}

namespace
{

/**
 * Config key with its " seed=<n>" field removed. Warm-start forking
 * (CheckpointOptions::forkSeed) compares keys modulo the seed — the
 * fork deliberately diverges there and nowhere else.
 */
std::string
stripSeedField(const std::string &key)
{
    const std::string tag = " seed=";
    const std::size_t at = key.find(tag);
    if (at == std::string::npos)
        return key;
    std::size_t end = key.find(' ', at + tag.size());
    if (end == std::string::npos)
        end = key.size();
    return key.substr(0, at) + key.substr(end);
}

} // namespace

void
System::saveCheckpoint(const std::string &path) const
{
    if (!network_->checkpointSupported()) {
        throw CheckpointError(
            "checkpoint: this network does not support checkpointing "
            "(slotted ring)");
    }

    // Payload layout (DESIGN.md section 16): simulation-core scalars,
    // measurement machinery, scheduler bookkeeping, workload
    // components, fault state, then the network. The order is frozen
    // by ckptSchemaVersion — extend only by bumping it.
    CkptWriter w;
    w.u64(now_);
    w.u64(lastProgress_);
    w.u64(lastActivity_);
    w.u64(skippedCycles_);
    w.u8(static_cast<std::uint8_t>(stopReason_));

    w.u64(counters_.missesGenerated);
    w.u64(counters_.remoteIssued);
    w.u64(counters_.remoteCompleted);
    w.u64(counters_.localIssued);
    w.u64(counters_.localCompleted);
    w.u64(counters_.blockedCycles);

    latency_.saveState(w);
    histogram_.saveState(w);
    network_->utilization().saveState(w);

    w.u32(static_cast<std::uint32_t>(procWake_.size()));
    for (const Cycle wake : procWake_)
        w.u64(wake);
    // activeMems_ in list order: delivery order assigned membership,
    // and replaying it exactly keeps the memory tick order — and so
    // every downstream packet id — identical after restore.
    // (memActive_ is its membership flag vector, derived on load.)
    w.u32(static_cast<std::uint32_t>(activeMems_.size()));
    for (const NodeId pm : activeMems_)
        w.i32(pm);

    w.u64(factory_->nextId());

    w.boolean(controller_ != nullptr);
    if (controller_)
        controller_->saveState(w);
    saveMetricSnapshots(w, snapshots_);

    for (const auto &processor : processors_)
        processor->saveState(w);
    for (const auto &memory : memories_)
        memory->saveState(w);

    w.boolean(faults_ != nullptr);
    if (faults_) {
        faults_->saveState(w);
        w.u64(retryCounters_.reissued);
        w.u64(retryCounters_.stale);
        w.u64(retryCounters_.abandoned);
    }

    network_->saveState(w);

    CheckpointHeader header;
    header.version = ckptSchemaVersion;
    header.configKey = configKey(cfg_);
    header.columnar = columnarEnabled();
    header.fastPath = fastPathEnabled();
    header.activeSched = activeSched_;
    header.cycle = now_;
    writeCheckpointFile(path, header, w);
}

void
System::restoreCheckpoint(const std::string &path)
{
    if (!network_->checkpointSupported()) {
        throw CheckpointError(
            "checkpoint: this network does not support checkpointing "
            "(slotted ring)");
    }

    std::vector<std::uint8_t> payload;
    const CheckpointHeader header = openCheckpointFile(path, payload);

    const std::string own_key = configKey(cfg_);
    const bool fork = cfg_.ckpt.forkSeed != 0;
    const std::string saved_cmp =
        fork ? stripSeedField(header.configKey) : header.configKey;
    const std::string own_cmp =
        fork ? stripSeedField(own_key) : own_key;
    if (saved_cmp != own_cmp) {
        throw CheckpointError(
            "checkpoint: config mismatch\n  snapshot: " +
            header.configKey + "\n  run:      " + own_key);
    }
    if (header.columnar != columnarEnabled() ||
        header.fastPath != fastPathEnabled() ||
        header.activeSched != activeSched_) {
        throw CheckpointError(
            "checkpoint: build-flag plane mismatch (the snapshot was "
            "taken under different columnar / fast-path / "
            "active-scheduling oracle switches than this run)");
    }

    CkptReader r(std::move(payload));

    now_ = r.u64();
    if (now_ != header.cycle) {
        throw CheckpointError(
            "checkpoint: header and payload disagree on the save "
            "cycle (corrupt file)");
    }
    lastProgress_ = r.u64();
    lastActivity_ = r.u64();
    skippedCycles_ = r.u64();
    stopReason_ = static_cast<StopReason>(r.u8());

    counters_.missesGenerated = r.u64();
    counters_.remoteIssued = r.u64();
    counters_.remoteCompleted = r.u64();
    counters_.localIssued = r.u64();
    counters_.localCompleted = r.u64();
    counters_.blockedCycles = r.u64();

    latency_.loadState(r);
    histogram_.loadState(r);
    network_->utilization().loadState(r);

    const std::uint32_t pms = r.u32();
    if (pms != procWake_.size()) {
        throw CheckpointError(
            "checkpoint: PM count mismatch (topology differs)");
    }
    for (Cycle &wake : procWake_)
        wake = r.u64();
    activeMems_.clear();
    std::fill(memActive_.begin(), memActive_.end(), 0);
    const std::uint32_t mems = r.u32();
    for (std::uint32_t i = 0; i < mems; ++i) {
        const NodeId pm = r.i32();
        if (pm < 0 ||
            static_cast<std::size_t>(pm) >= memActive_.size()) {
            throw CheckpointError(
                "checkpoint: active memory id out of range");
        }
        activeMems_.push_back(pm);
        memActive_[static_cast<std::size_t>(pm)] = 1;
    }

    factory_->setNextId(r.u64());

    if (r.boolean()) {
        if (!stopPolicy_.enabled()) {
            throw CheckpointError(
                "checkpoint: adaptive-run snapshot restored into a "
                "fixed-length config");
        }
        controller_ =
            std::make_unique<RunController>(stopPolicy_, latency_);
        controller_->loadState(r);
    }
    loadMetricSnapshots(r, snapshots_);

    for (auto &processor : processors_)
        processor->loadState(r);
    for (auto &memory : memories_)
        memory->loadState(r);

    const bool has_faults = r.boolean();
    if (has_faults != (faults_ != nullptr)) {
        throw CheckpointError(
            "checkpoint: fault-plane mismatch (snapshot and config "
            "disagree on an active fault plan)");
    }
    if (faults_) {
        faults_->loadState(r);
        retryCounters_.reissued = r.u64();
        retryCounters_.stale = r.u64();
        retryCounters_.abandoned = r.u64();
    }

    network_->loadState(r);
    if (!r.atEnd()) {
        throw CheckpointError(
            "checkpoint: trailing bytes after the payload (schema "
            "mismatch)");
    }

    restored_ = true;

    if (fork) {
        // Reseeding redraws each generator's next-miss cycle, so the
        // restored wake schedule (which reflects the donor's stream)
        // may sleep past the new draw. Pull every wake forward to the
        // earlier of the two: a too-early wake is a harmless no-op
        // tick, a too-late one trips the generator's stream
        // invariant.
        for (std::size_t i = 0; i < processors_.size(); ++i) {
            processors_[i]->reseed(cfg_.ckpt.forkSeed, now_);
            procWake_[i] = std::min(
                procWake_[i], processors_[i]->nextWake(now_));
        }
    }
}

bool
System::maybeSaveCheckpoint()
{
    const CheckpointOptions &ck = cfg_.ckpt;
    if (ck.savePath.empty())
        return false;
    const bool at_hit =
        ck.saveAt != 0 && now_ == ck.saveAt && !saveAtDone_;
    const bool every_hit = ck.saveEvery != 0 && now_ != 0 &&
                           now_ % ck.saveEvery == 0 &&
                           now_ != lastEverySave_;
    if (!at_hit && !every_hit)
        return false;
    saveCheckpoint(ck.savePath);
    if (at_hit)
        saveAtDone_ = true;
    if (every_hit)
        lastEverySave_ = now_;
    if (at_hit && ck.stopAfterSave)
        saveStopRequested_ = true;
    return true;
}

RunResult
runSystem(const SystemConfig &cfg)
{
    System system(cfg);
    return system.run();
}

} // namespace hrsim
