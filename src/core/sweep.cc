#include "core/sweep.hh"

#include <algorithm>
#include <numeric>

#include "common/rng.hh"

namespace hrsim
{

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts)
{
    jobs_ = opts.jobs != 0 ? opts.jobs
                           : std::thread::hardware_concurrency();
    if (jobs_ == 0)
        jobs_ = 1;
    // jobs == 1 runs inline on the caller; no pool needed. Otherwise
    // the pool is fixed for the runner's lifetime: the caller also
    // drains points, so jobs N means N-1 pool threads plus the
    // caller.
    if (jobs_ > 1) {
        workers_.reserve(jobs_ - 1);
        for (unsigned i = 0; i + 1 < jobs_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }
}

SweepRunner::~SweepRunner()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

std::uint64_t
SweepRunner::pointSeed(std::uint64_t base, std::size_t index)
{
    // splitmix64 over a base/index mix: well-distributed, and a pure
    // function of (base, index) so scheduling cannot perturb it.
    std::uint64_t state =
        base ^ (static_cast<std::uint64_t>(index) + 1) *
                   0x9e3779b97f4a7c15ULL;
    return splitmix64(state);
}

void
SweepRunner::runPoint(Batch &batch, std::size_t index) const
{
    try {
        SystemConfig cfg = (*batch.points)[index];
        if (opts_.reseedPoints)
            cfg.sim.seed = pointSeed(cfg.sim.seed, index);
        (*batch.results)[index] = runSystem(cfg);
    } catch (...) {
        (*batch.errors)[index] = std::current_exception();
    }
}

double
SweepRunner::estimatedCostWeight(const SystemConfig &cfg)
{
    const StopPolicy policy = resolveStopPolicy(cfg.sim);
    const Cycle horizon =
        policy.enabled()
            ? policy.maxCycles
            : cfg.sim.warmupCycles +
                  cfg.sim.batchCycles *
                      static_cast<Cycle>(cfg.sim.numBatches);
    return static_cast<double>(horizon) *
           static_cast<double>(cfg.numProcessors());
}

void
SweepRunner::drain(Batch &batch)
{
    const std::size_t total = batch.points->size();
    std::size_t mine = 0;
    for (;;) {
        const std::size_t claim =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (claim >= total)
            break;
        const std::size_t index =
            batch.order != nullptr ? (*batch.order)[claim] : claim;
        runPoint(batch, index);
        ++mine;
    }
    if (mine > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        batch.completed += mine;
        if (batch.completed == total)
            done_.notify_all();
    }
}

void
SweepRunner::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *batch = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return stop_ || (batch_ != nullptr &&
                                 generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            batch = batch_;
            // Attach under the same lock as the capture: run() must
            // not destroy the batch while any worker still holds a
            // pointer to it, even a late worker that finds no work.
            ++batch->attached;
        }
        drain(*batch);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--batch->attached == 0)
                done_.notify_all();
        }
    }
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SystemConfig> &points)
{
    std::vector<RunResult> results(points.size());
    std::vector<std::exception_ptr> errors(points.size());

    Batch batch;
    batch.points = &points;
    batch.results = &results;
    batch.errors = &errors;

    if (jobs_ == 1 || points.size() <= 1) {
        // Serial: identical to calling runSystem() point by point.
        for (std::size_t i = 0; i < points.size(); ++i)
            runPoint(batch, i);
    } else {
        // Claim costliest points first so a long point (an adaptive
        // maxCycles budget, a large mesh) starts while plenty of
        // small points remain to fill the other workers; the reaped
        // results land by submission index regardless.
        std::vector<std::size_t> order(points.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return estimatedCostWeight(points[a]) >
                                    estimatedCostWeight(points[b]);
                         });
        batch.order = &order;
        {
            std::lock_guard<std::mutex> lock(mu_);
            batch_ = &batch;
            ++generation_;
        }
        wake_.notify_all();
        drain(batch); // the caller is a worker too
        {
            // Wait for every point to finish AND every worker to let
            // go of the batch before destroying it: a worker that
            // captured batch_ after the last point was claimed still
            // enters drain() and touches batch.next / batch.points.
            std::unique_lock<std::mutex> lock(mu_);
            done_.wait(lock, [&] {
                return batch.completed == points.size() &&
                       batch.attached == 0;
            });
            batch_ = nullptr;
        }
    }

    for (auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

std::vector<RunResult>
runSweep(const std::vector<SystemConfig> &points, unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    SweepRunner runner(opts);
    return runner.run(points);
}

} // namespace hrsim
