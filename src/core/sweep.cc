#include "core/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "ckpt/codec.hh"
#include "ckpt/result_io.hh"
#include "common/rng.hh"
#include "obs/manifest.hh"

namespace hrsim
{

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts)
{
    jobs_ = opts.jobs != 0 ? opts.jobs
                           : std::thread::hardware_concurrency();
    if (jobs_ == 0)
        jobs_ = 1;
    // jobs == 1 runs inline on the caller; no pool needed. Otherwise
    // the pool is fixed for the runner's lifetime: the caller also
    // drains points, so jobs N means N-1 pool threads plus the
    // caller.
    if (jobs_ > 1) {
        workers_.reserve(jobs_ - 1);
        for (unsigned i = 0; i + 1 < jobs_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }
}

SweepRunner::~SweepRunner()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

std::uint64_t
SweepRunner::pointSeed(std::uint64_t base, std::size_t index)
{
    // splitmix64 over a base/index mix: well-distributed, and a pure
    // function of (base, index) so scheduling cannot perturb it.
    std::uint64_t state =
        base ^ (static_cast<std::uint64_t>(index) + 1) *
                   0x9e3779b97f4a7c15ULL;
    return splitmix64(state);
}

void
SweepRunner::runPoint(Batch &batch, std::size_t index) const
{
    try {
        SystemConfig cfg = (*batch.points)[index];
        if (opts_.reseedPoints)
            cfg.sim.seed = pointSeed(cfg.sim.seed, index);
        if (opts_.journalDir.empty()) {
            (*batch.results)[index] = runSystem(cfg);
            return;
        }

        const std::string stem = opts_.journalDir + "/point_" +
                                 std::to_string(index);
        const std::string key = configKey(cfg);
        if (opts_.resume) {
            RunResult prior;
            if (tryReadResultFile(stem + ".result", key, prior)) {
                (*batch.results)[index] = std::move(prior);
                return;
            }
            // No finished result; a periodic checkpoint means the
            // point was in flight when the sweep died — restore it
            // rather than repeating the prefix. Probe first so a
            // missing file falls through to a fresh run instead of
            // failing inside System::restoreCheckpoint().
            if (std::ifstream(stem + ".ckpt").good())
                cfg.ckpt.restorePath = stem + ".ckpt";
        }
        if (opts_.checkpointEvery != 0) {
            cfg.ckpt.savePath = stem + ".ckpt";
            cfg.ckpt.saveEvery = opts_.checkpointEvery;
        }
        RunResult result = runSystem(cfg);
        writeResultFile(stem + ".result", key, result);
        // The periodic checkpoint is scratch state for resuming this
        // point; with the result journaled it is dead weight, and
        // removing it leaves a resumed sweep's directory identical to
        // an uninterrupted one's.
        std::remove((stem + ".ckpt").c_str());
        (*batch.results)[index] = std::move(result);
    } catch (...) {
        (*batch.errors)[index] = std::current_exception();
    }
}

double
SweepRunner::estimatedCostWeight(const SystemConfig &cfg)
{
    const StopPolicy policy = resolveStopPolicy(cfg.sim);
    const Cycle horizon =
        policy.enabled()
            ? policy.maxCycles
            : cfg.sim.warmupCycles +
                  cfg.sim.batchCycles *
                      static_cast<Cycle>(cfg.sim.numBatches);
    return static_cast<double>(horizon) *
           static_cast<double>(cfg.numProcessors());
}

void
SweepRunner::drain(Batch &batch)
{
    const std::size_t total = batch.points->size();
    std::size_t mine = 0;
    for (;;) {
        const std::size_t claim =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (claim >= total)
            break;
        const std::size_t index =
            batch.order != nullptr ? (*batch.order)[claim] : claim;
        runPoint(batch, index);
        ++mine;
    }
    if (mine > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        batch.completed += mine;
        if (batch.completed == total)
            done_.notify_all();
    }
}

void
SweepRunner::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *batch = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return stop_ || (batch_ != nullptr &&
                                 generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            batch = batch_;
            // Attach under the same lock as the capture: run() must
            // not destroy the batch while any worker still holds a
            // pointer to it, even a late worker that finds no work.
            ++batch->attached;
        }
        drain(*batch);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--batch->attached == 0)
                done_.notify_all();
        }
    }
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SystemConfig> &points)
{
    std::vector<RunResult> results(points.size());
    std::vector<std::exception_ptr> errors(points.size());

    Batch batch;
    batch.points = &points;
    batch.results = &results;
    batch.errors = &errors;

    if (jobs_ == 1 || points.size() <= 1) {
        // Serial: identical to calling runSystem() point by point.
        for (std::size_t i = 0; i < points.size(); ++i)
            runPoint(batch, i);
    } else {
        // Claim costliest points first so a long point (an adaptive
        // maxCycles budget, a large mesh) starts while plenty of
        // small points remain to fill the other workers; the reaped
        // results land by submission index regardless.
        std::vector<std::size_t> order(points.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return estimatedCostWeight(points[a]) >
                                    estimatedCostWeight(points[b]);
                         });
        batch.order = &order;
        {
            std::lock_guard<std::mutex> lock(mu_);
            batch_ = &batch;
            ++generation_;
        }
        wake_.notify_all();
        drain(batch); // the caller is a worker too
        {
            // Wait for every point to finish AND every worker to let
            // go of the batch before destroying it: a worker that
            // captured batch_ after the last point was claimed still
            // enters drain() and touches batch.next / batch.points.
            std::unique_lock<std::mutex> lock(mu_);
            done_.wait(lock, [&] {
                return batch.completed == points.size() &&
                       batch.attached == 0;
            });
            batch_ = nullptr;
        }
    }

    for (auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

std::vector<RunResult>
runSweep(const std::vector<SystemConfig> &points, unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    SweepRunner runner(opts);
    return runner.run(points);
}

std::vector<SystemConfig>
warmStartReplicas(const SystemConfig &base,
                  const std::string &checkpointPath,
                  const std::vector<std::uint64_t> &seeds)
{
    std::vector<SystemConfig> replicas;
    replicas.reserve(seeds.size());

    if (base.sim.warmupCycles == 0) {
        for (const std::uint64_t seed : seeds) {
            SystemConfig cfg = base;
            cfg.sim.seed = seed;
            replicas.push_back(std::move(cfg));
        }
        return replicas;
    }

    // Reuse an existing donor snapshot only if it was produced by
    // this exact base config; anything else (missing, corrupt, a
    // different config's leftovers) is replaced by a fresh donor run.
    bool have_donor = false;
    try {
        have_donor = peekCheckpointHeader(checkpointPath).configKey ==
                     configKey(base);
    } catch (const CheckpointError &) {
        have_donor = false;
    }
    if (!have_donor) {
        SystemConfig donor = base;
        donor.ckpt.savePath = checkpointPath;
        donor.ckpt.saveAt = donor.sim.warmupCycles;
        donor.ckpt.stopAfterSave = true;
        runSystem(donor);
    }

    for (const std::uint64_t seed : seeds) {
        SystemConfig cfg = base;
        cfg.sim.seed = seed;
        cfg.ckpt.restorePath = checkpointPath;
        cfg.ckpt.forkSeed = seed;
        replicas.push_back(std::move(cfg));
    }
    return replicas;
}

} // namespace hrsim
