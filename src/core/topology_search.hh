/**
 * @file
 * Exhaustive search for the best ring hierarchy (Table 2 machinery).
 *
 * Enumerates every ordered factorization of the processor count into
 * up to four levels and simulates each candidate under a given
 * workload, returning them ranked by measured latency. This is how
 * the paper's Table 2 ("optimal hierarchical ring topology for a
 * given number of processors and cache line size") is regenerated.
 */

#ifndef HRSIM_CORE_TOPOLOGY_SEARCH_HH
#define HRSIM_CORE_TOPOLOGY_SEARCH_HH

#include <string>
#include <vector>

#include "core/system.hh"

namespace hrsim
{

/** One evaluated candidate hierarchy. */
struct TopologyCandidate
{
    std::string topology;
    double latency = 0.0;
    double utilizationGlobal = 0.0;
};

/**
 * All ordered factorizations of @a processors into 1..max_levels
 * factors, each >= 2, in the paper's top-down notation.
 */
std::vector<std::string> enumerateHierarchies(int processors,
                                              int max_levels = 4);

/**
 * Simulate every candidate hierarchy of @a processors under the
 * workload in @a base (its ring topology field is overridden) and
 * return them sorted by ascending latency.
 */
std::vector<TopologyCandidate>
rankHierarchies(int processors, const SystemConfig &base,
                int max_levels = 4);

} // namespace hrsim

#endif // HRSIM_CORE_TOPOLOGY_SEARCH_HH
