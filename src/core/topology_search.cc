#include "core/topology_search.hh"

#include <algorithm>

#include "common/log.hh"

namespace hrsim
{

namespace
{

void
enumerate(int remaining, int max_levels, std::vector<int> &prefix,
          std::vector<std::string> &out)
{
    if (remaining == 1) {
        if (!prefix.empty()) {
            RingTopology topo{prefix};
            out.push_back(topo.toString());
        }
        return;
    }
    if (static_cast<int>(prefix.size()) == max_levels)
        return;
    for (int factor = 2; factor <= remaining; ++factor) {
        if (remaining % factor != 0)
            continue;
        prefix.push_back(factor);
        enumerate(remaining / factor, max_levels, prefix, out);
        prefix.pop_back();
    }
}

} // namespace

std::vector<std::string>
enumerateHierarchies(int processors, int max_levels)
{
    HRSIM_ASSERT(processors >= 2);
    std::vector<std::string> out;
    std::vector<int> prefix;
    enumerate(processors, max_levels, prefix, out);
    return out;
}

std::vector<TopologyCandidate>
rankHierarchies(int processors, const SystemConfig &base,
                int max_levels)
{
    std::vector<TopologyCandidate> ranked;
    for (const std::string &topo :
         enumerateHierarchies(processors, max_levels)) {
        SystemConfig cfg = base;
        cfg.kind = NetworkKind::HierarchicalRing;
        cfg.ringTopo = RingTopology::parse(topo);
        const RunResult result = runSystem(cfg);
        TopologyCandidate candidate;
        candidate.topology = topo;
        candidate.latency = result.avgLatency;
        if (!result.ringLevelUtilization.empty())
            candidate.utilizationGlobal =
                result.ringLevelUtilization.front();
        ranked.push_back(candidate);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const TopologyCandidate &a, const TopologyCandidate &b) {
                  return a.latency < b.latency;
              });
    return ranked;
}

} // namespace hrsim
