/**
 * @file
 * Tabular reporting for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures. A Report holds named series of (x, y) points — for a
 * figure, x is usually the number of nodes and y the metric — and
 * prints them both as an aligned text table (the paper's rows) and as
 * long-format CSV for replotting.
 */

#ifndef HRSIM_CORE_EXPERIMENT_HH
#define HRSIM_CORE_EXPERIMENT_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hrsim
{

class Report
{
  public:
    Report(std::string title, std::string x_label, std::string y_label);

    /** Add a point to @a series (created on first use). */
    void add(const std::string &series, double x, double y);

    /** Look up a point (for analyses over a finished report). */
    std::optional<double> value(const std::string &series,
                                double x) const;

    /** Ordered series names. */
    std::vector<std::string> seriesNames() const;

    /** The (x, y) points of one series, in insertion order. */
    std::vector<std::pair<double, double>>
    seriesPoints(const std::string &series) const;

    /** Aligned text table: one row per x, one column per series. */
    void print(std::ostream &out) const;

    /** Long-format CSV: title,series,x,y. */
    void writeCsv(std::ostream &out) const;

    const std::string &title() const { return title_; }

  private:
    struct SeriesData
    {
        std::string name;
        std::vector<std::pair<double, double>> points;
        /** First y recorded per x — lookups without point scans. */
        std::unordered_map<double, double> byX;
    };

    const SeriesData *find(const std::string &series) const;

    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    std::vector<SeriesData> series_;
};

} // namespace hrsim

#endif // HRSIM_CORE_EXPERIMENT_HH
