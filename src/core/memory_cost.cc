#include "core/memory_cost.hh"

#include "proto/packet.hh"

namespace hrsim
{

std::uint32_t
ringNicBufferBytes(std::uint32_t cache_line_bytes)
{
    const ChannelSpec spec = ChannelSpec::ring();
    // One ring buffer holding one cache-line packet.
    return spec.cacheLineFlits(cache_line_bytes) * spec.flitBytes;
}

std::uint32_t
meshNicBufferBytes(std::uint32_t cache_line_bytes,
                   std::uint32_t buffer_flits)
{
    const ChannelSpec spec = ChannelSpec::mesh();
    const std::uint32_t depth =
        buffer_flits == 0 ? spec.cacheLineFlits(cache_line_bytes)
                          : buffer_flits;
    // Four directional input buffers.
    return 4 * depth * spec.flitBytes;
}

} // namespace hrsim
