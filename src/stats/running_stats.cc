#include "stats/running_stats.hh"

#include <cmath>

#include "ckpt/codec.hh"

namespace hrsim
{

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::saveState(CkptWriter &w) const
{
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
}

void
RunningStats::loadState(CkptReader &r)
{
    n_ = r.u64();
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
}

} // namespace hrsim
