/**
 * @file
 * Link-utilization accounting.
 *
 * Utilization is reported, as in the paper, as the percentage of the
 * maximum: the fraction of link-cycles that carried a flit during the
 * measurement window. Links are registered into named groups (e.g.
 * "ring level 0", "mesh") so per-level ring utilization and whole-
 * network mesh utilization come from the same tracker. A link may be
 * registered with a speed factor > 1 (double-clocked global ring), in
 * which case its capacity is factor flits per system cycle.
 *
 * The window opens at the end of warmup (startMeasurement) and is
 * closed once, at the run horizon (stopMeasurement). Transfers
 * recorded outside an open window are ignored, so the skip-idle tick
 * scheduler (which never skips a cycle in which any link moves a
 * flit) leaves every utilization figure bit-identical to the legacy
 * every-cycle loop. For mid-run metric snapshots (--metrics-every)
 * markSnapshot() provisionally re-times the still-open window so the
 * utilization gauges published through the MetricRegistry (e.g.
 * "ring.l0.util") read values current as of the snapshot cycle;
 * before the window opens they read 0.
 */

#ifndef HRSIM_STATS_UTILIZATION_HH
#define HRSIM_STATS_UTILIZATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace hrsim
{

class CkptWriter;
class CkptReader;

class UtilizationTracker
{
  public:
    using LinkId = std::uint32_t;
    using GroupId = std::uint32_t;

    /** Create (or look up) a link group by name. */
    GroupId group(const std::string &name);

    /** Register a link in a group; @a speed_factor flits/cycle max. */
    LinkId addLink(GroupId group, std::uint32_t speed_factor = 1);

    /**
     * Record that @a link carried a flit this cycle. Inline: this
     * sits on the per-flit hot path of every network (one call per
     * link traversal), so it must compile down to a test and an
     * indexed increment rather than an out-of-line call.
     */
    void
    recordTransfer(LinkId link)
    {
        if (!measuring_)
            return;
        HRSIM_ASSERT(link < linkGroup_.size());
        ++groupTransfers_[linkGroup_[link]];
    }

    /**
     * Stable pointer to the open-window flag, for callers that cache
     * it next to a cached transferCounter() (one flag load instead
     * of re-deriving both vector lookups per recorded flit).
     */
    const bool *measuringFlag() const { return &measuring_; }

    /**
     * Stable pointer to @a link's group transfer counter, equivalent
     * to the increment recordTransfer() performs. Only valid once
     * every group has been registered — group creation grows the
     * counter vector and invalidates earlier pointers — so callers
     * cache it in a post-wiring pass.
     */
    std::uint64_t *
    transferCounter(LinkId link)
    {
        HRSIM_ASSERT(link < linkGroup_.size());
        return &groupTransfers_[linkGroup_[link]];
    }

    /**
     * Allocate @a shards per-shard counter planes for the parallel
     * tick engine (0 drops them). The master counters stay the
     * serial-path target; a link driver evaluated inside shard s
     * increments that shard's plane instead (shardTransferCounter),
     * and every read-side aggregate sums master + planes. Integer
     * sums are order-free, so utilization figures are bit-identical
     * to the serial engine at any shard count.
     */
    void setShardPlanes(int shards);

    /** Plane counter of @a link for shard @a shard; same caching
     *  contract as transferCounter(). */
    std::uint64_t *
    shardTransferCounter(int shard, LinkId link)
    {
        HRSIM_ASSERT(link < linkGroup_.size());
        HRSIM_ASSERT(static_cast<std::size_t>(shard) < planes_.size());
        return &planes_[static_cast<std::size_t>(shard)]
                       [linkGroup_[link]];
    }

    /** Start the measurement window at cycle @a now. */
    void startMeasurement(Cycle now);

    /** Close the window at cycle @a now. */
    void stopMeasurement(Cycle now);

    /**
     * Provisionally time the still-open window against @a now so
     * group/total utilization can be read mid-run (metric
     * snapshots). No-op when no measurement is in progress; the
     * final stopMeasurement() overrides any provisional timing.
     */
    void markSnapshot(Cycle now);

    /** Utilization of a group in [0, 1] over the closed window. */
    double groupUtilization(GroupId group) const;

    /** Utilization across every registered link. */
    double totalUtilization() const;

    std::uint32_t numGroups() const
    {
        return static_cast<std::uint32_t>(groupCapacity_.size());
    }

    const std::string &groupName(GroupId group) const
    {
        return groupNames_[group];
    }

    /**
     * Checkpoint hooks. Counters are saved with shard planes folded
     * into the master totals and loaded into the master plane in
     * place — never reallocated, because link drivers cache stable
     * pointers into the counter vectors (see transferCounter()).
     */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    bool measuring_ = false;
    Cycle windowStart_ = 0;
    Cycle windowCycles_ = 0;

    /** Master + shard-plane transfers of one group. */
    std::uint64_t groupTransfersTotal(GroupId group) const;

    std::vector<std::string> groupNames_;
    // Aggregate flits/cycle capacity of all links in each group.
    std::vector<std::uint64_t> groupCapacity_;
    std::vector<std::uint64_t> groupTransfers_;
    /** Per-shard counter planes (parallel tick; usually empty). Each
     *  plane is its own allocation, so shards never share lines. */
    std::vector<std::vector<std::uint64_t>> planes_;

    std::vector<GroupId> linkGroup_;
    std::vector<std::uint32_t> linkSpeed_;
};

} // namespace hrsim

#endif // HRSIM_STATS_UTILIZATION_HH
