#include "stats/batch_means.hh"

#include <cmath>
#include <limits>

#include "common/log.hh"
#include "ckpt/codec.hh"

namespace hrsim
{

double
tQuantile95(std::uint64_t df)
{
    // Two-sided 0.975 quantiles; beyond 30 degrees of freedom the
    // normal approximation the fixed-length path uses is adequate.
    static const double table[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return std::numeric_limits<double>::infinity();
    if (df <= 30)
        return table[df - 1];
    return 1.96;
}

BatchMeans::BatchMeans(Cycle warmup_cycles, Cycle batch_cycles,
                       std::uint32_t num_batches)
    : warmupCycles_(warmup_cycles), batchCycles_(batch_cycles),
      batches_(num_batches)
{
    if (batch_cycles == 0)
        fatal("BatchMeans: batch length must be positive");
    if (num_batches == 0)
        fatal("BatchMeans: need at least one measured batch");
}

BatchMeans
BatchMeans::adaptive(Cycle batch_cycles)
{
    if (batch_cycles == 0)
        fatal("BatchMeans: batch length must be positive");
    BatchMeans bm;
    bm.adaptive_ = true;
    bm.warmupCycles_ = 0;
    bm.batchCycles_ = batch_cycles;
    return bm;
}

void
BatchMeans::add(Cycle now, double value)
{
    if (now < warmupCycles_)
        return; // initialization bias: first batch discarded
    const Cycle offset = now - warmupCycles_;
    const Cycle index = offset / batchCycles_;
    if (adaptive_) {
        if (index >= batches_.size())
            batches_.resize(static_cast<std::size_t>(index) + 1);
    } else if (index >= batches_.size()) {
        return; // past the measurement window
    }
    batches_[static_cast<std::size_t>(index)].add(value);
    all_.add(value);
}

Cycle
BatchMeans::endCycle() const
{
    if (adaptive_) {
        if (truncLimit_ == 0)
            return std::numeric_limits<Cycle>::max();
        return batchCycles_ * truncLimit_;
    }
    return warmupCycles_ + batchCycles_ * batches_.size();
}

void
BatchMeans::setTruncation(std::uint32_t first_batch,
                          std::uint32_t batch_limit)
{
    HRSIM_ASSERT(adaptive_);
    HRSIM_ASSERT(first_batch <= batch_limit);
    truncFirst_ = first_batch;
    truncLimit_ = batch_limit;
}

std::uint64_t
BatchMeans::sampleCount() const
{
    if (!adaptive_)
        return all_.count();
    std::uint64_t count = 0;
    const std::uint32_t limit =
        truncLimit_ != 0 ? truncLimit_ : numBatches();
    for (std::uint32_t b = truncFirst_;
         b < limit && b < numBatches(); ++b)
        count += batches_[b].count();
    return count;
}

double
BatchMeans::mean() const
{
    if (!adaptive_)
        return all_.mean();
    double sum = 0.0;
    std::uint64_t count = 0;
    const std::uint32_t limit =
        truncLimit_ != 0 ? truncLimit_ : numBatches();
    for (std::uint32_t b = truncFirst_;
         b < limit && b < numBatches(); ++b) {
        sum += batches_[b].sum();
        count += batches_[b].count();
    }
    return count != 0 ? sum / static_cast<double>(count) : 0.0;
}

double
BatchMeans::halfWidth95() const
{
    // Variance across batch means; empty batches contribute nothing.
    RunningStats of_means;
    const std::uint32_t limit =
        adaptive_ && truncLimit_ != 0 ? truncLimit_ : numBatches();
    for (std::uint32_t b = adaptive_ ? truncFirst_ : 0;
         b < limit && b < numBatches(); ++b) {
        if (batches_[b].count() > 0)
            of_means.add(batches_[b].mean());
    }
    if (of_means.count() < 2)
        return 0.0;
    const double se =
        of_means.stddev() / std::sqrt(static_cast<double>(of_means.count()));
    // Fixed mode keeps the paper's normal approximation (batches are
    // long); the adaptive path can retain few batches, so it pays for
    // the small sample with the matching t quantile.
    const double quantile =
        adaptive_ ? tQuantile95(of_means.count() - 1) : 1.96;
    return quantile * se;
}

double
BatchMeans::batchMean(std::uint32_t batch) const
{
    HRSIM_ASSERT(batch < batches_.size());
    return batches_[batch].mean();
}

std::uint64_t
BatchMeans::batchCount(std::uint32_t batch) const
{
    HRSIM_ASSERT(batch < batches_.size());
    return batches_[batch].count();
}

void
BatchMeans::saveState(CkptWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(batches_.size()));
    for (const RunningStats &batch : batches_)
        batch.saveState(w);
    all_.saveState(w);
    w.u32(truncFirst_);
    w.u32(truncLimit_);
}

void
BatchMeans::loadState(CkptReader &r)
{
    const std::uint32_t count = r.u32();
    batches_.assign(count, RunningStats());
    for (RunningStats &batch : batches_)
        batch.loadState(r);
    all_.loadState(r);
    truncFirst_ = r.u32();
    truncLimit_ = r.u32();
}

} // namespace hrsim
