#include "stats/batch_means.hh"

#include <cmath>

#include "common/log.hh"

namespace hrsim
{

BatchMeans::BatchMeans(Cycle warmup_cycles, Cycle batch_cycles,
                       std::uint32_t num_batches)
    : warmupCycles_(warmup_cycles), batchCycles_(batch_cycles),
      batches_(num_batches)
{
    if (batch_cycles == 0)
        fatal("BatchMeans: batch length must be positive");
    if (num_batches == 0)
        fatal("BatchMeans: need at least one measured batch");
}

void
BatchMeans::add(Cycle now, double value)
{
    if (now < warmupCycles_)
        return; // initialization bias: first batch discarded
    const Cycle offset = now - warmupCycles_;
    const Cycle index = offset / batchCycles_;
    if (index >= batches_.size())
        return; // past the measurement window
    batches_[static_cast<std::size_t>(index)].add(value);
    all_.add(value);
}

Cycle
BatchMeans::endCycle() const
{
    return warmupCycles_ + batchCycles_ * batches_.size();
}

std::uint64_t
BatchMeans::sampleCount() const
{
    return all_.count();
}

double
BatchMeans::mean() const
{
    return all_.mean();
}

double
BatchMeans::halfWidth95() const
{
    // Variance across batch means; batches are long enough that the
    // normal approximation is adequate for our purposes.
    RunningStats of_means;
    for (const auto &batch : batches_) {
        if (batch.count() > 0)
            of_means.add(batch.mean());
    }
    if (of_means.count() < 2)
        return 0.0;
    const double se =
        of_means.stddev() / std::sqrt(static_cast<double>(of_means.count()));
    return 1.96 * se;
}

double
BatchMeans::batchMean(std::uint32_t batch) const
{
    HRSIM_ASSERT(batch < batches_.size());
    return batches_[batch].mean();
}

} // namespace hrsim
