/**
 * @file
 * Adaptive run control: MSER warmup detection, a sequential
 * relative-precision stopping rule, and a saturation (divergence)
 * detector.
 *
 * The fixed-length batch-means protocol spends the same simulated
 * cycle budget on every sweep point even though low-load points
 * converge in a fraction of it and near-saturation points never
 * converge at all. A RunController instead watches the run at
 * deterministic checkpoints (one per adaptive batch boundary) and
 * stops it as soon as one of three conditions holds:
 *
 *  - Converged: after MSER truncation the 95% relative confidence
 *    half-width of the latency estimate is at or below the target
 *    (StopPolicy::relHw) with at least StopPolicy::minBatches
 *    retained batches.
 *  - Saturated: the latency batch means are still climbing across
 *    the divergence window while the outstanding-transaction
 *    occupancy is pegged near its cap or still filling toward it —
 *    the signature of a point past its saturation knee, whose
 *    transient would burn the entire budget without yielding a
 *    steady state.
 *  - MaxCycles: the hard bound StopPolicy::maxCycles was reached.
 *
 * Warmup detection is MSER: at every checkpoint, over the non-empty
 *  batch means Y_0..Y_{n-1}, pick the truncation d (at most n/2) that
 * minimizes stddev(Y_d..Y_{n-1}) / sqrt(n - d), i.e. the standard
 * error of what remains. The truncation is re-evaluated from scratch
 * each checkpoint, so the final choice is independent of when the run
 * stops relative to when bias decayed.
 *
 * Determinism contract (DESIGN.md section 11): every decision is a
 * pure function of the checkpoint statistics, which are themselves a
 * pure function of config + seed. No wall-clock time, no thread
 * identity, no sweep scheduling enters the decision sequence, so an
 * adaptive run stops at the same cycle with the same stop reason
 * under --jobs 1, --jobs N, and across reruns.
 *
 * Under a fault plan (DESIGN.md section 13) the controller only ever
 * sees survivors: dropped and abandoned transactions contribute no
 * latency sample, so the rule converges on the survivors' estimate —
 * hrsim_cli warns about the combination, and degradation studies
 * should prefer the fixed-length protocol plus the drop.* / retry.*
 * counters.
 */

#ifndef HRSIM_STATS_RUN_CONTROLLER_HH
#define HRSIM_STATS_RUN_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/batch_means.hh"

namespace hrsim
{

class CkptWriter;
class CkptReader;

/** Why a run ended (RunResult::stopReason, run.stop_reason). */
enum class StopReason : std::uint8_t
{
    FixedLength = 0, //!< fixed-length protocol ran its full horizon
    Converged = 1,   //!< relative half-width target reached
    MaxCycles = 2,   //!< adaptive bound hit before convergence
    Saturated = 3,   //!< divergence detector aborted the point
};

/** Stable short name ("fixed", "converged", "max_cycles",
 *  "saturated") for manifests, CSV and logs. */
const char *toString(StopReason reason);

/** Adaptive-stopping parameters; relHw == 0 keeps the fixed-length
 *  protocol (the bit-identical default). */
struct StopPolicy
{
    /** Target 95% relative confidence half-width (e.g. 0.05);
     *  0 disables adaptive control entirely. */
    double relHw = 0.0;

    /** Adaptive batch/checkpoint length in cycles; 0 derives
     *  max(SimConfig::batchCycles / 4, 1). */
    Cycle batchCycles = 0;

    /** Hard cycle bound; 0 derives 8x the fixed-length horizon. */
    Cycle maxCycles = 0;

    /** Retained batches required before convergence may be declared
     *  (also the minimum history for the divergence detector). */
    std::uint32_t minBatches = 8;

    /** Minimum post-truncation checkpoints (window + 1) before the
     *  divergence detector may fire. */
    std::uint32_t divergenceWindow = 4;

    /** Occupancy fraction (outstanding / cap) that counts as
     *  "queues pegged" for the divergence detector. Saturated closed
     *  systems hover below 1.0 (completions drain the cap in bursts),
     *  so the default is deliberately below the naive 0.95. */
    double divergenceOccupancy = 0.75;

    /** Minimum relative latency growth between the first and second
     *  half of the divergence window (half-window averages) for a
     *  point to be declared saturated. */
    double divergenceGrowth = 0.10;

    bool enabled() const { return relHw > 0.0; }
};

class RunController
{
  public:
    struct Decision
    {
        bool stop = false;
        StopReason reason = StopReason::FixedLength;
    };

    /**
     * @param policy Resolved policy: batchCycles and maxCycles must
     *        already be non-zero (System resolves the 0 defaults).
     * @param collector Adaptive BatchMeans fed by the run; the
     *        controller reads batch statistics from it and pins the
     *        MSER truncation back into it at every checkpoint.
     */
    RunController(const StopPolicy &policy, BatchMeans &collector);

    /** Cycle of the next checkpoint (batch boundary) to run to. */
    Cycle nextCheckpoint() const;

    /**
     * Evaluate the stopping rule at a checkpoint. @a now must equal
     * nextCheckpoint(); @a occupancy is the outstanding-transaction
     * fraction of its cap in [0, 1] sampled at the checkpoint.
     */
    Decision onCheckpoint(Cycle now, double occupancy);

    /** Decision history length so far (checkpoints evaluated). */
    std::uint32_t checkpoints() const
    {
        return static_cast<std::uint32_t>(history_.size());
    }

    /** MSER truncation of the latest checkpoint, in batches. */
    std::uint32_t warmupBatches() const { return truncation_; }

    /** MSER truncation in cycles (warmupBatches * batch length). */
    Cycle warmupCycles() const
    {
        return static_cast<Cycle>(truncation_) * policy_.batchCycles;
    }

    /** Relative half-width at the latest checkpoint (inf until the
     *  retained mean is positive). */
    double relHalfWidth() const { return relHw_; }

    const StopPolicy &policy() const { return policy_; }

    /**
     * MSER truncation over @a means: the index d <= n/2 minimizing
     * the standard error of means[d..n). Exposed for unit tests.
     */
    static std::uint32_t mserTruncation(const std::vector<double> &means);

    /** Checkpoint hooks: decision history and truncation state (the
     *  policy and the collector binding are config). */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    struct CheckpointStats
    {
        double batchMean = 0.0; //!< mean of the batch just closed
        double occupancy = 0.0;
    };

    bool convergedAt(std::uint32_t completed_batches);
    bool saturatedAt() const;

    StopPolicy policy_;
    BatchMeans &collector_;
    std::vector<CheckpointStats> history_;
    std::uint32_t truncation_ = 0;
    double relHw_ = 0.0;
    bool stopped_ = false;
};

} // namespace hrsim

#endif // HRSIM_STATS_RUN_CONTROLLER_HH
