/**
 * @file
 * Batch-means output analysis.
 *
 * The paper uses the batch-means method with the first batch discarded
 * to remove initialization bias; this class reproduces that protocol.
 * Samples are tagged with their completion cycle; the collector
 * assigns them to fixed-length batches, drops every sample completed
 * during the warmup (batch 0), and reports the grand mean together
 * with a confidence half-width computed from the variance of the batch
 * means.
 *
 * Two modes share the storage:
 *
 *  - Fixed (the paper's protocol, and the default): a predetermined
 *    warmup window plus a fixed number of measured batches. Samples
 *    past the horizon are ignored.
 *  - Adaptive (BatchMeans::adaptive()): no a-priori warmup; batches
 *    start at cycle 0 and the batch vector grows as the run advances.
 *    A RunController (stats/run_controller.hh) later decides the
 *    warmup truncation (MSER) and the stopping cycle, then pins them
 *    with setTruncation(); mean()/halfWidth95()/sampleCount() report
 *    over the retained range only. The adaptive half-width uses a
 *    Student-t quantile because the retained batch count can be small.
 */

#ifndef HRSIM_STATS_BATCH_MEANS_HH
#define HRSIM_STATS_BATCH_MEANS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/running_stats.hh"

namespace hrsim
{

/** Two-sided 95% Student-t quantile for @a df degrees of freedom. */
double tQuantile95(std::uint64_t df);

class BatchMeans
{
  public:
    /**
     * Fixed-length protocol.
     * @param warmup_cycles Length of the discarded initial batch.
     * @param batch_cycles Length of each measured batch.
     * @param num_batches Number of measured batches.
     */
    BatchMeans(Cycle warmup_cycles, Cycle batch_cycles,
               std::uint32_t num_batches);

    /**
     * Adaptive collector: batches of @a batch_cycles from cycle 0,
     * growing without bound until the controller stops the run.
     */
    static BatchMeans adaptive(Cycle batch_cycles);

    /** True for a collector built by adaptive(). */
    bool isAdaptive() const { return adaptive_; }

    /** Record a sample that completed at @a now. */
    void add(Cycle now, double value);

    /**
     * Cycle at which all batches are filled and the run may stop.
     * Adaptive collectors have no predetermined horizon: before
     * setTruncation() this is the maximum representable cycle.
     */
    Cycle endCycle() const;

    /** True once @a now has passed endCycle(). */
    bool done(Cycle now) const { return now >= endCycle(); }

    /** True while @a now is inside the measured window. */
    bool
    inMeasurement(Cycle now) const
    {
        return now >= warmupCycles_ && now < endCycle();
    }

    /** Samples recorded in measured (retained) batches. */
    std::uint64_t sampleCount() const;

    /** Grand mean over all measured (retained) samples. */
    double mean() const;

    /**
     * 95% confidence half-width from the batch-mean variance
     * (normal quantile in fixed mode, Student-t in adaptive mode).
     */
    double halfWidth95() const;

    /** Mean of one measured batch (0-based, after warmup). */
    double batchMean(std::uint32_t batch) const;

    /** Sample count of one measured batch. */
    std::uint64_t batchCount(std::uint32_t batch) const;

    std::uint32_t numBatches() const
    {
        return static_cast<std::uint32_t>(batches_.size());
    }

    /**
     * Pin the retained window of an adaptive collector: batches
     * [first_batch, batch_limit) feed mean()/halfWidth95()/
     * sampleCount(); batch_limit also pins endCycle() so
     * inMeasurement() closes. Idempotent; re-applied at every
     * controller checkpoint as the MSER truncation moves.
     */
    void setTruncation(std::uint32_t first_batch,
                       std::uint32_t batch_limit);

    std::uint32_t truncationBatch() const { return truncFirst_; }

    Cycle warmupCycles() const { return warmupCycles_; }
    Cycle batchCycles() const { return batchCycles_; }

    /**
     * Checkpoint hooks: batch accumulators and truncation only. The
     * protocol parameters (warmup/batch lengths, mode) are config and
     * must match between saver and restorer — the file-level config
     * key guarantees it.
     */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    BatchMeans() = default;

    Cycle warmupCycles_ = 0;
    Cycle batchCycles_ = 1;
    std::vector<RunningStats> batches_;
    RunningStats all_;

    bool adaptive_ = false;
    std::uint32_t truncFirst_ = 0;
    /** One past the last retained batch; 0 = not yet pinned. */
    std::uint32_t truncLimit_ = 0;
};

} // namespace hrsim

#endif // HRSIM_STATS_BATCH_MEANS_HH
