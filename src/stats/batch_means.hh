/**
 * @file
 * Batch-means output analysis.
 *
 * The paper uses the batch-means method with the first batch discarded
 * to remove initialization bias; this class reproduces that protocol.
 * Samples are tagged with their completion cycle; the collector
 * assigns them to fixed-length batches, drops every sample completed
 * during the warmup (batch 0), and reports the grand mean together
 * with a confidence half-width computed from the variance of the batch
 * means.
 */

#ifndef HRSIM_STATS_BATCH_MEANS_HH
#define HRSIM_STATS_BATCH_MEANS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/running_stats.hh"

namespace hrsim
{

class BatchMeans
{
  public:
    /**
     * @param warmup_cycles Length of the discarded initial batch.
     * @param batch_cycles Length of each measured batch.
     * @param num_batches Number of measured batches.
     */
    BatchMeans(Cycle warmup_cycles, Cycle batch_cycles,
               std::uint32_t num_batches);

    /** Record a sample that completed at @a now. */
    void add(Cycle now, double value);

    /** Cycle at which all batches are filled and the run may stop. */
    Cycle endCycle() const;

    /** True once @a now has passed endCycle(). */
    bool done(Cycle now) const { return now >= endCycle(); }

    /** True while @a now is inside the measured window. */
    bool
    inMeasurement(Cycle now) const
    {
        return now >= warmupCycles_ && now < endCycle();
    }

    /** Samples recorded in measured batches. */
    std::uint64_t sampleCount() const;

    /** Grand mean over all measured samples. */
    double mean() const;

    /** 95% confidence half-width from the batch-mean variance. */
    double halfWidth95() const;

    /** Mean of one measured batch (0-based, after warmup). */
    double batchMean(std::uint32_t batch) const;

    std::uint32_t numBatches() const
    {
        return static_cast<std::uint32_t>(batches_.size());
    }

    Cycle warmupCycles() const { return warmupCycles_; }
    Cycle batchCycles() const { return batchCycles_; }

  private:
    Cycle warmupCycles_;
    Cycle batchCycles_;
    std::vector<RunningStats> batches_;
    RunningStats all_;
};

} // namespace hrsim

#endif // HRSIM_STATS_BATCH_MEANS_HH
