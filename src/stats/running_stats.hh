/**
 * @file
 * Streaming sample statistics (Welford's online algorithm).
 */

#ifndef HRSIM_STATS_RUNNING_STATS_HH
#define HRSIM_STATS_RUNNING_STATS_HH

#include <cstdint>

namespace hrsim
{

class CkptWriter;
class CkptReader;

/**
 * Accumulates count, mean, variance, min and max of a sample stream
 * in a single numerically-stable pass.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 for fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

    /** Checkpoint hooks: all five accumulator fields, bit-exact. */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace hrsim

#endif // HRSIM_STATS_RUNNING_STATS_HH
