#include "stats/histogram.hh"

#include <cmath>

#include "common/log.hh"
#include "ckpt/codec.hh"

namespace hrsim
{

namespace
{

// Bucket boundaries at 2^(k/4): ~19% wide buckets, ~9% max error.
constexpr double bucketsPerOctave = 4.0;

} // namespace

Histogram::Histogram(double max_value) : maxValue_(max_value)
{
    HRSIM_ASSERT(max_value > 1.0);
    const auto buckets = static_cast<std::size_t>(
        std::ceil(std::log2(max_value) * bucketsPerOctave)) + 1;
    counts_.assign(buckets, 0);
}

std::size_t
Histogram::bucketOf(double value) const
{
    if (value < 1.0)
        return 0;
    const auto index = static_cast<std::size_t>(
        std::floor(std::log2(value) * bucketsPerOctave));
    return index >= counts_.size() ? counts_.size() - 1 : index;
}

double
Histogram::bucketLo(std::size_t index) const
{
    return std::exp2(static_cast<double>(index) / bucketsPerOctave);
}

void
Histogram::add(double value)
{
    ++counts_[bucketOf(value)];
    ++count_;
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(count_);
    double seen = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const double next = seen + static_cast<double>(counts_[i]);
        if (next >= target) {
            // Interpolate inside the bucket.
            const double lo = i == 0 ? 0.0 : bucketLo(i);
            const double hi = bucketLo(i + 1);
            const double frac =
                (target - seen) / static_cast<double>(counts_[i]);
            return lo + frac * (hi - lo);
        }
        seen = next;
    }
    return bucketLo(counts_.size());
}

void
Histogram::merge(const Histogram &other)
{
    HRSIM_ASSERT(counts_.size() == other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
}

void
Histogram::reset()
{
    counts_.assign(counts_.size(), 0);
    count_ = 0;
}

void
Histogram::saveState(CkptWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(counts_.size()));
    for (const std::uint64_t bucket : counts_)
        w.u64(bucket);
    w.u64(count_);
}

void
Histogram::loadState(CkptReader &r)
{
    const std::uint32_t buckets = r.u32();
    if (buckets != counts_.size()) {
        throw CheckpointError(
            "checkpoint: histogram geometry mismatch");
    }
    for (std::uint64_t &bucket : counts_)
        bucket = r.u64();
    count_ = r.u64();
}

} // namespace hrsim
