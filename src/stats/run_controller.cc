#include "stats/run_controller.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/log.hh"
#include "ckpt/codec.hh"

namespace hrsim
{

const char *
toString(StopReason reason)
{
    switch (reason) {
      case StopReason::FixedLength:
        return "fixed";
      case StopReason::Converged:
        return "converged";
      case StopReason::MaxCycles:
        return "max_cycles";
      case StopReason::Saturated:
        return "saturated";
    }
    return "unknown";
}

RunController::RunController(const StopPolicy &policy,
                             BatchMeans &collector)
    : policy_(policy), collector_(collector)
{
    if (!policy_.enabled())
        fatal("RunController: policy.relHw must be positive");
    if (policy_.batchCycles == 0 || policy_.maxCycles == 0)
        fatal("RunController: batchCycles/maxCycles must be resolved");
    if (policy_.minBatches < 2)
        fatal("RunController: need at least two retained batches");
    if (policy_.divergenceWindow < 2)
        fatal("RunController: divergence window must be >= 2");
    HRSIM_ASSERT(collector_.isAdaptive());
    HRSIM_ASSERT(collector_.batchCycles() == policy_.batchCycles);
    relHw_ = std::numeric_limits<double>::infinity();
}

Cycle
RunController::nextCheckpoint() const
{
    return static_cast<Cycle>(history_.size() + 1) *
           policy_.batchCycles;
}

std::uint32_t
RunController::mserTruncation(const std::vector<double> &means)
{
    // MSER: over truncations d (at most half the series, the
    // standard guard against truncating the whole run away), minimize
    // the standard error of the remaining means. One suffix sweep
    // yields every candidate's sum/sum-of-squares in O(n).
    const std::size_t n = means.size();
    if (n < 2)
        return 0;
    const std::size_t max_d = n / 2;
    double sum = 0.0;
    double sumsq = 0.0;
    double best_se = std::numeric_limits<double>::infinity();
    std::size_t best_d = 0;
    // Walk d downward so each candidate extends the suffix by one.
    std::vector<double> se(max_d + 1,
                           std::numeric_limits<double>::infinity());
    for (std::size_t i = n; i-- > 0;) {
        sum += means[i];
        sumsq += means[i] * means[i];
        const std::size_t m = n - i;
        if (i <= max_d && m >= 2) {
            const double mean = sum / static_cast<double>(m);
            const double var =
                (sumsq - sum * mean) / static_cast<double>(m - 1);
            se[i] = std::sqrt(std::max(var, 0.0)) /
                    std::sqrt(static_cast<double>(m));
        }
    }
    // Smallest d wins ties: truncate no more than the evidence asks.
    for (std::size_t d = 0; d <= max_d; ++d) {
        if (se[d] < best_se) {
            best_se = se[d];
            best_d = d;
        }
    }
    return static_cast<std::uint32_t>(best_d);
}

bool
RunController::convergedAt(std::uint32_t completed_batches)
{
    // Compact the batch-mean series to non-empty batches (an idle
    // low-load gap may close a batch with no completions), remember
    // the original index of each entry so the MSER pick maps back to
    // a batch boundary.
    std::vector<double> means;
    std::vector<std::uint32_t> index;
    means.reserve(completed_batches);
    const std::uint32_t have =
        std::min(completed_batches, collector_.numBatches());
    for (std::uint32_t b = 0; b < have; ++b) {
        if (collector_.batchCount(b) > 0) {
            means.push_back(collector_.batchMean(b));
            index.push_back(b);
        }
    }

    const std::uint32_t d = mserTruncation(means);
    truncation_ = means.empty() ? 0 : index[d];
    collector_.setTruncation(truncation_, completed_batches);

    const double mean = collector_.mean();
    const std::uint32_t retained =
        static_cast<std::uint32_t>(means.size()) - d;
    if (mean <= 0.0 || retained < policy_.minBatches) {
        relHw_ = std::numeric_limits<double>::infinity();
        return false;
    }
    relHw_ = collector_.halfWidth95() / mean;
    return relHw_ <= policy_.relHw;
}

bool
RunController::saturatedAt() const
{
    // Saturation signature: past the MSER truncation the latency
    // batch means are STILL climbing by at least divergenceGrowth
    // (first-half vs second-half averages of everything retained)
    // while the queues are pegged near the outstanding cap or still
    // filling toward it. For a stationary point the half averages
    // converge as the retained window grows, so batch-mean noise
    // cannot hold them divergenceGrowth apart for long; for a point
    // past the knee the climb is the signal itself, and MSER (capped
    // at truncating half the run) can never hide it. Evaluation
    // waits for divergenceWindow + 1 retained checkpoints and
    // minBatches total, so short transients of convergeable points
    // are truncated away before the detector ever looks.
    const std::uint32_t window = policy_.divergenceWindow;
    if (history_.size() < policy_.minBatches)
        return false;
    const std::size_t first = truncation_;
    if (history_.size() < first + window + 1)
        return false;
    const std::size_t count = history_.size() - first;
    const std::size_t half = count / 2;
    double lat_lo = 0.0, lat_hi = 0.0;
    double occ_lo = 0.0, occ_hi = 0.0;
    bool pegged = true;
    for (std::size_t k = 0; k < half; ++k) {
        lat_lo += history_[first + k].batchMean;
        occ_lo += history_[first + k].occupancy;
        lat_hi += history_[history_.size() - half + k].batchMean;
        occ_hi += history_[history_.size() - half + k].occupancy;
    }
    lat_lo /= static_cast<double>(half);
    lat_hi /= static_cast<double>(half);
    occ_lo /= static_cast<double>(half);
    occ_hi /= static_cast<double>(half);
    for (std::size_t i = first; i < history_.size(); ++i) {
        pegged = pegged &&
                 history_[i].occupancy >= policy_.divergenceOccupancy;
    }
    // "Filling" needs a rising trend AND already-substantial
    // occupancy (half the pegged threshold): low-occupancy noise can
    // drift upward, but it cannot be saturation.
    const bool filling = occ_hi > occ_lo &&
                         occ_hi >= 0.5 * policy_.divergenceOccupancy;
    return (pegged || filling) && lat_lo > 0.0 &&
           lat_hi >= lat_lo * (1.0 + policy_.divergenceGrowth);
}

RunController::Decision
RunController::onCheckpoint(Cycle now, double occupancy)
{
    HRSIM_ASSERT(!stopped_);
    HRSIM_ASSERT(now == nextCheckpoint());
    const auto closed =
        static_cast<std::uint32_t>(history_.size()); // batch index
    CheckpointStats stats;
    stats.batchMean = closed < collector_.numBatches() &&
                              collector_.batchCount(closed) > 0
                          ? collector_.batchMean(closed)
                          : 0.0;
    stats.occupancy = occupancy;
    history_.push_back(stats);

    if (std::getenv("HRSIM_DEBUG_STOP") != nullptr) {
        std::fprintf(stderr,
                     "ckpt %llu mean=%.2f occ=%.3f relhw=%.4f\n",
                     (unsigned long long)now, stats.batchMean,
                     stats.occupancy, relHw_);
    }
    Decision decision;
    if (convergedAt(closed + 1)) {
        decision.stop = true;
        decision.reason = StopReason::Converged;
    } else if (saturatedAt()) {
        decision.stop = true;
        decision.reason = StopReason::Saturated;
    } else if (now + policy_.batchCycles > policy_.maxCycles) {
        decision.stop = true;
        decision.reason = StopReason::MaxCycles;
    }
    stopped_ = decision.stop;
    return decision;
}

void
RunController::saveState(CkptWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(history_.size()));
    for (const CheckpointStats &stats : history_) {
        w.f64(stats.batchMean);
        w.f64(stats.occupancy);
    }
    w.u32(truncation_);
    w.f64(relHw_);
    w.boolean(stopped_);
}

void
RunController::loadState(CkptReader &r)
{
    const std::uint32_t checkpoints = r.u32();
    history_.assign(checkpoints, CheckpointStats());
    for (CheckpointStats &stats : history_) {
        stats.batchMean = r.f64();
        stats.occupancy = r.f64();
    }
    truncation_ = r.u32();
    relHw_ = r.f64();
    stopped_ = r.boolean();
}

} // namespace hrsim
