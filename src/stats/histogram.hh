/**
 * @file
 * Log-bucketed latency histogram with percentile queries.
 *
 * Buckets grow geometrically (powers of 2^(1/4) by default), which
 * keeps relative error bounded at ~9% across the full range of
 * round-trip latencies (tens to tens of thousands of cycles) with a
 * few hundred buckets. Percentiles are interpolated within the
 * winning bucket.
 */

#ifndef HRSIM_STATS_HISTOGRAM_HH
#define HRSIM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace hrsim
{

class CkptWriter;
class CkptReader;

class Histogram
{
  public:
    /**
     * @param max_value Largest representable sample; larger samples
     *        are clamped into the final bucket.
     */
    explicit Histogram(double max_value = 1e6);

    /** Record one sample (values < 1 count into the first bucket). */
    void add(double value);

    std::uint64_t count() const { return count_; }

    /** q-quantile in [0, 1]; 0 with no samples. */
    double percentile(double q) const;

    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }

    /** Merge another histogram with identical geometry. */
    void merge(const Histogram &other);

    void reset();

    /** Number of buckets (for tests). */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Checkpoint hooks: bucket counts (geometry must match). */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    std::size_t bucketOf(double value) const;

    /** Lower bound of bucket @a index. */
    double bucketLo(std::size_t index) const;

    double maxValue_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
};

} // namespace hrsim

#endif // HRSIM_STATS_HISTOGRAM_HH
