#include "stats/utilization.hh"

#include <algorithm>

#include "common/log.hh"
#include "ckpt/codec.hh"

namespace hrsim
{

UtilizationTracker::GroupId
UtilizationTracker::group(const std::string &name)
{
    for (GroupId g = 0; g < groupNames_.size(); ++g) {
        if (groupNames_[g] == name)
            return g;
    }
    groupNames_.push_back(name);
    groupCapacity_.push_back(0);
    groupTransfers_.push_back(0);
    return static_cast<GroupId>(groupNames_.size() - 1);
}

UtilizationTracker::LinkId
UtilizationTracker::addLink(GroupId group, std::uint32_t speed_factor)
{
    HRSIM_ASSERT(group < groupCapacity_.size());
    HRSIM_ASSERT(speed_factor >= 1);
    linkGroup_.push_back(group);
    linkSpeed_.push_back(speed_factor);
    groupCapacity_[group] += speed_factor;
    return static_cast<LinkId>(linkGroup_.size() - 1);
}

void
UtilizationTracker::setShardPlanes(int shards)
{
    planes_.assign(static_cast<std::size_t>(std::max(shards, 0)),
                   std::vector<std::uint64_t>(groupTransfers_.size(),
                                              0));
}

std::uint64_t
UtilizationTracker::groupTransfersTotal(GroupId group) const
{
    std::uint64_t total = groupTransfers_[group];
    for (const auto &plane : planes_)
        total += plane[group];
    return total;
}

void
UtilizationTracker::startMeasurement(Cycle now)
{
    measuring_ = true;
    windowStart_ = now;
    for (auto &transfers : groupTransfers_)
        transfers = 0;
    for (auto &plane : planes_) {
        for (auto &transfers : plane)
            transfers = 0;
    }
}

void
UtilizationTracker::markSnapshot(Cycle now)
{
    if (!measuring_)
        return;
    HRSIM_ASSERT(now >= windowStart_);
    windowCycles_ = now - windowStart_;
}

void
UtilizationTracker::stopMeasurement(Cycle now)
{
    HRSIM_ASSERT(measuring_);
    HRSIM_ASSERT(now >= windowStart_);
    measuring_ = false;
    windowCycles_ = now - windowStart_;
}

double
UtilizationTracker::groupUtilization(GroupId group) const
{
    HRSIM_ASSERT(group < groupCapacity_.size());
    if (windowCycles_ == 0 || groupCapacity_[group] == 0)
        return 0.0;
    const double cap = static_cast<double>(groupCapacity_[group]) *
                       static_cast<double>(windowCycles_);
    return static_cast<double>(groupTransfersTotal(group)) / cap;
}

double
UtilizationTracker::totalUtilization() const
{
    if (windowCycles_ == 0)
        return 0.0;
    std::uint64_t cap = 0;
    std::uint64_t transfers = 0;
    for (std::size_t g = 0; g < groupCapacity_.size(); ++g) {
        cap += groupCapacity_[g];
        transfers += groupTransfersTotal(static_cast<GroupId>(g));
    }
    if (cap == 0)
        return 0.0;
    return static_cast<double>(transfers) /
           (static_cast<double>(cap) * static_cast<double>(windowCycles_));
}

void
UtilizationTracker::saveState(CkptWriter &w) const
{
    w.boolean(measuring_);
    w.u64(windowStart_);
    w.u64(windowCycles_);
    // Fold the shard planes into the saved master counters: plane
    // splits are an engine artifact of this run, not simulator state.
    w.u32(static_cast<std::uint32_t>(groupTransfers_.size()));
    for (GroupId g = 0; g < groupTransfers_.size(); ++g)
        w.u64(groupTransfersTotal(g));
}

void
UtilizationTracker::loadState(CkptReader &r)
{
    measuring_ = r.boolean();
    windowStart_ = r.u64();
    windowCycles_ = r.u64();
    const std::uint32_t groups = r.u32();
    if (groups != groupTransfers_.size()) {
        throw CheckpointError(
            "checkpoint: utilization group count mismatch");
    }
    // Counters load into the master plane; shard planes restart at
    // zero (read-side aggregates sum master + planes, so the total is
    // exactly the saved value). The vectors are assigned in place —
    // link drivers hold stable pointers into them.
    for (GroupId g = 0; g < groupTransfers_.size(); ++g)
        groupTransfers_[g] = r.u64();
    for (auto &plane : planes_)
        std::fill(plane.begin(), plane.end(), 0);
}

} // namespace hrsim
