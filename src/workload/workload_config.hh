/**
 * @file
 * M-MRP workload parameters (Section 2.4 of the paper).
 */

#ifndef HRSIM_WORKLOAD_WORKLOAD_CONFIG_HH
#define HRSIM_WORKLOAD_WORKLOAD_CONFIG_HH

#include <cstdint>

namespace hrsim
{

struct WorkloadConfig
{
    /** Region size R in (0, 1]; 1.0 means no locality. */
    double localityR = 1.0;

    /** Cache miss rate C per processor cycle (paper: 0.04). */
    double missRateC = 0.04;

    /** Outstanding transactions T before the processor blocks. */
    int outstandingT = 4;

    /** Probability that a miss is a read (paper: 0.7). */
    double readFraction = 0.7;

    /**
     * Memory service time in cycles. The paper does not state a
     * value, but its smallest-system latencies (~40-60 cycles at
     * 4-8 nodes, Figure 6) imply a substantial fixed memory cost;
     * 20 cycles (400 ns at the NUMAchine's 50 MHz clock, a mid-90s
     * DRAM line fill) reproduces those floors while sustaining the
     * paper's offered load of C = 0.04 per processor.
     */
    std::uint32_t memoryLatency = 20;

    /**
     * Serve one request at a time per memory module (a single-banked
     * memory, as in the Hector/NUMAchine stations the paper's
     * simulator was validated against, and as smpl's single-server
     * facilities model). When false the memory is fully pipelined.
     */
    bool memorySerialized = true;
};

} // namespace hrsim

#endif // HRSIM_WORKLOAD_WORKLOAD_CONFIG_HH
