#include "workload/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "ckpt/state_io.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace hrsim
{

Trace::Trace(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
    std::stable_sort(records_.begin(), records_.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.cycle < b.cycle;
                     });
}

Trace
Trace::load(std::istream &in)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream fields(line);
        TraceRecord rec;
        std::string kind;
        if (!(fields >> rec.cycle >> rec.pm >> rec.target >> kind)) {
            fatal("Trace: malformed line " + std::to_string(line_no) +
                  ": '" + line + "'");
        }
        if (kind == "R") {
            rec.isRead = true;
        } else if (kind == "W") {
            rec.isRead = false;
        } else {
            fatal("Trace: bad access kind '" + kind + "' on line " +
                  std::to_string(line_no));
        }
        if (rec.pm < 0 || rec.target < 0)
            fatal("Trace: negative node id on line " +
                  std::to_string(line_no));
        records.push_back(rec);
    }
    return Trace(std::move(records));
}

void
Trace::save(std::ostream &out) const
{
    out << "# hrsim trace: cycle pm target R|W\n";
    for (const TraceRecord &rec : records_) {
        out << rec.cycle << " " << rec.pm << " " << rec.target << " "
            << (rec.isRead ? 'R' : 'W') << "\n";
    }
}

Trace
Trace::synthesizeUniform(int num_processors, Cycle cycles,
                         double miss_rate, double read_fraction,
                         std::uint64_t seed)
{
    if (num_processors < 2)
        fatal("Trace::synthesizeUniform: need >= 2 processors");
    std::vector<TraceRecord> records;
    for (NodeId pm = 0; pm < num_processors; ++pm) {
        Rng rng(seed, static_cast<std::uint64_t>(pm));
        for (Cycle c = 0; c < cycles; ++c) {
            if (!rng.bernoulli(miss_rate))
                continue;
            TraceRecord rec;
            rec.cycle = c;
            rec.pm = pm;
            // Uniform remote target (exclude self).
            rec.target = static_cast<NodeId>(rng.uniformInt(
                static_cast<std::uint64_t>(num_processors - 1)));
            if (rec.target >= pm)
                ++rec.target;
            rec.isRead = rng.bernoulli(read_fraction);
            records.push_back(rec);
        }
    }
    return Trace(std::move(records));
}

std::vector<TraceRecord>
Trace::forPm(NodeId pm) const
{
    std::vector<TraceRecord> out;
    for (const TraceRecord &rec : records_) {
        if (rec.pm == pm)
            out.push_back(rec);
    }
    return out;
}

NodeId
Trace::maxNode() const
{
    NodeId max_node = -1;
    for (const TraceRecord &rec : records_) {
        max_node = std::max(max_node, rec.pm);
        max_node = std::max(max_node, rec.target);
    }
    return max_node;
}

// ------------------------------------------------------------------ //
// TraceProcessor

TraceProcessor::TraceProcessor(NodeId pm,
                               std::vector<TraceRecord> records,
                               int outstanding_limit,
                               std::uint32_t memory_latency,
                               PacketFactory &factory,
                               Network &network, BatchMeans &latency,
                               WorkloadCounters &counters)
    : pm_(pm), limit_(outstanding_limit),
      memoryLatency_(memory_latency), factory_(factory),
      network_(network), latency_(latency), counters_(counters)
{
    HRSIM_ASSERT(limit_ >= 1);
    queue_.reserve(records.size());
    for (const TraceRecord &rec : records) {
        HRSIM_ASSERT(rec.pm == pm_);
        queue_.push_back(rec);
    }
}

bool
TraceProcessor::blocked() const
{
    return !queue_.empty() && outstanding_ >= limit_;
}

Cycle
TraceProcessor::nextWake(Cycle now) const
{
    if (netBlocked_)
        return now + 1; // NIC back-pressure: retry every cycle
    Cycle wake = neverWake;
    if (!localDue_.empty())
        wake = localDue_.front();
    if (!queue_.empty() && outstanding_ < limit_) {
        const Cycle due = std::max(queue_.front().cycle, now + 1);
        wake = std::min(wake, due);
    }
    // Saturated (outstanding_ >= limit_): local completions are
    // timed; remote ones re-arm us via the delivery path.
    return wake;
}

void
TraceProcessor::syncSkipped(Cycle now)
{
    if (lastTick_ != neverWake && now > lastTick_ + 1) {
        // Every skipped cycle would have counted one blocked cycle
        // iff the replay ended its last tick saturated (the snapshot
        // — deliveries inside the window already forced a wake, so
        // the state cannot have changed while asleep).
        if (sleepBlocked_)
            counters_.blockedCycles += now - lastTick_ - 1;
        lastTick_ = now - 1;
    }
}

void
TraceProcessor::tick(Cycle now)
{
    syncSkipped(now);
    lastTick_ = now;
    netBlocked_ = false;

    while (!localDue_.empty() && localDue_.front() <= now) {
        localDue_.pop_front();
        HRSIM_ASSERT(outstanding_ > 0);
        --outstanding_;
        ++counters_.localCompleted;
    }

    // Issue every due reference the limit and the NIC allow.
    while (!queue_.empty() && queue_.front().cycle <= now &&
           outstanding_ < limit_) {
        const TraceRecord &rec = queue_.front();
        if (rec.target == pm_) {
            ++outstanding_;
            localDue_.push_back(now + memoryLatency_);
            ++counters_.missesGenerated;
            ++counters_.localIssued;
            queue_.pop_front();
            continue;
        }
        const Packet pkt =
            factory_.makeRequest(pm_, rec.target, rec.isRead, now);
        if (!network_.canInject(pm_, pkt)) {
            ++counters_.blockedCycles;
            netBlocked_ = true;
            break; // retry the same record next cycle
        }
        network_.inject(pm_, pkt);
        ++outstanding_;
        ++counters_.missesGenerated;
        ++counters_.remoteIssued;
        queue_.pop_front();
    }
    if (blocked())
        ++counters_.blockedCycles;
    sleepBlocked_ = blocked();
}

void
TraceProcessor::saveState(CkptWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(queue_.size()));
    w.i32(outstanding_);
    w.boolean(netBlocked_);
    w.boolean(sleepBlocked_);
    w.u64(lastTick_);
    saveFifo(w, localDue_,
             [](CkptWriter &out, Cycle due) { out.u64(due); });
}

void
TraceProcessor::loadState(CkptReader &r)
{
    const std::uint32_t remaining = r.u32();
    if (remaining > queue_.size()) {
        throw CheckpointError(
            "checkpoint: trace replay cursor past the configured "
            "trace (trace file mismatch)");
    }
    while (queue_.size() > remaining)
        queue_.pop_front();
    outstanding_ = r.i32();
    netBlocked_ = r.boolean();
    sleepBlocked_ = r.boolean();
    lastTick_ = r.u64();
    localDue_.clear();
    const std::uint32_t due_count = r.u32();
    localDue_.reserve(std::max<std::size_t>(due_count, 1));
    for (std::uint32_t i = 0; i < due_count; ++i)
        localDue_.push_back(r.u64());
}

void
TraceProcessor::onResponse(const Packet &pkt, Cycle now)
{
    HRSIM_ASSERT(!isRequest(pkt.type));
    HRSIM_ASSERT(pkt.dst == pm_);
    HRSIM_ASSERT(outstanding_ > 0);
    --outstanding_;
    ++counters_.remoteCompleted;
    HRSIM_ASSERT(now >= pkt.issueCycle);
    const double trip = static_cast<double>(now - pkt.issueCycle);
    latency_.add(now, trip);
    if (histogram_ && latency_.inMeasurement(now))
        histogram_->add(trip);
}

} // namespace hrsim
