/**
 * @file
 * Memory-access region construction for the M-MRP workload.
 *
 * Parameter R in (0, 1] controls locality: each processor accesses
 * memory in the round(R * (P - 1)) "closest" PMs as well as its own.
 * Following the paper, "closest" is interpreted per network:
 *
 *  - Rings: PMs are projected onto a line in hierarchical (DFS)
 *    order and the region is the contiguous block centered at the
 *    accessing PM. We wrap the block around the ends by default (a
 *    ring is closed); a clipped variant is provided for the
 *    neighborhood-model ablation.
 *  - Meshes: the region is the set of PMs nearest by hop count
 *    (Manhattan distance), ties broken by id, which minimizes mesh
 *    hops exactly as the paper's locality model does.
 */

#ifndef HRSIM_WORKLOAD_REGION_HH
#define HRSIM_WORKLOAD_REGION_HH

#include <vector>

#include "common/types.hh"

namespace hrsim
{

/** Number of remote PMs in an access region of P processors. */
int regionRemoteCount(int num_processors, double locality_r);

/**
 * Ring access region: the accessing PM plus a contiguous block of
 * neighbors in linear order, wrapped around the ends.
 *
 * @param pm The accessing PM.
 * @param num_processors Total PMs (linear ids 0..P-1).
 * @param locality_r The paper's R parameter.
 * @param wrap Wrap the block around the line ends (default), or clip.
 * @return Target PM ids including @a pm itself.
 */
std::vector<NodeId> ringRegion(NodeId pm, int num_processors,
                               double locality_r, bool wrap = true);

/**
 * Mesh access region: the accessing PM plus the remote PMs nearest by
 * Manhattan distance on a width x width square mesh.
 *
 * @param pm The accessing PM.
 * @param width Mesh edge length; P = width * width.
 * @param locality_r The paper's R parameter.
 * @return Target PM ids including @a pm itself.
 */
std::vector<NodeId> meshRegion(NodeId pm, int width, double locality_r);

} // namespace hrsim

#endif // HRSIM_WORKLOAD_REGION_HH
