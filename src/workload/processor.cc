#include "workload/processor.hh"

#include <algorithm>

#include "common/log.hh"

namespace hrsim
{

Processor::Processor(NodeId pm, std::vector<NodeId> targets,
                     const WorkloadConfig &cfg, PacketFactory &factory,
                     Network &network, BatchMeans &latency,
                     WorkloadCounters &counters, std::uint64_t seed)
    : pm_(pm), targets_(std::move(targets)), cfg_(cfg),
      factory_(factory), network_(network), latency_(latency),
      counters_(counters),
      rng_(seed, static_cast<std::uint64_t>(pm))
{
    HRSIM_ASSERT(!targets_.empty());
    HRSIM_ASSERT(std::find(targets_.begin(), targets_.end(), pm_) !=
                 targets_.end());
    localDue_.reserve(
        static_cast<std::size_t>(std::max(cfg_.outstandingT, 1)));
    advanceNextMiss(0);
}

void
Processor::advanceNextMiss(Cycle from)
{
    if (cfg_.missRateC <= 0.0) {
        // Every draw would fail and nothing downstream depends on the
        // stream position, so skip the (infinite) scan outright.
        nextMissAt_ = neverWake;
        return;
    }
    Cycle c = from;
    while (!rng_.bernoulli(cfg_.missRateC))
        ++c;
    nextMissAt_ = c;
}

bool
Processor::tryIssue(const PendingMiss &miss, Cycle now)
{
    if (outstanding_ >= cfg_.outstandingT)
        return false;
    if (miss.target == pm_) {
        // Local access: no network involvement.
        ++outstanding_;
        localDue_.push_back(now + cfg_.memoryLatency);
        ++counters_.localIssued;
        return true;
    }
    const Packet pkt =
        factory_.makeRequest(pm_, miss.target, miss.isRead, now);
    if (!network_.canInject(pm_, pkt))
        return false;
    network_.inject(pm_, pkt);
    ++outstanding_;
    ++counters_.remoteIssued;
    return true;
}

Cycle
Processor::nextWake(Cycle now) const
{
    if (stalled_) {
        if (outstanding_ >= cfg_.outstandingT) {
            // Saturated: tryIssue fails on the outstanding check
            // alone until a completion frees a slot. Local
            // completions are timed; remote ones re-arm us via the
            // delivery path.
            return localDue_.empty() ? neverWake : localDue_.front();
        }
        // Blocked on a full NIC queue: retry every cycle.
        return now + 1;
    }
    // Unblocked: nothing happens until the pre-drawn next miss or the
    // next local completion (whichever comes first). Skipped cycles
    // are pure no-ops — their failing miss draws are already consumed.
    Cycle wake = nextMissAt_;
    if (!localDue_.empty() && localDue_.front() < wake)
        wake = localDue_.front();
    return wake;
}

void
Processor::syncSkipped(Cycle now)
{
    if (lastTick_ != neverWake && now > lastTick_ + 1) {
        // Stalled skips: every skipped cycle would have counted one
        // blocked cycle and retried an issue that provably fails
        // (nextWake() precondition), so bulk-credit the counter.
        // Unstalled skips are no-ops and credit nothing.
        if (stalled_)
            counters_.blockedCycles += now - lastTick_ - 1;
        lastTick_ = now - 1;
    }
}

void
Processor::tick(Cycle now)
{
    syncSkipped(now);
    lastTick_ = now;

    // Retire local accesses that completed by now.
    while (!localDue_.empty() && localDue_.front() <= now) {
        localDue_.pop_front();
        HRSIM_ASSERT(outstanding_ > 0);
        --outstanding_;
        ++counters_.localCompleted;
    }

    if (stalled_) {
        ++counters_.blockedCycles;
        if (tryIssue(stalledMiss_, now)) {
            stalled_ = false;
            // nextMissAt_ went stale while blocked (the legacy loop
            // draws nothing during a stall); resume the stream from
            // the next cycle, exactly where it would have resumed.
            advanceNextMiss(now + 1);
        }
        return; // blocked: no new miss is generated this cycle
    }

    if (cfg_.missRateC <= 0.0)
        return;
    if (now < nextMissAt_)
        return; // pre-drawn failure for this cycle, nothing to do
    HRSIM_ASSERT(now == nextMissAt_);

    ++counters_.missesGenerated;
    PendingMiss miss;
    miss.target = targets_[rng_.uniformInt(targets_.size())];
    miss.isRead = rng_.bernoulli(cfg_.readFraction);
    if (tryIssue(miss, now)) {
        advanceNextMiss(now + 1);
    } else {
        stalled_ = true;
        stalledMiss_ = miss;
    }
}

void
Processor::onResponse(const Packet &pkt, Cycle now)
{
    HRSIM_ASSERT(!isRequest(pkt.type));
    HRSIM_ASSERT(pkt.dst == pm_);
    HRSIM_ASSERT(outstanding_ > 0);
    --outstanding_;
    ++counters_.remoteCompleted;
    HRSIM_ASSERT(now >= pkt.issueCycle);
    const double trip = static_cast<double>(now - pkt.issueCycle);
    latency_.add(now, trip);
    if (histogram_ && latency_.inMeasurement(now))
        histogram_->add(trip);
}

} // namespace hrsim
