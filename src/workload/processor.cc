#include "workload/processor.hh"

#include <algorithm>

#include "common/log.hh"

namespace hrsim
{

Processor::Processor(NodeId pm, std::vector<NodeId> targets,
                     const WorkloadConfig &cfg, PacketFactory &factory,
                     Network &network, BatchMeans &latency,
                     WorkloadCounters &counters, std::uint64_t seed)
    : pm_(pm), targets_(std::move(targets)), cfg_(cfg),
      factory_(factory), network_(network), latency_(latency),
      counters_(counters),
      rng_(seed, static_cast<std::uint64_t>(pm))
{
    HRSIM_ASSERT(!targets_.empty());
    HRSIM_ASSERT(std::find(targets_.begin(), targets_.end(), pm_) !=
                 targets_.end());
}

bool
Processor::tryIssue(const PendingMiss &miss, Cycle now)
{
    if (outstanding_ >= cfg_.outstandingT)
        return false;
    if (miss.target == pm_) {
        // Local access: no network involvement.
        ++outstanding_;
        localDue_.push_back(now + cfg_.memoryLatency);
        ++counters_.localIssued;
        return true;
    }
    const Packet pkt =
        factory_.makeRequest(pm_, miss.target, miss.isRead, now);
    if (!network_.canInject(pm_, pkt))
        return false;
    network_.inject(pm_, pkt);
    ++outstanding_;
    ++counters_.remoteIssued;
    return true;
}

Cycle
Processor::nextWake(Cycle now) const
{
    if (stalled_ && outstanding_ >= cfg_.outstandingT) {
        // Saturated: tryIssue fails on the outstanding check alone
        // until a completion frees a slot. Local completions are
        // timed; remote ones re-arm us via the delivery path.
        return localDue_.empty() ? neverWake : localDue_.front();
    }
    return now + 1;
}

void
Processor::syncSkipped(Cycle now)
{
    if (lastTick_ != neverWake && now > lastTick_ + 1) {
        // Every skipped cycle would have counted one blocked cycle
        // and retried an issue that provably fails (nextWake()
        // precondition), so bulk-credit the counter.
        HRSIM_ASSERT(stalled_);
        counters_.blockedCycles += now - lastTick_ - 1;
        lastTick_ = now - 1;
    }
}

void
Processor::tick(Cycle now)
{
    syncSkipped(now);
    lastTick_ = now;

    // Retire local accesses that completed by now.
    while (!localDue_.empty() && localDue_.front() <= now) {
        localDue_.pop_front();
        HRSIM_ASSERT(outstanding_ > 0);
        --outstanding_;
        ++counters_.localCompleted;
    }

    if (stalled_) {
        ++counters_.blockedCycles;
        if (tryIssue(stalledMiss_, now))
            stalled_ = false;
        return; // blocked: no new miss is generated this cycle
    }

    if (!rng_.bernoulli(cfg_.missRateC))
        return;

    ++counters_.missesGenerated;
    PendingMiss miss;
    miss.target = targets_[rng_.uniformInt(targets_.size())];
    miss.isRead = rng_.bernoulli(cfg_.readFraction);
    if (!tryIssue(miss, now)) {
        stalled_ = true;
        stalledMiss_ = miss;
    }
}

void
Processor::onResponse(const Packet &pkt, Cycle now)
{
    HRSIM_ASSERT(!isRequest(pkt.type));
    HRSIM_ASSERT(pkt.dst == pm_);
    HRSIM_ASSERT(outstanding_ > 0);
    --outstanding_;
    ++counters_.remoteCompleted;
    HRSIM_ASSERT(now >= pkt.issueCycle);
    const double trip = static_cast<double>(now - pkt.issueCycle);
    latency_.add(now, trip);
    if (histogram_ && latency_.inMeasurement(now))
        histogram_->add(trip);
}

} // namespace hrsim
