#include "workload/processor.hh"

#include <algorithm>

#include "ckpt/state_io.hh"
#include "common/log.hh"

namespace hrsim
{

Processor::Processor(NodeId pm, std::vector<NodeId> targets,
                     const WorkloadConfig &cfg, PacketFactory &factory,
                     Network &network, BatchMeans &latency,
                     WorkloadCounters &counters, std::uint64_t seed)
    : pm_(pm), targets_(std::move(targets)), cfg_(cfg),
      factory_(factory), network_(network), latency_(latency),
      counters_(counters),
      rng_(seed, static_cast<std::uint64_t>(pm))
{
    HRSIM_ASSERT(!targets_.empty());
    HRSIM_ASSERT(std::find(targets_.begin(), targets_.end(), pm_) !=
                 targets_.end());
    localDue_.reserve(
        static_cast<std::size_t>(std::max(cfg_.outstandingT, 1)));
    advanceNextMiss(0);
}

void
Processor::advanceNextMiss(Cycle from)
{
    if (cfg_.missRateC <= 0.0) {
        // Every draw would fail and nothing downstream depends on the
        // stream position, so skip the (infinite) scan outright.
        nextMissAt_ = neverWake;
        return;
    }
    Cycle c = from;
    while (!rng_.bernoulli(cfg_.missRateC))
        ++c;
    nextMissAt_ = c;
}

bool
Processor::tryIssue(const PendingMiss &miss, Cycle now)
{
    if (outstanding_ >= cfg_.outstandingT)
        return false;
    if (miss.target == pm_) {
        // Local access: no network involvement.
        ++outstanding_;
        localDue_.push_back(now + cfg_.memoryLatency);
        ++counters_.localIssued;
        return true;
    }
    const Packet pkt =
        factory_.makeRequest(pm_, miss.target, miss.isRead, now);
    if (!network_.canInject(pm_, pkt))
        return false;
    network_.inject(pm_, pkt);
    ++outstanding_;
    ++counters_.remoteIssued;
    if (retry_) {
        RemoteTxn txn;
        txn.target = miss.target;
        txn.isRead = miss.isRead;
        txn.issueCycle = now;
        txn.deadline = now + retry_->timeoutCycles;
        txn.ids.reserve(retry_->maxRetries + 1);
        txn.ids.push_back(pkt.id);
        txns_.push_back(std::move(txn));
    }
    return true;
}

void
Processor::setRetryPolicy(const RetryPolicy *policy,
                          RetryCounters *counters)
{
    HRSIM_ASSERT((policy == nullptr) == (counters == nullptr));
    retry_ = policy;
    retryCounters_ = counters;
    if (retry_) {
        txns_.reserve(
            static_cast<std::size_t>(std::max(cfg_.outstandingT, 1)));
    }
}

Cycle
Processor::nextDeadline() const
{
    Cycle deadline = neverWake;
    for (const RemoteTxn &txn : txns_)
        deadline = std::min(deadline, txn.deadline);
    return deadline;
}

void
Processor::processTimeouts(Cycle now)
{
    for (std::size_t i = 0; i < txns_.size();) {
        RemoteTxn &txn = txns_[i];
        if (txn.deadline > now) {
            ++i;
            continue;
        }
        if (txn.retries >= retry_->maxRetries) {
            // Give up: free the slot so the workload keeps running on
            // the surviving fabric. A response that still shows up is
            // counted stale in onResponse().
            HRSIM_ASSERT(outstanding_ > 0);
            --outstanding_;
            ++retryCounters_->abandoned;
            txns_[i] = std::move(txns_.back());
            txns_.pop_back();
            continue;
        }
        // Reissue under a fresh packet id but the original issue
        // cycle, so a latency sample from a late success spans the
        // whole outage. A full NIC queue just leaves the deadline in
        // the past: the retry re-runs every tick until it fits.
        const Packet pkt = factory_.makeRequest(
            pm_, txn.target, txn.isRead, txn.issueCycle);
        if (network_.canInject(pm_, pkt)) {
            network_.inject(pm_, pkt);
            ++txn.retries;
            txn.deadline = now + retry_->timeoutCycles;
            txn.ids.push_back(pkt.id);
            ++retryCounters_->reissued;
        }
        ++i;
    }
}

Cycle
Processor::nextWake(Cycle now) const
{
    Cycle wake;
    if (stalled_) {
        if (outstanding_ >= cfg_.outstandingT) {
            // Saturated: tryIssue fails on the outstanding check
            // alone until a completion frees a slot. Local
            // completions are timed; remote ones re-arm us via the
            // delivery path.
            wake = localDue_.empty() ? neverWake : localDue_.front();
        } else {
            // Blocked on a full NIC queue: retry every cycle.
            return now + 1;
        }
    } else {
        // Unblocked: nothing happens until the pre-drawn next miss or
        // the next local completion (whichever comes first). Skipped
        // cycles are pure no-ops — their failing miss draws are
        // already consumed.
        wake = nextMissAt_;
        if (!localDue_.empty() && localDue_.front() < wake)
            wake = localDue_.front();
    }
    if (retry_ && !txns_.empty()) {
        // The retry engine must run at the earliest deadline even
        // when the generator is asleep — an expired deadline (a
        // reissue still waiting out a full NIC queue) re-arms every
        // cycle.
        const Cycle deadline = nextDeadline();
        wake = std::min(wake, std::max(deadline, now + 1));
    }
    return wake;
}

void
Processor::syncSkipped(Cycle now)
{
    if (lastTick_ != neverWake && now > lastTick_ + 1) {
        // Stalled skips: every skipped cycle would have counted one
        // blocked cycle and retried an issue that provably fails
        // (nextWake() precondition), so bulk-credit the counter.
        // Unstalled skips are no-ops and credit nothing.
        if (stalled_)
            counters_.blockedCycles += now - lastTick_ - 1;
        lastTick_ = now - 1;
    }
}

void
Processor::tick(Cycle now)
{
    syncSkipped(now);
    lastTick_ = now;

    // Retire local accesses that completed by now.
    while (!localDue_.empty() && localDue_.front() <= now) {
        localDue_.pop_front();
        HRSIM_ASSERT(outstanding_ > 0);
        --outstanding_;
        ++counters_.localCompleted;
    }

    // Reissue/abandon before the stalled-issue retry below: an
    // abandonment can free the slot the stalled miss is waiting for.
    if (retry_ && !txns_.empty())
        processTimeouts(now);

    if (stalled_) {
        ++counters_.blockedCycles;
        if (tryIssue(stalledMiss_, now)) {
            stalled_ = false;
            // nextMissAt_ went stale while blocked (the legacy loop
            // draws nothing during a stall); resume the stream from
            // the next cycle, exactly where it would have resumed.
            advanceNextMiss(now + 1);
        }
        return; // blocked: no new miss is generated this cycle
    }

    if (cfg_.missRateC <= 0.0)
        return;
    if (now < nextMissAt_)
        return; // pre-drawn failure for this cycle, nothing to do
    HRSIM_ASSERT(now == nextMissAt_);

    ++counters_.missesGenerated;
    PendingMiss miss;
    miss.target = targets_[rng_.uniformInt(targets_.size())];
    miss.isRead = rng_.bernoulli(cfg_.readFraction);
    if (tryIssue(miss, now)) {
        advanceNextMiss(now + 1);
    } else {
        stalled_ = true;
        stalledMiss_ = miss;
    }
}

void
Processor::saveState(CkptWriter &w) const
{
    saveRng(w, rng_);
    w.i32(outstanding_);
    w.boolean(stalled_);
    w.i32(stalledMiss_.target);
    w.boolean(stalledMiss_.isRead);
    w.u64(lastTick_);
    w.u64(nextMissAt_);
    saveFifo(w, localDue_,
             [](CkptWriter &out, Cycle due) { out.u64(due); });
    w.u32(static_cast<std::uint32_t>(txns_.size()));
    for (const RemoteTxn &txn : txns_) {
        w.i32(txn.target);
        w.boolean(txn.isRead);
        w.u32(txn.retries);
        w.u64(txn.issueCycle);
        w.u64(txn.deadline);
        w.u32(static_cast<std::uint32_t>(txn.ids.size()));
        for (const PacketId id : txn.ids)
            w.u64(id);
    }
}

void
Processor::loadState(CkptReader &r)
{
    loadRng(r, rng_);
    outstanding_ = r.i32();
    stalled_ = r.boolean();
    stalledMiss_.target = r.i32();
    stalledMiss_.isRead = r.boolean();
    lastTick_ = r.u64();
    nextMissAt_ = r.u64();
    localDue_.clear();
    const std::uint32_t due_count = r.u32();
    localDue_.reserve(std::max<std::size_t>(due_count, 1));
    for (std::uint32_t i = 0; i < due_count; ++i)
        localDue_.push_back(r.u64());
    txns_.clear();
    const std::uint32_t txn_count = r.u32();
    txns_.reserve(txn_count);
    for (std::uint32_t i = 0; i < txn_count; ++i) {
        RemoteTxn txn;
        txn.target = r.i32();
        txn.isRead = r.boolean();
        txn.retries = r.u32();
        txn.issueCycle = r.u64();
        txn.deadline = r.u64();
        const std::uint32_t ids = r.u32();
        txn.ids.reserve(ids);
        for (std::uint32_t j = 0; j < ids; ++j)
            txn.ids.push_back(r.u64());
        txns_.push_back(std::move(txn));
    }
}

void
Processor::reseed(std::uint64_t seed, Cycle now)
{
    rng_ = Rng(seed, static_cast<std::uint64_t>(pm_));
    // The old pre-drawn miss cycle came from the old stream; redraw
    // from the resume cycle. A stalled generator keeps retrying its
    // stalled miss and redraws on unblocking as usual.
    if (!stalled_)
        advanceNextMiss(now);
}

void
Processor::onResponse(const Packet &pkt, Cycle now)
{
    HRSIM_ASSERT(!isRequest(pkt.type));
    HRSIM_ASSERT(pkt.dst == pm_);
    if (retry_) {
        // Match against every id the transaction ever issued: after a
        // timeout both the original response and the reissue's answer
        // are in flight, and whichever lands first completes it. The
        // loser — or a response to an abandoned transaction — is
        // stale and must not touch the outstanding count.
        std::size_t match = txns_.size();
        for (std::size_t i = 0; i < txns_.size() && match == txns_.size();
             ++i) {
            for (const PacketId id : txns_[i].ids) {
                if (id == pkt.reqId) {
                    match = i;
                    break;
                }
            }
        }
        if (match == txns_.size()) {
            ++retryCounters_->stale;
            return;
        }
        txns_[match] = std::move(txns_.back());
        txns_.pop_back();
    }
    HRSIM_ASSERT(outstanding_ > 0);
    --outstanding_;
    ++counters_.remoteCompleted;
    HRSIM_ASSERT(now >= pkt.issueCycle);
    const double trip = static_cast<double>(now - pkt.issueCycle);
    latency_.add(now, trip);
    if (histogram_ && latency_.inMeasurement(now))
        histogram_->add(trip);
}

} // namespace hrsim
