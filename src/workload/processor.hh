/**
 * @file
 * Processor model for the M-MRP synthetic workload.
 *
 * Every cycle, with probability C, the processor suffers a cache miss
 * to a target drawn uniformly from its access region (which includes
 * the local PM). Misses are reads with probability 0.7. The processor
 * may have up to T transactions outstanding; when a miss cannot be
 * issued (T outstanding, or the NIC output queue full) the processor
 * blocks: it retries the same miss each cycle and generates no new
 * ones, mimicking a multiple-context processor whose contexts are all
 * stalled. The generation rate is otherwise independent of the number
 * outstanding.
 *
 * Local misses never touch the network: they complete after the
 * memory latency. Only remote misses contribute to the round-trip
 * latency statistic, measured from issue (entry into the NIC output
 * queue) to receipt of the response's tail flit.
 *
 * Under a fault plan (setRetryPolicy) the processor additionally
 * keeps a pending-transaction table for its remote misses: a
 * transaction unanswered for timeoutCycles is reissued as a fresh
 * request packet (same target, same original issue cycle, so the
 * latency sample still measures the full outage), and abandoned —
 * its outstanding slot freed — once maxRetries reissues have gone
 * unanswered. Responses are matched through Packet::reqId against
 * every id the transaction ever issued (the original answer may
 * arrive after a timeout-triggered reissue; either completes it);
 * responses matching no live transaction are counted stale and
 * dropped. Without a policy none of this state exists and the issue
 * path is byte-identical to a build without the fault subsystem.
 */

#ifndef HRSIM_WORKLOAD_PROCESSOR_HH
#define HRSIM_WORKLOAD_PROCESSOR_HH

#include <cstdint>
#include <vector>

#include "common/ring_deque.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "fault/fault_plan.hh"
#include "proto/packet.hh"
#include "proto/packet_factory.hh"
#include "sim/network.hh"
#include "stats/batch_means.hh"
#include "stats/histogram.hh"
#include "workload/traffic_source.hh"
#include "workload/workload_config.hh"

namespace hrsim
{

/** Aggregated per-run workload event counts, shared by all PMs. */
struct WorkloadCounters
{
    std::uint64_t missesGenerated = 0;
    std::uint64_t remoteIssued = 0;
    std::uint64_t remoteCompleted = 0;
    std::uint64_t localIssued = 0;
    std::uint64_t localCompleted = 0;
    std::uint64_t blockedCycles = 0;
};

class Processor : public TrafficSource
{
  public:
    /**
     * @param pm Linear id of this PM.
     * @param targets Access region (must include @a pm).
     * @param cfg Workload parameters.
     * @param factory Packet factory shared across the system.
     * @param network Interconnect used for remote accesses.
     * @param latency Collector of remote round-trip latencies.
     * @param counters Shared event counters.
     * @param seed Master seed; the stream is derived from @a pm.
     */
    Processor(NodeId pm, std::vector<NodeId> targets,
              const WorkloadConfig &cfg, PacketFactory &factory,
              Network &network, BatchMeans &latency,
              WorkloadCounters &counters, std::uint64_t seed);

    /** Advance one cycle: generate/issue misses, retire local ones. */
    void tick(Cycle now) override;

    /** Called by the system when a response packet arrives. */
    void onResponse(const Packet &pkt, Cycle now) override;

    /**
     * Skip-idle contract. While blocked with all T transactions
     * outstanding the processor's tick is pure bookkeeping (one
     * blocked cycle counted, a retry that cannot succeed), so it
     * sleeps until the next local completion — or, with none in
     * flight, until a response delivery re-arms it. While unblocked
     * it sleeps until its pre-drawn next miss cycle or the next local
     * completion, whichever is sooner: the per-cycle Bernoulli miss
     * draws the legacy loop makes are consumed eagerly (see
     * advanceNextMiss), so the RNG stream is bit-identical whether or
     * not the intermediate no-op ticks actually run.
     */
    Cycle nextWake(Cycle now) const override;

    /** Credit blockedCycles for ticks skipped while asleep. */
    void syncSkipped(Cycle now) override;

    /** Also record remote latencies into @a histogram (optional). */
    void
    setHistogram(Histogram *histogram) override
    {
        histogram_ = histogram;
    }

    NodeId pm() const { return pm_; }
    int outstanding() const override { return outstanding_; }
    bool blocked() const override { return stalled_; }

    /** Arm the timeout/reissue engine (see the file comment). */
    void setRetryPolicy(const RetryPolicy *policy,
                        RetryCounters *counters) override;

    /** Remote transactions currently in the retry table (tests). */
    std::size_t pendingRetries() const { return txns_.size(); }

    /** Checkpoint hooks: RNG stream, generator cursor, stall state,
     *  local completion queue, and the retry table. */
    void saveState(CkptWriter &w) const override;
    void loadState(CkptReader &r) override;

    /** Warm-start fork: fresh (seed, pm) stream, fresh miss draw. */
    void reseed(std::uint64_t seed, Cycle now) override;

  private:
    struct PendingMiss
    {
        NodeId target;
        bool isRead;
    };

    /**
     * One remote transaction tracked by the retry engine. `ids`
     * holds every request id issued for it — original first — since
     * any of them may still draw the matching response.
     */
    struct RemoteTxn
    {
        NodeId target;
        bool isRead;
        std::uint32_t retries = 0;
        Cycle issueCycle;         //!< original issue (latency base)
        Cycle deadline;           //!< reissue/abandon at this cycle
        std::vector<PacketId> ids;
    };

    /** Try to issue @a miss; true on success. */
    bool tryIssue(const PendingMiss &miss, Cycle now);

    /** Reissue or abandon every transaction past its deadline. */
    void processTimeouts(Cycle now);

    /** Earliest retry deadline, or neverWake with none pending. */
    Cycle nextDeadline() const;

    /**
     * Pre-draw the Bernoulli(C) miss sequence starting at cycle
     * @a from: consumes exactly the failure draws the legacy
     * tick-every-cycle loop would make for cycles [from, nextMissAt_)
     * plus the success at nextMissAt_. With C <= 0 no draw ever
     * succeeds (and no dependent draws follow), so the stream
     * position is unobservable and none are consumed.
     */
    void advanceNextMiss(Cycle from);

    NodeId pm_;
    std::vector<NodeId> targets_;
    WorkloadConfig cfg_;
    PacketFactory &factory_;
    Network &network_;
    BatchMeans &latency_;
    WorkloadCounters &counters_;
    Histogram *histogram_ = nullptr;
    Rng rng_;

    int outstanding_ = 0;
    bool stalled_ = false;
    PendingMiss stalledMiss_{invalidNode, true};
    /** Cycle of the last tick() (neverWake until the first one). */
    Cycle lastTick_ = neverWake;
    /** Pre-drawn cycle of the next miss (stale while stalled). */
    Cycle nextMissAt_ = 0;

    /** Completion times of in-flight local accesses (sorted). */
    RingDeque<Cycle> localDue_;

    // Retry engine (active only under a fault plan; see the file
    // comment). retry_ == nullptr is the fast, byte-identical case.
    const RetryPolicy *retry_ = nullptr;
    RetryCounters *retryCounters_ = nullptr;
    /** Live remote transactions, at most outstandingT of them. */
    std::vector<RemoteTxn> txns_;
};

} // namespace hrsim

#endif // HRSIM_WORKLOAD_PROCESSOR_HH
