#include "workload/memory.hh"

#include <algorithm>

#include "ckpt/state_io.hh"
#include "common/log.hh"

namespace hrsim
{

void
MemoryModule::onRequest(const Packet &pkt, Cycle now)
{
    HRSIM_ASSERT(isRequest(pkt.type));
    HRSIM_ASSERT(pkt.dst == pm_);
    Cycle ready;
    if (serialized_) {
        // Single-banked memory: one access at a time, FIFO.
        const Cycle start = std::max(now, busyUntil_);
        ready = start + latency_;
        busyUntil_ = ready;
    } else {
        ready = now + latency_;
    }
    pending_.push_back({ready, factory_.makeResponse(pkt)});
}

void
MemoryModule::tick(Cycle now)
{
    while (!pending_.empty() && pending_.front().ready <= now) {
        const Packet &resp = pending_.front().response;
        if (!network_.canInject(pm_, resp))
            break; // response queue full: retry next cycle, in order
        network_.inject(pm_, resp);
        pending_.pop_front();
    }
}

void
MemoryModule::saveState(CkptWriter &w) const
{
    w.u64(busyUntil_);
    saveFifo(w, pending_,
             [](CkptWriter &out, const PendingResponse &resp) {
                 out.u64(resp.ready);
                 savePacket(out, resp.response);
             });
}

void
MemoryModule::loadState(CkptReader &r)
{
    busyUntil_ = r.u64();
    pending_.clear();
    const std::uint32_t count = r.u32();
    pending_.reserve(std::max<std::size_t>(count, 1));
    for (std::uint32_t i = 0; i < count; ++i) {
        PendingResponse resp;
        resp.ready = r.u64();
        resp.response = loadPacket(r);
        pending_.push_back(resp);
    }
}

} // namespace hrsim
