#include "workload/memory.hh"

#include <algorithm>

#include "common/log.hh"

namespace hrsim
{

void
MemoryModule::onRequest(const Packet &pkt, Cycle now)
{
    HRSIM_ASSERT(isRequest(pkt.type));
    HRSIM_ASSERT(pkt.dst == pm_);
    Cycle ready;
    if (serialized_) {
        // Single-banked memory: one access at a time, FIFO.
        const Cycle start = std::max(now, busyUntil_);
        ready = start + latency_;
        busyUntil_ = ready;
    } else {
        ready = now + latency_;
    }
    pending_.push_back({ready, factory_.makeResponse(pkt)});
}

void
MemoryModule::tick(Cycle now)
{
    while (!pending_.empty() && pending_.front().ready <= now) {
        const Packet &resp = pending_.front().response;
        if (!network_.canInject(pm_, resp))
            break; // response queue full: retry next cycle, in order
        network_.inject(pm_, resp);
        pending_.pop_front();
    }
}

} // namespace hrsim
