#include "workload/region.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/log.hh"

namespace hrsim
{

int
regionRemoteCount(int num_processors, double locality_r)
{
    if (num_processors < 1)
        fatal("regionRemoteCount: need at least one processor");
    if (locality_r <= 0.0 || locality_r > 1.0)
        fatal("regionRemoteCount: R must be in (0, 1]");
    const double exact = locality_r * static_cast<double>(num_processors - 1);
    int remote = static_cast<int>(std::llround(exact));
    remote = std::clamp(remote, 0, num_processors - 1);
    return remote;
}

std::vector<NodeId>
ringRegion(NodeId pm, int num_processors, double locality_r, bool wrap)
{
    HRSIM_ASSERT(pm >= 0 && pm < num_processors);
    const int remote = regionRemoteCount(num_processors, locality_r);
    // Split the block across the two sides; the extra PM of an odd
    // count goes to the downstream side.
    const int left = remote / 2;
    const int right = remote - left;

    std::vector<NodeId> region;
    region.reserve(static_cast<std::size_t>(remote) + 1);
    region.push_back(pm);
    if (wrap) {
        for (int step = 1; step <= left; ++step) {
            region.push_back(static_cast<NodeId>(
                (pm - step + num_processors) % num_processors));
        }
        for (int step = 1; step <= right; ++step)
            region.push_back(static_cast<NodeId>((pm + step) %
                                                 num_processors));
    } else {
        // Clipped: slide the window inward at the ends so the region
        // keeps its size but stays on the line.
        int lo = pm - left;
        int hi = pm + right; // inclusive
        if (lo < 0) {
            hi = std::min(hi - lo, num_processors - 1);
            lo = 0;
        }
        if (hi > num_processors - 1) {
            lo = std::max(0, lo - (hi - (num_processors - 1)));
            hi = num_processors - 1;
        }
        for (int id = lo; id <= hi; ++id) {
            if (id != pm)
                region.push_back(static_cast<NodeId>(id));
        }
    }
    // Remove accidental duplicates (possible when remote == P-1 and
    // the wrap closes on itself).
    std::sort(region.begin() + 1, region.end());
    region.erase(std::unique(region.begin() + 1, region.end()),
                 region.end());
    return region;
}

std::vector<NodeId>
meshRegion(NodeId pm, int width, double locality_r)
{
    const int num_processors = width * width;
    HRSIM_ASSERT(pm >= 0 && pm < num_processors);
    const int remote = regionRemoteCount(num_processors, locality_r);

    const int my_x = pm % width;
    const int my_y = pm / width;

    std::vector<NodeId> others;
    others.reserve(static_cast<std::size_t>(num_processors) - 1);
    for (NodeId id = 0; id < num_processors; ++id) {
        if (id != pm)
            others.push_back(id);
    }
    std::stable_sort(others.begin(), others.end(),
        [&](NodeId a, NodeId b) {
            const int da = std::abs(a % width - my_x) +
                           std::abs(a / width - my_y);
            const int db = std::abs(b % width - my_x) +
                           std::abs(b / width - my_y);
            if (da != db)
                return da < db;
            return a < b;
        });

    std::vector<NodeId> region;
    region.reserve(static_cast<std::size_t>(remote) + 1);
    region.push_back(pm);
    region.insert(region.end(), others.begin(), others.begin() + remote);
    return region;
}

} // namespace hrsim
