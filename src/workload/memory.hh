/**
 * @file
 * Memory module of a processing module.
 *
 * Each PM owns a slice of the flat global address space. The memory
 * serves requests with a fixed service time, either one at a time
 * (the default: a single-banked memory, matching the Hector stations
 * the paper's simulator was validated against) or fully pipelined.
 * Completed responses are injected into the NIC's output response
 * queue in FIFO order; when the queue is full they wait in the
 * completion queue (bounded in practice by P * T outstanding
 * transactions system-wide).
 */

#ifndef HRSIM_WORKLOAD_MEMORY_HH
#define HRSIM_WORKLOAD_MEMORY_HH

#include "common/log.hh"
#include "common/ring_deque.hh"
#include "common/types.hh"
#include "proto/packet.hh"
#include "proto/packet_factory.hh"
#include "sim/network.hh"

namespace hrsim
{

class CkptWriter;
class CkptReader;

class MemoryModule
{
  public:
    MemoryModule(NodeId pm, std::uint32_t latency,
                 PacketFactory &factory, Network &network,
                 bool serialized = true)
        : pm_(pm), latency_(latency), serialized_(serialized),
          factory_(factory), network_(network)
    {}

    /** Accept a request packet delivered by the network at @a now. */
    void onRequest(const Packet &pkt, Cycle now);

    /** Inject responses whose service completed by @a now. */
    void tick(Cycle now);

    NodeId pm() const { return pm_; }

    /** Responses accepted but not yet injected. */
    std::size_t pendingResponses() const { return pending_.size(); }

    /**
     * Cycle the oldest pending response becomes injectable. Only
     * valid while pendingResponses() != 0. The front is minimal:
     * ready times are monotone in arrival order both serialized
     * (FIFO service) and pipelined (fixed latency).
     */
    Cycle
    nextReady() const
    {
        HRSIM_ASSERT(!pending_.empty());
        return pending_.front().ready;
    }

    /** Checkpoint hooks: completion queue and the serialization
     *  cursor (ckpt/codec.hh). */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    struct PendingResponse
    {
        Cycle ready;
        Packet response;
    };

    NodeId pm_;
    std::uint32_t latency_;
    bool serialized_;
    PacketFactory &factory_;
    Network &network_;
    RingDeque<PendingResponse> pending_;
    /** When serialized: cycle the module next becomes free. */
    Cycle busyUntil_ = 0;
};

} // namespace hrsim

#endif // HRSIM_WORKLOAD_MEMORY_HH
