/**
 * @file
 * Interface of a per-PM traffic source.
 *
 * The synthetic M-MRP Processor and the trace-replay TraceProcessor
 * both implement this; the System drives whichever the configuration
 * selects.
 */

#ifndef HRSIM_WORKLOAD_TRAFFIC_SOURCE_HH
#define HRSIM_WORKLOAD_TRAFFIC_SOURCE_HH

#include "common/types.hh"
#include "proto/packet.hh"
#include "stats/histogram.hh"

namespace hrsim
{

class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Advance one cycle: generate and issue work. */
    virtual void tick(Cycle now) = 0;

    /** A response packet arrived for this PM. */
    virtual void onResponse(const Packet &pkt, Cycle now) = 0;

    /** Transactions currently outstanding. */
    virtual int outstanding() const = 0;

    /** Is the source blocked from issuing? */
    virtual bool blocked() const = 0;

    /** Also record remote latencies into @a histogram (optional). */
    virtual void setHistogram(Histogram *histogram) = 0;
};

} // namespace hrsim

#endif // HRSIM_WORKLOAD_TRAFFIC_SOURCE_HH
