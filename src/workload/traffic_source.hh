/**
 * @file
 * Interface of a per-PM traffic source.
 *
 * The synthetic M-MRP Processor and the trace-replay TraceProcessor
 * both implement this; the System drives whichever the configuration
 * selects.
 */

#ifndef HRSIM_WORKLOAD_TRAFFIC_SOURCE_HH
#define HRSIM_WORKLOAD_TRAFFIC_SOURCE_HH

#include "ckpt/checkpointable.hh"
#include "common/types.hh"
#include "proto/packet.hh"
#include "stats/histogram.hh"

namespace hrsim
{

struct RetryPolicy;
struct RetryCounters;

class TrafficSource : public Checkpointable
{
  public:
    /** Wake sentinel: the source needs no tick until an external
     *  event (a response delivery) re-arms it. */
    static constexpr Cycle neverWake = ~Cycle{0};

    virtual ~TrafficSource() = default;

    /** Advance one cycle: generate and issue work. */
    virtual void tick(Cycle now) = 0;

    /** A response packet arrived for this PM. */
    virtual void onResponse(const Packet &pkt, Cycle now) = 0;

    /** Transactions currently outstanding. */
    virtual int outstanding() const = 0;

    /** Is the source blocked from issuing? */
    virtual bool blocked() const = 0;

    /**
     * Earliest cycle this source next needs a tick, queried right
     * after tick(@a now). The driver promises to tick the source at
     * (or before, if a response delivery re-arms it earlier) the
     * returned cycle. The default — every cycle — is always safe;
     * sources return a later cycle (or neverWake) only when the
     * skipped ticks are provably free of side effects beyond what
     * syncSkipped() reconstructs.
     */
    virtual Cycle
    nextWake(Cycle now) const
    {
        return now + 1;
    }

    /**
     * Account for ticks skipped in (lastTick, @a now) under the
     * nextWake() contract; called before a wake-up tick and at end of
     * run so counters match an every-cycle (skip-free) simulation
     * exactly. Default: nothing to reconstruct.
     */
    virtual void syncSkipped(Cycle now) { (void)now; }

    /** Also record remote latencies into @a histogram (optional). */
    virtual void setHistogram(Histogram *histogram) = 0;

    /**
     * Arm the graceful-degradation retry engine (fault runs only):
     * unanswered remote requests are reissued after
     * policy->timeoutCycles and abandoned — the outstanding slot
     * freed — after policy->maxRetries reissues. Both pointers must
     * outlive the source. The default is a no-op: trace replay has no
     * generator to re-drive, so TraceProcessor transactions lost to a
     * fault simply stay outstanding (and trip the watchdog, which is
     * the right diagnostic for a replayed workload).
     */
    virtual void
    setRetryPolicy(const RetryPolicy *policy, RetryCounters *counters)
    {
        (void)policy;
        (void)counters;
    }

    /**
     * Warm-start forking: replace this source's random stream with
     * one derived from (@a seed, this PM) as of cycle @a now, so a
     * restored checkpoint can fan out into statistically independent
     * measurement replicas. Deterministic sources (trace replay) have
     * no stream and ignore it.
     */
    virtual void reseed(std::uint64_t seed, Cycle now)
    {
        (void)seed;
        (void)now;
    }
};

} // namespace hrsim

#endif // HRSIM_WORKLOAD_TRAFFIC_SOURCE_HH
