/**
 * @file
 * Trace-driven workload: record format, file I/O, synthesis, and a
 * TrafficSource that replays a trace.
 *
 * The paper drives its simulator with the synthetic M-MRP generator;
 * a production library also needs deterministic replay of recorded
 * reference streams (for cross-simulator validation and regression
 * pinning). The trace format is line-oriented text:
 *
 *     # comment
 *     <cycle> <pm> <target> R|W
 *
 * sorted by cycle (enforced on load). Replay honours the same
 * outstanding-transaction limit T as the synthetic generator: a
 * record whose time has come waits until a slot and the NIC output
 * queue are available, so a trace can also be replayed onto a slower
 * network than it was recorded on.
 *
 * Not to be confused with the flit-event tracer (obs/flit_trace.hh,
 * `hrsim_cli --trace-flits`): this module feeds memory references
 * *into* a simulation, the tracer logs flit movements *out* of one.
 */

#ifndef HRSIM_WORKLOAD_TRACE_HH
#define HRSIM_WORKLOAD_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/ring_deque.hh"
#include "common/types.hh"
#include "proto/packet_factory.hh"
#include "sim/network.hh"
#include "stats/batch_means.hh"
#include "workload/processor.hh"
#include "workload/traffic_source.hh"

namespace hrsim
{

/** One memory reference of a trace. */
struct TraceRecord
{
    Cycle cycle = 0;
    NodeId pm = 0;
    NodeId target = 0;
    bool isRead = true;

    bool
    operator==(const TraceRecord &other) const
    {
        return cycle == other.cycle && pm == other.pm &&
               target == other.target && isRead == other.isRead;
    }
};

/** An immutable, time-sorted reference trace. */
class Trace
{
  public:
    Trace() = default;

    /** Build from records; sorts by cycle (stably). */
    explicit Trace(std::vector<TraceRecord> records);

    /** Parse the text format; throws ConfigError on bad input. */
    static Trace load(std::istream &in);

    /** Write the text format. */
    void save(std::ostream &out) const;

    /**
     * Generate an M-MRP-like trace: every processor issues misses at
     * rate @a miss_rate to uniform targets among @a num_processors,
     * with P(read) = @a read_fraction, for @a cycles cycles.
     */
    static Trace synthesizeUniform(int num_processors, Cycle cycles,
                                   double miss_rate,
                                   double read_fraction,
                                   std::uint64_t seed);

    const std::vector<TraceRecord> &records() const
    {
        return records_;
    }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /** Records belonging to one PM, in time order. */
    std::vector<TraceRecord> forPm(NodeId pm) const;

    /** Largest PM or target id referenced, or -1 when empty. */
    NodeId maxNode() const;

  private:
    std::vector<TraceRecord> records_;
};

/**
 * Replays one PM's slice of a trace, honouring the outstanding limit
 * T and network back-pressure; remote completions feed the same
 * latency statistics as the synthetic Processor.
 */
class TraceProcessor : public TrafficSource
{
  public:
    TraceProcessor(NodeId pm, std::vector<TraceRecord> records,
                   int outstanding_limit,
                   std::uint32_t memory_latency,
                   PacketFactory &factory, Network &network,
                   BatchMeans &latency, WorkloadCounters &counters);

    void tick(Cycle now) override;
    void onResponse(const Packet &pkt, Cycle now) override;
    int outstanding() const override { return outstanding_; }
    bool blocked() const override;

    /**
     * Skip-idle contract: with no NIC back-pressure the replay is
     * event-driven — nothing happens before the next local
     * completion or the next record's due cycle (or a response
     * delivery, which re-arms via the delivery path).
     */
    Cycle nextWake(Cycle now) const override;

    /** Credit blockedCycles for ticks skipped while asleep. */
    void syncSkipped(Cycle now) override;

    void setHistogram(Histogram *histogram) override
    {
        histogram_ = histogram;
    }

    /** Trace references not yet issued. */
    std::size_t remaining() const { return queue_.size(); }

    /**
     * Checkpoint hooks. The replay queue only ever shrinks from the
     * front, so the snapshot stores the remaining record count and
     * the load pops the freshly-rebuilt queue down to it.
     */
    void saveState(CkptWriter &w) const override;
    void loadState(CkptReader &r) override;

  private:
    NodeId pm_;
    RingDeque<TraceRecord> queue_;
    int limit_;
    std::uint32_t memoryLatency_;
    PacketFactory &factory_;
    Network &network_;
    BatchMeans &latency_;
    WorkloadCounters &counters_;
    Histogram *histogram_ = nullptr;

    int outstanding_ = 0;
    RingDeque<Cycle> localDue_;
    /** NIC back-pressure seen this tick: must retry next cycle. */
    bool netBlocked_ = false;
    /** blocked() snapshot at end of tick, for syncSkipped credit. */
    bool sleepBlocked_ = false;
    /** Cycle of the last tick() (neverWake until the first one). */
    Cycle lastTick_ = neverWake;
};

} // namespace hrsim

#endif // HRSIM_WORKLOAD_TRACE_HH
