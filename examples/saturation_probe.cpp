/**
 * @file
 * Saturation probe: drive one topology with an increasing offered
 * load (cache-miss rate C) and locate the saturation knee — where
 * latency exceeds twice its low-load value. Demonstrates using the
 * library for capacity planning rather than fixed-workload replay.
 *
 * Usage: saturation_probe [ring_topology] [cache_line_bytes]
 * Defaults: "3:3:6", 64 B lines.
 */

#include <cstdio>
#include <string>

#include "core/system.hh"

int
main(int argc, char **argv)
{
    using namespace hrsim;

    const std::string topo = argc > 1 ? argv[1] : "3:3:6";
    const int line = argc > 2 ? std::atoi(argv[2]) : 64;

    std::printf("saturation probe: ring %s, %dB lines, R=1.0, T=4\n\n",
                topo.c_str(), line);
    std::printf("%-10s %14s %14s %14s\n", "miss rate", "latency(cyc)",
                "global util", "thpt/PM");

    double base_latency = 0.0;
    double knee = 0.0;
    for (const double c :
         {0.005, 0.01, 0.02, 0.03, 0.04, 0.06, 0.08, 0.12}) {
        SystemConfig cfg = SystemConfig::ring(
            topo, static_cast<std::uint32_t>(line));
        cfg.workload.missRateC = c;
        cfg.workload.outstandingT = 4;
        const RunResult result = runSystem(cfg);
        if (base_latency == 0.0)
            base_latency = result.avgLatency;
        if (knee == 0.0 && result.avgLatency > 2.0 * base_latency)
            knee = c;
        std::printf("%-10.3f %14.1f %13.1f%% %14.4f\n", c,
                    result.avgLatency,
                    100.0 * result.ringLevelUtilization[0],
                    result.throughputPerPm);
    }

    if (knee > 0.0) {
        std::printf("\nsaturation knee (latency > 2x low-load): "
                    "C ~ %.3f\n", knee);
    } else {
        std::printf("\nno saturation knee up to C = 0.12\n");
    }
    return 0;
}
