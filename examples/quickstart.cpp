/**
 * @file
 * Quickstart: build a 24-processor hierarchical ring (topology 2:3:4)
 * and the nearest square mesh (5x5 = 25 PMs), run the same workload
 * on both, and print latency and utilization.
 */

#include <cstdio>

#include "core/system.hh"

int
main()
{
    using namespace hrsim;

    // A 3-level ring: 1 global ring, 2 intermediate rings, 3 local
    // rings each, 4 PMs per local ring -> 24 processors.
    SystemConfig ring = SystemConfig::ring("2:3:4", 128);
    ring.workload.localityR = 1.0; // no locality
    ring.workload.outstandingT = 4;

    // The nearest square mesh with 4-flit router buffers.
    SystemConfig mesh = SystemConfig::mesh(5, 128, 4);
    mesh.workload = ring.workload;

    std::printf("running 24-PM hierarchical ring (2:3:4)...\n");
    const RunResult ring_result = runSystem(ring);
    std::printf("running 25-PM mesh (5x5, 4-flit buffers)...\n");
    const RunResult mesh_result = runSystem(mesh);

    std::printf("\n%-28s %12s %12s %10s\n", "system",
                "latency(cyc)", "+/-95%", "net util");
    std::printf("%-28s %12.1f %12.1f %9.1f%%\n",
                "ring 2:3:4, 128B lines", ring_result.avgLatency,
                ring_result.latencyCI95,
                100.0 * ring_result.networkUtilization);
    std::printf("%-28s %12.1f %12.1f %9.1f%%\n",
                "mesh 5x5, 128B lines", mesh_result.avgLatency,
                mesh_result.latencyCI95,
                100.0 * mesh_result.networkUtilization);

    std::printf("\nring per-level utilization (level 0 = global):\n");
    for (std::size_t level = 0;
         level < ring_result.ringLevelUtilization.size(); ++level) {
        std::printf("  level %zu: %.1f%%\n", level,
                    100.0 * ring_result.ringLevelUtilization[level]);
    }
    return 0;
}
