/**
 * @file
 * Topology explorer: enumerate every hierarchical ring topology for a
 * processor budget, simulate them all, and print the ranking — the
 * machinery behind the paper's Table 2, as a runnable example.
 *
 * Usage: topology_explorer [processors] [cache_line_bytes]
 * Defaults: 24 processors, 64 B lines.
 */

#include <cstdio>
#include <cstdlib>

#include "core/analysis.hh"
#include "core/topology_search.hh"

int
main(int argc, char **argv)
{
    using namespace hrsim;

    const int processors = argc > 1 ? std::atoi(argv[1]) : 24;
    const int line = argc > 2 ? std::atoi(argv[2]) : 64;
    if (processors < 2 || line < 16) {
        std::fprintf(stderr,
                     "usage: %s [processors>=2] [line_bytes>=16]\n",
                     argv[0]);
        return 1;
    }

    SystemConfig base;
    base.cacheLineBytes = static_cast<std::uint32_t>(line);
    base.workload.localityR = 1.0;
    base.workload.outstandingT = 4;
    base.sim.warmupCycles = 3000;
    base.sim.batchCycles = 3000;
    base.sim.numBatches = 4;

    std::printf("ranking ring hierarchies for %d processors, %dB "
                "lines (R=1.0, C=0.04, T=4)...\n\n",
                processors, line);

    const auto ranked = rankHierarchies(processors, base);
    std::printf("%-4s %-12s %12s %14s\n", "#", "topology",
                "latency(cyc)", "global util");
    int rank = 1;
    for (const TopologyCandidate &candidate : ranked) {
        std::printf("%-4d %-12s %12.1f %13.1f%%\n", rank++,
                    candidate.topology.c_str(), candidate.latency,
                    100.0 * candidate.utilizationGlobal);
    }

    const auto paper = paperTable2Topology(processors, line);
    if (paper) {
        std::printf("\npaper's Table 2 entry for this cell: %s\n",
                    paper->c_str());
    }
    return 0;
}
