/**
 * @file
 * Trace replay: generate one reference stream and replay the
 * identical stream on a hierarchical ring and on a mesh — the
 * strictest apples-to-apples comparison the library offers (both
 * networks see exactly the same accesses at the same times).
 *
 * Usage: trace_compare [processors=36] [cache_line_bytes=64]
 */

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <string>

#include "core/analysis.hh"
#include "core/system.hh"
#include "workload/trace.hh"

int
main(int argc, char **argv)
{
    using namespace hrsim;

    const int pms = argc > 1 ? std::atoi(argv[1]) : 36;
    const auto line =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 64u;
    const int width = static_cast<int>(std::lround(std::sqrt(pms)));
    if (width * width != pms) {
        std::fprintf(stderr,
                     "processors must be a perfect square (for the "
                     "mesh side); got %d\n", pms);
        return 1;
    }
    const auto ring_topo = paperTable2Topology(pms, static_cast<int>(line));
    if (!ring_topo) {
        std::fprintf(stderr,
                     "no Table 2 ring topology for %d PMs; try one "
                     "of 4/36 (squares in the table)\n", pms);
        return 1;
    }

    std::printf("synthesizing a uniform reference trace for %d PMs "
                "(C=0.04, 70%% reads, 20k cycles)...\n", pms);
    const Trace trace =
        Trace::synthesizeUniform(pms, 20000, 0.04, 0.7, 4242);
    std::printf("  %zu references\n\n", trace.size());

    SystemConfig ring = SystemConfig::ring(*ring_topo, line);
    ring.trace = &trace;
    ring.workload.outstandingT = 4;

    SystemConfig mesh = SystemConfig::mesh(width, line, 4);
    mesh.trace = &trace;
    mesh.workload.outstandingT = 4;

    std::printf("replaying on ring %s ...\n", ring_topo->c_str());
    const RunResult ring_result = runSystem(ring);
    std::printf("replaying on mesh %dx%d ...\n\n", width, width);
    const RunResult mesh_result = runSystem(mesh);

    std::printf("%-22s %10s %10s %10s %10s\n", "system", "avg",
                "p50", "p95", "p99");
    std::printf("%-22s %10.1f %10.0f %10.0f %10.0f\n",
                ("ring " + *ring_topo).c_str(), ring_result.avgLatency,
                ring_result.latencyP50, ring_result.latencyP95,
                ring_result.latencyP99);
    std::printf("%-22s %10.1f %10.0f %10.0f %10.0f\n",
                ("mesh " + std::to_string(width) + "x" +
                 std::to_string(width)).c_str(),
                mesh_result.avgLatency, mesh_result.latencyP50,
                mesh_result.latencyP95, mesh_result.latencyP99);
    std::printf("\nidentical references, %s wins by %.1f%%\n",
                ring_result.avgLatency < mesh_result.avgLatency
                    ? "the ring" : "the mesh",
                100.0 *
                    std::abs(mesh_result.avgLatency -
                             ring_result.avgLatency) /
                    std::max(mesh_result.avgLatency,
                             ring_result.avgLatency));
    return 0;
}
