/**
 * @file
 * Broadcast demo: the paper's motivation (v) in action. One PM sends
 * an invalidation to every other PM — natively on a slotted
 * hierarchical ring (the cell visits every ring once) and as P-1
 * unicasts on a mesh — and we watch the completion times diverge.
 *
 * Usage: broadcast_demo [ring_topology=2:3:6]
 */

#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "mesh/mesh_network.hh"
#include "proto/packet_factory.hh"
#include "ring/slotted_network.hh"

int
main(int argc, char **argv)
{
    using namespace hrsim;

    const std::string topo = argc > 1 ? argv[1] : "2:3:6";

    SlottedRingNetwork::Params params;
    params.topo = RingTopology::parse(topo);
    params.cacheLineBytes = 64;
    SlottedRingNetwork ring(params);
    const int pms = ring.numProcessors();

    std::set<NodeId> heard;
    Cycle last = 0;
    ring.setDeliveryHandler([&](const Packet &pkt, Cycle now) {
        heard.insert(pkt.dst);
        last = now;
        std::printf("  cycle %4llu: PM %d received the broadcast\n",
                    static_cast<unsigned long long>(now), pkt.dst);
    });

    std::printf("ring %s (%d PMs): PM 0 broadcasts one "
                "invalidation cell\n", topo.c_str(), pms);
    Packet pkt;
    pkt.id = 1;
    pkt.type = PacketType::WriteRequest;
    pkt.src = 0;
    pkt.dst = broadcastNode;
    pkt.sizeFlits = 1;
    ring.inject(0, pkt);
    Cycle now = 0;
    while (static_cast<int>(heard.size()) < pms - 1 && now < 10000)
        ring.tick(now++);
    std::printf("ring broadcast complete at cycle %llu\n\n",
                static_cast<unsigned long long>(last));

    // The mesh alternative: a storm of unicasts.
    const int width = static_cast<int>(std::lround(std::sqrt(pms)));
    MeshNetwork mesh(MeshNetwork::Params{width, 64, 4});
    PacketFactory factory(ChannelSpec::mesh(), 64);
    std::set<NodeId> mesh_heard;
    Cycle mesh_last = 0;
    mesh.setDeliveryHandler([&](const Packet &p, Cycle when) {
        mesh_heard.insert(p.dst);
        mesh_last = when;
    });
    const int mesh_pms = width * width;
    std::printf("mesh %dx%d (%d PMs): PM 0 sends %d unicasts "
                "instead...\n", width, width, mesh_pms, mesh_pms - 1);
    NodeId next = 1;
    now = 0;
    while (static_cast<int>(mesh_heard.size()) < mesh_pms - 1 &&
           now < 100000) {
        while (next < mesh_pms) {
            const Packet uni = factory.makeRequest(0, next, true, now);
            if (!mesh.canInject(0, uni))
                break;
            mesh.inject(0, uni);
            ++next;
        }
        mesh.tick(now++);
    }
    std::printf("mesh unicast storm complete at cycle %llu\n\n",
                static_cast<unsigned long long>(mesh_last));

    std::printf("ring advantage: %.1fx faster to reach everyone\n",
                static_cast<double>(mesh_last) /
                    static_cast<double>(last));
    return 0;
}
