/**
 * @file
 * Locality study: sweep the M-MRP locality parameter R for a fixed
 * ring/mesh pair and report the ring's advantage — the Section 5.2
 * story of the paper, as a runnable example.
 *
 * The paper's headline: with moderate locality (R <= 0.3), rings
 * outperform meshes by 20-40% at sizes up to ~121 processors, and
 * the gap is larger at R = 0.2 than at R = 0.1 (at R = 0.1 most mesh
 * targets are direct neighbors).
 */

#include <cstdio>
#include <initializer_list>

#include "core/system.hh"

int
main()
{
    using namespace hrsim;

    // A 36-processor ring (Table 2 topology for 64 B lines) against
    // the same-size square mesh — the size band where the paper's
    // locality story plays out most clearly.
    const std::uint32_t line = 64;

    std::printf("36-PM ring (2:3:6) vs 36-PM mesh (6x6, 4-flit "
                "buffers), 64B lines, T=4, C=0.04\n\n");
    std::printf("%-8s %14s %14s %12s\n", "R", "ring(cyc)",
                "mesh(cyc)", "ring adv.");

    for (const double r : {0.05, 0.1, 0.2, 0.3, 0.5, 1.0}) {
        SystemConfig ring = SystemConfig::ring("2:3:6", line);
        ring.workload.localityR = r;
        ring.workload.outstandingT = 4;

        SystemConfig mesh = SystemConfig::mesh(6, line, 4);
        mesh.workload = ring.workload;

        const double ring_lat = runSystem(ring).avgLatency;
        const double mesh_lat = runSystem(mesh).avgLatency;
        const double advantage =
            100.0 * (mesh_lat - ring_lat) / mesh_lat;
        std::printf("%-8.2f %14.1f %14.1f %+11.1f%%\n", r, ring_lat,
                    mesh_lat, advantage);
    }

    std::printf("\nPositive advantage: the hierarchical ring is "
                "faster. Expect a strong ring win at R <= 0.2 and a "
                "mesh win with no locality (R = 1.0); the paper keeps "
                "rings ahead through R = 0.3 (see the deviation notes "
                "in EXPERIMENTS.md).\n");
    return 0;
}
