#!/usr/bin/env bash
# Run the simulator-throughput benchmark and emit BENCH_simspeed.json
# (google-benchmark JSON: node-cycles/s per config, fast vs legacy
# tick loops, and sweep-engine points/s) so the performance trajectory
# is tracked across PRs. Also emits a metrics artifact with hrsim_cli
# and validates it against scripts/metrics_schema.json, so a schema
# regression fails the same CI step that tracks performance.
#
# Usage: scripts/run_simspeed.sh [output.json] [metrics.json]
#   BUILD_DIR=build   build tree containing bench/bench_simspeed
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_simspeed.json}
METRICS_OUT=${2:-BENCH_simspeed_metrics.json}
BENCH="$BUILD_DIR/bench/bench_simspeed"
CLI="$BUILD_DIR/tools/hrsim_cli"
CHECK="$BUILD_DIR/tools/metrics_check"
SCHEMA="$(dirname "$0")/metrics_schema.json"

if [[ ! -x "$BENCH" ]]; then
    echo "error: $BENCH not built (cmake -B $BUILD_DIR -S . && \
cmake --build $BUILD_DIR -j)" >&2
    exit 1
fi

"$BENCH" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_repetitions="${HRSIM_BENCH_REPS:-1}" \
    --benchmark_min_time="${HRSIM_BENCH_MIN_TIME:-0.5}"

echo "wrote $OUT"

if [[ -x "$CLI" && -x "$CHECK" ]]; then
    "$CLI" --ring 3:3:12 --warmup 1000 --batch 1000 --batches 3 \
        --metrics-out "$METRICS_OUT" >/dev/null
    "$CHECK" "$SCHEMA" "$METRICS_OUT"
    echo "wrote $METRICS_OUT (schema-valid)"
else
    echo "warning: hrsim_cli/metrics_check not built; skipping the \
metrics schema check" >&2
fi
