#!/usr/bin/env bash
# Run the simulator-throughput benchmark and emit BENCH_simspeed.json
# (google-benchmark JSON: node-cycles/s per config, fast vs legacy
# tick loops, and sweep-engine points/s) so the performance trajectory
# is tracked across PRs. Also emits a metrics artifact with hrsim_cli
# and validates it against scripts/metrics_schema.json, so a schema
# regression fails the same CI step that tracks performance.
#
# Usage: scripts/run_simspeed.sh [output.json] [metrics.json]
#        scripts/run_simspeed.sh --compare BASELINE.json \
#            [output.json] [metrics.json]
#   BUILD_DIR=build   build tree containing bench/bench_simspeed
#
# --compare runs the benchmark (3 repetitions by default, so the
# regression gate sees a median, not one noisy sample), then prints
# the per-benchmark speedup of the fresh run against BASELINE.json
# (old/new rate columns). When the library was built Release, any
# benchmark whose median rate is more than 10% slower than the
# baseline fails the script (exit 1); non-Release builds only warn,
# since Debug timings say nothing about the hot path. Sequential
# comparisons against a days-old baseline confound code and machine
# drift — scripts/ab_bench.sh interleaves two live build trees and
# is the trustworthy way to call a regression.
#
# A benchmark harness built Debug silently distorts every timing, so
# a library_build_type of "debug" in the emitted JSON context fails
# the script outright; set HRSIM_ALLOW_DEBUG_BENCH=1 to override for
# local debugging.
#
# Overwriting a git-tracked baseline (the default BENCH_simspeed.json)
# is refused when the work tree has uncommitted changes, or when the
# benchmark binary reports a "-dirty" hrsim_git — a baseline nobody
# can reproduce from a commit is worse than none. Write to an
# untracked path for scratch runs, or set HRSIM_ALLOW_DIRTY_BASELINE=1
# to override.
set -euo pipefail

BASELINE=""
if [[ "${1:-}" == --compare ]]; then
    shift
    BASELINE=${1:?--compare needs a baseline json}
    shift
    if [[ ! -r "$BASELINE" ]]; then
        echo "error: baseline $BASELINE not readable" >&2
        exit 1
    fi
    # Snapshot now: the natural invocation compares against the very
    # file the fresh run is about to overwrite (BENCH_simspeed.json).
    BASELINE_SNAP=$(mktemp)
    cp "$BASELINE" "$BASELINE_SNAP"
fi

cleanup() {
    [[ -n "${BASELINE_SNAP:-}" ]] && rm -f "$BASELINE_SNAP"
    [[ -n "${TMP_OUT:-}" ]] && rm -f "$TMP_OUT"
    return 0
}
trap cleanup EXIT

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_simspeed.json}
METRICS_OUT=${2:-BENCH_simspeed_metrics.json}
BENCH="$BUILD_DIR/bench/bench_simspeed"
CLI="$BUILD_DIR/tools/hrsim_cli"
CHECK="$BUILD_DIR/tools/metrics_check"
SCHEMA="$(dirname "$0")/metrics_schema.json"

if [[ ! -x "$BENCH" ]]; then
    echo "error: $BENCH not built (cmake -B $BUILD_DIR -S . && \
cmake --build $BUILD_DIR -j)" >&2
    exit 1
fi

# Is OUT a git-tracked file (i.e. a committed baseline)? If so, only
# a clean tree may regenerate it.
REPO_ROOT=$(git -C "$(dirname "$0")/.." rev-parse --show-toplevel \
    2>/dev/null || true)
OUT_TRACKED=0
if [[ -n "$REPO_ROOT" ]]; then
    OUT_DIR=$(cd "$(dirname "$OUT")" 2>/dev/null && pwd || true)
    if [[ -n "$OUT_DIR" ]]; then
        OUT_ABS="$OUT_DIR/$(basename "$OUT")"
        OUT_REL=${OUT_ABS#"$REPO_ROOT"/}
        if git -C "$REPO_ROOT" ls-files --error-unmatch "$OUT_REL" \
            >/dev/null 2>&1; then
            OUT_TRACKED=1
        fi
    fi
fi
if [[ "$OUT_TRACKED" == 1 &&
      -z "${HRSIM_ALLOW_DIRTY_BASELINE:-}" ]] &&
    ! git -C "$REPO_ROOT" diff --quiet HEAD 2>/dev/null; then
    echo "error: refusing to overwrite committed baseline $OUT from \
a dirty tree; commit first, write to an untracked path, or set \
HRSIM_ALLOW_DIRTY_BASELINE=1" >&2
    exit 1
fi

# Comparisons gate on the median, which needs >= 3 repetitions to
# mean anything; plain tracking runs keep the cheap single rep.
if [[ -n "$BASELINE" ]]; then
    REPS=${HRSIM_BENCH_REPS:-3}
else
    REPS=${HRSIM_BENCH_REPS:-1}
fi

# The run lands in a temp file first: the artifact is validated
# before it replaces OUT, so a failing check can never leave a
# half-trusted baseline behind.
TMP_OUT=$(mktemp)
"$BENCH" \
    --benchmark_out="$TMP_OUT" \
    --benchmark_out_format=json \
    --benchmark_repetitions="$REPS" \
    --benchmark_min_time="${HRSIM_BENCH_MIN_TIME:-0.5}"

# A Debug benchmark harness invalidates every number in the artifact;
# fail loudly instead of letting the distorted rates into a baseline.
# Likewise a "-dirty" build provenance when OUT is a committed
# baseline: the binary may predate the pre-run clean-tree check (git
# state is baked in at configure time).
HRSIM_OUT_TRACKED="$OUT_TRACKED" python3 - "$TMP_OUT" <<'PY'
import json
import os
import sys

with open(sys.argv[1]) as fh:
    context = json.load(fh).get("context", {})
library_build = str(context.get("library_build_type", "")).lower()
if library_build == "debug":
    if os.environ.get("HRSIM_ALLOW_DEBUG_BENCH"):
        print("warning: benchmark library built debug; timings are "
              "not comparable (HRSIM_ALLOW_DEBUG_BENCH set)")
    else:
        sys.exit("error: benchmark library was built debug; rebuild "
                 "Release or set HRSIM_ALLOW_DEBUG_BENCH=1 to "
                 "proceed anyway")
git_describe = str(context.get("hrsim_git", ""))
if (os.environ.get("HRSIM_OUT_TRACKED") == "1"
        and "-dirty" in git_describe
        and not os.environ.get("HRSIM_ALLOW_DIRTY_BASELINE")):
    sys.exit(f"error: benchmark binary reports hrsim_git = "
             f"{git_describe}; refusing to install it as the "
             "committed baseline (reconfigure/rebuild from a clean "
             "tree, or set HRSIM_ALLOW_DIRTY_BASELINE=1)")
PY

mv "$TMP_OUT" "$OUT"
chmod 644 "$OUT"
TMP_OUT=""
echo "wrote $OUT"

if [[ -n "$BASELINE" ]]; then
    python3 - "$BASELINE_SNAP" "$OUT" "$BASELINE" <<'PY'
import json
import statistics
import sys

REGRESSION_TOLERANCE = 0.10  # >10% slower than baseline fails

def rates(path):
    """benchmark name -> median primary rate counter (node_cycles/s
    or points/s) across repetitions, skipping aggregate rows."""
    with open(path) as fh:
        doc = json.load(fh)
    samples = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        rate = row.get("node_cycles/s", row.get("points/s"))
        if rate is not None:
            samples.setdefault(row["name"], []).append(float(rate))
    return doc, {
        name: statistics.median(reps)
        for name, reps in samples.items()
    }

base_doc, base = rates(sys.argv[1])
new_doc, new = rates(sys.argv[2])

build_type = str(
    new_doc.get("context", {}).get("hrsim_build_type", "")).lower()
enforce = build_type == "release"

print(f"\ncomparison vs {sys.argv[3]} "
      f"(build_type={build_type or 'unknown'}):")
print("note: the baseline JSON was taken on an earlier run of this "
      "box —\nfrequency scaling, thermals and background load may "
      "have drifted\nsince, so sequential comparisons confound code "
      "and machine. For a\ntrustworthy verdict build both revisions "
      "and use the interleaved\nscripts/ab_bench.sh instead.")
print(f"{'benchmark':<24} {'baseline':>12} {'current':>12} "
      f"{'speedup':>8}")
regressions = []
for name in base:
    if name not in new:
        print(f"{name:<24} {base[name]:>12.4g} {'missing':>12}")
        continue
    ratio = new[name] / base[name] if base[name] > 0 else float("inf")
    flag = ""
    if ratio < 1.0 - REGRESSION_TOLERANCE:
        regressions.append((name, ratio))
        flag = "  <-- regression"
    print(f"{name:<24} {base[name]:>12.4g} {new[name]:>12.4g} "
          f"{ratio:>7.2f}x{flag}")
for name in new:
    if name not in base:
        print(f"{name:<24} {'(new)':>12} {new[name]:>12.4g}")

if regressions:
    worst = min(regressions, key=lambda item: item[1])
    msg = (f"{len(regressions)} benchmark(s) regressed >10% "
           f"(worst: {worst[0]} at {worst[1]:.2f}x)")
    if enforce:
        print(f"FAIL: {msg}")
        sys.exit(1)
    print(f"warning: {msg} (not enforced: build_type is "
          f"{build_type or 'unknown'}, not release)")
else:
    print("no regressions beyond 10%")
PY
fi

if [[ -x "$CLI" && -x "$CHECK" ]]; then
    "$CLI" --ring 3:3:12 --warmup 1000 --batch 1000 --batches 3 \
        --metrics-out "$METRICS_OUT" >/dev/null
    "$CHECK" "$SCHEMA" "$METRICS_OUT"
    echo "wrote $METRICS_OUT (schema-valid)"
else
    echo "warning: hrsim_cli/metrics_check not built; skipping the \
metrics schema check" >&2
fi
