#!/usr/bin/env bash
# Run the simulator-throughput benchmark and emit BENCH_simspeed.json
# (google-benchmark JSON: node-cycles/s per config, fast vs legacy
# tick loops, and sweep-engine points/s) so the performance trajectory
# is tracked across PRs.
#
# Usage: scripts/run_simspeed.sh [output.json]
#   BUILD_DIR=build   build tree containing bench/bench_simspeed
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_simspeed.json}
BENCH="$BUILD_DIR/bench/bench_simspeed"

if [[ ! -x "$BENCH" ]]; then
    echo "error: $BENCH not built (cmake -B $BUILD_DIR -S . && \
cmake --build $BUILD_DIR -j)" >&2
    exit 1
fi

"$BENCH" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_repetitions="${HRSIM_BENCH_REPS:-1}" \
    --benchmark_min_time="${HRSIM_BENCH_MIN_TIME:-0.5}"

echo "wrote $OUT"
