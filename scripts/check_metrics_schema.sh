#!/usr/bin/env bash
# Emit a small metrics artifact with hrsim_cli and validate it against
# the checked-in schema. Run as a ctest (metrics_schema_check) and from
# scripts/run_simspeed.sh, so every build proves its --metrics-out
# output is schema-valid.
#
# Usage: scripts/check_metrics_schema.sh HRSIM_CLI METRICS_CHECK SCHEMA [OUT]
set -euo pipefail

if [[ $# -lt 3 ]]; then
    echo "usage: $0 HRSIM_CLI METRICS_CHECK SCHEMA [OUT]" >&2
    exit 2
fi

cli=$1
checker=$2
schema=$3
out=${4:-metrics_schema_check.json}

"$cli" --ring 4:4 --warmup 500 --batch 500 --batches 2 \
    --metrics-every 400 --metrics-out "$out" >/dev/null
"$checker" "$schema" "$out"
