#!/usr/bin/env bash
# Smoke-test checkpoint/restore end to end, across processes: a run
# snapshots itself mid-flight (--save-at + --save-stop), a FRESH
# process restores the snapshot and finishes the run, and the
# restored metrics artifact must be byte-identical to an
# uninterrupted control run everywhere except the volatile manifest
# fields (wall_seconds, node_cycles_per_sec, and the restored_from
# provenance field, which must appear in the resumed artifact and
# must NOT appear in the control — cold-start artifacts keep the
# exact v1 byte layout). A restore under a different config must be
# refused with exit code 3 and a message naming both config keys.
#
# Usage: scripts/check_ckpt_smoke.sh HRSIM_CLI METRICS_CHECK \
#            SCHEMA [OUTDIR]
set -euo pipefail

if [[ $# -lt 3 ]]; then
    echo "usage: $0 HRSIM_CLI METRICS_CHECK SCHEMA [OUTDIR]" >&2
    exit 2
fi

cli=$1
checker=$2
schema=$3
outdir=${4:-.}

ckpt="$outdir/ckpt_smoke.ckpt"
control="$outdir/ckpt_smoke_control.json"
resumed="$outdir/ckpt_smoke_resumed.json"
mismatch_err="$outdir/ckpt_smoke_mismatch.err"

# One config, three runs: control (uninterrupted), donor (stops right
# after its cycle-4000 snapshot), resume (fresh process, finishes).
# --metrics-every makes the comparison cover snapshot history too.
common=(--ring 2:4 --line 64 --t 4
        --warmup 2000 --batch 2000 --batches 3 --seed 11
        --metrics-every 2000)

"$cli" "${common[@]}" --metrics-out "$control" >/dev/null
"$cli" "${common[@]}" --save-to "$ckpt" --save-at 4000 --save-stop \
    >/dev/null
"$cli" "${common[@]}" --restore "$ckpt" --metrics-out "$resumed" \
    >/dev/null 2>/dev/null

"$checker" "$schema" "$control"
"$checker" "$schema" "$resumed"

# Everything except the volatile manifest fields must match byte for
# byte: config key, seed, every metric, every snapshot.
strip_volatile() {
    grep -v -e '"wall_seconds"' -e '"node_cycles_per_sec"' \
        -e '"restored_from"' "$1"
}
if ! cmp -s <(strip_volatile "$control") <(strip_volatile "$resumed")
then
    echo "ckpt smoke: restored artifact diverges from the control:" >&2
    diff <(strip_volatile "$control") <(strip_volatile "$resumed") \
        >&2 || true
    exit 1
fi

if ! grep -q '"restored_from"' "$resumed"; then
    echo "ckpt smoke: resumed manifest lacks restored_from" >&2
    exit 1
fi
if grep -q 'restored_from' "$control"; then
    echo "ckpt smoke: restored_from leaked into a cold-start" \
         "artifact (must stay schema-gated)" >&2
    exit 1
fi

# A different config (line size) must be refused: exit code 3 and a
# diagnostic naming both config keys.
rc=0
"$cli" --ring 2:4 --line 32 --t 4 \
    --warmup 2000 --batch 2000 --batches 3 --seed 11 \
    --restore "$ckpt" >/dev/null 2>"$mismatch_err" || rc=$?
if [[ $rc -ne 3 ]]; then
    echo "ckpt smoke: config-mismatch restore exited $rc, want 3" >&2
    exit 1
fi
if ! grep -q 'config mismatch' "$mismatch_err" ||
   ! grep -q 'snapshot:' "$mismatch_err" ||
   ! grep -q 'run:' "$mismatch_err"; then
    echo "ckpt smoke: mismatch diagnostic must name both keys:" >&2
    cat "$mismatch_err" >&2
    exit 1
fi

echo "ckpt smoke ok: cross-process restore is byte-identical," \
     "provenance recorded, mismatch refused (exit 3)"
