#!/usr/bin/env bash
# Smoke-test the fault-injection subsystem end to end: a canned plan
# (a mid-run NIC outage on a small ring) must produce a schema-valid
# metrics artifact whose ledger shows the degradation machinery
# actually fired — drop.worms > 0 (worms were drained into the dead
# link) and retry.reissued > 0 (the processors re-drove the lost
# transactions) — and whose fault.* counters conserve flits. A
# control run without a plan must not register any fault.* / drop.* /
# retry.* metric at all (the mode-gated metric convention that keeps
# fault-free artifacts byte-identical to a tree without the
# subsystem).
#
# Usage: scripts/check_fault_smoke.sh HRSIM_CLI METRICS_CHECK \
#            SCHEMA [OUTDIR]
set -euo pipefail

if [[ $# -lt 3 ]]; then
    echo "usage: $0 HRSIM_CLI METRICS_CHECK SCHEMA [OUTDIR]" >&2
    exit 2
fi

cli=$1
checker=$2
schema=$3
outdir=${4:-.}

fault_out="$outdir/fault_smoke.json"
plain_out="$outdir/fault_smoke_plain.json"
plan_file="$outdir/fault_smoke.plan"

cat > "$plan_file" <<'PLAN'
# fault_smoke: one NIC outage inside the measured window
timeout 500
retries 6
ring.nic2:down@2500..4500
PLAN

"$cli" --ring 3:6 --line 64 --t 4 \
    --warmup 2000 --batch 2000 --batches 3 \
    --fault-plan "$plan_file" \
    --metrics-out "$fault_out" >/dev/null
"$cli" --ring 3:6 --line 64 --t 4 \
    --warmup 2000 --batch 2000 --batches 3 \
    --metrics-out "$plain_out" >/dev/null

"$checker" "$schema" "$fault_out"
"$checker" "$schema" "$plain_out"

python3 - "$fault_out" "$plain_out" <<'PY'
import json
import sys


def metrics(path):
    with open(path) as fh:
        return json.load(fh)["points"][-1]["metrics"]


faulted = metrics(sys.argv[1])


def expect_positive(name):
    value = faulted.get(name)
    if value is None:
        raise SystemExit(f"{name} missing from the faulted artifact")
    if value <= 0:
        raise SystemExit(f"{name} = {value}: the canned outage must "
                         "exercise the degradation machinery")
    return value


drops = expect_positive("drop.worms")
reissues = expect_positive("retry.reissued")
expect_positive("fault.edges_applied")

injected = faulted.get("fault.injected_flits", 0)
delivered = faulted.get("fault.delivered_flits", 0)
dropped = faulted.get("drop.flits", 0)
if injected < delivered + dropped:
    raise SystemExit(
        f"conservation violated: injected {injected} < delivered "
        f"{delivered} + dropped {dropped}")

for name in metrics(sys.argv[2]):
    if name.startswith(("fault.", "drop.", "retry.")):
        raise SystemExit(
            f"{name} present without a fault plan: mode-gated "
            "metrics must not register on fault-free runs")

print(f"fault smoke ok: drop.worms = {drops:.0f}, "
      f"retry.reissued = {reissues:.0f}")
PY
