#!/usr/bin/env bash
# Smoke-test the worm-streaming fast path end to end: a saturated
# MeshSmall point (outstandingT=4 keeps worms long and back to back)
# must report router.streamed_flits > 0 in its metrics artifact — the
# streaming counters only count flits forwarded on an already-owned
# output port, so zero would mean the fast path silently degraded
# into re-arbitrating every flit. A ring point checks the NIC/IRI
# counters the same way, and a HRSIM_NO_FASTPATH control run must not
# register the counters at all (the mode-gated metric convention that
# keeps artifacts byte-identical across modes).
#
# Usage: scripts/check_fastpath_smoke.sh HRSIM_CLI METRICS_CHECK \
#            SCHEMA [OUTDIR]
set -euo pipefail

if [[ $# -lt 3 ]]; then
    echo "usage: $0 HRSIM_CLI METRICS_CHECK SCHEMA [OUTDIR]" >&2
    exit 2
fi

cli=$1
checker=$2
schema=$3
outdir=${4:-.}

mesh_out="$outdir/fastpath_smoke_mesh.json"
ring_out="$outdir/fastpath_smoke_ring.json"
legacy_out="$outdir/fastpath_smoke_legacy.json"

# Saturated MeshSmall / RingSmall analogues of bench_simspeed.
"$cli" --mesh 3 --line 64 --t 4 \
    --warmup 1000 --batch 1000 --batches 3 \
    --metrics-out "$mesh_out" >/dev/null
"$cli" --ring 2:4 --line 64 --t 4 \
    --warmup 1000 --batch 1000 --batches 3 \
    --metrics-out "$ring_out" >/dev/null
HRSIM_NO_FASTPATH=1 "$cli" --mesh 3 --line 64 --t 4 \
    --warmup 1000 --batch 1000 --batches 3 \
    --metrics-out "$legacy_out" >/dev/null

"$checker" "$schema" "$mesh_out"
"$checker" "$schema" "$ring_out"
"$checker" "$schema" "$legacy_out"

python3 - "$mesh_out" "$ring_out" "$legacy_out" <<'PY'
import json
import sys


def metrics(path):
    with open(path) as fh:
        return json.load(fh)["points"][-1]["metrics"]


def expect_streaming(path, name):
    value = metrics(path).get(name)
    if value is None:
        raise SystemExit(f"{name} missing from {path}: "
                         "fast path not engaged")
    if value <= 0:
        raise SystemExit(f"{name} = {value} in {path}: a saturated "
                         "point must stream worm bodies")
    return value


streamed = expect_streaming(sys.argv[1], "router.streamed_flits")
nic = expect_streaming(sys.argv[2], "nic.streamed_flits")
iri = expect_streaming(sys.argv[2], "iri.streamed_flits")

for name, value in metrics(sys.argv[3]).items():
    if name.endswith(".streamed_flits"):
        raise SystemExit(
            f"{name} present under HRSIM_NO_FASTPATH=1: mode-gated "
            "metrics must not register on the legacy path")

print(f"fastpath smoke ok: router.streamed_flits = {streamed:.0f}, "
      f"nic.streamed_flits = {nic:.0f}, "
      f"iri.streamed_flits = {iri:.0f}")
PY
