#!/usr/bin/env bash
# Keep hrsim_cli --help and README.md's CLI reference in lockstep,
# in both directions. Run as a ctest (docs_check) so neither side can
# silently drift:
#
#  help -> README: every long option the help text mentions must be
#      documented somewhere in the README.
#  README -> help: every long option named inside the README's
#      "## `hrsim_cli` reference" section must still exist in the
#      help text, so the reference cannot keep describing removed or
#      renamed flags. The check is scoped to that section because the
#      rest of the README legitimately mentions foreign flags
#      (cmake --build, ctest --test-dir, ...).
#
# Usage: scripts/check_docs.sh HRSIM_CLI README
set -u

if [[ $# -ne 2 ]]; then
    echo "usage: $0 HRSIM_CLI README" >&2
    exit 2
fi

cli=$1
readme=$2

if [[ ! -x "$cli" ]]; then
    echo "error: $cli is not executable" >&2
    exit 2
fi
if [[ ! -r "$readme" ]]; then
    echo "error: cannot read $readme" >&2
    exit 2
fi

help_flags=$("$cli" --help 2>&1 | grep -oE -- '--[a-z][a-z-]*' | sort -u)

failed=0
# Direction 1: every long option the help text mentions, deduplicated.
for flag in $help_flags; do
    # Word-boundary match so --r does not accept --ring as coverage.
    if ! grep -qE -- "${flag}([^a-z-]|$)" "$readme"; then
        echo "README.md does not document $flag" >&2
        failed=1
    fi
done

# Direction 2: every flag the CLI reference section documents must
# still exist. --help itself is the one flag the usage text does not
# list.
reference_flags=$(awk '/^## `hrsim_cli` reference/{f=1;next}
                       /^## /{f=0} f' "$readme" |
                  grep -oE -- '--[a-z][a-z-]*' | sort -u)
for flag in $reference_flags; do
    [[ "$flag" == "--help" ]] && continue
    if ! grep -qE -- "${flag}([^a-z-]|$)" <<< "$help_flags"; then
        echo "README.md documents $flag, which hrsim_cli --help" \
             "no longer mentions" >&2
        failed=1
    fi
done

if [[ $failed -ne 0 ]]; then
    echo "docs check failed: reconcile hrsim_cli --help and the CLI" \
         "reference in $readme" >&2
    exit 1
fi
echo "docs check passed: hrsim_cli --help and the README CLI" \
     "reference agree in both directions"
