#!/usr/bin/env bash
# Fail when hrsim_cli --help mentions a flag that README.md's CLI
# reference does not document. Run as a ctest (docs_check) so the CLI
# table cannot silently drift out of date.
#
# Usage: scripts/check_docs.sh HRSIM_CLI README
set -u

if [[ $# -ne 2 ]]; then
    echo "usage: $0 HRSIM_CLI README" >&2
    exit 2
fi

cli=$1
readme=$2

if [[ ! -x "$cli" ]]; then
    echo "error: $cli is not executable" >&2
    exit 2
fi
if [[ ! -r "$readme" ]]; then
    echo "error: cannot read $readme" >&2
    exit 2
fi

missing=0
# Every long option the help text mentions, deduplicated.
for flag in $("$cli" --help 2>&1 | grep -oE -- '--[a-z][a-z-]*' | sort -u); do
    # Word-boundary match so --r does not accept --ring as coverage.
    if ! grep -qE -- "${flag}([^a-z-]|$)" "$readme"; then
        echo "README.md does not document $flag" >&2
        missing=1
    fi
done

if [[ $missing -ne 0 ]]; then
    echo "docs check failed: update the CLI reference in $readme" >&2
    exit 1
fi
echo "docs check passed: every hrsim_cli flag is documented"
