#!/usr/bin/env bash
# Sweep-level proof of the adaptive-run-control win: run the standard
# figure sweep twice — the paper's fixed-length protocol vs
# --stop-rel-hw TARGET — and verify that
#
#  1. the adaptive sweep simulates at least MIN_SPEEDUP x fewer total
#     cycles (saturated aborts and early convergence are the savings),
#  2. every adaptive point that reports stop_reason=converged is
#     statistically consistent with the fixed run: its +/- rel_hw
#     interval overlaps the fixed run's 95% confidence interval
#     (the speed is not bought with wrong answers), and
#  3. wall-clock moves in the same direction (reported, not gated:
#     single-core CI boxes time noisily).
#
# The adaptive sweep uses a 1000-cycle checkpoint batch: the finest
# grain that still spans several round trips at every sweep operating
# point, so stopping decisions land on the earliest honest boundary.
#
# Usage: scripts/bench_adaptive_sweep.sh [HRSIM_CLI] [KIND] [TARGET]
#   HRSIM_CLI  path to hrsim_cli (default build/tools/hrsim_cli)
#   KIND       ring | mesh | both (default both)
#   TARGET     --stop-rel-hw target (default 0.05)
#   HRSIM_SWEEP_JOBS  worker threads for both sweeps (default 1)
#   HRSIM_STOP_BATCH  adaptive checkpoint batch cycles (default 1000)
set -euo pipefail

cli=${1:-build/tools/hrsim_cli}
kind=${2:-both}
target=${3:-0.05}
jobs=${HRSIM_SWEEP_JOBS:-1}
stop_batch=${HRSIM_STOP_BATCH:-1000}

if [[ ! -x "$cli" ]]; then
    echo "error: $cli not built" >&2
    exit 1
fi

fixed_csv=$(mktemp)
adaptive_csv=$(mktemp)
trap 'rm -f "$fixed_csv" "$adaptive_csv"' EXIT

echo "fixed-length sweep ($kind)..."
fixed_start=$SECONDS
"$cli" --sweep "$kind" --jobs "$jobs" > "$fixed_csv"
fixed_wall=$((SECONDS - fixed_start))

echo "adaptive sweep ($kind, --stop-rel-hw $target)..."
adaptive_start=$SECONDS
"$cli" --sweep "$kind" --jobs "$jobs" --stop-rel-hw "$target" \
    --stop-batch "$stop_batch" > "$adaptive_csv"
adaptive_wall=$((SECONDS - adaptive_start))

python3 - "$fixed_csv" "$adaptive_csv" "$target" \
    "$fixed_wall" "$adaptive_wall" <<'PY'
import csv
import sys

MIN_SPEEDUP = 2.0  # acceptance: >= 2x fewer simulated cycles

# The fixed sweep runs the paper's schedule: warmup + batches.
FIXED_CYCLES = 4000 + 5 * 4000

def rows(path):
    with open(path) as fh:
        return {row["label"]: row for row in csv.DictReader(fh)}

fixed = rows(sys.argv[1])
adaptive = rows(sys.argv[2])
target = float(sys.argv[3])
fixed_wall, adaptive_wall = int(sys.argv[4]), int(sys.argv[5])

if set(fixed) != set(adaptive):
    raise SystemExit("sweeps disagree on the point list")

total_fixed = FIXED_CYCLES * len(fixed)
total_adaptive = 0
outside = []
print(f"\n{'point':<14} {'fixed':>9} {'ci95':>7} {'adaptive':>9} "
      f"{'cycles':>8} {'stop':>10}")
for label in fixed:
    f, a = fixed[label], adaptive[label]
    cycles = int(a["cycles_simulated"])
    total_adaptive += cycles
    f_lat, f_ci = float(f["latency"]), float(f["ci95"])
    a_lat = float(a["latency"])
    a_hw = float(a["rel_hw"]) * a_lat  # adaptive 95% half-width
    reason = a["stop_reason"]
    mark = ""
    # Two noisy estimates of the same quantity agree when their 95%
    # intervals overlap: |a - f| <= f_ci + a_hw.
    if reason == "converged" and abs(a_lat - f_lat) > f_ci + a_hw:
        outside.append((label, f_lat, f_ci, a_lat, a_hw))
        mark = "  <-- outside fixed CI"
    print(f"{label:<14} {f_lat:>9.2f} {f_ci:>7.2f} {a_lat:>9.2f} "
          f"{cycles:>8} {reason:>10}{mark}")

speedup = total_fixed / total_adaptive
print(f"\ntotal simulated cycles: fixed {total_fixed}, "
      f"adaptive {total_adaptive} ({speedup:.2f}x fewer)")
print(f"wall-clock: fixed {fixed_wall}s, adaptive {adaptive_wall}s")

failed = False
if speedup < MIN_SPEEDUP:
    print(f"FAIL: adaptive sweep must simulate >= {MIN_SPEEDUP}x "
          f"fewer cycles, got {speedup:.2f}x")
    failed = True
if outside:
    print(f"FAIL: {len(outside)} converged point(s) inconsistent with "
          "the fixed run's 95% CI:")
    for label, f_lat, f_ci, a_lat, a_hw in outside:
        print(f"  {label}: adaptive {a_lat:.2f} +/- {a_hw:.2f} vs "
              f"fixed {f_lat:.2f} +/- {f_ci:.2f}")
    failed = True
if failed:
    sys.exit(1)
print("adaptive sweep benchmark ok")
PY
