#!/usr/bin/env bash
# The repository's CI pipeline, runnable locally and from any CI
# runner. Three build configurations, in order of cost:
#
#  1. release  — Release build, the full ctest suite (unit tests,
#                paper-conformance checks, and the script gates:
#                metrics_schema_check, docs_check, simspeed_smoke,
#                adaptive_smoke, fault_smoke, ckpt_smoke).
#  2. tsan     — -DHRSIM_SANITIZE=thread, the concurrency-sensitive
#                tests (sweep engine, adaptive run control, active-set
#                scheduler, fault replay under parallel sweeps, the
#                TickPool barrier and the shard-parallel tick grid):
#                the parallel sweep's work-claiming/result reaping and
#                the tick engine's shard isolation must be race-free.
#  3. asan     — -DHRSIM_SANITIZE=address, the same test set plus the
#                container/stats units: the hot-path ring buffers and
#                the adaptive batch storage index with raw masks and
#                grow under churn, exactly where AddressSanitizer
#                pays for itself.
#  4. bench    — Release build of bench_simspeed (linked against the
#                in-tree minibench harness, so no system Debug
#                benchmark library can distort it) plus a short
#                tracking run through scripts/run_simspeed.sh into a
#                scratch artifact. Proves the timing pipeline end to
#                end — harness flags, JSON shape, the Release check —
#                without touching the committed baseline.
#
# Usage: scripts/ci.sh [release|tsan|asan|bench|all]   (default: all)
set -euo pipefail

stage=${1:-all}
jobs=${HRSIM_CI_JOBS:-$(nproc)}
src=$(cd "$(dirname "$0")/.." && pwd)

# Tests worth re-running under the sanitizers: everything that
# exercises threads, the adaptive controller, or raw-index storage.
# LayoutSmoke/StablePool cover the columnar bitmap scans and the
# placement-new pool — raw masks and lifetimes, ASan/TSan territory.
# TickPool/TickParallel cover the intra-run shard engine: the epoch
# barrier and the frozen-FIFO shard isolation (DESIGN.md section 15).
SANITIZED_FILTER='Sweep|AdaptiveSystem|RunController|ActiveSet|RingDeque|StagedFifo|BatchMeans|TQuantile|Mser|Fault|LayoutSmoke|StablePool|TickPool|TickParallel|Checkpoint'

run_release() {
    cmake -B "$src/build-ci" -S "$src" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$src/build-ci" -j "$jobs"
    # Fail fast on the columnar layout invariants before the full
    # suite: a broken bitmap scan fails hundreds of downstream tests
    # with less useful diagnostics.
    ctest --test-dir "$src/build-ci" -R '^layout_smoke$' \
        --output-on-failure
    ctest --test-dir "$src/build-ci" -j 2 --output-on-failure
}

run_sanitizer() {
    local kind=$1
    local dir="$src/build-$kind"
    local sanitize
    case "$kind" in
      tsan) sanitize=thread ;;
      asan) sanitize=address ;;
      *) echo "unknown sanitizer stage: $kind" >&2; exit 2 ;;
    esac
    cmake -B "$dir" -S "$src" -DHRSIM_SANITIZE="$sanitize"
    cmake --build "$dir" -j "$jobs" --target hrsim_tests
    "$dir/tests/hrsim_tests" \
        --gtest_filter="*${SANITIZED_FILTER//|/*:*}*"
}

run_bench() {
    cmake -B "$src/build-ci" -S "$src" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$src/build-ci" -j "$jobs" \
        --target bench_simspeed hrsim_cli metrics_check
    # Scratch artifact inside the build tree: untracked, so the
    # committed-baseline dirty-tree guard in run_simspeed.sh never
    # triggers on CI runs.
    BUILD_DIR="$src/build-ci" \
        HRSIM_BENCH_MIN_TIME=${HRSIM_BENCH_MIN_TIME:-0.05} \
        "$src/scripts/run_simspeed.sh" \
        "$src/build-ci/BENCH_simspeed_ci.json" \
        "$src/build-ci/BENCH_simspeed_ci_metrics.json"
}

case "$stage" in
  release) run_release ;;
  tsan) run_sanitizer tsan ;;
  asan) run_sanitizer asan ;;
  bench) run_bench ;;
  all)
    run_release
    run_sanitizer tsan
    run_sanitizer asan
    run_bench
    ;;
  *)
    echo "usage: $0 [release|tsan|asan|bench|all]" >&2
    exit 2
    ;;
esac

echo "ci: stage '$stage' passed"
