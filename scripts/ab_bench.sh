#!/usr/bin/env bash
# Interleaved A/B benchmark harness.
#
# The committed BENCH_simspeed.json gate compares today's run against
# a JSON taken on a different day — on a box whose frequency governor,
# thermal state and background load have all drifted since. Sequential
# comparisons therefore confound "the code changed" with "the machine
# changed". This harness removes the machine axis the standard way:
# run TWO build trees in strictly alternating rounds (A B A B ...), so
# every pair of measurements sees the same box state within seconds of
# each other, and reduce with the median of per-round B/A ratios —
# robust to a background spike polluting any single round — reporting
# the spread (min..max of the round ratios) so a noisy verdict is
# visibly noisy.
#
# Usage: scripts/ab_bench.sh [options] BUILD_A BUILD_B
#   BUILD_A/BUILD_B   build trees containing bench/bench_simspeed
#                     (A = baseline, B = candidate; the report is
#                     B relative to A, >1.0x means B is faster)
#   --rounds N        alternating rounds (default 10, minimum 3)
#   --filter RE       --benchmark_filter regex for both sides
#   --min-time S      per-measurement min time (default 0.2)
#   --env-a 'K=V ..'  extra environment for side A only
#   --env-b 'K=V ..'  extra environment for side B only
#
# Exit status: 0 on a completed comparison (the tool informs, it does
# not gate), 1 on usage/build errors.
set -euo pipefail

ROUNDS=10
FILTER=""
MIN_TIME=0.2
ENV_A=""
ENV_B=""

usage() {
    sed -n '2,27p' "$0" | sed 's/^# \{0,1\}//'
    exit 1
}

while [[ $# -gt 0 ]]; do
    case "$1" in
      --rounds) ROUNDS=${2:?--rounds needs a count}; shift 2 ;;
      --filter) FILTER=${2:?--filter needs a regex}; shift 2 ;;
      --min-time) MIN_TIME=${2:?--min-time needs seconds}; shift 2 ;;
      --env-a) ENV_A=${2:?--env-a needs K=V pairs}; shift 2 ;;
      --env-b) ENV_B=${2:?--env-b needs K=V pairs}; shift 2 ;;
      -h|--help) usage ;;
      --*) echo "error: unknown option $1" >&2; exit 1 ;;
      *) break ;;
    esac
done
[[ $# -eq 2 ]] || usage
BUILD_A=$1
BUILD_B=$2
if (( ROUNDS < 3 )); then
    echo "error: --rounds needs at least 3 for a median" >&2
    exit 1
fi

BENCH_A="$BUILD_A/bench/bench_simspeed"
BENCH_B="$BUILD_B/bench/bench_simspeed"
for bench in "$BENCH_A" "$BENCH_B"; do
    if [[ ! -x "$bench" ]]; then
        echo "error: $bench not built" >&2
        exit 1
    fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

run_side() {
    local bench=$1 side_env=$2 out=$3
    local args=(
        --benchmark_out="$out"
        --benchmark_out_format=json
        --benchmark_repetitions=1
        --benchmark_min_time="$MIN_TIME"
    )
    [[ -n "$FILTER" ]] && args+=(--benchmark_filter="$FILTER")
    # shellcheck disable=SC2086
    env $side_env "$bench" "${args[@]}" >/dev/null
}

echo "ab_bench: $ROUNDS alternating rounds," \
     "A=$BUILD_A B=$BUILD_B${FILTER:+ filter=$FILTER}"
for (( r = 0; r < ROUNDS; ++r )); do
    run_side "$BENCH_A" "$ENV_A" "$WORK/a$r.json"
    run_side "$BENCH_B" "$ENV_B" "$WORK/b$r.json"
    echo "  round $((r + 1))/$ROUNDS done"
done

python3 - "$WORK" "$ROUNDS" <<'PY'
import json
import statistics
import sys

work, rounds = sys.argv[1], int(sys.argv[2])

def rates(path):
    """benchmark name -> primary rate (node_cycles/s or points/s)."""
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for row in doc.get("benchmarks", []):
        rate = row.get("node_cycles/s", row.get("points/s"))
        if rate is not None:
            out[row["name"]] = float(rate)
    return out

a_rounds = [rates(f"{work}/a{r}.json") for r in range(rounds)]
b_rounds = [rates(f"{work}/b{r}.json") for r in range(rounds)]

names = [n for n in a_rounds[0] if all(n in r for r in b_rounds)]
if not names:
    sys.exit("error: no benchmark appears on both sides; check "
             "--filter and the two build trees")

print(f"\n{'benchmark':<26} {'A median':>12} {'B median':>12} "
      f"{'B/A':>7} {'spread':>15}")
for name in names:
    a = [r[name] for r in a_rounds if name in r]
    b = [r[name] for r in b_rounds if name in r]
    ratios = sorted(
        bi / ai for ai, bi in zip(a, b) if ai > 0)
    med = statistics.median(ratios)
    print(f"{name:<26} {statistics.median(a):>12.4g} "
          f"{statistics.median(b):>12.4g} {med:>6.3f}x "
          f"[{ratios[0]:.3f}..{ratios[-1]:.3f}]")
print("\nmedian of per-round B/A ratios; spread = min..max over "
      "rounds.\nA wide spread means the box was noisy — distrust "
      "the verdict, rerun.")
PY
