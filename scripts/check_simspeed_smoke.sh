#!/usr/bin/env bash
# Smoke-test the active-set scheduler end to end: run a short
# mostly-idle ring point and a mesh point through hrsim_cli, validate
# the emitted metrics artifacts against the checked-in schema, and
# assert the ring point actually fast-forwarded quiescent cycles
# (sched.skipped_cycles > 0 at C = 0.01). Run as the simspeed_smoke
# ctest, so "the scheduler silently degraded into never skipping"
# fails CI rather than only showing up as a benchmark regression.
#
# Usage: scripts/check_simspeed_smoke.sh HRSIM_CLI METRICS_CHECK \
#            SCHEMA [OUTDIR]
set -euo pipefail

if [[ $# -lt 3 ]]; then
    echo "usage: $0 HRSIM_CLI METRICS_CHECK SCHEMA [OUTDIR]" >&2
    exit 2
fi

cli=$1
checker=$2
schema=$3
outdir=${4:-.}

ring_out="$outdir/simspeed_smoke_ring.json"
mesh_out="$outdir/simspeed_smoke_mesh.json"

# RingSmall/MeshSmall analogues of bench_simspeed, shortened: the
# ring point runs at C = 0.01 so the network goes quiescent often.
"$cli" --ring 2:4 --line 64 --c 0.01 \
    --warmup 1000 --batch 1000 --batches 3 \
    --metrics-out "$ring_out" >/dev/null
"$cli" --mesh 3 --line 64 \
    --warmup 1000 --batch 1000 --batches 3 \
    --metrics-out "$mesh_out" >/dev/null

"$checker" "$schema" "$ring_out"
"$checker" "$schema" "$mesh_out"

python3 - "$ring_out" <<'PY'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
metrics = doc["points"][-1]["metrics"]
skipped = metrics.get("sched.skipped_cycles")
if skipped is None:
    raise SystemExit(
        "sched.skipped_cycles missing: active scheduler not engaged")
if skipped <= 0:
    raise SystemExit(
        f"sched.skipped_cycles = {skipped}: a C=0.01 ring must "
        "fast-forward quiescent gaps")
print(f"simspeed smoke ok: sched.skipped_cycles = {skipped}")
PY
