#!/usr/bin/env python3
"""Plot the CSV emitted by the hrsim bench binaries.

Every figure bench prints its series twice: an aligned text table and
long-format CSV (``title,series,x,y``). Pipe one or more bench outputs
through this script to get one matplotlib figure per title:

    ./build/bench/bench_fig14_compare_4flit | scripts/plot_bench.py
    cat bench_output.txt | scripts/plot_bench.py --out plots/

Trajectory mode instead overlays simulator-throughput snapshots
(``BENCH_simspeed*.json``, as written by scripts/run_simspeed.sh)
so the PR-over-PR perf history is visible at a glance: one line per
benchmark, one x position per snapshot (ordered as given), y =
median node-cycles/s across that snapshot's repetitions:

    scripts/plot_bench.py --trajectory old/BENCH_simspeed.json \\
        BENCH_simspeed.json --out plots/

Matplotlib is required only by this script, not by the library.
"""

import argparse
import collections
import csv
import json
import os
import re
import statistics
import sys


def read_series(stream):
    """Parse ``title,series,x,y`` rows out of mixed bench output."""
    figures = collections.defaultdict(
        lambda: collections.defaultdict(list))
    reader = csv.reader(stream)
    for row in reader:
        if len(row) != 4 or row[0] == "title":
            continue
        title, series, x, y = row
        try:
            figures[title][series].append((float(x), float(y)))
        except ValueError:
            continue  # a table row that happened to contain commas
    return figures


def read_snapshot(path):
    """Median primary rate per benchmark from one simspeed JSON.

    Returns (label, {benchmark: median_rate}). The label names the
    snapshot on the x axis: the recorded git describe when present
    (with the file name as a tiebreaker for re-runs of one commit),
    else the file name.
    """
    with open(path) as fh:
        doc = json.load(fh)
    samples = collections.defaultdict(list)
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        rate = row.get("node_cycles/s", row.get("points/s"))
        if rate is not None:
            samples[row["name"]].append(float(rate))
    medians = {
        name: statistics.median(reps)
        for name, reps in samples.items()
    }
    label = str(doc.get("context", {}).get("hrsim_git", "")).strip()
    if not label:
        label = os.path.basename(path)
    return label, medians


def plot_trajectory(paths, out_dir, logy):
    # Degrade gracefully at the short end of a history: a repo's
    # first benchmarked PR has one snapshot and a fresh clone may
    # have none — neither is an error worth failing a pipeline over.
    if not paths:
        print("no snapshots given; nothing to plot (run "
              "scripts/run_simspeed.sh to record one)",
              file=sys.stderr)
        return 0
    snapshots = []
    for path in paths:
        try:
            snapshots.append(read_snapshot(path))
        except (OSError, json.JSONDecodeError) as err:
            print(f"skipping {path}: {err}", file=sys.stderr)
    if not snapshots:
        print("no readable snapshots", file=sys.stderr)
        return 1
    if len(snapshots) == 1:
        print("single snapshot: no PR-over-PR trend yet; showing "
              "its medians as one column", file=sys.stderr)

    # Disambiguate repeated labels (same commit benchmarked twice).
    seen = collections.Counter()
    labels = []
    for label, _ in snapshots:
        seen[label] += 1
        labels.append(label if seen[label] == 1
                      else f"{label} ({seen[label]})")

    # One line per benchmark present in any snapshot; gaps (a bench
    # added or removed mid-history) simply break the line.
    names = []
    for _, medians in snapshots:
        for name in medians:
            if name not in names:
                names.append(name)

    # Text table first, so the history reads without an image viewer
    # (CI logs) and the mode still works where matplotlib is absent.
    width = max((len(n) for n in names), default=9)
    header = " ".join(f"{lab:>14}" for lab in labels)
    print(f"{'benchmark':<{width}} {header}")
    for name in names:
        cells = []
        for _, medians in snapshots:
            rate = medians.get(name)
            cells.append(f"{rate:>14.4g}" if rate is not None
                         else f"{'-':>14}")
        print(f"{name:<{width}} " + " ".join(cells))

    try:
        import matplotlib
    except ImportError:
        print("matplotlib not available; wrote the text table only",
              file=sys.stderr)
        return 0
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(out_dir, exist_ok=True)
    fig, ax = plt.subplots(figsize=(8, 5))
    xs = range(len(snapshots))
    for name in names:
        ys = [medians.get(name) for _, medians in snapshots]
        ax.plot(xs, ys, marker="o", markersize=4, label=name)
    ax.set_title("simulator throughput trajectory", fontsize=10)
    ax.set_xticks(list(xs))
    ax.set_xticklabels(labels, rotation=30, ha="right", fontsize=7)
    ax.set_xlabel("snapshot")
    ax.set_ylabel("median rate (node-cycles/s or points/s)")
    if logy:
        ax.set_yscale("log")
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    path = os.path.join(out_dir, "simspeed_trajectory.png")
    fig.tight_layout()
    fig.savefig(path, dpi=130)
    plt.close(fig)
    print(f"wrote {path}")
    return 0


def safe_name(title):
    return re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_")[:80]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--out", default="plots",
                        help="output directory for PNGs")
    parser.add_argument("--logy", action="store_true",
                        help="log-scale the y axis")
    parser.add_argument("--trajectory", nargs="*", metavar="JSON",
                        help="overlay node-cycles/s medians from "
                             "BENCH_simspeed*.json snapshots "
                             "(oldest first) instead of reading "
                             "figure CSV from stdin")
    args = parser.parse_args()

    if args.trajectory is not None:
        return plot_trajectory(args.trajectory, args.out, args.logy)

    figures = read_series(sys.stdin)
    if not figures:
        print("no CSV series found on stdin", file=sys.stderr)
        return 1

    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(args.out, exist_ok=True)
    for title, series in figures.items():
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for name, points in series.items():
            points.sort()
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            ax.plot(xs, ys, marker="o", markersize=3, label=name)
        ax.set_title(title, fontsize=9)
        ax.set_xlabel("nodes")
        ax.set_ylabel("value")
        if args.logy:
            ax.set_yscale("log")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
        path = os.path.join(args.out, safe_name(title) + ".png")
        fig.tight_layout()
        fig.savefig(path, dpi=130)
        plt.close(fig)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
