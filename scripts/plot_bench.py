#!/usr/bin/env python3
"""Plot the CSV emitted by the hrsim bench binaries.

Every figure bench prints its series twice: an aligned text table and
long-format CSV (``title,series,x,y``). Pipe one or more bench outputs
through this script to get one matplotlib figure per title:

    ./build/bench/bench_fig14_compare_4flit | scripts/plot_bench.py
    cat bench_output.txt | scripts/plot_bench.py --out plots/

Matplotlib is required only by this script, not by the library.
"""

import argparse
import collections
import csv
import os
import re
import sys


def read_series(stream):
    """Parse ``title,series,x,y`` rows out of mixed bench output."""
    figures = collections.defaultdict(
        lambda: collections.defaultdict(list))
    reader = csv.reader(stream)
    for row in reader:
        if len(row) != 4 or row[0] == "title":
            continue
        title, series, x, y = row
        try:
            figures[title][series].append((float(x), float(y)))
        except ValueError:
            continue  # a table row that happened to contain commas
    return figures


def safe_name(title):
    return re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_")[:80]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="plots",
                        help="output directory for PNGs")
    parser.add_argument("--logy", action="store_true",
                        help="log-scale the y axis")
    args = parser.parse_args()

    figures = read_series(sys.stdin)
    if not figures:
        print("no CSV series found on stdin", file=sys.stderr)
        return 1

    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(args.out, exist_ok=True)
    for title, series in figures.items():
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for name, points in series.items():
            points.sort()
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            ax.plot(xs, ys, marker="o", markersize=3, label=name)
        ax.set_title(title, fontsize=9)
        ax.set_xlabel("nodes")
        ax.set_ylabel("value")
        if args.logy:
            ax.set_yscale("log")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
        path = os.path.join(args.out, safe_name(title) + ".png")
        fig.tight_layout()
        fig.savefig(path, dpi=130)
        plt.close(fig)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
