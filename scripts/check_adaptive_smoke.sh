#!/usr/bin/env bash
# Smoke-test adaptive run control end to end: run one easy point and
# one saturated point through hrsim_cli with --stop-rel-hw, validate
# the emitted metrics artifacts against the checked-in schema, and
# assert the stopping rule took the right exit on each:
#
#  - A low-load ring (C = 0.01) must stop early with
#    stop_reason = converged, in fewer cycles than the fixed-length
#    horizon it replaces.
#  - A mesh driven far past its saturation knee (C = 0.5 with a deep
#    T = 64 outstanding window) must be aborted by the divergence
#    detector with stop_reason = saturated instead of burning its
#    whole 8x cycle budget.
#
# Run as the adaptive_smoke ctest so "the stopping rule silently
# stopped firing" (or started mislabeling saturated points) fails CI.
#
# Usage: scripts/check_adaptive_smoke.sh HRSIM_CLI METRICS_CHECK \
#            SCHEMA [OUTDIR]
set -euo pipefail

if [[ $# -lt 3 ]]; then
    echo "usage: $0 HRSIM_CLI METRICS_CHECK SCHEMA [OUTDIR]" >&2
    exit 2
fi

cli=$1
checker=$2
schema=$3
outdir=${4:-.}

ring_out="$outdir/adaptive_smoke_ring.json"
mesh_out="$outdir/adaptive_smoke_mesh.json"

# Fixed-length horizon these flags would imply: 4000 + 5 * 4000.
"$cli" --ring 2:4 --line 64 --c 0.01 \
    --warmup 4000 --batch 4000 --batches 5 \
    --stop-rel-hw 0.05 \
    --metrics-out "$ring_out" >/dev/null
"$cli" --mesh 4 --line 64 --c 0.5 --t 64 \
    --warmup 4000 --batch 4000 --batches 5 \
    --stop-rel-hw 0.05 \
    --metrics-out "$mesh_out" >/dev/null

"$checker" "$schema" "$ring_out"
"$checker" "$schema" "$mesh_out"

python3 - "$ring_out" "$mesh_out" <<'PY'
import json
import sys

def point(path):
    with open(path) as fh:
        return json.load(fh)["points"][-1]

ring = point(sys.argv[1])
mesh = point(sys.argv[2])

fixed_horizon = 4000 + 5 * 4000

if ring.get("stop_reason") != "converged":
    raise SystemExit(
        f"ring stop_reason = {ring.get('stop_reason')!r}: a C=0.01 "
        "ring must converge")
if ring["end_cycle"] >= fixed_horizon:
    raise SystemExit(
        f"ring stopped at {ring['end_cycle']} cycles: convergence "
        f"must beat the {fixed_horizon}-cycle fixed horizon")
rel_hw = ring["metrics"].get("run.rel_hw")
if rel_hw is None or rel_hw > 0.05:
    raise SystemExit(
        f"ring run.rel_hw = {rel_hw}: converged point must meet the "
        "0.05 target")

if mesh.get("stop_reason") != "saturated":
    raise SystemExit(
        f"mesh stop_reason = {mesh.get('stop_reason')!r}: a C=0.5 "
        "T=64 mesh is past the knee and must be flagged saturated")
if mesh["end_cycle"] >= 8 * fixed_horizon:
    raise SystemExit(
        f"mesh burned its whole budget ({mesh['end_cycle']} cycles): "
        "the divergence detector did not abort early")

print(
    "adaptive smoke ok: ring converged at "
    f"{ring['end_cycle']} cycles (rel hw {rel_hw:.3f}), mesh "
    f"saturated at {mesh['end_cycle']} cycles")
PY
