/**
 * @file
 * Behavioral tests for the 2D mesh: e-cube routing, zero-load
 * latencies, arbitration, buffer-size effects and wormhole blocking.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mesh/mesh_network.hh"
#include "proto/packet_factory.hh"

namespace hrsim
{
namespace
{

struct Delivery
{
    Packet pkt;
    Cycle when;
};

class MeshHarness
{
  public:
    explicit MeshHarness(int width, std::uint32_t line_bytes = 32,
                         std::uint32_t buffer_flits = 4)
        : net_(MeshNetwork::Params{width, line_bytes, buffer_flits}),
          factory_(ChannelSpec::mesh(), line_bytes)
    {
        net_.setDeliveryHandler([this](const Packet &pkt, Cycle now) {
            deliveries_.push_back({pkt, now});
        });
    }

    Packet
    sendRead(NodeId src, NodeId dst)
    {
        const Packet pkt = factory_.makeRequest(src, dst, true, now_);
        EXPECT_TRUE(net_.canInject(src, pkt));
        net_.inject(src, pkt);
        return pkt;
    }

    Packet
    sendWrite(NodeId src, NodeId dst)
    {
        const Packet pkt = factory_.makeRequest(src, dst, false, now_);
        EXPECT_TRUE(net_.canInject(src, pkt));
        net_.inject(src, pkt);
        return pkt;
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i)
            net_.tick(now_++);
    }

    void
    runUntilDelivered(std::size_t count, Cycle limit = 10000)
    {
        while (deliveries_.size() < count && now_ < limit)
            net_.tick(now_++);
        ASSERT_GE(deliveries_.size(), count)
            << "undelivered after " << limit << " cycles";
    }

    MeshNetwork net_;
    PacketFactory factory_;
    std::vector<Delivery> deliveries_;
    Cycle now_ = 0;
};

TEST(MeshRouterUnit, OppositePorts)
{
    EXPECT_EQ(oppositePort(PortEast), PortWest);
    EXPECT_EQ(oppositePort(PortWest), PortEast);
    EXPECT_EQ(oppositePort(PortNorth), PortSouth);
    EXPECT_EQ(oppositePort(PortSouth), PortNorth);
}

TEST(MeshRouterUnit, EcubeRoutesXFirst)
{
    MeshNetwork net(MeshNetwork::Params{3, 32, 4});
    MeshRouter &center = net.router(4); // (1,1) of a 3x3
    EXPECT_EQ(center.routeOf(5), PortEast);  // (2,1)
    EXPECT_EQ(center.routeOf(3), PortWest);  // (0,1)
    EXPECT_EQ(center.routeOf(7), PortSouth); // (1,2)
    EXPECT_EQ(center.routeOf(1), PortNorth); // (1,0)
    EXPECT_EQ(center.routeOf(4), PortLocal);
    // Diagonal destinations leave on X first (e-cube).
    EXPECT_EQ(center.routeOf(8), PortEast); // (2,2)
    EXPECT_EQ(center.routeOf(0), PortWest); // (0,0)
    EXPECT_EQ(center.routeOf(2), PortEast); // (2,0)
}

TEST(MeshRouterUnit, RouteLutMatchesCoordinateExhaustive)
{
    // The LUT rows built by MeshNetwork must agree with the
    // coordinate computation they cache for every (router, dst)
    // pair. The width grid covers the degenerate 1x1 mesh (every
    // destination is Local and no ports exist), widths where a
    // router sits on every distinct edge/corner/interior
    // configuration, and the paper's odd 11x11 (MeshLarge) plus a
    // larger power of two.
    for (const int width : {1, 2, 3, 4, 5, 6, 7, 8, 11, 16}) {
        MeshNetwork net(MeshNetwork::Params{width, 32, 4});
        const int p = width * width;
        for (NodeId r = 0; r < p; ++r) {
            MeshRouter &router = net.router(r);
            for (NodeId dst = 0; dst < p; ++dst) {
                ASSERT_EQ(router.routeOf(dst),
                          router.routeOfCoordinate(dst))
                    << "width " << width << " router " << r
                    << " dst " << dst;
            }
        }
    }
}

TEST(MeshNetwork, AdjacentZeroLoadLatency)
{
    // 4-flit read request between neighbors: head crosses in cycle 1,
    // tail (flit 4) crosses in cycle 4 and ejects in cycle 5.
    MeshHarness h(2);
    h.sendRead(0, 1);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].when, 5u);
}

TEST(MeshNetwork, ZeroLoadLatencyIsSizePlusHops)
{
    // Corner to corner on 3x3: 4 hops; 4-flit packet -> 8 cycles.
    MeshHarness h(3);
    h.sendRead(0, 8);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].when, 8u);
}

TEST(MeshNetwork, DataPacketLatency)
{
    // 64 B line -> 20-flit write; 2 hops on 3x3 from 0 to 2.
    MeshHarness h(3, 64);
    h.sendWrite(0, 2);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].when, 22u);
}

TEST(MeshNetwork, AllPairsDeliver)
{
    MeshHarness h(3);
    const int pms = h.net_.numProcessors();
    std::size_t expected = 0;
    for (NodeId src = 0; src < pms; ++src) {
        for (NodeId dst = 0; dst < pms; ++dst) {
            if (src == dst)
                continue;
            h.sendRead(src, dst);
            ++expected;
            h.runUntilDelivered(expected);
        }
    }
    EXPECT_EQ(h.deliveries_.size(), expected);
}

TEST(MeshNetwork, EcubePathIsDeterministic)
{
    // The same (src, dst) pair always takes the same time at zero
    // load: deterministic routing.
    Cycle first = 0;
    for (int trial = 0; trial < 3; ++trial) {
        MeshHarness h(4);
        h.sendRead(1, 14);
        h.runUntilDelivered(1);
        if (trial == 0)
            first = h.deliveries_[0].when;
        else
            EXPECT_EQ(h.deliveries_[0].when, first);
    }
}

TEST(MeshNetwork, OneFlitBuffersSlowWorms)
{
    // The same transfer takes longer through 1-flit buffers than
    // 4-flit buffers (registered flow control halves the link rate).
    MeshHarness big(3, 64, 4);
    MeshHarness tiny(3, 64, 1);
    big.sendWrite(0, 8);
    tiny.sendWrite(0, 8);
    big.runUntilDelivered(1);
    tiny.runUntilDelivered(1);
    EXPECT_GT(tiny.deliveries_[0].when, big.deliveries_[0].when);
}

TEST(MeshNetwork, ClBuffersAreNoFasterAtZeroLoad)
{
    // At zero load a worm streams through 4-flit buffers at full
    // rate; cl-sized buffers only help under contention.
    MeshHarness cl(3, 64, 0);
    MeshHarness four(3, 64, 4);
    cl.sendWrite(0, 8);
    four.sendWrite(0, 8);
    cl.runUntilDelivered(1);
    four.runUntilDelivered(1);
    EXPECT_EQ(cl.deliveries_[0].when, four.deliveries_[0].when);
}

TEST(MeshNetwork, ContendingWormsShareAnOutput)
{
    // Two worms from opposite sides converge on the same column and
    // destination; both must arrive, one after the other.
    MeshHarness h(3, 64);
    h.sendWrite(3, 5); // eastbound along row 1
    h.sendWrite(4, 5); // same output link at router 4
    h.runUntilDelivered(2);
    EXPECT_EQ(h.deliveries_.size(), 2u);
    EXPECT_NE(h.deliveries_[0].pkt.src, h.deliveries_[1].pkt.src);
}

TEST(MeshNetwork, RoundRobinSharesFairly)
{
    // Keep two inputs competing for one output for a long time; both
    // make progress (round-robin, no starvation).
    MeshHarness h(3, 16);
    // Many small writes from 0 (via router 1) and from 1 to 2.
    int from0 = 0;
    int from1 = 0;
    for (int wave = 0; wave < 10; ++wave) {
        h.sendWrite(0, 2);
        h.sendWrite(1, 2);
        h.runUntilDelivered(2 * (wave + 1), 100000);
    }
    for (const auto &d : h.deliveries_) {
        if (d.pkt.src == 0)
            ++from0;
        else
            ++from1;
    }
    EXPECT_EQ(from0, 10);
    EXPECT_EQ(from1, 10);
}

TEST(MeshNetwork, SplitQueuesLetResponsesPassRequests)
{
    MeshHarness h(2, 32);
    const Packet w1 = h.factory_.makeRequest(0, 1, false, 0);
    h.net_.inject(0, w1);
    const Packet w2 = h.factory_.makeRequest(0, 1, false, 0);
    EXPECT_FALSE(h.net_.canInject(0, w2)); // request queue is full
    Packet fake_req = h.factory_.makeRequest(1, 0, true, 0);
    std::swap(fake_req.src, fake_req.dst);
    const Packet resp = h.factory_.makeResponse(fake_req);
    EXPECT_TRUE(h.net_.canInject(0, resp)); // response queue is free
}

TEST(MeshNetwork, FlitsDrainAfterDelivery)
{
    MeshHarness h(3, 32);
    h.sendWrite(0, 8);
    h.sendRead(8, 0);
    h.runUntilDelivered(2);
    h.run(5);
    EXPECT_EQ(h.net_.flitsInFlight(), 0u);
}

TEST(MeshNetwork, UtilizationCountsLinkTraffic)
{
    MeshHarness h(3, 32);
    h.net_.utilization().startMeasurement(0);
    h.sendWrite(0, 8);
    h.runUntilDelivered(1);
    h.net_.utilization().stopMeasurement(h.now_);
    EXPECT_GT(h.net_.networkUtilization(), 0.0);
    EXPECT_LT(h.net_.networkUtilization(), 1.0);
}

TEST(MeshNetwork, BufferFlitsZeroSelectsClSize)
{
    MeshNetwork net(MeshNetwork::Params{2, 128, 0});
    EXPECT_EQ(net.bufferFlits(), 36u);
    MeshNetwork net4(MeshNetwork::Params{2, 128, 4});
    EXPECT_EQ(net4.bufferFlits(), 4u);
}

TEST(MeshNetwork, RejectsBadWidth)
{
    EXPECT_THROW(MeshNetwork net(MeshNetwork::Params{0, 32, 4}),
                 ConfigError);
}

} // namespace
} // namespace hrsim
