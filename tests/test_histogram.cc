/**
 * @file
 * Unit tests for the log-bucketed latency histogram and its
 * integration into RunResult percentiles.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "stats/histogram.hh"

namespace hrsim
{
namespace
{

TEST(Histogram, EmptyReportsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.p50(), 0.0);
    EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleValuePercentilesBracketIt)
{
    Histogram h;
    h.add(100.0);
    // Log buckets: the answer lies within one bucket (~19%) of 100.
    EXPECT_NEAR(h.p50(), 100.0, 20.0);
    EXPECT_NEAR(h.p99(), 100.0, 20.0);
}

TEST(Histogram, UniformRampPercentiles)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    // Relative error of a 2^(1/4) bucket is ~9%; allow 12%.
    EXPECT_NEAR(h.p50(), 500.0, 60.0);
    EXPECT_NEAR(h.p95(), 950.0, 115.0);
    EXPECT_NEAR(h.p99(), 990.0, 120.0);
}

TEST(Histogram, OrderingOfPercentiles)
{
    Histogram h;
    for (int i = 0; i < 10000; ++i)
        h.add(10.0 + (i % 700));
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
}

TEST(Histogram, TinyAndHugeValuesAreClamped)
{
    Histogram h(1e6);
    h.add(0.0);
    h.add(0.5);
    h.add(1e9); // beyond max: final bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_GE(h.percentile(1.0), h.percentile(0.0));
}

TEST(Histogram, MergeCombinesCounts)
{
    Histogram a;
    Histogram b;
    for (int i = 0; i < 100; ++i)
        a.add(50.0);
    for (int i = 0; i < 100; ++i)
        b.add(800.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    // Median between the two spikes; p99 near the upper spike.
    EXPECT_GT(a.p99(), 600.0);
    EXPECT_LT(a.p50(), 600.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.p50(), 0.0);
}

TEST(HistogramIntegration, RunResultPercentilesPopulated)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim.warmupCycles = 1500;
    cfg.sim.batchCycles = 1500;
    cfg.sim.numBatches = 3;
    const RunResult result = runSystem(cfg);
    ASSERT_GT(result.samples, 0u);
    EXPECT_GT(result.latencyP50, 0.0);
    EXPECT_LE(result.latencyP50, result.latencyP95);
    EXPECT_LE(result.latencyP95, result.latencyP99);
    // The mean lies between the median and the tail for these
    // right-skewed distributions (sanity, with a wide margin).
    EXPECT_GT(result.latencyP99, result.avgLatency * 0.8);
}

TEST(HistogramIntegration, PercentilesTightAtLowLoad)
{
    SystemConfig cfg = SystemConfig::ring("4", 32);
    cfg.workload.missRateC = 0.002; // nearly unloaded
    cfg.sim.warmupCycles = 3000;
    cfg.sim.batchCycles = 3000;
    cfg.sim.numBatches = 3;
    const RunResult result = runSystem(cfg);
    ASSERT_GT(result.samples, 0u);
    // At zero load the distribution is narrow: p99 within ~2x p50.
    EXPECT_LT(result.latencyP99, 2.0 * result.latencyP50);
}

} // namespace
} // namespace hrsim
