/**
 * @file
 * Property-based (parameterized) sweeps across topologies, cache-line
 * sizes and buffer depths: conservation, determinism, bounds and
 * qualitative orderings that must hold for every configuration.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/system.hh"

namespace hrsim
{
namespace
{

SimConfig
propertySim()
{
    SimConfig sim;
    sim.warmupCycles = 800;
    sim.batchCycles = 800;
    sim.numBatches = 3;
    return sim;
}

void
checkInvariants(const SystemConfig &cfg)
{
    System system(cfg);
    system.step(cfg.sim.warmupCycles + 1500);

    const WorkloadCounters &c = system.counters();
    const auto in_flight =
        static_cast<std::uint64_t>(system.totalOutstanding());

    // Conservation: every miss is completed or accounted in flight.
    EXPECT_EQ(c.remoteIssued + c.localIssued,
              c.remoteCompleted + c.localCompleted + in_flight);

    // The protocol bounds in-network flits: at most T per PM, each
    // worth at most request + response flits.
    const auto pms = static_cast<std::uint64_t>(
        system.network().numProcessors());
    const auto t = static_cast<std::uint64_t>(
        cfg.workload.outstandingT);
    const std::uint64_t worst_packet = 2ull * 36ull;
    EXPECT_LE(system.network().flitsInFlight(),
              pms * t * worst_packet);

    // Work happened at all.
    EXPECT_GT(c.missesGenerated, 0u);
}

// ---------------------------------------------------------------- //
// Rings: topology x cache-line size

using RingParam = std::tuple<std::string, int>;

class RingPropertyTest
    : public ::testing::TestWithParam<RingParam>
{};

TEST_P(RingPropertyTest, ConservationAndBounds)
{
    const auto &[topo, line] = GetParam();
    SystemConfig cfg =
        SystemConfig::ring(topo, static_cast<std::uint32_t>(line));
    cfg.sim = propertySim();
    checkInvariants(cfg);
}

TEST_P(RingPropertyTest, DeterministicAcrossRuns)
{
    const auto &[topo, line] = GetParam();
    SystemConfig cfg =
        SystemConfig::ring(topo, static_cast<std::uint32_t>(line));
    cfg.sim = propertySim();
    const RunResult a = runSystem(cfg);
    const RunResult b = runSystem(cfg);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.samples, b.samples);
}

TEST_P(RingPropertyTest, LatencySamplesRespectFloor)
{
    const auto &[topo, line] = GetParam();
    SystemConfig cfg =
        SystemConfig::ring(topo, static_cast<std::uint32_t>(line));
    cfg.sim = propertySim();
    const RunResult result = runSystem(cfg);
    if (result.samples > 0) {
        // Memory latency alone is a hard floor for a remote trip.
        EXPECT_GT(result.avgLatency, cfg.workload.memoryLatency);
    }
    for (const double u : result.ringLevelUtilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, RingPropertyTest,
    ::testing::Values(
        RingParam{"4", 16}, RingParam{"8", 32}, RingParam{"6", 64},
        RingParam{"4", 128}, RingParam{"2:4", 32},
        RingParam{"3:6", 64}, RingParam{"2:3:4", 128},
        RingParam{"2:3:6", 32}, RingParam{"3:3:6", 64},
        RingParam{"2:2:2:3", 16}),
    [](const ::testing::TestParamInfo<RingParam> &info) {
        std::string name = std::get<0>(info.param) + "_cl" +
                           std::to_string(std::get<1>(info.param));
        for (auto &ch : name) {
            if (ch == ':')
                ch = 'x';
        }
        return name;
    });

// ---------------------------------------------------------------- //
// Meshes: width x buffer depth x cache-line size

using MeshParam = std::tuple<int, int, int>;

class MeshPropertyTest
    : public ::testing::TestWithParam<MeshParam>
{};

TEST_P(MeshPropertyTest, ConservationAndBounds)
{
    const auto &[width, buffers, line] = GetParam();
    SystemConfig cfg = SystemConfig::mesh(
        width, static_cast<std::uint32_t>(line),
        static_cast<std::uint32_t>(buffers));
    cfg.sim = propertySim();
    checkInvariants(cfg);
}

TEST_P(MeshPropertyTest, DeterministicAcrossRuns)
{
    const auto &[width, buffers, line] = GetParam();
    SystemConfig cfg = SystemConfig::mesh(
        width, static_cast<std::uint32_t>(line),
        static_cast<std::uint32_t>(buffers));
    cfg.sim = propertySim();
    const RunResult a = runSystem(cfg);
    const RunResult b = runSystem(cfg);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.samples, b.samples);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, MeshPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(1, 4, 0),
                       ::testing::Values(32, 128)),
    [](const ::testing::TestParamInfo<MeshParam> &info) {
        return "w" + std::to_string(std::get<0>(info.param)) + "_b" +
               std::to_string(std::get<1>(info.param)) + "_cl" +
               std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------- //
// Qualitative orderings the model must reproduce for any line size

class LineSizeTest : public ::testing::TestWithParam<int>
{};

TEST_P(LineSizeTest, MeshSmallerBuffersNeverHelp)
{
    const auto line = static_cast<std::uint32_t>(GetParam());
    SystemConfig big = SystemConfig::mesh(4, line, 0);
    big.sim = propertySim();
    SystemConfig mid = big;
    mid.meshBufferFlits = 4;
    SystemConfig tiny = big;
    tiny.meshBufferFlits = 1;
    const double l_big = runSystem(big).avgLatency;
    const double l_mid = runSystem(mid).avgLatency;
    const double l_tiny = runSystem(tiny).avgLatency;
    // Allow 2% noise between cl and 4-flit, which are often close.
    EXPECT_LE(l_big, l_mid * 1.02);
    EXPECT_LT(l_mid, l_tiny);
}

TEST_P(LineSizeTest, RingLocalityReducesLatency)
{
    const auto line = static_cast<std::uint32_t>(GetParam());
    SystemConfig far = SystemConfig::ring("3:3:4", line);
    far.sim = propertySim();
    far.workload.localityR = 1.0;
    SystemConfig near = far;
    near.workload.localityR = 0.1;
    EXPECT_LT(runSystem(near).avgLatency, runSystem(far).avgLatency);
}

TEST_P(LineSizeTest, RingHierarchyBeatsSaturatedSingleRing)
{
    const auto line = static_cast<std::uint32_t>(GetParam());
    SystemConfig flat = SystemConfig::ring("24", line);
    flat.sim = propertySim();
    SystemConfig hier = SystemConfig::ring("2:3:4", line);
    hier.sim = propertySim();
    EXPECT_LT(runSystem(hier).avgLatency, runSystem(flat).avgLatency);
}

INSTANTIATE_TEST_SUITE_P(Lines, LineSizeTest,
                         ::testing::Values(16, 32, 64, 128),
                         [](const ::testing::TestParamInfo<int> &info) {
                             return "cl" + std::to_string(info.param);
                         });

} // namespace
} // namespace hrsim
