/**
 * @file
 * Unit tests for StablePool, the contiguous in-place container every
 * network's component array (NICs, IRIs, mesh routers) lives in. The
 * properties checked here are exactly the ones the simulator relies
 * on: element addresses never move (post-construction wiring stores
 * raw pointers into siblings), iteration strides the elements in
 * construction order (tick loops and bit-identity depend on it), and
 * clear() destroys without releasing the storage.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stable_pool.hh"

namespace hrsim
{
namespace
{

/** Non-movable element that journals construction and destruction. */
struct Tracked {
    static int liveCount;
    static std::vector<int> destroyedIds;

    explicit Tracked(int id_) : id(id_) { ++liveCount; }
    ~Tracked()
    {
        --liveCount;
        destroyedIds.push_back(id);
    }

    Tracked(const Tracked &) = delete;
    Tracked &operator=(const Tracked &) = delete;
    Tracked(Tracked &&) = delete;
    Tracked &operator=(Tracked &&) = delete;

    int id;
    // Pad to something router-like so adjacency checks below exercise
    // a stride larger than a cache line fraction.
    std::uint64_t payload[7] = {};
};

int Tracked::liveCount = 0;
std::vector<int> Tracked::destroyedIds;

TEST(StablePool, StartsEmpty)
{
    StablePool<int> pool;
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_TRUE(pool.empty());
    EXPECT_EQ(pool.begin(), pool.end());
}

TEST(StablePool, AddressesStableAcrossFills)
{
    // The whole point of the container: the address handed out by
    // emplace_back() #0 must still be valid after every later
    // emplace_back(), unlike std::vector growth.
    constexpr std::size_t n = 257;
    StablePool<Tracked> pool;
    pool.reserve(n);
    std::vector<Tracked *> addresses;
    for (std::size_t i = 0; i < n; ++i) {
        addresses.push_back(&pool.emplace_back(static_cast<int>(i)));
        // Every earlier element is still where it was constructed.
        for (std::size_t j = 0; j <= i; ++j) {
            ASSERT_EQ(addresses[j], &pool[j]);
            ASSERT_EQ(pool[j].id, static_cast<int>(j));
        }
    }
    EXPECT_EQ(pool.size(), n);
}

TEST(StablePool, StorageIsContiguousInOrder)
{
    StablePool<Tracked> pool;
    pool.reserve(8);
    for (int i = 0; i < 8; ++i)
        pool.emplace_back(i);
    for (std::size_t i = 1; i < pool.size(); ++i)
        EXPECT_EQ(&pool[i], &pool[i - 1] + 1);
    EXPECT_EQ(pool.data(), &pool[0]);
}

TEST(StablePool, IterationOrderIsConstructionOrder)
{
    StablePool<Tracked> pool;
    pool.reserve(16);
    for (int i = 0; i < 16; ++i)
        pool.emplace_back(i * 3);
    int expect = 0;
    for (const Tracked &element : pool) {
        EXPECT_EQ(element.id, expect * 3);
        ++expect;
    }
    EXPECT_EQ(expect, 16);
}

TEST(StablePool, ClearDestroysInReverseAndKeepsStorage)
{
    Tracked::liveCount = 0;
    Tracked::destroyedIds.clear();
    StablePool<Tracked> pool;
    pool.reserve(4);
    for (int i = 0; i < 4; ++i)
        pool.emplace_back(i);
    const Tracked *before = pool.data();
    EXPECT_EQ(Tracked::liveCount, 4);

    pool.clear();
    EXPECT_EQ(Tracked::liveCount, 0);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_TRUE(pool.empty());
    // Destruction runs back-to-front, mirroring member teardown.
    EXPECT_EQ(Tracked::destroyedIds,
              (std::vector<int>{3, 2, 1, 0}));

    // Reuse after clear: the same reservation is refilled in place —
    // no reallocation, same base address, fresh elements.
    for (int i = 0; i < 4; ++i)
        pool.emplace_back(10 + i);
    EXPECT_EQ(pool.data(), before);
    EXPECT_EQ(Tracked::liveCount, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(pool[i].id, 10 + i);
}

TEST(StablePool, DestructorDestroysLiveElements)
{
    Tracked::liveCount = 0;
    Tracked::destroyedIds.clear();
    {
        StablePool<Tracked> pool;
        pool.reserve(3);
        for (int i = 0; i < 3; ++i)
            pool.emplace_back(i);
        EXPECT_EQ(Tracked::liveCount, 3);
    }
    EXPECT_EQ(Tracked::liveCount, 0);
    EXPECT_EQ(Tracked::destroyedIds, (std::vector<int>{2, 1, 0}));
}

TEST(StablePool, ZeroReservationIsAnEmptyPool)
{
    StablePool<Tracked> pool;
    pool.reserve(0);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_TRUE(pool.empty());
    EXPECT_EQ(pool.begin(), pool.end());
    pool.clear(); // no-op on empty storage
}

TEST(StablePool, OveralignedElementsAreAligned)
{
    struct alignas(64) Line {
        explicit Line(int v_) : v(v_) {}
        int v;
    };
    StablePool<Line> pool;
    pool.reserve(5);
    for (int i = 0; i < 5; ++i)
        pool.emplace_back(i);
    for (const Line &line : pool) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&line) % 64, 0u)
            << "element not 64-byte aligned";
    }
}

} // namespace
} // namespace hrsim
