/**
 * @file
 * Tests for the trace-driven workload: file round trips, synthesis,
 * replay semantics and whole-system integration.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "workload/trace.hh"

namespace hrsim
{
namespace
{

TEST(Trace, ConstructorSortsByCycle)
{
    Trace trace({{30, 0, 1, true},
                 {10, 1, 0, false},
                 {20, 0, 2, true}});
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.records()[0].cycle, 10u);
    EXPECT_EQ(trace.records()[1].cycle, 20u);
    EXPECT_EQ(trace.records()[2].cycle, 30u);
}

TEST(Trace, SaveLoadRoundTrip)
{
    Trace original({{5, 0, 3, true},
                    {7, 1, 2, false},
                    {7, 2, 0, true}});
    std::stringstream buffer;
    original.save(buffer);
    const Trace loaded = Trace::load(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        EXPECT_EQ(loaded.records()[i], original.records()[i]);
}

TEST(Trace, LoadSkipsCommentsAndBlankLines)
{
    std::istringstream in(
        "# header comment\n"
        "\n"
        "3 0 1 R\n"
        "   # indented comment\n"
        "9 1 0 W\n");
    const Trace trace = Trace::load(in);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_TRUE(trace.records()[0].isRead);
    EXPECT_FALSE(trace.records()[1].isRead);
}

TEST(Trace, LoadRejectsGarbage)
{
    std::istringstream bad_kind("1 0 1 X\n");
    EXPECT_THROW(Trace::load(bad_kind), ConfigError);
    std::istringstream short_line("1 0\n");
    EXPECT_THROW(Trace::load(short_line), ConfigError);
    std::istringstream negative("1 -2 1 R\n");
    EXPECT_THROW(Trace::load(negative), ConfigError);
}

TEST(Trace, ForPmFiltersAndPreservesOrder)
{
    Trace trace({{1, 0, 1, true},
                 {2, 1, 0, true},
                 {3, 0, 2, false}});
    const auto mine = trace.forPm(0);
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0].cycle, 1u);
    EXPECT_EQ(mine[1].cycle, 3u);
    EXPECT_EQ(trace.maxNode(), 2);
}

TEST(Trace, SynthesizeUniformStatistics)
{
    const Trace trace =
        Trace::synthesizeUniform(8, 50000, 0.04, 0.7, 99);
    // ~8 * 50000 * 0.04 = 16000 records; allow 5%.
    EXPECT_NEAR(static_cast<double>(trace.size()), 16000.0, 800.0);
    std::size_t reads = 0;
    for (const TraceRecord &rec : trace.records()) {
        EXPECT_NE(rec.pm, rec.target); // uniform-remote: never self
        EXPECT_LT(rec.target, 8);
        if (rec.isRead)
            ++reads;
    }
    EXPECT_NEAR(static_cast<double>(reads) /
                    static_cast<double>(trace.size()),
                0.7, 0.02);
}

TEST(Trace, SynthesisIsDeterministic)
{
    const Trace a = Trace::synthesizeUniform(4, 1000, 0.1, 0.5, 7);
    const Trace b = Trace::synthesizeUniform(4, 1000, 0.1, 0.5, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.records()[i], b.records()[i]);
}

TEST(Trace, SynthesizedRoundTripReplaysBitIdentically)
{
    // The full production path: synthesize a stream, write it through
    // the text codec, load it back, and replay BOTH copies — the
    // loaded trace must drive the simulator to bit-identical results,
    // not merely equal records.
    const Trace original =
        Trace::synthesizeUniform(8, 3000, 0.05, 0.7, 17);
    std::stringstream buffer;
    original.save(buffer);
    const Trace loaded = Trace::load(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        ASSERT_EQ(loaded.records()[i], original.records()[i]);

    SystemConfig cfg = SystemConfig::ring("2:4", 32);
    cfg.sim.warmupCycles = 1000;
    cfg.sim.batchCycles = 1000;
    cfg.sim.numBatches = 2;
    SystemConfig cfg_loaded = cfg;
    cfg.trace = &original;
    cfg_loaded.trace = &loaded;
    const RunResult a = runSystem(cfg);
    const RunResult b = runSystem(cfg_loaded);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.latencyCI95, b.latencyCI95);
    EXPECT_DOUBLE_EQ(a.latencyP50, b.latencyP50);
    EXPECT_DOUBLE_EQ(a.latencyP95, b.latencyP95);
    EXPECT_DOUBLE_EQ(a.latencyP99, b.latencyP99);
    EXPECT_DOUBLE_EQ(a.networkUtilization, b.networkUtilization);
    EXPECT_DOUBLE_EQ(a.throughputPerPm, b.throughputPerPm);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Trace, BackpressuredRoundTripReplaysBitIdentically)
{
    // Bursts of 12 same-cycle references per PM against T = 2 force
    // the replay's waits-for-slot path: most records sit in the queue
    // past their due cycle until an outstanding slot frees. The
    // codec round trip must preserve that schedule exactly.
    std::vector<TraceRecord> records;
    for (NodeId pm = 0; pm < 8; ++pm) {
        for (int i = 0; i < 12; ++i) {
            const NodeId target = (pm + 1 + i % 7) % 8;
            records.push_back({i % 2 == 0 ? Cycle{0} : Cycle{50}, pm,
                               target, i % 3 != 0});
        }
    }
    const Trace original{std::move(records)};
    std::stringstream buffer;
    original.save(buffer);
    const Trace loaded = Trace::load(buffer);
    ASSERT_EQ(loaded.size(), original.size());

    SystemConfig cfg = SystemConfig::ring("2:4", 32);
    cfg.workload.outstandingT = 2;
    cfg.trace = &original;
    System sys_a(cfg);
    sys_a.step(4000);
    SystemConfig cfg_loaded = cfg;
    cfg_loaded.trace = &loaded;
    System sys_b(cfg_loaded);
    sys_b.step(4000);

    const WorkloadCounters &ca = sys_a.counters();
    const WorkloadCounters &cb = sys_b.counters();
    // The burst actually back-pressured the replay...
    EXPECT_GT(ca.blockedCycles, 0u);
    // ...every reference still completed...
    EXPECT_EQ(ca.remoteCompleted + ca.localCompleted,
              original.size());
    // ...and the loaded copy's replay is the same run, counter for
    // counter.
    EXPECT_EQ(ca.missesGenerated, cb.missesGenerated);
    EXPECT_EQ(ca.remoteIssued, cb.remoteIssued);
    EXPECT_EQ(ca.remoteCompleted, cb.remoteCompleted);
    EXPECT_EQ(ca.localIssued, cb.localIssued);
    EXPECT_EQ(ca.localCompleted, cb.localCompleted);
    EXPECT_EQ(ca.blockedCycles, cb.blockedCycles);
    EXPECT_EQ(sys_a.totalOutstanding(), 0);
    EXPECT_EQ(sys_b.totalOutstanding(), 0);
}

TEST(TraceReplay, DrivesARingSystemToCompletion)
{
    const Trace trace =
        Trace::synthesizeUniform(8, 3000, 0.03, 0.7, 11);
    SystemConfig cfg = SystemConfig::ring("2:4", 32);
    cfg.trace = &trace;
    cfg.sim.warmupCycles = 1000;
    cfg.sim.batchCycles = 1000;
    cfg.sim.numBatches = 2;
    const RunResult result = runSystem(cfg);
    EXPECT_GT(result.samples, 0u);
    EXPECT_GT(result.avgLatency, 0.0);
}

TEST(TraceReplay, EveryReferenceCompletesAfterDrain)
{
    const Trace trace =
        Trace::synthesizeUniform(9, 1000, 0.02, 0.7, 13);
    SystemConfig cfg = SystemConfig::mesh(3, 32, 4);
    cfg.trace = &trace;
    System system(cfg);
    system.step(1000 + 5000); // trace horizon plus generous drain
    const WorkloadCounters &c = system.counters();
    EXPECT_EQ(c.missesGenerated, trace.size());
    EXPECT_EQ(c.remoteCompleted + c.localCompleted, trace.size());
    EXPECT_EQ(system.totalOutstanding(), 0);
}

TEST(TraceReplay, HonoursOutstandingLimit)
{
    // 20 references all due at cycle 0 from one PM: with T = 2, at
    // most 2 may ever be outstanding.
    std::vector<TraceRecord> records;
    for (int i = 0; i < 20; ++i)
        records.push_back({0, 0, 1, true});
    const Trace trace{std::vector<TraceRecord>(records)};
    SystemConfig cfg = SystemConfig::ring("4", 32);
    cfg.trace = &trace;
    cfg.workload.outstandingT = 2;
    System system(cfg);
    for (int step = 0; step < 500; ++step) {
        system.step(1);
        ASSERT_LE(system.totalOutstanding(), 2);
    }
    EXPECT_EQ(system.counters().remoteCompleted, 20u);
}

TEST(TraceReplay, ReplayIsDeterministic)
{
    const Trace trace =
        Trace::synthesizeUniform(8, 2000, 0.04, 0.7, 21);
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.trace = &trace;
    cfg.sim.warmupCycles = 500;
    cfg.sim.batchCycles = 500;
    cfg.sim.numBatches = 2;
    const RunResult a = runSystem(cfg);
    const RunResult b = runSystem(cfg);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(TraceReplay, RejectsTraceBeyondTopology)
{
    const Trace trace = Trace::synthesizeUniform(16, 100, 0.1, 0.7, 3);
    SystemConfig cfg = SystemConfig::ring("2:4", 32); // only 8 PMs
    cfg.trace = &trace;
    EXPECT_THROW(System system(cfg), ConfigError);
}

TEST(TraceReplay, SameTraceComparesNetworksFairly)
{
    // The same reference stream on a ring and a mesh: identical work,
    // different interconnects — the library's apples-to-apples mode.
    const Trace trace =
        Trace::synthesizeUniform(9, 4000, 0.03, 0.7, 5);
    SystemConfig ring = SystemConfig::ring("3:3", 64);
    ring.trace = &trace;
    ring.sim.warmupCycles = 1000;
    ring.sim.batchCycles = 1000;
    ring.sim.numBatches = 3;
    SystemConfig mesh = SystemConfig::mesh(3, 64, 4);
    mesh.trace = &trace;
    mesh.sim = ring.sim;
    const RunResult ring_result = runSystem(ring);
    const RunResult mesh_result = runSystem(mesh);
    EXPECT_GT(ring_result.samples, 0u);
    EXPECT_GT(mesh_result.samples, 0u);
    // 9 PMs with uniform traffic: the small ring should beat the
    // small mesh (the paper's small-system regime).
    EXPECT_LT(ring_result.avgLatency, mesh_result.avgLatency);
}

} // namespace
} // namespace hrsim
