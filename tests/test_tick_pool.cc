/**
 * @file
 * Unit tests for the TickPool phase-barrier worker pool: static shard
 * assignment, barrier reuse across many dispatches, clean shutdown,
 * and the shared core budget with the sweep pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/tick_pool.hh"

namespace hrsim
{
namespace
{

TEST(TickPool, RunsEveryShardExactlyOnce)
{
    TickPool pool(4);
    EXPECT_EQ(pool.threads(), 4);
    std::vector<std::atomic<int>> hits(37);
    auto fn = [&](int shard) {
        hits[static_cast<std::size_t>(shard)].fetch_add(1);
    };
    pool.run(37, fn);
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(TickPool, SingleThreadRunsInline)
{
    TickPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(5);
    auto fn = [&](int shard) {
        ran[static_cast<std::size_t>(shard)] =
            std::this_thread::get_id();
    };
    pool.run(5, fn);
    for (const auto &id : ran)
        EXPECT_EQ(id, caller);
}

TEST(TickPool, ShardPinnedToParticipant)
{
    // Shard s always lands on participant (s mod threads): across
    // repeated dispatches each shard is touched by one stable thread.
    TickPool pool(3);
    constexpr int kShards = 9;
    std::vector<std::thread::id> first(kShards);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::thread::id> seen(kShards);
        auto fn = [&](int shard) {
            seen[static_cast<std::size_t>(shard)] =
                std::this_thread::get_id();
        };
        pool.run(kShards, fn);
        for (int s = 0; s < kShards; ++s) {
            if (round == 0) {
                first[static_cast<std::size_t>(s)] =
                    seen[static_cast<std::size_t>(s)];
            } else {
                EXPECT_EQ(seen[static_cast<std::size_t>(s)],
                          first[static_cast<std::size_t>(s)]);
            }
        }
    }
}

TEST(TickPool, BarrierMakesShardWritesVisible)
{
    // Reuse the barrier thousands of times: after every run() the
    // caller must observe all shard writes (the accumulator would
    // lose increments otherwise).
    TickPool pool(4);
    constexpr int kShards = 8;
    std::vector<std::uint64_t> cells(kShards, 0);
    auto fn = [&](int shard) {
        ++cells[static_cast<std::size_t>(shard)];
    };
    constexpr int kRounds = 5000;
    for (int round = 0; round < kRounds; ++round) {
        pool.run(kShards, fn);
        std::uint64_t sum = 0;
        for (const std::uint64_t cell : cells)
            sum += cell;
        ASSERT_EQ(sum, static_cast<std::uint64_t>(kShards) *
                           static_cast<std::uint64_t>(round + 1));
    }
}

TEST(TickPool, MoreThreadsThanShards)
{
    // Participants beyond the shard count simply idle through the
    // epoch; the barrier still completes.
    TickPool pool(8);
    std::atomic<int> hits{0};
    auto fn = [&](int) { hits.fetch_add(1); };
    pool.run(2, fn);
    EXPECT_EQ(hits.load(), 2);
    pool.run(0, fn);
    EXPECT_EQ(hits.load(), 2);
}

TEST(TickPool, ShutdownWithoutAnyDispatch)
{
    // Destructor must join workers that never saw an epoch.
    TickPool pool(4);
}

TEST(TickPool, ShutdownAfterWorkersWentToSleep)
{
    TickPool pool(2);
    std::atomic<int> hits{0};
    auto fn = [&](int) { hits.fetch_add(1); };
    pool.run(4, fn);
    EXPECT_EQ(hits.load(), 4);
    // Let the workers exhaust their spin budget and block on the
    // condition variable before the destructor runs.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

TEST(TickPool, ResolveTickThreadsClampsAndBudgets)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    // Malformed requests clamp to 1.
    EXPECT_EQ(TickPool::resolveTickThreads(0, 1), 1);
    EXPECT_EQ(TickPool::resolveTickThreads(-3, 1), 1);
    // A lone run gets what it asked for (up to the machine).
    EXPECT_EQ(TickPool::resolveTickThreads(1, 1), 1);
    EXPECT_EQ(TickPool::resolveTickThreads(2, 1),
              std::min(2, static_cast<int>(hw)));
    // Under a saturating sweep the budget collapses to one core per
    // job, never below 1.
    EXPECT_EQ(TickPool::resolveTickThreads(8, hw), 1);
    EXPECT_EQ(TickPool::resolveTickThreads(8, 4 * hw), 1);
    // jobs x threads never exceeds the machine.
    for (unsigned jobs = 1; jobs <= hw; ++jobs) {
        const int granted = TickPool::resolveTickThreads(8, jobs);
        EXPECT_LE(jobs * static_cast<unsigned>(granted), hw);
    }
}

} // namespace
} // namespace hrsim
