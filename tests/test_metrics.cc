/**
 * @file
 * Observability-layer tests (src/obs/).
 *
 * Pins the four contracts the layer advertises:
 *  1. Registry hygiene — duplicate or malformed metric names are
 *     rejected at registration (ConfigError), not shadowed.
 *  2. Serialization fidelity — a run serialized to JSON parses back
 *     to the exact RunResult values (counters exactly, gauges
 *     bit-for-bit through %.17g), and the CSV sink carries the same
 *     rows; both artifacts embed the manifest.
 *  3. Sweep determinism — per-point metric samples are identical
 *     between a serial (jobs = 1) and a parallel (jobs = 4) sweep.
 *  4. Tracer passivity — attaching a FlitTracer changes no metric of
 *     the run, while (when hooks are compiled in) logging
 *     inject/hop/eject events.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/log.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "obs/flit_trace.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/metric_registry.hh"
#include "obs/metric_sink.hh"

namespace hrsim
{
namespace
{

SimConfig
quickSim()
{
    SimConfig sim;
    sim.warmupCycles = 1000;
    sim.batchCycles = 1000;
    sim.numBatches = 3;
    return sim;
}

SystemConfig
smallRing()
{
    SystemConfig cfg = SystemConfig::ring("2:4", 32);
    cfg.workload.outstandingT = 4;
    cfg.sim = quickSim();
    return cfg;
}

TEST(MetricRegistry, RejectsDuplicateNames)
{
    MetricRegistry registry;
    std::uint64_t value = 0;
    registry.addCounter("a.count", &value);
    EXPECT_THROW(registry.addCounter("a.count", &value), ConfigError);
    EXPECT_THROW(registry.addGauge("a.count", []() { return 0.0; }),
                 ConfigError);
}

TEST(MetricRegistry, RejectsInvalidNames)
{
    MetricRegistry registry;
    EXPECT_THROW(registry.addGauge("", []() { return 0.0; }),
                 ConfigError);
    EXPECT_THROW(registry.addGauge("Nope", []() { return 0.0; }),
                 ConfigError);
    EXPECT_THROW(registry.addGauge("has space", []() { return 0.0; }),
                 ConfigError);
    EXPECT_TRUE(MetricRegistry::validName("ring.l0.iri3.wait_cycles"));
    EXPECT_FALSE(MetricRegistry::validName("ring.l0,util"));
}

TEST(MetricRegistry, SnapshotIsSortedByName)
{
    MetricRegistry registry;
    registry.addGauge("z.last", []() { return 1.0; });
    registry.addGauge("a.first", []() { return 2.0; });
    registry.addCounter("m.middle", []() { return 3ull; });
    const std::vector<MetricSample> snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a.first");
    EXPECT_EQ(snap[1].name, "m.middle");
    EXPECT_EQ(snap[2].name, "z.last");
    EXPECT_EQ(snap[1].kind, MetricKind::Counter);
    EXPECT_EQ(snap[1].count, 3u);
}

TEST(MetricSink, JsonRoundTripsARingRun)
{
    const SystemConfig cfg = smallRing();
    RunResult result;
    {
        System system(cfg);
        result = system.run();
    }
    ASSERT_FALSE(result.metrics.empty());

    std::ostringstream out;
    writeMetricsJson(out, makeManifest(cfg, 1, 0.5, 1000.0),
                     {metricPoint("ring 2:4", result)});
    const JsonValue doc = JsonValue::parse(out.str());

    ASSERT_TRUE(doc.isObject());
    const JsonValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "hrsim-metrics-v1");

    const JsonValue *manifest = doc.find("manifest");
    ASSERT_NE(manifest, nullptr);
    EXPECT_EQ(manifest->find("config")->str, configKey(cfg));
    EXPECT_EQ(manifest->find("seed")->lexeme,
              std::to_string(cfg.sim.seed));

    const JsonValue *points = doc.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->items.size(), 1u);
    const JsonValue &point = points->items[0];
    EXPECT_EQ(point.find("label")->str, "ring 2:4");
    EXPECT_EQ(point.find("end_cycle")->number,
              static_cast<double>(result.cycles));

    const JsonValue *metrics = point.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->members.size(), result.metrics.size());
    for (std::size_t i = 0; i < result.metrics.size(); ++i) {
        const MetricSample &sample = result.metrics[i];
        const auto &[name, value] = metrics->members[i];
        EXPECT_EQ(name, sample.name);
        ASSERT_TRUE(value.isNumber()) << name;
        if (sample.kind == MetricKind::Counter) {
            // Counters serialize as bare integers and must survive
            // exactly (checked on the lexeme, so > 2^53 also works).
            EXPECT_TRUE(value.isInteger()) << name;
            EXPECT_EQ(value.lexeme, std::to_string(sample.count))
                << name;
        } else {
            // %.17g guarantees bit-exact double round-trips.
            EXPECT_EQ(value.number, sample.value) << name;
        }
    }
}

TEST(MetricSink, CsvCarriesManifestAndEverySample)
{
    const SystemConfig cfg = smallRing();
    RunResult result;
    {
        System system(cfg);
        result = system.run();
    }

    std::ostringstream out;
    writeMetricsCsv(out, makeManifest(cfg, 1, 0.5, 1000.0),
                    {metricPoint("ring 2:4", result)});
    const std::string text = out.str();

    EXPECT_NE(text.find("# schema=hrsim-metrics-v1"),
              std::string::npos);
    EXPECT_NE(text.find("# config=" + configKey(cfg)),
              std::string::npos);
    EXPECT_NE(text.find("label,cycle,metric,kind,value"),
              std::string::npos);

    // One data row per metric sample (plus manifest + header lines).
    std::size_t rows = 0;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("ring 2:4,", 0) == 0)
            ++rows;
    }
    EXPECT_EQ(rows, result.metrics.size());
}

TEST(MetricSink, PeriodicSnapshotsAreRecordedAndSerialized)
{
    SystemConfig cfg = smallRing();
    cfg.sim.metricsEvery = 1000;
    RunResult result;
    {
        System system(cfg);
        result = system.run();
    }
    // Horizon is 4000 cycles; snapshots at 1000/2000/3000 (the final
    // materialization at 4000 is RunResult::metrics).
    ASSERT_EQ(result.snapshots.size(), 3u);
    EXPECT_EQ(result.snapshots[0].cycle, 1000u);
    EXPECT_EQ(result.snapshots[2].cycle, 3000u);
    for (const MetricSnapshot &snap : result.snapshots)
        EXPECT_EQ(snap.metrics.size(), result.metrics.size());

    std::ostringstream out;
    writeMetricsJson(out, makeManifest(cfg, 1, 0.5, 1000.0),
                     {metricPoint("ring 2:4", result)});
    const JsonValue doc = JsonValue::parse(out.str());
    const JsonValue *snaps = doc.find("points")->items[0].find(
        "snapshots");
    ASSERT_NE(snaps, nullptr);
    ASSERT_EQ(snaps->items.size(), 3u);
    EXPECT_EQ(snaps->items[1].find("cycle")->number, 2000.0);
}

TEST(MetricSink, SnapshotsDoNotPerturbTheRun)
{
    SystemConfig plain = smallRing();
    SystemConfig snapped = smallRing();
    snapped.sim.metricsEvery = 500;
    RunResult a = runSystem(plain);
    RunResult b = runSystem(snapped);
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (std::size_t i = 0; i < a.metrics.size(); ++i)
        EXPECT_EQ(a.metrics[i], b.metrics[i]) << a.metrics[i].name;
}

TEST(SweepMetrics, SerialAndParallelAreBitIdentical)
{
    std::vector<SystemConfig> points;
    points.push_back(smallRing());
    SystemConfig mesh = SystemConfig::mesh(3, 64, 4);
    mesh.workload.outstandingT = 4;
    mesh.sim = quickSim();
    points.push_back(mesh);
    SystemConfig slotted = smallRing();
    slotted.ringSlotted = true;
    points.push_back(slotted);

    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    SweepOptions parallel_opts;
    parallel_opts.jobs = 4;
    SweepRunner serial{serial_opts};
    SweepRunner parallel{parallel_opts};
    const std::vector<RunResult> a = serial.run(points);
    const std::vector<RunResult> b = parallel.run(points);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        ASSERT_EQ(a[p].metrics.size(), b[p].metrics.size());
        for (std::size_t i = 0; i < a[p].metrics.size(); ++i) {
            EXPECT_EQ(a[p].metrics[i], b[p].metrics[i])
                << "point " << p << " metric "
                << a[p].metrics[i].name;
        }
    }
}

TEST(FlitTracer, TracingDoesNotChangeResults)
{
    const SystemConfig cfg = smallRing();
    RunResult plain;
    {
        System system(cfg);
        plain = system.run();
    }

    std::ostringstream trace;
    RunResult traced;
    std::uint64_t events = 0;
    {
        System system(cfg);
        FlitTracer tracer(trace);
        system.setTracer(&tracer);
        traced = system.run();
        events = tracer.events();
    }

    EXPECT_EQ(plain.avgLatency, traced.avgLatency);
    EXPECT_EQ(plain.samples, traced.samples);
    ASSERT_EQ(plain.metrics.size(), traced.metrics.size());
    for (std::size_t i = 0; i < plain.metrics.size(); ++i)
        EXPECT_EQ(plain.metrics[i], traced.metrics[i])
            << plain.metrics[i].name;

    if (FlitTracer::compiledIn()) {
        EXPECT_GT(events, 0u);
        // Every line is "<cycle> inject|hop|eject pkt=... node=...".
        std::istringstream lines(trace.str());
        std::string cycle, kind, rest;
        std::size_t parsed = 0;
        while (lines >> cycle >> kind && std::getline(lines, rest)) {
            EXPECT_TRUE(kind == "inject" || kind == "hop" ||
                        kind == "eject")
                << kind;
            ++parsed;
        }
        EXPECT_EQ(parsed, events);
    } else {
        EXPECT_EQ(events, 0u);
        EXPECT_TRUE(trace.str().empty());
    }
}

TEST(FlitTracer, MeshTracingDoesNotChangeResults)
{
    SystemConfig cfg = SystemConfig::mesh(3, 32, 4);
    cfg.workload.outstandingT = 4;
    cfg.sim = quickSim();

    RunResult plain;
    {
        System system(cfg);
        plain = system.run();
    }
    std::ostringstream trace;
    RunResult traced;
    {
        System system(cfg);
        FlitTracer tracer(trace);
        system.setTracer(&tracer);
        traced = system.run();
    }
    ASSERT_EQ(plain.metrics.size(), traced.metrics.size());
    for (std::size_t i = 0; i < plain.metrics.size(); ++i)
        EXPECT_EQ(plain.metrics[i], traced.metrics[i])
            << plain.metrics[i].name;
}

TEST(Manifest, ConfigKeyIsStableAndHashable)
{
    const SystemConfig a = smallRing();
    const SystemConfig b = smallRing();
    EXPECT_EQ(configKey(a), configKey(b));

    SystemConfig c = smallRing();
    c.sim.seed += 1;
    EXPECT_NE(configKey(a), configKey(c));

    const RunManifest manifest = makeManifest(a, 4, 2.0, 1.0e6);
    EXPECT_EQ(manifest.schema, "hrsim-metrics-v1");
    EXPECT_EQ(manifest.jobs, 4u);
    EXPECT_EQ(manifest.configHash.substr(0, 2), "0x");
    EXPECT_EQ(manifest.configHash.size(), 18u);
    EXPECT_DOUBLE_EQ(manifest.nodeCyclesPerSec, 5.0e5);
}

TEST(Manifest, RestoredFromIsSchemaGated)
{
    // Cold start: no restored_from anywhere — pre-checkpoint
    // artifacts must keep their exact byte layout.
    const SystemConfig cold = smallRing();
    std::ostringstream cold_json;
    writeMetricsJson(cold_json, makeManifest(cold, 1, 0.5, 1000.0),
                     {});
    EXPECT_EQ(cold_json.str().find("restored_from"),
              std::string::npos);

    SystemConfig warm = smallRing();
    warm.ckpt.restorePath = "/runs/warmup.ckpt";
    const RunManifest manifest = makeManifest(warm, 1, 0.5, 1000.0);
    EXPECT_EQ(manifest.restoredFrom, "/runs/warmup.ckpt");

    std::ostringstream json;
    writeMetricsJson(json, manifest, {});
    const JsonValue doc = JsonValue::parse(json.str());
    const JsonValue *restored =
        doc.find("manifest")->find("restored_from");
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->str, "/runs/warmup.ckpt");

    std::ostringstream csv;
    writeMetricsCsv(csv, manifest, {});
    EXPECT_NE(csv.str().find("# restored_from=/runs/warmup.ckpt"),
              std::string::npos);
}

TEST(Manifest, SystemMetricNamesAreRegistered)
{
    const SystemConfig cfg = smallRing();
    System system(cfg);
    const MetricRegistry &registry = system.metrics();
    EXPECT_TRUE(registry.has("workload.remote_completed"));
    EXPECT_TRUE(registry.has("latency.avg"));
    EXPECT_TRUE(registry.has("latency.p99"));
    EXPECT_TRUE(registry.has("net.util"));
    EXPECT_TRUE(registry.has("throughput.per_pm"));
    EXPECT_TRUE(registry.has("ring.l0.util"));
    EXPECT_TRUE(registry.has("ring.l1.util"));
    EXPECT_TRUE(registry.has("ring.wait_cycles"));
    EXPECT_TRUE(registry.has("ring.nic0.flits"));
    EXPECT_FALSE(registry.has("mesh.util"));

    SystemConfig mesh_cfg = SystemConfig::mesh(2, 32, 4);
    mesh_cfg.sim = quickSim();
    System mesh_system(mesh_cfg);
    EXPECT_TRUE(mesh_system.metrics().has("mesh.util"));
    EXPECT_TRUE(mesh_system.metrics().has("mesh.r3.flits"));
}

} // namespace
} // namespace hrsim
