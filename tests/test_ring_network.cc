/**
 * @file
 * Behavioral tests for the hierarchical ring network: hand-traced
 * zero-load latencies, hierarchical routing, transit priority,
 * wormhole integrity and the double-speed global ring.
 */

#include <gtest/gtest.h>

#include <vector>

#include "proto/packet_factory.hh"
#include "ring/ring_network.hh"

namespace hrsim
{
namespace
{

struct Delivery
{
    Packet pkt;
    Cycle when;
};

class RingHarness
{
  public:
    explicit RingHarness(const std::string &topo,
                         std::uint32_t line_bytes = 32,
                         std::uint32_t global_speed = 1,
                         bool bypass = true)
        : net_(makeParams(topo, line_bytes, global_speed, bypass)),
          factory_(ChannelSpec::ring(), line_bytes)
    {
        net_.setDeliveryHandler([this](const Packet &pkt, Cycle now) {
            deliveries_.push_back({pkt, now});
        });
    }

    static RingNetwork::Params
    makeParams(const std::string &topo, std::uint32_t line_bytes,
               std::uint32_t global_speed, bool bypass)
    {
        RingNetwork::Params params;
        params.topo = RingTopology::parse(topo);
        params.cacheLineBytes = line_bytes;
        params.globalRingSpeed = global_speed;
        params.nicBypass = bypass;
        return params;
    }

    Packet
    sendRead(NodeId src, NodeId dst)
    {
        const Packet pkt = factory_.makeRequest(src, dst, true, now_);
        EXPECT_TRUE(net_.canInject(src, pkt));
        net_.inject(src, pkt);
        return pkt;
    }

    Packet
    sendWrite(NodeId src, NodeId dst)
    {
        const Packet pkt = factory_.makeRequest(src, dst, false, now_);
        EXPECT_TRUE(net_.canInject(src, pkt));
        net_.inject(src, pkt);
        return pkt;
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i)
            net_.tick(now_++);
    }

    /** Run until @a count deliveries or @a limit cycles. */
    void
    runUntilDelivered(std::size_t count, Cycle limit = 10000)
    {
        while (deliveries_.size() < count && now_ < limit)
            net_.tick(now_++);
        ASSERT_GE(deliveries_.size(), count)
            << "undelivered after " << limit << " cycles";
    }

    RingNetwork net_;
    PacketFactory factory_;
    std::vector<Delivery> deliveries_;
    Cycle now_ = 0;
};

TEST(RingNetwork, AdjacentSingleFlitLatency)
{
    // One-flit read request between ring neighbors: injected before
    // cycle 0, transmitted in cycle 1, sunk in cycle 2.
    RingHarness h("2");
    h.sendRead(0, 1);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].when, 2u);
    EXPECT_EQ(h.deliveries_[0].pkt.dst, 1);
}

TEST(RingNetwork, ZeroLoadLatencyIsSizePlusDistance)
{
    // Single ring: delivery cycle = packet flits + forward distance.
    for (const int dst : {1, 2, 3}) {
        RingHarness h("4");
        h.sendRead(0, static_cast<NodeId>(dst));
        h.runUntilDelivered(1);
        EXPECT_EQ(h.deliveries_[0].when,
                  static_cast<Cycle>(1 + dst))
            << "dst " << dst;
    }
}

TEST(RingNetwork, WritePacketCarriesTheLine)
{
    // 32 B line -> 3-flit write request; adjacent: 3 + 1 cycles.
    RingHarness h("4", 32);
    h.sendWrite(0, 1);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].when, 4u);
}

TEST(RingNetwork, UnidirectionalWrapsAround)
{
    // dst "behind" the source must travel the long way: distance 3
    // on a 4-ring from 1 to 0.
    RingHarness h("4");
    h.sendRead(1, 0);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].when, 4u); // 1 flit + 3 hops
}

TEST(RingNetwork, TwoLevelCrossRingLatency)
{
    // "2:2": NIC0,NIC1,IRI on each leaf. 0 -> 2 crosses both IRIs:
    // 4 links + 2 queue passes + 1 flit = 7 cycles.
    RingHarness h("2:2");
    h.sendRead(0, 2);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].when, 7u);
}

TEST(RingNetwork, SameLeafTrafficStaysLocal)
{
    RingHarness h("2:2");
    h.sendRead(0, 1);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].when, 2u); // never leaves the leaf
    // The global ring carried nothing: check via utilization.
}

TEST(RingNetwork, ThreeLevelRoutingDelivers)
{
    RingHarness h("2:2:2");
    h.sendRead(0, 7); // opposite corner of the hierarchy
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_[0].pkt.dst, 7);
    // Path: 0->1->IRI(leaf) [2 links], up [1], mid ring link(s),
    // up [1], global, down... just require it beat a generous bound.
    EXPECT_LE(h.deliveries_[0].when, 20u);
}

TEST(RingNetwork, AllPairsDeliverExactlyOnce)
{
    RingHarness h("2:3");
    const int pms = h.net_.numProcessors();
    int sent = 0;
    for (NodeId src = 0; src < pms; ++src) {
        for (NodeId dst = 0; dst < pms; ++dst) {
            if (src == dst)
                continue;
            RingHarness single("2:3");
            single.sendRead(src, dst);
            single.runUntilDelivered(1);
            EXPECT_EQ(single.deliveries_[0].pkt.dst, dst);
            EXPECT_EQ(single.deliveries_[0].pkt.src, src);
            ++sent;
        }
    }
    EXPECT_EQ(sent, pms * (pms - 1));
}

TEST(RingNetwork, TransitHasPriorityOverInjection)
{
    // NIC1 wants to inject a long write while a transit worm from
    // NIC0 passes through. The transit worm (sent first) must not be
    // delayed by the injection: its latency equals the zero-load
    // value, and the injected worm finishes later.
    RingHarness h("4", 128); // 9-flit data packets
    h.sendWrite(0, 2);       // transit through NIC1
    h.run(1);                // keep NIC1's queue empty this cycle
    h.sendWrite(1, 2);       // becomes visible as the worm arrives
    h.runUntilDelivered(2);

    Cycle transit_done = 0;
    Cycle injected_done = 0;
    for (const auto &d : h.deliveries_) {
        if (d.pkt.src == 0)
            transit_done = d.when;
        else
            injected_done = d.when;
    }
    EXPECT_EQ(transit_done, 9u + 2u); // zero-load: unaffected
    EXPECT_GT(injected_done, transit_done);
}

TEST(RingNetwork, WormsDoNotInterleaveAtTheSink)
{
    // Two long worms from different sources to the same sink: both
    // arrive complete (delivery implies the tail followed its head
    // through a single contiguous stream).
    RingHarness h("6", 128);
    h.sendWrite(0, 3);
    h.sendWrite(1, 3);
    h.sendWrite(2, 3);
    h.runUntilDelivered(3);
    EXPECT_EQ(h.deliveries_.size(), 3u);
    for (const auto &d : h.deliveries_)
        EXPECT_EQ(d.pkt.dst, 3);
}

TEST(RingNetwork, NoBypassAddsABufferPass)
{
    RingHarness fast("4", 32, 1, /*bypass=*/true);
    RingHarness slow("4", 32, 1, /*bypass=*/false);
    fast.sendRead(0, 3);
    slow.sendRead(0, 3);
    fast.runUntilDelivered(1);
    slow.runUntilDelivered(1);
    // Without the bypass every intermediate NIC (2 of them) adds one
    // ring-buffer pass.
    EXPECT_EQ(fast.deliveries_[0].when, 4u);
    EXPECT_EQ(slow.deliveries_[0].when, 6u);
}

TEST(RingNetwork, DoubleSpeedGlobalRingIsNotSlower)
{
    RingHarness normal("2:2", 32, 1);
    RingHarness fast("2:2", 32, 2);
    normal.sendRead(0, 2);
    fast.sendRead(0, 2);
    normal.runUntilDelivered(1);
    fast.runUntilDelivered(1);
    EXPECT_LE(fast.deliveries_[0].when, normal.deliveries_[0].when);
}

TEST(RingNetwork, FlitsInFlightDrainsToZero)
{
    RingHarness h("2:3", 64);
    h.sendWrite(0, 5);
    h.sendRead(3, 1);
    h.runUntilDelivered(2);
    h.run(5);
    EXPECT_EQ(h.net_.flitsInFlight(), 0u);
}

TEST(RingNetwork, InjectionBackpressureIsVisible)
{
    // The request output queue holds exactly one cache-line packet.
    RingHarness h("4", 32);
    const Packet w1 = h.factory_.makeRequest(0, 1, false, 0);
    ASSERT_TRUE(h.net_.canInject(0, w1));
    h.net_.inject(0, w1);
    const Packet w2 = h.factory_.makeRequest(0, 1, false, 0);
    EXPECT_FALSE(h.net_.canInject(0, w2)); // queue full this cycle
    // A response still fits: split request/response queues.
    Packet fake_req = h.factory_.makeRequest(1, 0, true, 0);
    std::swap(fake_req.src, fake_req.dst);
    const Packet resp = h.factory_.makeResponse(fake_req);
    EXPECT_TRUE(h.net_.canInject(0, resp));
}

TEST(RingNetwork, UtilizationTracksGlobalTraffic)
{
    RingHarness h("2:2");
    h.net_.utilization().startMeasurement(0);
    h.sendRead(0, 2);
    h.sendRead(2, 0);
    h.runUntilDelivered(2);
    h.net_.utilization().stopMeasurement(h.now_);
    EXPECT_GT(h.net_.levelUtilization(0), 0.0);
    EXPECT_GT(h.net_.levelUtilization(1), 0.0);
}

TEST(RingNetwork, LocalTrafficLeavesGlobalRingIdle)
{
    RingHarness h("2:2");
    h.net_.utilization().startMeasurement(0);
    h.sendRead(0, 1);
    h.sendRead(2, 3);
    h.runUntilDelivered(2);
    h.net_.utilization().stopMeasurement(h.now_);
    EXPECT_EQ(h.net_.levelUtilization(0), 0.0);
    EXPECT_GT(h.net_.levelUtilization(1), 0.0);
}

TEST(RingNetwork, RejectsBadSpeed)
{
    RingNetwork::Params params;
    params.topo = RingTopology::parse("4");
    params.globalRingSpeed = 0;
    EXPECT_THROW(RingNetwork net(params), ConfigError);
}

} // namespace
} // namespace hrsim
