/**
 * @file
 * Unit tests for the deterministic RNG streams.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace hrsim
{
namespace
{

TEST(Rng, SameSeedSameStreamIsReproducible)
{
    Rng a(42, 7);
    Rng b(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(42, 0);
    Rng b(42, 1);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1, 0);
    Rng b(2, 0);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(123);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(99);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    // Standard error ~ 1/sqrt(12 n) ~ 0.0009; allow 5 sigma.
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntIsUnbiased)
{
    // Chi-square-ish check over 16 buckets.
    Rng rng(5);
    const int buckets = 16;
    const int n = 160000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(buckets)];
    const double expected = static_cast<double>(n) / buckets;
    for (const int count : counts) {
        // 5 sigma of a binomial with p = 1/16.
        EXPECT_NEAR(count, expected, 5.0 * std::sqrt(expected));
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(3);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.04))
            ++hits;
    }
    // Mean 4000, sigma ~62; allow 5 sigma.
    EXPECT_NEAR(hits, 4000, 310);
}

TEST(Rng, BernoulliDegenerateCases)
{
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, SplitmixAdvancesState)
{
    std::uint64_t state = 0;
    const std::uint64_t a = splitmix64(state);
    const std::uint64_t b = splitmix64(state);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace hrsim
