/**
 * @file
 * Unit tests for RunningStats, BatchMeans and UtilizationTracker.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/log.hh"
#include "stats/batch_means.hh"
#include "stats/running_stats.hh"
#include "stats/utilization.hh"

namespace hrsim
{
namespace
{

// ---------------------------------------------------------------- //
// RunningStats

TEST(RunningStats, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_EQ(stats.sum(), 0.0);
}

TEST(RunningStats, HandComputedMoments)
{
    RunningStats stats;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Population variance is 4; sample variance is 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceIsZero)
{
    RunningStats stats;
    stats.add(3.5);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 3.5);
    EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats a;
    RunningStats b;
    RunningStats all;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats stats;
    stats.add(5.0);
    stats.reset();
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
}

// ---------------------------------------------------------------- //
// BatchMeans

TEST(BatchMeans, WarmupSamplesAreDiscarded)
{
    BatchMeans bm(100, 50, 2);
    bm.add(0, 1000.0);
    bm.add(99, 1000.0);
    EXPECT_EQ(bm.sampleCount(), 0u);
    bm.add(100, 10.0);
    EXPECT_EQ(bm.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(bm.mean(), 10.0);
}

TEST(BatchMeans, SamplesBeyondWindowAreIgnored)
{
    BatchMeans bm(100, 50, 2);
    EXPECT_EQ(bm.endCycle(), 200u);
    bm.add(200, 42.0);
    bm.add(5000, 42.0);
    EXPECT_EQ(bm.sampleCount(), 0u);
    EXPECT_TRUE(bm.done(200));
    EXPECT_FALSE(bm.done(199));
}

TEST(BatchMeans, BatchAssignment)
{
    BatchMeans bm(10, 10, 3);
    bm.add(10, 1.0); // batch 0
    bm.add(19, 3.0); // batch 0
    bm.add(20, 5.0); // batch 1
    bm.add(39, 7.0); // batch 2
    EXPECT_DOUBLE_EQ(bm.batchMean(0), 2.0);
    EXPECT_DOUBLE_EQ(bm.batchMean(1), 5.0);
    EXPECT_DOUBLE_EQ(bm.batchMean(2), 7.0);
    EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
}

TEST(BatchMeans, HalfWidthZeroForIdenticalBatches)
{
    BatchMeans bm(0, 10, 4);
    for (Cycle c = 0; c < 40; ++c)
        bm.add(c, 5.0);
    EXPECT_DOUBLE_EQ(bm.halfWidth95(), 0.0);
    EXPECT_DOUBLE_EQ(bm.mean(), 5.0);
}

TEST(BatchMeans, HalfWidthFromBatchVariance)
{
    BatchMeans bm(0, 10, 2);
    bm.add(5, 4.0);  // batch 0 mean 4
    bm.add(15, 6.0); // batch 1 mean 6
    // sd of means = sqrt(2), se = 1, hw = 1.96.
    EXPECT_NEAR(bm.halfWidth95(), 1.96, 1e-9);
}

TEST(BatchMeans, RejectsDegenerateConfig)
{
    EXPECT_THROW(BatchMeans(0, 0, 3), ConfigError);
    EXPECT_THROW(BatchMeans(0, 10, 0), ConfigError);
}

// ---------------------------------------------------------------- //
// UtilizationTracker

TEST(Utilization, FullyBusyLinkIsOne)
{
    UtilizationTracker util;
    const auto g = util.group("ring");
    const auto link = util.addLink(g);
    util.startMeasurement(0);
    for (Cycle c = 0; c < 10; ++c)
        util.recordTransfer(link);
    util.stopMeasurement(10);
    EXPECT_DOUBLE_EQ(util.groupUtilization(g), 1.0);
    EXPECT_DOUBLE_EQ(util.totalUtilization(), 1.0);
}

TEST(Utilization, GroupsAreIndependent)
{
    UtilizationTracker util;
    const auto ga = util.group("a");
    const auto gb = util.group("b");
    const auto la = util.addLink(ga);
    util.addLink(gb);
    util.startMeasurement(0);
    for (int i = 0; i < 5; ++i)
        util.recordTransfer(la);
    util.stopMeasurement(10);
    EXPECT_DOUBLE_EQ(util.groupUtilization(ga), 0.5);
    EXPECT_DOUBLE_EQ(util.groupUtilization(gb), 0.0);
    EXPECT_DOUBLE_EQ(util.totalUtilization(), 0.25);
}

TEST(Utilization, GroupLookupByNameIsIdempotent)
{
    UtilizationTracker util;
    const auto a = util.group("x");
    const auto b = util.group("x");
    EXPECT_EQ(a, b);
    EXPECT_EQ(util.numGroups(), 1u);
    EXPECT_EQ(util.groupName(a), "x");
}

TEST(Utilization, SpeedFactorRaisesCapacity)
{
    UtilizationTracker util;
    const auto g = util.group("global");
    const auto link = util.addLink(g, 2);
    util.startMeasurement(0);
    for (int i = 0; i < 10; ++i)
        util.recordTransfer(link); // one flit per cycle on a 2x link
    util.stopMeasurement(10);
    EXPECT_DOUBLE_EQ(util.groupUtilization(g), 0.5);
}

TEST(Utilization, TransfersOutsideWindowIgnored)
{
    UtilizationTracker util;
    const auto g = util.group("ring");
    const auto link = util.addLink(g);
    util.recordTransfer(link); // before the window opens
    util.startMeasurement(100);
    util.recordTransfer(link);
    util.stopMeasurement(110);
    EXPECT_DOUBLE_EQ(util.groupUtilization(g), 0.1);
}

TEST(Utilization, EmptyGroupReportsZero)
{
    UtilizationTracker util;
    const auto g = util.group("empty");
    util.startMeasurement(0);
    util.stopMeasurement(10);
    EXPECT_DOUBLE_EQ(util.groupUtilization(g), 0.0);
}

} // namespace
} // namespace hrsim
