/**
 * @file
 * Active-set scheduler tests: ActiveSet container semantics, and the
 * bit-identity contract between the optimized tick paths and their
 * oracles — the active-set scheduler vs the full scan
 * (HRSIM_FORCE_FULL_SCAN=1), the worm-streaming fast path vs the
 * legacy transmit loops (HRSIM_NO_FASTPATH=1), and the columnar tick
 * engine vs the legacy per-node layout (HRSIM_NO_COLUMNAR=1) —
 * across network kinds, clock speeds, workloads and observability
 * settings. The
 * full RunResult is compared — counters, latency statistics, the
 * materialized metric registry and mid-run snapshots — with only the
 * mode-gated metrics (sched.*, *.streamed_flits, which exist only
 * when their mode is on) excluded. See DESIGN.md sections 10 and 12
 * for the invariants under test.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "core/system.hh"
#include "sim/active_set.hh"
#include "sim/columns.hh"
#include "workload/trace.hh"

namespace hrsim
{
namespace
{

// ---------------------------------------------------------------- //
// ActiveSet container semantics

TEST(ActiveSet, AddIsIdempotentAndContainsTracksMembership)
{
    ActiveSet set;
    set.reset(8);
    EXPECT_TRUE(set.empty());

    set.add(3);
    set.add(5);
    set.add(3); // duplicate: no growth
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(3));
    EXPECT_TRUE(set.contains(5));
    EXPECT_FALSE(set.contains(0));
}

TEST(ActiveSet, OrderedSortsOutOfOrderWakes)
{
    ActiveSet set;
    set.reset(10);
    for (const std::uint32_t id : {7u, 2u, 9u, 0u, 4u})
        set.add(id);
    EXPECT_EQ(set.ordered(),
              (std::vector<std::uint32_t>{0, 2, 4, 7, 9}));
}

TEST(ActiveSet, OrderedPrefixIsStableUnderMidIterationWakes)
{
    ActiveSet set;
    set.reset(16);
    for (const std::uint32_t id : {6u, 1u, 12u})
        set.add(id);

    const std::size_t prefix = set.orderedPrefix();
    ASSERT_EQ(prefix, 3u);
    // A wake arriving mid-iteration (as a flit handoff would cause)
    // must not disturb the already-sorted prefix.
    set.add(0);
    EXPECT_EQ(set.at(0), 1u);
    EXPECT_EQ(set.at(1), 6u);
    EXPECT_EQ(set.at(2), 12u);
    // ...but the raw list covers the newcomer, in wake order.
    EXPECT_EQ(set.raw(),
              (std::vector<std::uint32_t>{1, 6, 12, 0}));
}

TEST(ActiveSet, RetainPreservesOrderAndClearsMembership)
{
    ActiveSet set;
    set.reset(10);
    for (std::uint32_t id = 0; id < 10; ++id)
        set.add(id);

    set.retain([](std::uint32_t id) { return id % 2 == 1; });
    EXPECT_EQ(set.ordered(),
              (std::vector<std::uint32_t>{1, 3, 5, 7, 9}));
    EXPECT_FALSE(set.contains(4));

    // A slept member can wake again.
    set.add(4);
    EXPECT_TRUE(set.contains(4));
    EXPECT_EQ(set.ordered(),
              (std::vector<std::uint32_t>{1, 3, 4, 5, 7, 9}));
}

TEST(ActiveSet, ResetDropsEverything)
{
    ActiveSet set;
    set.reset(4);
    set.add(2);
    set.reset(4);
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.contains(2));
}

// ---------------------------------------------------------------- //
// Bit-identity: active-set scheduler vs full-scan oracle

/** Scoped HRSIM_FORCE_FULL_SCAN=1 (read at System construction). */
class ForceFullScan
{
  public:
    ForceFullScan() { setenv("HRSIM_FORCE_FULL_SCAN", "1", 1); }
    ~ForceFullScan() { unsetenv("HRSIM_FORCE_FULL_SCAN"); }
};

/** Scoped HRSIM_NO_FASTPATH=1 (read at System construction): the
 * legacy transmit/arbitration loops, the fast path's oracle. */
class DisableFastPath
{
  public:
    DisableFastPath() { setenv("HRSIM_NO_FASTPATH", "1", 1); }
    ~DisableFastPath() { unsetenv("HRSIM_NO_FASTPATH"); }
};

/** Scoped HRSIM_NO_COLUMNAR=1 (read at System construction): the
 * legacy per-node hot-state layout and ActiveSet tick loops, the
 * columnar engine's oracle. */
class DisableColumnar
{
  public:
    DisableColumnar() { setenv("HRSIM_NO_COLUMNAR", "1", 1); }
    ~DisableColumnar() { unsetenv("HRSIM_NO_COLUMNAR"); }
};

bool
isModeGatedMetric(const std::string &name)
{
    // sched.* and *.streamed_flits are registered only when their
    // scheduler mode / fast path is on, by design (so artifacts stay
    // byte-identical across modes); everything else must match.
    static const std::string kStreamed = ".streamed_flits";
    return name.rfind("sched.", 0) == 0 ||
           (name.size() >= kStreamed.size() &&
            name.compare(name.size() - kStreamed.size(),
                         kStreamed.size(), kStreamed) == 0);
}

std::vector<MetricSample>
withoutSchedMetrics(const std::vector<MetricSample> &metrics)
{
    std::vector<MetricSample> kept;
    kept.reserve(metrics.size());
    for (const MetricSample &sample : metrics) {
        if (!isModeGatedMetric(sample.name))
            kept.push_back(sample);
    }
    return kept;
}

/** Full RunResult equality, modulo the mode-gated metrics. */
void
expectSameResult(const RunResult &active, const RunResult &oracle)
{
    EXPECT_EQ(active.avgLatency, oracle.avgLatency);
    EXPECT_EQ(active.latencyCI95, oracle.latencyCI95);
    EXPECT_EQ(active.samples, oracle.samples);
    EXPECT_EQ(active.latencyP50, oracle.latencyP50);
    EXPECT_EQ(active.latencyP95, oracle.latencyP95);
    EXPECT_EQ(active.latencyP99, oracle.latencyP99);
    EXPECT_EQ(active.networkUtilization, oracle.networkUtilization);
    EXPECT_EQ(active.ringLevelUtilization,
              oracle.ringLevelUtilization);
    EXPECT_EQ(active.cycles, oracle.cycles);
    EXPECT_EQ(active.throughputPerPm, oracle.throughputPerPm);

    EXPECT_EQ(active.counters.missesGenerated,
              oracle.counters.missesGenerated);
    EXPECT_EQ(active.counters.remoteIssued,
              oracle.counters.remoteIssued);
    EXPECT_EQ(active.counters.remoteCompleted,
              oracle.counters.remoteCompleted);
    EXPECT_EQ(active.counters.localIssued,
              oracle.counters.localIssued);
    EXPECT_EQ(active.counters.localCompleted,
              oracle.counters.localCompleted);
    EXPECT_EQ(active.counters.blockedCycles,
              oracle.counters.blockedCycles);

    EXPECT_EQ(withoutSchedMetrics(active.metrics),
              withoutSchedMetrics(oracle.metrics));

    ASSERT_EQ(active.snapshots.size(), oracle.snapshots.size());
    for (std::size_t i = 0; i < active.snapshots.size(); ++i) {
        SCOPED_TRACE("snapshot " + std::to_string(i));
        EXPECT_EQ(active.snapshots[i].cycle,
                  oracle.snapshots[i].cycle);
        EXPECT_EQ(withoutSchedMetrics(active.snapshots[i].metrics),
                  withoutSchedMetrics(oracle.snapshots[i].metrics));
    }
}

SimConfig
shortSim()
{
    SimConfig sim;
    sim.warmupCycles = 800;
    sim.batchCycles = 800;
    sim.numBatches = 3;
    return sim;
}

/** Network/workload grid covering every scheduler specialization:
 *  ring (hierarchical, multi-level, double-speed global ring),
 *  slotted rings, meshes, cache-line sizes, low-rate (sleep/
 *  fast-forward heavy) and saturating (always-awake) workloads. */
std::vector<std::pair<std::string, SystemConfig>>
bitIdentityGrid()
{
    std::vector<std::pair<std::string, SystemConfig>> grid;
    const auto add = [&grid](std::string name, SystemConfig cfg) {
        cfg.sim.idleSkip = true;
        grid.emplace_back(std::move(name), cfg);
    };

    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    add("ring 2:4 low-C", cfg);

    cfg = SystemConfig::ring("4:4", 32);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    add("ring 4:4 saturating", cfg);

    cfg = SystemConfig::ring("2:2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.005;
    cfg.globalRingSpeed = 2;
    add("ring 2:2:4 speed-2", cfg);

    cfg = SystemConfig::ring("2:4", 128);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.02;
    add("ring 2:4 cl=128", cfg);

    cfg = SystemConfig::mesh(3, 64, 4);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    add("mesh 3 low-C", cfg);

    cfg = SystemConfig::mesh(4, 32, 1);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 2;
    add("mesh 4 1-flit buffers", cfg);

    cfg = SystemConfig::ring("2:4", 32);
    cfg.ringSlotted = true;
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.02;
    add("slotted 2:4", cfg);

    cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    cfg.sim.metricsEvery = 500;
    add("ring 2:4 metricsEvery=500", cfg);

    cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    cfg.sim.watchdogCycles = 50; // clamp every fast-forward jump
    add("ring 2:4 tiny watchdog", cfg);

    // Single-level rings (the Figure 6 family) idle often enough that
    // the network is regularly quiescent exactly AT the warmup cycle;
    // a fast-forward that jumps the boundary instead of landing on it
    // skips startMeasurement() and dies at stopMeasurement().
    cfg = SystemConfig::ring("4", 16);
    cfg.sim = shortSim();
    add("ring 4 single-level cl=16", cfg);

    cfg = SystemConfig::ring("8", 16);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    add("ring 8 single-level low-C", cfg);

    return grid;
}

TEST(ActiveSetScheduler, BitIdenticalToFullScanAcrossGrid)
{
    for (const auto &[name, cfg] : bitIdentityGrid()) {
        SCOPED_TRACE(name);
        const RunResult active = runSystem(cfg);
        RunResult oracle;
        {
            ForceFullScan scan;
            oracle = runSystem(cfg);
        }
        expectSameResult(active, oracle);
        EXPECT_GT(active.samples, 0u);
    }
}

TEST(ActiveSetScheduler, BitIdenticalOnTraceReplay)
{
    const Trace trace =
        Trace::synthesizeUniform(8, 2500, 0.015, 0.7, 17);
    SystemConfig cfg = SystemConfig::ring("2:4", 32);
    cfg.trace = &trace;
    cfg.sim = shortSim();

    const RunResult active = runSystem(cfg);
    RunResult oracle;
    {
        ForceFullScan scan;
        oracle = runSystem(cfg);
    }
    expectSameResult(active, oracle);
    EXPECT_GT(active.counters.missesGenerated, 0u);
}

TEST(ActiveSetScheduler, ParallelSweepMatchesFullScanOracle)
{
    // The sweep engine must stay bit-identical under worker-thread
    // parallelism with the active scheduler on; also exercised by the
    // ThreadSanitizer build, which would flag any cross-thread access
    // the scheduler introduced.
    std::vector<SystemConfig> points;
    for (auto &[name, cfg] : bitIdentityGrid()) {
        if (cfg.sim.metricsEvery == 0 &&
            cfg.sim.watchdogCycles == SimConfig{}.watchdogCycles) {
            points.push_back(cfg);
        }
    }
    ASSERT_GE(points.size(), 4u);

    const std::vector<RunResult> active = runSweep(points, 4);
    std::vector<RunResult> oracle;
    {
        ForceFullScan scan;
        oracle = runSweep(points, 4);
    }
    ASSERT_EQ(active.size(), oracle.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameResult(active[i], oracle[i]);
    }
}

// ---------------------------------------------------------------- //
// Bit-identity: worm-streaming fast path vs legacy loops

TEST(ActiveSetScheduler, FastPathBitIdenticalAcrossGrid)
{
    // Completes the mode cube: the grid test above already checks
    // (fast, active) == (fast, full-scan); here (fast, active) must
    // also equal (legacy, active) and (legacy, full-scan), so all
    // four {fast path on/off} x {active set on/off} cells agree.
    for (const auto &[name, cfg] : bitIdentityGrid()) {
        SCOPED_TRACE(name);
        const RunResult fast = runSystem(cfg);
        RunResult legacy;
        {
            DisableFastPath off;
            legacy = runSystem(cfg);
        }
        RunResult legacyOracle;
        {
            DisableFastPath off;
            ForceFullScan scan;
            legacyOracle = runSystem(cfg);
        }
        expectSameResult(fast, legacy);
        expectSameResult(fast, legacyOracle);
    }
}

TEST(ActiveSetScheduler, FastPathBitIdenticalOnParallelSweep)
{
    // The fast path must also hold under worker-thread parallelism
    // (each worker owns its System; the TSan CI stage re-runs this).
    std::vector<SystemConfig> points;
    for (auto &[name, cfg] : bitIdentityGrid()) {
        if (cfg.sim.metricsEvery == 0 &&
            cfg.sim.watchdogCycles == SimConfig{}.watchdogCycles) {
            points.push_back(cfg);
        }
    }
    ASSERT_GE(points.size(), 4u);

    const std::vector<RunResult> fast = runSweep(points, 4);
    std::vector<RunResult> legacy;
    {
        DisableFastPath off;
        legacy = runSweep(points, 4);
    }
    ASSERT_EQ(fast.size(), legacy.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameResult(fast[i], legacy[i]);
    }
}

// ---------------------------------------------------------------- //
// Bit-identity: columnar tick engine vs legacy per-node layout

TEST(ActiveSetScheduler, ColumnarBitIdenticalAcrossGrid)
{
    // Third axis of the mode cube. The tests above pin the four
    // {fast path} x {full scan} cells with the columnar engine on;
    // here the same grid must agree with all four cells of the
    // legacy-layout plane, so every one of the eight
    // {columnar} x {fast path} x {full scan} combinations produces
    // the same RunResult.
    for (const auto &[name, cfg] : bitIdentityGrid()) {
        SCOPED_TRACE(name);
        const RunResult columnar = runSystem(cfg);
        RunResult legacy;
        {
            DisableColumnar off;
            legacy = runSystem(cfg);
        }
        RunResult legacyNoFast;
        {
            DisableColumnar off;
            DisableFastPath slow;
            legacyNoFast = runSystem(cfg);
        }
        RunResult legacyFullScan;
        {
            DisableColumnar off;
            ForceFullScan scan;
            legacyFullScan = runSystem(cfg);
        }
        RunResult legacyAllOracles;
        {
            DisableColumnar off;
            DisableFastPath slow;
            ForceFullScan scan;
            legacyAllOracles = runSystem(cfg);
        }
        expectSameResult(columnar, legacy);
        expectSameResult(columnar, legacyNoFast);
        expectSameResult(columnar, legacyFullScan);
        expectSameResult(columnar, legacyAllOracles);
    }
}

TEST(ActiveSetScheduler, ColumnarBitIdenticalOnParallelSweep)
{
    // The layout axis crossed with --jobs: each sweep worker owns its
    // System (and therefore its own columns), so worker parallelism
    // must not perturb the layout comparison. The TSan CI stage
    // re-runs this against data races.
    std::vector<SystemConfig> points;
    for (auto &[name, cfg] : bitIdentityGrid()) {
        if (cfg.sim.metricsEvery == 0 &&
            cfg.sim.watchdogCycles == SimConfig{}.watchdogCycles) {
            points.push_back(cfg);
        }
    }
    ASSERT_GE(points.size(), 4u);

    const std::vector<RunResult> columnar = runSweep(points, 4);
    std::vector<RunResult> legacy;
    {
        DisableColumnar off;
        legacy = runSweep(points, 4);
    }
    ASSERT_EQ(columnar.size(), legacy.size());
    for (std::size_t i = 0; i < columnar.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameResult(columnar[i], legacy[i]);
    }
}

// ---------------------------------------------------------------- //
// ActiveMask layout smoke tests (run by the layout_smoke ctest)

TEST(LayoutSmoke, ScanVisitsMembersInAscendingIdOrder)
{
    // The columnar determinism argument (DESIGN.md section 14) leans
    // on forEach() visiting the live set in ascending id order no
    // matter the wake order; pin that across word and summary-word
    // boundaries (ids straddle leaves 0, 1 and 64).
    ActiveMask mask;
    mask.reset(64 * 65 + 7);
    const std::vector<std::uint32_t> wakes = {
        4099, 63, 64, 0, 4160, 127, 65, 4098};
    for (const std::uint32_t id : wakes)
        mask.add(id);
    EXPECT_EQ(mask.size(), wakes.size());

    std::vector<std::uint32_t> visited;
    mask.forEach([&visited](std::uint32_t id) {
        visited.push_back(id);
    });
    EXPECT_EQ(visited, (std::vector<std::uint32_t>{
                           0, 63, 64, 65, 127, 4098, 4099, 4160}));
}

TEST(LayoutSmoke, AddIsIdempotentAndContainsTracksMembership)
{
    ActiveMask mask;
    mask.reset(200);
    EXPECT_TRUE(mask.empty());
    mask.add(3);
    mask.add(130);
    mask.add(3);
    EXPECT_EQ(mask.size(), 2u);
    EXPECT_TRUE(mask.contains(3));
    EXPECT_TRUE(mask.contains(130));
    EXPECT_FALSE(mask.contains(4));
}

TEST(LayoutSmoke, RetainScansInIdOrderAndClearsBits)
{
    ActiveMask mask;
    mask.reset(300);
    for (std::uint32_t id = 0; id < 300; id += 7)
        mask.add(id);

    std::vector<std::uint32_t> seen;
    mask.retain([&seen](std::uint32_t id) {
        seen.push_back(id);
        return id % 14 == 0;
    });
    // The sweep itself runs ascending...
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_LT(seen[i - 1], seen[i]);
    // ...and only the kept members survive, still in order.
    std::vector<std::uint32_t> left;
    mask.forEach([&left](std::uint32_t id) { left.push_back(id); });
    std::vector<std::uint32_t> expect;
    for (std::uint32_t id = 0; id < 300; id += 14)
        expect.push_back(id);
    EXPECT_EQ(left, expect);
    EXPECT_EQ(mask.size(), expect.size());

    // A retained-away member can wake again (sleep is not permanent).
    EXPECT_FALSE(mask.contains(7));
    mask.add(7);
    EXPECT_TRUE(mask.contains(7));
}

TEST(LayoutSmoke, ResetDropsEverything)
{
    ActiveMask mask;
    mask.reset(70);
    mask.add(69);
    mask.reset(70);
    EXPECT_TRUE(mask.empty());
    EXPECT_FALSE(mask.contains(69));
}

TEST(LayoutSmoke, MidScanAddsFollowTheSnapshotRule)
{
    // forEach snapshots the summary word per 4096-id block and each
    // leaf word as it reaches it. A mid-scan wake is therefore
    // visited this pass iff its leaf word is still ahead of the scan
    // AND already represented in a snapshotted summary (i.e. the
    // word was live, or lies in a later summary block); wakes into
    // the current word or into a dead word under the current summary
    // snapshot defer to the next cycle. Every case is sound — a
    // woken component's visit is a no-op — but pin the behavior so a
    // rewrite can't silently change the determinism argument.
    ActiveMask mask;
    mask.reset(8192);
    mask.add(10);   // leaf word 0
    mask.add(200);  // leaf word 3 (live before the scan)
    mask.add(4100); // summary block 1

    std::vector<std::uint32_t> visited;
    mask.forEach([&](std::uint32_t id) {
        visited.push_back(id);
        if (id == 10) {
            mask.add(11);   // current word: next cycle
            mask.add(100);  // dead word, snapshotted summary: next
            mask.add(201);  // live later word: this pass
            mask.add(5000); // later summary block: this pass
        }
    });
    EXPECT_EQ(visited, (std::vector<std::uint32_t>{
                           10, 200, 201, 4100, 5000}));
    // Deferred wakes are still members for the next scan.
    EXPECT_TRUE(mask.contains(11));
    EXPECT_TRUE(mask.contains(100));
}

// ---------------------------------------------------------------- //
// Scheduler metrics

TEST(ActiveSetScheduler, ReportsSkippedCyclesOnIdleWorkload)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;

    const RunResult result = runSystem(cfg);
    bool found = false;
    for (const MetricSample &sample : result.metrics) {
        if (sample.name == "sched.skipped_cycles") {
            found = true;
            EXPECT_GT(sample.count, 0u)
                << "low-rate workload must fast-forward";
        }
    }
    EXPECT_TRUE(found);
}

TEST(ActiveSetScheduler, SchedMetricsAbsentUnderFullScan)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;

    ForceFullScan scan;
    const RunResult result = runSystem(cfg);
    for (const MetricSample &sample : result.metrics)
        EXPECT_NE(sample.name.rfind("sched.", 0), 0u)
            << "unexpected " << sample.name;
}

} // namespace
} // namespace hrsim
