/**
 * @file
 * Unit tests for hierarchy enumeration and the topology search.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/topology_search.hh"

namespace hrsim
{
namespace
{

TEST(EnumerateHierarchies, TwelveProcessors)
{
    const auto all = enumerateHierarchies(12);
    const std::set<std::string> got(all.begin(), all.end());
    const std::set<std::string> expected = {
        "12",    "2:6",   "2:2:3", "2:3:2", "3:4",  "3:2:2",
        "4:3",   "6:2",   "2:2:3", "3:2:2", "2:3:2",
    };
    EXPECT_EQ(got, expected);
}

TEST(EnumerateHierarchies, PrimeHasOnlySingleRing)
{
    const auto all = enumerateHierarchies(13);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], "13");
}

TEST(EnumerateHierarchies, RespectsMaxLevels)
{
    const auto two = enumerateHierarchies(16, 2);
    for (const auto &topo : two) {
        EXPECT_LE(std::count(topo.begin(), topo.end(), ':'), 1)
            << topo;
    }
    const auto four = enumerateHierarchies(16, 4);
    EXPECT_GT(four.size(), two.size());
    EXPECT_NE(std::find(four.begin(), four.end(), "2:2:2:2"),
              four.end());
}

TEST(EnumerateHierarchies, AllProductsMatch)
{
    for (const int p : {8, 24, 36}) {
        for (const auto &topo : enumerateHierarchies(p)) {
            EXPECT_EQ(RingTopology::parse(topo).numProcessors(), p)
                << topo;
        }
    }
}

TEST(RankHierarchies, PicksAHierarchyOverASaturatedSingleRing)
{
    // 24 processors with 128 B lines: the paper's Table 2 says a
    // single ring is hopeless (single rings sustain ~4 PMs) and a
    // 3-level hierarchy wins.
    SystemConfig base;
    base.cacheLineBytes = 128;
    base.workload.localityR = 1.0;
    base.workload.outstandingT = 4;
    base.sim.warmupCycles = 1500;
    base.sim.batchCycles = 1500;
    base.sim.numBatches = 3;

    const auto ranked = rankHierarchies(24, base);
    ASSERT_FALSE(ranked.empty());
    // Every enumerated hierarchy was evaluated.
    EXPECT_EQ(ranked.size(), enumerateHierarchies(24).size());
    // The winner is a multi-level hierarchy, not "24".
    EXPECT_NE(ranked.front().topology, "24");
    // And "24" is measurably worse than the winner.
    const auto single = std::find_if(
        ranked.begin(), ranked.end(),
        [](const TopologyCandidate &c) { return c.topology == "24"; });
    ASSERT_NE(single, ranked.end());
    EXPECT_GT(single->latency, 1.25 * ranked.front().latency);
}

TEST(RankHierarchies, SortedAscending)
{
    SystemConfig base;
    base.cacheLineBytes = 32;
    base.sim.warmupCycles = 800;
    base.sim.batchCycles = 800;
    base.sim.numBatches = 2;
    const auto ranked = rankHierarchies(8, base, 2);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_LE(ranked[i - 1].latency, ranked[i].latency);
}

} // namespace
} // namespace hrsim
