/**
 * @file
 * End-to-end smoke tests: tiny ring and mesh systems run and deliver.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

namespace hrsim
{
namespace
{

SimConfig
shortSim()
{
    SimConfig sim;
    sim.warmupCycles = 500;
    sim.batchCycles = 500;
    sim.numBatches = 3;
    return sim;
}

TEST(Smoke, SingleRingRuns)
{
    SystemConfig cfg = SystemConfig::ring("4", 32);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    EXPECT_GT(result.samples, 0u);
    EXPECT_GT(result.avgLatency, 0.0);
}

TEST(Smoke, TwoLevelRingRuns)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 32);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    EXPECT_GT(result.samples, 0u);
}

TEST(Smoke, MeshRuns)
{
    SystemConfig cfg = SystemConfig::mesh(3, 32, 4);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    EXPECT_GT(result.samples, 0u);
    EXPECT_GT(result.avgLatency, 0.0);
}

} // namespace
} // namespace hrsim
