/**
 * @file
 * Checkpoint/restore tests (src/ckpt/; DESIGN.md section 16).
 *
 * The determinism contract under test: saving never perturbs a run,
 * and restoring a snapshot into a fresh System then running to cycle
 * Y produces results byte-identical to an uninterrupted run reaching
 * Y — across ring and mesh topologies, buffer depths, double-speed
 * global rings, fault plans, parallel ticks, and every oracle plane
 * (full scan / no-columnar / no-fastpath). Plus the refusal paths:
 * config-key, build-plane, fault-plane and topology mismatches must
 * throw CheckpointError naming the disagreement, never restore
 * garbage.
 *
 * Suites are named Checkpoint* so scripts/ci.sh can fold them into
 * the sanitizer test filter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/codec.hh"
#include "ckpt/result_io.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "fault/fault_plan.hh"
#include "obs/manifest.hh"

#include <filesystem>
#include <fstream>

namespace hrsim
{
namespace
{

/** Unique-enough temp path; removed by the owning test. */
class TempCkpt
{
  public:
    explicit TempCkpt(const std::string &stem)
        : path_(testing::TempDir() + "hrsim_" + stem + "_" +
                std::to_string(::getpid()) + ".ckpt")
    {
    }
    ~TempCkpt() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

SimConfig
shortSim()
{
    SimConfig sim;
    sim.warmupCycles = 800;
    sim.batchCycles = 800;
    sim.numBatches = 3;
    return sim;
}

FaultEvent
spec(const std::string &text)
{
    FaultEvent event;
    std::string err;
    EXPECT_TRUE(parseFaultSpec(text, event, err)) << err;
    return event;
}

/**
 * The acceptance grid: rings including single-level and a
 * double-speed root, meshes at 1 / 4 / cl-sized buffers, a faulted
 * config, and a parallel-tick config.
 */
std::vector<std::pair<std::string, SystemConfig>>
checkpointGrid()
{
    std::vector<std::pair<std::string, SystemConfig>> grid;
    const auto add = [&grid](std::string name, SystemConfig cfg) {
        grid.emplace_back(std::move(name), cfg);
    };

    SystemConfig cfg = SystemConfig::ring("8", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.02;
    add("ring 8 single-level", cfg);

    cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    add("ring 2:4 low-C", cfg);

    cfg = SystemConfig::ring("4:4", 32);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    add("ring 4:4 saturating", cfg);

    cfg = SystemConfig::ring("2:2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.005;
    cfg.globalRingSpeed = 2;
    add("ring 2:2:4 speed-2", cfg);

    cfg = SystemConfig::mesh(3, 64, 1);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    add("mesh 3 buffers-1", cfg);

    cfg = SystemConfig::mesh(4, 32, 4);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 2;
    add("mesh 4 buffers-4", cfg);

    cfg = SystemConfig::mesh(3, 64, 0);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.02;
    add("mesh 3 buffers-cl", cfg);

    cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    cfg.faultPlan.events = {spec("ring.nic1:down@900..1400"),
                            spec("ring.l0.iri0.lower:stall@1200..")};
    cfg.faultPlan.retry.timeoutCycles = 400;
    cfg.faultPlan.retry.maxRetries = 3;
    add("ring 2:4 faulted", cfg);

    cfg = SystemConfig::mesh(4, 64, 4);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    cfg.faultPlan.events = {spec("mesh.r5.east:down@900..1500")};
    cfg.faultPlan.retry.timeoutCycles = 400;
    cfg.faultPlan.retry.maxRetries = 3;
    add("mesh 4 faulted", cfg);

    cfg = SystemConfig::ring("4:4", 64);
    cfg.sim = shortSim();
    cfg.sim.tickThreads = 4;
    cfg.workload.outstandingT = 4;
    add("ring 4:4 tick-threads-4", cfg);

    cfg = SystemConfig::mesh(4, 64, 4);
    cfg.sim = shortSim();
    cfg.sim.tickThreads = 4;
    cfg.workload.missRateC = 0.02;
    add("mesh 4 tick-threads-4", cfg);

    return grid;
}

/** Full RunResult equality — every field, every metric sample. */
void
expectSameResult(const RunResult &got, const RunResult &want)
{
    EXPECT_EQ(got.avgLatency, want.avgLatency);
    EXPECT_EQ(got.latencyCI95, want.latencyCI95);
    EXPECT_EQ(got.samples, want.samples);
    EXPECT_EQ(got.latencyP50, want.latencyP50);
    EXPECT_EQ(got.latencyP95, want.latencyP95);
    EXPECT_EQ(got.latencyP99, want.latencyP99);
    EXPECT_EQ(got.networkUtilization, want.networkUtilization);
    EXPECT_EQ(got.ringLevelUtilization, want.ringLevelUtilization);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.throughputPerPm, want.throughputPerPm);
    EXPECT_EQ(got.stopReason, want.stopReason);
    EXPECT_EQ(got.relHalfWidth, want.relHalfWidth);
    EXPECT_EQ(got.warmupCycles, want.warmupCycles);

    EXPECT_EQ(got.counters.missesGenerated,
              want.counters.missesGenerated);
    EXPECT_EQ(got.counters.remoteIssued, want.counters.remoteIssued);
    EXPECT_EQ(got.counters.remoteCompleted,
              want.counters.remoteCompleted);
    EXPECT_EQ(got.counters.localIssued, want.counters.localIssued);
    EXPECT_EQ(got.counters.localCompleted,
              want.counters.localCompleted);
    EXPECT_EQ(got.counters.blockedCycles,
              want.counters.blockedCycles);

    EXPECT_EQ(got.metrics, want.metrics);

    ASSERT_EQ(got.snapshots.size(), want.snapshots.size());
    for (std::size_t i = 0; i < got.snapshots.size(); ++i) {
        SCOPED_TRACE("snapshot " + std::to_string(i));
        EXPECT_EQ(got.snapshots[i].cycle, want.snapshots[i].cycle);
        EXPECT_EQ(got.snapshots[i].metrics,
                  want.snapshots[i].metrics);
    }
}

/**
 * The core contract, for one config: an uninterrupted control run, a
 * donor run that saves at @a save_at (must equal the control — saving
 * perturbs nothing), and a fresh System restored from the snapshot
 * (must also equal the control).
 */
void
roundTrip(const SystemConfig &cfg, Cycle save_at,
          const std::string &stem)
{
    TempCkpt file(stem);

    System control(cfg);
    const RunResult want = control.run();

    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveAt = save_at;
    System donor(donor_cfg);
    {
        SCOPED_TRACE("donor (save must not perturb)");
        expectSameResult(donor.run(), want);
    }

    SystemConfig restore_cfg = cfg;
    restore_cfg.ckpt.restorePath = file.path();
    System restored(restore_cfg);
    {
        SCOPED_TRACE("restored");
        expectSameResult(restored.run(), want);
        EXPECT_TRUE(restored.restored());
    }
}

// ---------------------------------------------------------------- //
// Bit-identity across the acceptance grid

TEST(CheckpointBitIdentity, GridSaveRestoreEqualsUninterrupted)
{
    std::size_t stem = 0;
    for (const auto &[name, cfg] : checkpointGrid()) {
        SCOPED_TRACE(name);
        // Mid-measurement save: past the warmup and past the fault
        // windows' opening edges, so the snapshot carries live
        // faults, in-flight worms and a started utilization window.
        roundTrip(cfg, 1250, "grid" + std::to_string(stem++));
    }
}

TEST(CheckpointBitIdentity, SaveAtWarmupBoundary)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    // Exactly at the warmup boundary: the snapshot must capture the
    // pre-measurement state and the restored run must re-open the
    // measurement window exactly where the uninterrupted one did.
    roundTrip(cfg, cfg.sim.warmupCycles, "warmup_boundary");
}

TEST(CheckpointBitIdentity, MetricsSnapshotsSurviveRestore)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.sim.metricsEvery = 500;
    cfg.workload.outstandingT = 4;
    // The save point sits between two snapshot ticks; the restored
    // run's artifact must reproduce the pre-save snapshots too.
    roundTrip(cfg, 1250, "snapshots");
}

TEST(CheckpointBitIdentity, AdaptiveRunRestoresControllerState)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    cfg.sim.stop.relHw = 0.05;
    roundTrip(cfg, 1250, "adaptive");
}

TEST(CheckpointBitIdentity, PeriodicSavesRestoreFromTheLast)
{
    SystemConfig cfg = SystemConfig::mesh(3, 64, 4);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;

    System control(cfg);
    const RunResult want = control.run();

    TempCkpt file("periodic");
    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveEvery = 700;
    System donor(donor_cfg);
    expectSameResult(donor.run(), want);

    // The file now holds the last periodic snapshot (cycle 2800 of
    // 3200); restoring it must still complete to the same result.
    EXPECT_EQ(peekCheckpointHeader(file.path()).cycle, 2800u);
    SystemConfig restore_cfg = cfg;
    restore_cfg.ckpt.restorePath = file.path();
    System restored(restore_cfg);
    expectSameResult(restored.run(), want);
}

TEST(CheckpointBitIdentity, StopAfterSaveEndsTheRunEarly)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;

    TempCkpt file("stop_after");
    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveAt = 1000;
    donor_cfg.ckpt.stopAfterSave = true;
    System donor(donor_cfg);
    const RunResult partial = donor.run();
    EXPECT_EQ(partial.cycles, 1000u);

    // The early stop must not have contaminated the snapshot: a
    // restore still completes to the uninterrupted result.
    System control(cfg);
    const RunResult want = control.run();
    SystemConfig restore_cfg = cfg;
    restore_cfg.ckpt.restorePath = file.path();
    System restored(restore_cfg);
    expectSameResult(restored.run(), want);
}

// ---------------------------------------------------------------- //
// Oracle planes: each engine mode round-trips within its own plane

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~ScopedEnv() { unsetenv(name_); }

  private:
    const char *name_;
};

TEST(CheckpointPlanes, FullScanPlaneRoundTrips)
{
    ScopedEnv env("HRSIM_FORCE_FULL_SCAN", "1");
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    roundTrip(cfg, 1250, "full_scan");
}

TEST(CheckpointPlanes, NoColumnarPlaneRoundTrips)
{
    ScopedEnv env("HRSIM_NO_COLUMNAR", "1");
    SystemConfig cfg = SystemConfig::mesh(3, 64, 4);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    roundTrip(cfg, 1250, "no_columnar");
}

TEST(CheckpointPlanes, NoFastPathPlaneRoundTrips)
{
    ScopedEnv env("HRSIM_NO_FASTPATH", "1");
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    roundTrip(cfg, 1250, "no_fastpath");
}

// ---------------------------------------------------------------- //
// Warm-start forking

TEST(CheckpointFork, ReseededReplicasDivergeFromTheDonorStream)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;

    TempCkpt file("fork");
    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveAt = cfg.sim.warmupCycles;
    donor_cfg.ckpt.stopAfterSave = true;
    System donor(donor_cfg);
    donor.run();

    const auto replica = [&](std::uint64_t fork_seed) {
        SystemConfig fork_cfg = cfg;
        // A forked replica's own seed differs from the donor's; the
        // seed-normalized config-key comparison must accept it.
        fork_cfg.sim.seed = fork_seed;
        fork_cfg.ckpt.restorePath = file.path();
        fork_cfg.ckpt.forkSeed = fork_seed;
        System system(fork_cfg);
        return system.run();
    };

    const RunResult a = replica(101);
    const RunResult b = replica(202);
    const RunResult a2 = replica(101);

    // Same fork seed: fully deterministic replica.
    EXPECT_EQ(a.avgLatency, a2.avgLatency);
    EXPECT_EQ(a.samples, a2.samples);
    // Different fork seeds: statistically independent replicas.
    EXPECT_NE(a.avgLatency, b.avgLatency);
    EXPECT_GT(a.samples, 0u);
    EXPECT_GT(b.samples, 0u);
}

// ---------------------------------------------------------------- //
// Refusal paths

TEST(CheckpointMismatch, ConfigKeyMismatchNamesBothKeys)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;

    TempCkpt file("mismatch");
    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveAt = 1000;
    donor_cfg.ckpt.stopAfterSave = true;
    System donor(donor_cfg);
    donor.run();

    SystemConfig other = SystemConfig::ring("4:4", 64);
    other.sim = shortSim();
    other.workload.outstandingT = 4;
    other.ckpt.restorePath = file.path();
    System restored(other);
    try {
        restored.run();
        FAIL() << "config mismatch must throw";
    } catch (const CheckpointError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find(configKey(cfg)), std::string::npos)
            << what;
        EXPECT_NE(what.find(configKey(other)), std::string::npos)
            << what;
    }
}

TEST(CheckpointMismatch, SeedMismatchRefusedUnlessForking)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;

    TempCkpt file("seed_mismatch");
    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveAt = 1000;
    donor_cfg.ckpt.stopAfterSave = true;
    System donor(donor_cfg);
    donor.run();

    SystemConfig other = cfg;
    other.sim.seed = 12345;
    other.ckpt.restorePath = file.path();
    System restored(other);
    EXPECT_THROW(restored.run(), CheckpointError);
}

TEST(CheckpointMismatch, BuildPlaneMismatchRefused)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;

    TempCkpt file("plane_mismatch");
    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveAt = 1000;
    donor_cfg.ckpt.stopAfterSave = true;
    System donor(donor_cfg);
    donor.run();

    ScopedEnv env("HRSIM_FORCE_FULL_SCAN", "1");
    SystemConfig restore_cfg = cfg;
    restore_cfg.ckpt.restorePath = file.path();
    System restored(restore_cfg);
    EXPECT_THROW(restored.run(), CheckpointError);
}

TEST(CheckpointMismatch, FaultPlaneMismatchRefused)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;

    TempCkpt file("fault_mismatch");
    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveAt = 1000;
    donor_cfg.ckpt.stopAfterSave = true;
    System donor(donor_cfg);
    donor.run();

    // A faulted config's key differs (the plan is part of identity),
    // so the key check already refuses; this asserts the refusal is a
    // CheckpointError, not a restore of mismatched depth counters.
    SystemConfig faulted = cfg;
    faulted.faultPlan.events = {spec("ring.nic1:down@900..1400")};
    faulted.ckpt.restorePath = file.path();
    System restored(faulted);
    EXPECT_THROW(restored.run(), CheckpointError);
}

TEST(CheckpointMismatch, SlottedRingRefusesCheckpointing)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.ringSlotted = true;
    cfg.sim = shortSim();
    TempCkpt file("slotted");
    System system(cfg);
    EXPECT_THROW(system.saveCheckpoint(file.path()),
                 CheckpointError);
}

TEST(CheckpointMismatch, CorruptFileRefused)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;

    TempCkpt file("corrupt");
    SystemConfig donor_cfg = cfg;
    donor_cfg.ckpt.savePath = file.path();
    donor_cfg.ckpt.saveAt = 1000;
    donor_cfg.ckpt.stopAfterSave = true;
    System donor(donor_cfg);
    donor.run();

    // Flip one payload byte: the FNV hash must catch it.
    {
        std::FILE *f = std::fopen(file.path().c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, -64, SEEK_END), 0);
        const int byte = std::fgetc(f);
        ASSERT_NE(byte, EOF);
        ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
        std::fputc(byte ^ 0xff, f);
        std::fclose(f);
    }
    SystemConfig restore_cfg = cfg;
    restore_cfg.ckpt.restorePath = file.path();
    System restored(restore_cfg);
    EXPECT_THROW(restored.run(), CheckpointError);
}

// ---------------------------------------------------------------- //
// Crash-safe sweep journaling and warm-start forking

/** Unique temp directory, recursively removed by the owning test. */
class TempJournal
{
  public:
    explicit TempJournal(const std::string &stem)
        : path_(testing::TempDir() + "hrsim_" + stem + "_" +
                std::to_string(::getpid()))
    {
        std::filesystem::create_directories(path_);
    }
    ~TempJournal() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** A small mixed sweep: enough shape variety to exercise the codec. */
std::vector<SystemConfig>
sweepPoints()
{
    std::vector<SystemConfig> points;
    SystemConfig cfg = SystemConfig::ring("8", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.02;
    points.push_back(cfg);

    cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    points.push_back(cfg);

    cfg = SystemConfig::mesh(3, 64, 1);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    points.push_back(cfg);

    cfg = SystemConfig::ring("4:4", 32);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    points.push_back(cfg);
    return points;
}

TEST(CheckpointSweep, ResultFileRoundTripIsExact)
{
    TempJournal dir("result_roundtrip");
    const std::string path = dir.path() + "/point_0.result";

    SystemConfig cfg = sweepPoints()[0];
    cfg.sim.metricsEvery = 500; // exercise the snapshot encoder too
    const RunResult want = runSystem(cfg);
    const std::string key = configKey(cfg);

    RunResult probe;
    EXPECT_FALSE(tryReadResultFile(path, key, probe));

    writeResultFile(path, key, want);
    RunResult got;
    ASSERT_TRUE(tryReadResultFile(path, key, got));
    expectSameResult(got, want);
}

TEST(CheckpointSweep, JournalConfigMismatchNamesBothKeys)
{
    TempJournal dir("journal_mismatch");
    const std::string path = dir.path() + "/point_0.result";

    const RunResult result = runSystem(sweepPoints()[0]);
    writeResultFile(path, "key-of-the-journal", result);

    RunResult out;
    try {
        tryReadResultFile(path, "key-of-the-run", out);
        FAIL() << "expected CheckpointError";
    } catch (const CheckpointError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("key-of-the-journal"), std::string::npos)
            << what;
        EXPECT_NE(what.find("key-of-the-run"), std::string::npos)
            << what;
    }
}

TEST(CheckpointSweep, JournaledSweepMatchesPlainSweep)
{
    const std::vector<SystemConfig> points = sweepPoints();
    const std::vector<RunResult> want = runSweep(points, 1);

    TempJournal dir("journaled_sweep");
    SweepOptions opts;
    opts.jobs = 1;
    opts.journalDir = dir.path();
    opts.checkpointEvery = 700;
    SweepRunner runner(opts);
    const std::vector<RunResult> got = runner.run(points);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameResult(got[i], want[i]);
        EXPECT_TRUE(std::filesystem::exists(
            dir.path() + "/point_" + std::to_string(i) +
            ".result"));
    }
}

TEST(CheckpointSweep, ResumedSweepReproducesArtifactsByteForByte)
{
    const std::vector<SystemConfig> points = sweepPoints();
    const std::vector<RunResult> want = runSweep(points, 1);

    // Reference: the uninterrupted journaled sweep.
    TempJournal ref("sweep_ref");
    SweepOptions opts;
    opts.jobs = 1;
    opts.journalDir = ref.path();
    opts.checkpointEvery = 700;
    {
        SweepRunner runner(opts);
        runner.run(points);
    }

    // Simulate a sweep killed mid-flight: point 0 completed (its
    // .result landed), point 1 was in progress with its last
    // periodic checkpoint at cycle 1400, points 2 and 3 never
    // started.
    TempJournal killed("sweep_killed");
    writeBytes(killed.path() + "/point_0.result",
               readBytes(ref.path() + "/point_0.result"));
    {
        SystemConfig in_flight = points[1];
        in_flight.ckpt.savePath = killed.path() + "/point_1.ckpt";
        in_flight.ckpt.saveEvery = 700;
        in_flight.ckpt.saveAt = 1400;
        in_flight.ckpt.stopAfterSave = true;
        runSystem(in_flight);
        EXPECT_EQ(
            peekCheckpointHeader(killed.path() + "/point_1.ckpt")
                .cycle,
            1400u);
    }

    opts.journalDir = killed.path();
    opts.resume = true;
    SweepRunner resumed(opts);
    const std::vector<RunResult> got = resumed.run(points);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameResult(got[i], want[i]);
        const std::string name =
            "/point_" + std::to_string(i) + ".result";
        EXPECT_EQ(readBytes(killed.path() + name),
                  readBytes(ref.path() + name));
        // Scratch checkpoints are removed once a result lands, so
        // both directories hold exactly the journaled results.
        const std::string ckpt =
            "/point_" + std::to_string(i) + ".ckpt";
        EXPECT_FALSE(std::filesystem::exists(killed.path() + ckpt));
        EXPECT_FALSE(std::filesystem::exists(ref.path() + ckpt));
    }
}

TEST(CheckpointSweep, JournaledSweepUnderJobs4MatchesSerial)
{
    const std::vector<SystemConfig> points = sweepPoints();
    const std::vector<RunResult> want = runSweep(points, 1);

    TempJournal serial("sweep_serial");
    TempJournal parallel("sweep_jobs4");
    SweepOptions opts;
    opts.jobs = 1;
    opts.journalDir = serial.path();
    opts.checkpointEvery = 700;
    {
        SweepRunner runner(opts);
        runner.run(points);
    }
    opts.jobs = 4;
    opts.journalDir = parallel.path();
    SweepRunner runner(opts);
    const std::vector<RunResult> got = runner.run(points);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameResult(got[i], want[i]);
        const std::string name =
            "/point_" + std::to_string(i) + ".result";
        EXPECT_EQ(readBytes(parallel.path() + name),
                  readBytes(serial.path() + name));
    }
}

TEST(CheckpointSweep, WarmStartReplicasShareOneWarmupCheckpoint)
{
    TempJournal dir("warm_start");
    const std::string donor = dir.path() + "/warmup.ckpt";

    SystemConfig base = SystemConfig::ring("2:4", 64);
    base.sim = shortSim();
    base.workload.missRateC = 0.01;

    const std::vector<std::uint64_t> seeds = {101, 202};
    const std::vector<SystemConfig> replicas =
        warmStartReplicas(base, donor, seeds);
    ASSERT_EQ(replicas.size(), seeds.size());
    ASSERT_TRUE(std::filesystem::exists(donor));
    EXPECT_EQ(peekCheckpointHeader(donor).cycle,
              base.sim.warmupCycles);

    // A second expansion must reuse the snapshot, not redo warmup.
    const std::string donor_bytes = readBytes(donor);
    warmStartReplicas(base, donor, seeds);
    EXPECT_EQ(readBytes(donor), donor_bytes);

    const std::vector<RunResult> results = runSweep(replicas, 1);
    ASSERT_EQ(results.size(), 2u);
    // Different fork seeds draw different measurement streams...
    EXPECT_NE(results[0].counters.missesGenerated,
              results[1].counters.missesGenerated);
    // ...but each replica is itself deterministic.
    expectSameResult(runSystem(replicas[0]), results[0]);
    for (const RunResult &result : results)
        EXPECT_EQ(result.cycles, 3200u);
}

} // namespace
} // namespace hrsim
