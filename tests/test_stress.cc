/**
 * @file
 * Saturation and deadlock-freedom stress tests.
 *
 * These configurations drive the hierarchical ring far past its
 * bisection limit — the regime where a literal implementation of the
 * paper's flow control deadlocks (full up/down queues close a
 * cross-level dependency cycle). They pin down the liveness
 * machinery: phase-based ring admission, the IRI anti-starvation
 * valve, and the bounded-wait recirculation escape.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

namespace hrsim
{
namespace
{

SimConfig
stressSim()
{
    SimConfig sim;
    sim.warmupCycles = 4000;
    sim.batchCycles = 4000;
    sim.numBatches = 3;
    sim.watchdogCycles = 4000; // fail fast on livelock
    return sim;
}

struct StressCase
{
    const char *topology;
    int lineBytes;
};

class RingStressTest : public ::testing::TestWithParam<StressCase>
{};

TEST_P(RingStressTest, OversaturatedHierarchyStaysLive)
{
    const auto &[topo, line] = GetParam();
    SystemConfig cfg =
        SystemConfig::ring(topo, static_cast<std::uint32_t>(line));
    cfg.workload.outstandingT = 4;
    cfg.workload.localityR = 1.0;
    cfg.sim = stressSim();

    RunResult result;
    ASSERT_NO_THROW(result = runSystem(cfg)) << topo;
    EXPECT_GT(result.samples, 0u) << topo;
    EXPECT_GT(result.avgLatency, 0.0) << topo;
}

INSTANTIATE_TEST_SUITE_P(
    Oversaturated, RingStressTest,
    ::testing::Values(
        // 4-6 second-level rings: 1.3x-2x past the paper's
        // 3-sustainable-ring bisection limit.
        StressCase{"4:3:6", 64}, StressCase{"5:3:6", 64},
        StressCase{"6:3:6", 64}, StressCase{"6:3:6", 128},
        StressCase{"5:3:8", 32}, StressCase{"6:3:8", 32},
        StressCase{"4:3:4", 128}, StressCase{"6:3:4", 128},
        StressCase{"4:3:12", 16},
        // Deep 4-level hierarchies.
        StressCase{"3:3:3:4", 128}, StressCase{"2:3:3:6", 64},
        // Degenerate small hierarchies under heavy packets.
        StressCase{"2:2", 128}, StressCase{"2:2:2", 128}),
    [](const ::testing::TestParamInfo<StressCase> &info) {
        std::string name = std::string(info.param.topology) + "_cl" +
                           std::to_string(info.param.lineBytes);
        for (auto &ch : name) {
            if (ch == ':')
                ch = 'x';
        }
        return name;
    });

TEST(RingStress, DoubleSpeedOversaturatedStaysLive)
{
    SystemConfig cfg = SystemConfig::ring("6:3:6", 64);
    cfg.globalRingSpeed = 2;
    cfg.workload.outstandingT = 4;
    cfg.sim = stressSim();
    RunResult result;
    ASSERT_NO_THROW(result = runSystem(cfg));
    EXPECT_GT(result.samples, 0u);
}

TEST(RingStress, ExtremeMissRateStaysLive)
{
    SystemConfig cfg = SystemConfig::ring("3:3:6", 64);
    cfg.workload.missRateC = 0.25; // 6x the paper's rate
    cfg.workload.outstandingT = 4;
    cfg.sim = stressSim();
    RunResult result;
    ASSERT_NO_THROW(result = runSystem(cfg));
    EXPECT_GT(result.samples, 0u);
}

TEST(RingStress, HotspotTrafficStaysLive)
{
    // All traffic into one subtree: worst-case tree contention.
    SystemConfig cfg = SystemConfig::ring("3:3:4", 128);
    cfg.workload.localityR = 0.05; // tiny regions -> heavy overlap
    cfg.workload.outstandingT = 4;
    cfg.sim = stressSim();
    RunResult result;
    ASSERT_NO_THROW(result = runSystem(cfg));
    EXPECT_GT(result.samples, 0u);
}

TEST(RingStress, MeshOversaturatedStaysLive)
{
    for (const std::uint32_t buffers : {1u, 4u, 0u}) {
        SystemConfig cfg = SystemConfig::mesh(11, 128, buffers);
        cfg.workload.outstandingT = 4;
        cfg.sim = stressSim();
        RunResult result;
        ASSERT_NO_THROW(result = runSystem(cfg)) << buffers;
        EXPECT_GT(result.samples, 0u) << buffers;
    }
}

TEST(RingStress, SaturatedLatencyStillBounded)
{
    // Even 2x past the bisection limit, the closed-loop workload (T
    // outstanding per PM) bounds latency: it cannot exceed roughly
    // P * T request-service times.
    SystemConfig cfg = SystemConfig::ring("6:3:6", 64);
    cfg.workload.outstandingT = 4;
    cfg.sim = stressSim();
    const RunResult result = runSystem(cfg);
    EXPECT_LT(result.avgLatency, 20000.0);
    EXPECT_GT(result.avgLatency, 100.0); // and it is surely saturated
}

} // namespace
} // namespace hrsim
