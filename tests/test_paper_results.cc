/**
 * @file
 * Paper-conformance suite: the headline results of Ravindran & Stumm
 * (HPCA 1997) as regression tests. Each test pins one qualitative
 * claim of the paper — orderings, knees and cross-over ranges, not
 * absolute cycle counts — so any model change that breaks the
 * reproduction fails loudly. EXPERIMENTS.md documents the full
 * paper-vs-measured record these tests guard.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/analysis.hh"
#include "core/system.hh"

namespace hrsim
{
namespace
{

SimConfig
paperSim()
{
    SimConfig sim;
    sim.warmupCycles = 3000;
    sim.batchCycles = 3000;
    sim.numBatches = 3;
    return sim;
}

double
ringLatency(const std::string &topo, std::uint32_t line, int t = 4,
            double r = 1.0, std::uint32_t speed = 1)
{
    SystemConfig cfg = SystemConfig::ring(topo, line);
    cfg.workload.outstandingT = t;
    cfg.workload.localityR = r;
    cfg.globalRingSpeed = speed;
    cfg.sim = paperSim();
    return runSystem(cfg).avgLatency;
}

double
meshLatency(int width, std::uint32_t line,
            std::uint32_t buffers = 4, int t = 4, double r = 1.0)
{
    SystemConfig cfg = SystemConfig::mesh(width, line, buffers);
    cfg.workload.outstandingT = t;
    cfg.workload.localityR = r;
    cfg.sim = paperSim();
    return runSystem(cfg).avgLatency;
}

// Section 3, Figure 6: single rings sustain ~12/8/6/4 nodes.
TEST(PaperResults, SingleRingCapacitiesByLineSize)
{
    // "Sustain" = latency within 2x of the small-ring baseline at
    // the capacity, but far beyond it at ~3x the capacity.
    const struct
    {
        std::uint32_t line;
        int capacity;
    } cases[] = {{16, 12}, {32, 8}, {64, 6}, {128, 4}};
    for (const auto &c : cases) {
        const double base = ringLatency("4", c.line);
        const double at_cap =
            ringLatency(std::to_string(c.capacity), c.line);
        const double over =
            ringLatency(std::to_string(3 * c.capacity), c.line);
        EXPECT_LT(at_cap, 2.2 * base) << c.line << "B";
        EXPECT_GT(over, 1.6 * at_cap) << c.line << "B";
    }
}

// Section 3, Figures 8/10: the global ring saturates at three
// sub-rings, independent of line size.
TEST(PaperResults, GlobalRingSaturatesAtThreeSubrings)
{
    for (const std::uint32_t line : {32u, 64u}) {
        const int m = line == 32 ? 8 : 6;
        SystemConfig cfg =
            SystemConfig::ring("3:" + std::to_string(m), line);
        cfg.workload.outstandingT = 4;
        cfg.sim = paperSim();
        const RunResult three = runSystem(cfg);
        EXPECT_GT(three.ringLevelUtilization[0], 0.75) << line;

        SystemConfig two =
            SystemConfig::ring("2:" + std::to_string(m), line);
        two.workload.outstandingT = 4;
        two.sim = paperSim();
        const RunResult result2 = runSystem(two);
        EXPECT_GT(three.ringLevelUtilization[0],
                  result2.ringLevelUtilization[0])
            << line;
    }
}

// Section 4, Figure 12: mesh buffer sizes order latency cl <= 4 < 1.
TEST(PaperResults, MeshBufferSizeOrdering)
{
    for (const std::uint32_t line : {32u, 128u}) {
        const double cl = meshLatency(8, line, 0);
        const double four = meshLatency(8, line, 4);
        const double one = meshLatency(8, line, 1);
        EXPECT_LE(cl, four * 1.05) << line;
        EXPECT_LT(four, one) << line;
        // 128B/64 PMs: 1-flit costs ~3x cl-sized (paper's number).
        if (line == 128) {
            EXPECT_GT(one, 2.0 * cl);
        }
    }
}

// Section 5.1, Figure 14: rings win small systems, meshes win large;
// the cross-over grows with cache-line size.
TEST(PaperResults, CrossoverGrowsWithLineSize)
{
    // Small system (paper regime: rings win).
    EXPECT_LT(ringLatency("8", 16), meshLatency(3, 16));
    EXPECT_LT(ringLatency("3:2:3", 128), meshLatency(4, 128));
    // Large system at R = 1.0 (paper regime: meshes win).
    EXPECT_GT(ringLatency("3:3:12", 16), meshLatency(10, 16));
    EXPECT_GT(ringLatency("3:3:3:4", 128), meshLatency(10, 128));
    // 16B cross-over below the 128B one: at 24-25 nodes 16B rings
    // already lose or tie while 128B rings still win.
    const double r16 = ringLatency("2:12", 16);
    const double m16 = meshLatency(5, 16);
    const double r128 = ringLatency("2:3:4", 128);
    const double m128 = meshLatency(5, 128);
    EXPECT_LT(r128 / m128, r16 / m16 * 1.1);
    EXPECT_LT(r128, m128); // 128B rings still ahead at 24-25 nodes
}

// Section 5.1, Figure 16: with 1-flit mesh buffers rings win
// everywhere, even at the largest sizes.
TEST(PaperResults, RingsAlwaysBeatOneFlitMeshes)
{
    EXPECT_LT(ringLatency("3:3:12", 16), meshLatency(11, 16, 1));
    EXPECT_LT(ringLatency("2:3:3:6", 32), meshLatency(11, 32, 1));
    EXPECT_LT(ringLatency("3:3:3:4", 128), meshLatency(11, 128, 1));
}

// Section 5.2, Figure 17: locality shifts the balance toward rings.
TEST(PaperResults, LocalityFavorsRings)
{
    // At 36 nodes / 64B, R = 1.0 has the mesh ahead; R = 0.2 flips
    // or closes the comparison.
    const double ratio_uniform =
        ringLatency("2:3:6", 64) / meshLatency(6, 64);
    const double ratio_local =
        ringLatency("2:3:6", 64, 4, 0.2) / meshLatency(6, 64, 4, 4, 0.2);
    EXPECT_LT(ratio_local, ratio_uniform);
    EXPECT_LT(ratio_local, 1.1);
}

// Section 6, Figures 19/21: the double-speed global ring sustains
// five second-level rings and helps 128B systems most.
TEST(PaperResults, DoubleSpeedSustainsFiveSubrings)
{
    // 5:3:6 = 90 PMs at 64B: hopeless at 1x, controlled at 2x.
    const double normal = ringLatency("5:3:6", 64, 4, 1.0, 1);
    const double fast = ringLatency("5:3:6", 64, 4, 1.0, 2);
    EXPECT_LT(fast, 0.85 * normal);
    // And at 2x it is comparable to the paper's 3-ring point.
    const double sustainable = ringLatency("3:3:6", 64);
    EXPECT_LT(fast, 1.5 * sustainable);
}

// Table 2 boundary: at 128B even 6 processors prefer a hierarchy.
TEST(PaperResults, SmallSystemsGoHierarchicalAtBigLines)
{
    EXPECT_LT(ringLatency("2:3", 128), ringLatency("6", 128));
    // ... but at 16B the single ring is still the right answer.
    EXPECT_LT(ringLatency("6", 16), ringLatency("2:3", 16));
}

} // namespace
} // namespace hrsim
