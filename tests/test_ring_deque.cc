/**
 * @file
 * Unit tests for the growable power-of-two ring buffer behind the
 * hot-path FIFO queues. The focus is the wrap-around arithmetic: a
 * head that has walked around the ring must keep FIFO order through
 * pushes at exact capacity and through the copy-out a growth performs.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/ring_deque.hh"

namespace hrsim
{
namespace
{

TEST(RingDeque, StartsEmptyAndFifoOrders)
{
    RingDeque<int> dq;
    EXPECT_TRUE(dq.empty());
    EXPECT_EQ(dq.size(), 0u);
    dq.push_back(1);
    dq.push_back(2);
    dq.push_back(3);
    EXPECT_EQ(dq.size(), 3u);
    EXPECT_EQ(dq.front(), 1);
    dq.pop_front();
    EXPECT_EQ(dq.front(), 2);
    dq.pop_front();
    dq.pop_front();
    EXPECT_TRUE(dq.empty());
}

TEST(RingDeque, WrapAroundAtExactCapacity)
{
    // The initial allocation is 8 slots. Walk the head to the last
    // physical slot, then fill to exactly 8 elements: the writes wrap
    // around the mask while size == capacity, the boundary where an
    // off-by-one in (head + size) & mask corrupts the front.
    RingDeque<int> dq;
    for (int i = 0; i < 7; ++i)
        dq.push_back(i);
    for (int i = 0; i < 7; ++i) {
        EXPECT_EQ(dq.front(), i);
        dq.pop_front();
    }
    // head_ is now 7 (last slot). Fill all 8 slots: indices wrap.
    for (int i = 100; i < 108; ++i)
        dq.push_back(i);
    EXPECT_EQ(dq.size(), 8u);
    for (int i = 100; i < 108; ++i) {
        EXPECT_EQ(dq.front(), i);
        dq.pop_front();
    }
    EXPECT_TRUE(dq.empty());
}

TEST(RingDeque, GrowthUnwrapsAWrappedRing)
{
    // Fill to capacity with a wrapped head, then push one more: the
    // doubling copy-out must linearize the wrapped contents in FIFO
    // order before appending.
    RingDeque<int> dq;
    for (int i = 0; i < 5; ++i)
        dq.push_back(-1);
    for (int i = 0; i < 5; ++i)
        dq.pop_front(); // head_ = 5, wrapped pushes from here on
    for (int i = 0; i < 8; ++i)
        dq.push_back(i);
    dq.push_back(8); // grows 8 -> 16 with head_ != 0
    dq.push_back(9);
    EXPECT_EQ(dq.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(dq.front(), i);
        dq.pop_front();
    }
}

TEST(RingDeque, ReserveRoundsUpAndPreservesContents)
{
    RingDeque<int> dq;
    dq.push_back(41);
    dq.push_back(42);
    dq.reserve(100); // rounds to the next power of two internally
    EXPECT_EQ(dq.size(), 2u);
    EXPECT_EQ(dq.front(), 41);
    for (int i = 0; i < 200; ++i)
        dq.push_back(i);
    EXPECT_EQ(dq.size(), 202u);
    EXPECT_EQ(dq.front(), 41);
}

TEST(RingDeque, SustainedChurnAcrossManyWraps)
{
    // Steady-state queue pattern of the simulator: bounded occupancy,
    // unbounded traffic. The head walks the ring dozens of times; the
    // contents must match a reference model throughout.
    RingDeque<std::string> dq;
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 500; ++round) {
        const int burst = 1 + round % 7;
        for (int i = 0; i < burst; ++i)
            dq.push_back(std::to_string(next_in++));
        const int drain = (round % 2 == 0) ? burst : burst - 1;
        for (int i = 0; i < drain && !dq.empty(); ++i) {
            ASSERT_EQ(dq.front(), std::to_string(next_out));
            dq.pop_front();
            ++next_out;
        }
    }
    while (!dq.empty()) {
        ASSERT_EQ(dq.front(), std::to_string(next_out));
        dq.pop_front();
        ++next_out;
    }
    EXPECT_EQ(next_in, next_out);
}

TEST(RingDeque, ClearResetsToFreshState)
{
    RingDeque<int> dq;
    for (int i = 0; i < 20; ++i)
        dq.push_back(i);
    dq.clear();
    EXPECT_TRUE(dq.empty());
    dq.push_back(5);
    EXPECT_EQ(dq.front(), 5);
    EXPECT_EQ(dq.size(), 1u);
}

} // namespace
} // namespace hrsim
