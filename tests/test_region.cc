/**
 * @file
 * Unit tests for the M-MRP access-region builders.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/log.hh"
#include "workload/region.hh"

namespace hrsim
{
namespace
{

TEST(RegionCount, FullLocalityCoversEveryone)
{
    EXPECT_EQ(regionRemoteCount(16, 1.0), 15);
    EXPECT_EQ(regionRemoteCount(121, 1.0), 120);
}

TEST(RegionCount, FractionalRounding)
{
    EXPECT_EQ(regionRemoteCount(11, 0.2), 2);  // 0.2 * 10
    EXPECT_EQ(regionRemoteCount(100, 0.1), 10); // 0.1 * 99 = 9.9
    EXPECT_EQ(regionRemoteCount(4, 0.3), 1);   // 0.3 * 3 = 0.9
}

TEST(RegionCount, RejectsBadInputs)
{
    EXPECT_THROW(regionRemoteCount(4, 0.0), ConfigError);
    EXPECT_THROW(regionRemoteCount(4, 1.5), ConfigError);
    EXPECT_THROW(regionRemoteCount(0, 0.5), ConfigError);
}

TEST(RingRegion, IncludesSelfFirst)
{
    const auto region = ringRegion(3, 8, 0.5);
    ASSERT_FALSE(region.empty());
    EXPECT_EQ(region.front(), 3);
}

TEST(RingRegion, FullLocalityIsWholeMachine)
{
    const auto region = ringRegion(2, 8, 1.0);
    std::set<NodeId> unique(region.begin(), region.end());
    EXPECT_EQ(unique.size(), 8u);
}

TEST(RingRegion, ContiguousAndCentered)
{
    // R = 0.5 on 9 PMs: 4 remote PMs, split 2 left / 2 right.
    const auto region = ringRegion(4, 9, 0.5);
    std::set<NodeId> unique(region.begin(), region.end());
    const std::set<NodeId> expected = {2, 3, 4, 5, 6};
    EXPECT_EQ(unique, expected);
}

TEST(RingRegion, WrapsAroundTheEnds)
{
    const auto region = ringRegion(0, 10, 0.4); // 4 remote: 2 + 2
    std::set<NodeId> unique(region.begin(), region.end());
    const std::set<NodeId> expected = {8, 9, 0, 1, 2};
    EXPECT_EQ(unique, expected);
}

TEST(RingRegion, ClippedVariantStaysOnLine)
{
    const auto region = ringRegion(0, 10, 0.4, /*wrap=*/false);
    std::set<NodeId> unique(region.begin(), region.end());
    // The window slides inward: still 5 PMs, but all in [0, 4].
    const std::set<NodeId> expected = {0, 1, 2, 3, 4};
    EXPECT_EQ(unique, expected);
}

TEST(RingRegion, ClippedAtUpperEnd)
{
    const auto region = ringRegion(9, 10, 0.4, /*wrap=*/false);
    std::set<NodeId> unique(region.begin(), region.end());
    const std::set<NodeId> expected = {5, 6, 7, 8, 9};
    EXPECT_EQ(unique, expected);
}

TEST(RingRegion, WrapAndClipAgreeInTheMiddle)
{
    const auto wrapped = ringRegion(5, 11, 0.3, true);
    const auto clipped = ringRegion(5, 11, 0.3, false);
    std::set<NodeId> a(wrapped.begin(), wrapped.end());
    std::set<NodeId> b(clipped.begin(), clipped.end());
    EXPECT_EQ(a, b);
}

TEST(RingRegion, NoDuplicates)
{
    for (int pm = 0; pm < 12; ++pm) {
        const auto region = ringRegion(pm, 12, 1.0);
        std::set<NodeId> unique(region.begin(), region.end());
        EXPECT_EQ(unique.size(), region.size());
    }
}

TEST(MeshRegion, IncludesSelfFirst)
{
    const auto region = meshRegion(4, 3, 0.5);
    ASSERT_FALSE(region.empty());
    EXPECT_EQ(region.front(), 4);
}

TEST(MeshRegion, FullLocalityIsWholeMachine)
{
    const auto region = meshRegion(0, 4, 1.0);
    std::set<NodeId> unique(region.begin(), region.end());
    EXPECT_EQ(unique.size(), 16u);
}

TEST(MeshRegion, NearestByManhattanDistance)
{
    // Center of a 3x3 mesh (id 4): the 4 remote nearest are the
    // direct neighbors 1, 3, 5, 7.
    const auto region = meshRegion(4, 3, 0.5); // 4 remote
    std::set<NodeId> unique(region.begin(), region.end());
    const std::set<NodeId> expected = {4, 1, 3, 5, 7};
    EXPECT_EQ(unique, expected);
}

TEST(MeshRegion, CornerNeighborhood)
{
    // Corner 0 of a 3x3 mesh: nearest two at distance 1 are 1 and 3.
    const auto region = meshRegion(0, 3, 0.25); // 2 remote
    std::set<NodeId> unique(region.begin(), region.end());
    const std::set<NodeId> expected = {0, 1, 3};
    EXPECT_EQ(unique, expected);
}

TEST(MeshRegion, DistanceNeverDecreasesAlongTheList)
{
    const int width = 5;
    const auto region = meshRegion(7, width, 1.0);
    const auto dist = [&](NodeId a, NodeId b) {
        return std::abs(a % width - b % width) +
               std::abs(a / width - b / width);
    };
    for (std::size_t i = 2; i < region.size(); ++i)
        EXPECT_LE(dist(7, region[i - 1]), dist(7, region[i]));
}

TEST(MeshRegion, Deterministic)
{
    const auto a = meshRegion(11, 6, 0.3);
    const auto b = meshRegion(11, 6, 0.3);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace hrsim
