/**
 * @file
 * Tests for native broadcast on slotted hierarchical rings — the
 * paper's motivation (v) — and the guard rails on networks without
 * hardware broadcast.
 */

#include <gtest/gtest.h>

#include <set>

#include "mesh/mesh_network.hh"
#include "proto/packet_factory.hh"
#include "ring/ring_network.hh"
#include "ring/slotted_network.hh"

namespace hrsim
{
namespace
{

Packet
makeBroadcast(NodeId src, PacketId id = 1)
{
    Packet pkt;
    pkt.id = id;
    pkt.type = PacketType::WriteRequest;
    pkt.src = src;
    pkt.dst = broadcastNode;
    pkt.sizeFlits = 1; // header-only invalidation cell
    pkt.issueCycle = 0;
    return pkt;
}

struct BroadcastRun
{
    std::set<NodeId> receivers;
    Cycle lastDelivery = 0;
    std::size_t copies = 0;
};

BroadcastRun
runBroadcast(const std::string &topo, NodeId src, Cycle cycles = 500)
{
    SlottedRingNetwork::Params params;
    params.topo = RingTopology::parse(topo);
    params.cacheLineBytes = 64;
    SlottedRingNetwork net(params);

    BroadcastRun run;
    net.setDeliveryHandler([&](const Packet &pkt, Cycle now) {
        run.receivers.insert(pkt.dst);
        run.lastDelivery = now;
        ++run.copies;
    });
    net.inject(src, makeBroadcast(src));
    for (Cycle t = 0; t < cycles; ++t)
        net.tick(t);
    EXPECT_EQ(net.flitsInFlight(), 0u) << "broadcast must drain";
    return run;
}

TEST(Broadcast, ReachesEveryOtherPmOnTwoLevels)
{
    const auto run = runBroadcast("3:4", 0);
    EXPECT_EQ(run.receivers.size(), 11u);
    EXPECT_EQ(run.copies, 11u); // exactly once each
    EXPECT_EQ(run.receivers.count(0), 0u); // not the origin
}

TEST(Broadcast, ReachesEveryOtherPmOnThreeLevels)
{
    const auto run = runBroadcast("2:3:4", 5);
    EXPECT_EQ(run.receivers.size(), 23u);
    EXPECT_EQ(run.copies, 23u);
}

TEST(Broadcast, ReachesEveryOtherPmOnFourLevels)
{
    const auto run = runBroadcast("2:2:2:3", 17);
    EXPECT_EQ(run.receivers.size(), 23u);
    EXPECT_EQ(run.copies, 23u);
}

TEST(Broadcast, WorksFromEveryOrigin)
{
    for (NodeId src = 0; src < 12; ++src) {
        const auto run = runBroadcast("2:2:3", src);
        EXPECT_EQ(run.receivers.size(), 11u) << "src " << src;
        EXPECT_EQ(run.receivers.count(src), 0u) << "src " << src;
    }
}

TEST(Broadcast, SingleRingBroadcastIsOneLap)
{
    const auto run = runBroadcast("8", 0);
    EXPECT_EQ(run.receivers.size(), 7u);
    // One lap of an 8-slot ring: the last PM hears it within ~8
    // cycles of injection.
    EXPECT_LE(run.lastDelivery, 10u);
}

TEST(Broadcast, CompletionScalesWithRingSizes)
{
    // Completion time is a few ring laps, far below P unicast times.
    const auto run = runBroadcast("3:3:12", 0); // 108 PMs
    EXPECT_EQ(run.receivers.size(), 107u);
    EXPECT_LE(run.lastDelivery, 80u);
}

TEST(Broadcast, ConcurrentBroadcastsAllComplete)
{
    SlottedRingNetwork::Params params;
    params.topo = RingTopology::parse("2:3:4");
    params.cacheLineBytes = 64;
    SlottedRingNetwork net(params);

    std::set<std::pair<PacketId, NodeId>> received;
    net.setDeliveryHandler([&](const Packet &pkt, Cycle) {
        received.insert({pkt.id, pkt.dst});
    });
    net.inject(0, makeBroadcast(0, 101));
    net.inject(12, makeBroadcast(12, 102));
    net.inject(7, makeBroadcast(7, 103));
    for (Cycle t = 0; t < 1000; ++t)
        net.tick(t);
    EXPECT_EQ(received.size(), 3u * 23u);
    EXPECT_EQ(net.flitsInFlight(), 0u);
}

TEST(Broadcast, WormholeRingRejectsBroadcast)
{
    RingNetwork::Params params;
    params.topo = RingTopology::parse("2:4");
    RingNetwork net(params);
    EXPECT_THROW(net.inject(0, makeBroadcast(0)), ConfigError);
}

TEST(Broadcast, MeshRejectsBroadcast)
{
    MeshNetwork net(MeshNetwork::Params{3, 32, 4});
    EXPECT_THROW(net.inject(0, makeBroadcast(0)), ConfigError);
}

TEST(Broadcast, UnicastTrafficUnaffectedByBroadcastSupport)
{
    // Regression guard: ordinary traffic behaves identically with
    // the broadcast machinery present (ttl stays zero on unicasts).
    SlottedRingNetwork::Params params;
    params.topo = RingTopology::parse("2:3:4");
    params.cacheLineBytes = 64;
    SlottedRingNetwork net(params);
    PacketFactory factory(ChannelSpec::ring(), 64);
    int delivered = 0;
    net.setDeliveryHandler([&](const Packet &, Cycle) { ++delivered; });
    net.inject(0, factory.makeRequest(0, 23, false, 0));
    net.inject(13, factory.makeRequest(13, 1, true, 0));
    Cycle now = 0;
    while (delivered < 2 && now < 500)
        net.tick(now++);
    EXPECT_EQ(delivered, 2);
}

} // namespace
} // namespace hrsim
