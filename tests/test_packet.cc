/**
 * @file
 * Unit tests for packet types, the paper's sizing rules, and the
 * packet factory.
 */

#include <gtest/gtest.h>

#include "proto/packet.hh"
#include "proto/packet_factory.hh"

namespace hrsim
{
namespace
{

TEST(PacketType, Classification)
{
    EXPECT_TRUE(isRequest(PacketType::ReadRequest));
    EXPECT_TRUE(isRequest(PacketType::WriteRequest));
    EXPECT_FALSE(isRequest(PacketType::ReadResponse));
    EXPECT_FALSE(isRequest(PacketType::WriteResponse));

    // Read responses and write requests carry the cache line.
    EXPECT_TRUE(carriesData(PacketType::ReadResponse));
    EXPECT_TRUE(carriesData(PacketType::WriteRequest));
    EXPECT_FALSE(carriesData(PacketType::ReadRequest));
    EXPECT_FALSE(carriesData(PacketType::WriteResponse));
}

TEST(PacketType, ResponsePairing)
{
    EXPECT_EQ(responseFor(PacketType::ReadRequest),
              PacketType::ReadResponse);
    EXPECT_EQ(responseFor(PacketType::WriteRequest),
              PacketType::WriteResponse);
}

TEST(PacketType, Names)
{
    EXPECT_EQ(toString(PacketType::ReadRequest), "ReadRequest");
    EXPECT_EQ(toString(PacketType::WriteResponse), "WriteResponse");
}

TEST(ChannelSpec, RingCacheLinePacketSizes)
{
    // Paper Section 2.2: ring cl packets are 2/3/5/9 flits for
    // 16/32/64/128-byte lines (16 B flits, 1-flit header).
    const ChannelSpec ring = ChannelSpec::ring();
    EXPECT_EQ(ring.cacheLineFlits(16), 2u);
    EXPECT_EQ(ring.cacheLineFlits(32), 3u);
    EXPECT_EQ(ring.cacheLineFlits(64), 5u);
    EXPECT_EQ(ring.cacheLineFlits(128), 9u);
}

TEST(ChannelSpec, MeshCacheLinePacketSizes)
{
    // Paper Section 2.2: mesh cl packets are 8/12/20/36 flits for
    // 16/32/64/128-byte lines (4 B flits, 4-flit header).
    const ChannelSpec mesh = ChannelSpec::mesh();
    EXPECT_EQ(mesh.cacheLineFlits(16), 8u);
    EXPECT_EQ(mesh.cacheLineFlits(32), 12u);
    EXPECT_EQ(mesh.cacheLineFlits(64), 20u);
    EXPECT_EQ(mesh.cacheLineFlits(128), 36u);
}

TEST(ChannelSpec, HeaderOnlyPackets)
{
    const ChannelSpec ring = ChannelSpec::ring();
    const ChannelSpec mesh = ChannelSpec::mesh();
    EXPECT_EQ(ring.packetFlits(PacketType::ReadRequest, 64), 1u);
    EXPECT_EQ(ring.packetFlits(PacketType::WriteResponse, 64), 1u);
    EXPECT_EQ(mesh.packetFlits(PacketType::ReadRequest, 64), 4u);
    EXPECT_EQ(mesh.packetFlits(PacketType::WriteResponse, 64), 4u);
}

TEST(ChannelSpec, DataPackets)
{
    const ChannelSpec ring = ChannelSpec::ring();
    EXPECT_EQ(ring.packetFlits(PacketType::ReadResponse, 64), 5u);
    EXPECT_EQ(ring.packetFlits(PacketType::WriteRequest, 64), 5u);
}

TEST(Flit, HeadAndTailFlags)
{
    Packet pkt;
    pkt.id = 9;
    pkt.sizeFlits = 3;
    const Flit head = makeFlit(pkt, 0);
    const Flit body = makeFlit(pkt, 1);
    const Flit tail = makeFlit(pkt, 2);
    EXPECT_TRUE(head.isHead());
    EXPECT_FALSE(head.isTail());
    EXPECT_FALSE(body.isHead());
    EXPECT_FALSE(body.isTail());
    EXPECT_FALSE(tail.isHead());
    EXPECT_TRUE(tail.isTail());
}

TEST(Flit, SingleFlitPacketIsHeadAndTail)
{
    Packet pkt;
    pkt.sizeFlits = 1;
    const Flit only = makeFlit(pkt, 0);
    EXPECT_TRUE(only.isHead());
    EXPECT_TRUE(only.isTail());
}

TEST(Flit, PacketRoundTripThroughFlit)
{
    Packet pkt;
    pkt.id = 1234;
    pkt.type = PacketType::WriteRequest;
    pkt.src = 3;
    pkt.dst = 17;
    pkt.sizeFlits = 5;
    pkt.issueCycle = 998877;
    const Packet back = packetFromFlit(makeFlit(pkt, 2));
    EXPECT_EQ(back.id, pkt.id);
    EXPECT_EQ(back.type, pkt.type);
    EXPECT_EQ(back.src, pkt.src);
    EXPECT_EQ(back.dst, pkt.dst);
    EXPECT_EQ(back.sizeFlits, pkt.sizeFlits);
    EXPECT_EQ(back.issueCycle, pkt.issueCycle);
}

TEST(PacketFactory, RequestFields)
{
    PacketFactory factory(ChannelSpec::ring(), 64);
    const Packet pkt = factory.makeRequest(2, 5, true, 100);
    EXPECT_EQ(pkt.type, PacketType::ReadRequest);
    EXPECT_EQ(pkt.src, 2);
    EXPECT_EQ(pkt.dst, 5);
    EXPECT_EQ(pkt.sizeFlits, 1u);
    EXPECT_EQ(pkt.issueCycle, 100u);
}

TEST(PacketFactory, ResponseMirrorsRequest)
{
    PacketFactory factory(ChannelSpec::mesh(), 32);
    const Packet req = factory.makeRequest(2, 5, true, 100);
    const Packet resp = factory.makeResponse(req);
    EXPECT_EQ(resp.type, PacketType::ReadResponse);
    EXPECT_EQ(resp.src, 5);
    EXPECT_EQ(resp.dst, 2);
    EXPECT_EQ(resp.sizeFlits, 12u); // carries the 32 B line
    EXPECT_EQ(resp.issueCycle, 100u); // round-trip timing preserved
    EXPECT_NE(resp.id, req.id);
}

TEST(PacketFactory, WriteSizes)
{
    PacketFactory factory(ChannelSpec::ring(), 128);
    const Packet req = factory.makeRequest(0, 1, false, 0);
    EXPECT_EQ(req.type, PacketType::WriteRequest);
    EXPECT_EQ(req.sizeFlits, 9u); // data travels with the request
    const Packet resp = factory.makeResponse(req);
    EXPECT_EQ(resp.sizeFlits, 1u); // ack is header-only
}

TEST(PacketFactory, IdsAreUnique)
{
    PacketFactory factory(ChannelSpec::ring(), 32);
    const Packet a = factory.makeRequest(0, 1, true, 0);
    const Packet b = factory.makeRequest(0, 1, true, 0);
    const Packet c = factory.makeResponse(a);
    EXPECT_NE(a.id, b.id);
    EXPECT_NE(b.id, c.id);
    EXPECT_NE(a.id, c.id);
}

TEST(PacketFactory, ClFlitsAccessor)
{
    PacketFactory ring(ChannelSpec::ring(), 128);
    PacketFactory mesh(ChannelSpec::mesh(), 128);
    EXPECT_EQ(ring.cacheLineFlits(), 9u);
    EXPECT_EQ(mesh.cacheLineFlits(), 36u);
}

} // namespace
} // namespace hrsim
