/**
 * @file
 * Sweep-engine and skip-idle regression tests.
 *
 * Two contracts are pinned here:
 *  1. SweepRunner determinism — serial (jobs = 1) and parallel
 *     (jobs = 4) sweeps of a mixed ring/mesh point list produce
 *     bit-identical RunResults, in submission order.
 *  2. Skip-idle invariance — the fast tick scheduler
 *     (sim.idleSkip = true, the default) produces metrics identical
 *     to the legacy every-cycle loop, including the blocked-cycle
 *     counter that the sleep path reconstructs in bulk.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/sweep.hh"
#include "core/system.hh"

namespace hrsim
{
namespace
{

SimConfig
quickSim()
{
    SimConfig sim;
    sim.warmupCycles = 1000;
    sim.batchCycles = 1000;
    sim.numBatches = 3;
    return sim;
}

/** Mixed ring/mesh list, including a saturated ring so the blocked
 *  (sleeping) path is exercised. */
std::vector<SystemConfig>
mixedPoints()
{
    std::vector<SystemConfig> points;

    SystemConfig ring_small = SystemConfig::ring("2:4", 64);
    ring_small.workload.outstandingT = 4;
    ring_small.sim = quickSim();
    points.push_back(ring_small);

    SystemConfig ring_saturated = SystemConfig::ring("18", 128);
    ring_saturated.workload.outstandingT = 4;
    ring_saturated.sim = quickSim();
    points.push_back(ring_saturated);

    SystemConfig mesh_small = SystemConfig::mesh(3, 64, 4);
    mesh_small.workload.outstandingT = 4;
    mesh_small.sim = quickSim();
    points.push_back(mesh_small);

    SystemConfig ring_local = SystemConfig::ring("3:4", 32);
    ring_local.workload.localityR = 0.5;
    ring_local.workload.outstandingT = 2;
    ring_local.sim = quickSim();
    points.push_back(ring_local);

    SystemConfig mesh_large = SystemConfig::mesh(4, 32, 1);
    mesh_large.workload.outstandingT = 2;
    mesh_large.sim = quickSim();
    points.push_back(mesh_large);

    return points;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.latencyCI95, b.latencyCI95);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.latencyP50, b.latencyP50);
    EXPECT_EQ(a.latencyP95, b.latencyP95);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.networkUtilization, b.networkUtilization);
    EXPECT_EQ(a.ringLevelUtilization, b.ringLevelUtilization);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.throughputPerPm, b.throughputPerPm);
    EXPECT_EQ(a.counters.missesGenerated, b.counters.missesGenerated);
    EXPECT_EQ(a.counters.remoteIssued, b.counters.remoteIssued);
    EXPECT_EQ(a.counters.remoteCompleted,
              b.counters.remoteCompleted);
    EXPECT_EQ(a.counters.localIssued, b.counters.localIssued);
    EXPECT_EQ(a.counters.localCompleted, b.counters.localCompleted);
    EXPECT_EQ(a.counters.blockedCycles, b.counters.blockedCycles);
}

TEST(Sweep, SerialAndParallelAreBitIdentical)
{
    const std::vector<SystemConfig> points = mixedPoints();

    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    SweepRunner serial(serial_opts);
    const std::vector<RunResult> serial_results = serial.run(points);

    SweepOptions parallel_opts;
    parallel_opts.jobs = 4;
    SweepRunner parallel(parallel_opts);
    const std::vector<RunResult> parallel_results =
        parallel.run(points);

    ASSERT_EQ(serial_results.size(), points.size());
    ASSERT_EQ(parallel_results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectIdentical(serial_results[i], parallel_results[i]);
    }
}

TEST(Sweep, MatchesDirectRunSystemInSubmissionOrder)
{
    const std::vector<SystemConfig> points = mixedPoints();
    const std::vector<RunResult> swept = runSweep(points, 4);
    ASSERT_EQ(swept.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectIdentical(swept[i], runSystem(points[i]));
    }
}

TEST(Sweep, RunnerIsReusableAcrossBatches)
{
    const std::vector<SystemConfig> points = mixedPoints();
    SweepOptions opts;
    opts.jobs = 3;
    SweepRunner runner(opts);
    const std::vector<RunResult> first = runner.run(points);
    const std::vector<RunResult> second = runner.run(points);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdentical(first[i], second[i]);
}

TEST(Sweep, PointSeedIsDeterministicAndSpreads)
{
    EXPECT_EQ(SweepRunner::pointSeed(42, 0),
              SweepRunner::pointSeed(42, 0));
    EXPECT_NE(SweepRunner::pointSeed(42, 0),
              SweepRunner::pointSeed(42, 1));
    EXPECT_NE(SweepRunner::pointSeed(42, 0),
              SweepRunner::pointSeed(43, 0));
}

TEST(Sweep, ReseedPointsGivesDistinctStreamsDeterministically)
{
    // Two identical configs: reseeding must give them different
    // metrics (distinct streams), reproducibly across runs.
    SystemConfig cfg = SystemConfig::ring("8", 64);
    cfg.sim = quickSim();
    const std::vector<SystemConfig> points{cfg, cfg};

    SweepOptions opts;
    opts.jobs = 2;
    opts.reseedPoints = true;
    SweepRunner first(opts);
    const auto a = first.run(points);
    SweepRunner second(opts);
    const auto b = second.run(points);

    EXPECT_NE(a[0].avgLatency, a[1].avgLatency);
    expectIdentical(a[0], b[0]);
    expectIdentical(a[1], b[1]);
}

TEST(Sweep, IdleSkipMatchesEveryCycleTickLoop)
{
    for (SystemConfig cfg : mixedPoints()) {
        SCOPED_TRACE(cfg.kind == NetworkKind::Mesh
                         ? "mesh"
                         : "ring");
        cfg.sim.idleSkip = true;
        const RunResult fast = runSystem(cfg);
        cfg.sim.idleSkip = false;
        const RunResult legacy = runSystem(cfg);
        expectIdentical(fast, legacy);
        // The saturated points must actually exercise the sleep path.
        EXPECT_GT(fast.samples, 0u);
    }
}

TEST(Sweep, IdleSkipPreservesPaperProtocolMetrics)
{
    // The paper-conformance suite runs with this protocol; pin that
    // the fast scheduler leaves its metrics (latency means, sample
    // counts) unchanged on a heavily blocked configuration.
    SystemConfig cfg = SystemConfig::ring("12", 128);
    cfg.workload.outstandingT = 4;
    cfg.sim.warmupCycles = 3000;
    cfg.sim.batchCycles = 3000;
    cfg.sim.numBatches = 3;

    cfg.sim.idleSkip = true;
    const RunResult fast = runSystem(cfg);
    cfg.sim.idleSkip = false;
    const RunResult legacy = runSystem(cfg);

    EXPECT_EQ(fast.avgLatency, legacy.avgLatency);
    EXPECT_EQ(fast.samples, legacy.samples);
    EXPECT_EQ(fast.counters.blockedCycles,
              legacy.counters.blockedCycles);
    EXPECT_GT(fast.counters.blockedCycles, 0u);
}

} // namespace
} // namespace hrsim
