/**
 * @file
 * Tests for the arbitration and priority rules of Section 2: ring
 * NICs prefer transit, then responses, then requests; mesh local
 * ports prefer responses at packet boundaries; wormhole links are
 * held until the tail flit.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mesh/mesh_network.hh"
#include "proto/packet_factory.hh"
#include "ring/ring_network.hh"

namespace hrsim
{
namespace
{

struct Delivery
{
    Packet pkt;
    Cycle when;
};

TEST(RingPriority, ResponsesInjectBeforeRequests)
{
    // Queue a request and a response at the same NIC in the same
    // cycle; the response's head must leave first.
    RingNetwork::Params params;
    params.topo = RingTopology::parse("4");
    params.cacheLineBytes = 64;
    RingNetwork net(params);
    PacketFactory factory(ChannelSpec::ring(), 64);

    std::vector<Delivery> deliveries;
    net.setDeliveryHandler([&](const Packet &pkt, Cycle now) {
        deliveries.push_back({pkt, now});
    });

    // A 5-flit write request and a 5-flit read response, same size,
    // same destination: only priority decides the order.
    const Packet req = factory.makeRequest(0, 2, false, 0);
    // A response travelling 0 -> 2 answers a request that went 2 -> 0.
    const Packet resp =
        factory.makeResponse(factory.makeRequest(2, 0, true, 0));
    net.inject(0, req);
    net.inject(0, resp);

    Cycle now = 0;
    while (deliveries.size() < 2 && now < 200)
        net.tick(now++);
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(deliveries[0].pkt.type, PacketType::ReadResponse);
    EXPECT_EQ(deliveries[1].pkt.type, PacketType::WriteRequest);
    EXPECT_LT(deliveries[0].when, deliveries[1].when);
}

TEST(RingPriority, WormholeLinkHeldUntilTail)
{
    // With a request mid-transmission, a response arriving one cycle
    // later must NOT preempt it: worms are never interleaved.
    RingNetwork::Params params;
    params.topo = RingTopology::parse("4");
    params.cacheLineBytes = 128; // 9-flit worms: long enough to race
    RingNetwork net(params);
    PacketFactory factory(ChannelSpec::ring(), 128);

    std::vector<Delivery> deliveries;
    net.setDeliveryHandler([&](const Packet &pkt, Cycle now) {
        deliveries.push_back({pkt, now});
    });

    const Packet req = factory.makeRequest(0, 2, false, 0);
    net.inject(0, req);
    net.tick(0);
    net.tick(1); // the request's head is on the wire now

    const Packet resp =
        factory.makeResponse(factory.makeRequest(2, 0, true, 0));
    net.inject(0, resp);

    Cycle now = 2;
    while (deliveries.size() < 2 && now < 200)
        net.tick(now++);
    ASSERT_EQ(deliveries.size(), 2u);
    // The request started first and must finish first.
    EXPECT_EQ(deliveries[0].pkt.type, PacketType::WriteRequest);
}

TEST(MeshPriority, LocalPortPrefersResponses)
{
    MeshNetwork net(MeshNetwork::Params{2, 64, 4});
    PacketFactory factory(ChannelSpec::mesh(), 64);

    std::vector<Delivery> deliveries;
    net.setDeliveryHandler([&](const Packet &pkt, Cycle now) {
        deliveries.push_back({pkt, now});
    });

    const Packet req = factory.makeRequest(0, 1, false, 0);
    const Packet resp =
        factory.makeResponse(factory.makeRequest(1, 0, true, 0));
    net.inject(0, req);
    net.inject(0, resp);

    Cycle now = 0;
    while (deliveries.size() < 2 && now < 300)
        net.tick(now++);
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(deliveries[0].pkt.type, PacketType::ReadResponse);
}

TEST(MeshPriority, FixedArbitrationStillDeliversEverything)
{
    // The A2 ablation switch must not break correctness, only
    // fairness.
    MeshNetwork::Params params{3, 32, 4};
    params.roundRobinArbitration = false;
    MeshNetwork net(params);
    PacketFactory factory(ChannelSpec::mesh(), 32);

    int delivered = 0;
    net.setDeliveryHandler([&](const Packet &, Cycle) { ++delivered; });
    int sent = 0;
    for (NodeId src = 0; src < 9; ++src) {
        const Packet pkt =
            factory.makeRequest(src, (src + 4) % 9, true, 0);
        net.inject(src, pkt);
        ++sent;
    }
    Cycle now = 0;
    while (delivered < sent && now < 2000)
        net.tick(now++);
    EXPECT_EQ(delivered, sent);
}

TEST(RingPriority, BlockedTransitBacklogDrainsInOrder)
{
    // Fill a NIC's transit buffer behind a long injection, then let
    // it drain: per-type FIFO order between same-source packets must
    // be preserved (deterministic routing never reorders a flow).
    RingNetwork::Params params;
    params.topo = RingTopology::parse("6");
    params.cacheLineBytes = 32;
    RingNetwork net(params);
    PacketFactory factory(ChannelSpec::ring(), 32);

    std::vector<Delivery> deliveries;
    net.setDeliveryHandler([&](const Packet &pkt, Cycle now) {
        deliveries.push_back({pkt, now});
    });

    // Three writes from PM 0 to PM 3 pass through PMs 1 and 2. The
    // out queue holds one packet, so injections are staggered.
    Cycle now = 0;
    std::vector<PacketId> sent_order;
    for (int i = 0; i < 3; ++i) {
        const Packet pkt = factory.makeRequest(0, 3, false, now);
        while (!net.canInject(0, pkt) && now < 1000)
            net.tick(now++);
        ASSERT_TRUE(net.canInject(0, pkt));
        net.inject(0, pkt);
        sent_order.push_back(pkt.id);
    }
    while (deliveries.size() < 3 && now < 3000)
        net.tick(now++);
    ASSERT_EQ(deliveries.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(deliveries[i].pkt.id, sent_order[i]);
}

} // namespace
} // namespace hrsim
