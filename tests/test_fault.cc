/**
 * @file
 * Fault-injection and graceful-degradation tests (DESIGN.md s13).
 *
 * Pinned contracts:
 *  1. Spec grammar — every target/action/window form parses, the
 *     canonical rendering round-trips, and malformed specs fail with
 *     a diagnostic instead of a partial parse.
 *  2. Validation — a plan naming a component the topology does not
 *     have is a ConfigError at System construction, and the slotted
 *     ring rejects fault plans outright.
 *  3. Determinism — a faulted run is a pure function of config +
 *     seed: reruns, the every-cycle driver (idleSkip off) and
 *     parallel sweeps all reproduce it bit for bit.
 *  4. Empty-plan identity — without fault events no fault state
 *     exists: no fault.* metrics are registered and results are
 *     identical to a config that never mentions the subsystem.
 *  5. Conservation — injected == delivered + dropped + in-flight at
 *     every cycle boundary, for link-down and corrupt windows on
 *     both fabrics; the fabric drains rather than wedges.
 *  6. Degradation — timeouts reissue lost transactions, abandonment
 *     frees their slots, and stale (duplicate) responses are
 *     swallowed without corrupting the outstanding count.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "fault/fault_plan.hh"

namespace hrsim
{
namespace
{

FaultEvent
spec(const std::string &text)
{
    FaultEvent event;
    std::string err;
    EXPECT_TRUE(parseFaultSpec(text, event, err)) << err;
    return event;
}

SimConfig
quickSim()
{
    SimConfig sim;
    sim.warmupCycles = 2000;
    sim.batchCycles = 2000;
    sim.numBatches = 3;
    return sim;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.latencyCI95, b.latencyCI95);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.latencyP50, b.latencyP50);
    EXPECT_EQ(a.latencyP95, b.latencyP95);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.networkUtilization, b.networkUtilization);
    EXPECT_EQ(a.ringLevelUtilization, b.ringLevelUtilization);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.throughputPerPm, b.throughputPerPm);
    EXPECT_EQ(a.counters.missesGenerated, b.counters.missesGenerated);
    EXPECT_EQ(a.counters.remoteIssued, b.counters.remoteIssued);
    EXPECT_EQ(a.counters.remoteCompleted, b.counters.remoteCompleted);
    EXPECT_EQ(a.counters.localIssued, b.counters.localIssued);
    EXPECT_EQ(a.counters.localCompleted, b.counters.localCompleted);
    EXPECT_EQ(a.counters.blockedCycles, b.counters.blockedCycles);
}

// ---------------------------------------------------------------
// 1. Spec grammar
// ---------------------------------------------------------------

TEST(FaultParser, ParsesEveryTargetKind)
{
    FaultEvent e = spec("mesh.r3.east:down@100..200");
    EXPECT_EQ(e.target.kind, FaultTargetKind::MeshPort);
    EXPECT_EQ(e.target.id, 3);
    EXPECT_EQ(e.target.port, 0);
    EXPECT_EQ(e.action, FaultAction::LinkDown);
    EXPECT_EQ(e.start, 100u);
    EXPECT_EQ(e.end, 200u);

    e = spec("mesh.r7:stall@5..9");
    EXPECT_EQ(e.target.kind, FaultTargetKind::MeshRouter);
    EXPECT_EQ(e.target.id, 7);
    EXPECT_EQ(e.action, FaultAction::Stall);

    e = spec("ring.nic12:corrupt@1..2");
    EXPECT_EQ(e.target.kind, FaultTargetKind::RingNic);
    EXPECT_EQ(e.target.id, 12);
    EXPECT_EQ(e.action, FaultAction::Corrupt);

    e = spec("ring.l1.iri2.upper:down@10..");
    EXPECT_EQ(e.target.kind, FaultTargetKind::RingIri);
    EXPECT_EQ(e.target.level, 1);
    EXPECT_EQ(e.target.id, 2);
    EXPECT_TRUE(e.target.upper);
    EXPECT_EQ(e.end, FaultEvent::foreverCycle);
}

TEST(FaultParser, CanonicalRoundTrips)
{
    const std::vector<std::string> specs = {
        "mesh.r3.east:down@100..200",
        "mesh.r0.north:corrupt@1..2",
        "mesh.r15:stall@7..",
        "ring.nic5:down@0..1000000",
        "ring.l0.iri3.upper:stall@42..43",
        "ring.l2.iri0.lower:corrupt@9..18",
    };
    for (const std::string &text : specs) {
        SCOPED_TRACE(text);
        EXPECT_EQ(spec(text).canonical(), text);
        // Parsing the canonical form again is a fixed point.
        EXPECT_EQ(spec(spec(text).canonical()).canonical(), text);
    }
}

TEST(FaultParser, RejectsMalformedSpecs)
{
    const std::vector<std::string> bad = {
        "",                            // nothing
        "disk.r1:down@1..2",           // unknown target family
        "mesh.r:down@1..2",            // missing router id
        "mesh.r1.up:down@1..2",        // bad port name
        "mesh.r1.east:melt@1..2",      // unknown action
        "mesh.r1:down@1..2",           // down needs a port
        "mesh.r1.east:stall@1..2",     // stall takes a whole router
        "ring.nic2:down",              // no window
        "ring.nic2:down@5",            // no '..'
        "ring.nic2:down@5..5",         // empty window
        "ring.nic2:down@9..4",         // inverted window
        "ring.l1.iri0:down@1..2",      // IRI needs a side
        "ring.nic2:down@1..2extra",    // trailing garbage
    };
    for (const std::string &text : bad) {
        SCOPED_TRACE(text);
        FaultEvent event;
        std::string err;
        EXPECT_FALSE(parseFaultSpec(text, event, err));
        EXPECT_FALSE(err.empty());
    }
}

TEST(FaultParser, PlanTextWithDirectivesAndComments)
{
    const char *text =
        "# outage study\n"
        "timeout 500\n"
        "retries 2\n"
        "ring.nic1:down@100..200   # first outage\n"
        "\n"
        "ring.nic2:stall@300..\n";
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultPlanText(text, plan, err)) << err;
    ASSERT_EQ(plan.events.size(), 2u);
    EXPECT_EQ(plan.retry.timeoutCycles, 500u);
    EXPECT_EQ(plan.retry.maxRetries, 2u);
    EXPECT_EQ(plan.events[0].canonical(), "ring.nic1:down@100..200");
    EXPECT_EQ(plan.events[1].canonical(), "ring.nic2:stall@300..");
}

TEST(FaultParser, PlanTextReportsLineNumbers)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(parseFaultPlanText(
        "ring.nic1:down@1..2\nbogus line\n", plan, err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

// ---------------------------------------------------------------
// 2. Validation
// ---------------------------------------------------------------

TEST(FaultValidation, UnknownTargetsAreConfigErrors)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = quickSim();

    cfg.faultPlan.events = {spec("ring.nic99:down@1..2")};
    EXPECT_THROW(System{cfg}, ConfigError);

    cfg.faultPlan.events = {spec("mesh.r0.east:down@1..2")};
    EXPECT_THROW(System{cfg}, ConfigError); // mesh target, ring net

    cfg.faultPlan.events = {spec("ring.l7.iri0.lower:stall@1..2")};
    EXPECT_THROW(System{cfg}, ConfigError); // no such level

    SystemConfig mesh = SystemConfig::mesh(4, 64, 4);
    mesh.sim = quickSim();
    mesh.faultPlan.events = {spec("mesh.r0.north:down@1..2")};
    EXPECT_THROW(System{mesh}, ConfigError); // edge router, no link
    mesh.faultPlan.events = {spec("ring.nic0:down@1..2")};
    EXPECT_THROW(System{mesh}, ConfigError); // ring target, mesh net
}

TEST(FaultValidation, SlottedRingRejectsFaultPlans)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.ringSlotted = true;
    cfg.sim = quickSim();
    cfg.faultPlan.events = {spec("ring.nic1:down@1..2")};
    EXPECT_THROW(System{cfg}, ConfigError);
}

// ---------------------------------------------------------------
// 3. + 4. Determinism and empty-plan identity
// ---------------------------------------------------------------

SystemConfig
faultedRing()
{
    SystemConfig cfg = SystemConfig::ring("3:6", 64);
    cfg.sim = quickSim();
    cfg.sim.seed = 17;
    cfg.faultPlan.events = {
        spec("ring.nic2:down@2500..4000"),
        spec("ring.l0.iri1.lower:stall@4500..5000"),
        spec("ring.nic7:corrupt@5200..5600"),
    };
    cfg.faultPlan.retry.timeoutCycles = 600;
    return cfg;
}

SystemConfig
faultedMesh()
{
    SystemConfig cfg = SystemConfig::mesh(4, 64, 4);
    cfg.sim = quickSim();
    cfg.sim.seed = 17;
    cfg.faultPlan.events = {
        spec("mesh.r5.east:down@2500..4000"),
        spec("mesh.r10:stall@4500..5000"),
        spec("mesh.r5.north:corrupt@5200..5600"),
    };
    cfg.faultPlan.retry.timeoutCycles = 600;
    return cfg;
}

TEST(FaultDeterminism, RerunsAndEveryCycleDriverAgree)
{
    for (const SystemConfig &base : {faultedRing(), faultedMesh()}) {
        const RunResult first = runSystem(base);
        expectIdentical(first, runSystem(base));

        // The every-cycle driver also disables the network's
        // active-set scheduling, so this crosses the faulted fast
        // path against the faulted full scan in-process.
        SystemConfig legacy = base;
        legacy.sim.idleSkip = false;
        expectIdentical(first, runSystem(legacy));
    }
}

TEST(FaultDeterminism, ParallelSweepReproducesSerial)
{
    std::vector<SystemConfig> points = {faultedRing(), faultedMesh()};
    const std::vector<RunResult> serial = runSweep(points, 1);
    const std::vector<RunResult> parallel = runSweep(points, 4);
    ASSERT_EQ(serial.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectIdentical(serial[i], parallel[i]);
        expectIdentical(serial[i], runSystem(points[i]));
    }
}

TEST(FaultGating, EmptyPlanRegistersNothingAndChangesNothing)
{
    SystemConfig plain = SystemConfig::ring("2:4", 64);
    plain.sim = quickSim();

    // Touching the retry policy without scheduling any event keeps
    // the plan empty: no controller, no metrics, identical results.
    SystemConfig tweaked = plain;
    tweaked.faultPlan.retry.timeoutCycles = 7;
    tweaked.faultPlan.retry.maxRetries = 1;

    System probe(plain);
    EXPECT_EQ(probe.faults(), nullptr);
    for (const MetricSample &sample : probe.metrics().snapshot()) {
        EXPECT_EQ(sample.name.find("fault."), std::string::npos);
        EXPECT_EQ(sample.name.find("drop."), std::string::npos);
        EXPECT_EQ(sample.name.find("retry."), std::string::npos);
    }

    expectIdentical(runSystem(plain), runSystem(tweaked));
}

TEST(FaultGating, ActivePlanRegistersTheFaultMetrics)
{
    System system(faultedRing());
    ASSERT_NE(system.faults(), nullptr);
    bool saw_drop = false, saw_fault = false, saw_retry = false;
    for (const MetricSample &sample : system.metrics().snapshot()) {
        saw_drop |= sample.name.rfind("drop.", 0) == 0;
        saw_fault |= sample.name.rfind("fault.", 0) == 0;
        saw_retry |= sample.name.rfind("retry.", 0) == 0;
    }
    EXPECT_TRUE(saw_drop);
    EXPECT_TRUE(saw_fault);
    EXPECT_TRUE(saw_retry);
}

// ---------------------------------------------------------------
// 5. Conservation
// ---------------------------------------------------------------

void
expectConservation(const SystemConfig &cfg)
{
    System system(cfg);
    ASSERT_NE(system.faults(), nullptr);
    // Walk through the windows in slices, checking the ledger at
    // every boundary: a violation is caught near the cycle that
    // caused it, not at the horizon.
    for (int slice = 0; slice < 40; ++slice) {
        system.step(250);
        const FaultAccounting &acct = system.faults()->accounting();
        ASSERT_EQ(acct.injectedFlits,
                  acct.deliveredFlits + acct.droppedFlits +
                      system.network().flitsInFlight())
            << "cycle " << system.now();
    }
    // The windows are long past: the fabric must have drained and
    // kept delivering (no wedge, no watchdog stall).
    const FaultAccounting &acct = system.faults()->accounting();
    EXPECT_GT(acct.droppedWorms, 0u);
    EXPECT_GT(acct.deliveredFlits, 0u);
}

TEST(FaultConservation, RingLinkDownDrainsWithoutLoss)
{
    SystemConfig cfg = SystemConfig::ring("3:6", 64);
    cfg.sim = quickSim();
    cfg.faultPlan.events = {
        spec("ring.nic2:down@1000..3000"),
        spec("ring.l0.iri0.lower:down@2000..3500"),
    };
    cfg.faultPlan.retry.timeoutCycles = 800;
    expectConservation(cfg);
}

TEST(FaultConservation, MeshLinkDownDrainsWithoutLoss)
{
    SystemConfig cfg = SystemConfig::mesh(4, 64, 4);
    cfg.sim = quickSim();
    cfg.faultPlan.events = {
        spec("mesh.r5.east:down@1000..3000"),
        spec("mesh.r9.south:down@2000..3500"),
    };
    cfg.faultPlan.retry.timeoutCycles = 800;
    expectConservation(cfg);
}

TEST(FaultConservation, CorruptWindowsPoisonButConserve)
{
    SystemConfig cfg = SystemConfig::ring("3:6", 64);
    cfg.sim = quickSim();
    cfg.faultPlan.events = {spec("ring.nic1:corrupt@1000..2500")};
    System system(cfg);
    for (int slice = 0; slice < 30; ++slice) {
        system.step(250);
        const FaultAccounting &acct = system.faults()->accounting();
        ASSERT_EQ(acct.injectedFlits,
                  acct.deliveredFlits + acct.droppedFlits +
                      system.network().flitsInFlight())
            << "cycle " << system.now();
    }
    const FaultAccounting &acct = system.faults()->accounting();
    EXPECT_GT(acct.poisonedWorms, 0u);
    EXPECT_GT(acct.droppedFlits, 0u);
    // Corruption never truncates worms — they travel whole and die
    // at ejection.
    EXPECT_EQ(acct.droppedWorms, 0u);
}

TEST(FaultConservation, StallWindowsDelayButDropNothing)
{
    SystemConfig cfg = SystemConfig::mesh(3, 64, 4);
    cfg.sim = quickSim();
    cfg.faultPlan.events = {spec("mesh.r4:stall@1000..1400")};
    System system(cfg);
    system.step(8000);
    const FaultAccounting &acct = system.faults()->accounting();
    EXPECT_EQ(acct.droppedFlits, 0u);
    EXPECT_EQ(acct.droppedWorms, 0u);
    EXPECT_GT(acct.deliveredFlits, 0u);
    EXPECT_EQ(acct.injectedFlits,
              acct.deliveredFlits + system.network().flitsInFlight());
}

// ---------------------------------------------------------------
// 6. Graceful degradation
// ---------------------------------------------------------------

TEST(FaultRetry, TimeoutsReissueAndOutagesAreSurvived)
{
    SystemConfig cfg = SystemConfig::ring("3:6", 64);
    cfg.sim = quickSim();
    cfg.faultPlan.events = {spec("ring.nic2:down@2500..4500")};
    cfg.faultPlan.retry.timeoutCycles = 500;
    cfg.faultPlan.retry.maxRetries = 8;
    System system(cfg);
    system.step(12000);
    EXPECT_GT(system.retryCounters().reissued, 0u);
    EXPECT_GT(system.faults()->accounting().droppedWorms, 0u);
    // With the window long closed and generous retries, everything
    // lost was re-driven: traffic still flows and nothing is wedged.
    EXPECT_GT(system.counters().remoteCompleted, 0u);
}

TEST(FaultRetry, AbandonmentFreesOutstandingSlots)
{
    // A permanently dead NIC link with a stingy retry budget: the
    // PMs behind it must abandon lost transactions instead of
    // saturating forever.
    SystemConfig cfg = SystemConfig::ring("3:6", 64);
    cfg.sim = quickSim();
    cfg.sim.watchdogCycles = 0; // quiescent gaps are expected here
    cfg.faultPlan.events = {spec("ring.nic2:down@1000..")};
    cfg.faultPlan.retry.timeoutCycles = 300;
    cfg.faultPlan.retry.maxRetries = 2;
    System system(cfg);
    system.step(30000);
    EXPECT_GT(system.retryCounters().abandoned, 0u);
    // Abandonment released the slots: the system is not pinned at
    // full occupancy.
    EXPECT_LT(system.totalOutstanding(),
              cfg.workload.outstandingT *
                  cfg.numProcessors());
    EXPECT_GT(system.counters().remoteCompleted, 0u);
}

TEST(FaultRetry, StaleResponsesDoNotCorruptAccounting)
{
    // A short timeout against an undamaged but congested fabric:
    // originals race their reissues, so the loser of each race
    // arrives stale. The outstanding count must survive this.
    SystemConfig cfg = SystemConfig::mesh(4, 64, 4);
    cfg.sim = quickSim();
    cfg.workload.missRateC = 0.2; // congest
    cfg.faultPlan.events = {spec("mesh.r5.east:corrupt@1..2")};
    cfg.faultPlan.retry.timeoutCycles = 40;
    cfg.faultPlan.retry.maxRetries = 10;
    System system(cfg);
    system.step(10000);
    EXPECT_GT(system.retryCounters().stale, 0u);
    EXPECT_GE(cfg.workload.outstandingT * cfg.numProcessors(),
              system.totalOutstanding());
    EXPECT_GT(system.counters().remoteCompleted, 0u);
}

} // namespace
} // namespace hrsim
