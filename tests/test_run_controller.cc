/**
 * @file
 * Adaptive run control tests (stats/run_controller.hh).
 *
 * Pinned contracts:
 *  1. tQuantile95 matches the standard two-sided 95% table and decays
 *     to the normal quantile for large df.
 *  2. mserTruncation finds the bias/noise boundary: zero for a
 *     stationary series, the transient length for a biased head, and
 *     never more than half the series.
 *  3. The controller's decision sequence — converged on a tight
 *     stationary series, saturated on a sustained climb with pegged
 *     queues, max_cycles when the budget runs out first — and its
 *     false-positive guard: a noisy-but-stationary high-occupancy
 *     series must never be flagged saturated.
 *  4. System-level determinism — adaptive runs are bit-identical
 *     across reruns and across sweep parallelism, and the default
 *     (fixed-length) protocol is untouched by the feature.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/sweep.hh"
#include "core/system.hh"
#include "stats/batch_means.hh"
#include "stats/run_controller.hh"

namespace hrsim
{
namespace
{

TEST(TQuantile95, MatchesTableAndDecaysToNormal)
{
    EXPECT_NEAR(tQuantile95(1), 12.706, 1e-3);
    EXPECT_NEAR(tQuantile95(4), 2.776, 1e-3);
    EXPECT_NEAR(tQuantile95(10), 2.228, 1e-3);
    EXPECT_NEAR(tQuantile95(30), 2.042, 1e-3);
    EXPECT_DOUBLE_EQ(tQuantile95(1000), 1.96);
    for (std::uint64_t df = 1; df < 40; ++df)
        EXPECT_GE(tQuantile95(df), tQuantile95(df + 1));
}

TEST(MserTruncation, StationarySeriesKeepsEverything)
{
    std::vector<double> means;
    for (int i = 0; i < 20; ++i)
        means.push_back(100.0 + (i % 3));
    EXPECT_EQ(RunController::mserTruncation(means), 0u);
}

TEST(MserTruncation, BiasedHeadIsTruncated)
{
    // Four transient batches far above the steady level: MSER must
    // drop at least those four (it may take a tied neighbor).
    std::vector<double> means{500.0, 400.0, 300.0, 200.0};
    for (int i = 0; i < 16; ++i)
        means.push_back(100.0 + (i % 2));
    const std::uint32_t d = RunController::mserTruncation(means);
    EXPECT_GE(d, 4u);
    EXPECT_LE(d, 6u);
}

TEST(MserTruncation, NeverTruncatesPastHalf)
{
    // A monotone climb never looks stationary: the cap must hold.
    std::vector<double> means;
    for (int i = 0; i < 11; ++i)
        means.push_back(100.0 * std::pow(1.3, i));
    EXPECT_LE(RunController::mserTruncation(means), 5u);
    EXPECT_EQ(RunController::mserTruncation({}), 0u);
    EXPECT_EQ(RunController::mserTruncation({42.0}), 0u);
}

TEST(AdaptiveBatchMeans, GrowsAndPinsTruncation)
{
    BatchMeans bm = BatchMeans::adaptive(100);
    ASSERT_TRUE(bm.isAdaptive());
    EXPECT_FALSE(bm.done(1u << 30));

    // Batches 0..3: means 10, 20, 30, 40 (two samples each).
    for (std::uint32_t b = 0; b < 4; ++b) {
        bm.add(b * 100 + 10, 10.0 * (b + 1) - 1.0);
        bm.add(b * 100 + 90, 10.0 * (b + 1) + 1.0);
    }
    ASSERT_EQ(bm.numBatches(), 4u);
    EXPECT_DOUBLE_EQ(bm.batchMean(1), 20.0);
    EXPECT_EQ(bm.batchCount(2), 2u);

    bm.setTruncation(1, 4);
    EXPECT_EQ(bm.endCycle(), 400u);
    EXPECT_EQ(bm.sampleCount(), 6u);
    EXPECT_DOUBLE_EQ(bm.mean(), 30.0);
    EXPECT_GT(bm.halfWidth95(), 0.0);
}

/** Drive a controller with one synthetic sample per batch. */
struct Harness
{
    StopPolicy policy;
    BatchMeans collector = BatchMeans::adaptive(100);
    RunController controller;

    explicit Harness(StopPolicy p)
        : policy(resolved(p)), controller(policy, collector)
    {}

    static StopPolicy resolved(StopPolicy p)
    {
        p.batchCycles = 100;
        if (p.maxCycles == 0)
            p.maxCycles = 100000;
        return p;
    }

    /** Close one batch with mean @a value and evaluate. */
    RunController::Decision step(double value, double occupancy)
    {
        const Cycle checkpoint = controller.nextCheckpoint();
        collector.add(checkpoint - 50, value);
        return controller.onCheckpoint(checkpoint, occupancy);
    }
};

TEST(RunController, ConvergesOnTightStationarySeries)
{
    StopPolicy policy;
    policy.relHw = 0.05;
    Harness h(policy);

    RunController::Decision decision;
    std::uint32_t steps = 0;
    do {
        decision = h.step(100.0 + (steps % 3), 0.3);
        ++steps;
        ASSERT_LT(steps, 100u);
    } while (!decision.stop);

    EXPECT_EQ(decision.reason, StopReason::Converged);
    EXPECT_GE(steps, policy.minBatches);
    EXPECT_LE(h.controller.relHalfWidth(), policy.relHw);
    // Stationary from the start: no warmup to cut.
    EXPECT_EQ(h.controller.warmupBatches(), 0u);
}

TEST(RunController, FlagsSustainedClimbAsSaturated)
{
    StopPolicy policy;
    policy.relHw = 0.05;
    Harness h(policy);

    RunController::Decision decision;
    double value = 100.0;
    std::uint32_t steps = 0;
    do {
        decision = h.step(value, 0.9);
        value *= 1.2;
        ++steps;
        ASSERT_LT(steps, 100u);
    } while (!decision.stop);

    EXPECT_EQ(decision.reason, StopReason::Saturated);
    // The abort must come promptly: minBatches checkpoints plus the
    // post-truncation window, not the whole budget.
    EXPECT_LE(steps, 2 * policy.minBatches);
}

TEST(RunController, NoisyStationarySeriesIsNeverSaturated)
{
    // High occupancy and +/-15% batch noise around a fixed level:
    // the regression this pins is a saturation false positive that
    // aborts a convergeable heavily-loaded point.
    StopPolicy policy;
    policy.relHw = 0.0001; // unreachably tight: run to the budget
    policy.maxCycles = 4000;
    Harness h(policy);

    RunController::Decision decision;
    std::uint32_t steps = 0;
    do {
        const double jitter = (steps % 2 == 0) ? -15.0 : 15.0;
        decision = h.step(100.0 + jitter, 0.95);
        ++steps;
        ASSERT_LT(steps, 100u);
    } while (!decision.stop);

    EXPECT_EQ(decision.reason, StopReason::MaxCycles);
    EXPECT_EQ(steps, 40u); // the full budget, 4000 / 100
}

TEST(RunController, LowOccupancyClimbIsNotSaturation)
{
    // Climbing means with near-empty queues cannot be saturation
    // (nothing is backed up); the run must fall through to the
    // cycle budget instead.
    StopPolicy policy;
    policy.relHw = 0.0001;
    policy.maxCycles = 3000;
    Harness h(policy);

    RunController::Decision decision;
    double value = 100.0;
    std::uint32_t steps = 0;
    do {
        decision = h.step(value, 0.05);
        value *= 1.2;
        ++steps;
        ASSERT_LT(steps, 100u);
    } while (!decision.stop);
    EXPECT_EQ(decision.reason, StopReason::MaxCycles);
}

TEST(RunController, DecisionSequenceIsDeterministic)
{
    StopPolicy policy;
    policy.relHw = 0.05;
    for (int rep = 0; rep < 2; ++rep) {
        Harness h(policy);
        std::vector<std::uint8_t> stops;
        for (std::uint32_t i = 0; i < 12; ++i) {
            const auto d = h.step(100.0 + (i * 7) % 13, 0.4);
            stops.push_back(d.stop ? 1 : 0);
            if (d.stop)
                break;
        }
        static std::vector<std::uint8_t> first;
        if (rep == 0)
            first = stops;
        else
            EXPECT_EQ(first, stops);
    }
}

// ---------------------------------------------------------------
// System-level integration.

SimConfig
quickAdaptiveSim()
{
    SimConfig sim;
    sim.warmupCycles = 1000;
    sim.batchCycles = 1000;
    sim.numBatches = 3;
    sim.stop.relHw = 0.10;
    return sim;
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.latencyCI95, b.latencyCI95);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stopReason, b.stopReason);
    EXPECT_EQ(a.relHalfWidth, b.relHalfWidth);
    EXPECT_EQ(a.warmupCycles, b.warmupCycles);
    EXPECT_EQ(a.throughputPerPm, b.throughputPerPm);
    EXPECT_EQ(a.counters.remoteCompleted, b.counters.remoteCompleted);
}

TEST(AdaptiveSystem, RerunsAreBitIdentical)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = quickAdaptiveSim();
    expectSameRun(runSystem(cfg), runSystem(cfg));
}

TEST(AdaptiveSystem, SweepParallelismDoesNotPerturbDecisions)
{
    std::vector<SystemConfig> points;
    SystemConfig ring = SystemConfig::ring("2:4", 64);
    ring.sim = quickAdaptiveSim();
    points.push_back(ring);

    SystemConfig mesh = SystemConfig::mesh(3, 64, 4);
    mesh.sim = quickAdaptiveSim();
    points.push_back(mesh);

    SystemConfig hot = SystemConfig::mesh(4, 64, 4);
    hot.workload.missRateC = 0.5;
    hot.sim = quickAdaptiveSim();
    points.push_back(hot);

    const auto serial = runSweep(points, 1);
    const auto parallel = runSweep(points, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameRun(serial[i], parallel[i]);
    }
}

TEST(AdaptiveSystem, ReportsAdaptiveFieldsAndStopsInsideBudget)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.workload.missRateC = 0.01;
    cfg.sim = quickAdaptiveSim();
    const RunResult result = runSystem(cfg);

    EXPECT_NE(result.stopReason, StopReason::FixedLength);
    const StopPolicy policy = resolveStopPolicy(cfg.sim);
    EXPECT_LE(result.cycles, policy.maxCycles);
    EXPECT_EQ(result.cycles % policy.batchCycles, 0u);
    if (result.stopReason == StopReason::Converged) {
        EXPECT_LE(result.relHalfWidth, cfg.sim.stop.relHw);
    }
}

TEST(AdaptiveSystem, DefaultFixedProtocolIsUntouched)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim.warmupCycles = 1000;
    cfg.sim.batchCycles = 1000;
    cfg.sim.numBatches = 3;
    ASSERT_FALSE(cfg.sim.stop.enabled());
    const RunResult result = runSystem(cfg);

    EXPECT_EQ(result.stopReason, StopReason::FixedLength);
    EXPECT_EQ(result.relHalfWidth, 0.0);
    EXPECT_EQ(result.cycles, 4000u);
    EXPECT_EQ(result.warmupCycles, 1000u);
    // No run.* gauges leak into the default metric set.
    for (const MetricSample &sample : result.metrics)
        EXPECT_EQ(sample.name.rfind("run.", 0), std::string::npos);
}

TEST(ResolveStopPolicy, DerivesDefaultsFromFixedSchedule)
{
    SimConfig sim;
    sim.warmupCycles = 4000;
    sim.batchCycles = 4000;
    sim.numBatches = 5;
    sim.stop.relHw = 0.05;
    const StopPolicy policy = resolveStopPolicy(sim);
    EXPECT_EQ(policy.batchCycles, 1000u);
    EXPECT_EQ(policy.maxCycles, 8u * 24000u);

    sim.stop.batchCycles = 500;
    sim.stop.maxCycles = 99;
    const StopPolicy given = resolveStopPolicy(sim);
    EXPECT_EQ(given.batchCycles, 500u);
    EXPECT_EQ(given.maxCycles, 99u);
}

} // namespace
} // namespace hrsim
