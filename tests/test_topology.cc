/**
 * @file
 * Unit tests for ring topology parsing and structural expansion.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "ring/topology.hh"

namespace hrsim
{
namespace
{

TEST(RingTopology, ParseSingleRing)
{
    const RingTopology topo = RingTopology::parse("12");
    EXPECT_EQ(topo.numLevels(), 1);
    EXPECT_EQ(topo.numProcessors(), 12);
    EXPECT_EQ(topo.toString(), "12");
}

TEST(RingTopology, ParsePaperNotation)
{
    const RingTopology topo = RingTopology::parse("2:3:4");
    EXPECT_EQ(topo.numLevels(), 3);
    EXPECT_EQ(topo.numProcessors(), 24);
    EXPECT_EQ(topo.toString(), "2:3:4");
}

TEST(RingTopology, ParseRejectsGarbage)
{
    EXPECT_THROW(RingTopology::parse("a:b"), ConfigError);
    EXPECT_THROW(RingTopology::parse("2::3"), ConfigError);
    EXPECT_THROW(RingTopology::parse(""), ConfigError);
    EXPECT_THROW(RingTopology::parse("0:4"), ConfigError);
}

TEST(RingStructure, SingleRingHasOnlyNics)
{
    const auto rs = RingStructure::build(RingTopology::parse("6"));
    ASSERT_EQ(rs.rings.size(), 1u);
    EXPECT_TRUE(rs.iris.empty());
    EXPECT_EQ(rs.numProcessors(), 6);
    EXPECT_EQ(rs.rings[0].slots.size(), 6u);
    for (const auto &slot : rs.rings[0].slots)
        EXPECT_EQ(slot.kind, RingSlotDesc::Kind::Nic);
}

TEST(RingStructure, TwoLevelLayout)
{
    // 2:3 -> one global ring with 2 IRIs; two local rings with
    // 3 NICs + 1 IRI lower side each.
    const auto rs = RingStructure::build(RingTopology::parse("2:3"));
    EXPECT_EQ(rs.numProcessors(), 6);
    ASSERT_EQ(rs.rings.size(), 3u);
    ASSERT_EQ(rs.iris.size(), 2u);

    const auto roots = rs.ringsAtLevel(0);
    ASSERT_EQ(roots.size(), 1u);
    const RingDesc &root = rs.rings[static_cast<std::size_t>(roots[0])];
    EXPECT_EQ(root.slots.size(), 2u);
    for (const auto &slot : root.slots)
        EXPECT_EQ(slot.kind, RingSlotDesc::Kind::IriUpper);

    const auto leaves = rs.ringsAtLevel(1);
    ASSERT_EQ(leaves.size(), 2u);
    for (const int leaf : leaves) {
        const RingDesc &ring = rs.rings[static_cast<std::size_t>(leaf)];
        ASSERT_EQ(ring.slots.size(), 4u); // 3 NICs + 1 IRI
        int nics = 0;
        int iri_lower = 0;
        for (const auto &slot : ring.slots) {
            if (slot.kind == RingSlotDesc::Kind::Nic)
                ++nics;
            else if (slot.kind == RingSlotDesc::Kind::IriLower)
                ++iri_lower;
        }
        EXPECT_EQ(nics, 3);
        EXPECT_EQ(iri_lower, 1);
    }
}

TEST(RingStructure, SubtreesAreContiguousAndDisjoint)
{
    const auto rs = RingStructure::build(RingTopology::parse("2:3:4"));
    EXPECT_EQ(rs.numProcessors(), 24);
    // Top-level IRIs cover [0,12) and [12,24); each intermediate IRI
    // covers 4 PMs.
    int top = 0;
    int mid = 0;
    for (const auto &iri : rs.iris) {
        const int span = iri.subtreeHi - iri.subtreeLo;
        if (span == 12)
            ++top;
        else if (span == 4)
            ++mid;
        EXPECT_EQ(iri.subtreeLo % span, 0);
    }
    EXPECT_EQ(top, 2);
    EXPECT_EQ(mid, 6);
}

TEST(RingStructure, PmIdsFollowDfsOrder)
{
    const auto rs = RingStructure::build(RingTopology::parse("2:2:2"));
    // Leaf rings must contain consecutive PM ids.
    for (const int leaf : rs.ringsAtLevel(2)) {
        const RingDesc &ring = rs.rings[static_cast<std::size_t>(leaf)];
        NodeId prev = -2;
        for (const auto &slot : ring.slots) {
            if (slot.kind != RingSlotDesc::Kind::Nic)
                continue;
            if (prev >= 0)
                EXPECT_EQ(slot.index, prev + 1);
            prev = slot.index;
        }
    }
}

TEST(RingStructure, FourLevelHierarchy)
{
    const auto rs =
        RingStructure::build(RingTopology::parse("3:3:2:3"));
    EXPECT_EQ(rs.numProcessors(), 54);
    EXPECT_EQ(rs.numLevels, 4);
    EXPECT_EQ(rs.ringsAtLevel(0).size(), 1u);
    EXPECT_EQ(rs.ringsAtLevel(1).size(), 3u);
    EXPECT_EQ(rs.ringsAtLevel(2).size(), 9u);
    EXPECT_EQ(rs.ringsAtLevel(3).size(), 18u);
    // IRIs: 3 + 9 + 18.
    EXPECT_EQ(rs.iris.size(), 30u);
}

TEST(RingStructure, NicRingMapIsConsistent)
{
    const auto rs = RingStructure::build(RingTopology::parse("2:4"));
    for (NodeId pm = 0; pm < rs.numProcessors(); ++pm) {
        const int ring = rs.nicRing[static_cast<std::size_t>(pm)];
        bool found = false;
        for (const auto &slot :
             rs.rings[static_cast<std::size_t>(ring)].slots) {
            if (slot.kind == RingSlotDesc::Kind::Nic &&
                slot.index == pm) {
                found = true;
            }
        }
        EXPECT_TRUE(found) << "pm " << pm;
    }
}

TEST(RingStructure, IriParentChildLevelsAreAdjacent)
{
    const auto rs = RingStructure::build(RingTopology::parse("2:3:4"));
    for (const auto &iri : rs.iris) {
        const int child_level =
            rs.rings[static_cast<std::size_t>(iri.childRing)].level;
        const int parent_level =
            rs.rings[static_cast<std::size_t>(iri.parentRing)].level;
        EXPECT_EQ(child_level, parent_level + 1);
    }
}

} // namespace
} // namespace hrsim
