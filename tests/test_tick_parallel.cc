/**
 * @file
 * Parallel tick engine tests: the shard-parallel columnar tick
 * (SimConfig::tickThreads > 1; see DESIGN.md section 15) must be
 * bit-identical to the serial tick at every pool width, across both
 * network kinds, clock speeds, workloads, active fault plans, the
 * oracle modes (full scan / no fast path / no columnar, under which
 * the engine declines and stays serial) and sweep-worker crossing
 * (--jobs x --tick-threads). The full RunResult is compared —
 * counters, latency statistics, the materialized metric registry and
 * mid-run snapshots — with only the mode-gated metric namespaces
 * (sched.*, tick.*, *.streamed_flits) excluded.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/sweep.hh"
#include "core/system.hh"
#include "fault/fault_plan.hh"

namespace hrsim
{
namespace
{

/** Scoped HRSIM_FORCE_FULL_SCAN=1 (read at System construction). */
class ForceFullScan
{
  public:
    ForceFullScan() { setenv("HRSIM_FORCE_FULL_SCAN", "1", 1); }
    ~ForceFullScan() { unsetenv("HRSIM_FORCE_FULL_SCAN"); }
};

/** Scoped HRSIM_NO_FASTPATH=1: the legacy transmit loops. */
class DisableFastPath
{
  public:
    DisableFastPath() { setenv("HRSIM_NO_FASTPATH", "1", 1); }
    ~DisableFastPath() { unsetenv("HRSIM_NO_FASTPATH"); }
};

/** Scoped HRSIM_NO_COLUMNAR=1: the legacy per-node layout. */
class DisableColumnar
{
  public:
    DisableColumnar() { setenv("HRSIM_NO_COLUMNAR", "1", 1); }
    ~DisableColumnar() { unsetenv("HRSIM_NO_COLUMNAR"); }
};

bool
isModeGatedMetric(const std::string &name)
{
    // sched.*, tick.* and *.streamed_flits register only when their
    // mode is on, by design; everything else must match exactly.
    static const std::string kStreamed = ".streamed_flits";
    return name.rfind("sched.", 0) == 0 ||
           name.rfind("tick.", 0) == 0 ||
           (name.size() >= kStreamed.size() &&
            name.compare(name.size() - kStreamed.size(),
                         kStreamed.size(), kStreamed) == 0);
}

std::vector<MetricSample>
withoutModeMetrics(const std::vector<MetricSample> &metrics)
{
    std::vector<MetricSample> kept;
    kept.reserve(metrics.size());
    for (const MetricSample &sample : metrics) {
        if (!isModeGatedMetric(sample.name))
            kept.push_back(sample);
    }
    return kept;
}

/** Full RunResult equality, modulo the mode-gated metrics. */
void
expectSameResult(const RunResult &parallel, const RunResult &serial)
{
    EXPECT_EQ(parallel.avgLatency, serial.avgLatency);
    EXPECT_EQ(parallel.latencyCI95, serial.latencyCI95);
    EXPECT_EQ(parallel.samples, serial.samples);
    EXPECT_EQ(parallel.latencyP50, serial.latencyP50);
    EXPECT_EQ(parallel.latencyP95, serial.latencyP95);
    EXPECT_EQ(parallel.latencyP99, serial.latencyP99);
    EXPECT_EQ(parallel.networkUtilization,
              serial.networkUtilization);
    EXPECT_EQ(parallel.ringLevelUtilization,
              serial.ringLevelUtilization);
    EXPECT_EQ(parallel.cycles, serial.cycles);
    EXPECT_EQ(parallel.throughputPerPm, serial.throughputPerPm);

    EXPECT_EQ(parallel.counters.missesGenerated,
              serial.counters.missesGenerated);
    EXPECT_EQ(parallel.counters.remoteIssued,
              serial.counters.remoteIssued);
    EXPECT_EQ(parallel.counters.remoteCompleted,
              serial.counters.remoteCompleted);
    EXPECT_EQ(parallel.counters.localIssued,
              serial.counters.localIssued);
    EXPECT_EQ(parallel.counters.localCompleted,
              serial.counters.localCompleted);
    EXPECT_EQ(parallel.counters.blockedCycles,
              serial.counters.blockedCycles);

    EXPECT_EQ(withoutModeMetrics(parallel.metrics),
              withoutModeMetrics(serial.metrics));

    ASSERT_EQ(parallel.snapshots.size(), serial.snapshots.size());
    for (std::size_t i = 0; i < parallel.snapshots.size(); ++i) {
        SCOPED_TRACE("snapshot " + std::to_string(i));
        EXPECT_EQ(parallel.snapshots[i].cycle,
                  serial.snapshots[i].cycle);
        EXPECT_EQ(withoutModeMetrics(parallel.snapshots[i].metrics),
                  withoutModeMetrics(serial.snapshots[i].metrics));
    }
}

FaultEvent
spec(const std::string &text)
{
    FaultEvent event;
    std::string err;
    EXPECT_TRUE(parseFaultSpec(text, event, err)) << err;
    return event;
}

SimConfig
shortSim()
{
    SimConfig sim;
    sim.warmupCycles = 800;
    sim.batchCycles = 800;
    sim.numBatches = 3;
    return sim;
}

RunResult
runAt(SystemConfig cfg, int tickThreads)
{
    cfg.sim.tickThreads = tickThreads;
    return runSystem(cfg);
}

/**
 * Network/workload grid covering every shard-engine specialization:
 * multi-ring hierarchies (one shard per ring, cross-ring IRI
 * traffic), the double-speed global ring (serial fast domain next to
 * parallel shards), single-level rings (one shard: inline dispatch),
 * meshes both saturating (linear-scan shards, amortized sweep) and
 * idle-heavy (bitmap-scan shards), 1-flit mesh buffers (peer FIFO
 * backpressure across shard boundaries), wide cache lines (long
 * worms crossing shard boundaries mid-packet) and mid-run metric
 * snapshots.
 */
std::vector<std::pair<std::string, SystemConfig>>
parallelGrid()
{
    std::vector<std::pair<std::string, SystemConfig>> grid;
    const auto add = [&grid](std::string name, SystemConfig cfg) {
        cfg.sim.idleSkip = true;
        grid.emplace_back(std::move(name), cfg);
    };

    SystemConfig cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    add("ring 2:4 low-C", cfg);

    cfg = SystemConfig::ring("4:4", 32);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 4;
    add("ring 4:4 saturating", cfg);

    cfg = SystemConfig::ring("2:2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.005;
    cfg.globalRingSpeed = 2;
    add("ring 2:2:4 speed-2", cfg);

    cfg = SystemConfig::ring("2:4", 128);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.02;
    add("ring 2:4 cl=128", cfg);

    cfg = SystemConfig::ring("4", 16);
    cfg.sim = shortSim();
    add("ring 4 single-level", cfg);

    cfg = SystemConfig::mesh(3, 64, 4);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    add("mesh 3 low-C", cfg);

    cfg = SystemConfig::mesh(4, 32, 1);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 2;
    add("mesh 4 1-flit buffers", cfg);

    cfg = SystemConfig::mesh(4, 32, 4);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 8;
    cfg.workload.missRateC = 0.08;
    add("mesh 4 saturating", cfg);

    cfg = SystemConfig::ring("2:4", 64);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.01;
    cfg.sim.metricsEvery = 500;
    add("ring 2:4 metricsEvery=500", cfg);

    // 11x11 mesh: 121 routers span two 64-bit mask words, so a
    // 2-thread pool actually splits the id space (width <= 8 fits
    // one word and degenerates to the inline single-shard path).
    cfg = SystemConfig::mesh(11, 32, 4);
    cfg.sim = shortSim();
    cfg.workload.missRateC = 0.02;
    add("mesh 11 two-word mask", cfg);

    return grid;
}

// ---------------------------------------------------------------- //
// Bit-identity: parallel tick vs serial tick

TEST(TickParallel, BitIdenticalAcrossGridAndWidths)
{
    for (const auto &[name, cfg] : parallelGrid()) {
        SCOPED_TRACE(name);
        const RunResult serial = runAt(cfg, 1);
        EXPECT_GT(serial.samples, 0u);
        for (const int threads : {2, 4}) {
            SCOPED_TRACE("tick-threads " + std::to_string(threads));
            expectSameResult(runAt(cfg, threads), serial);
        }
    }
}

TEST(TickParallel, BitIdenticalToEveryOracleMode)
{
    // The serial engines are the parallel tick's oracles: a 4-thread
    // run must match the full-scan, no-fast-path and no-columnar
    // serial runs (under which the engine declines and the run is
    // serial anyway — the decline itself must also be bit-identical).
    for (const auto &[name, cfg] : parallelGrid()) {
        if (cfg.sim.metricsEvery != 0)
            continue; // keep the oracle sub-grid cheap
        SCOPED_TRACE(name);
        const RunResult parallel = runAt(cfg, 4);
        RunResult fullScan;
        {
            ForceFullScan scan;
            fullScan = runAt(cfg, 4);
        }
        RunResult noFast;
        {
            DisableFastPath off;
            noFast = runAt(cfg, 4);
        }
        RunResult noColumnar;
        {
            DisableColumnar off;
            noColumnar = runAt(cfg, 4);
        }
        expectSameResult(parallel, fullScan);
        expectSameResult(parallel, noFast);
        expectSameResult(parallel, noColumnar);
    }
}

TEST(TickParallel, BitIdenticalUnderActiveFaultPlan)
{
    // Fault windows cross the shard engine everywhere it is
    // delicate: per-shard fault ledgers folded after every tick,
    // fault-pinned components surviving the sleep sweep, drops and
    // retries rewaking components across shard boundaries.
    SystemConfig ring = SystemConfig::ring("2:2:4", 32);
    ring.sim = shortSim();
    ring.sim.warmupCycles = 1500;
    ring.sim.batchCycles = 1500;
    ring.workload.missRateC = 0.02;
    ring.faultPlan.events = {
        spec("ring.nic2:down@1800..2600"),
        spec("ring.l1.iri0.lower:stall@2000..2400"),
        spec("ring.nic5:corrupt@3000..3600"),
    };

    SystemConfig mesh = SystemConfig::mesh(4, 32, 4);
    mesh.sim = shortSim();
    mesh.sim.warmupCycles = 1500;
    mesh.sim.batchCycles = 1500;
    mesh.workload.missRateC = 0.02;
    mesh.faultPlan.events = {
        spec("mesh.r5.east:down@1800..2600"),
        spec("mesh.r10:stall@2000..2400"),
    };

    for (const auto &[name, cfg] :
         {std::pair<std::string, SystemConfig>{"ring faults", ring},
          {"mesh faults", mesh}}) {
        SCOPED_TRACE(name);
        const RunResult serial = runAt(cfg, 1);
        for (const int threads : {2, 4}) {
            SCOPED_TRACE("tick-threads " + std::to_string(threads));
            expectSameResult(runAt(cfg, threads), serial);
        }
        // The fault machinery must have actually fired.
        bool sawDrop = false;
        for (const MetricSample &sample : serial.metrics) {
            if (sample.name.rfind("fault.", 0) == 0)
                sawDrop = true;
        }
        EXPECT_TRUE(sawDrop);
    }
}

TEST(TickParallel, BitIdenticalUnderSweepWorkerCrossing)
{
    // --jobs x --tick-threads: every sweep worker drives its own
    // System with its own 2-thread tick pool. The TSan CI stage
    // re-runs this test against cross-thread races.
    std::vector<SystemConfig> points;
    for (auto &[name, cfg] : parallelGrid()) {
        if (cfg.sim.metricsEvery == 0)
            points.push_back(cfg);
    }
    ASSERT_GE(points.size(), 4u);

    std::vector<SystemConfig> parallelPoints = points;
    for (SystemConfig &point : parallelPoints)
        point.sim.tickThreads = 2;

    const std::vector<RunResult> serial = runSweep(points, 1);
    const std::vector<RunResult> crossed =
        runSweep(parallelPoints, 4);
    ASSERT_EQ(crossed.size(), serial.size());
    for (std::size_t i = 0; i < crossed.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectSameResult(crossed[i], serial[i]);
    }
}

// ---------------------------------------------------------------- //
// tick.* metric gating (run by the tickpool_smoke ctest)

TEST(TickPoolSmoke, ParallelRunReportsShardProgress)
{
    SystemConfig cfg = SystemConfig::ring("4:4", 32);
    cfg.sim = shortSim();
    cfg.sim.tickThreads = 4;
    cfg.workload.outstandingT = 4;

    const RunResult result = runSystem(cfg);
    bool sawEvals = false;
    bool sawThreads = false;
    for (const MetricSample &sample : result.metrics) {
        if (sample.name == "tick.shard_evals") {
            sawEvals = true;
            EXPECT_GT(sample.count, 0u)
                << "a saturating run must dispatch shards";
        }
        if (sample.name == "tick.threads") {
            sawThreads = true;
            EXPECT_EQ(sample.value, 4.0);
        }
    }
    EXPECT_TRUE(sawEvals);
    EXPECT_TRUE(sawThreads);
}

TEST(TickPoolSmoke, SerialRunHasNoTickMetrics)
{
    SystemConfig cfg = SystemConfig::ring("4:4", 32);
    cfg.sim = shortSim();

    const RunResult result = runSystem(cfg);
    for (const MetricSample &sample : result.metrics)
        EXPECT_NE(sample.name.rfind("tick.", 0), 0u)
            << "unexpected " << sample.name;
}

TEST(TickPoolSmoke, OracleModeDisengagesTickMetrics)
{
    // tickThreads > 1 under HRSIM_NO_COLUMNAR: the engine declines,
    // so the tick.* namespace must stay out of the artifact (the
    // registered-only-when-active convention).
    SystemConfig cfg = SystemConfig::ring("4:4", 32);
    cfg.sim = shortSim();
    cfg.sim.tickThreads = 4;

    DisableColumnar off;
    const RunResult result = runSystem(cfg);
    for (const MetricSample &sample : result.metrics)
        EXPECT_NE(sample.name.rfind("tick.", 0), 0u)
            << "unexpected " << sample.name;
}

} // namespace
} // namespace hrsim
