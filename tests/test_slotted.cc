/**
 * @file
 * Tests for the slotted (Hector-style) ring switching mode: routing,
 * rotation invariants, retry behaviour and the comparison against
 * wormhole switching the paper alludes to.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/system.hh"
#include "proto/packet_factory.hh"
#include "ring/slotted_network.hh"

namespace hrsim
{
namespace
{

struct Delivery
{
    Packet pkt;
    Cycle when;
};

class SlottedHarness
{
  public:
    explicit SlottedHarness(const std::string &topo,
                            std::uint32_t line_bytes = 64,
                            std::uint32_t global_speed = 1)
        : net_(makeParams(topo, line_bytes, global_speed)),
          factory_(ChannelSpec::ring(), line_bytes)
    {
        net_.setDeliveryHandler([this](const Packet &pkt, Cycle now) {
            deliveries_.push_back({pkt, now});
        });
    }

    static SlottedRingNetwork::Params
    makeParams(const std::string &topo, std::uint32_t line_bytes,
               std::uint32_t global_speed)
    {
        SlottedRingNetwork::Params params;
        params.topo = RingTopology::parse(topo);
        params.cacheLineBytes = line_bytes;
        params.globalRingSpeed = global_speed;
        return params;
    }

    void
    send(NodeId src, NodeId dst, bool is_read)
    {
        const Packet pkt = factory_.makeRequest(src, dst, is_read, now_);
        ASSERT_TRUE(net_.canInject(src, pkt));
        net_.inject(src, pkt);
    }

    void
    runUntilDelivered(std::size_t count, Cycle limit = 10000)
    {
        while (deliveries_.size() < count && now_ < limit)
            net_.tick(now_++);
        ASSERT_GE(deliveries_.size(), count);
    }

    SlottedRingNetwork net_;
    PacketFactory factory_;
    std::vector<Delivery> deliveries_;
    Cycle now_ = 0;
};

TEST(Slotted, AdjacentCellLatency)
{
    // A 1-flit read request between neighbors: injected before cycle
    // 0, fills the slot in cycle 0, sunk in cycle 1... measured from
    // queue visibility: delivered by cycle 2.
    SlottedHarness h("4");
    h.send(0, 1, true);
    h.runUntilDelivered(1);
    EXPECT_LE(h.deliveries_[0].when, 2u);
}

TEST(Slotted, AllPairsDeliverAcrossThreeLevels)
{
    SlottedHarness h("2:2:2");
    std::size_t expected = 0;
    for (NodeId src = 0; src < 8; ++src) {
        for (NodeId dst = 0; dst < 8; ++dst) {
            if (src == dst)
                continue;
            h.send(src, dst, (src + dst) % 2);
            ++expected;
            h.runUntilDelivered(expected);
        }
    }
    EXPECT_EQ(h.deliveries_.size(), expected);
}

TEST(Slotted, MultiCellPacketReassembles)
{
    // A 5-flit write is delivered exactly once, after all its cells.
    SlottedHarness h("2:4", 64);
    h.send(0, 6, false);
    h.runUntilDelivered(1);
    EXPECT_EQ(h.deliveries_.size(), 1u);
    EXPECT_EQ(h.deliveries_[0].pkt.sizeFlits, 5u);
    // Earliest possible: 5 cells serialized + distance.
    EXPECT_GE(h.deliveries_[0].when, 5u);
}

TEST(Slotted, CellsDrainCompletely)
{
    SlottedHarness h("2:3:4", 32);
    h.send(0, 23, false);
    h.send(13, 2, true);
    h.runUntilDelivered(2);
    for (int i = 0; i < 5; ++i)
        h.net_.tick(h.now_++);
    EXPECT_EQ(h.net_.flitsInFlight(), 0u);
}

TEST(Slotted, DoubleSpeedGlobalRingWorks)
{
    SlottedHarness normal("2:2:2", 64, 1);
    SlottedHarness fast("2:2:2", 64, 2);
    normal.send(0, 7, false);
    fast.send(0, 7, false);
    normal.runUntilDelivered(1);
    fast.runUntilDelivered(1);
    EXPECT_LE(fast.deliveries_[0].when, normal.deliveries_[0].when);
}

TEST(Slotted, SystemIntegrationConservation)
{
    SystemConfig cfg = SystemConfig::ring("2:3:4", 64);
    cfg.ringSlotted = true;
    cfg.sim.warmupCycles = 1500;
    cfg.sim.batchCycles = 1500;
    cfg.sim.numBatches = 3;
    System system(cfg);
    system.step(4000);
    const WorkloadCounters &c = system.counters();
    const auto in_flight =
        static_cast<std::uint64_t>(system.totalOutstanding());
    EXPECT_EQ(c.remoteIssued + c.localIssued,
              c.remoteCompleted + c.localCompleted + in_flight);
    EXPECT_GT(c.remoteCompleted, 0u);
}

TEST(Slotted, OversaturatedHierarchyStaysLive)
{
    SystemConfig cfg = SystemConfig::ring("6:3:6", 64);
    cfg.ringSlotted = true;
    cfg.workload.outstandingT = 4;
    cfg.sim.warmupCycles = 4000;
    cfg.sim.batchCycles = 4000;
    cfg.sim.numBatches = 3;
    cfg.sim.watchdogCycles = 4000;
    RunResult result;
    ASSERT_NO_THROW(result = runSystem(cfg));
    EXPECT_GT(result.samples, 0u);
}

TEST(Slotted, RetriesHappenOnlyUnderPressure)
{
    // Zero-ish load: no cell should ever need another lap.
    SlottedHarness h("2:3:4", 64);
    h.send(0, 23, true);
    h.send(5, 11, false);
    h.runUntilDelivered(2);
    EXPECT_EQ(h.net_.totalRetries(), 0u);
}

TEST(Slotted, ComparableToWormholeAtTheBisectionLimit)
{
    // The paper (citing its companion study) notes slotted rings
    // perform somewhat better; at minimum the two modes must agree
    // within ~25% at the paper's 3-ring operating point.
    SimConfig sim;
    sim.warmupCycles = 3000;
    sim.batchCycles = 3000;
    sim.numBatches = 3;

    SystemConfig worm = SystemConfig::ring("3:3:6", 64);
    worm.workload.outstandingT = 4;
    worm.sim = sim;
    SystemConfig slot = worm;
    slot.ringSlotted = true;

    const double worm_lat = runSystem(worm).avgLatency;
    const double slot_lat = runSystem(slot).avgLatency;
    EXPECT_LT(slot_lat, worm_lat * 1.25);
    EXPECT_GT(slot_lat, worm_lat * 0.6);
}

TEST(Slotted, DeterministicRuns)
{
    SystemConfig cfg = SystemConfig::ring("3:3:4", 32);
    cfg.ringSlotted = true;
    cfg.sim.warmupCycles = 1000;
    cfg.sim.batchCycles = 1000;
    cfg.sim.numBatches = 2;
    const RunResult a = runSystem(cfg);
    const RunResult b = runSystem(cfg);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(Slotted, LevelUtilizationReported)
{
    SystemConfig cfg = SystemConfig::ring("2:2:2", 32);
    cfg.ringSlotted = true;
    cfg.sim.warmupCycles = 1000;
    cfg.sim.batchCycles = 1000;
    cfg.sim.numBatches = 2;
    const RunResult result = runSystem(cfg);
    ASSERT_EQ(result.ringLevelUtilization.size(), 3u);
    for (const double u : result.ringLevelUtilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

} // namespace
} // namespace hrsim
