/**
 * @file
 * Unit tests for the two-phase staged FIFO, the primitive every
 * network buffer is built on. The cycle semantics here (pushes
 * visible after commit, popped slots recycled at commit) are what
 * make the simulator's evaluation order-independent.
 */

#include <gtest/gtest.h>

#include "common/staged_fifo.hh"

namespace hrsim
{
namespace
{

TEST(StagedFifo, StartsEmpty)
{
    StagedFifo<int> fifo(4);
    EXPECT_EQ(fifo.capacity(), 4u);
    EXPECT_EQ(fifo.size(), 0u);
    EXPECT_TRUE(fifo.empty());
    EXPECT_TRUE(fifo.canPush());
    EXPECT_EQ(fifo.producerSpace(), 4u);
}

TEST(StagedFifo, PushInvisibleUntilCommit)
{
    StagedFifo<int> fifo(4);
    fifo.push(7);
    EXPECT_TRUE(fifo.empty());
    EXPECT_EQ(fifo.totalSize(), 1u);
    fifo.commit();
    ASSERT_EQ(fifo.size(), 1u);
    EXPECT_EQ(fifo.front(), 7);
}

TEST(StagedFifo, FifoOrderAcrossCommits)
{
    StagedFifo<int> fifo(8);
    fifo.push(1);
    fifo.push(2);
    fifo.commit();
    fifo.push(3);
    fifo.commit();
    EXPECT_EQ(fifo.pop(), 1);
    EXPECT_EQ(fifo.pop(), 2);
    EXPECT_EQ(fifo.pop(), 3);
    EXPECT_TRUE(fifo.empty());
}

TEST(StagedFifo, StagedPushesCountAgainstCapacity)
{
    StagedFifo<int> fifo(2);
    fifo.push(1);
    fifo.push(2);
    EXPECT_FALSE(fifo.canPush());
    EXPECT_EQ(fifo.producerSpace(), 0u);
}

TEST(StagedFifo, PopDoesNotFreeSpaceSameCycle)
{
    StagedFifo<int> fifo(1);
    fifo.push(1);
    fifo.commit();
    EXPECT_FALSE(fifo.canPush());
    EXPECT_EQ(fifo.pop(), 1);
    // The slot freed by the pop is not reusable until commit: this is
    // the registered "full" flag of a hardware FIFO.
    EXPECT_FALSE(fifo.canPush());
    fifo.commit();
    EXPECT_TRUE(fifo.canPush());
}

TEST(StagedFifo, SimultaneousPushAndPopAtDepthTwo)
{
    // A 2-deep FIFO sustains one flit per cycle: push and pop every
    // cycle without ever observing "full".
    StagedFifo<int> fifo(2);
    fifo.push(0);
    fifo.commit();
    for (int cycle = 1; cycle < 50; ++cycle) {
        ASSERT_EQ(fifo.size(), 1u);
        ASSERT_TRUE(fifo.canPush());
        EXPECT_EQ(fifo.pop(), cycle - 1);
        fifo.push(cycle);
        fifo.commit();
    }
}

TEST(StagedFifo, DepthOneHalvesThroughput)
{
    // With a 1-deep FIFO the producer must skip every other cycle:
    // the physically-motivated penalty for 1-flit mesh buffers.
    StagedFifo<int> fifo(1);
    int pushed = 0;
    int popped = 0;
    for (int cycle = 0; cycle < 100; ++cycle) {
        if (!fifo.empty()) {
            fifo.pop();
            ++popped;
        }
        if (fifo.canPush()) {
            fifo.push(pushed);
            ++pushed;
        }
        fifo.commit();
    }
    EXPECT_EQ(pushed, 50);
    EXPECT_GE(popped, 49);
}

TEST(StagedFifo, ProducerOccupancyCountsAllThree)
{
    StagedFifo<int> fifo(4);
    fifo.push(1);
    fifo.push(2);
    fifo.push(3);
    fifo.commit();
    fifo.pop(); // freed-but-not-recycled slot
    fifo.push(4); // staged
    // start-of-cycle visible 3 (the popped slot recycles only at
    // commit) + staged 1 = 4.
    EXPECT_EQ(fifo.producerOccupancy(), 4u);
    EXPECT_FALSE(fifo.canPush());
    fifo.commit();
    EXPECT_EQ(fifo.size(), 3u);
    EXPECT_TRUE(fifo.canPush());
}

TEST(StagedFifo, ClearDiscardsEverything)
{
    StagedFifo<int> fifo(4);
    fifo.push(1);
    fifo.commit();
    fifo.push(2);
    fifo.clear();
    EXPECT_TRUE(fifo.empty());
    EXPECT_EQ(fifo.totalSize(), 0u);
    EXPECT_EQ(fifo.producerSpace(), 4u);
}

TEST(StagedFifo, SetCapacityOnEmpty)
{
    StagedFifo<int> fifo;
    fifo.setCapacity(3);
    EXPECT_EQ(fifo.capacity(), 3u);
    fifo.push(1);
    fifo.push(2);
    fifo.push(3);
    EXPECT_FALSE(fifo.canPush());
}

/** Exercise one full capacity's worth of wrapped churn. */
template <std::size_t InlineCap>
void
churn(StagedFifo<int, InlineCap> &fifo)
{
    const int depth = static_cast<int>(fifo.capacity());
    int pushed = 0;
    int popped = 0;
    for (int cycle = 0; cycle < 4 * depth; ++cycle) {
        if (!fifo.empty()) {
            ASSERT_EQ(fifo.pop(), popped);
            ++popped;
        }
        while (fifo.canPush())
            fifo.push(pushed++);
        fifo.commit();
    }
    while (!fifo.empty()) {
        ASSERT_EQ(fifo.pop(), popped);
        ++popped;
    }
    EXPECT_EQ(pushed, popped);
}

TEST(StagedFifoInline, AtExactlyInlineCapUsesSmallBuffer)
{
    // capacity == InlineCap is the last all-inline configuration; the
    // wrap arithmetic must behave exactly like the heap variant.
    StagedFifo<int, 4> fifo(4);
    EXPECT_EQ(fifo.inlineCapacity, 4u);
    churn(fifo);
}

TEST(StagedFifoInline, OnePastInlineCapFallsBackToHeap)
{
    // capacity == InlineCap + 1 is the first heap-backed depth: the
    // boundary where data() switches storage.
    StagedFifo<int, 4> fifo(5);
    churn(fifo);
}

TEST(StagedFifoInline, SetCapacityCrossesTheBoundaryBothWays)
{
    StagedFifo<int, 2> fifo(2); // inline
    fifo.push(1);
    fifo.push(2);
    fifo.commit();
    EXPECT_EQ(fifo.pop(), 1);
    EXPECT_EQ(fifo.pop(), 2);
    fifo.commit();

    fifo.setCapacity(3); // inline -> heap
    churn(fifo);
    fifo.setCapacity(2); // heap -> inline
    churn(fifo);
}

TEST(StagedFifoInline, ZeroInlineCapIsAlwaysHeap)
{
    // The mesh router's configuration: no small buffer at all.
    StagedFifo<int, 0> fifo(3);
    churn(fifo);
}

TEST(StagedFifoDeath, PushBeyondCapacityPanics)
{
    StagedFifo<int> fifo(1);
    fifo.push(1);
    EXPECT_DEATH(fifo.push(2), "canPush");
}

TEST(StagedFifoDeath, PopEmptyPanics)
{
    StagedFifo<int> fifo(1);
    EXPECT_DEATH(fifo.pop(), "visible_");
}

} // namespace
} // namespace hrsim
