/**
 * @file
 * Unit tests for the M-MRP processor and memory models, using a fake
 * loop-back network to isolate them from the real interconnects.
 */

#include <gtest/gtest.h>

#include <deque>

#include "proto/packet_factory.hh"
#include "sim/network.hh"
#include "workload/memory.hh"
#include "workload/processor.hh"

namespace hrsim
{
namespace
{

/**
 * A network stub: injected packets are recorded and, optionally,
 * "delivered" back by the test at a chosen time. Injection can be
 * throttled to exercise processor blocking.
 */
class FakeNetwork : public Network
{
  public:
    explicit FakeNetwork(int pms) : pms_(pms) {}

    int numProcessors() const override { return pms_; }

    bool
    canInject(NodeId, const Packet &) const override
    {
        return allowInjection;
    }

    void
    inject(NodeId, const Packet &pkt) override
    {
        injected.push_back(pkt);
    }

    void tick(Cycle) override {}

    UtilizationTracker &utilization() override { return util_; }
    const UtilizationTracker &utilization() const override
    {
        return util_;
    }

    std::uint64_t flitsInFlight() const override { return 0; }

    bool allowInjection = true;
    std::deque<Packet> injected;

  private:
    int pms_;
    UtilizationTracker util_;
};

struct ProcessorFixture : public ::testing::Test
{
    ProcessorFixture()
        : factory(ChannelSpec::ring(), 32), net(4),
          latency(0, 1000, 4)
    {
        cfg.missRateC = 1.0; // a miss every cycle: deterministic-ish
        cfg.outstandingT = 2;
        cfg.readFraction = 1.0;
        cfg.memoryLatency = 5;
    }

    Processor
    makeProcessor(std::vector<NodeId> targets)
    {
        return Processor(0, std::move(targets), cfg, factory, net,
                         latency, counters, 42);
    }

    WorkloadConfig cfg;
    PacketFactory factory;
    FakeNetwork net;
    BatchMeans latency;
    WorkloadCounters counters;
};

TEST_F(ProcessorFixture, IssuesRemoteMisses)
{
    Processor proc = makeProcessor({0, 1}); // remote target only 1
    // With C=1 and the local PM in the region, some accesses are
    // local; force remote by giving a two-element region and
    // checking both kinds are counted.
    for (Cycle c = 0; c < 50; ++c)
        proc.tick(c);
    EXPECT_GT(counters.missesGenerated, 0u);
    // Every remote issue reaches the network exactly once.
    EXPECT_EQ(counters.remoteIssued, net.injected.size());
}

TEST_F(ProcessorFixture, BlocksAtOutstandingLimit)
{
    Processor proc = makeProcessor({0, 1});
    // Never deliver responses: after T issues the processor stalls.
    Cycle c = 0;
    for (; c < 100; ++c)
        proc.tick(c);
    EXPECT_LE(proc.outstanding(), 2);
    EXPECT_LE(net.injected.size(), 2u); // remote slots never free
    EXPECT_TRUE(proc.blocked());
    EXPECT_GT(counters.blockedCycles, 0u);
}

TEST_F(ProcessorFixture, ResponseFreesASlot)
{
    cfg.outstandingT = 1;
    Processor proc = makeProcessor({0, 1});
    Cycle c = 0;
    // Run until something was issued.
    while (net.injected.empty() && counters.localIssued == 0 && c < 20)
        proc.tick(c++);
    // Make every issue remote for determinism of this test: the
    // region has the local PM, so allow either kind. Deliver if
    // remote.
    if (!net.injected.empty()) {
        ASSERT_EQ(proc.outstanding(), 1);
        const Packet req = net.injected.front();
        net.injected.pop_front();
        const Packet resp = factory.makeResponse(req);
        proc.onResponse(resp, c);
        EXPECT_EQ(proc.outstanding(), 0);
    }
}

TEST_F(ProcessorFixture, LocalAccessesCompleteViaMemoryLatency)
{
    Processor proc = makeProcessor({0}); // purely local region
    proc.tick(0);
    EXPECT_EQ(counters.localIssued, 1u);
    EXPECT_EQ(proc.outstanding(), 1);
    // Completes at cycle 0 + memoryLatency.
    for (Cycle c = 1; c <= cfg.memoryLatency; ++c)
        proc.tick(c);
    EXPECT_EQ(counters.localCompleted, 1u);
    EXPECT_EQ(net.injected.size(), 0u); // never touched the network
}

TEST_F(ProcessorFixture, StalledMissIsRetriedNotDropped)
{
    cfg.outstandingT = 4;
    net.allowInjection = false;
    Processor proc = makeProcessor({0, 1, 2, 3});
    Cycle c = 0;
    while (!proc.blocked() && c < 100)
        proc.tick(c++);
    // Blocked on a remote miss (injection refused) or local slots;
    // with injection refused, remote misses stall.
    if (proc.blocked()) {
        const auto generated = counters.missesGenerated;
        net.allowInjection = true;
        proc.tick(c++);
        // The stalled miss was issued without generating a new one.
        EXPECT_EQ(counters.missesGenerated, generated);
        EXPECT_FALSE(proc.blocked());
    }
}

TEST_F(ProcessorFixture, MissRateMatchesC)
{
    cfg.missRateC = 0.04;
    cfg.outstandingT = 1000000; // never block
    Processor proc = makeProcessor({0, 1, 2, 3});
    const Cycle n = 200000;
    for (Cycle c = 0; c < n; ++c)
        proc.tick(c);
    // Binomial(200000, 0.04): mean 8000, sigma ~88. Allow 5 sigma.
    EXPECT_NEAR(static_cast<double>(counters.missesGenerated), 8000.0,
                440.0);
}

TEST_F(ProcessorFixture, ReadFractionRespected)
{
    cfg.readFraction = 0.7;
    cfg.missRateC = 1.0;
    cfg.outstandingT = 1000000;
    Processor proc = makeProcessor({0, 1});
    for (Cycle c = 0; c < 20000; ++c)
        proc.tick(c);
    std::uint64_t reads = 0;
    for (const Packet &pkt : net.injected) {
        if (pkt.type == PacketType::ReadRequest)
            ++reads;
    }
    const double frac = static_cast<double>(reads) /
                        static_cast<double>(net.injected.size());
    EXPECT_NEAR(frac, 0.7, 0.05);
}

TEST_F(ProcessorFixture, LatencyIsRecordedOnResponse)
{
    Processor proc = makeProcessor({0, 1});
    Cycle c = 0;
    while (net.injected.empty() && c < 50)
        proc.tick(c++);
    ASSERT_FALSE(net.injected.empty());
    const Packet req = net.injected.front();
    const Packet resp = factory.makeResponse(req);
    proc.onResponse(resp, req.issueCycle + 123);
    EXPECT_EQ(latency.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(latency.mean(), 123.0);
}

TEST(MemoryModule, RespondsAfterFixedLatency)
{
    PacketFactory factory(ChannelSpec::ring(), 32);
    FakeNetwork net(4);
    MemoryModule mem(1, 10, factory, net);

    const Packet req = factory.makeRequest(0, 1, true, 5);
    mem.onRequest(req, 5);
    EXPECT_EQ(mem.pendingResponses(), 1u);

    for (Cycle c = 6; c < 15; ++c) {
        mem.tick(c);
        EXPECT_TRUE(net.injected.empty()) << "early at " << c;
    }
    mem.tick(15);
    ASSERT_EQ(net.injected.size(), 1u);
    EXPECT_EQ(net.injected.front().type, PacketType::ReadResponse);
    EXPECT_EQ(net.injected.front().dst, 0);
    EXPECT_EQ(mem.pendingResponses(), 0u);
}

TEST(MemoryModule, PipelinedModeOverlapsRequests)
{
    PacketFactory factory(ChannelSpec::ring(), 32);
    FakeNetwork net(4);
    MemoryModule mem(1, 10, factory, net, /*serialized=*/false);
    // Three back-to-back requests complete back-to-back.
    for (Cycle c = 0; c < 3; ++c)
        mem.onRequest(factory.makeRequest(0, 1, true, c), c);
    for (Cycle c = 0; c <= 12; ++c)
        mem.tick(c);
    EXPECT_EQ(net.injected.size(), 3u);
}

TEST(MemoryModule, SerializedModeQueuesRequests)
{
    PacketFactory factory(ChannelSpec::ring(), 32);
    FakeNetwork net(4);
    MemoryModule mem(1, 10, factory, net, /*serialized=*/true);
    // Three simultaneous requests finish 10 cycles apart.
    for (int i = 0; i < 3; ++i)
        mem.onRequest(factory.makeRequest(0, 1, true, 0), 0);
    std::size_t done_at_10 = 0;
    std::size_t done_at_20 = 0;
    for (Cycle c = 0; c <= 30; ++c) {
        mem.tick(c);
        if (c == 10)
            done_at_10 = net.injected.size();
        if (c == 20)
            done_at_20 = net.injected.size();
    }
    EXPECT_EQ(done_at_10, 1u);
    EXPECT_EQ(done_at_20, 2u);
    EXPECT_EQ(net.injected.size(), 3u);
}

TEST(MemoryModule, SerializedIdleMemoryStartsImmediately)
{
    PacketFactory factory(ChannelSpec::ring(), 32);
    FakeNetwork net(4);
    MemoryModule mem(1, 10, factory, net, /*serialized=*/true);
    mem.onRequest(factory.makeRequest(0, 1, true, 100), 100);
    for (Cycle c = 100; c <= 110; ++c)
        mem.tick(c);
    ASSERT_EQ(net.injected.size(), 1u); // ready at 110, not 10+busy
}

TEST(MemoryModule, HoldsResponsesUnderBackpressure)
{
    PacketFactory factory(ChannelSpec::ring(), 32);
    FakeNetwork net(4);
    net.allowInjection = false;
    MemoryModule mem(1, 2, factory, net);
    mem.onRequest(factory.makeRequest(0, 1, true, 0), 0);
    mem.onRequest(factory.makeRequest(2, 1, false, 0), 0);
    for (Cycle c = 0; c < 20; ++c)
        mem.tick(c);
    EXPECT_TRUE(net.injected.empty());
    EXPECT_EQ(mem.pendingResponses(), 2u);
    net.allowInjection = true;
    mem.tick(21);
    // Injected in FIFO order once the queue frees.
    ASSERT_EQ(net.injected.size(), 2u);
    EXPECT_EQ(net.injected[0].type, PacketType::ReadResponse);
    EXPECT_EQ(net.injected[1].type, PacketType::WriteResponse);
    EXPECT_EQ(mem.pendingResponses(), 0u);
}

TEST(MemoryModule, WriteGetsWriteResponse)
{
    PacketFactory factory(ChannelSpec::mesh(), 64);
    FakeNetwork net(2);
    MemoryModule mem(1, 1, factory, net);
    mem.onRequest(factory.makeRequest(0, 1, false, 7), 7);
    mem.tick(8);
    ASSERT_EQ(net.injected.size(), 1u);
    EXPECT_EQ(net.injected.front().type, PacketType::WriteResponse);
    EXPECT_EQ(net.injected.front().sizeFlits, 4u); // header-only
    EXPECT_EQ(net.injected.front().issueCycle, 7u);
}

} // namespace
} // namespace hrsim
