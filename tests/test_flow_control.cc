/**
 * @file
 * Unit and invariant tests for the ring flow-control machinery:
 * occupancy accounting (bubble + phase gates), the wait/escape
 * counters, and the buffer-sizing knobs.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "proto/packet_factory.hh"
#include "ring/ring_network.hh"

namespace hrsim
{
namespace
{

TEST(RingOccupancy, AdmissionArithmetic)
{
    RingOccupancy occ;
    occ.capacity = 30;
    occ.bubble = 1;
    occ.reserveDown = 5;

    EXPECT_TRUE(occ.canAdmitDown(29));
    EXPECT_FALSE(occ.canAdmitDown(30));
    EXPECT_TRUE(occ.canAdmitUp(24));
    EXPECT_FALSE(occ.canAdmitUp(25));

    occ.add(20);
    EXPECT_TRUE(occ.canAdmitDown(9));
    EXPECT_FALSE(occ.canAdmitDown(10));
    EXPECT_TRUE(occ.canAdmitUp(4));
    EXPECT_FALSE(occ.canAdmitUp(5));

    occ.add(-20);
    EXPECT_EQ(occ.occupied, 0);
}

TEST(RingOccupancyDeath, NegativeOccupancyPanics)
{
    RingOccupancy occ;
    occ.capacity = 10;
    EXPECT_DEATH(occ.add(-1), "occupied");
}

TEST(RingOccupancy, DrainsToZeroAfterTraffic)
{
    // Occupancy accounting must balance exactly: after all packets
    // deliver, every ring's counter returns to zero.
    RingNetwork::Params params;
    params.topo = RingTopology::parse("2:3:4");
    params.cacheLineBytes = 64;
    RingNetwork net(params);
    PacketFactory factory(ChannelSpec::ring(), 64);

    int delivered = 0;
    net.setDeliveryHandler(
        [&](const Packet &, Cycle) { ++delivered; });

    // Cross-level traffic in both directions, mixed sizes.
    int sent = 0;
    for (NodeId src = 0; src < 24; src += 5) {
        for (NodeId dst = 0; dst < 24; dst += 7) {
            if (src == dst)
                continue;
            const Packet pkt =
                factory.makeRequest(src, dst, (src + dst) % 2, 0);
            if (net.canInject(src, pkt)) {
                net.inject(src, pkt);
                ++sent;
            }
        }
    }
    Cycle now = 0;
    while (delivered < sent && now < 5000)
        net.tick(now++);
    ASSERT_EQ(delivered, sent);
    for (Cycle i = 0; i < 10; ++i)
        net.tick(now++);

    EXPECT_EQ(net.flitsInFlight(), 0u);
    for (int r = 0; r < static_cast<int>(net.structure().rings.size());
         ++r) {
        EXPECT_EQ(net.ringOccupancy(r).occupied, 0) << "ring " << r;
    }
}

TEST(RingOccupancy, SingleRingIsUngated)
{
    RingNetwork::Params params;
    params.topo = RingTopology::parse("8");
    params.cacheLineBytes = 64;
    RingNetwork net(params);
    EXPECT_EQ(net.ringOccupancy(0).bubble, 0);
    EXPECT_EQ(net.ringOccupancy(0).reserveDown, 0);
}

TEST(RingOccupancy, HierarchyRingsAreGated)
{
    RingNetwork::Params params;
    params.topo = RingTopology::parse("2:4");
    params.cacheLineBytes = 64; // cl = 5 flits
    RingNetwork net(params);
    for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(net.ringOccupancy(r).bubble, 1) << r;
        EXPECT_EQ(net.ringOccupancy(r).reserveDown, 5) << r;
    }
    // Root ring: 2 IRI slots * (1 latch + 5 buffer).
    EXPECT_EQ(net.ringOccupancy(0).capacity, 12);
}

TEST(FlowControl, EscapesOccurOnlyUnderOversaturation)
{
    // A comfortably-sized hierarchy at the paper's load should never
    // need the recirculation escape; a 2x oversubscribed one should
    // use it.
    SimConfig sim;
    sim.warmupCycles = 3000;
    sim.batchCycles = 3000;
    sim.numBatches = 3;

    {
        // Two second-level rings: comfortably inside the paper's
        // 3-sustainable-ring bisection limit.
        SystemConfig cfg = SystemConfig::ring("2:3:6", 64);
        cfg.workload.outstandingT = 4;
        cfg.sim = sim;
        System system(cfg);
        const RunResult result = system.run();
        auto &net = static_cast<RingNetwork &>(system.network());
        // The escape must be rare relative to traffic at the paper's
        // own operating points (< 2% of completed transactions).
        EXPECT_LT(net.totalEscapes(), result.samples / 50 + 10);
    }
    {
        SystemConfig cfg = SystemConfig::ring("6:3:6", 64);
        cfg.workload.outstandingT = 4;
        cfg.sim = sim;
        System system(cfg);
        system.run();
        auto &net = static_cast<RingNetwork &>(system.network());
        EXPECT_GT(net.totalEscapes(), 0u);
    }
}

TEST(FlowControl, WaitLimitKnobIsHonoured)
{
    // With an enormous wait limit the escape never fires at moderate
    // load; with limit 1 blocked worms bail out almost immediately,
    // raising the escape count under the same traffic.
    SimConfig sim;
    sim.warmupCycles = 2000;
    sim.batchCycles = 2000;
    sim.numBatches = 2;

    std::uint64_t escapes_patient = 0;
    std::uint64_t escapes_eager = 0;
    {
        SystemConfig cfg = SystemConfig::ring("4:3:6", 64);
        cfg.workload.outstandingT = 4;
        cfg.sim = sim;
        cfg.ringIriWaitLimit = 1000000;
        System system(cfg);
        system.run();
        escapes_patient = static_cast<RingNetwork &>(system.network())
                              .totalEscapes();
    }
    {
        SystemConfig cfg = SystemConfig::ring("4:3:6", 64);
        cfg.workload.outstandingT = 4;
        cfg.sim = sim;
        cfg.ringIriWaitLimit = 1;
        System system(cfg);
        system.run();
        escapes_eager = static_cast<RingNetwork &>(system.network())
                            .totalEscapes();
    }
    EXPECT_EQ(escapes_patient, 0u);
    EXPECT_GT(escapes_eager, escapes_patient);
}

TEST(FlowControl, DeeperIriQueuesReduceBlocking)
{
    SimConfig sim;
    sim.warmupCycles = 3000;
    sim.batchCycles = 3000;
    sim.numBatches = 3;

    double lat_shallow = 0.0;
    double lat_deep = 0.0;
    std::uint64_t waits_shallow = 0;
    std::uint64_t waits_deep = 0;
    {
        SystemConfig cfg = SystemConfig::ring("3:3:6", 64);
        cfg.workload.outstandingT = 4;
        cfg.sim = sim;
        System system(cfg);
        lat_shallow = system.run().avgLatency;
        waits_shallow = static_cast<RingNetwork &>(system.network())
                            .totalWaitCycles();
    }
    {
        SystemConfig cfg = SystemConfig::ring("3:3:6", 64);
        cfg.workload.outstandingT = 4;
        cfg.sim = sim;
        cfg.ringIriQueuePackets = 4;
        System system(cfg);
        lat_deep = system.run().avgLatency;
        waits_deep = static_cast<RingNetwork &>(system.network())
                         .totalWaitCycles();
    }
    // Deeper queues must reduce blocking; latency may shift either
    // way slightly (more buffering can lengthen queueing delays at
    // the bottleneck) but not blow up.
    EXPECT_LT(waits_deep, waits_shallow);
    EXPECT_LT(lat_deep, lat_shallow * 1.25);
}

TEST(FlowControl, QueueDepthZeroRejected)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 32);
    cfg.ringIriQueuePackets = 0;
    EXPECT_THROW(System system(cfg), ConfigError);
}

} // namespace
} // namespace hrsim
