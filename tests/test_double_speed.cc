/**
 * @file
 * Tests for the double-clocked global ring (Section 6 of the paper):
 * the fast clock domain, its utilization accounting, and the
 * bandwidth relief it provides to saturated hierarchies.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "proto/packet_factory.hh"
#include "ring/ring_network.hh"

namespace hrsim
{
namespace
{

SimConfig
mediumSim()
{
    SimConfig sim;
    sim.warmupCycles = 3000;
    sim.batchCycles = 3000;
    sim.numBatches = 3;
    return sim;
}

TEST(DoubleSpeed, GlobalRingMovesTwoFlitsPerSystemCycle)
{
    // Zero-load: back-to-back worms crossing the global ring finish
    // sooner with the 2x clock because the global hop costs half.
    RingNetwork::Params slow_params;
    slow_params.topo = RingTopology::parse("3:4");
    slow_params.cacheLineBytes = 64;
    RingNetwork::Params fast_params = slow_params;
    fast_params.globalRingSpeed = 2;

    const auto transit_time = [](RingNetwork::Params params) {
        RingNetwork net(params);
        PacketFactory factory(ChannelSpec::ring(), 64);
        Cycle done = 0;
        int count = 0;
        net.setDeliveryHandler([&](const Packet &, Cycle now) {
            done = now;
            ++count;
        });
        // 0 -> 9 crosses the global ring two hops (ring 0 to ring 2).
        Cycle now = 0;
        for (int i = 0; i < 3; ++i) {
            const Packet pkt = factory.makeRequest(0, 9, false, now);
            while (!net.canInject(0, pkt) && now < 1000)
                net.tick(now++);
            net.inject(0, pkt);
        }
        while (count < 3 && now < 1000)
            net.tick(now++);
        EXPECT_EQ(count, 3);
        return done;
    };

    const Cycle slow = transit_time(slow_params);
    const Cycle fast = transit_time(fast_params);
    EXPECT_LT(fast, slow);
}

TEST(DoubleSpeed, UtilizationStaysBelowOneOnFastRing)
{
    // The fast ring's capacity is 2 flits per link per system cycle;
    // the tracker must account for that or utilization would exceed 1.
    SystemConfig cfg = SystemConfig::ring("5:3:6", 32);
    cfg.globalRingSpeed = 2;
    cfg.workload.outstandingT = 4;
    cfg.sim = mediumSim();
    const RunResult result = runSystem(cfg);
    ASSERT_FALSE(result.ringLevelUtilization.empty());
    EXPECT_GT(result.ringLevelUtilization[0], 0.0);
    EXPECT_LE(result.ringLevelUtilization[0], 1.0);
}

TEST(DoubleSpeed, RelievesBisectionAtFourSecondLevelRings)
{
    // Four second-level rings saturate a normal global ring but not a
    // double-speed one (the paper sustains five at 2x).
    SystemConfig normal = SystemConfig::ring("4:3:6", 64);
    normal.workload.outstandingT = 4;
    normal.sim = mediumSim();
    SystemConfig fast = normal;
    fast.globalRingSpeed = 2;

    const RunResult slow_result = runSystem(normal);
    const RunResult fast_result = runSystem(fast);
    EXPECT_LT(fast_result.avgLatency, 0.92 * slow_result.avgLatency);
    // And the relieved global ring runs at lower relative load.
    EXPECT_LT(fast_result.ringLevelUtilization[0],
              slow_result.ringLevelUtilization[0]);
}

TEST(DoubleSpeed, NoEffectWhereGlobalRingIsNotTheBottleneck)
{
    // Paper Section 6: for systems whose cross-over happens before a
    // third level is needed, the double-speed global ring changes
    // little. A 2-level system has no third-level pressure: speed-ups
    // should be marginal.
    SystemConfig normal = SystemConfig::ring("2:6", 64);
    normal.workload.outstandingT = 4;
    normal.sim = mediumSim();
    SystemConfig fast = normal;
    fast.globalRingSpeed = 2;
    const double slow_lat = runSystem(normal).avgLatency;
    const double fast_lat = runSystem(fast).avgLatency;
    EXPECT_GT(fast_lat, 0.75 * slow_lat); // no dramatic change
    EXPECT_LT(fast_lat, slow_lat * 1.1);  // and surely no slowdown
}

TEST(DoubleSpeed, ConservationHoldsAtHigherMultipliers)
{
    for (const std::uint32_t speed : {2u, 3u}) {
        SystemConfig cfg = SystemConfig::ring("4:3:4", 128);
        cfg.globalRingSpeed = speed;
        cfg.workload.outstandingT = 4;
        cfg.sim = mediumSim();
        System system(cfg);
        system.step(5000);
        const WorkloadCounters &c = system.counters();
        const auto in_flight =
            static_cast<std::uint64_t>(system.totalOutstanding());
        EXPECT_EQ(c.remoteIssued + c.localIssued,
                  c.remoteCompleted + c.localCompleted + in_flight)
            << "speed " << speed;
        EXPECT_GT(c.remoteCompleted, 0u);
    }
}

TEST(DoubleSpeed, SpeedOneIsTheDefaultBehaviour)
{
    SystemConfig a = SystemConfig::ring("2:3:4", 64);
    a.workload.outstandingT = 2;
    a.sim = mediumSim();
    SystemConfig b = a;
    b.globalRingSpeed = 1;
    const RunResult ra = runSystem(a);
    const RunResult rb = runSystem(b);
    EXPECT_DOUBLE_EQ(ra.avgLatency, rb.avgLatency);
    EXPECT_EQ(ra.samples, rb.samples);
}

} // namespace
} // namespace hrsim
