/**
 * @file
 * Unit tests for cross-over analysis, the Table 2 data, the memory
 * cost model and the Report helper.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/analysis.hh"
#include "core/experiment.hh"
#include "core/memory_cost.hh"
#include "ring/topology.hh"

namespace hrsim
{
namespace
{

using Series = std::vector<std::pair<double, double>>;

TEST(Crossover, SimpleCrossingIsInterpolated)
{
    // A flat at 10; B falls from 20 to 0: crosses A at x = 5.
    const Series a = {{0, 10}, {10, 10}};
    const Series b = {{0, 20}, {10, 0}};
    const auto x = crossoverPoint(a, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR(*x, 5.0, 1e-9);
}

TEST(Crossover, NoCrossingReturnsNothing)
{
    const Series a = {{0, 10}, {10, 10}};
    const Series b = {{0, 20}, {10, 12}};
    EXPECT_FALSE(crossoverPoint(a, b).has_value());
}

TEST(Crossover, BCheaperEverywhereReturnsFirstPoint)
{
    const Series a = {{4, 10}, {16, 40}};
    const Series b = {{4, 5}, {16, 20}};
    const auto x = crossoverPoint(a, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_DOUBLE_EQ(*x, 4.0);
}

TEST(Crossover, WorksOnUnalignedSamplePositions)
{
    // Ring sampled at {4, 8, 16}; mesh at {4, 9, 16}. Ring rises
    // steeply, mesh gently: one crossing inside (8, 9).
    const Series ring = {{4, 10}, {8, 30}, {16, 200}};
    const Series mesh = {{4, 40}, {9, 45}, {16, 60}};
    const auto x = crossoverPoint(ring, mesh);
    ASSERT_TRUE(x.has_value());
    EXPECT_GT(*x, 8.0);
    EXPECT_LT(*x, 16.0);
}

TEST(Crossover, DegenerateSeriesRejected)
{
    const Series a = {{0, 1}};
    const Series b = {{0, 2}, {1, 0}};
    EXPECT_FALSE(crossoverPoint(a, b).has_value());
}

TEST(Table2, KnownEntries)
{
    EXPECT_EQ(paperTable2Topology(24, 128).value(), "2:3:4");
    EXPECT_EQ(paperTable2Topology(108, 16).value(), "3:3:12");
    EXPECT_EQ(paperTable2Topology(12, 16).value(), "12");
    EXPECT_EQ(paperTable2Topology(54, 128).value(), "3:3:2:3");
    EXPECT_FALSE(paperTable2Topology(100, 32).has_value());
    EXPECT_FALSE(paperTable2Topology(24, 48).has_value());
}

TEST(Table2, EveryEntryMultipliesOut)
{
    for (const int p : paperTable2Sizes()) {
        for (const int cl : {16, 32, 64, 128}) {
            const auto topo = paperTable2Topology(p, cl);
            ASSERT_TRUE(topo.has_value()) << p << "/" << cl;
            EXPECT_EQ(RingTopology::parse(*topo).numProcessors(), p)
                << *topo;
        }
    }
}

TEST(Table2, LadderIsIncreasing)
{
    for (const int cl : {16, 32, 64, 128}) {
        const auto ladder = standardRingLadder(cl);
        long prev = 0;
        for (const auto &topo : ladder) {
            const long p = RingTopology::parse(topo).numProcessors();
            EXPECT_GT(p, prev);
            prev = p;
        }
    }
}

TEST(MeshWidths, StandardLadder)
{
    const auto widths = standardMeshWidths(121);
    ASSERT_FALSE(widths.empty());
    EXPECT_EQ(widths.front(), 2);
    EXPECT_EQ(widths.back(), 11);
    const auto small = standardMeshWidths(30);
    EXPECT_EQ(small.back(), 5);
}

TEST(MemoryCost, PaperTable1RingColumn)
{
    EXPECT_EQ(ringNicBufferBytes(16), 32u);
    EXPECT_EQ(ringNicBufferBytes(32), 48u);
    EXPECT_EQ(ringNicBufferBytes(64), 80u);
    EXPECT_EQ(ringNicBufferBytes(128), 144u);
}

TEST(MemoryCost, PaperTable1MeshColumns)
{
    EXPECT_EQ(meshNicBufferBytes(16, 0), 128u);
    EXPECT_EQ(meshNicBufferBytes(32, 0), 192u);
    EXPECT_EQ(meshNicBufferBytes(64, 0), 320u);
    EXPECT_EQ(meshNicBufferBytes(128, 0), 576u);
    for (const unsigned line : {16u, 32u, 64u, 128u}) {
        EXPECT_EQ(meshNicBufferBytes(line, 4), 64u);
        EXPECT_EQ(meshNicBufferBytes(line, 1), 16u);
    }
}

TEST(MemoryCost, PaperHeadlineRatios)
{
    // "the memory requirements for cache line sized buffers are 144
    // times higher than that for 1-flit buffers (with a 128-byte
    // cache line)" -- the paper compares against the 4 B flit, i.e.
    // 576 B vs 4 B per buffer slot; per-NIC the ratio is 36x.
    EXPECT_EQ(meshNicBufferBytes(128, 0) / meshNicBufferBytes(128, 1),
              36u);
    // 4-flit vs 1-flit is 4x per NIC (paper: 16x counts 4 buffers).
    EXPECT_EQ(meshNicBufferBytes(128, 4) / meshNicBufferBytes(128, 1),
              4u);
}

TEST(Report, StoresAndLooksUpPoints)
{
    Report report("t", "nodes", "latency");
    report.add("ring", 4, 10.0);
    report.add("ring", 8, 20.0);
    report.add("mesh", 4, 15.0);
    EXPECT_EQ(report.value("ring", 8).value(), 20.0);
    EXPECT_EQ(report.value("mesh", 4).value(), 15.0);
    EXPECT_FALSE(report.value("mesh", 8).has_value());
    EXPECT_FALSE(report.value("none", 4).has_value());
    const auto names = report.seriesNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "ring");
    EXPECT_EQ(names[1], "mesh");
}

TEST(Report, PrintsAlignedTable)
{
    Report report("My Title", "nodes", "cycles");
    report.add("a", 4, 1.5);
    report.add("a", 8, 2.5);
    report.add("b", 8, 3.5);
    std::ostringstream out;
    report.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("My Title"), std::string::npos);
    EXPECT_NE(text.find("nodes"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    EXPECT_NE(text.find("3.5"), std::string::npos);
    EXPECT_NE(text.find("-"), std::string::npos); // missing cell
}

TEST(Report, CsvLongFormat)
{
    Report report("fig", "x", "y");
    report.add("s", 1, 2.0);
    std::ostringstream out;
    report.writeCsv(out);
    EXPECT_EQ(out.str(), "title,series,x,y\nfig,s,1,2\n");
}

TEST(Report, SeriesPointsPreserveOrder)
{
    Report report("t", "x", "y");
    report.add("s", 5, 1.0);
    report.add("s", 3, 2.0);
    const auto pts = report.seriesPoints("s");
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0].first, 5.0);
    EXPECT_EQ(pts[1].first, 3.0);
}

} // namespace
} // namespace hrsim
