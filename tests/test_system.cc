/**
 * @file
 * Whole-system integration tests: conservation invariants,
 * determinism, analytic latency bounds and configuration handling.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

namespace hrsim
{
namespace
{

SimConfig
shortSim(Cycle warmup = 1000, Cycle batch = 1000,
         std::uint32_t batches = 3)
{
    SimConfig sim;
    sim.warmupCycles = warmup;
    sim.batchCycles = batch;
    sim.numBatches = batches;
    return sim;
}

TEST(SystemConfig, ProcessorCounts)
{
    EXPECT_EQ(SystemConfig::ring("2:3:4", 32).numProcessors(), 24);
    EXPECT_EQ(SystemConfig::mesh(5, 32, 4).numProcessors(), 25);
}

TEST(System, RequestResponseConservation)
{
    SystemConfig cfg = SystemConfig::ring("2:4", 32);
    cfg.sim = shortSim();
    System system(cfg);
    system.step(3000);

    const WorkloadCounters &c = system.counters();
    // Everything issued is either completed or still in flight.
    const auto in_flight = static_cast<std::uint64_t>(
        system.totalOutstanding());
    EXPECT_EQ(c.remoteIssued + c.localIssued,
              c.remoteCompleted + c.localCompleted + in_flight);
    EXPECT_GT(c.remoteIssued, 0u);
}

TEST(System, DrainsWhenGenerationIsImpossible)
{
    // Run, then freeze generation by stepping a copy with the same
    // seed: simpler — check in-flight flits are bounded by T * P *
    // worst-case packet sizes at any time.
    SystemConfig cfg = SystemConfig::mesh(3, 32, 4);
    cfg.sim = shortSim();
    cfg.workload.outstandingT = 2;
    System system(cfg);
    system.step(2000);
    const std::uint64_t bound =
        static_cast<std::uint64_t>(9 * 2) * (12 + 12);
    EXPECT_LE(system.network().flitsInFlight(), bound);
    EXPECT_LE(system.totalOutstanding(), 9 * 2);
}

TEST(System, DeterministicForSameSeed)
{
    SystemConfig cfg = SystemConfig::ring("3:4", 64);
    cfg.sim = shortSim();
    cfg.sim.seed = 777;
    const RunResult a = runSystem(cfg);
    const RunResult b = runSystem(cfg);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.networkUtilization, b.networkUtilization);
}

TEST(System, DifferentSeedsDiffer)
{
    SystemConfig cfg = SystemConfig::ring("3:4", 64);
    cfg.sim = shortSim();
    cfg.sim.seed = 1;
    const RunResult a = runSystem(cfg);
    cfg.sim.seed = 2;
    const RunResult b = runSystem(cfg);
    EXPECT_NE(a.samples, b.samples);
}

TEST(System, LatencyAboveAnalyticFloor)
{
    // The average remote round trip can never beat: request hops +
    // memory latency + response serialization. Use a loose, provable
    // floor: memory latency + 2 (one hop each way) + response size.
    SystemConfig cfg = SystemConfig::ring("8", 32);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    const double floor = cfg.workload.memoryLatency + 2.0 + 3.0;
    EXPECT_GE(result.avgLatency, floor);
}

TEST(System, MeshLatencyAboveAnalyticFloor)
{
    SystemConfig cfg = SystemConfig::mesh(3, 32, 4);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    // 12-flit response + 1 hop each way + memory latency.
    const double floor = cfg.workload.memoryLatency + 2.0 + 12.0;
    EXPECT_GE(result.avgLatency, floor);
}

TEST(System, UtilizationWithinBounds)
{
    SystemConfig cfg = SystemConfig::mesh(4, 64, 4);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    EXPECT_GE(result.networkUtilization, 0.0);
    EXPECT_LE(result.networkUtilization, 1.0);
}

TEST(System, RingLevelUtilizationReported)
{
    SystemConfig cfg = SystemConfig::ring("2:2:2", 32);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    ASSERT_EQ(result.ringLevelUtilization.size(), 3u);
    for (const double u : result.ringLevelUtilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(System, MeshHasNoRingLevels)
{
    SystemConfig cfg = SystemConfig::mesh(2, 32, 4);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    EXPECT_TRUE(result.ringLevelUtilization.empty());
}

TEST(System, HigherLoadRaisesLatency)
{
    SystemConfig low = SystemConfig::ring("2:6", 64);
    low.sim = shortSim(2000, 2000, 4);
    low.workload.missRateC = 0.005;
    SystemConfig high = low;
    high.workload.missRateC = 0.08;
    const RunResult a = runSystem(low);
    const RunResult b = runSystem(high);
    EXPECT_GT(b.avgLatency, a.avgLatency);
    EXPECT_GT(b.networkUtilization, a.networkUtilization);
}

TEST(System, MoreOutstandingRaisesThroughput)
{
    SystemConfig t1 = SystemConfig::ring("2:6", 64);
    t1.sim = shortSim(2000, 2000, 4);
    t1.workload.outstandingT = 1;
    SystemConfig t4 = t1;
    t4.workload.outstandingT = 4;
    const RunResult a = runSystem(t1);
    const RunResult b = runSystem(t4);
    EXPECT_GE(b.throughputPerPm, a.throughputPerPm * 0.95);
    EXPECT_GT(b.samples, 0u);
}

TEST(System, DoubleSpeedGlobalHelpsASaturatedHierarchy)
{
    // 4 second-level rings on the global ring: past the paper's
    // 3-ring sustainable point, so doubling the global clock must
    // cut latency.
    SystemConfig normal = SystemConfig::ring("4:3:4", 32);
    normal.sim = shortSim(2000, 2000, 4);
    SystemConfig fast = normal;
    fast.globalRingSpeed = 2;
    const RunResult a = runSystem(normal);
    const RunResult b = runSystem(fast);
    EXPECT_LT(b.avgLatency, a.avgLatency);
}

TEST(System, WatchdogQuiescentSystemIsNotAStall)
{
    // Nearly zero load: long quiet stretches must not trip the
    // watchdog because nothing is outstanding.
    SystemConfig cfg = SystemConfig::ring("4", 32);
    cfg.sim = shortSim(500, 500, 2);
    cfg.sim.watchdogCycles = 50;
    cfg.workload.missRateC = 0.0005;
    EXPECT_NO_THROW(runSystem(cfg));
}

TEST(System, ThroughputMatchesSampleAccounting)
{
    SystemConfig cfg = SystemConfig::mesh(3, 32, 4);
    cfg.sim = shortSim();
    const RunResult result = runSystem(cfg);
    const double expected =
        static_cast<double>(result.samples) /
        (static_cast<double>(cfg.sim.batchCycles) *
         cfg.sim.numBatches * 9.0);
    EXPECT_DOUBLE_EQ(result.throughputPerPm, expected);
}

TEST(System, RunResultCyclesMatchesProtocol)
{
    SystemConfig cfg = SystemConfig::ring("4", 16);
    cfg.sim = shortSim(100, 200, 3);
    const RunResult result = runSystem(cfg);
    EXPECT_EQ(result.cycles, 100u + 3u * 200u);
}

} // namespace
} // namespace hrsim
